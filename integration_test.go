package lotustc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lotustc/internal/cc"
	"lotustc/internal/compress"
	"lotustc/internal/core"
	"lotustc/internal/kclique"
	"lotustc/internal/sched"
)

// Cross-subsystem integration tests: every independent path to a
// triangle count must agree, on every generator family.

func integrationGraphs() map[string]*Graph {
	return map[string]*Graph{
		"rmat":      RMAT(10, 8, 100),
		"chunglu":   ChungLu(1024, 8192, 2.2, 101),
		"flat":      ChungLuCapped(1024, 4096, 2.6, 0.01, 102),
		"ba":        BarabasiAlbert(800, 4, 103),
		"er":        ErdosRenyi(600, 2400, 104),
		"hubspokes": HubAndSpokes(12, 300, 4, 105),
	}
}

func TestAllPathsAgree(t *testing.T) {
	pool := sched.NewPool(2)
	for name, g := range integrationGraphs() {
		want, err := Count(g, Options{Algorithm: AlgoForward})
		if err != nil {
			t.Fatal(err)
		}
		// Every registered algorithm.
		for _, alg := range Algorithms() {
			res, err := Count(g, Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, alg, err)
			}
			if res.Triangles != want.Triangles {
				t.Errorf("%s/%s = %d, want %d", name, alg, res.Triangles, want.Triangles)
			}
		}
		// k=3 cliques.
		if got, _ := CountKCliques(g, 3, Options{}); got != want.Triangles {
			t.Errorf("%s/kclique3 = %d, want %d", name, got, want.Triangles)
		}
		// Decode-on-the-fly compressed counting.
		if got := compress.Encode(g.Orient()).CountTriangles(); got != want.Triangles {
			t.Errorf("%s/compressed = %d, want %d", name, got, want.Triangles)
		}
		// Streaming with CountNonHub covers the total.
		hubs := TopDegreeVertices(g, g.NumVertices()/50+1)
		sc, err := NewStreamingCounter(g.NumVertices(), hubs)
		if err != nil {
			t.Fatalf("%s: NewStreamingCounter: %v", name, err)
		}
		sc.CountNonHub = true
		for _, e := range g.Edges() {
			sc.AddEdge(e.U, e.V)
		}
		_, _, _, nnn := sc.Classes()
		if got := sc.HubTriangles() + nnn; got != want.Triangles {
			t.Errorf("%s/streaming = %d, want %d", name, got, want.Triangles)
		}
		// Per-vertex sums to 3T through both paths.
		c := NewLotusCounter(g, Options{})
		var sum uint64
		for _, x := range c.PerVertexTriangles() {
			sum += x
		}
		if sum != 3*want.Triangles {
			t.Errorf("%s/pervertex sum = %d, want %d", name, sum, 3*want.Triangles)
		}
		_ = pool
	}
}

func TestStatsConsistentWithLotusClasses(t *testing.T) {
	// Table 1's hub-triangle percentage at hub fraction f must match
	// the LOTUS class split when LOTUS is pinned to the same hub set
	// size (both select top-degree hubs with the same tie-break).
	for name, g := range integrationGraphs() {
		n := g.NumVertices()
		hubCount := n / 100
		if hubCount < 1 {
			hubCount = 1
		}
		res, err := Count(g, Options{HubCount: hubCount, FrontFraction: 0.0001})
		if err != nil {
			t.Fatal(err)
		}
		s := Stats(g) // 1% hubs
		if res.Triangles != s.Table1.TotalTriangles {
			t.Errorf("%s: lotus %d vs table1 %d triangles", name, res.Triangles, s.Table1.TotalTriangles)
		}
		if res.HubTriangles() != s.Table1.HubTriangles {
			t.Errorf("%s: hub triangles %d vs table1 %d", name, res.HubTriangles(), s.Table1.HubTriangles)
		}
	}
}

func TestComponentsConsistency(t *testing.T) {
	pool := sched.NewPool(2)
	g := PlantedTriangles(20, 7)
	sum := cc.Summarize(cc.LabelPropagation(g, pool))
	if sum.Components != 27 || sum.Isolated != 7 {
		t.Fatalf("components = %+v, want 27 with 7 isolated", sum)
	}
	// Triangle count per component: each non-isolated component is
	// one triangle.
	res, _ := Count(g, Options{})
	if res.Triangles != 20 {
		t.Fatalf("planted = %d", res.Triangles)
	}
}

func TestRelabelOrientationInvariance(t *testing.T) {
	// Triangle counts are invariant under arbitrary relabeling.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(60)
		var edges []Edge
		for i := 0; i < rng.Intn(4*n); i++ {
			edges = append(edges, Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := FromEdges(edges, n)
		want, _ := Count(g, Options{})
		perm := rng.Perm(n)
		ra := make([]uint32, n)
		for i, p := range perm {
			ra[i] = uint32(p)
		}
		rg := g.Relabel(ra)
		got, _ := Count(rg, Options{})
		return got.Triangles == want.Triangles
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKCliqueMonotonicity(t *testing.T) {
	// On any graph, (k+1)-cliques exist only if k-cliques do, and
	// K_n's counts follow the binomial recurrence.
	pool := sched.NewPool(2)
	for name, g := range integrationGraphs() {
		og := g.Orient()
		prev := kclique.Count(og, 3, pool)
		for k := 4; k <= 6; k++ {
			cur := kclique.Count(og, k, pool)
			if cur > 0 && prev == 0 {
				t.Errorf("%s: %d-cliques with no %d-cliques", name, k, k-1)
			}
			prev = cur
		}
	}
	lg := core.Preprocess(Complete(9), core.Options{HubCount: 3, Pool: pool})
	for k, want := range map[int]uint64{3: 84, 4: 126, 5: 126, 6: 84, 9: 1} {
		if got := kclique.CountLotus(lg, k, pool); got != want {
			t.Errorf("K9 %d-cliques = %d, want %d", k, got, want)
		}
	}
}
