// Clustering: use per-vertex triangle counts to compute local
// clustering coefficients and transitivity of a social-network
// analog — the kind of graph-mining workload (community structure,
// tie strength) the paper's introduction motivates TC with.
package main

import (
	"fmt"
	"sort"

	"lotustc"
)

func main() {
	g := lotustc.ChungLu(1<<15, 1<<20, 2.2, 7)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Global clustering (transitivity): how likely two neighbours of
	// a vertex are themselves connected.
	fmt.Printf("transitivity: %.4f\n", lotustc.GlobalClusteringCoefficient(g, 0))

	// Per-vertex analysis.
	tri := lotustc.PerVertexTriangles(g, 0)
	lcc := lotustc.LocalClusteringCoefficients(g, 0)

	// The embeddedness profile: hubs participate in many triangles
	// but have low clustering; peripheral vertices the opposite —
	// the skew LOTUS exploits.
	type row struct {
		v     uint32
		deg   int
		tri   uint64
		coeff float64
	}
	rows := make([]row, g.NumVertices())
	for v := range rows {
		rows[v] = row{uint32(v), g.Degree(uint32(v)), tri[v], lcc[v]}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].tri > rows[j].tri })

	fmt.Println("\ntop 10 vertices by triangle participation:")
	fmt.Printf("%8s %8s %10s %8s\n", "vertex", "degree", "triangles", "lcc")
	for _, r := range rows[:10] {
		fmt.Printf("%8d %8d %10d %8.4f\n", r.v, r.deg, r.tri, r.coeff)
	}

	// Aggregate: mean clustering by degree class shows the familiar
	// decay c(k) ~ k^-alpha of real-world graphs.
	sums := map[int]struct {
		c float64
		n int
	}{}
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(uint32(v))
		b := 0
		for d > 1 {
			d >>= 1
			b++
		}
		e := sums[b]
		e.c += lcc[v]
		e.n++
		sums[b] = e
	}
	fmt.Println("\nmean local clustering by degree bucket:")
	var buckets []int
	for b := range sums {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		e := sums[b]
		fmt.Printf("  degree ~2^%-2d: %.4f  (%d vertices)\n", b, e.c/float64(e.n), e.n)
	}
}
