// Compare: a miniature Table 5 — run every algorithm end-to-end on a
// skewed and a flat graph and print times, rates and speedups. Shows
// both the LOTUS win on power-law inputs and the §5.5 caveat that
// flat graphs blunt it.
package main

import (
	"fmt"
	"log"

	"lotustc"
)

func main() {
	graphs := []struct {
		name string
		g    *lotustc.Graph
	}{
		{"rmat-skewed", lotustc.RMAT(15, 16, 3)},
		{"chunglu-web", lotustc.ChungLu(1<<15, 1<<20, 2.1, 4)},
		{"flat-capped", lotustc.ChungLuCapped(1<<15, 1<<19, 2.6, 0.002, 5)},
	}
	// Every registered algorithm, straight from the engine's registry —
	// new kernels registered with engine.Register join the comparison
	// automatically. The quadratic classics are skipped to keep the
	// run short.
	slow := map[lotustc.Algorithm]bool{
		lotustc.AlgoNodeIterator:     true,
		lotustc.AlgoNodeIteratorCore: true,
		lotustc.AlgoNewVertexListing: true,
		lotustc.AlgoAYZ:              true,
	}
	var algos []lotustc.Algorithm
	for _, a := range lotustc.Algorithms() {
		if !slow[a] {
			algos = append(algos, a)
		}
	}
	for _, gg := range graphs {
		fmt.Printf("\n%s: %d vertices, %d edges, Gini %.2f\n",
			gg.name, gg.g.NumVertices(), gg.g.NumEdges(), gg.g.GiniOfDegrees())
		fmt.Printf("%-16s %12s %14s %10s %12s\n", "algorithm", "time", "edges/s", "vs lotus", "triangles")
		var lotusSec float64
		for _, a := range algos {
			res, err := lotustc.Count(gg.g, lotustc.Options{Algorithm: a})
			if err != nil {
				log.Fatal(err)
			}
			sec := res.Elapsed.Seconds()
			if a == lotustc.AlgoLotus {
				lotusSec = sec
			}
			fmt.Printf("%-16s %12v %14.0f %9.2fx %12d\n",
				a, res.Elapsed, res.TCRate(gg.g.NumEdges()), sec/lotusSec, res.Triangles)
		}
	}
}
