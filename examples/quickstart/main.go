// Quickstart: generate a power-law graph, count its triangles with
// LOTUS, and inspect the per-phase breakdown — the minimal end-to-end
// use of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lotustc"
)

func main() {
	// A social-network-like graph: 2^16 vertices, ~1M edge samples,
	// heavy-tailed degree distribution.
	g := lotustc.RMAT(16, 16, 42)
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// Count with LOTUS (the default algorithm).
	res, err := lotustc.Count(g, lotustc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", res.Triangles)
	fmt.Printf("end-to-end: %v (%.2e edges/s)\n", res.Elapsed, res.TCRate(g.NumEdges()))
	fmt.Printf("phases: preprocess %v | HHH+HHN %v | HNN %v | NNN %v\n",
		res.Preprocess, res.Phase1, res.HNNPhase, res.NNNPhase)
	fmt.Printf("classes: HHH=%d HHN=%d HNN=%d NNN=%d (hub triangles: %.1f%%)\n",
		res.HHH, res.HHN, res.HNN, res.NNN,
		100*float64(res.HubTriangles())/float64(res.Triangles))

	// Cross-check against the GAP-style Forward baseline.
	fwd, err := lotustc.Count(g, lotustc.Options{Algorithm: lotustc.AlgoForward})
	if err != nil {
		log.Fatal(err)
	}
	if fwd.Triangles != res.Triangles {
		log.Fatalf("count mismatch: lotus %d vs forward %d", res.Triangles, fwd.Triangles)
	}
	fmt.Printf("forward baseline agrees (%d) in %v\n", fwd.Triangles, fwd.Elapsed)

	// Counts are cancellable: CountContext stops cooperatively when
	// the context is done, and Options.Timeout is the shorthand. An
	// already-expired deadline aborts before any counting work.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := lotustc.CountContext(ctx, g, lotustc.Options{}); err != nil {
		fmt.Printf("cancelled count returned: %v\n", err)
	}
}
