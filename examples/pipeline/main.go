// Pipeline: a file-based workflow mirroring how the CLI tools
// compose — generate a web-graph analog, persist it in the binary
// LOTG format, reload it, characterize its topology (the paper's
// Table 1 statistics), and count triangles with LOTUS and a baseline.
// Everything goes through the public API, so this doubles as an
// end-to-end smoke test of the library surface.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lotustc"
)

func main() {
	dir, err := os.MkdirTemp("", "lotus-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "web.lotg")

	// 1. Generate and persist.
	g := lotustc.ChungLu(1<<15, 1<<20, 2.1, 99)
	if err := lotustc.SaveGraph(g, path); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("saved %s: %d bytes for %d vertices / %d edges\n",
		filepath.Base(path), fi.Size(), g.NumVertices(), g.NumEdges())

	// 2. Reload.
	g2, err := lotustc.LoadGraph(path)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Characterize (Table 1 with 1% hubs).
	s := lotustc.Stats(g2)
	fmt.Printf("degree Gini %.3f, max degree %d\n", s.Gini, s.MaxDegree)
	fmt.Printf("hub edges %.1f%%, hub triangles %.1f%%, relative density %.0f\n",
		s.Table1.TotalHubPct, s.Table1.HubTrianglePct, s.Table1.RelativeDensity)

	// 4. Count: LOTUS vs the GAP-style Forward baseline.
	lotus, err := lotustc.Count(g2, lotustc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fwd, err := lotustc.Count(g2, lotustc.Options{Algorithm: lotustc.AlgoForward})
	if err != nil {
		log.Fatal(err)
	}
	if lotus.Triangles != fwd.Triangles {
		log.Fatalf("count mismatch: %d vs %d", lotus.Triangles, fwd.Triangles)
	}
	fmt.Printf("triangles: %d\n", lotus.Triangles)
	fmt.Printf("lotus %v vs forward %v (%.2fx end-to-end)\n",
		lotus.Elapsed, fwd.Elapsed, fwd.Elapsed.Seconds()/lotus.Elapsed.Seconds())

	// 5. Approximate variants for a quick sanity triangle estimate.
	for _, method := range []string{"doulion", "wedge", "hybrid"} {
		est, err := lotustc.EstimateTriangles(g2, method, 0.3, 100000, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("estimate[%-7s] = %12.0f (error %+.2f%%)\n",
			method, est, 100*(est-float64(lotus.Triangles))/float64(lotus.Triangles))
	}
}
