// Streaming: the paper's §6.2 extension. A social graph arrives as
// an edge stream; a memory-resident hub structure (square H2H bit
// matrix plus per-vertex hub lists) counts hub triangles on the fly.
// Since hub triangles are ~93% of all triangles on skewed graphs
// (§3.4), the running hub count tracks the true total closely — this
// example measures exactly how closely.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lotustc"
)

func main() {
	g := lotustc.RMAT(15, 16, 11)
	edges := g.Edges()
	fmt.Printf("stream: %d edges over %d vertices\n", len(edges), g.NumVertices())

	// Designate hubs from a warm-up prefix: in a real pipeline the
	// hub set would come from history; here the top 1% by degree.
	hubCount := g.NumVertices() / 100
	hubs := lotustc.TopDegreeVertices(g, hubCount)
	sc, err := lotustc.NewStreamingCounter(g.NumVertices(), hubs)
	if err != nil {
		log.Fatal(err)
	}

	// Shuffle to simulate arbitrary arrival order.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	checkpoints := []int{len(edges) / 4, len(edges) / 2, 3 * len(edges) / 4, len(edges)}
	next := 0
	for i, e := range edges {
		sc.AddEdge(e.U, e.V)
		if next < len(checkpoints) && i+1 == checkpoints[next] {
			fmt.Printf("  after %7d edges: %10d hub triangles\n", i+1, sc.HubTriangles())
			next++
		}
	}

	hhh, hhn, hnn, _ := sc.Classes()
	fmt.Printf("final: HHH=%d HHN=%d HNN=%d (hub total %d)\n", hhh, hhn, hnn, sc.HubTriangles())

	// Compare with the exact total from a batch LOTUS run using the
	// same hub count.
	res, err := lotustc.Count(g, lotustc.Options{HubCount: hubCount})
	if err != nil {
		log.Fatal(err)
	}
	cover := 100 * float64(sc.HubTriangles()) / float64(res.Triangles)
	fmt.Printf("batch total: %d triangles -> streaming hub count covers %.1f%%\n",
		res.Triangles, cover)
	fmt.Println("(paper §3.4: triangles containing a hub average 93.4% of all triangles)")
}
