package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"lotustc/internal/graph"
)

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	kinds := map[string][]string{
		"rmat":           {"-kind", "rmat", "-scale", "8", "-edgefactor", "4"},
		"chunglu":        {"-kind", "chunglu", "-n", "200", "-m", "800"},
		"chunglu-capped": {"-kind", "chunglu-capped", "-n", "200", "-m", "800", "-cap", "0.05"},
		"er":             {"-kind", "er", "-n", "200", "-m", "500"},
		"complete":       {"-kind", "complete", "-n", "12"},
		"star":           {"-kind", "star", "-n", "20"},
		"hubspokes":      {"-kind", "hubspokes", "-hubs", "4", "-leaves", "30", "-attach", "2"},
	}
	for kind, args := range kinds {
		t.Run(kind, func(t *testing.T) {
			out := filepath.Join(dir, kind+".lotg")
			var stdout, stderr bytes.Buffer
			code := run(append(args, "-o", out), &stdout, &stderr)
			if code != 0 {
				t.Fatalf("exit %d: %s", code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "wrote") {
				t.Fatalf("no confirmation: %q", stdout.String())
			}
			g, err := graph.LoadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGenerateErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-kind", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bogus kind exit %d", code)
	}
	if code := run([]string{"-nonsense"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exit %d", code)
	}
	if code := run([]string{"-kind", "complete", "-n", "4", "-o", "/nonexistent-dir/x.lotg"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unwritable path exit %d", code)
	}
}
