// Command lotus-gen generates synthetic graphs and writes them as
// binary LOTG files for lotus-tc / lotus-stats.
//
// Usage:
//
//	lotus-gen -kind rmat -scale 18 -edgefactor 16 -seed 1 -o graph.lotg
//	lotus-gen -kind chunglu -n 100000 -m 1600000 -gamma 2.2 -o web.lotg
//	lotus-gen -kind er -n 100000 -m 800000 -o flat.lotg
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lotus-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind       = fs.String("kind", "rmat", "generator: rmat | chunglu | chunglu-capped | er | complete | star | hubspokes")
		scale      = fs.Uint("scale", 16, "rmat: |V| = 2^scale")
		edgeFactor = fs.Int("edgefactor", 16, "rmat: edges per vertex")
		n          = fs.Int("n", 1<<16, "chunglu/er/complete/star: vertex count")
		m          = fs.Int("m", 1<<20, "chunglu/er: sampled edge count")
		gamma      = fs.Float64("gamma", 2.2, "chunglu: power-law exponent")
		capDeg     = fs.Float64("cap", 0.002, "chunglu-capped: weight cap")
		hubs       = fs.Int("hubs", 64, "hubspokes: hub clique size")
		leaves     = fs.Int("leaves", 10000, "hubspokes: leaf count")
		attach     = fs.Int("attach", 4, "hubspokes: hubs per leaf")
		seed       = fs.Int64("seed", 1, "random seed")
		out        = fs.String("o", "graph.lotg", "output path")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var g *graph.Graph
	switch *kind {
	case "rmat":
		g = gen.RMAT(gen.DefaultRMAT(*scale, *edgeFactor, *seed))
	case "chunglu":
		g = gen.ChungLu(gen.ChungLuParams{N: *n, M: *m, Gamma: *gamma, Seed: *seed})
	case "chunglu-capped":
		g = gen.ChungLu(gen.ChungLuParams{N: *n, M: *m, Gamma: *gamma, MaxDegreeCap: *capDeg, Seed: *seed})
	case "er":
		g = gen.ErdosRenyi(*n, *m, *seed)
	case "complete":
		g = gen.Complete(*n)
	case "star":
		g = gen.Star(*n)
	case "hubspokes":
		g = gen.HubAndSpokes(*hubs, *leaves, *attach, *seed)
	default:
		fmt.Fprintf(stderr, "lotus-gen: unknown kind %q\n", *kind)
		return 2
	}
	if err := g.SaveFile(*out); err != nil {
		fmt.Fprintf(stderr, "lotus-gen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: %d vertices, %d edges, max degree %d\n",
		*out, g.NumVertices(), g.NumEdges(), g.MaxDegree())
	return 0
}
