// Command lotus-perf analyzes the memory behaviour of the Forward
// and LOTUS counting kernels on a graph without hardware counters:
// it replays their exact reference streams through the machine models
// (modeled LLC/DTLB misses, branch mispredictions, estimated cycles —
// the paper's Fig 4/5) and through exact LRU stack analysis
// (miss-ratio curves at every cache size at once).
//
// Usage:
//
//	lotus-perf -rmat 14                    # events on the scaled machine
//	lotus-perf -graph web.lotg -machine skylakex
//	lotus-perf -rmat 12 -mrc               # miss-ratio curves
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/hwsim"
	"lotustc/internal/obs"
	"lotustc/internal/perf"
	"lotustc/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lotus-perf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "binary LOTG graph file")
		rmat      = fs.Uint("rmat", 0, "generate an R-MAT graph of this scale instead of loading")
		ef        = fs.Int("edgefactor", 16, "R-MAT edge factor")
		seed      = fs.Int64("seed", 1, "R-MAT seed")
		machine   = fs.String("machine", "scaled", "machine model: scaled | skylakex | haswell | epyc")
		hubs      = fs.Int("hubs", 0, "LOTUS hub count (0 = adaptive)")
		mrc       = fs.Bool("mrc", false, "print exact LRU miss-ratio curves instead of machine events")
		timeout   = fs.Duration("timeout", 0, "abort the preprocessing after this long (0 = no limit)")
		report    = fs.String("report", "text", "output format: text | json (machine-event report, schema in DESIGN.md)")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		phase1    = fs.String("phase1", "scalar", "phase-1 kernel to replay for LOTUS: scalar | word")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *phase1 != "scalar" && *phase1 != "word" {
		fmt.Fprintf(stderr, "lotus-perf: unknown -phase1 kernel %q (want scalar or word; the runtime's auto mode mixes the two per row)\n", *phase1)
		return 2
	}
	if *report != "text" && *report != "json" {
		fmt.Fprintf(stderr, "lotus-perf: unknown -report format %q (want text or json)\n", *report)
		return 2
	}
	if *report == "json" && *mrc {
		fmt.Fprintln(stderr, "lotus-perf: -report json covers machine events only (drop -mrc)")
		return 2
	}
	if *pprofAddr != "" {
		addr, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "lotus-perf: -pprof: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "lotus-perf: debug server on http://%s/debug/pprof/\n", addr)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var g *graph.Graph
	var err error
	var source string
	switch {
	case *rmat > 0:
		g = gen.RMAT(gen.DefaultRMAT(*rmat, *ef, *seed))
		source = fmt.Sprintf("rmat-%d/ef-%d/seed-%d", *rmat, *ef, *seed)
	case *graphPath != "":
		g, err = graph.LoadFile(*graphPath)
		source = "file:" + *graphPath
	default:
		fmt.Fprintln(stderr, "lotus-perf: need -graph or -rmat")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "lotus-perf: %v\n", err)
		return 1
	}

	pool := sched.NewPool(0).Bind(ctx)
	defer pool.Release()
	lg := core.Preprocess(g, core.Options{HubCount: *hubs, Pool: pool})
	if err := ctx.Err(); err != nil {
		fmt.Fprintf(stderr, "lotus-perf: %v\n", err)
		return 1
	}
	if *mrc {
		caps := []int{1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 17, 1 << 20}
		fwd := perf.ForwardMRC(g, caps)
		lot := perf.LotusMRC(lg, caps)
		fmt.Fprintf(stdout, "%-10s", "capacity")
		for _, c := range caps {
			fmt.Fprintf(stdout, " %9dKB", c*64/1024)
		}
		fmt.Fprintln(stdout)
		printCurve := func(name string, mrc []float64) {
			fmt.Fprintf(stdout, "%-10s", name)
			for _, m := range mrc {
				fmt.Fprintf(stdout, " %10.4f%%", 100*m)
			}
			fmt.Fprintln(stdout)
		}
		printCurve("forward", fwd)
		printCurve("lotus", lot)
		return 0
	}

	var cfg hwsim.MachineConfig
	switch *machine {
	case "skylakex":
		cfg = hwsim.SkyLakeX()
	case "haswell":
		cfg = hwsim.Haswell()
	case "epyc":
		cfg = hwsim.Epyc()
	case "scaled":
		cfg = hwsim.MachineConfig{
			Name: "scaled", L1Bytes: 4 << 10, L2Bytes: 32 << 10, L3Bytes: 256 << 10,
			L1Ways: 8, L2Ways: 8, L3Ways: 11, TLBEntries: 64,
		}
	default:
		fmt.Fprintf(stderr, "lotus-perf: unknown machine %q\n", *machine)
		return 2
	}

	fwd := perf.InstrumentedForward(g, cfg)
	lot := perf.InstrumentedLotusKernel(lg, cfg, *phase1 == "word")
	if fwd.Triangles != lot.Triangles {
		fmt.Fprintf(stderr, "lotus-perf: count mismatch %d vs %d\n", fwd.Triangles, lot.Triangles)
		return 1
	}
	if *report == "json" {
		rr := obs.NewRunReport("lotus-perf")
		rr.Graph = obs.GraphInfo{Source: source, Vertices: int64(g.NumVertices()), Edges: g.NumEdges()}
		rr.Algorithm = "lotus-vs-forward/" + cfg.Name
		rr.Triangles = fwd.Triangles
		events := func(e perf.Events) map[string]uint64 {
			return map[string]uint64{
				"llc_misses":    e.LLCMisses,
				"dtlb_misses":   e.TLBMisses,
				"mem_accesses":  e.MemAccesses,
				"instructions":  e.Instructions,
				"branch_misses": e.BranchMisses,
				"est_cycles":    e.EstimatedCycles,
			}
		}
		rr.Events = map[string]map[string]uint64{"forward": events(fwd), "lotus": events(lot)}
		if err := rr.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "lotus-perf: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "graph: %d vertices, %d edges, %d triangles; machine %s\n",
		g.NumVertices(), g.NumEdges(), fwd.Triangles, cfg.Name)
	fmt.Fprintf(stdout, "%-18s %14s %14s %10s\n", "event", "forward", "lotus", "reduction")
	row := func(name string, a, b uint64) {
		r := 0.0
		if b > 0 {
			r = float64(a) / float64(b)
		}
		fmt.Fprintf(stdout, "%-18s %14d %14d %9.2fx\n", name, a, b, r)
	}
	row("LLC misses", fwd.LLCMisses, lot.LLCMisses)
	row("DTLB misses", fwd.TLBMisses, lot.TLBMisses)
	row("memory accesses", fwd.MemAccesses, lot.MemAccesses)
	row("instructions~", fwd.Instructions, lot.Instructions)
	row("branch misses", fwd.BranchMisses, lot.BranchMisses)
	row("est. cycles", fwd.EstimatedCycles, lot.EstimatedCycles)
	return 0
}
