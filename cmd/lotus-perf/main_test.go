package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lotustc/internal/obs"
)

func TestEvents(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rmat", "9", "-edgefactor", "6"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"LLC misses", "DTLB misses", "branch misses", "est. cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing row %q", want)
		}
	}
}

func TestMRCMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rmat", "9", "-edgefactor", "6", "-mrc"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "forward") || !strings.Contains(out, "lotus") {
		t.Fatalf("missing curves: %q", out)
	}
}

func TestMachineModels(t *testing.T) {
	for _, m := range []string{"skylakex", "haswell", "epyc", "scaled"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-rmat", "8", "-machine", m}, &stdout, &stderr); code != 0 {
			t.Fatalf("%s: exit %d", m, code)
		}
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatal("no input should exit 2")
	}
	if code := run([]string{"-rmat", "8", "-machine", "vax"}, &stdout, &stderr); code != 2 {
		t.Fatal("unknown machine should exit 2")
	}
	if code := run([]string{"-graph", "/missing"}, &stdout, &stderr); code != 1 {
		t.Fatal("missing file should exit 1")
	}
	if code := run([]string{"-zap"}, &stdout, &stderr); code != 2 {
		t.Fatal("bad flag should exit 2")
	}
}

func TestJSONReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rmat", "8", "-edgefactor", "6", "-report", "json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var rr obs.RunReport
	if err := json.Unmarshal(stdout.Bytes(), &rr); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if rr.Schema != obs.SchemaRun || rr.Tool != "lotus-perf" {
		t.Fatalf("bad envelope: %+v", rr)
	}
	for _, kernel := range []string{"forward", "lotus"} {
		ev := rr.Events[kernel]
		if ev == nil {
			t.Fatalf("events for %q missing", kernel)
		}
		for _, name := range []string{"llc_misses", "dtlb_misses", "mem_accesses",
			"instructions", "branch_misses", "est_cycles"} {
			if _, ok := ev[name]; !ok {
				t.Errorf("%s: event %q missing", kernel, name)
			}
		}
	}
}

func TestJSONReportFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rmat", "8", "-report", "toml"}, &stdout, &stderr); code != 2 {
		t.Fatal("unknown report format should exit 2")
	}
	if code := run([]string{"-rmat", "8", "-report", "json", "-mrc"}, &stdout, &stderr); code != 2 {
		t.Fatal("-report json with -mrc should exit 2")
	}
}
