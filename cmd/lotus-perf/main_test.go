package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestEvents(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rmat", "9", "-edgefactor", "6"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"LLC misses", "DTLB misses", "branch misses", "est. cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing row %q", want)
		}
	}
}

func TestMRCMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rmat", "9", "-edgefactor", "6", "-mrc"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "forward") || !strings.Contains(out, "lotus") {
		t.Fatalf("missing curves: %q", out)
	}
}

func TestMachineModels(t *testing.T) {
	for _, m := range []string{"skylakex", "haswell", "epyc", "scaled"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-rmat", "8", "-machine", m}, &stdout, &stderr); code != 0 {
			t.Fatalf("%s: exit %d", m, code)
		}
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatal("no input should exit 2")
	}
	if code := run([]string{"-rmat", "8", "-machine", "vax"}, &stdout, &stderr); code != 2 {
		t.Fatal("unknown machine should exit 2")
	}
	if code := run([]string{"-graph", "/missing"}, &stdout, &stderr); code != 1 {
		t.Fatal("missing file should exit 1")
	}
	if code := run([]string{"-zap"}, &stdout, &stderr); code != 2 {
		t.Fatal("bad flag should exit 2")
	}
}
