// Command lotus-tc counts triangles in a graph with a selectable
// algorithm and reports the LOTUS execution breakdown.
//
// Usage:
//
//	lotus-tc -graph web.lotg                      # LOTUS, default options
//	lotus-tc -graph web.lotg -algo forward        # GAP-style baseline
//	lotus-tc -edgelist graph.txt -algo lotus -hubs 65536
//	lotus-tc -rmat 18 -algo lotus                 # generate on the fly
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lotustc"
	"lotustc/internal/engine"
	"lotustc/internal/graph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lotus-tc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "binary LOTG graph file")
		edgeList  = fs.String("edgelist", "", "textual edge list file")
		rmat      = fs.Uint("rmat", 0, "generate an R-MAT graph of this scale instead of loading")
		ef        = fs.Int("edgefactor", 16, "R-MAT edge factor")
		seed      = fs.Int64("seed", 1, "R-MAT seed")
		algo      = fs.String("algo", "lotus", "algorithm (see -algos)")
		algos     = fs.Bool("algos", false, "list algorithms")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		hubs      = fs.Int("hubs", 0, "LOTUS hub count (0 = adaptive, paper default 65536)")
		k         = fs.Int("k", 3, "clique size: 3 counts triangles; k > 3 counts k-cliques")
		timeout   = fs.Duration("timeout", 0, "abort the count after this long (0 = no limit)")
		verbose   = fs.Bool("v", false, "print breakdown and class split")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *algos {
		for _, a := range lotustc.Algorithms() {
			fmt.Fprintln(stdout, a)
		}
		return 0
	}

	// Reject an unknown -algo before the (possibly expensive) graph
	// load or generation.
	if _, err := engine.Lookup(*algo); err != nil {
		fmt.Fprintf(stderr, "lotus-tc: %v\n", err)
		return 1
	}

	var g *lotustc.Graph
	var err error
	switch {
	case *rmat > 0:
		g = lotustc.RMAT(*rmat, *ef, *seed)
	case *graphPath != "":
		g, err = lotustc.LoadGraph(*graphPath)
	case *edgeList != "":
		var f *os.File
		f, err = os.Open(*edgeList)
		if err == nil {
			g, err = graph.ReadEdgeList(f)
			f.Close()
		}
	default:
		fmt.Fprintln(stderr, "lotus-tc: need -graph, -edgelist or -rmat")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "lotus-tc: %v\n", err)
		return 1
	}

	if *k > 3 {
		cliques, err := lotustc.CountKCliques(g, *k, lotustc.Options{
			Algorithm: lotustc.Algorithm(*algo), Workers: *workers, HubCount: *hubs,
		})
		if err != nil {
			fmt.Fprintf(stderr, "lotus-tc: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
		fmt.Fprintf(stdout, "%d-cliques: %d\n", *k, cliques)
		return 0
	}

	res, err := lotustc.Count(g, lotustc.Options{
		Algorithm: lotustc.Algorithm(*algo),
		Workers:   *workers,
		HubCount:  *hubs,
		Timeout:   *timeout,
	})
	if err != nil {
		fmt.Fprintf(stderr, "lotus-tc: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Fprintf(stdout, "algorithm: %s\n", res.Algorithm)
	fmt.Fprintf(stdout, "triangles: %d\n", res.Triangles)
	fmt.Fprintf(stdout, "end-to-end: %v (%.0f edges/s)\n", res.Elapsed, res.TCRate(g.NumEdges()))
	if *verbose && res.Algorithm == lotustc.AlgoLotus {
		fmt.Fprintf(stdout, "breakdown: preprocess %v, HHH+HHN %v, HNN %v, NNN %v\n",
			res.Preprocess, res.Phase1, res.HNNPhase, res.NNNPhase)
		total := float64(res.Triangles)
		if total < 1 {
			total = 1
		}
		fmt.Fprintf(stdout, "classes: HHH %d, HHN %d, HNN %d, NNN %d (hub share %.1f%%)\n",
			res.HHH, res.HHN, res.HNN, res.NNN, 100*float64(res.HubTriangles())/total)
	}
	return 0
}
