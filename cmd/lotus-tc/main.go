// Command lotus-tc counts triangles in a graph with a selectable
// algorithm and reports the LOTUS execution breakdown.
//
// Usage:
//
//	lotus-tc -graph web.lotg                      # LOTUS, default options
//	lotus-tc -graph web.lotg -algo forward        # GAP-style baseline
//	lotus-tc -edgelist graph.txt -algo lotus -hubs 65536
//	lotus-tc -rmat 18 -algo lotus                 # generate on the fly
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lotustc"
	"lotustc/internal/engine"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lotus-tc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "binary LOTG graph file")
		edgeList  = fs.String("edgelist", "", "textual edge list file")
		rmat      = fs.Uint("rmat", 0, "generate an R-MAT graph of this scale instead of loading")
		ef        = fs.Int("edgefactor", 16, "R-MAT edge factor")
		seed      = fs.Int64("seed", 1, "R-MAT seed")
		algo      = fs.String("algo", "lotus", "algorithm (see -algos); \"auto\" probes the graph and picks one")
		algos     = fs.Bool("algos", false, "list algorithms")
		tuneAlgo  = fs.String("tune-algo", "", "pin the algorithm -algo auto routes to (ablation)")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		hubs      = fs.Int("hubs", 0, "LOTUS hub count (0 = adaptive, paper default 65536)")
		shards    = fs.Int("shards", 0, "shard grid dimension p for lotus-sharded; setting it with the default -algo selects lotus-sharded")
		k         = fs.Int("k", 3, "clique size: 3 counts triangles; k > 3 counts k-cliques")
		timeout   = fs.Duration("timeout", 0, "abort the count after this long (0 = no limit)")
		verbose   = fs.Bool("v", false, "print breakdown and class split")
		report    = fs.String("report", "text", "output format: text | json (run report, schema in DESIGN.md)")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *report != "text" && *report != "json" {
		fmt.Fprintf(stderr, "lotus-tc: unknown -report format %q (want text or json)\n", *report)
		return 2
	}
	if *pprofAddr != "" {
		addr, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "lotus-tc: -pprof: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "lotus-tc: debug server on http://%s/debug/pprof/\n", addr)
	}

	if *algos {
		for _, a := range lotustc.Algorithms() {
			fmt.Fprintln(stdout, a)
		}
		return 0
	}

	// -shards alone implies the sharded kernel; with an explicit
	// non-sharded -algo it is rejected rather than silently ignored.
	if *shards > 0 {
		switch *algo {
		case "lotus", "lotus-sharded":
			*algo = "lotus-sharded"
		default:
			fmt.Fprintf(stderr, "lotus-tc: -shards applies to lotus-sharded, not %q\n", *algo)
			return 2
		}
	}

	// Reject an unknown -algo before the (possibly expensive) graph
	// load or generation.
	if _, err := engine.Lookup(*algo); err != nil {
		fmt.Fprintf(stderr, "lotus-tc: %v\n", err)
		return 1
	}
	if *tuneAlgo != "" {
		if *algo != "auto" {
			fmt.Fprintf(stderr, "lotus-tc: -tune-algo applies to -algo auto, not %q\n", *algo)
			return 2
		}
		if _, err := engine.Lookup(*tuneAlgo); err != nil {
			fmt.Fprintf(stderr, "lotus-tc: -tune-algo: %v\n", err)
			return 1
		}
	}

	var g *lotustc.Graph
	var err error
	var source string
	switch {
	case *rmat > 0:
		g = lotustc.RMAT(*rmat, *ef, *seed)
		source = fmt.Sprintf("rmat-%d/ef-%d/seed-%d", *rmat, *ef, *seed)
	case *graphPath != "":
		g, err = lotustc.LoadGraph(*graphPath)
		source = "file:" + *graphPath
	case *edgeList != "":
		var f *os.File
		f, err = os.Open(*edgeList)
		if err == nil {
			g, err = graph.ReadEdgeList(f)
			f.Close()
		}
		source = "edgelist:" + *edgeList
	default:
		fmt.Fprintln(stderr, "lotus-tc: need -graph, -edgelist or -rmat")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "lotus-tc: %v\n", err)
		return 1
	}

	if *k > 3 {
		if *report == "json" {
			fmt.Fprintln(stderr, "lotus-tc: -report json covers triangle counting only (k = 3)")
			return 2
		}
		cliques, err := lotustc.CountKCliques(g, *k, lotustc.Options{
			Algorithm: lotustc.Algorithm(*algo), Workers: *workers, HubCount: *hubs,
		})
		if err != nil {
			fmt.Fprintf(stderr, "lotus-tc: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
		fmt.Fprintf(stdout, "%d-cliques: %d\n", *k, cliques)
		return 0
	}

	res, err := lotustc.Count(g, lotustc.Options{
		Algorithm:      lotustc.Algorithm(*algo),
		Workers:        *workers,
		HubCount:       *hubs,
		Shards:         *shards,
		TuneAlgorithm:  lotustc.Algorithm(*tuneAlgo),
		Timeout:        *timeout,
		CollectMetrics: *report == "json",
	})
	if *report == "json" {
		rr := obs.NewRunReport("lotus-tc")
		rr.Graph = obs.GraphInfo{Source: source, Vertices: int64(g.NumVertices()), Edges: g.NumEdges()}
		rr.Algorithm = *algo
		if err != nil {
			rr.Error = err.Error()
			rr.WriteJSON(stdout)
			return 1
		}
		fillRunReport(rr, res)
		if werr := rr.WriteJSON(stdout); werr != nil {
			fmt.Fprintf(stderr, "lotus-tc: %v\n", werr)
			return 1
		}
		return 0
	}
	if err != nil {
		fmt.Fprintf(stderr, "lotus-tc: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Fprintf(stdout, "algorithm: %s\n", res.Algorithm)
	// The effective algorithm is what actually counted: the tuner's
	// routed choice under -algo auto, res.Algorithm otherwise.
	effective := res.Algorithm
	if res.Decision != nil {
		effective = lotustc.Algorithm(res.Decision.Algorithm)
		fmt.Fprintf(stdout, "auto-tuned: %s — %s\n", res.Decision.Algorithm, res.Decision.Reason)
	}
	fmt.Fprintf(stdout, "triangles: %d\n", res.Triangles)
	fmt.Fprintf(stdout, "end-to-end: %v (%.0f edges/s)\n", res.Elapsed, res.TCRate(g.NumEdges()))
	if *verbose && (effective == lotustc.AlgoLotus || effective == lotustc.AlgoLotusSharded) {
		if effective == lotustc.AlgoLotusSharded {
			fmt.Fprintf(stdout, "breakdown: preprocess %v, count %v\n", res.Preprocess, res.CountPhase)
		} else {
			fmt.Fprintf(stdout, "breakdown: preprocess %v, HHH+HHN %v, HNN %v, NNN %v\n",
				res.Preprocess, res.Phase1, res.HNNPhase, res.NNNPhase)
		}
		total := float64(res.Triangles)
		if total < 1 {
			total = 1
		}
		fmt.Fprintf(stdout, "classes: HHH %d, HHN %d, HNN %d, NNN %d (hub share %.1f%%)\n",
			res.HHH, res.HHN, res.HNN, res.NNN, 100*float64(res.HubTriangles())/total)
	}
	return 0
}

// fillRunReport copies a count Result into the machine-readable
// report. Phase rows and the class split are meaningful for the LOTUS
// kernels only; baselines carry their timings in the metrics map
// ("baseline.preprocess.ns", "baseline.count.ns").
func fillRunReport(rr *obs.RunReport, res *lotustc.Result) {
	rr.Triangles = res.Triangles
	rr.ElapsedNS = res.Elapsed.Nanoseconds()
	rr.Metrics = res.Metrics
	rr.Decision = res.Decision
	if w, ok := res.Metrics["run.workers"]; ok {
		rr.Workers = int(w)
	}
	// Phase rows follow the algorithm that actually counted — under
	// AlgoAuto, the tuner's routed choice.
	effective := res.Algorithm
	if res.Decision != nil {
		effective = lotustc.Algorithm(res.Decision.Algorithm)
	}
	switch effective {
	case lotustc.AlgoLotus, lotustc.AlgoLotusRecursive:
		rr.Phases = []obs.PhaseNS{
			{Name: "preprocess", NS: res.Preprocess.Nanoseconds()},
			{Name: "phase1", NS: res.Phase1.Nanoseconds()},
			{Name: "hnn", NS: res.HNNPhase.Nanoseconds()},
			{Name: "nnn", NS: res.NNNPhase.Nanoseconds()},
		}
		rr.Classes = &obs.Classes{HHH: res.HHH, HHN: res.HHN, HNN: res.HNN, NNN: res.NNN}
	case lotustc.AlgoLotusSharded:
		rr.Phases = []obs.PhaseNS{
			{Name: "preprocess", NS: res.Preprocess.Nanoseconds()},
			{Name: "count", NS: res.CountPhase.Nanoseconds()},
		}
		rr.Classes = &obs.Classes{HHH: res.HHH, HHN: res.HHN, HNN: res.HNN, NNN: res.NNN}
	}
}
