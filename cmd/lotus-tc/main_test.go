package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lotustc"
	"lotustc/internal/obs"
)

func runTC(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCountRMATAllAlgorithms(t *testing.T) {
	var want string
	for _, algo := range lotustc.Algorithms() {
		code, out, errOut := runTC(t, "-rmat", "8", "-edgefactor", "6", "-algo", string(algo))
		if code != 0 {
			t.Fatalf("%s: exit %d: %s", algo, code, errOut)
		}
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "triangles:") {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("%s: no triangle line in %q", algo, out)
		}
		if want == "" {
			want = line
		} else if line != want {
			t.Fatalf("%s reports %q, others %q", algo, line, want)
		}
	}
}

func TestVerboseBreakdown(t *testing.T) {
	code, out, _ := runTC(t, "-rmat", "8", "-v")
	if code != 0 {
		t.Fatal("verbose run failed")
	}
	if !strings.Contains(out, "breakdown:") || !strings.Contains(out, "classes:") {
		t.Fatalf("missing verbose sections: %q", out)
	}
}

func TestLoadFromFileAndEdgeList(t *testing.T) {
	dir := t.TempDir()
	g := lotustc.Complete(6) // 20 triangles
	lotg := filepath.Join(dir, "k6.lotg")
	if err := lotustc.SaveGraph(g, lotg); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runTC(t, "-graph", lotg)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "triangles: 20") {
		t.Fatalf("K6 output: %q", out)
	}

	el := filepath.Join(dir, "tri.txt")
	if err := os.WriteFile(el, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runTC(t, "-edgelist", el)
	if code != 0 || !strings.Contains(out, "triangles: 1") {
		t.Fatalf("edge list run: code %d out %q", code, out)
	}
}

func TestKCliqueFlag(t *testing.T) {
	dir := t.TempDir()
	lotg := filepath.Join(dir, "k6.lotg")
	if err := lotustc.SaveGraph(lotustc.Complete(6), lotg); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runTC(t, "-graph", lotg, "-k", "4")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "4-cliques: 15") {
		t.Fatalf("K6 4-cliques output: %q", out)
	}
	// Generic path too.
	code, out, _ = runTC(t, "-graph", lotg, "-k", "5", "-algo", "forward")
	if code != 0 || !strings.Contains(out, "5-cliques: 6") {
		t.Fatalf("generic k=5: code %d out %q", code, out)
	}
}

func TestAlgosListing(t *testing.T) {
	code, out, _ := runTC(t, "-algos")
	if code != 0 {
		t.Fatal("algos listing failed")
	}
	for _, a := range lotustc.Algorithms() {
		if !strings.Contains(out, string(a)) {
			t.Fatalf("missing %s in listing", a)
		}
	}
}

func TestErrors(t *testing.T) {
	if code, _, _ := runTC(t); code != 2 {
		t.Fatal("no input should exit 2")
	}
	if code, _, _ := runTC(t, "-graph", "/does/not/exist"); code != 1 {
		t.Fatal("missing file should exit 1")
	}
	if code, _, _ := runTC(t, "-rmat", "6", "-algo", "bogus"); code != 1 {
		t.Fatal("bad algorithm should exit 1")
	}
	if code, _, _ := runTC(t, "-badflag"); code != 2 {
		t.Fatal("bad flag should exit 2")
	}
}

func TestJSONReport(t *testing.T) {
	code, out, errOut := runTC(t, "-rmat", "9", "-edgefactor", "8", "-report", "json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var rr obs.RunReport
	if err := json.Unmarshal([]byte(out), &rr); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, out)
	}
	if rr.Schema != obs.SchemaRun || rr.Tool != "lotus-tc" || rr.Algorithm != "lotus" {
		t.Fatalf("bad envelope: %+v", rr)
	}
	if rr.Triangles == 0 || rr.ElapsedNS <= 0 {
		t.Fatalf("empty result: %+v", rr)
	}
	phases := map[string]bool{}
	for _, p := range rr.Phases {
		phases[p.Name] = true
	}
	for _, name := range []string{"preprocess", "phase1", "hnn", "nnn"} {
		if !phases[name] {
			t.Errorf("phase %q missing from JSON report", name)
		}
	}
	if rr.Classes == nil {
		t.Error("class split missing")
	}
	for _, name := range []string{"phase1.steals", "phase1.h2h_probes", "hnn.he_intersections",
		"nnn.nhe_intersections", "lotus.h2h_bits", "run.workers"} {
		if _, ok := rr.Metrics[name]; !ok {
			t.Errorf("metric %q missing from JSON report", name)
		}
	}
}

func TestJSONReportBaseline(t *testing.T) {
	code, out, errOut := runTC(t, "-rmat", "8", "-edgefactor", "6", "-algo", "forward", "-report", "json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var rr obs.RunReport
	if err := json.Unmarshal([]byte(out), &rr); err != nil {
		t.Fatal(err)
	}
	if _, ok := rr.Metrics["baseline.count.ns"]; !ok {
		t.Fatalf("baseline metrics missing: %v", rr.Metrics)
	}
	if rr.Classes != nil {
		t.Fatal("baseline run must not report a class split")
	}
}

func TestJSONReportFlagValidation(t *testing.T) {
	if code, _, _ := runTC(t, "-rmat", "6", "-report", "yaml"); code != 2 {
		t.Fatal("unknown report format should exit 2")
	}
	if code, _, _ := runTC(t, "-rmat", "6", "-k", "4", "-report", "json"); code != 2 {
		t.Fatal("-report json with k-cliques should exit 2")
	}
}
