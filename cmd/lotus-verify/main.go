// Command lotus-verify cross-checks every triangle counting
// algorithm in the repository against a brute-force oracle on a
// randomized battery of graphs, plus the streaming, recursive and
// k-clique extensions. It exits non-zero on any disagreement — the
// release gate for the library.
//
// Usage:
//
//	lotus-verify -rounds 50 -maxn 200 -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"lotustc"
	"lotustc/internal/baseline"
	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/kclique"
	"lotustc/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lotus-verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rounds  = fs.Int("rounds", 30, "random graphs to test")
		maxN    = fs.Int("maxn", 150, "max vertices per random graph")
		seed    = fs.Int64("seed", 1, "base RNG seed")
		kmax    = fs.Int("kmax", 5, "largest clique size to cross-check")
		timeout = fs.Duration("timeout", 0, "abort the whole battery after this long (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	pool := sched.NewPool(0)
	checked, failures := 0, 0
	report := func(what string, g *graph.Graph, got, want uint64) {
		failures++
		fmt.Fprintf(stderr, "FAIL %s: got %d want %d (V=%d E=%d)\n",
			what, got, want, g.NumVertices(), g.NumEdges())
	}

	verify := func(label string, g *graph.Graph, rng *rand.Rand) {
		want := baseline.BruteForce(g)
		for _, alg := range lotustc.Algorithms() {
			res, err := lotustc.CountContext(ctx, g, lotustc.Options{Algorithm: alg})
			if err == context.DeadlineExceeded || err == context.Canceled {
				return
			}
			if err != nil {
				fmt.Fprintf(stderr, "FAIL %s/%s: %v\n", label, alg, err)
				failures++
				continue
			}
			checked++
			if res.Triangles != want {
				report(label+"/"+string(alg), g, res.Triangles, want)
			}
		}
		// Random hub count for the core path.
		if n := g.NumVertices(); n > 0 {
			hubs := 1 + rng.Intn(n)
			lg := core.Preprocess(g, core.Options{HubCount: hubs, Pool: pool})
			if got := lg.Count(pool).Total; got != want {
				report(fmt.Sprintf("%s/lotus-hubs-%d", label, hubs), g, got, want)
			}
			checked++
			// Streaming (hub triangles + NNN must sum to the total).
			sc, err := lotustc.NewStreamingCounter(n, lotustc.TopDegreeVertices(g, hubs))
			if err != nil {
				report(label+"/streaming-init", g, 0, want)
			} else {
				sc.CountNonHub = true
				for _, e := range g.Edges() {
					sc.AddEdge(e.U, e.V)
				}
				_, _, _, nnn := sc.Classes()
				if got := sc.HubTriangles() + nnn; got != want {
					report(label+"/streaming", g, got, want)
				}
			}
			checked++
			// k-cliques: generic vs lotus-structured.
			og := g.Orient()
			for k := 3; k <= *kmax; k++ {
				a := kclique.Count(og, k, pool)
				b := kclique.CountLotus(lg, k, pool)
				if a != b {
					report(fmt.Sprintf("%s/kclique-%d", label, k), g, b, a)
				}
				checked++
			}
		}
	}

	// Structured battery.
	structured := map[string]*graph.Graph{
		"k12":       gen.Complete(12),
		"star":      gen.Star(40),
		"ring":      gen.Ring(40),
		"grid":      gen.Grid(6, 6),
		"bipartite": gen.CompleteBipartite(6, 7),
		"planted":   gen.PlantedTriangles(9, 4),
		"hubspokes": gen.HubAndSpokes(6, 60, 3, 3),
		"empty":     graph.FromEdges(nil, graph.BuildOptions{NumVertices: 5}),
	}
	rng := rand.New(rand.NewSource(*seed))
	for name, g := range structured {
		if ctx.Err() != nil {
			break
		}
		verify(name, g, rng)
	}

	// Random battery.
	for r := 0; r < *rounds && ctx.Err() == nil; r++ {
		n := 4 + rng.Intn(*maxN-3)
		m := rng.Intn(5 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
		verify(fmt.Sprintf("random-%d", r), g, rng)
	}

	fmt.Fprintf(stdout, "lotus-verify: %d checks, %d failures\n", checked, failures)
	if ctx.Err() != nil {
		fmt.Fprintf(stderr, "lotus-verify: aborted after %v: %v\n", *timeout, ctx.Err())
		return 1
	}
	if failures > 0 {
		return 1
	}
	return 0
}
