package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestVerifyPasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rounds", "5", "-maxn", "40", "-kmax", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "0 failures") {
		t.Fatalf("unexpected summary: %q", out)
	}
}

func TestVerifyBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d", code)
	}
}

func TestVerifyDifferentSeeds(t *testing.T) {
	for _, seed := range []string{"2", "99"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-rounds", "3", "-maxn", "30", "-seed", seed}, &stdout, &stderr); code != 0 {
			t.Fatalf("seed %s: exit %d\n%s", seed, code, stderr.String())
		}
	}
}
