// Command lotus-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	lotus-bench -list
//	lotus-bench -exp table5 [-scale 16] [-edgefactor 16] [-workers 0]
//	lotus-bench -all [-scale 13]
//	lotus-bench -report json -scale 13 -o BENCH.json   # machine-readable sweep
//
// Each experiment prints the rows/series of the corresponding paper
// artifact together with the paper's reported averages for
// comparison; EXPERIMENTS.md records one full run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"lotustc/internal/core"
	"lotustc/internal/harness"
	"lotustc/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lotus-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "", "experiment ID to run (see -list)")
		all        = fs.Bool("all", false, "run every experiment")
		list       = fs.Bool("list", false, "list experiment IDs")
		scale      = fs.Uint("scale", 16, "R-MAT scale (|V| = 2^scale); other datasets sized to match")
		edgeFactor = fs.Int("edgefactor", 16, "edges per vertex before dedup")
		workers    = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		timeout    = fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		report     = fs.String("report", "text", "output format: text | json (comparator sweep, schema in DESIGN.md)")
		out        = fs.String("o", "", "with -report json: write the report to this file instead of stdout")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		phase1     = fs.String("phase1", "", "LOTUS phase-1 kernel for lotus runs: auto | scalar | word (default auto)")
		isect      = fs.String("intersect", "", "LOTUS HNN/NNN intersection kernel: adaptive | merge (default adaptive)")
		shards     = fs.Int("shards", 0, "add a lotus-sharded run with this grid dimension to the comparator sweep (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := core.ParsePhase1Kernel(*phase1); err != nil {
		fmt.Fprintf(stderr, "lotus-bench: %v\n", err)
		return 2
	}
	if _, err := core.ParseIntersectKernel(*isect); err != nil {
		fmt.Fprintf(stderr, "lotus-bench: %v\n", err)
		return 2
	}
	if *report != "text" && *report != "json" {
		fmt.Fprintf(stderr, "lotus-bench: unknown -report format %q (want text or json)\n", *report)
		return 2
	}
	if *pprofAddr != "" {
		addr, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "lotus-bench: -pprof: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "lotus-bench: debug server on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Fprintf(stdout, "%-20s %s\n", e.ID, e.Description)
		}
		return 0
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	suite := harness.Suite{
		Scale: *scale, EdgeFactor: *edgeFactor, Ctx: ctx,
		Phase1Kernel: *phase1, IntersectKernel: *isect,
		Shards: *shards,
	}
	if *report == "json" {
		br := harness.BuildBenchReport(suite, *workers)
		w := stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(stderr, "lotus-bench: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := br.WriteJSON(w); err != nil {
			fmt.Fprintf(stderr, "lotus-bench: %v\n", err)
			return 1
		}
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(stderr, "lotus-bench: %v\n", err)
			return 1
		}
		return 0
	}
	switch {
	case *all:
		if err := harness.RunAll(stdout, suite, *workers); err != nil {
			fmt.Fprintf(stderr, "lotus-bench: %v\n", err)
			return 1
		}
	case *exp != "":
		e := harness.Find(*exp)
		if e == nil {
			fmt.Fprintf(stderr, "lotus-bench: unknown experiment %q; try -list\n", *exp)
			return 2
		}
		e.Run(stdout, suite, *workers)
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(stderr, "lotus-bench: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintln(stderr, "lotus-bench: need -exp <id>, -all or -list")
		return 2
	}
	return 0
}
