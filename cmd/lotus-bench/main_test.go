package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lotustc/internal/obs"
)

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"table1", "table5", "fig9", "ext-kclique"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("listing missing %s", id)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig8", "-scale", "8", "-edgefactor", "6"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Fig 8") {
		t.Fatalf("unexpected output: %q", stdout.String())
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatal("no args should exit 2")
	}
	if code := run([]string{"-exp", "ghost"}, &stdout, &stderr); code != 2 {
		t.Fatal("unknown experiment should exit 2")
	}
	if code := run([]string{"-wat"}, &stdout, &stderr); code != 2 {
		t.Fatal("bad flag should exit 2")
	}
}

func TestJSONReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-report", "json", "-scale", "8", "-edgefactor", "6", "-workers", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var br obs.BenchReport
	if err := json.Unmarshal(stdout.Bytes(), &br); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if br.Schema != obs.SchemaBench || br.Suite != "scale-8/ef-6" || len(br.Runs) == 0 {
		t.Fatalf("bad report: %+v", br)
	}
}

func TestJSONReportToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-report", "json", "-scale", "8", "-edgefactor", "6", "-o", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("-o must leave stdout empty, got %q", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var br obs.BenchReport
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Schema != obs.SchemaBench {
		t.Fatalf("bad schema %q", br.Schema)
	}
}

func TestJSONReportFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-report", "xml"}, &stdout, &stderr); code != 2 {
		t.Fatal("unknown report format should exit 2")
	}
}
