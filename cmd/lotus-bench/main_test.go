package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"table1", "table5", "fig9", "ext-kclique"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("listing missing %s", id)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig8", "-scale", "8", "-edgefactor", "6"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Fig 8") {
		t.Fatalf("unexpected output: %q", stdout.String())
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatal("no args should exit 2")
	}
	if code := run([]string{"-exp", "ghost"}, &stdout, &stderr); code != 2 {
		t.Fatal("unknown experiment should exit 2")
	}
	if code := run([]string{"-wat"}, &stdout, &stderr); code != 2 {
		t.Fatal("bad flag should exit 2")
	}
}
