package main

import (
	"strings"
	"testing"
)

// TestSmokeSelfTest drives the whole binary path: boot on a loopback
// port, cold query, warm query, cache + speedup assertions.
func TestSmokeSelfTest(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-smoke", "-smoke-scale", "9"}, &out, &errOut); code != 0 {
		t.Fatalf("smoke exited %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "SMOKE OK") {
		t.Fatalf("no SMOKE OK in output: %s", out.String())
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestBadStreamModeExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-stream-mode-default", "sorta"}, &out, &errOut); code != 2 {
		t.Fatalf("bad stream mode exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "stream-mode-default") {
		t.Fatalf("no flag name in error: %s", errOut.String())
	}
}
