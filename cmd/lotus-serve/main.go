// Command lotus-serve runs the resident triangle-counting service:
// an HTTP/JSON server that builds or loads graphs once, keeps
// preprocessed LOTUS structures in a size-bounded cache, and answers
// count queries through the engine registry with per-request
// timeouts, admission control and graceful shutdown.
//
// Usage:
//
//	lotus-serve -addr :8090 -cache-bytes 1073741824
//	lotus-serve -smoke          # boot, self-query, verify, exit
//
// Endpoints (all JSON): GET /livez, GET /readyz, GET /healthz,
// GET /metrics, GET /v1/algorithms, POST /v1/count, POST /v1/topk,
// POST /v1/estimate, POST /v1/stream, GET|DELETE /v1/stream/{id},
// POST /v1/stream/{id}/edges, and GET|POST /debug/faults behind
// -debug-faults. With -data-dir, stream sessions persist across
// restarts (snapshot + WAL). See README.md for request schemas.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lotustc/internal/engine"
	"lotustc/internal/faults"
	"lotustc/internal/obs"
	"lotustc/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lotus-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8090", "listen address")
		cacheBytes = fs.Int64("cache-bytes", 1<<30, "graph + LOTUS structure cache budget in bytes")
		compCache  = fs.Bool("compress-cache", false, "demote cold cached graphs to varint-compressed payloads instead of evicting; misses decompress on demand into pooled arenas")
		demoteWM   = fs.Float64("demote-watermark", 0, "with -compress-cache, fraction of -cache-bytes kept for decoded graphs; the rest budgets the compressed tier (0 = 0.5)")
		maxStruct  = fs.Int64("max-structure-bytes", 0, "single-structure budget; larger lotus counts route through per-shard structures (0 = cache-bytes, or the decoded tier with -compress-cache)")
		maxConc    = fs.Int("max-concurrent", 4, "counting requests admitted at once")
		maxQueue   = fs.Int("max-queue", 64, "requests allowed to wait for admission before 429")
		defTimeout = fs.Duration("default-timeout", 60*time.Second, "per-request timeout when the request names none")
		maxTimeout = fs.Duration("max-timeout", 10*time.Minute, "upper clamp on requested timeouts")
		workers    = fs.Int("workers", 0, "worker threads per count (0 = GOMAXPROCS)")
		maxStream  = fs.Int64("max-stream-bytes", 256<<20, "per-session resident byte budget for /v1/stream sessions")
		streamMode = fs.String("stream-mode-default", "exact", "stream session mode when the request names none: exact, approx or auto")
		dataDir    = fs.String("data-dir", "", "directory for crash-safe stream-session durability (WAL + snapshots); empty = memory-only sessions")
		walSync    = fs.String("wal-sync", "always", "WAL fsync policy: always (fsync per batch) or none (leave flushing to the OS)")
		snapBytes  = fs.Int64("snapshot-bytes", 1<<20, "live-WAL size that triggers a session snapshot + WAL rotation")
		faultSpec  = fs.String("faults", "", "arm fault points at boot, e.g. \"wal.fsync:error:p=0.5;serve.build:latency:d=50ms\"")
		debugFault = fs.Bool("debug-faults", false, "mount /debug/faults for runtime fault injection (never in production)")
		allowFiles = fs.Bool("allow-files", false, "permit {\"type\":\"file\"} graph specs (filesystem access)")
		defAlgo    = fs.String("default-algorithm", "auto", "algorithm for count requests that name none; \"auto\" probes each graph and routes to the fastest")
		pprofAddr  = fs.String("pprof", "", "also start the expvar/pprof debug server on this address")
		drainWait  = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		smoke      = fs.Bool("smoke", false, "self-test: boot on a loopback port, query an R-MAT graph, verify, exit")
		smokeScale = fs.Uint("smoke-scale", 12, "R-MAT scale for -smoke")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *streamMode {
	case "exact", "approx", "auto":
	default:
		fmt.Fprintf(stderr, "lotus-serve: -stream-mode-default %q: must be exact, approx or auto\n", *streamMode)
		return 2
	}
	switch *walSync {
	case "always", "none":
	default:
		fmt.Fprintf(stderr, "lotus-serve: -wal-sync %q: must be always or none\n", *walSync)
		return 2
	}
	if _, err := engine.Lookup(*defAlgo); err != nil {
		fmt.Fprintf(stderr, "lotus-serve: -default-algorithm: %v\n", err)
		return 2
	}
	if *faultSpec != "" {
		if err := faults.Configure(*faultSpec); err != nil {
			fmt.Fprintf(stderr, "lotus-serve: -faults: %v\n", err)
			return 2
		}
	}

	if *demoteWM < 0 || *demoteWM >= 1 {
		fmt.Fprintf(stderr, "lotus-serve: -demote-watermark %g: must be in [0, 1)\n", *demoteWM)
		return 2
	}
	cfg := serve.Config{
		CacheBytes:        *cacheBytes,
		CompressCache:     *compCache,
		DemoteWatermark:   *demoteWM,
		MaxStructureBytes: *maxStruct,
		MaxConcurrent:     *maxConc,
		MaxQueue:          *maxQueue,
		DefaultTimeout:    *defTimeout,
		MaxTimeout:        *maxTimeout,
		Workers:           *workers,
		AllowFiles:        *allowFiles,
		MaxStreamBytes:    *maxStream,
		DefaultStreamMode: *streamMode,
		DataDir:           *dataDir,
		WALSync:           *walSync,
		SnapshotBytes:     *snapBytes,
		DebugFaults:       *debugFault,
		DefaultAlgorithm:  *defAlgo,
	}

	if *smoke {
		return runSmoke(cfg, *smokeScale, stdout, stderr)
	}

	if *pprofAddr != "" {
		got, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "lotus-serve: pprof server: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "lotus-serve: debug server on %s\n", got)
	}

	srv := serve.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "lotus-serve: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "lotus-serve: serving on %s\n", ln.Addr())

	// Recovery replays persisted sessions concurrently with serving:
	// /livez answers immediately while /readyz and the session
	// endpoints stay 503 "recovering" until the replay finishes.
	go func() {
		srv.Recover()
		if *dataDir != "" {
			fmt.Fprintf(stdout, "lotus-serve: session recovery done (%d restored)\n",
				srv.Metrics().Get("stream.wal_recovered"))
		}
	}()

	// Graceful shutdown: on SIGINT/SIGTERM flip /healthz to draining
	// (load balancers stop routing), then let in-flight requests
	// finish under the drain budget before the listener dies.
	idle := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(stdout, "lotus-serve: %v received, draining for up to %v\n", s, *drainWait)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(stderr, "lotus-serve: shutdown: %v\n", err)
		}
		// After the listener drains: cancel detached builds and flush a
		// final snapshot per session, so restart replays a fresh
		// snapshot instead of a long WAL tail.
		srv.Close()
		close(idle)
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "lotus-serve: serve: %v\n", err)
		return 1
	}
	<-idle
	fmt.Fprintln(stdout, "lotus-serve: drained, bye")
	return 0
}

// runSmoke boots the service on a loopback port, counts a scale-N
// R-MAT graph twice, and verifies both the answer (200, nonzero
// triangles, both queries agree) and the cache (second query is a
// result hit and at least 10x faster). It is the `make serve-smoke`
// target and doubles as a deployment sanity check.
func runSmoke(cfg serve.Config, scale uint, stdout, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "lotus-serve: SMOKE FAIL: "+format+"\n", args...)
		return 1
	}
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	body := fmt.Sprintf(`{"graph": {"type": "rmat", "scale": %d, "edge_factor": 16, "seed": 7}}`, scale)
	query := func() (*serve.CountResponse, time.Duration, error) {
		start := time.Now()
		resp, err := http.Post(base+"/v1/count", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return nil, 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
		}
		var cr serve.CountResponse
		if err := json.Unmarshal(raw, &cr); err != nil {
			return nil, 0, fmt.Errorf("bad response JSON: %v", err)
		}
		return &cr, time.Since(start), nil
	}

	first, coldT, err := query()
	if err != nil {
		return fail("cold query: %v", err)
	}
	if first.Triangles == 0 {
		return fail("cold query returned zero triangles for rmat scale %d", scale)
	}
	second, warmT, err := query()
	if err != nil {
		return fail("warm query: %v", err)
	}
	if second.Triangles != first.Triangles {
		return fail("count changed between queries: %d then %d", first.Triangles, second.Triangles)
	}
	if !second.Cache.Result {
		return fail("second identical query was not a result-cache hit")
	}
	if warmT*10 > coldT {
		return fail("warm query %v not 10x faster than cold %v", warmT, coldT)
	}
	met := srv.Metrics()
	if hits := met.Get("result.hits"); hits < 1 {
		return fail("/metrics result.hits = %d, want >= 1", hits)
	}
	fmt.Fprintf(stdout,
		"lotus-serve: SMOKE OK: rmat scale %d -> %d triangles (cold %v, warm %v, %.0fx)\n",
		scale, first.Triangles, coldT, warmT, float64(coldT)/float64(warmT))
	return 0
}
