// Command lotus-stats prints the paper's topology statistics for a
// graph: the Table 1 row (1% hubs), Table 7 sizes, Table 8 H2H
// characteristics, the Fig 8 HE/NHE edge split, the component
// structure and the degree histogram.
//
// Usage:
//
//	lotus-stats -graph web.lotg
//	lotus-stats -rmat 16
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"lotustc/internal/cc"
	"lotustc/internal/compress"
	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
	"lotustc/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lotus-stats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "binary LOTG graph file")
		rmat      = fs.Uint("rmat", 0, "generate an R-MAT graph of this scale instead of loading")
		ef        = fs.Int("edgefactor", 16, "R-MAT edge factor")
		seed      = fs.Int64("seed", 1, "R-MAT seed")
		hubFrac   = fs.Float64("hubfrac", 0.01, "Table 1 hub fraction")
		hubs      = fs.Int("hubs", 0, "LOTUS hub count for Table 7/8 (0 = adaptive)")
		timeout   = fs.Duration("timeout", 0, "abort the analysis after this long (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var g *graph.Graph
	var err error
	switch {
	case *rmat > 0:
		g = gen.RMAT(gen.DefaultRMAT(*rmat, *ef, *seed))
	case *graphPath != "":
		g, err = graph.LoadFile(*graphPath)
	default:
		fmt.Fprintln(stderr, "lotus-stats: need -graph or -rmat")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "lotus-stats: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "vertices: %d   edges: %d   max degree: %d   degree Gini: %.3f   assortativity: %+.3f\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree(), g.GiniOfDegrees(), stats.DegreeAssortativity(g))

	pool := sched.NewPool(0).Bind(ctx)
	defer pool.Release()
	comps := cc.Summarize(cc.LabelPropagation(g, pool))
	fmt.Fprintf(stdout, "components: %d (largest %.1f%%, %d isolated)\n",
		comps.Components, 100*comps.LargestShare, comps.Isolated)

	t1 := stats.ComputeTable1(g, *hubFrac)
	fmt.Fprintf(stdout, "\nTable 1 (hub fraction %.2f%%):\n", 100**hubFrac)
	fmt.Fprintf(stdout, "  hub-to-hub edges:     %6.1f%%\n", t1.HubToHubPct)
	fmt.Fprintf(stdout, "  hub-to-non-hub edges: %6.1f%%\n", t1.HubToNonHubPct)
	fmt.Fprintf(stdout, "  total hub edges:      %6.1f%%\n", t1.TotalHubPct)
	fmt.Fprintf(stdout, "  non-hub edges:        %6.1f%%\n", t1.NonHubPct)
	fmt.Fprintf(stdout, "  triangles:            %d (hub: %d = %.1f%%)\n",
		t1.TotalTriangles, t1.HubTriangles, t1.HubTrianglePct)
	fmt.Fprintf(stdout, "  hub relative density: %.0f\n", t1.RelativeDensity)
	fmt.Fprintf(stdout, "  fruitless searches:   %6.1f%%\n", t1.FruitlessSearchPct)

	if err := ctx.Err(); err != nil {
		fmt.Fprintf(stderr, "lotus-stats: %v\n", err)
		return 1
	}
	lg := core.Preprocess(g, core.Options{HubCount: *hubs, Pool: pool})
	t7 := stats.ComputeTable7(g, lg)
	fmt.Fprintf(stdout, "\nTable 7 (LOTUS hub count %d):\n", lg.HubCount)
	fmt.Fprintf(stdout, "  CSX edges: %d B   CSX: %d B   LOTUS: %d B   growth: %.1f%%\n",
		t7.CSXEdgesBytes, t7.CSXBytes, t7.LotusBytes, t7.GrowthPct)
	cs := compress.CompareSizes(g.Orient())
	fmt.Fprintf(stdout, "  gap-compressed (oriented): %d B (%.2fx of CSX)\n",
		cs.CompressedBytes, cs.Ratio)

	t8 := stats.ComputeTable8(lg)
	fmt.Fprintf(stdout, "\nTable 8: H2H density %.2f%%, zero cachelines %.2f%%\n",
		t8.DensityPct, t8.ZeroCachelinePct)

	split := stats.ComputeEdgeSplit(lg)
	fmt.Fprintf(stdout, "\nFig 8: HE %.1f%% (%d edges), NHE %.1f%% (%d edges)\n",
		split.HEPct, split.HEEdges, split.NHEPct, split.NHEEdges)

	fmt.Fprintln(stdout, "\nDegree histogram (log2 buckets):")
	for b, c := range stats.DegreeHistogram(g) {
		if c > 0 {
			lo := 0
			if b > 0 {
				lo = 1 << (b - 1)
			}
			fmt.Fprintf(stdout, "  [%6d, %6d): %d\n", lo, 1<<b, c)
		}
	}
	return 0
}
