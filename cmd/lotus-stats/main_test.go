package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"lotustc/internal/gen"
)

func TestStatsOnRMAT(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rmat", "9", "-edgefactor", "6"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, section := range []string{"vertices:", "components:", "Table 1", "Table 7", "Table 8", "Fig 8", "Degree histogram"} {
		if !strings.Contains(out, section) {
			t.Errorf("missing section %q", section)
		}
	}
}

func TestStatsOnFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.lotg")
	if err := gen.HubAndSpokes(4, 100, 2, 1).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-graph", path, "-hubs", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "hub count 4") {
		t.Fatalf("hub count not honored: %q", stdout.String())
	}
}

func TestStatsErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatal("no input should exit 2")
	}
	if code := run([]string{"-graph", "/missing"}, &stdout, &stderr); code != 1 {
		t.Fatal("missing file should exit 1")
	}
	if code := run([]string{"-junkflag"}, &stdout, &stderr); code != 2 {
		t.Fatal("bad flag should exit 2")
	}
}
