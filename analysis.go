package lotustc

import (
	"fmt"
	"sort"
	"sync/atomic"

	"lotustc/internal/approx"
	"lotustc/internal/core"
	"lotustc/internal/kclique"
	"lotustc/internal/reorder"
	"lotustc/internal/sched"
	"lotustc/internal/stats"
)

// PerVertexTriangles returns, for every vertex, the number of
// triangles it participates in — the building block of local
// clustering analysis. Workers 0 uses GOMAXPROCS.
func PerVertexTriangles(g *Graph, workers int) []uint64 {
	pool := sched.NewPool(workers)
	ra := reorder.DegreeOrder(g)
	og := g.Relabel(ra).Orient()
	n := og.NumVertices()
	counts := make([]uint64, n)
	pool.For(n, 0, func(_, start, end int) {
		for v := start; v < end; v++ {
			nv := og.Neighbors(uint32(v))
			for _, u := range nv {
				nu := og.Neighbors(u)
				i, j := 0, 0
				for i < len(nv) && j < len(nu) {
					switch {
					case nv[i] < nu[j]:
						i++
					case nv[i] > nu[j]:
						j++
					default:
						// Triangle (v, u, nv[i]): corners may be
						// claimed by other workers concurrently.
						atomic.AddUint64(&counts[v], 1)
						atomic.AddUint64(&counts[u], 1)
						atomic.AddUint64(&counts[nv[i]], 1)
						i++
						j++
					}
				}
			}
		}
	})
	// Map back to original IDs.
	out := make([]uint64, n)
	for old := 0; old < n; old++ {
		out[old] = counts[ra[old]]
	}
	return out
}

// LocalClusteringCoefficients returns lcc(v) = 2T(v)/(d(v)(d(v)-1))
// for every vertex (0 for degree < 2).
func LocalClusteringCoefficients(g *Graph, workers int) []float64 {
	tri := PerVertexTriangles(g, workers)
	out := make([]float64, len(tri))
	for v := range tri {
		d := g.Degree(uint32(v))
		if d >= 2 {
			out[v] = 2 * float64(tri[v]) / (float64(d) * float64(d-1))
		}
	}
	return out
}

// GlobalClusteringCoefficient returns 3*triangles / wedges — the
// transitivity of the graph.
func GlobalClusteringCoefficient(g *Graph, workers int) float64 {
	res, err := Count(g, Options{Algorithm: AlgoLotus, Workers: workers})
	if err != nil {
		return 0
	}
	var wedges uint64
	for v := 0; v < g.NumVertices(); v++ {
		d := uint64(g.Degree(uint32(v)))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(res.Triangles) / float64(wedges)
}

// TopDegreeVertices returns the k highest-degree vertex IDs of g
// (ties broken by ID) — the hub set for StreamingCounter.
func TopDegreeVertices(g *Graph, k int) []uint32 {
	n := g.NumVertices()
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	if k > n {
		k = n
	}
	return ids[:k]
}

// StreamingCounter counts hub triangles over an edge stream with a
// memory-resident H2H structure, the paper's §6.2 extension.
type StreamingCounter = core.Streaming

// NewStreamingCounter creates a streaming counter over n vertices
// with the given hub IDs (see TopDegreeVertices). Hub IDs must be
// distinct vertices in [0, n); invalid hub sets are rejected with an
// error so a long-lived caller never crashes on bad input.
func NewStreamingCounter(n int, hubIDs []uint32) (*StreamingCounter, error) {
	return core.NewStreaming(n, hubIDs)
}

// CountKCliques counts k-cliques (k >= 1; k == 3 is triangle
// counting), the paper's §7 future-work extension. With AlgoLotus
// (or empty) the hub-aware counter is used: all-hub cliques are
// enumerated on dense bitsets and mixed cliques on the split HE/NHE
// lists; any other algorithm selects the generic ordered enumeration.
func CountKCliques(g *Graph, k int, opt Options) (uint64, error) {
	pool := sched.NewPool(opt.Workers)
	switch opt.Algorithm {
	case "", AlgoLotus:
		lg := core.Preprocess(g, core.Options{
			HubCount: opt.HubCount, FrontFraction: opt.FrontFraction, Pool: pool,
		})
		return kclique.CountLotus(lg, k, pool), nil
	default:
		return kclique.Count(g.Orient(), k, pool), nil
	}
}

// EstimateTriangles approximates the triangle count. Method selects
// the estimator:
//
//   - "doulion": keep each edge with probability p, scale by p^-3.
//   - "wedge": sample `samples` random wedges (p ignored).
//   - "hybrid": the paper's §6.2 hybrid — LOTUS-exact hub triangles
//     plus Doulion-sampled NNN; far tighter than doulion at equal p
//     on skewed graphs because only the small NNN share is sampled.
func EstimateTriangles(g *Graph, method string, p float64, samples int, seed int64) (float64, error) {
	pool := sched.NewPool(0)
	switch method {
	case "doulion":
		return approx.Doulion(g, p, seed, pool), nil
	case "wedge":
		return approx.WedgeSampling(g, samples, seed), nil
	case "hybrid":
		h := approx.Hybrid(g, p, seed, core.Options{Pool: pool}, pool)
		return h.Estimate, nil
	default:
		return 0, fmt.Errorf("lotustc: unknown estimator %q", method)
	}
}

// GraphStats bundles the paper's topology statistics for one graph.
type GraphStats struct {
	Vertices  int
	Edges     int64
	MaxDegree int
	Gini      float64
	// Assortativity is Newman's degree-degree correlation r.
	Assortativity float64
	Table1        stats.Table1
}

// Stats computes Table 1-style characteristics of g with the paper's
// 1% hub fraction.
func Stats(g *Graph) GraphStats {
	return GraphStats{
		Vertices:      g.NumVertices(),
		Edges:         g.NumEdges(),
		MaxDegree:     g.MaxDegree(),
		Gini:          g.GiniOfDegrees(),
		Assortativity: stats.DegreeAssortativity(g),
		Table1:        stats.ComputeTable1(g, 0.01),
	}
}
