package tune

import (
	"strings"
	"testing"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
	"lotustc/internal/sched"
	"lotustc/internal/stats"
)

// TestPolicyGolden pins the routing decision for each structural
// regime. These are golden values: a policy or threshold change that
// re-routes one of these graphs must update this table deliberately,
// with fresh BENCH numbers justifying it.
func TestPolicyGolden(t *testing.T) {
	pool := sched.NewPool(0)
	cases := []struct {
		name      string
		g         *graph.Graph
		wantAlgo  string
		wantWord  bool   // Phase1Kernel pinned to "word"
		reasonSub string // substring the reason must carry
	}{
		// Tiny graphs take the default regardless of shape.
		{"tiny-complete", gen.Complete(50), "lotus", false, "tiny graph"},
		{"tiny-trigrid", gen.TriGrid(20, 30), "lotus", false, "tiny graph"},
		{"empty", graph.FromEdges(nil, graph.BuildOptions{NumVertices: 8192}), "lotus", false, "empty graph"},
		// Power-law analogs: hubs cover the edges, LOTUS wins. At this
		// scale the H2H array is over half full, so word is pinned too.
		{"rmat-13", gen.RMAT(gen.DefaultRMAT(13, 8, 42)), "lotus", true, "hub edge coverage"},
		// Flat sparse graphs: weak hubs, short rows, cover-edge wins.
		{"trigrid-100", gen.TriGrid(100, 100), "cover-edge", false, "short rows"},
		{"ba-8k", gen.BarabasiAlbert(8192, 4, 9), "cover-edge", false, "short rows"},
		// Flat but dense: weak hubs, long rows, stay on lotus.
		{"er-dense", gen.ErdosRenyi(8192, 65536, 11), "lotus", false, "dense rows"},
	}
	for _, tc := range cases {
		d := Analyze(tc.g, 0, pool, Overrides{})
		if d.Algorithm != tc.wantAlgo {
			t.Errorf("%s: routed to %s, want %s (reason: %s)", tc.name, d.Algorithm, tc.wantAlgo, d.Reason)
			continue
		}
		if word := d.Phase1Kernel == "word"; word != tc.wantWord {
			t.Errorf("%s: phase1 kernel %q, want word=%v (h2h density %.1f%%)",
				tc.name, d.Phase1Kernel, tc.wantWord, d.Probe.H2HDensityPct)
		}
		if !strings.Contains(d.Reason, tc.reasonSub) {
			t.Errorf("%s: reason %q does not mention %q", tc.name, d.Reason, tc.reasonSub)
		}
		if d.Overridden {
			t.Errorf("%s: no overrides given but Overridden is set", tc.name)
		}
		if d.IntersectKernel != "adaptive" {
			t.Errorf("%s: intersect kernel %q, want adaptive", tc.name, d.IntersectKernel)
		}
	}
}

// TestDecisionDeterministic: the probe and policy must yield the same
// decision (stats included) on repeat runs over the same graph.
func TestDecisionDeterministic(t *testing.T) {
	pool := sched.NewPool(0)
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 7))
	first := Analyze(g, 0, pool, Overrides{})
	for i := 0; i < 3; i++ {
		d := Analyze(g, 0, pool, Overrides{})
		if d.Algorithm != first.Algorithm || d.Reason != first.Reason {
			t.Fatalf("run %d: decision changed: %s / %s", i, d.Algorithm, d.Reason)
		}
		if d.Probe != first.Probe {
			t.Fatalf("run %d: probe stats changed:\n%+v\n%+v", i, d.Probe, first.Probe)
		}
	}
}

// TestWordKernelPinning: the phase-1 word kernel is pinned above the
// density threshold and left on auto below it.
func TestWordKernelPinning(t *testing.T) {
	base := stats.Probe{Vertices: 100000, Edges: 1000000, AvgDegree: 20,
		HubEdgeCoveragePct: 60}
	base.H2HDensityPct = WordKernelH2HDensityPct + 5
	if d := Decide(base, Overrides{}); d.Phase1Kernel != "word" {
		t.Errorf("density %.0f%%: phase1 = %q, want word", base.H2HDensityPct, d.Phase1Kernel)
	}
	base.H2HDensityPct = WordKernelH2HDensityPct - 5
	if d := Decide(base, Overrides{}); d.Phase1Kernel != "auto" {
		t.Errorf("density %.0f%%: phase1 = %q, want auto", base.H2HDensityPct, d.Phase1Kernel)
	}
}

// TestOverrides: pinning fields forces the decision, marks it
// Overridden, and keeps the policy's original choice in the reason.
func TestOverrides(t *testing.T) {
	p := stats.Probe{Vertices: 100000, Edges: 300000, AvgDegree: 6, HubEdgeCoveragePct: 5}
	if d := Decide(p, Overrides{}); d.Algorithm != "cover-edge" || d.Overridden {
		t.Fatalf("baseline: %+v", d)
	}
	d := Decide(p, Overrides{Algorithm: "degree-partition"})
	if d.Algorithm != "degree-partition" || !d.Overridden {
		t.Fatalf("algorithm override: %+v", d)
	}
	if !strings.Contains(d.Reason, "override") || !strings.Contains(d.Reason, "policy chose") {
		t.Fatalf("override reason lacks provenance: %q", d.Reason)
	}
	// Pinning to what the policy already chose is not an override.
	if d := Decide(p, Overrides{Algorithm: "cover-edge"}); d.Overridden {
		t.Fatalf("no-op algorithm pin marked Overridden: %+v", d)
	}
	if d := Decide(p, Overrides{Phase1Kernel: "word", IntersectKernel: "merge"}); !d.Overridden ||
		d.Phase1Kernel != "word" || d.IntersectKernel != "merge" {
		t.Fatalf("kernel overrides: %+v", d)
	}
}

// TestReportAndPublish: the wire block carries the full provenance
// and Publish lands the counters under their obs names.
func TestReportAndPublish(t *testing.T) {
	pool := sched.NewPool(0)
	g := gen.TriGrid(100, 100)
	d := Analyze(g, 0, pool, Overrides{})
	r := d.Report()
	if r.Algorithm != d.Algorithm || r.Reason != d.Reason || r.ProbeNS <= 0 {
		t.Fatalf("report block: %+v", r)
	}
	for _, k := range []string{"vertices", "edges", "avg_degree", "degree_gini",
		"hub_edge_coverage_pct", "h2h_density_pct", "assortativity"} {
		if _, ok := r.Stats[k]; !ok {
			t.Errorf("report stats missing %q", k)
		}
	}
	m := obs.New()
	d.Publish(m)
	snap := m.Snapshot()
	if snap[obs.TuneProbes] != 1 {
		t.Errorf("%s = %d, want 1", obs.TuneProbes, snap[obs.TuneProbes])
	}
	if snap[obs.TuneProbeNS] <= 0 {
		t.Errorf("%s = %d, want > 0", obs.TuneProbeNS, snap[obs.TuneProbeNS])
	}
	if snap[obs.TuneDecisionPrefix+d.Algorithm] != 1 {
		t.Errorf("decision counter for %s not bumped", d.Algorithm)
	}
	if snap[obs.TuneOverridden] != 0 {
		t.Errorf("%s = %d, want 0", obs.TuneOverridden, snap[obs.TuneOverridden])
	}
}
