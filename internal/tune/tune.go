// Package tune is the structural auto-tuner: it probes cheap stats
// about a graph (degree skew, assortativity, hub edge coverage, H2H
// density — see stats.ComputeProbe) and routes the count to the
// registry algorithm and kernel knobs the structure favors. The
// policy is a transparent, ordered decision list — every branch has a
// one-line reason recorded in the run report's Decision block, and
// every threshold is a named constant below — so a mis-routed graph
// is diagnosable from the report alone and the BENCH_*.json
// auto-vs-fixed sweep can validate each branch empirically.
//
// The policy routes between two regimes:
//
//   - Hub-covered or dense graphs: when a small top-degree set covers
//     a large share of the edges (power-law social/web analogs), or
//     the graph is flat but dense enough that oriented intersections
//     dominate, LOTUS's bespoke structures win — the paper's design
//     point.
//   - Sparse weak-hub graphs (meshes, road networks, low-degree
//     preferential attachment): no hub set covers anything and rows
//     are short, so LOTUS pays relabeling + H2H for nothing;
//     cover-edge counting intersects only the BFS-horizontal edges
//     and skips structure building entirely.
//
// degree-partition is deliberately never routed to: the calibration
// sweep (BENCH_PR10.json) measures it 1.3-4x behind the winner on
// every corpus graph — its per-class blocks multiply the block-triple
// enumeration without improving locality at in-memory scale. It stays
// registered for explicit selection and -tune-algo ablation.
package tune

import (
	"fmt"
	"time"

	"lotustc/internal/graph"
	"lotustc/internal/obs"
	"lotustc/internal/sched"
	"lotustc/internal/stats"
)

// The policy thresholds. Calibrated against the BENCH_PR10.json
// auto-vs-fixed sweep (scale-15 suite + the 12-graph corpus); see
// DESIGN.md "Structural auto-tuning" for the measured margins behind
// each value.
const (
	// MinTuneVertices: below this the whole count is sub-millisecond
	// and routing overhead would dominate any win; take the default.
	MinTuneVertices = 4096
	// HubCoverageLotusPct: when at least this share of edges touches a
	// hub, the HE/H2H structures capture the work and LOTUS wins
	// (measured 67-79% on the R-MAT/Chung-Lu analogs, under 7% on
	// every flat graph — the gap is wide, the threshold uncritical).
	HubCoverageLotusPct = 35
	// CoverEdgeMaxAvgDegree: with weak hub coverage, cover-edge wins
	// only while rows are short — it intersects full (unoriented)
	// neighbour lists, so its per-cover-edge cost grows with degree
	// faster than LOTUS's oriented sweeps. Measured crossover: wins at
	// average degree 6-8 (triangulated grids 2.4x, Barabási-Albert
	// 1.35x), loses by ~20% at 16 (Erdős–Rényi) and ~40% at 32
	// (capped Chung-Lu).
	CoverEdgeMaxAvgDegree = 12.0
	// WordKernelH2HDensityPct: pin the word-parallel phase-1 kernel
	// only when the H2H bit array is over half full; at 40-50%
	// density the measured word-vs-auto gap is inside noise, and
	// pinning word there regressed cl-web20 by 6%.
	WordKernelH2HDensityPct = 50.0
)

// Overrides force parts of a decision for ablation. Empty fields
// leave the policy's choice in place.
type Overrides struct {
	// Algorithm pins the routed algorithm (e.g. "lotus" to measure
	// what auto would have cost without the new kernels).
	Algorithm string
	// Phase1Kernel / IntersectKernel pin the kernel knobs.
	Phase1Kernel    string
	IntersectKernel string
}

// Decision is one routing choice plus its full provenance.
type Decision struct {
	// Algorithm is the registry kernel to run.
	Algorithm string
	// Phase1Kernel / IntersectKernel are the selected kernel knobs
	// ("" = engine default).
	Phase1Kernel    string
	IntersectKernel string
	// Reason is the one-line policy explanation.
	Reason string
	// Overridden marks a decision forced by an Overrides field.
	Overridden bool
	// Probe holds the stats the policy read; ProbeTime what measuring
	// them cost.
	Probe     stats.Probe
	ProbeTime time.Duration
}

// Analyze probes g and decides. hubCount has core.Options semantics
// (0 = adaptive); pool supplies probe workers and cancellation.
func Analyze(g *graph.Graph, hubCount int, pool *sched.Pool, ov Overrides) Decision {
	t0 := time.Now()
	p := stats.ComputeProbe(g, hubCount, pool)
	d := Decide(p, ov)
	d.ProbeTime = time.Since(t0)
	return d
}

// Decide evaluates the routing policy on an already-computed probe.
func Decide(p stats.Probe, ov Overrides) Decision {
	d := decide(p)
	if ov.Algorithm != "" && ov.Algorithm != d.Algorithm {
		d.Algorithm = ov.Algorithm
		d.Reason = fmt.Sprintf("override: algorithm pinned to %q (policy chose %s)", ov.Algorithm, d.Reason)
		d.Overridden = true
	}
	if ov.Phase1Kernel != "" {
		d.Phase1Kernel = ov.Phase1Kernel
		d.Overridden = true
	}
	if ov.IntersectKernel != "" {
		d.IntersectKernel = ov.IntersectKernel
		d.Overridden = true
	}
	d.Probe = p
	return d
}

// decide is the ordered decision list. Branches are checked top to
// bottom; the first match wins.
func decide(p stats.Probe) Decision {
	// The adaptive intersection dispatcher is never worse than pinned
	// merge in the sweep, so every branch selects it explicitly.
	const adaptive = "adaptive"
	phase1 := "auto"
	if p.H2HDensityPct >= WordKernelH2HDensityPct {
		phase1 = "word"
	}
	switch {
	case p.Edges == 0:
		return Decision{Algorithm: "lotus", Phase1Kernel: "auto", IntersectKernel: adaptive,
			Reason: "empty graph: nothing to route, take the default"}
	case p.Vertices < MinTuneVertices:
		return Decision{Algorithm: "lotus", Phase1Kernel: "auto", IntersectKernel: adaptive,
			Reason: fmt.Sprintf("tiny graph (|V| %d < %d): routing overhead would dominate, take the default",
				p.Vertices, MinTuneVertices)}
	case p.HubEdgeCoveragePct >= HubCoverageLotusPct:
		return Decision{Algorithm: "lotus", Phase1Kernel: phase1, IntersectKernel: adaptive,
			Reason: fmt.Sprintf("hub edge coverage %.1f%% >= %.0f%%: the HE/H2H structures capture the work (gini %.2f)",
				p.HubEdgeCoveragePct, float64(HubCoverageLotusPct), p.DegreeGini)}
	case p.AvgDegree <= CoverEdgeMaxAvgDegree:
		return Decision{Algorithm: "cover-edge", IntersectKernel: adaptive,
			Reason: fmt.Sprintf("weak hub coverage (%.1f%% < %.0f%%) and short rows (avg degree %.1f <= %.0f): skip hub machinery, intersect only cover edges",
				p.HubEdgeCoveragePct, float64(HubCoverageLotusPct), p.AvgDegree, CoverEdgeMaxAvgDegree)}
	default:
		return Decision{Algorithm: "lotus", Phase1Kernel: phase1, IntersectKernel: adaptive,
			Reason: fmt.Sprintf("weak hub coverage (%.1f%%) but dense rows (avg degree %.1f > %.0f): unoriented cover-edge intersections would lose to the oriented sweeps",
				p.HubEdgeCoveragePct, p.AvgDegree, CoverEdgeMaxAvgDegree)}
	}
}

// Report converts the decision into the run-report wire block.
func (d *Decision) Report() *obs.TuneDecision {
	return &obs.TuneDecision{
		Algorithm:       d.Algorithm,
		Phase1Kernel:    d.Phase1Kernel,
		IntersectKernel: d.IntersectKernel,
		Reason:          d.Reason,
		Overridden:      d.Overridden,
		ProbeNS:         d.ProbeTime.Nanoseconds(),
		Stats:           d.Probe.StatsMap(),
	}
}

// Publish records the decision on a metrics registry: the probe
// counters, the per-algorithm decision counter, and the permille
// stat gauges /metrics mirrors. Nil-safe like every obs method.
func (d *Decision) Publish(m *obs.Metrics) {
	m.Add(obs.TuneProbes, 1)
	m.AddDuration(obs.TuneProbeNS, d.ProbeTime)
	m.Add(obs.TuneDecisionPrefix+d.Algorithm, 1)
	if d.Overridden {
		m.Add(obs.TuneOverridden, 1)
	}
	m.Set(obs.TuneStatGiniPermille, int64(d.Probe.DegreeGini*1000))
	m.Set(obs.TuneStatHubCoveragePermille, int64(d.Probe.HubEdgeCoveragePct*10))
	m.Set(obs.TuneStatH2HDensityPermille, int64(d.Probe.H2HDensityPct*10))
	m.Set(obs.TuneStatAssortPermille, int64(d.Probe.Assortativity*1000))
}
