package shard

import (
	"testing"
)

func checkPartition(t *testing.T, w []uint64, p int, ranges []VertexRange) {
	t.Helper()
	if len(ranges) != p {
		t.Fatalf("got %d ranges for p=%d", len(ranges), p)
	}
	var pos uint32
	for b, r := range ranges {
		if r.Lo != pos {
			t.Fatalf("range %d starts at %d, want %d (ranges must be contiguous)", b, r.Lo, pos)
		}
		if r.Hi < r.Lo {
			t.Fatalf("range %d inverted: [%d, %d)", b, r.Lo, r.Hi)
		}
		pos = r.Hi
	}
	if int(pos) != len(w) {
		t.Fatalf("ranges cover [0, %d), want [0, %d)", pos, len(w))
	}
}

func TestPartitionByWeight(t *testing.T) {
	t.Run("uniform", func(t *testing.T) {
		w := make([]uint64, 100)
		for i := range w {
			w[i] = 1
		}
		ranges := PartitionByWeight(w, 4)
		checkPartition(t, w, 4, ranges)
		for b, r := range ranges {
			if r.Len() != 25 {
				t.Fatalf("uniform weights: range %d has %d vertices, want 25", b, r.Len())
			}
		}
	})
	t.Run("skewed", func(t *testing.T) {
		// One vertex holds half the weight: its block must stay small
		// in vertex count while the others split the rest.
		w := make([]uint64, 1000)
		for i := range w {
			w[i] = 1
		}
		w[0] = 1000
		ranges := PartitionByWeight(w, 4)
		checkPartition(t, w, 4, ranges)
		if ranges[0].Len() >= 500 {
			t.Fatalf("skewed weights: heavy block spans %d vertices, want far fewer", ranges[0].Len())
		}
	})
	t.Run("more-blocks-than-vertices", func(t *testing.T) {
		w := []uint64{5, 5}
		ranges := PartitionByWeight(w, 8)
		checkPartition(t, w, 8, ranges)
	})
	t.Run("empty", func(t *testing.T) {
		ranges := PartitionByWeight(nil, 3)
		checkPartition(t, nil, 3, ranges)
	})
	t.Run("single-heavy-swallows-targets", func(t *testing.T) {
		// A single huge weight forces empty trailing ranges before it
		// and must not break coverage.
		w := []uint64{0, 0, 1 << 40, 0, 1}
		ranges := PartitionByWeight(w, 4)
		checkPartition(t, w, 4, ranges)
	})
}

// FuzzPartition exercises the partitioner over arbitrary weight
// shapes and grid sizes: whatever the input, the result must be p
// contiguous, sorted, disjoint ranges covering [0, n) — including
// empty ranges, single-vertex blocks and all-weight-in-one-block
// degeneracies.
func FuzzPartition(f *testing.F) {
	f.Add([]byte{1, 1, 1, 1}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{255}, uint8(8))
	f.Add([]byte{0, 0, 0, 200, 0, 0}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, pRaw uint8) {
		p := int(pRaw)%MaxGrid + 1
		w := make([]uint64, len(raw))
		for i, b := range raw {
			w[i] = uint64(b)
		}
		ranges := PartitionByWeight(w, p)
		checkPartition(t, w, p, ranges)
	})
}
