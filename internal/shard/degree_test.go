package shard

import (
	"fmt"
	"math/bits"
	"testing"

	"lotustc/internal/gen"
	"lotustc/internal/sched"
)

// TestShardEquivalenceDegreePartition: the degree-class partition must
// reproduce the monolithic count bit for bit — total AND class split —
// on every corpus graph and across hub counts, because it shares the
// hub set (top degrees, ID-ascending ties) with the LOTUS relabeling
// even though the full orderings differ.
func TestShardEquivalenceDegreePartition(t *testing.T) {
	pool := sched.NewPool(0)
	for name, g := range corpus() {
		n := g.NumVertices()
		for _, hubs := range []int{0, 7, n / 2} {
			want := monolithic(t, g, hubs)
			gr, err := Build(g, Options{Strategy: PartitionDegree, HubCount: hubs})
			if err != nil {
				t.Fatalf("%s hubs=%d: Build: %v", name, hubs, err)
			}
			label := fmt.Sprintf("%s hubs=%d degree-partition", name, hubs)
			assertSameCounts(t, label, want, gr.Count(pool, CountOptions{}))
		}
	}
}

// TestDegreeClassRanges: the partition must be one contiguous range
// per populated log2 degree class, sorted, disjoint, covering [0, n),
// with degree class constant inside each range.
func TestDegreeClassRanges(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 42))
	pl, err := NewPlan(g, Options{Strategy: PartitionDegree})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	n := g.NumVertices()
	if pl.P != len(pl.Ranges) {
		t.Fatalf("P = %d but %d ranges", pl.P, len(pl.Ranges))
	}
	if pl.P > 33 {
		t.Fatalf("%d degree classes, want <= 33", pl.P)
	}
	// Invert the relabeling to read degrees in relabeled order.
	degNew := make([]int, n)
	for old := 0; old < n; old++ {
		degNew[pl.Relabeling[old]] = g.Degree(uint32(old))
	}
	next := uint32(0)
	seen := make(map[int]bool)
	for i, r := range pl.Ranges {
		if r.Lo != next {
			t.Fatalf("range %d starts at %d, want %d (disjoint cover)", i, r.Lo, next)
		}
		if r.Hi <= r.Lo {
			t.Fatalf("range %d empty [%d, %d): degree classes are populated by construction", i, r.Lo, r.Hi)
		}
		cls := bits.Len(uint(degNew[r.Lo]))
		if seen[cls] {
			t.Fatalf("degree class %d split across ranges", cls)
		}
		seen[cls] = true
		for v := r.Lo; v < r.Hi; v++ {
			if c := bits.Len(uint(degNew[v])); c != cls {
				t.Fatalf("vertex %d in range %d has class %d, range is class %d", v, i, c, cls)
			}
		}
		next = r.Hi
	}
	if next != uint32(n) {
		t.Fatalf("ranges cover [0, %d), want [0, %d)", next, n)
	}
}
