package shard

import (
	"fmt"
	"time"

	"lotustc/internal/core"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
	"lotustc/internal/reorder"
	"lotustc/internal/sched"
)

// VertexRange aliases the core type: a contiguous [Lo, Hi) range of
// relabeled vertex IDs.
type VertexRange = core.VertexRange

// DefaultGrid is the grid dimension used when none is requested.
const DefaultGrid = 2

// MaxGrid bounds the grid dimension: triple enumeration is
// O(p^3 / 6) and per-apex range restriction is O(p^2), so an absurd p
// would turn scheduling overhead into the dominant cost long before
// this limit.
const MaxGrid = 64

// Strategy selects how the relabeled ID space is partitioned into a
// plan's vertex ranges.
type Strategy int

const (
	// PartitionWeight is the default 2D strategy: reorder.Lotus
	// relabeling, Grid ranges balanced by oriented degree.
	PartitionWeight Strategy = iota
	// PartitionDegree is Kolountzakis-style degree-based partitioning
	// (arXiv:1011.0468): a full reorder.DegreeOrder relabeling, one
	// range per log2 degree class. Degree is monotone in the relabeled
	// ID, so every class is a contiguous range and the existing grid
	// machinery applies unchanged; the hub set (IDs < HubCount) is the
	// same top-degree set the LOTUS relabeling picks, so totals AND
	// the class split stay bit-identical to the lotus kernel. Options.
	// Grid is ignored: P is the class count (<= 33 < MaxGrid).
	PartitionDegree
)

// Options configure a grid build.
type Options struct {
	// Grid is the dimension p of the p×p block grid (0 = DefaultGrid;
	// 1 is valid and yields a single block, the monolithic layout in
	// shard clothing). Ignored by PartitionDegree.
	Grid int
	// Strategy selects the range construction (default
	// PartitionWeight).
	Strategy Strategy
	// HubCount and FrontFraction are the LOTUS preprocessing knobs,
	// with the same meaning and defaults as core.Options: the grid's
	// shared relabeling is computed exactly as the monolithic path
	// would.
	HubCount      int
	FrontFraction float64
	// Pool supplies workers for parallel preprocessing; nil uses a
	// GOMAXPROCS pool.
	Pool *sched.Pool
	// Metrics, when non-nil, receives the build counters
	// (shard.blocks, shard.preprocess.ns).
	Metrics *obs.Metrics
}

// Plan is the cheap, shard-independent half of a grid build: the
// global relabeling, the hub count, and the degree-aware vertex
// ranges. A serving layer caches the plan and each shard as separate
// LRU entries, so evicting one shard never throws away the
// partitioning work.
type Plan struct {
	// P is the grid dimension.
	P int
	// Ranges are the P contiguous relabeled-ID ranges, sorted,
	// disjoint, covering [0, n). Ranges may be empty.
	Ranges []VertexRange
	// Relabeling maps original ID -> relabeled ID (shared by every
	// shard).
	Relabeling []uint32
	// HubCount is the global hub count.
	HubCount uint32

	hubOpt      int
	frontFrac   float64
	numVertices int
}

// NumVertices returns |V|.
func (pl *Plan) NumVertices() int { return pl.numVertices }

// SizeBytes estimates the plan's resident footprint (the relabeling
// array dominates).
func (pl *Plan) SizeBytes() int64 { return 4*int64(pl.numVertices) + 8*int64(pl.P) + 64 }

// NewPlan computes the shared relabeling and the degree-aware
// partition for a p-way grid over g. Blocks are balanced by oriented
// degree (each vertex weighted by its count of lower-relabeled-ID
// neighbours, plus one so empty tails still spread), which is the
// per-row work both preprocessing and counting pay.
func NewPlan(g *graph.Graph, opt Options) (*Plan, error) {
	if g == nil {
		return nil, core.ErrNilGraph
	}
	if g.Oriented {
		return nil, core.ErrOriented
	}
	p := opt.Grid
	if p == 0 {
		p = DefaultGrid
	}
	if p < 1 || p > MaxGrid {
		return nil, fmt.Errorf("shard: grid dimension %d out of range [1, %d]", p, MaxGrid)
	}
	pool := opt.Pool
	if pool == nil {
		pool = sched.NewPool(0)
	}
	n := g.NumVertices()
	hubCount := uint32(core.Options{HubCount: opt.HubCount}.EffectiveHubCount(n))
	if opt.Strategy == PartitionDegree {
		ra := reorder.DegreeOrder(g)
		ranges := degreeClassRanges(g, ra)
		return &Plan{
			P:           len(ranges),
			Ranges:      ranges,
			Relabeling:  ra,
			HubCount:    hubCount,
			hubOpt:      opt.HubCount,
			frontFrac:   opt.FrontFraction,
			numVertices: n,
		}, nil
	}
	ra := reorder.Lotus(g, reorder.LotusOptions{HubCount: int(hubCount), FrontFraction: opt.FrontFraction})

	// Weight each relabeled ID by its oriented degree |N^<_v| + 1: the
	// number of HE+NHE entries its row will hold, which is what both
	// the per-shard build and the per-apex counting walk.
	w := make([]uint64, n)
	pool.For(n, 0, func(_, start, end int) {
		for vOld := start; vOld < end; vOld++ {
			if pool.Cancelled() {
				return
			}
			vNew := ra[vOld]
			var d uint64
			for _, uOld := range g.Neighbors(uint32(vOld)) {
				if ra[uOld] < vNew {
					d++
				}
			}
			w[vNew] = d + 1
		}
	})

	return &Plan{
		P:           p,
		Ranges:      PartitionByWeight(w, p),
		Relabeling:  ra,
		HubCount:    hubCount,
		hubOpt:      opt.HubCount,
		frontFrac:   opt.FrontFraction,
		numVertices: n,
	}, nil
}

// BuildShard builds block b's LOTUS structure. Shards are independent
// of each other, so a caller may build them concurrently, lazily, or
// on cache miss only.
func (pl *Plan) BuildShard(g *graph.Graph, b int, pool *sched.Pool) (*core.LotusShard, error) {
	if b < 0 || b >= pl.P {
		return nil, fmt.Errorf("shard: block %d out of range [0, %d)", b, pl.P)
	}
	return core.TryPreprocessRange(g, core.Options{
		HubCount:      pl.hubOpt,
		FrontFraction: pl.frontFrac,
		Pool:          pool,
	}, pl.Relabeling, pl.Ranges[b])
}

// Grid is a complete sharded LOTUS structure: the plan's partition
// plus one built shard per block. It is the sharded counterpart of
// core.LotusGraph and the value engine.Params.PreparedGrid carries.
type Grid struct {
	// P is the grid dimension.
	P int
	// Ranges[b] is shard b's relabeled-ID range.
	Ranges []VertexRange
	// HubCount is the global hub count.
	HubCount uint32
	// Relabeling maps original ID -> relabeled ID.
	Relabeling []uint32
	// Shards are the per-block structures, Shards[b] covering
	// Ranges[b].
	Shards []*core.LotusShard
	// PreprocessTime is the wall time of Build (plan + all shards);
	// grids assembled from cached shards report zero.
	PreprocessTime time.Duration

	numVertices int
}

// NumVertices returns |V|.
func (gr *Grid) NumVertices() int { return gr.numVertices }

// TopologyBytes returns the summed structure footprint of every
// shard.
func (gr *Grid) TopologyBytes() int64 {
	var b int64
	for _, s := range gr.Shards {
		b += s.TopologyBytes()
	}
	return b
}

// Assemble checks that the shards match the plan — same ranges, same
// hub count, same graph — and wraps them into a Grid. The checks are
// the serving layer's corruption firewall: shards arrive from a cache
// keyed by request parameters, and a stale or crossed entry must fail
// the assembly, not corrupt a count.
func Assemble(pl *Plan, shards []*core.LotusShard) (*Grid, error) {
	if len(shards) != pl.P {
		return nil, fmt.Errorf("shard: %d shards for a %d-way plan", len(shards), pl.P)
	}
	for b, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("shard: block %d is nil", b)
		}
		if s.Range != pl.Ranges[b] {
			return nil, fmt.Errorf("shard: block %d covers [%d, %d), plan says [%d, %d)",
				b, s.Range.Lo, s.Range.Hi, pl.Ranges[b].Lo, pl.Ranges[b].Hi)
		}
		if s.HubCount != pl.HubCount {
			return nil, fmt.Errorf("shard: block %d built with %d hubs, plan says %d", b, s.HubCount, pl.HubCount)
		}
		if s.NumVertices() != pl.numVertices {
			return nil, fmt.Errorf("shard: block %d built from a %d-vertex graph, plan says %d",
				b, s.NumVertices(), pl.numVertices)
		}
	}
	return &Grid{
		P:           pl.P,
		Ranges:      pl.Ranges,
		HubCount:    pl.HubCount,
		Relabeling:  pl.Relabeling,
		Shards:      shards,
		numVertices: pl.numVertices,
	}, nil
}

// Build runs the whole pipeline: plan, build every shard, assemble.
func Build(g *graph.Graph, opt Options) (*Grid, error) {
	t0 := time.Now()
	pl, err := NewPlan(g, opt)
	if err != nil {
		return nil, err
	}
	pool := opt.Pool
	if pool == nil {
		pool = sched.NewPool(0)
	}
	shards := make([]*core.LotusShard, pl.P)
	for b := range shards {
		if pool.Cancelled() {
			break
		}
		if shards[b], err = pl.BuildShard(g, b, pool); err != nil {
			return nil, err
		}
	}
	if pool.Cancelled() {
		// The engine discards the run on a done context; return a
		// well-formed error rather than a half-built grid.
		return nil, fmt.Errorf("shard: build cancelled")
	}
	gr, err := Assemble(pl, shards)
	if err != nil {
		return nil, err
	}
	gr.PreprocessTime = time.Since(t0)
	if m := opt.Metrics; m != nil {
		m.Set(obs.ShardBlocks, int64(gr.P))
		m.AddDuration(obs.ShardPreprocessNS, gr.PreprocessTime)
	}
	return gr, nil
}
