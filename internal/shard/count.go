package shard

import (
	"sync/atomic"
	"time"

	"lotustc/internal/core"
	"lotustc/internal/intersect"
	"lotustc/internal/obs"
	"lotustc/internal/sched"
)

// CountOptions tune a sharded count.
type CountOptions struct {
	// Phase1Kernel selects the H2H probe strategy for the hub-pair
	// part, with the same semantics (and the same per-row auto
	// heuristic) as the monolithic phase 1.
	Phase1Kernel core.Phase1Kernel
	// Intersect selects the HNN/NNN intersection strategy.
	Intersect core.IntersectKernel
	// Metrics, when non-nil, receives the counting counters
	// (shard.triples, shard.tiles, shard.polls, shard.count.ns).
	Metrics *obs.Metrics
	// TrackTriples records the per-block-triple triangle totals into
	// Result.PerTriple — the instrumentation the "every triangle is
	// counted by exactly one triple" property test keys on. Off by
	// default; tracking costs one atomic add per tile.
	TrackTriples bool
}

// TripleCount is one block triple's triangle total.
type TripleCount struct {
	I, J, K int
	Total   uint64
}

// Result carries the totals, the per-class breakdown, the wall time
// and the load report of one sharded count.
type Result struct {
	Total              uint64
	HHH, HHN, HNN, NNN uint64
	// CountTime is the wall time of the counting sweep (the grid's
	// build time lives on Grid.PreprocessTime).
	CountTime time.Duration
	// Load is the tile scheduler's report.
	Load sched.LoadReport
	// Triples is the number of block triples enumerated with live
	// work; Tiles the number of scheduled apex sub-range tasks.
	Triples, Tiles int
	// PerTriple holds every live triple's total when
	// CountOptions.TrackTriples was set, in enumeration order.
	PerTriple []TripleCount
}

// triple is one block triple (i <= j <= k): apexes x stream from
// block k, their neighbours y from block j and z from block i, with
// z < y < x guaranteed by the ascending block ranges.
type triple struct {
	i, j, k int
	// The per-part work masks, precomputed from the ranges' hub /
	// non-hub overlap so dead parts cost nothing per apex.
	p1, hnn, nnn bool
}

// ctile is one scheduled task: the apex sub-range [lo, hi) of one
// triple.
type ctile struct {
	t      int
	lo, hi uint32
}

// shardScratch is a worker's reusable state: the hub bitmap of the
// word-parallel hub-pair kernel (<= 8 KB at the 2^16 hub cap, same as
// the monolithic phase-1 scratch).
type shardScratch struct {
	bm []uint64
}

// Count runs the sharded triangle count: every block triple
// (i <= j <= k) is enumerated, split into apex sub-range tiles, and
// scheduled over the pool. For a triple, apexes x stream from shard
// k's rows; the hub-pair part probes shard j's H2H rows against the
// apex's R_i hub neighbours (HHH when the apex is a hub, HHN
// otherwise), the HNN part intersects R_i-restricted HE rows across
// shards k and j, and the NNN part does the same over NHE rows. Each
// triangle z < y < x is counted exactly once: by the unique triple
// (block(z), block(j), block(k)) at the same apex and with the same
// hubness pattern as the monolithic count, which is why the per-class
// totals match bit for bit.
func (gr *Grid) Count(pool *sched.Pool, opt CountOptions) *Result {
	if pool == nil {
		pool = sched.NewPool(0)
	}
	t0 := time.Now()
	res := &Result{}
	h := gr.HubCount

	// Enumerate the live triples. A part is live only when every
	// range it draws from has the needed hub/non-hub population:
	// hub-pair needs hubs in R_i and R_j; HNN needs hubs in R_i and
	// non-hubs in R_j and R_k; NNN needs non-hubs in all three.
	hubs := func(b int) bool { return gr.Ranges[b].Lo < h }
	nonHubs := func(b int) bool { return gr.Ranges[b].Hi > h }
	var triples []triple
	for k := 0; k < gr.P; k++ {
		if gr.Ranges[k].Len() == 0 {
			continue
		}
		for j := 0; j <= k; j++ {
			if gr.Ranges[j].Len() == 0 {
				continue
			}
			for i := 0; i <= j; i++ {
				if gr.Ranges[i].Len() == 0 {
					continue
				}
				t := triple{
					i: i, j: j, k: k,
					p1:  hubs(i) && hubs(j),
					hnn: hubs(i) && nonHubs(j) && nonHubs(k),
					nnn: nonHubs(i) && nonHubs(j) && nonHubs(k),
				}
				if t.p1 || t.hnn || t.nnn {
					triples = append(triples, t)
				}
			}
		}
	}
	res.Triples = len(triples)
	if len(triples) == 0 {
		res.CountTime = time.Since(t0)
		return res
	}

	// Split each triple's apex range into sub-range tiles so one huge
	// block cannot serialize the sweep; small grids (p=1 has a single
	// triple) rely on this for parallelism at all.
	chunks := 4 * pool.Workers() / len(triples)
	if chunks < 1 {
		chunks = 1
	}
	var tiles []ctile
	for ti, tr := range triples {
		r := gr.Ranges[tr.k]
		span := uint32(r.Len())
		c := uint32(chunks)
		if c > span {
			c = span
		}
		for q := uint32(0); q < c; q++ {
			lo := r.Lo + span*q/c
			hi := r.Lo + span*(q+1)/c
			if hi > lo {
				tiles = append(tiles, ctile{t: ti, lo: lo, hi: hi})
			}
		}
	}
	res.Tiles = len(tiles)

	var tripleTotals []uint64
	if opt.TrackTriples {
		tripleTotals = make([]uint64, len(triples))
	}

	workers := pool.Workers()
	hhh := sched.NewAccumulator(workers)
	hhn := sched.NewAccumulator(workers)
	hnn := sched.NewAccumulator(workers)
	nnn := sched.NewAccumulator(workers)
	polls := sched.NewAccumulator(workers)
	bmWords := (int(h) + 63) / 64
	scratch := sched.NewWorkerLocal(workers, func() *shardScratch {
		return &shardScratch{bm: make([]uint64, bmWords)}
	})
	kernel := opt.Phase1Kernel
	adaptive := opt.Intersect == core.IntersectAdaptive

	res.Load = pool.RunTasks(len(tiles), func(worker, ti int) {
		tl := tiles[ti]
		tr := triples[tl.t]
		ri, rj := gr.Ranges[tr.i], gr.Ranges[tr.j]
		sk, sj := gr.Shards[tr.k], gr.Shards[tr.j]
		sameIJ := tr.i == tr.j
		s := scratch.Get(worker)
		var cHHH, cHHN, cHNN, cNNN, cPolls uint64
		for x := tl.lo; x < tl.hi; x++ {
			cPolls++
			if pool.Cancelled() {
				break
			}
			var hv []uint16
			if tr.p1 || (tr.hnn && x >= h) {
				hv = sk.HENeighbors(x)
			}
			if tr.p1 && len(hv) >= 2 {
				hvJ := restrict16(hv, rj.Lo, rj.Hi)
				hvI := restrict16(hv, ri.Lo, ri.Hi)
				if len(hvJ) > 0 && len(hvI) > 0 {
					found := countHubPairs(sj, s.bm, hvI, hvJ, sameIJ, kernel)
					if x < h {
						cHHH += found
					} else {
						cHHN += found
					}
				}
			}
			if x < h {
				// Hubs have empty NHE rows; the HNN and NNN parts
				// only ever see non-hub apexes.
				continue
			}
			if tr.hnn {
				hvI := restrict16(hv, ri.Lo, ri.Hi)
				if len(hvI) > 0 {
					for _, u := range restrict32(sk.NHENeighbors(x), rj.Lo, rj.Hi) {
						huI := restrict16(sj.HENeighbors(u), ri.Lo, ri.Hi)
						if adaptive && intersect.UseGalloping(len(hvI), len(huI)) {
							cHNN += intersect.Galloping16(hvI, huI)
						} else {
							cHNN += intersect.Merge16(hvI, huI)
						}
					}
				}
			}
			if tr.nnn {
				nv := sk.NHENeighbors(x)
				nvI := restrict32(nv, ri.Lo, ri.Hi)
				if len(nvI) > 0 {
					for _, u := range restrict32(nv, rj.Lo, rj.Hi) {
						nuI := restrict32(sj.NHENeighbors(u), ri.Lo, ri.Hi)
						if adaptive && intersect.UseGalloping(len(nvI), len(nuI)) {
							cNNN += intersect.Galloping(nvI, nuI)
						} else {
							cNNN += intersect.Merge(nvI, nuI)
						}
					}
				}
			}
		}
		hhh.Add(worker, cHHH)
		hhn.Add(worker, cHHN)
		hnn.Add(worker, cHNN)
		nnn.Add(worker, cNNN)
		polls.Add(worker, cPolls)
		if tripleTotals != nil {
			atomic.AddUint64(&tripleTotals[tl.t], cHHH+cHHN+cHNN+cNNN)
		}
	})

	res.HHH, res.HHN = hhh.Sum(), hhn.Sum()
	res.HNN, res.NNN = hnn.Sum(), nnn.Sum()
	res.Total = res.HHH + res.HHN + res.HNN + res.NNN
	res.CountTime = time.Since(t0)
	if tripleTotals != nil {
		res.PerTriple = make([]TripleCount, len(triples))
		for ti, tr := range triples {
			res.PerTriple[ti] = TripleCount{I: tr.i, J: tr.j, K: tr.k, Total: tripleTotals[ti]}
		}
	}
	if m := opt.Metrics; m != nil {
		m.Add(obs.ShardTriples, int64(res.Triples))
		m.Add(obs.ShardTiles, int64(res.Tiles))
		m.Add(obs.ShardPolls, int64(polls.Sum()))
		m.AddDuration(obs.ShardCountNS, res.CountTime)
	}
	return res
}

// countHubPairs counts, for one apex, the hub pairs (h2, h1) with
// h2 in hvI, h1 in hvJ, h2 < h1 and the H2H bit (h1, h2) set — the
// sharded hub-pair part. Rows live in shard j (h1 in R_j). When i and
// j are the same block, hvI and hvJ alias the same restricted list
// and the h2 < h1 constraint bites: the scalar path probes only the
// hvI prefix below h1, while the word path relies on the row's
// built-in "h2 < h1" mask, exactly as the monolithic word kernel
// does. For i < j every hvI entry is below every hvJ entry, so the
// whole list qualifies.
func countHubPairs(sj *core.LotusShard, bm []uint64, hvI, hvJ []uint16, sameIJ bool, kernel core.Phase1Kernel) uint64 {
	var found uint64
	populated := false
	limit := len(hvI)
	ptr := 0
	for _, h1u := range hvJ {
		h1 := uint32(h1u)
		if sameIJ {
			for ptr < len(hvI) && uint32(hvI[ptr]) < h1 {
				ptr++
			}
			limit = ptr
		}
		if limit == 0 {
			continue
		}
		row := sj.H2HRow(h1)
		// Same per-row dispatch heuristic as the monolithic
		// wordRowThreshold: the word path reads (h1+63)/64 row words,
		// the scalar path does `limit` dependent bit probes.
		if kernel == core.Phase1Word || (kernel == core.Phase1Auto && limit >= 2*((int(h1)>>6)+1)) {
			if !populated {
				for _, hb := range hvI {
					bm[hb>>6] |= 1 << (hb & 63)
				}
				populated = true
			}
			found += row.AndCount(bm)
		} else {
			for t := 0; t < limit; t++ {
				if row.IsSet(uint32(hvI[t])) {
					found++
				}
			}
		}
	}
	if populated {
		for _, hb := range hvI {
			bm[hb>>6] = 0
		}
	}
	return found
}
