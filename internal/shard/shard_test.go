package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

// monolithic runs the reference count and returns its result.
func monolithic(t *testing.T, g *graph.Graph, hubCount int) *core.Result {
	t.Helper()
	lg, err := core.TryPreprocess(g, core.Options{HubCount: hubCount})
	if err != nil {
		t.Fatalf("monolithic preprocess: %v", err)
	}
	return lg.Count(sched.NewPool(0))
}

// assertSameCounts compares a sharded result against the monolithic
// reference, class by class.
func assertSameCounts(t *testing.T, label string, want *core.Result, got *Result) {
	t.Helper()
	if got.Total != want.Total || got.HHH != want.HHH || got.HHN != want.HHN ||
		got.HNN != want.HNN || got.NNN != want.NNN {
		t.Fatalf("%s: sharded {total %d HHH %d HHN %d HNN %d NNN %d} != monolithic {total %d HHH %d HHN %d HNN %d NNN %d}",
			label, got.Total, got.HHH, got.HHN, got.HNN, got.NNN,
			want.Total, want.HHH, want.HHN, want.HNN, want.NNN)
	}
}

// corpus returns the equivalence test graphs: degree-skewed
// generators, regular shapes, and degenerate shapes (no triangles,
// all-hub cliques).
func corpus() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat-9":      gen.RMAT(gen.DefaultRMAT(9, 8, 42)),
		"rmat-10":     gen.RMAT(gen.DefaultRMAT(10, 16, 7)),
		"chunglu":     gen.ChungLu(gen.ChungLuParams{N: 600, M: 3000, Gamma: 2.1, Seed: 3}),
		"complete-50": gen.Complete(50),
		"hub-spokes":  gen.HubAndSpokes(16, 500, 3, 5),
		"planted":     gen.PlantedTriangles(40, 100),
		"star":        gen.Star(100),
		"path":        gen.Path(64),
		"triangle":    gen.Complete(3),
		"single-edge": graph.FromEdges([]graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{}),
		"empty-ish":   gen.Ring(5),
		"bipartite":   gen.CompleteBipartite(10, 12),
	}
}

// TestShardEquivalence is the correctness bar of the sharded path:
// for every corpus graph, every grid size p in {1,2,3,4} and several
// hub counts (including ones that make the hub range straddle block
// boundaries), the sharded count must match the monolithic count bit
// for bit, per class.
func TestShardEquivalence(t *testing.T) {
	pool := sched.NewPool(0)
	for name, g := range corpus() {
		n := g.NumVertices()
		for _, hubs := range []int{0, 7, n / 2} {
			want := monolithic(t, g, hubs)
			for p := 1; p <= 4; p++ {
				gr, err := Build(g, Options{Grid: p, HubCount: hubs})
				if err != nil {
					t.Fatalf("%s hubs=%d p=%d: Build: %v", name, hubs, p, err)
				}
				label := fmt.Sprintf("%s hubs=%d p=%d", name, hubs, p)
				assertSameCounts(t, label, want, gr.Count(pool, CountOptions{}))
				// The forced kernels must agree too (auto is covered
				// above; word and scalar exercise both probe paths on
				// every row).
				assertSameCounts(t, label+" word", want,
					gr.Count(pool, CountOptions{Phase1Kernel: core.Phase1Word, Intersect: core.IntersectMerge}))
				assertSameCounts(t, label+" scalar", want,
					gr.Count(pool, CountOptions{Phase1Kernel: core.Phase1Scalar}))
			}
		}
	}
}

// TestShardEquivalenceAtScale is the race-enabled CI gate (`make
// check` runs this package with -race): sharded vs monolithic at
// R-MAT scale 12-13 across grid sizes. -short drops to scale 10 so
// the ordinary race pass stays fast.
func TestShardEquivalenceAtScale(t *testing.T) {
	scales := []uint{12, 13}
	if testing.Short() {
		scales = []uint{10}
	}
	pool := sched.NewPool(0)
	for _, scale := range scales {
		g := gen.RMAT(gen.DefaultRMAT(scale, 16, 1))
		want := monolithic(t, g, 0)
		for _, p := range []int{1, 2, 4} {
			gr, err := Build(g, Options{Grid: p})
			if err != nil {
				t.Fatalf("scale %d p=%d: Build: %v", scale, p, err)
			}
			got := gr.Count(pool, CountOptions{})
			assertSameCounts(t, fmt.Sprintf("scale %d p=%d", scale, p), want, got)
		}
	}
}

// TestShardRowsMatchMonolithic checks the structural claim the
// equivalence rests on: every shard row (HE, NHE, H2H) is literally
// the monolithic structure's row for that vertex, and every shard
// passes Validate.
func TestShardRowsMatchMonolithic(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 11))
	lg, err := core.TryPreprocess(g, core.Options{HubCount: 100})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	gr, err := Build(g, Options{Grid: 3, HubCount: 100})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if gr.HubCount != lg.HubCount {
		t.Fatalf("grid hub count %d != monolithic %d", gr.HubCount, lg.HubCount)
	}
	for b, s := range gr.Shards {
		if err := s.Validate(); err != nil {
			t.Fatalf("shard %d: %v", b, err)
		}
		for v := s.Range.Lo; v < s.Range.Hi; v++ {
			he, wantHE := s.HENeighbors(v), lg.HE.Neighbors(v)
			if len(he) != len(wantHE) {
				t.Fatalf("shard %d vertex %d: HE row length %d != %d", b, v, len(he), len(wantHE))
			}
			for i := range he {
				if he[i] != wantHE[i] {
					t.Fatalf("shard %d vertex %d: HE[%d] = %d != %d", b, v, i, he[i], wantHE[i])
				}
			}
			nhe, wantNHE := s.NHENeighbors(v), lg.NHE.Neighbors(v)
			if len(nhe) != len(wantNHE) {
				t.Fatalf("shard %d vertex %d: NHE row length %d != %d", b, v, len(nhe), len(wantNHE))
			}
			for i := range nhe {
				if nhe[i] != wantNHE[i] {
					t.Fatalf("shard %d vertex %d: NHE[%d] = %d != %d", b, v, i, nhe[i], wantNHE[i])
				}
			}
			if v < gr.HubCount {
				for h2 := uint32(0); h2 < v; h2++ {
					if s.H2H.IsSet(v, h2) != lg.H2H.IsSet(v, h2) {
						t.Fatalf("shard %d: H2H bit (%d,%d) disagrees with monolithic", b, v, h2)
					}
				}
			}
		}
	}
}

// TestEveryTriangleExactlyOneTriple is the PR's property test: on
// random degree-skewed graphs, for p in {1,2,3,4}, every triangle is
// counted by exactly one block triple. Triangles are enumerated brute
// force in relabeled ID space, each is assigned to the unique triple
// (block(z), block(y), block(x)), and the per-triple expectation must
// match the counter's per-triple totals exactly — a double-count or a
// drop shifts at least one triple's total.
func TestEveryTriangleExactlyOneTriple(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 8; round++ {
		// Degree-skewed R-MAT-style graph, small enough to brute force.
		scale := uint(5 + round%3)
		g := gen.RMAT(gen.RMATParams{
			Scale: scale, EdgeFactor: 4 + rng.Intn(8), Seed: rng.Int63(),
			A: 0.57, B: 0.19, C: 0.19,
		})
		n := g.NumVertices()
		for _, hubs := range []int{0, 5, n / 2} {
			for p := 1; p <= 4; p++ {
				gr, err := Build(g, Options{Grid: p, HubCount: hubs})
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				res := gr.Count(sched.NewPool(0), CountOptions{TrackTriples: true})

				// Brute-force: adjacency in relabeled IDs, each
				// triangle z < y < x assigned to its unique triple.
				adj := make(map[uint64]bool)
				nbr := make([][]uint32, n)
				for vOld := 0; vOld < n; vOld++ {
					v := gr.Relabeling[vOld]
					for _, uOld := range g.Neighbors(uint32(vOld)) {
						u := gr.Relabeling[uOld]
						if u < v {
							nbr[v] = append(nbr[v], u)
							adj[uint64(v)<<32|uint64(u)] = true
						}
					}
				}
				block := func(v uint32) int {
					for b, r := range gr.Ranges {
						if r.Contains(v) {
							return b
						}
					}
					t.Fatalf("vertex %d in no range", v)
					return -1
				}
				want := map[[3]int]uint64{}
				var total uint64
				for x := uint32(0); x < uint32(n); x++ {
					ys := nbr[x]
					for a := 0; a < len(ys); a++ {
						for b := a + 1; b < len(ys); b++ {
							y, z := ys[a], ys[b]
							if y < z {
								y, z = z, y
							}
							if adj[uint64(y)<<32|uint64(z)] {
								want[[3]int{block(z), block(y), block(x)}]++
								total++
							}
						}
					}
				}
				if res.Total != total {
					t.Fatalf("p=%d hubs=%d: sharded total %d != brute force %d", p, hubs, res.Total, total)
				}
				got := map[[3]int]uint64{}
				for _, tc := range res.PerTriple {
					if tc.Total > 0 {
						got[[3]int{tc.I, tc.J, tc.K}] = tc.Total
					}
				}
				if len(got) != len(want) {
					t.Fatalf("p=%d hubs=%d: %d live triples, brute force says %d (got %v want %v)",
						p, hubs, len(got), len(want), got, want)
				}
				for key, w := range want {
					if got[key] != w {
						t.Fatalf("p=%d hubs=%d: triple %v counted %d triangles, brute force says %d",
							p, hubs, key, got[key], w)
					}
				}
			}
		}
	}
}

// TestBuildValidation covers the input contract: nil and oriented
// graphs are rejected with the core sentinels, out-of-range grids
// fail, and Assemble refuses shards that contradict the plan.
func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); !errors.Is(err, core.ErrNilGraph) {
		t.Fatalf("nil graph: got %v, want ErrNilGraph", err)
	}
	g := gen.Complete(10)
	og := g.Orient()
	if _, err := Build(og, Options{}); !errors.Is(err, core.ErrOriented) {
		t.Fatalf("oriented graph: got %v, want ErrOriented", err)
	}
	if _, err := Build(g, Options{Grid: -1}); err == nil {
		t.Fatal("negative grid accepted")
	}
	if _, err := Build(g, Options{Grid: MaxGrid + 1}); err == nil {
		t.Fatal("oversized grid accepted")
	}

	pl, err := NewPlan(g, Options{Grid: 2})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	s0, err := pl.BuildShard(g, 0, nil)
	if err != nil {
		t.Fatalf("BuildShard: %v", err)
	}
	if _, err := Assemble(pl, []*core.LotusShard{s0}); err == nil {
		t.Fatal("Assemble accepted a short shard list")
	}
	if _, err := Assemble(pl, []*core.LotusShard{s0, s0}); err == nil {
		t.Fatal("Assemble accepted a shard under the wrong block")
	}
	if _, err := pl.BuildShard(g, 2, nil); err == nil {
		t.Fatal("BuildShard accepted an out-of-range block")
	}
}

// TestShardCancellation checks the cooperative-cancellation contract
// through the pool: a cancelled count stops promptly and the partial
// totals are discarded by the engine layer (here: we only assert the
// sweep returns; the engine tests assert no partial results).
func TestShardCancellation(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(12, 16, 2))
	gr, err := Build(g, Options{Grid: 3})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	pool := sched.NewPool(0).Bind(ctx)
	defer pool.Release()
	cancel()
	start := time.Now()
	gr.Count(pool, CountOptions{})
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled count took %v", d)
	}
}
