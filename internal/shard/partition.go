// Package shard implements the sharded 2D LOTUS execution path: the
// relabeled vertex ID space is partitioned into p contiguous,
// work-balanced ranges, one independent LOTUS structure (a
// core.LotusShard) is built per range, and triangles are counted by
// enumerating the block triples (i <= j <= k) of the implied p×p
// grid — the in-process analogue of the 2D block-partitioned
// distributed TC designs (Tom & Karypis, arXiv:1907.09575; Sanders &
// Uhl, arXiv:2302.11443).
//
// The crucial design decision is that all shards share ONE global
// LOTUS relabeling, computed exactly as the monolithic path computes
// it. Shard rows keep global relabeled IDs, so the hub set, the apex
// of every triangle, and therefore the class of every triangle
// (HHH/HHN/HNN/NNN) are identical to the monolithic structure's — the
// per-class counts come out bit-identical by construction, and the
// whole grid is simply a row-partition of the monolithic structure.
package shard

import (
	"math/bits"

	"lotustc/internal/graph"
	"lotustc/internal/intersect"
)

// degreeClassRanges cuts the DegreeOrder-relabeled ID space into one
// contiguous range per log2 degree class (class of degree d is
// bits.Len(d): 0 for isolated vertices, 1 for degree 1, k for degrees
// [2^(k-1), 2^k)). Degree is non-increasing in the relabeled ID, so
// the class sequence is non-increasing too and every class is
// contiguous; the ranges are sorted, disjoint and cover [0, n), which
// is all the grid counting sweep requires. At most bits.Len(maxDeg)+1
// (<= 33) classes exist, comfortably under MaxGrid.
func degreeClassRanges(g *graph.Graph, ra []uint32) []VertexRange {
	n := g.NumVertices()
	if n == 0 {
		return []VertexRange{{Lo: 0, Hi: 0}}
	}
	// Degree of each relabeled ID, in relabeled order.
	degNew := make([]int32, n)
	for old := 0; old < n; old++ {
		degNew[ra[old]] = int32(g.Degree(uint32(old)))
	}
	var ranges []VertexRange
	lo := 0
	cls := bits.Len32(uint32(degNew[0]))
	for v := 1; v < n; v++ {
		if c := bits.Len32(uint32(degNew[v])); c != cls {
			ranges = append(ranges, VertexRange{Lo: uint32(lo), Hi: uint32(v)})
			lo, cls = v, c
		}
	}
	return append(ranges, VertexRange{Lo: uint32(lo), Hi: uint32(n)})
}

// PartitionByWeight cuts the ID space [0, len(w)) into p contiguous
// ranges of near-equal total weight: cut t is the smallest index
// whose weight prefix reaches t/p of the total. Ranges may be empty
// (a single huge weight can swallow several targets); they are always
// sorted, disjoint and cover [0, n).
func PartitionByWeight(w []uint64, p int) []VertexRange {
	n := len(w)
	prefix := make([]uint64, n+1)
	for i, x := range w {
		prefix[i+1] = prefix[i] + x
	}
	total := prefix[n]
	ranges := make([]VertexRange, p)
	cut := 0
	for t := 0; t < p; t++ {
		lo := cut
		if t == p-1 {
			cut = n
		} else {
			// Smallest index with prefix >= ceil(total*(t+1)/p). The
			// target sequence is nondecreasing, so the search resumes
			// at the previous cut.
			target := (total*uint64(t+1) + uint64(p) - 1) / uint64(p)
			for cut < n && prefix[cut] < target {
				cut++
			}
		}
		ranges[t] = VertexRange{Lo: uint32(lo), Hi: uint32(cut)}
	}
	return ranges
}

// restrict32 returns the sub-slice of the ascending list s whose
// values fall in [lo, hi).
func restrict32(s []uint32, lo, hi uint32) []uint32 {
	a := intersect.LowerBound(s, lo)
	b := a + intersect.LowerBound(s[a:], hi)
	return s[a:b]
}

// restrict16 is restrict32 over 16-bit hub lists; the bounds are
// 32-bit relabeled IDs, which may exceed the 16-bit hub ID space, so
// they are clamped before narrowing.
func restrict16(s []uint16, lo, hi uint32) []uint16 {
	a := cut16(s, lo)
	return s[a : a+cut16(s[a:], hi)]
}

// cut16 returns the count of values in the ascending 16-bit list s
// below bound.
func cut16(s []uint16, bound uint32) int {
	if bound >= 1<<16 {
		return len(s)
	}
	return intersect.LowerBound16(s, uint16(bound))
}
