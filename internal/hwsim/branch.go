package hwsim

// BranchPredictor is a gshare-style predictor: a table of 2-bit
// saturating counters indexed by the branch site XOR a global history
// register. It supplies the branch-misprediction proxy of Fig 5c: the
// data-dependent compare branches of merge joins are what mispredict
// in TC, and their outcome streams are fed through this model.
type BranchPredictor struct {
	table   []uint8
	mask    uint64
	history uint64

	branches    uint64
	mispredicts uint64
}

// NewBranchPredictor builds a predictor with 2^bits counters
// (bits=14 models a 16K-entry table).
func NewBranchPredictor(bits uint) *BranchPredictor {
	return &BranchPredictor{
		table: make([]uint8, 1<<bits),
		mask:  (1 << bits) - 1,
	}
}

// Record feeds one dynamic branch at the given site with its actual
// outcome and returns true if the predictor mispredicted it.
func (b *BranchPredictor) Record(site uint64, taken bool) bool {
	b.branches++
	i := (site ^ b.history) & b.mask
	ctr := b.table[i]
	predictTaken := ctr >= 2
	miss := predictTaken != taken
	if miss {
		b.mispredicts++
	}
	if taken && ctr < 3 {
		b.table[i] = ctr + 1
	} else if !taken && ctr > 0 {
		b.table[i] = ctr - 1
	}
	b.history = (b.history << 1) | boolBit(taken)
	return miss
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Stats returns dynamic branches and mispredictions so far.
func (b *BranchPredictor) Stats() (branches, mispredicts uint64) {
	return b.branches, b.mispredicts
}

// MissRatio returns mispredicts/branches.
func (b *BranchPredictor) MissRatio() float64 {
	if b.branches == 0 {
		return 0
	}
	return float64(b.mispredicts) / float64(b.branches)
}

// Reset clears state and counters.
func (b *BranchPredictor) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
	b.history, b.branches, b.mispredicts = 0, 0, 0
}
