package hwsim

import (
	"math/rand"
	"testing"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache("t", 4096, 4)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x103F) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) {
		t.Fatal("next line should miss")
	}
	a, m := c.Stats()
	if a != 4 || m != 2 {
		t.Fatalf("stats = %d/%d, want 4/2", a, m)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 2 sets (256 B): lines mapping to set 0 are multiples of
	// 128 B. Fill set 0 with lines A,B; touch A; insert C -> B evicted.
	c := NewCache("t", 256, 2)
	if c.sets != 2 {
		t.Fatalf("sets = %d, want 2", c.sets)
	}
	A, B, C := uint64(0), uint64(128), uint64(256)
	c.Access(A)
	c.Access(B)
	c.Access(A) // A is MRU
	c.Access(C) // evicts B
	if !c.Access(A) {
		t.Fatal("A was evicted, want LRU to pick B")
	}
	if c.Access(B) {
		t.Fatal("B should have been evicted")
	}
}

func TestCacheCapacityWorkingSet(t *testing.T) {
	// A working set that fits must converge to 100% hits; one that is
	// 4x the capacity under streaming re-traversal must keep missing.
	small := NewCache("small", 8<<10, 8)
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 8<<10; a += 64 {
			small.Access(a)
		}
	}
	a, m := small.Stats()
	if float64(m)/float64(a) > 0.3 {
		t.Fatalf("fitting working set misses %.2f", float64(m)/float64(a))
	}
	big := NewCache("big", 8<<10, 8)
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 32<<10; a += 64 {
			big.Access(a)
		}
	}
	a2, m2 := big.Stats()
	if float64(m2)/float64(a2) < 0.9 {
		t.Fatalf("thrashing working set misses only %.2f", float64(m2)/float64(a2))
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache("t", 4096, 4)
	c.Access(0)
	c.Reset()
	a, m := c.Stats()
	if a != 0 || m != 0 {
		t.Fatal("counters survive Reset")
	}
	if c.Access(0) {
		t.Fatal("contents survive Reset")
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Access(0) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(4095) {
		t.Fatal("same page missed")
	}
	if tlb.Access(4096) {
		t.Fatal("next page should miss")
	}
	// Fill beyond capacity and verify LRU.
	tlb.Reset()
	for p := uint64(0); p < 5; p++ {
		tlb.Access(p << 12)
	}
	if tlb.Access(0) { // page 0 is LRU, must have been evicted
		t.Fatal("LRU page survived")
	}
}

func TestHierarchyInclusionOfCounts(t *testing.T) {
	h := NewHierarchy(MachineConfig{Name: "t", L1Bytes: 1 << 10, L2Bytes: 4 << 10, L3Bytes: 16 << 10, L1Ways: 2, L2Ways: 4, L3Ways: 8, TLBEntries: 16})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		h.Access(uint64(rng.Intn(1<<16)), 4)
	}
	_, m1 := h.L1.Stats()
	a2, m2 := h.L2.Stats()
	a3, _ := h.L3.Stats()
	if a2 != m1 {
		t.Fatalf("L2 accesses %d != L1 misses %d", a2, m1)
	}
	if a3 != m2 {
		t.Fatalf("L3 accesses %d != L2 misses %d", a3, m2)
	}
	if h.MemAccesses != 20000 {
		t.Fatalf("MemAccesses = %d", h.MemAccesses)
	}
	if h.LLCMisses() == 0 || h.TLBMisses() == 0 {
		t.Fatal("random 64K working set should miss in tiny caches")
	}
}

func TestHierarchyLineStraddle(t *testing.T) {
	h := NewHierarchy(MachineConfig{Name: "t", L1Bytes: 1 << 10, L2Bytes: 2 << 10, L3Bytes: 4 << 10, L1Ways: 2, L2Ways: 2, L3Ways: 2, TLBEntries: 4})
	h.Access(62, 4) // straddles lines 0 and 1
	a1, _ := h.L1.Stats()
	if a1 != 2 {
		t.Fatalf("straddling access touched %d lines, want 2", a1)
	}
}

func TestMachineConfigs(t *testing.T) {
	for _, cfg := range []MachineConfig{SkyLakeX(), Haswell(), Epyc()} {
		h := NewHierarchy(cfg)
		if h.L3.SizeBytes() <= h.L2.SizeBytes() || h.L2.SizeBytes() <= h.L1.SizeBytes() {
			t.Errorf("%s: level sizes not increasing", cfg.Name)
		}
		h.Access(12345, 8)
		if h.MemAccesses != 1 {
			t.Errorf("%s: access not recorded", cfg.Name)
		}
	}
}

func TestPrefetcherHelpsSequentialStream(t *testing.T) {
	cfg := MachineConfig{Name: "t", L1Bytes: 1 << 10, L2Bytes: 2 << 10, L3Bytes: 4 << 10,
		L1Ways: 2, L2Ways: 2, L3Ways: 2, TLBEntries: 8}
	seq := func(prefetch bool) uint64 {
		h := NewHierarchy(cfg)
		h.Prefetch = prefetch
		for a := uint64(0); a < 1<<16; a += 4 {
			h.Access(a, 4)
		}
		_, m := h.L1.Stats()
		return m
	}
	base, pf := seq(false), seq(true)
	if pf*3 > base {
		t.Fatalf("prefetcher reduced sequential L1 misses only %d -> %d", base, pf)
	}
	// Random streams must not benefit much.
	randMiss := func(prefetch bool) uint64 {
		h := NewHierarchy(cfg)
		h.Prefetch = prefetch
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 20000; i++ {
			h.Access(uint64(rng.Intn(1<<20))&^3, 4)
		}
		return h.LLCMisses()
	}
	rb, rp := randMiss(false), randMiss(true)
	if float64(rp) < 0.8*float64(rb) {
		t.Fatalf("prefetcher helped random stream too much: %d -> %d", rb, rp)
	}
	h := NewHierarchy(cfg)
	h.Prefetch = true
	h.Access(0, 4)
	if h.Prefetches == 0 {
		t.Fatal("prefetch counter not incremented")
	}
	h.Reset()
	if h.Prefetches != 0 {
		t.Fatal("Reset keeps prefetch count")
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	// A branch taken 999 times then not-taken once (loop back-edge)
	// must mispredict rarely.
	bp := NewBranchPredictor(10)
	for i := 0; i < 1000; i++ {
		bp.Record(0x40, i%100 != 99)
	}
	if r := bp.MissRatio(); r > 0.05 {
		t.Fatalf("loop branch miss ratio %.3f too high", r)
	}
}

func TestBranchPredictorRandomIsHard(t *testing.T) {
	bp := NewBranchPredictor(10)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		bp.Record(0x80, rng.Intn(2) == 0)
	}
	if r := bp.MissRatio(); r < 0.35 {
		t.Fatalf("random branch miss ratio %.3f suspiciously low", r)
	}
	b, m := bp.Stats()
	if b != 10000 || m == 0 {
		t.Fatalf("stats %d/%d", b, m)
	}
}

func TestBranchPredictorReset(t *testing.T) {
	bp := NewBranchPredictor(4)
	bp.Record(1, true)
	bp.Reset()
	if b, m := bp.Stats(); b != 0 || m != 0 {
		t.Fatal("counters survive Reset")
	}
	if bp.MissRatio() != 0 {
		t.Fatal("ratio after reset")
	}
}

func TestLatencyModel(t *testing.T) {
	cfg := MachineConfig{Name: "t", L1Bytes: 1 << 10, L2Bytes: 2 << 10, L3Bytes: 4 << 10,
		L1Ways: 2, L2Ways: 2, L3Ways: 2, TLBEntries: 4}
	// No model attached: cycles stay 0.
	h := NewHierarchy(cfg)
	h.Access(0, 4)
	if h.Cycles() != 0 {
		t.Fatal("cycles counted without model")
	}
	// Repeated same-line accesses cost L1 latency after the miss.
	h = NewHierarchy(cfg)
	h.AttachLatency(DefaultLatencies(1))
	h.Access(0, 4)
	miss := h.Cycles()
	if miss != 200 {
		t.Fatalf("cold access cost %d, want 200", miss)
	}
	h.Access(4, 4)
	if h.Cycles()-miss != 4 {
		t.Fatalf("L1 hit cost %d, want 4", h.Cycles()-miss)
	}
	// Random big working set must be far costlier per access than a
	// resident one.
	costOf := func(span uint64) float64 {
		hh := NewHierarchy(cfg)
		hh.AttachLatency(DefaultLatencies(1))
		rng := rand.New(rand.NewSource(1))
		const n = 20000
		for i := 0; i < n; i++ {
			hh.Access(uint64(rng.Intn(int(span)))&^3, 4)
		}
		return float64(hh.Cycles()) / n
	}
	if small, big := costOf(1<<9), costOf(1<<24); big < 3*small {
		t.Fatalf("latency model insensitive to working set: %.1f vs %.1f", small, big)
	}
	// NUMA interleaving: with 4 nodes, 3/4 of memory accesses pay the
	// remote penalty, raising the average memory cost.
	numaCost := func(nodes int) uint64 {
		hh := NewHierarchy(cfg)
		hh.AttachLatency(DefaultLatencies(nodes))
		for p := uint64(0); p < 64; p++ {
			hh.Access(p<<12, 4) // one cold access per page
		}
		return hh.Cycles()
	}
	if c1, c4 := numaCost(1), numaCost(4); c4 <= c1 {
		t.Fatalf("NUMA penalty missing: %d vs %d", c1, c4)
	}
	h.Reset()
	if h.Cycles() != 0 {
		t.Fatal("Reset keeps cycles")
	}
}

func TestLineProfilerCDF(t *testing.T) {
	p := NewLineProfiler(4)
	for i := 0; i < 70; i++ {
		p.Touch(0)
	}
	for i := 0; i < 20; i++ {
		p.Touch(1)
	}
	for i := 0; i < 10; i++ {
		p.Touch(2)
	}
	cdf := p.CDF([]int{0, 1, 2, 3, 4, 100})
	want := []float64{0, 0.7, 0.9, 1.0, 1.0, 1.0}
	for i := range want {
		if diff := cdf[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if got := p.LinesForCoverage(0.9); got != 2 {
		t.Fatalf("LinesForCoverage(0.9) = %d, want 2", got)
	}
	if got := p.LinesForCoverage(0.95); got != 3 {
		t.Fatalf("LinesForCoverage(0.95) = %d, want 3", got)
	}
	if p.NonZeroLines() != 3 {
		t.Fatalf("NonZeroLines = %d, want 3", p.NonZeroLines())
	}
	if p.Total() != 100 {
		t.Fatalf("Total = %d", p.Total())
	}
}

func TestLineProfilerEmpty(t *testing.T) {
	p := NewLineProfiler(8)
	cdf := p.CDF([]int{1, 8})
	if cdf[0] != 0 || cdf[1] != 0 {
		t.Fatal("empty profiler CDF nonzero")
	}
	if p.LinesForCoverage(0.5) != 0 {
		t.Fatal("empty profiler coverage nonzero")
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(SkyLakeX())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 28))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(addrs[i&4095], 4)
	}
}
