// Package hwsim is a software model of the hardware events the paper
// measures with PAPI (§5.3): a set-associative LRU cache hierarchy,
// an LRU data-TLB, a gshare-style 2-bit branch predictor and a
// per-cacheline access profiler (Fig 9). Instrumented kernels in
// internal/perf replay their memory reference streams through these
// models to reproduce Figures 4, 5 and 9 without hardware counters.
//
// The models deliberately capture first-order behaviour only —
// capacity, associativity and recency — which is what the paper's
// locality argument rests on. Absolute miss counts depend on silicon
// details; relative behaviour (LOTUS vs Forward) is what we reproduce.
package hwsim

// Cache is one level of a set-associative cache with LRU replacement.
type Cache struct {
	name     string
	sets     uint64
	ways     int
	lineBits uint
	// tags[set*ways+way]; valid when stamp != 0. stamps hold the
	// per-set LRU clock value of the last touch.
	tags   []uint64
	stamps []uint64
	// pfbit marks lines installed by the prefetcher and not yet
	// demand-hit (tagged prefetching: the first demand hit on such a
	// line triggers the next prefetch).
	pfbit []bool
	clock uint64

	accesses uint64
	misses   uint64
}

// NewCache builds a cache of sizeBytes with the given associativity
// and 64-byte lines. sizeBytes must be a multiple of ways*64.
func NewCache(name string, sizeBytes, ways int) *Cache {
	const lineSize = 64
	sets := sizeBytes / (ways * lineSize)
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return &Cache{
		name:     name,
		sets:     uint64(p),
		ways:     ways,
		lineBits: 6,
		tags:     make([]uint64, p*ways),
		stamps:   make([]uint64, p*ways),
		pfbit:    make([]bool, p*ways),
	}
}

// Name returns the level's label.
func (c *Cache) Name() string { return c.name }

// SizeBytes returns the modeled capacity.
func (c *Cache) SizeBytes() int { return int(c.sets) * c.ways * 64 }

// Access touches the line containing addr; it returns true on hit.
// On miss the line is installed, evicting the set's LRU way.
func (c *Cache) Access(addr uint64) bool {
	hit, _ := c.AccessTagged(addr)
	return hit
}

// AccessTagged is Access, additionally reporting whether the hit
// landed on a line installed by the prefetcher that had not been
// demand-hit yet (the tagged-prefetch trigger condition).
func (c *Cache) AccessTagged(addr uint64) (hit, firstPrefetchHit bool) {
	c.accesses++
	c.clock++
	line := addr >> c.lineBits
	set := line & (c.sets - 1)
	base := int(set) * c.ways
	victim, oldest := base, c.stamps[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.stamps[i] != 0 && c.tags[i] == line {
			c.stamps[i] = c.clock
			if c.pfbit[i] {
				c.pfbit[i] = false
				return true, true
			}
			return true, false
		}
		if c.stamps[i] < oldest {
			victim, oldest = i, c.stamps[i]
		}
	}
	c.misses++
	c.tags[victim] = line
	c.stamps[victim] = c.clock
	c.pfbit[victim] = false
	return false, false
}

// Stats returns accesses and misses so far.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRatio returns misses/accesses (0 when idle).
func (c *Cache) MissRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.stamps {
		c.stamps[i] = 0
		c.pfbit[i] = false
	}
	c.clock, c.accesses, c.misses = 0, 0, 0
}

// TLB models a data-TLB: a fully-associative LRU translation cache
// with 4 KiB pages.
type TLB struct {
	entries  int
	pageBits uint
	pages    []uint64
	stamps   []uint64
	clock    uint64

	accesses uint64
	misses   uint64
}

// NewTLB builds a TLB with the given entry count (e.g. 64 L1 dTLB
// entries, 1536 STLB entries for SkyLakeX-class cores).
func NewTLB(entries int) *TLB {
	return &TLB{
		entries:  entries,
		pageBits: 12,
		pages:    make([]uint64, entries),
		stamps:   make([]uint64, entries),
	}
}

// Access translates addr; returns true on TLB hit.
func (t *TLB) Access(addr uint64) bool {
	t.accesses++
	t.clock++
	page := addr >> t.pageBits
	victim, oldest := 0, t.stamps[0]
	for i := 0; i < t.entries; i++ {
		if t.stamps[i] != 0 && t.pages[i] == page {
			t.stamps[i] = t.clock
			return true
		}
		if t.stamps[i] < oldest {
			victim, oldest = i, t.stamps[i]
		}
	}
	t.misses++
	t.pages[victim] = page
	t.stamps[victim] = t.clock
	return false
}

// Stats returns accesses and misses so far.
func (t *TLB) Stats() (accesses, misses uint64) { return t.accesses, t.misses }

// Reset clears contents and counters.
func (t *TLB) Reset() {
	for i := range t.stamps {
		t.stamps[i] = 0
	}
	t.clock, t.accesses, t.misses = 0, 0, 0
}

// Hierarchy chains L1 -> L2 -> L3 and a TLB, mirroring one core of
// the Table 3 machines. An access probes the TLB and L1; L2 is probed
// only on L1 miss, L3 only on L2 miss. LLC misses (the Fig 4a metric)
// are L3 misses.
type Hierarchy struct {
	L1, L2, L3 *Cache
	TLB        *TLB
	// MemAccesses counts calls to Access — the load/store count of
	// Fig 5a.
	MemAccesses uint64
	// Prefetch enables a next-line prefetcher: on an L1 miss the
	// following cacheline is installed silently (no miss counted).
	// §4.5 relies on exactly this mechanism — "sequentially streamed
	// accesses are prefetched by hardware in timely fashion" — so
	// enabling it rewards the streaming phases the way real cores do.
	Prefetch bool
	// Prefetches counts issued prefetch installs.
	Prefetches uint64

	// lat and cycles implement the optional latency/NUMA model
	// (AttachLatency / Cycles).
	lat    *LatencyModel
	cycles uint64
}

// install places a line in every level without touching miss
// counters, modeling a timely prefetch.
func (c *Cache) install(addr uint64) {
	c.clock++
	line := addr >> c.lineBits
	set := line & (c.sets - 1)
	base := int(set) * c.ways
	victim, oldest := base, c.stamps[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.stamps[i] != 0 && c.tags[i] == line {
			return // already present; keep its recency
		}
		if c.stamps[i] < oldest {
			victim, oldest = i, c.stamps[i]
		}
	}
	c.tags[victim] = line
	c.stamps[victim] = c.clock
	c.pfbit[victim] = true
}

// MachineConfig sizes a Hierarchy.
type MachineConfig struct {
	Name                   string
	L1Bytes, L2Bytes       int
	L3Bytes                int
	L1Ways, L2Ways, L3Ways int
	TLBEntries             int
	// Prefetch enables the tagged next-line prefetcher.
	Prefetch bool
}

// SkyLakeX mirrors the paper's Intel Xeon Gold 6130 core slice:
// 32 KB L1, 1 MB L2 and a 22 MB shared L3 (single-core slice here),
// with a 1536-entry STLB.
func SkyLakeX() MachineConfig {
	return MachineConfig{Name: "SkyLakeX", L1Bytes: 32 << 10, L2Bytes: 1 << 20, L3Bytes: 22 << 20, L1Ways: 8, L2Ways: 16, L3Ways: 11, TLBEntries: 1536}
}

// Haswell mirrors the Intel Xeon E5-4627 slice: 32 KB L1, 256 KB L2,
// 25.6 MB L3, 1024-entry STLB.
func Haswell() MachineConfig {
	return MachineConfig{Name: "Haswell", L1Bytes: 32 << 10, L2Bytes: 256 << 10, L3Bytes: 25 << 20, L1Ways: 8, L2Ways: 8, L3Ways: 20, TLBEntries: 1024}
}

// Epyc mirrors the AMD Epyc 7702 slice with its very large aggregate
// L3 (16 MB per CCX; the paper credits the 512 MB total L3 for the
// smaller LOTUS speedup on this machine — model the generous slice).
func Epyc() MachineConfig {
	return MachineConfig{Name: "Epyc", L1Bytes: 32 << 10, L2Bytes: 512 << 10, L3Bytes: 64 << 20, L1Ways: 8, L2Ways: 8, L3Ways: 16, TLBEntries: 2048}
}

// NewHierarchy instantiates the three levels plus TLB.
func NewHierarchy(cfg MachineConfig) *Hierarchy {
	return &Hierarchy{
		L1:       NewCache(cfg.Name+"/L1", cfg.L1Bytes, cfg.L1Ways),
		L2:       NewCache(cfg.Name+"/L2", cfg.L2Bytes, cfg.L2Ways),
		L3:       NewCache(cfg.Name+"/L3", cfg.L3Bytes, cfg.L3Ways),
		TLB:      NewTLB(cfg.TLBEntries),
		Prefetch: cfg.Prefetch,
	}
}

// Access performs one data access of the given size at addr,
// traversing the hierarchy. Accesses spanning a line boundary touch
// both lines (sizes are 1-8 bytes so at most two).
func (h *Hierarchy) Access(addr uint64, size int) {
	h.MemAccesses++
	h.TLB.Access(addr)
	first := addr >> 6
	last := (addr + uint64(size) - 1) >> 6
	for line := first; line <= last; line++ {
		a := line << 6
		hit, pfHit := h.L1.AccessTagged(a)
		l2Hit, l3Hit := false, false
		if !hit {
			l2Hit = h.L2.Access(a)
			if !l2Hit {
				l3Hit = h.L3.Access(a)
			}
		}
		h.chargeLatency(a, hit, l2Hit, l3Hit)
		// Tagged next-line prefetching: issue on a demand miss and on
		// the first demand hit to a prefetched line, so a sequential
		// stream stays ahead of the accesses.
		if h.Prefetch && (!hit || pfHit) {
			next := (line + 1) << 6
			h.L1.install(next)
			h.L2.install(next)
			h.L3.install(next)
			h.Prefetches++
		}
	}
}

// LLCMisses returns the last-level-cache miss count (Fig 4a).
func (h *Hierarchy) LLCMisses() uint64 { _, m := h.L3.Stats(); return m }

// TLBMisses returns the DTLB miss count (Fig 4b).
func (h *Hierarchy) TLBMisses() uint64 { _, m := h.TLB.Stats(); return m }

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.L3.Reset()
	h.TLB.Reset()
	h.MemAccesses = 0
	h.Prefetches = 0
	h.cycles = 0
}
