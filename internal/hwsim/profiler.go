package hwsim

import "sort"

// LineProfiler counts accesses per cacheline of one array, powering
// the Fig 9 analysis: sort cachelines by access frequency, accumulate
// their access counts and report what fraction of all accesses the
// top-k lines satisfy ("64 MB of cache suffices for 90% of H2H
// accesses", §5.7).
type LineProfiler struct {
	counts []uint64
	total  uint64
}

// NewLineProfiler profiles an array of the given number of 64-byte
// cachelines.
func NewLineProfiler(lines int) *LineProfiler {
	return &LineProfiler{counts: make([]uint64, lines)}
}

// Touch records one access to the given line.
func (p *LineProfiler) Touch(line uint64) {
	p.counts[line]++
	p.total++
}

// Total returns the number of recorded accesses.
func (p *LineProfiler) Total() uint64 { return p.total }

// Lines returns the number of profiled cachelines.
func (p *LineProfiler) Lines() int { return len(p.counts) }

// CDF returns the cumulative access fraction satisfied by the k most
// frequently accessed cachelines, for each requested k (Fig 9's
// x-axis). Ks beyond the line count saturate at 1 (or at the total
// coverage).
func (p *LineProfiler) CDF(ks []int) []float64 {
	sorted := append([]uint64(nil), p.counts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	out := make([]float64, len(ks))
	if p.total == 0 {
		return out
	}
	// Prefix sums once; answer each k by lookup.
	prefix := make([]uint64, len(sorted)+1)
	for i, c := range sorted {
		prefix[i+1] = prefix[i] + c
	}
	for i, k := range ks {
		if k > len(sorted) {
			k = len(sorted)
		}
		if k < 0 {
			k = 0
		}
		out[i] = float64(prefix[k]) / float64(p.total)
	}
	return out
}

// LinesForCoverage returns the minimum number of top cachelines
// needed to satisfy the given fraction of accesses (e.g. 0.90 — the
// §5.7 "90% of accesses" headline).
func (p *LineProfiler) LinesForCoverage(frac float64) int {
	sorted := append([]uint64(nil), p.counts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	if p.total == 0 {
		return 0
	}
	target := uint64(frac * float64(p.total))
	var acc uint64
	for i, c := range sorted {
		acc += c
		if acc >= target {
			return i + 1
		}
	}
	return len(sorted)
}

// NonZeroLines returns how many lines were accessed at all.
func (p *LineProfiler) NonZeroLines() int {
	n := 0
	for _, c := range p.counts {
		if c > 0 {
			n++
		}
	}
	return n
}
