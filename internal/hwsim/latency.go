package hwsim

// LatencyModel assigns cycle costs per hit level plus a NUMA model:
// pages are interleaved round-robin across nodes (the paper's
// "interleaved NUMA memory policy", §5.1.3) and memory accesses whose
// page lives on a remote node pay an extra penalty. The model turns
// miss counts into a single estimated-cycles figure, which is how the
// reference-stream replay predicts end-to-end standings without
// executing on the paper's machines.
type LatencyModel struct {
	L1, L2, L3, Mem uint64
	// RemotePenalty is added to Mem for pages on a node other than
	// the accessing core's (node 0).
	RemotePenalty uint64
	// NumaNodes is the number of memory nodes pages interleave over
	// (1 disables the NUMA penalty).
	NumaNodes int
}

// DefaultLatencies returns cycle costs in the range measured on
// SkyLakeX-class parts: L1 4, L2 14, L3 44, DRAM 200 (+100 remote).
func DefaultLatencies(numaNodes int) LatencyModel {
	if numaNodes < 1 {
		numaNodes = 1
	}
	return LatencyModel{L1: 4, L2: 14, L3: 44, Mem: 200, RemotePenalty: 100, NumaNodes: numaNodes}
}

// AttachLatency enables cycle accounting on the hierarchy.
func (h *Hierarchy) AttachLatency(m LatencyModel) {
	h.lat = &m
}

// Cycles returns the estimated cycle total (0 when no model is
// attached).
func (h *Hierarchy) Cycles() uint64 { return h.cycles }

// chargeLatency classifies one line access by its deepest hit level
// and charges the model cost.
func (h *Hierarchy) chargeLatency(addr uint64, l1Hit, l2Hit, l3Hit bool) {
	if h.lat == nil {
		return
	}
	switch {
	case l1Hit:
		h.cycles += h.lat.L1
	case l2Hit:
		h.cycles += h.lat.L2
	case l3Hit:
		h.cycles += h.lat.L3
	default:
		c := h.lat.Mem
		if h.lat.NumaNodes > 1 {
			node := int(addr>>12) % h.lat.NumaNodes
			if node != 0 {
				c += h.lat.RemotePenalty
			}
		}
		h.cycles += c
	}
}
