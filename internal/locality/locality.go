// Package locality computes exact LRU stack (reuse) distances and
// miss-ratio curves from memory reference streams, via Mattson's
// stack algorithm implemented over an order-statistics treap keyed by
// last-access time. A single pass over a kernel's reference stream
// yields the miss ratio of *every* fully-associative LRU cache size
// at once — the machine-independent form of the paper's locality
// claims (Fig 4, and the §5.2 observation that the Epyc's huge L3
// erases the LOTUS advantage: its capacity sits past the crossover of
// the two miss-ratio curves).
package locality

import "math/rand"

// treap node: keyed by last-access time, ordered, with subtree sizes
// for rank queries.
type node struct {
	time        uint64
	prio        uint64
	size        int
	left, right *node
}

func sz(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() { n.size = 1 + sz(n.left) + sz(n.right) }

// split by time: left < t, right >= t.
func split(n *node, t uint64) (*node, *node) {
	if n == nil {
		return nil, nil
	}
	if n.time < t {
		l, r := split(n.right, t)
		n.right = l
		n.update()
		return n, r
	}
	l, r := split(n.left, t)
	n.left = r
	n.update()
	return l, n
}

func merge(a, b *node) *node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.prio > b.prio:
		a.right = merge(a.right, b)
		a.update()
		return a
	default:
		b.left = merge(a, b.left)
		b.update()
		return b
	}
}

// Profiler computes exact stack distances online. Memory is
// proportional to the number of distinct lines, not the stream
// length.
type Profiler struct {
	root *node
	last map[uint64]uint64 // line -> last access time
	time uint64
	rng  *rand.Rand
	// hist[d] counts accesses with stack distance exactly d, bucketed
	// in powers of two: bucket i covers [2^(i-1), 2^i).
	hist  []uint64
	colds uint64
	total uint64
	// free list of nodes for reuse (one node per distinct line).
	spare *node
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{last: make(map[uint64]uint64), rng: rand.New(rand.NewSource(1))}
}

// Touch records one access to the given cacheline identifier and
// returns its stack distance (the number of distinct lines accessed
// since this line's previous access), or -1 for a cold access.
func (p *Profiler) Touch(line uint64) int {
	p.total++
	p.time++
	t := p.time
	prev, seen := p.last[line]
	p.last[line] = t
	if !seen {
		p.insert(t)
		p.colds++
		return -1
	}
	// Distance = number of tracked lines accessed after prev.
	l, r := split(p.root, prev)
	// r's smallest is prev itself; distance = size(r) - 1.
	d := sz(r) - 1
	// Remove prev from r.
	r = deleteMin(r)
	p.root = merge(l, r)
	p.insert(t)
	p.record(d)
	return d
}

// deleteMin removes the smallest-time node.
func deleteMin(n *node) *node {
	if n == nil {
		return nil
	}
	if n.left == nil {
		return n.right
	}
	n.left = deleteMin(n.left)
	n.update()
	return n
}

func (p *Profiler) insert(t uint64) {
	n := p.spare
	if n != nil {
		p.spare = n.right
		*n = node{time: t, prio: p.rng.Uint64(), size: 1}
	} else {
		n = &node{time: t, prio: p.rng.Uint64(), size: 1}
	}
	l, r := split(p.root, t)
	p.root = merge(merge(l, n), r)
}

func (p *Profiler) record(d int) {
	b := 0
	for x := d; x > 0; x >>= 1 {
		b++
	}
	for len(p.hist) <= b {
		p.hist = append(p.hist, 0)
	}
	p.hist[b]++
}

// Total returns the number of recorded accesses.
func (p *Profiler) Total() uint64 { return p.total }

// Colds returns the number of cold (first-touch) accesses.
func (p *Profiler) Colds() uint64 { return p.colds }

// DistinctLines returns the number of distinct lines seen.
func (p *Profiler) DistinctLines() int { return len(p.last) }

// MissRatio returns the miss ratio of a fully-associative LRU cache
// holding `lines` cachelines: accesses whose stack distance meets or
// exceeds the capacity miss, plus all cold accesses. Distances are
// bucketed in powers of two, so the result is exact at power-of-two
// capacities; between powers of two it attributes whole buckets to
// the hit side (query power-of-two capacities for exact values).
func (p *Profiler) MissRatio(lines int) float64 {
	if p.total == 0 {
		return 0
	}
	misses := p.colds
	for b, c := range p.hist {
		// Bucket b covers distances [2^(b-1), 2^b) (b=0 -> {0}).
		lo := 0
		if b > 0 {
			lo = 1 << (b - 1)
		}
		if lo >= lines {
			misses += c
		}
	}
	return float64(misses) / float64(p.total)
}

// MRC returns the miss ratio at each requested capacity (in lines).
func (p *Profiler) MRC(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = p.MissRatio(c)
	}
	return out
}
