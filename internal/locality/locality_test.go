package locality

import (
	"math/rand"
	"testing"
)

func TestColdAccesses(t *testing.T) {
	p := NewProfiler()
	for l := uint64(0); l < 10; l++ {
		if d := p.Touch(l); d != -1 {
			t.Fatalf("first touch of %d gave distance %d", l, d)
		}
	}
	if p.Colds() != 10 || p.Total() != 10 || p.DistinctLines() != 10 {
		t.Fatalf("counters: %d/%d/%d", p.Colds(), p.Total(), p.DistinctLines())
	}
}

func TestImmediateReuseIsZero(t *testing.T) {
	p := NewProfiler()
	p.Touch(5)
	for i := 0; i < 4; i++ {
		if d := p.Touch(5); d != 0 {
			t.Fatalf("immediate reuse distance = %d", d)
		}
	}
}

func TestScanDistances(t *testing.T) {
	// Two sequential passes over N lines: every second-pass access
	// has stack distance N-1.
	const n = 64
	p := NewProfiler()
	for l := uint64(0); l < n; l++ {
		p.Touch(l)
	}
	for l := uint64(0); l < n; l++ {
		if d := p.Touch(l); d != n-1 {
			t.Fatalf("second-pass distance for %d = %d, want %d", l, d, n-1)
		}
	}
}

func TestInterleavedDistances(t *testing.T) {
	p := NewProfiler()
	p.Touch(1) // cold
	p.Touch(2) // cold
	p.Touch(3) // cold
	if d := p.Touch(2); d != 1 {
		t.Fatalf("distance(2) = %d, want 1 (only 3 since)", d)
	}
	if d := p.Touch(1); d != 2 {
		t.Fatalf("distance(1) = %d, want 2 (3 and 2 since)", d)
	}
	if d := p.Touch(1); d != 0 {
		t.Fatalf("distance(1) repeat = %d, want 0", d)
	}
}

// refDistance recomputes stack distance naively from the history.
func refDistance(history []uint64, i int) int {
	line := history[i]
	seen := map[uint64]bool{}
	for j := i - 1; j >= 0; j-- {
		if history[j] == line {
			return len(seen)
		}
		seen[history[j]] = true
	}
	return -1
}

func TestAgainstNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 2000
	history := make([]uint64, n)
	p := NewProfiler()
	for i := 0; i < n; i++ {
		line := uint64(rng.Intn(50))
		history[i] = line
		got := p.Touch(line)
		want := refDistance(history, i)
		if got != want {
			t.Fatalf("access %d (line %d): distance %d, want %d", i, line, got, want)
		}
	}
}

func TestMissRatioScan(t *testing.T) {
	// Cyclic scan over N lines: an LRU cache of >= N lines hits after
	// warmup; any smaller LRU cache thrashes (miss ratio 1).
	const n, passes = 128, 8
	p := NewProfiler()
	for pass := 0; pass < passes; pass++ {
		for l := uint64(0); l < n; l++ {
			p.Touch(l)
		}
	}
	coldShare := float64(n) / float64(n*passes)
	if mr := p.MissRatio(n); mr > coldShare+1e-9 {
		t.Fatalf("capacity %d miss ratio %.3f, want %.3f (cold only)", n, mr, coldShare)
	}
	if mr := p.MissRatio(n / 2); mr < 0.999 {
		t.Fatalf("undersized LRU should thrash on a cyclic scan, got %.3f", mr)
	}
}

func TestMRCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewProfiler()
	for i := 0; i < 50000; i++ {
		// Zipf-ish: small lines much hotter.
		line := uint64(rng.Intn(1 + rng.Intn(1+rng.Intn(4096))))
		p.Touch(line)
	}
	caps := []int{1, 2, 4, 8, 16, 64, 256, 1024, 4096, 1 << 20}
	mrc := p.MRC(caps)
	for i := 1; i < len(mrc); i++ {
		if mrc[i] > mrc[i-1]+1e-12 {
			t.Fatalf("MRC not monotone: %.4f -> %.4f at %d lines", mrc[i-1], mrc[i], caps[i])
		}
	}
	if mrc[len(mrc)-1] < float64(p.Colds())/float64(p.Total())-1e-12 {
		t.Fatal("MRC below cold floor")
	}
}

func TestEmptyProfiler(t *testing.T) {
	p := NewProfiler()
	if p.MissRatio(8) != 0 || len(p.MRC([]int{1, 2})) != 2 {
		t.Fatal("empty profiler misbehaves")
	}
}

func BenchmarkProfilerTouch(b *testing.B) {
	p := NewProfiler()
	rng := rand.New(rand.NewSource(1))
	lines := make([]uint64, 1<<16)
	for i := range lines {
		lines[i] = uint64(rng.Intn(1 << 14))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Touch(lines[i&(1<<16-1)])
	}
}
