package gen

import (
	"testing"

	"lotustc/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	p := DefaultRMAT(10, 8, 42)
	g1 := RMAT(p)
	g2 := RMAT(p)
	if g1.NumEdges() != g2.NumEdges() || g1.NumVertices() != g2.NumVertices() {
		t.Fatal("RMAT not deterministic for same seed")
	}
	g3 := RMAT(DefaultRMAT(10, 8, 43))
	if g3.NumEdges() == g1.NumEdges() && equalGraphs(g1, g3) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func equalGraphs(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumDirectedEdges() != b.NumDirectedEdges() {
		return false
	}
	an, bn := a.RawNeighbors(), b.RawNeighbors()
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
	}
	return true
}

func TestRMATValidAndSkewed(t *testing.T) {
	g := RMAT(DefaultRMAT(12, 8, 1))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != 1<<12 {
		t.Fatalf("V = %d, want %d", g.NumVertices(), 1<<12)
	}
	er := ErdosRenyi(1<<12, 8<<12, 1)
	if gr, ge := g.GiniOfDegrees(), er.GiniOfDegrees(); gr <= ge {
		t.Fatalf("RMAT Gini %.3f should exceed ER Gini %.3f", gr, ge)
	}
}

func TestChungLuSkewControl(t *testing.T) {
	steep := ChungLu(ChungLuParams{N: 4096, M: 32768, Gamma: 2.1, Seed: 7})
	flat := ChungLu(ChungLuParams{N: 4096, M: 32768, Gamma: 2.9, Seed: 7})
	if err := steep.Validate(); err != nil {
		t.Fatal(err)
	}
	if gs, gf := steep.GiniOfDegrees(), flat.GiniOfDegrees(); gs <= gf {
		t.Fatalf("gamma=2.1 Gini %.3f should exceed gamma=2.9 Gini %.3f", gs, gf)
	}
	capped := ChungLu(ChungLuParams{N: 4096, M: 32768, Gamma: 2.1, MaxDegreeCap: 0.05, Seed: 7})
	if gc := capped.GiniOfDegrees(); gc >= steep.GiniOfDegrees() {
		t.Fatalf("degree cap should flatten distribution: capped %.3f vs %.3f", gc, steep.GiniOfDegrees())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(2000, 4, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Each of the 2000-5 grown vertices adds exactly 4 edges; seed
	// clique adds C(5,2)=10.
	want := int64(10 + (2000-5)*4)
	if g.NumEdges() != want {
		t.Fatalf("E = %d, want %d", g.NumEdges(), want)
	}
	// Preferential attachment must produce hubs: skew far above ER.
	er := ErdosRenyi(2000, int(want), 7)
	if g.GiniOfDegrees() <= er.GiniOfDegrees() {
		t.Fatalf("BA Gini %.3f <= ER %.3f", g.GiniOfDegrees(), er.GiniOfDegrees())
	}
	// Degenerate parameters clamp instead of panicking.
	small := BarabasiAlbert(1, 0, 1)
	if small.NumVertices() < 2 {
		t.Fatal("clamp failed")
	}
}

func TestSBM(t *testing.T) {
	p := SBMParams{N: 600, K: 6, PIn: 0.2, POut: 0.002, Seed: 9}
	g := SBM(p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 600 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Expected edges: within = 6*C(100,2)*0.2 ≈ 5940;
	// across = (C(600,2)-6*C(100,2))*0.002 ≈ 300. Allow wide slack.
	e := g.NumEdges()
	if e < 4500 || e > 8000 {
		t.Fatalf("E = %d outside expected band", e)
	}
	// Count in/out edges: the planted structure must dominate.
	community := func(v uint32) int { return int(v) * p.K / p.N }
	var in, out int
	for _, edge := range g.Edges() {
		if community(edge.U) == community(edge.V) {
			in++
		} else {
			out++
		}
	}
	if in < 10*out {
		t.Fatalf("weak community structure: %d in vs %d out", in, out)
	}
	// Community structure means high transitivity vs an ER graph of
	// equal size.
	er := ErdosRenyi(600, int(e), 9)
	gTri := countRef(g)
	erTri := countRef(er)
	if gTri <= erTri {
		t.Fatalf("SBM triangles %d <= ER %d", gTri, erTri)
	}
	// Degenerate probabilities.
	if SBM(SBMParams{N: 10, K: 2, PIn: 0, POut: 0, Seed: 1}).NumEdges() != 0 {
		t.Fatal("zero-probability SBM has edges")
	}
	full := SBM(SBMParams{N: 12, K: 3, PIn: 1, POut: 1, Seed: 1})
	if full.NumEdges() != 66 {
		t.Fatalf("p=1 SBM should be K12, got %d edges", full.NumEdges())
	}
}

// countRef is a tiny oracle for generator tests.
func countRef(g *graph.Graph) uint64 {
	var n uint64
	for v := 0; v < g.NumVertices(); v++ {
		nv := g.Neighbors(uint32(v))
		for i := 0; i < len(nv); i++ {
			if nv[i] >= uint32(v) {
				break
			}
			for j := i + 1; j < len(nv); j++ {
				if nv[j] >= uint32(v) {
					break
				}
				if g.HasEdge(nv[i], nv[j]) {
					n++
				}
			}
		}
	}
	return n
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 || g.NumEdges() > 5000 {
		t.Fatalf("unexpected |E| = %d", g.NumEdges())
	}
}

func TestStructuredGraphs(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		v      int
		e      int64
		maxDeg int
	}{
		{"K5", Complete(5), 5, 10, 4},
		{"Star10", Star(10), 10, 9, 9},
		{"Ring8", Ring(8), 8, 8, 2},
		{"Path6", Path(6), 6, 5, 2},
		{"Grid3x4", Grid(3, 4), 12, 17, 4},
		{"K23", CompleteBipartite(2, 3), 5, 6, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if c.g.NumVertices() != c.v {
				t.Errorf("V = %d, want %d", c.g.NumVertices(), c.v)
			}
			if c.g.NumEdges() != c.e {
				t.Errorf("E = %d, want %d", c.g.NumEdges(), c.e)
			}
			if c.g.MaxDegree() != c.maxDeg {
				t.Errorf("maxDeg = %d, want %d", c.g.MaxDegree(), c.maxDeg)
			}
		})
	}
}

func TestPlantedTriangles(t *testing.T) {
	g := PlantedTriangles(7, 5)
	if g.NumVertices() != 26 {
		t.Fatalf("V = %d, want 26", g.NumVertices())
	}
	if g.NumEdges() != 21 {
		t.Fatalf("E = %d, want 21", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHubAndSpokes(t *testing.T) {
	g := HubAndSpokes(8, 100, 3, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hubs form K8; each leaf attaches to exactly 3 distinct hubs.
	wantE := int64(8*7/2 + 100*3)
	if g.NumEdges() != wantE {
		t.Fatalf("E = %d, want %d", g.NumEdges(), wantE)
	}
	for l := 8; l < 108; l++ {
		if g.Degree(uint32(l)) != 3 {
			t.Fatalf("leaf %d degree = %d, want 3", l, g.Degree(uint32(l)))
		}
	}
}

func TestRingTriangleFree(t *testing.T) {
	// Rings of length > 3 contain no triangles: no common neighbours
	// between adjacent vertices.
	g := Ring(10)
	for v := uint32(0); v < 10; v++ {
		for _, u := range g.Neighbors(v) {
			for _, w := range g.Neighbors(v) {
				if w != u && g.HasEdge(u, w) {
					t.Fatalf("ring contains triangle (%d,%d,%d)", v, u, w)
				}
			}
		}
	}
}
