// Package gen produces deterministic synthetic graphs that stand in
// for the paper's real-world datasets (DESIGN.md, substitution table).
//
// Two families matter for LOTUS:
//
//   - Skewed (power-law) graphs — R-MAT/Kronecker and Chung–Lu — where
//     a small hub set covers most edges and the hub sub-graph is
//     dense. These are the social-network / web-graph analogs on which
//     LOTUS is designed to win.
//   - Flat graphs — Erdős–Rényi and capped-degree Chung–Lu — which
//     reproduce the paper's §5.5 "less power-law" regime (Friendster).
//
// All generators are seeded and reproducible: the same parameters and
// seed always produce the same graph.
package gen

import (
	"math"
	"math/rand"

	"lotustc/internal/graph"
)

// RMATParams configure the recursive-matrix (Kronecker) generator.
// The defaults follow the Graph500 convention (a=0.57, b=c=0.19,
// d=0.05), which produces a heavy-tailed degree distribution similar
// to the Twitter-family datasets of the paper.
type RMATParams struct {
	Scale      uint    // |V| = 2^Scale
	EdgeFactor int     // |E| ~= EdgeFactor * |V| before dedup
	A, B, C    float64 // quadrant probabilities; D = 1-A-B-C
	Seed       int64
	// NoiseEach perturbs the quadrant probabilities per level
	// (Graph500-style smoothing) to avoid exact self-similarity.
	Noise float64
}

// DefaultRMAT returns Graph500-style parameters at the given scale.
func DefaultRMAT(scale uint, edgeFactor int, seed int64) RMATParams {
	return RMATParams{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19, Seed: seed, Noise: 0.05}
}

// RMAT generates a symmetric simple graph with 2^Scale vertices by the
// R-MAT recursive quadrant process.
func RMAT(p RMATParams) *graph.Graph {
	if p.A == 0 && p.B == 0 && p.C == 0 {
		p.A, p.B, p.C = 0.57, 0.19, 0.19
	}
	n := 1 << p.Scale
	m := p.EdgeFactor * n
	rng := rand.New(rand.NewSource(p.Seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := rmatEdge(rng, p)
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
}

func rmatEdge(rng *rand.Rand, p RMATParams) (uint32, uint32) {
	var u, v uint32
	a, b, c := p.A, p.B, p.C
	for lvl := uint(0); lvl < p.Scale; lvl++ {
		aa, bb, cc := a, b, c
		if p.Noise > 0 {
			aa *= 1 + p.Noise*(rng.Float64()*2-1)
			bb *= 1 + p.Noise*(rng.Float64()*2-1)
			cc *= 1 + p.Noise*(rng.Float64()*2-1)
			sum := aa + bb + cc + (1 - a - b - c)
			aa, bb, cc = aa/sum, bb/sum, cc/sum
		}
		r := rng.Float64()
		u <<= 1
		v <<= 1
		switch {
		case r < aa:
			// quadrant (0,0)
		case r < aa+bb:
			v |= 1
		case r < aa+bb+cc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return u, v
}

// ChungLuParams configure the Chung–Lu expected-degree generator with
// a Zipf-like weight sequence w_i = wMax * (i+1)^(-1/(gamma-1)),
// giving a power-law degree distribution with exponent gamma.
type ChungLuParams struct {
	N     int     // number of vertices
	M     int     // target number of edge samples before dedup
	Gamma float64 // power-law exponent (2 < gamma < 3 for real graphs)
	// MaxDegreeCap truncates the weight sequence, flattening the
	// distribution; use it to model the §5.5 "low skewness, highest
	// degree 5K" Friendster regime. Zero means uncapped.
	MaxDegreeCap float64
	Seed         int64
}

// ChungLu samples M edges proportionally to w_u*w_v and returns the
// deduplicated simple graph. Sampling uses the standard alias-free
// inverse-CDF over the weight prefix sums.
func ChungLu(p ChungLuParams) *graph.Graph {
	if p.Gamma <= 1 {
		p.Gamma = 2.3
	}
	rng := rand.New(rand.NewSource(p.Seed))
	w := make([]float64, p.N)
	exp := 1 / (p.Gamma - 1)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -exp)
		if p.MaxDegreeCap > 0 && w[i] > p.MaxDegreeCap {
			w[i] = p.MaxDegreeCap
		}
	}
	// Prefix sums for inverse-CDF sampling.
	cdf := make([]float64, p.N+1)
	for i, x := range w {
		cdf[i+1] = cdf[i] + x
	}
	total := cdf[p.N]
	sample := func() uint32 {
		x := rng.Float64() * total
		lo, hi := 0, p.N
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint32(lo)
	}
	edges := make([]graph.Edge, 0, p.M)
	for i := 0; i < p.M; i++ {
		edges = append(edges, graph.Edge{U: sample(), V: sample()})
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: p.N})
}

// BarabasiAlbert grows a preferential-attachment graph: starting
// from a small seed clique, each new vertex attaches to m existing
// vertices chosen proportionally to their degree. The result is the
// classic scale-free model (gamma ≈ 3) with organically emerging
// hubs — a structurally different power-law source than R-MAT's
// recursive quadrants, useful for robustness checks.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	rng := rand.New(rand.NewSource(seed))
	// targets holds one entry per edge endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	var targets []uint32
	var edges []graph.Edge
	// Seed: (m+1)-clique.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
			targets = append(targets, uint32(u), uint32(v))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[uint32]bool{}
		for len(chosen) < m {
			u := targets[rng.Intn(len(targets))]
			chosen[u] = true
		}
		for u := range chosen {
			edges = append(edges, graph.Edge{U: u, V: uint32(v)})
			targets = append(targets, u, uint32(v))
		}
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
}

// ErdosRenyi generates a G(n, m)-style graph by sampling m uniform
// edges (with dedup), the maximally "non-power-law" baseline.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
}

// SBMParams configure the stochastic block model (planted-partition)
// generator: k communities of n/k vertices, with edge probability
// pIn inside a community and pOut across communities. High pIn/pOut
// ratios produce the community structure that gives real social
// networks their high triangle density.
type SBMParams struct {
	N, K      int
	PIn, POut float64
	Seed      int64
}

// SBM samples a stochastic block model graph. Edge sampling is
// O(expected edges) via geometric skipping.
func SBM(p SBMParams) *graph.Graph {
	rng := rand.New(rand.NewSource(p.Seed))
	var edges []graph.Edge
	community := func(v int) int { return v * p.K / p.N }
	// Geometric skipping over the upper triangle: iterate potential
	// pairs (u,v), u<v, skipping ahead by Geom(prob) each time.
	sample := func(prob float64, emit func(idx int64), total int64) {
		if prob <= 0 {
			return
		}
		if prob >= 1 {
			for i := int64(0); i < total; i++ {
				emit(i)
			}
			return
		}
		idx := int64(-1)
		for {
			// Skip ~ Geometric(prob).
			skip := int64(math.Floor(math.Log(1-rng.Float64())/math.Log(1-prob))) + 1
			idx += skip
			if idx >= total {
				return
			}
			emit(idx)
		}
	}
	// Enumerate pairs as a flat index over the upper triangle.
	total := int64(p.N) * int64(p.N-1) / 2
	pairOf := func(idx int64) (int, int) {
		// Row-major upper triangle: find u with binary search.
		lo, hi := 0, p.N-1
		for lo < hi {
			mid := (lo + hi) / 2
			// Pairs before row mid+1: sum_{r<=mid} (N-1-r)
			before := int64(mid+1)*int64(p.N-1) - int64(mid+1)*int64(mid)/2
			if before <= idx {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		u := lo
		before := int64(u)*int64(p.N-1) - int64(u)*int64(u-1)/2
		v := u + 1 + int(idx-before)
		return u, v
	}
	// Two passes: one at pOut over all pairs (then filter to
	// cross-community), one at the boosted rate for in-community
	// pairs. For simplicity and exactness, sample at pOut globally
	// and add the in-community excess (pIn-pOut)/(1-pOut) on a second
	// pass; duplicates collapse in the builder.
	sample(p.POut, func(idx int64) {
		u, v := pairOf(idx)
		edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
	}, total)
	if p.PIn > p.POut {
		excess := (p.PIn - p.POut) / (1 - p.POut)
		sample(excess, func(idx int64) {
			u, v := pairOf(idx)
			if community(u) == community(v) {
				edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
			}
		}, total)
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: p.N})
}

// Complete returns K_n; it contains C(n,3) triangles and is the
// worst-case dense input for the hub phase.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
		}
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
}

// Star returns a star with center 0 and n-1 leaves: zero triangles
// with an extreme hub.
func Star(n int) *graph.Graph {
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(v)})
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
}

// Ring returns the n-cycle: zero triangles for n > 3, one for n == 3.
func Ring(n int) *graph.Graph {
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{U: uint32(v), V: uint32((v + 1) % n)})
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
}

// Path returns the n-vertex path graph: zero triangles.
func Path(n int) *graph.Graph {
	var edges []graph.Edge
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: uint32(v), V: uint32(v + 1)})
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
}

// Grid returns the rows x cols 2-D lattice: zero triangles, good
// spatial locality — the opposite structural extreme from R-MAT.
func Grid(rows, cols int) *graph.Graph {
	var edges []graph.Edge
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: rows * cols})
}

// TriGrid returns the rows x cols triangulated lattice: the 2-D grid
// plus one diagonal per unit square, so every square holds exactly two
// triangles — (rows-1)*(cols-1)*2 in total. Degrees are flat (interior
// vertices have degree 6) and the diameter is huge, the road-network
// regime where hub-based counting has nothing to grab and the
// cover-edge kernel shines.
func TriGrid(rows, cols int) *graph.Graph {
	var edges []graph.Edge
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
			if c+1 < cols && r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c+1)})
			}
		}
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: rows * cols})
}

// CompleteBipartite returns K_{a,b}, a triangle-free graph with two
// fully-connected hub-like sides; every neighbour-list intersection in
// it is fruitless, stressing the §3.3 pruning analysis.
func CompleteBipartite(a, b int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(a + v)})
		}
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: a + b})
}

// PlantedTriangles builds a sparse graph of t disjoint triangles plus
// isolated padding vertices, for exact-count tests: it has exactly t
// triangles.
func PlantedTriangles(t, padding int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < t; i++ {
		a, b, c := uint32(3*i), uint32(3*i+1), uint32(3*i+2)
		edges = append(edges, graph.Edge{U: a, V: b}, graph.Edge{U: b, V: c}, graph.Edge{U: a, V: c})
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: 3*t + padding})
}

// HubAndSpokes builds the paper's motivating structure explicitly:
// nHubs mutually connected hubs (a clique) plus nLeaves non-hubs, each
// attached to `attach` distinct hubs. Every leaf contributes
// C(attach,2) HHN triangles; the clique contributes C(nHubs,3) HHH
// triangles; there are no HNN or NNN triangles.
func HubAndSpokes(nHubs, nLeaves, attach int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for u := 0; u < nHubs; u++ {
		for v := u + 1; v < nHubs; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
		}
	}
	for l := 0; l < nLeaves; l++ {
		leaf := uint32(nHubs + l)
		perm := rng.Perm(nHubs)
		for i := 0; i < attach && i < nHubs; i++ {
			edges = append(edges, graph.Edge{U: leaf, V: uint32(perm[i])})
		}
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: nHubs + nLeaves})
}
