// Package perf replays the exact memory reference streams of the
// Forward and LOTUS counting kernels through the hwsim machine models
// to reproduce the paper's hardware-counter experiments: Fig 4 (LLC
// and DTLB misses), Fig 5 (memory accesses, instructions, branch
// mispredictions) and Fig 9 (H2H cacheline access CDF).
//
// The instrumented kernels are single-threaded replicas of the real
// kernels: they compute the same triangle totals (asserted by tests)
// while issuing one model access per topology load. Arrays are mapped
// to disjoint synthetic address regions at their true element widths
// (8-byte offsets, 4-byte neighbour IDs, 2-byte HE IDs, 1-bit H2H
// entries), so capacity and TLB behaviour match the paper's layouts.
// The "instructions" metric is an operation-count proxy (loads +
// compares + branches + increments) rather than retired µops; it
// tracks the paper's 1.7x algorithmic-work argument, not a cycle
// model.
package perf

import (
	"math/bits"

	"lotustc/internal/bitarray"
	"lotustc/internal/core"
	"lotustc/internal/graph"
	"lotustc/internal/hwsim"
	"lotustc/internal/locality"
	"lotustc/internal/reorder"
)

// Synthetic base addresses: 16 GiB apart so regions never collide.
const (
	baseForwardOff = 0x1 << 34
	baseForwardNbr = 0x2 << 34
	baseHEOff      = 0x3 << 34
	baseHENbr      = 0x4 << 34
	baseNHEOff     = 0x5 << 34
	baseNHENbr     = 0x6 << 34
	baseH2H        = 0x7 << 34
	// baseScratch maps the word kernel's per-worker hub bitmap. It is
	// ≤8 KB and reused across every row, so in the model it lives in
	// its own region and stays L1-resident — the property the kernel
	// is designed around.
	baseScratch = 0x8 << 34
)

// Branch sites (synthetic PCs) for the predictor.
const (
	siteMergeLess = 0x100
	siteMergeEq   = 0x108
	siteH2HProbe  = 0x110
)

// Events aggregates the modeled hardware events of one kernel run.
type Events struct {
	Name         string
	Triangles    uint64
	MemAccesses  uint64 // Fig 5a: loads/stores issued to the model
	Instructions uint64 // Fig 5b proxy: loads+compares+branches+adds
	Branches     uint64
	BranchMisses uint64 // Fig 5c
	LLCMisses    uint64 // Fig 4a
	TLBMisses    uint64 // Fig 4b
	// EstimatedCycles charges each access its hit-level latency under
	// the hwsim latency/NUMA model — the replay's single-figure
	// stand-in for execution time.
	EstimatedCycles uint64
}

// refSink receives a kernel's reference stream. machineState (the
// hwsim machine models) and localitySink (exact reuse-distance
// analysis) both implement it, so each instrumented kernel is written
// once and replayed against either backend.
type refSink interface {
	load(addr uint64, size int)
	branch(site uint64, taken bool)
	addOp()
}

// machineState bundles the models one instrumented run drives.
type machineState struct {
	h   *hwsim.Hierarchy
	bp  *hwsim.BranchPredictor
	ops uint64
}

func newMachine(cfg hwsim.MachineConfig) *machineState {
	h := hwsim.NewHierarchy(cfg)
	// Two interleaved NUMA nodes, matching the paper's dual-socket
	// SkyLakeX/Epyc setups with the interleave policy (§5.1.3).
	h.AttachLatency(hwsim.DefaultLatencies(2))
	return &machineState{h: h, bp: hwsim.NewBranchPredictor(14)}
}

func (m *machineState) load(addr uint64, size int) {
	m.h.Access(addr, size)
	m.ops++
}

func (m *machineState) branch(site uint64, taken bool) {
	m.bp.Record(site, taken)
	m.ops++
}

func (m *machineState) addOp() { m.ops++ }

func (m *machineState) events(name string, triangles uint64) Events {
	br, bm := m.bp.Stats()
	return Events{
		Name:            name,
		Triangles:       triangles,
		MemAccesses:     m.h.MemAccesses,
		Instructions:    m.ops,
		Branches:        br,
		BranchMisses:    bm,
		LLCMisses:       m.h.LLCMisses(),
		TLBMisses:       m.h.TLBMisses(),
		EstimatedCycles: m.h.Cycles(),
	}
}

// mergeJoin replays an instrumented merge join between two neighbour
// slices whose elements live at the given bases/widths.
func mergeJoin(m refSink, a []uint32, aBase uint64, aOff int64, b []uint32, bBase uint64, bOff int64, width int) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		m.load(aBase+uint64(aOff+int64(i))*uint64(width), width)
		m.load(bBase+uint64(bOff+int64(j))*uint64(width), width)
		less := a[i] < b[j]
		m.branch(siteMergeLess, less)
		switch {
		case less:
			i++
		case a[i] > b[j]:
			m.branch(siteMergeEq, false)
			j++
		default:
			m.branch(siteMergeEq, true)
			n++
			m.addOp() // increment
			i++
			j++
		}
	}
	return n
}

// InstrumentedForward runs Algorithm 1 (degree ordering + merge-join
// Forward) serially, replaying its reference stream on the machine
// model. Preprocessing (the relabel/orient) is not instrumented: the
// paper's Fig 4/5 compare the counting kernels' locality.
func InstrumentedForward(g *graph.Graph, cfg hwsim.MachineConfig) Events {
	ra := reorder.DegreeOrder(g)
	og := g.Relabel(ra).Orient()
	m := newMachine(cfg)
	triangles := runForward(og, m)
	return m.events(cfg.Name+"/forward", triangles)
}

// runForward replays the Forward counting kernel's reference stream
// into the sink and returns the triangle count.
func runForward(og *graph.Graph, m refSink) uint64 {
	offsets := og.Offsets()
	var triangles uint64
	n := og.NumVertices()
	for v := 0; v < n; v++ {
		m.load(baseForwardOff+uint64(v)*8, 8)
		m.load(baseForwardOff+uint64(v+1)*8, 8)
		nv := og.Neighbors(uint32(v))
		for idx, u := range nv {
			m.load(baseForwardNbr+uint64(offsets[v]+int64(idx))*4, 4)
			m.load(baseForwardOff+uint64(u)*8, 8)
			m.load(baseForwardOff+uint64(u+1)*8, 8)
			nu := og.Neighbors(u)
			triangles += mergeJoin(m, nv, baseForwardNbr, offsets[v], nu, baseForwardNbr, offsets[u], 4)
		}
	}
	return triangles
}

// InstrumentedLotus runs Algorithm 3 serially on a preprocessed
// LotusGraph, replaying its three phases' reference streams with the
// scalar phase-1 kernel (the paper's probe loop).
func InstrumentedLotus(lg *core.LotusGraph, cfg hwsim.MachineConfig) Events {
	return InstrumentedLotusKernel(lg, cfg, false)
}

// InstrumentedLotusKernel is InstrumentedLotus with a selectable
// phase-1 kernel: wordPhase1 replays the word-parallel bitmap kernel's
// reference stream instead of per-pair bit probes. (The runtime's auto
// mode is a per-row mix of the two; the replay models the pure
// kernels so their streams can be compared.)
func InstrumentedLotusKernel(lg *core.LotusGraph, cfg hwsim.MachineConfig, wordPhase1 bool) Events {
	m := newMachine(cfg)
	triangles := runLotusKernel(lg, m, wordPhase1)
	name := cfg.Name + "/lotus"
	if wordPhase1 {
		name += "/phase1=word"
	}
	return m.events(name, triangles)
}

// runLotus replays the three LOTUS counting phases' reference
// streams into the sink and returns the triangle count.
func runLotus(lg *core.LotusGraph, m refSink) uint64 {
	return runLotusKernel(lg, m, false)
}

func runLotusKernel(lg *core.LotusGraph, m refSink, wordPhase1 bool) uint64 {
	var triangles uint64
	if wordPhase1 {
		triangles = replayPhase1Word(lg, m)
	} else {
		triangles = replayPhase1Scalar(lg, m)
	}
	return triangles + replayPhases23(lg, m)
}

// replayPhase1Scalar replays phase 1 (HHH + HHN) with per-pair bit
// probes: sequential HE row reads, random H2H probes.
func replayPhase1Scalar(lg *core.LotusGraph, m refSink) uint64 {
	heOff := lg.HE.Offsets()
	var triangles uint64
	n := lg.NumVertices()
	for v := 0; v < n; v++ {
		m.load(baseHEOff+uint64(v)*8, 8)
		m.load(baseHEOff+uint64(v+1)*8, 8)
		nv := lg.HE.Neighbors(uint32(v))
		for i := 1; i < len(nv); i++ {
			m.load(baseHENbr+uint64(heOff[v]+int64(i))*2, 2)
			h1 := uint32(nv[i])
			row := lg.H2H.Row(h1)
			for j := 0; j < i; j++ {
				m.load(baseHENbr+uint64(heOff[v]+int64(j))*2, 2)
				h2 := uint32(nv[j])
				// One 8-byte word read of the bit array.
				bit := bitarray.BitIndex(h1, h2)
				m.load(baseH2H+(bit>>6)*8, 8)
				hit := row.IsSet(h2)
				m.branch(siteH2HProbe, hit)
				if hit {
					triangles++
					m.addOp()
				}
			}
		}
	}
	return triangles
}

// replayPhase1Word replays phase 1 with the word-parallel kernel: the
// vertex's hub neighbours are scattered into the scratch bitmap once
// (one HE read plus one bitmap word touch each), then each h1 row is
// read word-by-word from H2H and ANDed against the bitmap — no
// per-pair branch, so the probe branch site disappears from the
// stream, and the H2H traffic becomes sequential within each row.
func replayPhase1Word(lg *core.LotusGraph, m refSink) uint64 {
	heOff := lg.HE.Offsets()
	var triangles uint64
	n := lg.NumVertices()
	bm := make([]uint64, (int(lg.HubCount)+63)/64)
	for v := 0; v < n; v++ {
		m.load(baseHEOff+uint64(v)*8, 8)
		m.load(baseHEOff+uint64(v+1)*8, 8)
		nv := lg.HE.Neighbors(uint32(v))
		if len(nv) < 2 {
			continue
		}
		for j, h := range nv {
			m.load(baseHENbr+uint64(heOff[v]+int64(j))*2, 2)
			m.load(baseScratch+uint64(h>>6)*8, 8)
			bm[h>>6] |= 1 << (h & 63)
			m.addOp()
		}
		for i := 1; i < len(nv); i++ {
			h1 := uint32(nv[i])
			row := lg.H2H.Row(h1)
			rowBase := bitarray.BitIndex(h1, 0)
			nw := row.NumWords()
			for w := uint32(0); w < nw; w++ {
				// One row-word read (the shifted two-word assembly
				// stays within one extra cacheline-adjacent word) and
				// one L1-resident bitmap word.
				m.load(baseH2H+((rowBase+uint64(w)*64)>>6)*8, 8)
				m.load(baseScratch+uint64(w)*8, 8)
				triangles += uint64(bits.OnesCount64(row.Word(w) & bm[w]))
				m.addOp() // AND+popcount
			}
		}
		for _, h := range nv {
			m.load(baseScratch+uint64(h>>6)*8, 8)
			bm[h>>6] = 0
		}
	}
	return triangles
}

// replayPhases23 replays the HNN and NNN phases (shared by both
// phase-1 kernels).
func replayPhases23(lg *core.LotusGraph, m refSink) uint64 {
	heOff := lg.HE.Offsets()
	nheOff := lg.NHE.Offsets()
	var triangles uint64
	n := lg.NumVertices()

	// Phase 2: HNN. Streamed NHE traversal; random HE row loads.
	for v := 0; v < n; v++ {
		m.load(baseNHEOff+uint64(v)*8, 8)
		m.load(baseNHEOff+uint64(v+1)*8, 8)
		hv := lg.HE.Neighbors(uint32(v))
		nhe := lg.NHE.Neighbors(uint32(v))
		for idx, u := range nhe {
			m.load(baseNHENbr+uint64(nheOff[v]+int64(idx))*4, 4)
			m.load(baseHEOff+uint64(u)*8, 8)
			m.load(baseHEOff+uint64(u+1)*8, 8)
			hu := lg.HE.Neighbors(u)
			triangles += mergeJoin16(m, hv, heOff[v], hu, heOff[u])
		}
	}

	// Phase 3: NNN. Forward over the NHE sub-graph only.
	for v := 0; v < n; v++ {
		m.load(baseNHEOff+uint64(v)*8, 8)
		m.load(baseNHEOff+uint64(v+1)*8, 8)
		nv := lg.NHE.Neighbors(uint32(v))
		for idx, u := range nv {
			m.load(baseNHENbr+uint64(nheOff[v]+int64(idx))*4, 4)
			m.load(baseNHEOff+uint64(u)*8, 8)
			m.load(baseNHEOff+uint64(u+1)*8, 8)
			nu := lg.NHE.Neighbors(u)
			triangles += mergeJoin(m, nv, baseNHENbr, nheOff[v], nu, baseNHENbr, nheOff[u], 4)
		}
	}

	return triangles
}

// mergeJoin16 is the 16-bit HE variant of the instrumented merge.
func mergeJoin16(m refSink, a []uint16, aOff int64, b []uint16, bOff int64) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		m.load(baseHENbr+uint64(aOff+int64(i))*2, 2)
		m.load(baseHENbr+uint64(bOff+int64(j))*2, 2)
		less := a[i] < b[j]
		m.branch(siteMergeLess, less)
		switch {
		case less:
			i++
		case a[i] > b[j]:
			m.branch(siteMergeEq, false)
			j++
		default:
			m.branch(siteMergeEq, true)
			n++
			m.addOp()
			i++
			j++
		}
	}
	return n
}

// H2HProfile replays phase 1's H2H probe stream into a cacheline
// profiler, producing the Fig 9 data: how concentrated the random
// H2H accesses are.
func H2HProfile(lg *core.LotusGraph) *hwsim.LineProfiler {
	p := hwsim.NewLineProfiler(lg.H2H.NumCachelines())
	n := lg.NumVertices()
	for v := 0; v < n; v++ {
		nv := lg.HE.Neighbors(uint32(v))
		for i := 1; i < len(nv); i++ {
			h1 := uint32(nv[i])
			for j := 0; j < i; j++ {
				p.Touch(bitarray.Cacheline(h1, uint32(nv[j])))
			}
		}
	}
	return p
}

// Compare runs both instrumented kernels on the same graph and
// returns (forward, lotus) events — one Fig 4/5 bar pair.
func Compare(g *graph.Graph, opt core.Options, cfg hwsim.MachineConfig) (Events, Events) {
	fwd := InstrumentedForward(g, cfg)
	lg := core.Preprocess(g, opt)
	lot := InstrumentedLotus(lg, cfg)
	return fwd, lot
}

// localitySink feeds the reference stream's cacheline sequence into
// an exact reuse-distance profiler (Mattson stack analysis), ignoring
// branch events.
type localitySink struct{ p *locality.Profiler }

func (s localitySink) load(addr uint64, size int) {
	first := addr >> 6
	last := (addr + uint64(size) - 1) >> 6
	for l := first; l <= last; l++ {
		s.p.Touch(l)
	}
}

func (s localitySink) branch(uint64, bool) {}
func (s localitySink) addOp()              {}

// ForwardMRC replays the Forward kernel into a reuse-distance
// profiler and returns the LRU miss ratio at each capacity (given in
// cachelines). A single replay yields the whole curve.
func ForwardMRC(g *graph.Graph, capacities []int) []float64 {
	ra := reorder.DegreeOrder(g)
	og := g.Relabel(ra).Orient()
	s := localitySink{p: locality.NewProfiler()}
	runForward(og, s)
	return s.p.MRC(capacities)
}

// LotusMRC replays the LOTUS kernel into a reuse-distance profiler
// and returns the LRU miss ratio at each capacity (in cachelines).
func LotusMRC(lg *core.LotusGraph, capacities []int) []float64 {
	s := localitySink{p: locality.NewProfiler()}
	runLotus(lg, s)
	return s.p.MRC(capacities)
}
