package perf

import (
	"testing"

	"lotustc/internal/core"
	"lotustc/internal/gen"
)

// The replay infrastructure must be fully deterministic: identical
// graphs and machine configs produce identical event counts, or
// EXPERIMENTS.md numbers would not be reproducible.
func TestReplayDeterminism(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 11))
	cfg := tinyMachine()
	a := InstrumentedForward(g, cfg)
	b := InstrumentedForward(g, cfg)
	if a != b {
		t.Fatalf("forward replay not deterministic:\n%+v\n%+v", a, b)
	}
	lg := core.Preprocess(g, core.Options{Pool: pool})
	c := InstrumentedLotus(lg, cfg)
	d := InstrumentedLotus(lg, cfg)
	if c != d {
		t.Fatalf("lotus replay not deterministic:\n%+v\n%+v", c, d)
	}
	// MRC too.
	caps := []int{16, 256, 4096}
	m1 := ForwardMRC(g, caps)
	m2 := ForwardMRC(g, caps)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("MRC not deterministic at %d", caps[i])
		}
	}
}

// Preprocessing strategy must not change the replay: the structures
// are bit-identical, so the LOTUS reference stream is too.
func TestReplayIndependentOfPreprocessor(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 13))
	cfg := tinyMachine()
	a := InstrumentedLotus(core.PreprocessMaterialize(g, core.Options{Pool: pool}), cfg)
	b := InstrumentedLotus(core.PreprocessDirect(g, core.Options{Pool: pool}), cfg)
	if a != b {
		t.Fatalf("replay differs across preprocessors:\n%+v\n%+v", a, b)
	}
}

// The prefetch flag must thread through MachineConfig and only ever
// reduce modeled misses.
func TestPrefetchConfigPropagates(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 10, 17))
	base := tinyMachine()
	pf := base
	pf.Prefetch = true
	off := InstrumentedForward(g, base)
	on := InstrumentedForward(g, pf)
	if on.LLCMisses >= off.LLCMisses {
		t.Fatalf("prefetcher did not reduce misses: %d -> %d", off.LLCMisses, on.LLCMisses)
	}
	if on.Triangles != off.Triangles {
		t.Fatal("prefetcher changed the count")
	}
}
