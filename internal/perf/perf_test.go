package perf

import (
	"testing"

	"lotustc/internal/baseline"
	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/hwsim"
	"lotustc/internal/sched"
)

var pool = sched.NewPool(2)

// tinyMachine keeps the instrumented runs fast in unit tests.
func tinyMachine() hwsim.MachineConfig {
	return hwsim.MachineConfig{
		Name: "tiny", L1Bytes: 4 << 10, L2Bytes: 32 << 10, L3Bytes: 256 << 10,
		L1Ways: 4, L2Ways: 8, L3Ways: 8, TLBEntries: 32,
	}
}

func TestInstrumentedKernelsCountCorrectly(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":      gen.RMAT(gen.DefaultRMAT(9, 8, 1)),
		"hubspokes": gen.HubAndSpokes(16, 300, 4, 2),
		"k20":       gen.Complete(20),
	}
	for name, g := range graphs {
		want := baseline.BruteForce(g)
		fwd := InstrumentedForward(g, tinyMachine())
		if fwd.Triangles != want {
			t.Errorf("%s: instrumented forward = %d, want %d", name, fwd.Triangles, want)
		}
		lg := core.Preprocess(g, core.Options{HubCount: 16, Pool: pool})
		lot := InstrumentedLotus(lg, tinyMachine())
		if lot.Triangles != want {
			t.Errorf("%s: instrumented lotus = %d, want %d", name, lot.Triangles, want)
		}
	}
}

func TestEventsPopulated(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 3))
	fwd, lot := Compare(g, core.Options{HubCount: 32, Pool: pool}, tinyMachine())
	for _, e := range []Events{fwd, lot} {
		if e.MemAccesses == 0 || e.Instructions == 0 || e.Branches == 0 {
			t.Fatalf("%s: events not populated: %+v", e.Name, e)
		}
		if e.Instructions < e.MemAccesses {
			t.Fatalf("%s: instruction proxy below load count", e.Name)
		}
		if e.BranchMisses > e.Branches {
			t.Fatalf("%s: more misses than branches", e.Name)
		}
	}
}

func TestLotusImprovesLocalityOnSkewedGraph(t *testing.T) {
	// The paper's central claim (Fig 4): on a skewed graph, LOTUS's
	// counting kernel has fewer LLC and DTLB misses than Forward's.
	// Scale the model machine down with the graph so the CSX topology
	// (~1 MB here) exceeds the LLC, as the paper's graphs exceed real
	// L3s, while LOTUS's per-phase working sets largely fit.
	g := gen.RMAT(gen.DefaultRMAT(12, 16, 7))
	scaled := hwsim.MachineConfig{
		Name: "scaled", L1Bytes: 2 << 10, L2Bytes: 16 << 10, L3Bytes: 64 << 10,
		L1Ways: 4, L2Ways: 8, L3Ways: 8, TLBEntries: 16,
	}
	fwd, lot := Compare(g, core.Options{HubCount: 512, Pool: pool}, scaled)
	if fwd.Triangles != lot.Triangles {
		t.Fatalf("counts differ: %d vs %d", fwd.Triangles, lot.Triangles)
	}
	if lot.LLCMisses >= fwd.LLCMisses {
		t.Errorf("LLC misses: lotus %d >= forward %d", lot.LLCMisses, fwd.LLCMisses)
	}
	if lot.TLBMisses >= fwd.TLBMisses {
		t.Errorf("TLB misses: lotus %d >= forward %d", lot.TLBMisses, fwd.TLBMisses)
	}
	// Fig 5: fewer memory accesses and fewer mispredicted branches.
	if lot.MemAccesses >= fwd.MemAccesses {
		t.Errorf("mem accesses: lotus %d >= forward %d", lot.MemAccesses, fwd.MemAccesses)
	}
	if lot.BranchMisses >= fwd.BranchMisses {
		t.Errorf("branch misses: lotus %d >= forward %d", lot.BranchMisses, fwd.BranchMisses)
	}
	// And fewer estimated cycles — the modeled end-to-end standing.
	if lot.EstimatedCycles >= fwd.EstimatedCycles {
		t.Errorf("cycles: lotus %d >= forward %d", lot.EstimatedCycles, fwd.EstimatedCycles)
	}
}

func TestMRCCurves(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 12, 7))
	lg := core.Preprocess(g, core.Options{Pool: pool})
	caps := []int{1 << 4, 1 << 6, 1 << 8, 1 << 10, 1 << 14, 1 << 22}
	fwd := ForwardMRC(g, caps)
	lot := LotusMRC(lg, caps)
	// Curves must be monotone non-increasing.
	for i := 1; i < len(caps); i++ {
		if fwd[i] > fwd[i-1]+1e-12 || lot[i] > lot[i-1]+1e-12 {
			t.Fatalf("MRC not monotone: fwd %v lot %v", fwd, lot)
		}
	}
	// At huge capacity both converge to cold misses only (near 0).
	if fwd[len(fwd)-1] > 0.02 || lot[len(lot)-1] > 0.02 {
		t.Fatalf("residual misses at infinite cache: fwd %.3f lot %.3f",
			fwd[len(fwd)-1], lot[len(lot)-1])
	}
	// In the contended mid-range — capacities where the miss ratio is
	// still well above the cold floor — LOTUS's curve must sit below
	// Forward's on a skewed graph (the paper's locality claim in
	// machine-independent form). At the extremes the curves cross:
	// tiny caches see LOTUS's random H2H probes, huge caches see its
	// extra cold lines (second index array + H2H), which is exactly
	// the §5.2 Epyc observation.
	for _, i := range []int{1, 2} { // 64- and 256-line caches
		if lot[i] >= fwd[i] {
			t.Fatalf("lotus MRC not below forward at %d lines: fwd %v lot %v",
				caps[i], fwd, lot)
		}
	}
}

func TestH2HProfileCoversAllProbes(t *testing.T) {
	g := gen.HubAndSpokes(32, 500, 6, 4)
	lg := core.Preprocess(g, core.Options{HubCount: 32, Pool: pool})
	p := H2HProfile(lg)
	// Total touches = total pairs enumerated in phase 1 = HHH+HHN probes.
	res := lg.Count(pool)
	var wantProbes uint64
	for v := 0; v < lg.NumVertices(); v++ {
		d := uint64(lg.HE.Degree(uint32(v)))
		wantProbes += d * (d - 1) / 2
	}
	if p.Total() != wantProbes {
		t.Fatalf("profiled %d probes, want %d", p.Total(), wantProbes)
	}
	_ = res
	if p.NonZeroLines() == 0 {
		t.Fatal("no cachelines touched")
	}
	cdf := p.CDF([]int{p.Lines()})
	if cdf[0] < 0.999 {
		t.Fatalf("full CDF = %v, want 1", cdf[0])
	}
}

func TestH2HAccessesConcentrated(t *testing.T) {
	// §5.7: a small fraction of H2H cachelines satisfies most
	// accesses on skewed graphs. Check the top 25% of lines cover
	// >= 80% of probes on an RMAT graph.
	g := gen.RMAT(gen.DefaultRMAT(12, 16, 9))
	lg := core.Preprocess(g, core.Options{HubCount: 512, Pool: pool})
	p := H2HProfile(lg)
	if p.Total() == 0 {
		t.Skip("no hub pairs on this seed")
	}
	top := p.Lines() / 4
	cdf := p.CDF([]int{top})
	if cdf[0] < 0.8 {
		t.Fatalf("top 25%% of lines cover only %.2f of accesses", cdf[0])
	}
}

// TestInstrumentedWordKernel asserts the word-phase-1 replay counts
// the same triangles as the scalar one while removing the per-probe
// branch site from the stream.
func TestInstrumentedWordKernel(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":      gen.RMAT(gen.DefaultRMAT(9, 8, 1)),
		"hubspokes": gen.HubAndSpokes(16, 300, 4, 2),
		"k20":       gen.Complete(20),
	}
	for name, g := range graphs {
		lg := core.Preprocess(g, core.Options{HubCount: 16, Pool: pool})
		scalar := InstrumentedLotusKernel(lg, tinyMachine(), false)
		word := InstrumentedLotusKernel(lg, tinyMachine(), true)
		if word.Triangles != scalar.Triangles {
			t.Errorf("%s: word replay = %d triangles, scalar = %d", name, word.Triangles, scalar.Triangles)
		}
		if word.Branches >= scalar.Branches && scalar.Branches > 0 {
			t.Errorf("%s: word replay has %d branch events, scalar %d — probe branches should vanish",
				name, word.Branches, scalar.Branches)
		}
		if word.Name == scalar.Name {
			t.Errorf("%s: kernel variants share event name %q", name, word.Name)
		}
	}
}
