// Package obs is the observability layer: named atomic counters and
// phase timers collected during a run, a machine-readable run-report
// schema (report.go), and an optional debug HTTP server exposing
// net/http/pprof and expvar (debug.go).
//
// The design premise is that the paper's whole argument is
// quantitative (§3.4 hub coverage, Fig 6 phase breakdown), so every
// perf claim a future PR makes must be backed by counters that are
// trustworthy and cheap enough to leave compiled in:
//
//   - A nil *Metrics is valid and every method on it is a no-op, so
//     call sites need no branching and a disabled run pays only a
//     predictable nil check per bulk add.
//   - Kernels accumulate counts in worker-local variables and publish
//     them in bulk at region boundaries — never per-element atomics on
//     the hot path. The counters themselves are atomic so concurrent
//     regions (parallel phases, the debug server) read consistently.
//
// Metric names are flat dotted strings ("phase1.h2h_probes"); the
// canonical set recorded by the engine, scheduler, kernels and
// baselines is documented in DESIGN.md ("Observability").
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a set of named atomic counters. The zero value is NOT
// usable; construct with New. A nil *Metrics is valid and inert,
// which is how metrics collection is disabled.
type Metrics struct {
	mu   sync.RWMutex
	vals map[string]*atomic.Int64
}

// New returns an empty metrics set.
func New() *Metrics {
	return &Metrics{vals: map[string]*atomic.Int64{}}
}

// counter returns the counter for name, creating it on first use.
func (m *Metrics) counter(name string) *atomic.Int64 {
	m.mu.RLock()
	c := m.vals[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.vals[name]; c == nil {
		c = &atomic.Int64{}
		m.vals[name] = c
	}
	return c
}

// Add adds delta to the named counter. No-op on a nil receiver.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.counter(name).Add(delta)
}

// Set stores value in the named counter, replacing its current value.
// No-op on a nil receiver.
func (m *Metrics) Set(name string, value int64) {
	if m == nil {
		return
	}
	m.counter(name).Store(value)
}

// AddDuration adds d (in nanoseconds) to the named counter; the
// convention is that duration counters end in ".ns".
func (m *Metrics) AddDuration(name string, d time.Duration) {
	m.Add(name, d.Nanoseconds())
}

// Timer starts a phase timer; the returned stop function records the
// elapsed wall time under name (nanoseconds, additive, so repeated
// phases accumulate). Usable on a nil receiver: the stop function
// then does nothing.
func (m *Metrics) Timer(name string) (stop func()) {
	if m == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { m.AddDuration(name, time.Since(t0)) }
}

// Get returns the named counter's value, zero when absent or when the
// receiver is nil.
func (m *Metrics) Get(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.RLock()
	c := m.vals[name]
	m.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Names returns the registered counter names, sorted. Nil-safe.
func (m *Metrics) Names() []string {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	names := make([]string, 0, len(m.vals))
	for n := range m.vals {
		names = append(names, n)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot returns a point-in-time copy of every counter. It returns
// nil on a nil receiver, so an un-instrumented run serializes as an
// absent "metrics" field rather than an empty object.
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]int64, len(m.vals))
	for n, c := range m.vals {
		out[n] = c.Load()
	}
	return out
}
