package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// SchemaRun and SchemaBench version the JSON documents this package
// emits. Consumers (BENCH_*.json diffing, dashboards) must check the
// schema string; additive fields keep the version, incompatible
// changes bump it.
const (
	SchemaRun   = "lotustc/run-report/v1"
	SchemaBench = "lotustc/bench-report/v1"
)

// Env describes the process environment a report was produced in,
// enough to judge whether two BENCH_*.json files are comparable.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentEnv captures the running process's environment.
func CurrentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// GraphInfo identifies the input graph of a run.
type GraphInfo struct {
	// Source describes where the graph came from, e.g. "rmat-16",
	// "file:web.lotg", "edgelist:graph.txt".
	Source   string `json:"source,omitempty"`
	Vertices int64  `json:"vertices"`
	Edges    int64  `json:"edges"`
}

// PhaseNS is one timed stage of a run.
type PhaseNS struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
}

// Classes is the Fig 7 triangle-class breakdown.
type Classes struct {
	HHH uint64 `json:"hhh"`
	HHN uint64 `json:"hhn"`
	HNN uint64 `json:"hnn"`
	NNN uint64 `json:"nnn"`
}

// TuneDecision records one structural auto-tuner routing choice and
// every stat that fed it, so bench sweeps can validate the policy and
// mis-routing is diagnosable from the report alone. Stats keys are the
// probe field names ("degree_gini", "hub_edge_coverage_pct", ...);
// encoding/json sorts map keys, so the block is byte-stable.
type TuneDecision struct {
	// Algorithm is the registry kernel the tuner routed the run to.
	Algorithm string `json:"algorithm"`
	// Phase1Kernel / IntersectKernel are the kernel knobs the policy
	// selected for the chosen algorithm ("" = engine default).
	Phase1Kernel    string `json:"phase1_kernel,omitempty"`
	IntersectKernel string `json:"intersect_kernel,omitempty"`
	// Reason is the one-line policy explanation ("hub coverage 72.4%
	// >= 40: LOTUS hub structures capture the work").
	Reason string `json:"reason"`
	// Overridden marks decisions forced by an ablation override; the
	// Reason then names the override.
	Overridden bool `json:"overridden,omitempty"`
	// ProbeNS is the wall time of the structural probe.
	ProbeNS int64 `json:"probe_ns"`
	// Stats holds the probe values the scoring policy read.
	Stats map[string]float64 `json:"stats,omitempty"`
}

// RunReport is the machine-readable outcome of one counting (or
// replay) run; schema documented in DESIGN.md ("Observability").
type RunReport struct {
	Schema    string    `json:"schema"`
	Tool      string    `json:"tool"`
	Timestamp time.Time `json:"timestamp"`
	Env       Env       `json:"env"`
	Graph     GraphInfo `json:"graph"`
	Algorithm string    `json:"algorithm"`
	Workers   int       `json:"workers"`
	Triangles uint64    `json:"triangles"`
	ElapsedNS int64     `json:"elapsed_ns"`
	// Phases appear in execution order (preprocess, phase1, hnn, nnn
	// for the LOTUS kernels; baseline kernels report their own).
	Phases []PhaseNS `json:"phases,omitempty"`
	// Classes is present for kernels that report the class breakdown.
	Classes *Classes `json:"classes,omitempty"`
	// Metrics is the counter snapshot (names in DESIGN.md); absent
	// when the run was not instrumented.
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// Events carries modeled hardware events (lotus-perf): kernel
	// name -> event name -> count.
	Events map[string]map[string]uint64 `json:"events,omitempty"`
	// Decision is the structural auto-tuner's routing record, present
	// on "auto" runs only (additive; schema stays v1).
	Decision *TuneDecision `json:"decision,omitempty"`
	// Skipped explains a sweep row whose algorithm legitimately did
	// not run on this graph (e.g. a shard grid wider than |V|). Rows
	// with Skipped set carry no result fields and no Error: the skip
	// is expected, but must stay auditable in the artifact.
	Skipped string `json:"skipped,omitempty"`
	// Error is set when the run failed; the other result fields are
	// then unspecified.
	Error string `json:"error,omitempty"`
}

// NewRunReport returns a RunReport with the schema, tool, timestamp
// and environment fields filled in.
func NewRunReport(tool string) *RunReport {
	return &RunReport{
		Schema:    SchemaRun,
		Tool:      tool,
		Timestamp: time.Now().UTC(),
		Env:       CurrentEnv(),
	}
}

// BenchReport aggregates the runs of one benchmark sweep — the
// BENCH_*.json artifact future PRs diff for perf trajectories.
type BenchReport struct {
	Schema    string    `json:"schema"`
	Tool      string    `json:"tool"`
	Timestamp time.Time `json:"timestamp"`
	Env       Env       `json:"env"`
	// Suite describes the dataset sweep, e.g. "scale-13/ef-16".
	Suite string      `json:"suite"`
	Runs  []RunReport `json:"runs"`
}

// NewBenchReport returns a BenchReport with the envelope filled in.
func NewBenchReport(tool, suite string) *BenchReport {
	return &BenchReport{
		Schema:    SchemaBench,
		Tool:      tool,
		Timestamp: time.Now().UTC(),
		Env:       CurrentEnv(),
		Suite:     suite,
	}
}

// WriteJSON writes the report as indented JSON followed by a newline.
func (r *RunReport) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// WriteJSON writes the report as indented JSON followed by a newline.
func (b *BenchReport) WriteJSON(w io.Writer) error { return writeJSON(w, b) }

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
