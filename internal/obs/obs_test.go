package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestMetricsBasics(t *testing.T) {
	m := New()
	m.Add("a", 2)
	m.Add("a", 3)
	m.Set("b", 7)
	m.Set("b", 9)
	m.AddDuration("c.ns", 1500*time.Nanosecond)
	if got := m.Get("a"); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	if got := m.Get("b"); got != 9 {
		t.Fatalf("b = %d, want 9 (Set must replace)", got)
	}
	if got := m.Get("c.ns"); got != 1500 {
		t.Fatalf("c.ns = %d, want 1500", got)
	}
	if got := m.Get("absent"); got != 0 {
		t.Fatalf("absent = %d, want 0", got)
	}
	if names := m.Names(); !reflect.DeepEqual(names, []string{"a", "b", "c.ns"}) {
		t.Fatalf("Names() = %v", names)
	}
	want := map[string]int64{"a": 5, "b": 9, "c.ns": 1500}
	if snap := m.Snapshot(); !reflect.DeepEqual(snap, want) {
		t.Fatalf("Snapshot() = %v, want %v", snap, want)
	}
}

// TestMetricsNilReceiver: a nil *Metrics is the disabled state; every
// method must be a safe no-op so call sites carry no branches.
func TestMetricsNilReceiver(t *testing.T) {
	var m *Metrics
	m.Add("a", 1)
	m.Set("a", 1)
	m.AddDuration("a.ns", time.Second)
	m.Timer("t.ns")()
	if m.Get("a") != 0 {
		t.Fatal("nil Get != 0")
	}
	if m.Names() != nil {
		t.Fatal("nil Names != nil")
	}
	if m.Snapshot() != nil {
		t.Fatal("nil Snapshot != nil (must serialize as an absent field)")
	}
}

func TestTimerAccumulates(t *testing.T) {
	m := New()
	for i := 0; i < 2; i++ {
		stop := m.Timer("phase.ns")
		time.Sleep(time.Millisecond)
		stop()
	}
	if got := m.Get("phase.ns"); got < 2*int64(time.Millisecond) {
		t.Fatalf("timer recorded %dns, want >= 2ms", got)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := New()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Add("shared", 1)
				m.Add(fmt.Sprintf("own.%d", w), 1)
			}
		}(w)
	}
	wg.Wait()
	if got := m.Get("shared"); got != workers*each {
		t.Fatalf("shared = %d, want %d", got, workers*each)
	}
	for w := 0; w < workers; w++ {
		if got := m.Get(fmt.Sprintf("own.%d", w)); got != each {
			t.Fatalf("own.%d = %d, want %d", w, got, each)
		}
	}
}

func TestRunReportJSON(t *testing.T) {
	rr := NewRunReport("test-tool")
	if rr.Schema != SchemaRun || rr.Tool != "test-tool" || rr.Timestamp.IsZero() {
		t.Fatalf("envelope not filled: %+v", rr)
	}
	rr.Graph = GraphInfo{Source: "rmat-12", Vertices: 4096, Edges: 48512}
	rr.Algorithm = "lotus"
	rr.Triangles = 42
	rr.Phases = []PhaseNS{{Name: "phase1", NS: 100}}
	rr.Metrics = map[string]int64{"phase1.steals": 3}
	var buf bytes.Buffer
	if err := rr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaRun || back.Triangles != 42 || back.Metrics["phase1.steals"] != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// An un-instrumented run must serialize without the optional keys.
	bare := NewRunReport("t")
	buf.Reset()
	if err := bare.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"metrics", "classes", "events", "error", "phases"} {
		if bytes.Contains(buf.Bytes(), []byte(`"`+key+`"`)) {
			t.Fatalf("bare report contains optional key %q:\n%s", key, buf.String())
		}
	}
}

func TestBenchReportJSON(t *testing.T) {
	br := NewBenchReport("lotus-bench", "scale-13/ef-16")
	br.Runs = append(br.Runs, RunReport{Schema: SchemaRun, Algorithm: "lotus"})
	var buf bytes.Buffer
	if err := br.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaBench || back.Suite != "scale-13/ef-16" || len(back.Runs) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// TestDebugServer exercises the pprof/expvar endpoint end-to-end:
// bind :0, publish a metrics set, re-publish a replacement (raw
// expvar.Publish would panic), and read both pages over HTTP.
func TestDebugServer(t *testing.T) {
	m := New()
	m.Add("phase1.tiles", 11)
	Publish("lotus_metrics_test", m)
	m2 := New()
	m2.Add("phase1.tiles", 22)
	Publish("lotus_metrics_test", m2) // replace, must not panic

	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return buf.String()
	}
	vars := get("/debug/vars")
	if !bytes.Contains([]byte(vars), []byte(`"phase1.tiles":22`)) {
		t.Fatalf("/debug/vars missing replaced metrics: %s", vars)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
