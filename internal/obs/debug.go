package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"sync"

	// Blank imports register the profiling and variable handlers on
	// http.DefaultServeMux: /debug/pprof/* and /debug/vars.
	_ "net/http/pprof"
)

var publishMu sync.Mutex

// Publish exposes m's live counters through expvar under name
// (visible at /debug/vars once the debug server runs). Re-publishing
// a name replaces the previous metrics set instead of panicking the
// way raw expvar.Publish does, so per-run metrics can be rotated.
func Publish(name string, m *Metrics) {
	publishMu.Lock()
	defer publishMu.Unlock()
	// expvar has no unpublish: keep one indirection cell per name.
	cell, ok := published[name]
	if !ok {
		cell = &metricsCell{}
		published[name] = cell
		expvar.Publish(name, cell)
	}
	cell.mu.Lock()
	cell.m = m
	cell.mu.Unlock()
}

var published = map[string]*metricsCell{}

// metricsCell adapts a swappable *Metrics to expvar.Var.
type metricsCell struct {
	mu sync.RWMutex
	m  *Metrics
}

func (c *metricsCell) String() string {
	c.mu.RLock()
	m := c.m
	c.mu.RUnlock()
	snap := m.Snapshot()
	if snap == nil {
		return "{}"
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// StartDebugServer binds addr (e.g. "localhost:6060" or ":0") and
// serves http.DefaultServeMux — net/http/pprof handlers plus expvar —
// in a background goroutine. It returns the bound address so callers
// can print it (":0" picks a free port). Binding errors are returned
// synchronously; the server then runs for the life of the process,
// the usual arrangement for debug endpoints.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		// Serve exits only if the listener dies; debug servers have no
		// graceful-shutdown story by design.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
