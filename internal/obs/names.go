package obs

// Counter names introduced by the kernel-selection work (PR 5). The
// older per-phase names ("phase1.ns", "hnn.he_intersections", ...)
// predate this file and are still passed as literals at their call
// sites; new kernel-level counters get constants so the core loops,
// the harness assertions and the DESIGN.md table cannot drift apart.
const (
	// Phase1WordOps counts 64-bit AND+popcount operations executed by
	// the word-parallel phase-1 kernel (each covers up to 64 pair
	// probes of the scalar kernel).
	Phase1WordOps = "phase1.word_ops"
	// Phase1RowsWord / Phase1RowsScalar count h1 rows routed to each
	// phase-1 kernel; under Phase1Auto their ratio shows what the
	// per-row heuristic actually chose.
	Phase1RowsWord   = "phase1.rows.word"
	Phase1RowsScalar = "phase1.rows.scalar"
	// HNNDispatchMerge / HNNDispatchGallop count HE-row intersections
	// routed to merge join vs galloping search by the adaptive
	// dispatcher in the HNN phase (blocked and fused variants
	// included).
	HNNDispatchMerge  = "hnn.dispatch.merge"
	HNNDispatchGallop = "hnn.dispatch.gallop"
	// NNNDispatchMerge / NNNDispatchGallop are the same split for the
	// NHE-row intersections of the NNN phase.
	NNNDispatchMerge  = "nnn.dispatch.merge"
	NNNDispatchGallop = "nnn.dispatch.gallop"
)
