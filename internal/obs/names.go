package obs

// Counter names introduced by the kernel-selection work (PR 5). The
// older per-phase names ("phase1.ns", "hnn.he_intersections", ...)
// predate this file and are still passed as literals at their call
// sites; new kernel-level counters get constants so the core loops,
// the harness assertions and the DESIGN.md table cannot drift apart.
const (
	// Phase1WordOps counts 64-bit AND+popcount operations executed by
	// the word-parallel phase-1 kernel (each covers up to 64 pair
	// probes of the scalar kernel).
	Phase1WordOps = "phase1.word_ops"
	// Phase1RowsWord / Phase1RowsScalar count h1 rows routed to each
	// phase-1 kernel; under Phase1Auto their ratio shows what the
	// per-row heuristic actually chose.
	Phase1RowsWord   = "phase1.rows.word"
	Phase1RowsScalar = "phase1.rows.scalar"
	// HNNDispatchMerge / HNNDispatchGallop count HE-row intersections
	// routed to merge join vs galloping search by the adaptive
	// dispatcher in the HNN phase (blocked and fused variants
	// included).
	HNNDispatchMerge  = "hnn.dispatch.merge"
	HNNDispatchGallop = "hnn.dispatch.gallop"
	// NNNDispatchMerge / NNNDispatchGallop are the same split for the
	// NHE-row intersections of the NNN phase.
	NNNDispatchMerge  = "nnn.dispatch.merge"
	NNNDispatchGallop = "nnn.dispatch.gallop"
)

// Counter names of the session-durability and fault-injection work
// (PR 8). Defined here so the WAL/recovery code, the chaos tests and
// the DESIGN.md catalog cannot drift apart.
const (
	// StreamWALRecovered counts sessions restored from disk at startup.
	StreamWALRecovered = "stream.wal_recovered"
	// StreamWALTruncated counts recoveries that found a torn or corrupt
	// WAL tail and clipped it at the last valid frame.
	StreamWALTruncated = "stream.wal_truncated"
	// StreamWALFrames counts WAL frames replayed during recovery.
	StreamWALFrames = "stream.wal_frames"
	// StreamWALDegraded counts sessions whose durability was switched
	// off after repeated WAL failures (the session keeps serving from
	// memory instead of failing ingest).
	StreamWALDegraded = "stream.wal_degraded"
	// StreamSnapshots counts session snapshots written (periodic and
	// shutdown-flush).
	StreamSnapshots = "stream.snapshots"
	// StreamRecoverSkipped counts session directories that could not be
	// recovered at all (unreadable or corrupt snapshot) and were left
	// on disk for inspection.
	StreamRecoverSkipped = "stream.recover_skipped"
)

// Counter names of the kernel-family expansion and the structural
// auto-tuner (PR 10). The tune.* gauges mirror the Decision block of
// the run report so /metrics shows the last routing decision's inputs
// without parsing a report.
const (
	// TuneProbes counts auto-tuned runs (one structural probe each).
	TuneProbes = "tune.probes"
	// TuneProbeNS is the accumulated wall time of structural probes.
	TuneProbeNS = "tune.probe.ns"
	// TuneOverridden counts auto runs whose algorithm choice was forced
	// by an ablation override rather than the scoring policy.
	TuneOverridden = "tune.overridden"
	// TuneDecisionPrefix prefixes the per-algorithm decision counters:
	// "tune.decision.lotus" counts probes routed to the lotus kernel.
	TuneDecisionPrefix = "tune.decision."
	// TuneCacheHits counts serving-layer decisions answered from the
	// memoized "tune:" cache entry instead of a fresh probe.
	TuneCacheHits = "tune.cache_hits"
	// TuneStat* are gauges holding the last probe's policy inputs,
	// scaled to permille so the integer registry can carry them
	// (gini 0.42 -> 420; percentages are also x10).
	TuneStatGiniPermille        = "tune.stat.gini_permille"
	TuneStatHubCoveragePermille = "tune.stat.hub_coverage_permille"
	TuneStatH2HDensityPermille  = "tune.stat.h2h_density_permille"
	TuneStatAssortPermille      = "tune.stat.assortativity_permille"
)

// Counter names of the cover-edge kernel (PR 10).
const (
	// CoverBFSNS is the wall time of the BFS level assignment.
	CoverBFSNS = "coveredge.bfs.ns"
	// CoverLevels is the number of BFS levels (max over components).
	CoverLevels = "coveredge.levels"
	// CoverEdges counts horizontal (cover) edges: the only edges whose
	// neighbour lists the counting sweep intersects.
	CoverEdges = "coveredge.cover_edges"
	// CoverCountNS is the wall time of the weighted counting sweep.
	CoverCountNS = "coveredge.count.ns"
)

// Counter names of the sharded execution path (PR 6).
const (
	// ShardBlocks is the grid dimension p of a sharded build.
	ShardBlocks = "shard.blocks"
	// ShardPreprocessNS is the wall time of the grid build (plan +
	// every per-block structure).
	ShardPreprocessNS = "shard.preprocess.ns"
	// ShardTriples / ShardTiles count the live block triples and the
	// scheduled apex sub-range tasks of one sharded count.
	ShardTriples = "shard.triples"
	ShardTiles   = "shard.tiles"
	// ShardPolls counts cancellation polls in the sharded sweep.
	ShardPolls = "shard.polls"
	// ShardCountNS is the wall time of the sharded counting sweep.
	ShardCountNS = "shard.count.ns"
)
