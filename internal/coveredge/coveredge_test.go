package coveredge

import (
	"context"
	"testing"

	"lotustc/internal/baseline"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
	"lotustc/internal/sched"
)

// corpus mirrors the shard equivalence corpus plus the shapes that
// stress this kernel specifically: triangulated grids (its target
// regime), plain grids and bipartite graphs (cover edges exist or
// not, zero triangles either way), and disconnected graphs (one BFS
// tree per component).
func corpus() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat-9":      gen.RMAT(gen.DefaultRMAT(9, 8, 42)),
		"rmat-10":     gen.RMAT(gen.DefaultRMAT(10, 16, 7)),
		"chunglu":     gen.ChungLu(gen.ChungLuParams{N: 600, M: 3000, Gamma: 2.1, Seed: 3}),
		"complete-50": gen.Complete(50),
		"hub-spokes":  gen.HubAndSpokes(16, 500, 3, 5),
		"planted":     gen.PlantedTriangles(40, 100),
		"star":        gen.Star(100),
		"path":        gen.Path(64),
		"triangle":    gen.Complete(3),
		"single-edge": graph.FromEdges([]graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{}),
		"ring-5":      gen.Ring(5),
		"bipartite":   gen.CompleteBipartite(10, 12),
		"trigrid":     gen.TriGrid(20, 30),
		"grid":        gen.Grid(15, 15),
		"ba":          gen.BarabasiAlbert(400, 4, 9),
		"er":          gen.ErdosRenyi(300, 1200, 11),
	}
}

func TestCountMatchesBruteForce(t *testing.T) {
	pool := sched.NewPool(0)
	for name, g := range corpus() {
		want := baseline.BruteForce(g)
		res := Count(g, pool, nil)
		if res.Total != want {
			t.Errorf("%s: cover-edge counted %d, brute force %d", name, res.Total, want)
		}
	}
}

// TestTriGridExactCount pins the generator's closed form: two
// triangles per unit square, and the kernel's cover-set stats must be
// internally consistent (levels within [1, |V|], cover edges <= |E|).
func TestTriGridExactCount(t *testing.T) {
	g := gen.TriGrid(12, 17)
	res := Count(g, sched.NewPool(0), nil)
	if want := uint64(11 * 16 * 2); res.Total != want {
		t.Fatalf("TriGrid(12,17) = %d triangles, want %d", res.Total, want)
	}
	if res.Levels < 1 || res.Levels > g.NumVertices() {
		t.Fatalf("levels = %d out of range", res.Levels)
	}
	if res.CoverEdges == 0 || int64(res.CoverEdges) > g.NumEdges() {
		t.Fatalf("cover edges = %d out of range (m = %d)", res.CoverEdges, g.NumEdges())
	}
}

// TestDisconnectedComponents: per-component BFS roots must cover the
// whole graph; two planted cliques plus isolated vertices exercise it.
func TestDisconnectedComponents(t *testing.T) {
	var edges []graph.Edge
	// Two K5s (10 triangles each) far apart in the ID space, padding
	// isolated vertices between and after.
	for _, base := range []uint32{0, 40} {
		for u := uint32(0); u < 5; u++ {
			for v := u + 1; v < 5; v++ {
				edges = append(edges, graph.Edge{U: base + u, V: base + v})
			}
		}
	}
	g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: 60})
	res := Count(g, sched.NewPool(0), nil)
	if res.Total != 20 {
		t.Fatalf("two K5 components = %d triangles, want 20", res.Total)
	}
}

// TestEmptyGraph: zero vertices and zero edges must not panic.
func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(nil, graph.BuildOptions{})
	if res := Count(g, sched.NewPool(0), nil); res.Total != 0 {
		t.Fatalf("empty graph counted %d", res.Total)
	}
}

// TestMetricsPublished: the cover-edge counters must land in the
// registry under their obs names.
func TestMetricsPublished(t *testing.T) {
	m := obs.New()
	g := gen.TriGrid(10, 10)
	res := Count(g, sched.NewPool(0), m)
	snap := m.Snapshot()
	if snap[obs.CoverLevels] != int64(res.Levels) {
		t.Errorf("%s = %d, want %d", obs.CoverLevels, snap[obs.CoverLevels], res.Levels)
	}
	if snap[obs.CoverEdges] != int64(res.CoverEdges) {
		t.Errorf("%s = %d, want %d", obs.CoverEdges, snap[obs.CoverEdges], res.CoverEdges)
	}
	if snap[obs.CoverBFSNS] < 0 || snap[obs.CoverCountNS] < 0 {
		t.Errorf("negative stage timers: bfs=%d count=%d", snap[obs.CoverBFSNS], snap[obs.CoverCountNS])
	}
}

// TestCancellation: a pre-cancelled pool must return quickly without
// touching most of the graph (the caller's context check governs the
// result, which is unspecified — only termination is asserted here).
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool := sched.NewPool(2).Bind(ctx)
	defer pool.Release()
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	_ = Count(g, pool, nil)
}
