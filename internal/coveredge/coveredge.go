// Package coveredge implements cover-edge-based triangle counting
// (Bader et al., "Fast Triangle Counting", arXiv:2403.02997). A BFS
// from each component root assigns every vertex a level; a triangle's
// corners span at most two adjacent levels, so every triangle has at
// least one horizontal edge (both endpoints on the same level). The
// horizontal edges form a cover set: intersecting only their
// endpoints' neighbour lists finds every triangle, and weighting each
// find by the triangle's horizontal-edge count k (1 or 3 — two is
// impossible) makes the total exact.
//
// The kernel shines where LOTUS's hub machinery does not: flat,
// high-diameter graphs (meshes, road networks) have many BFS levels
// and few horizontal edges, so most of the graph is never intersected
// at all, and no hub structures are built.
package coveredge

import (
	"time"

	"lotustc/internal/graph"
	"lotustc/internal/intersect"
	"lotustc/internal/obs"
	"lotustc/internal/sched"
)

// Result carries the count and the cover-set characteristics.
type Result struct {
	Total uint64
	// Levels is the number of BFS levels (the eccentricity bound of
	// the deepest component, plus one).
	Levels int
	// CoverEdges is the number of horizontal edges — the only edges
	// whose neighbour lists the counting sweep intersects.
	CoverEdges uint64
	// BFSTime / CountTime split the wall time into the level
	// assignment and the weighted counting sweep.
	BFSTime, CountTime time.Duration
}

// Count counts g's triangles by the cover-edge method. The graph must
// be symmetric. The BFS is sequential (O(|V| + |E|), it is never the
// bottleneck); the weighted sweep is parallel over vertices on pool.
// Cancellation is polled in both stages; on a cancelled pool the
// return value is unspecified and the caller's context check governs.
func Count(g *graph.Graph, pool *sched.Pool, m *obs.Metrics) *Result {
	if pool == nil {
		pool = sched.NewPool(0)
	}
	n := g.NumVertices()
	res := &Result{}
	if n == 0 {
		return res
	}

	// Stage 1: BFS levels, one rooted walk per component.
	t0 := time.Now()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	queue := make([]uint32, 0, 1024)
	maxLevel := int32(0)
	for r := 0; r < n; r++ {
		if levels[r] >= 0 {
			continue
		}
		if pool.Cancelled() {
			return res
		}
		levels[r] = 0
		queue = append(queue[:0], uint32(r))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			lv := levels[v]
			if lv > maxLevel {
				maxLevel = lv
			}
			if head&1023 == 0 && pool.Cancelled() {
				return res
			}
			for _, u := range g.Neighbors(v) {
				if levels[u] < 0 {
					levels[u] = lv + 1
					queue = append(queue, u)
				}
			}
		}
	}
	res.Levels = int(maxLevel) + 1
	res.BFSTime = time.Since(t0)

	// Stage 2: enumerate each horizontal edge (u, v), u < v, once, and
	// intersect the full neighbour lists. A common neighbour w on the
	// same level closes an all-horizontal triangle (k = 3, found at
	// each of its three edges: weight 1); any other level means this
	// is the triangle's only horizontal edge (k = 1, found once:
	// weight 3). The accumulated sum is 3x the triangle count.
	t1 := time.Now()
	workers := pool.Workers()
	triAcc := sched.NewAccumulator(workers)
	coverAcc := sched.NewAccumulator(workers)
	pool.For(n, 0, func(w, start, end int) {
		var weighted, cover uint64
		for v := start; v < end; v++ {
			if pool.Cancelled() {
				return
			}
			nv := g.Neighbors(uint32(v))
			lv := levels[v]
			for _, u := range nv {
				if u >= uint32(v) {
					break // lists are ascending: each edge once
				}
				if levels[u] != lv {
					continue
				}
				cover++
				weighted += weightedIntersect(nv, g.Neighbors(u), levels, lv)
			}
		}
		triAcc.Add(w, weighted)
		coverAcc.Add(w, cover)
	})
	res.Total = triAcc.Sum() / 3
	res.CoverEdges = coverAcc.Sum()
	res.CountTime = time.Since(t1)

	m.AddDuration(obs.CoverBFSNS, res.BFSTime)
	m.AddDuration(obs.CoverCountNS, res.CountTime)
	m.Set(obs.CoverLevels, int64(res.Levels))
	m.Set(obs.CoverEdges, int64(res.CoverEdges))
	return res
}

// weightedIntersect sums the weights of the triangles closed over one
// horizontal edge: 1 for a common neighbour on the same level (all
// three edges horizontal), 3 otherwise. Dispatch mirrors the engine's
// adaptive intersection policy: merge join for comparable lists,
// galloping when one list dwarfs the other.
func weightedIntersect(a, b []uint32, levels []int32, lv int32) uint64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if intersect.UseGalloping(len(a), len(b)) {
		var s uint64
		for _, x := range a {
			i := intersect.LowerBound(b, x)
			if i < len(b) && b[i] == x {
				if levels[x] == lv {
					s++
				} else {
					s += 3
				}
			}
			b = b[i:]
			if len(b) == 0 {
				break
			}
		}
		return s
	}
	var s uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if levels[a[i]] == lv {
				s++
			} else {
				s += 3
			}
			i++
			j++
		}
	}
	return s
}
