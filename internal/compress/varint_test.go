package compress

import (
	"math/rand"
	"testing"
)

func TestZigzagRoundTrip(t *testing.T) {
	for _, x := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<62 - 1, -(1 << 62)} {
		buf := AppendZigzag(nil, x)
		got, n := ReadZigzag(buf)
		if got != x || n != len(buf) {
			t.Fatalf("zigzag %d -> %d (n=%d, len=%d)", x, got, n, len(buf))
		}
	}
}

func TestEdgeStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		edges := make([][2]uint32, n)
		for i := range edges {
			// Mix of local deltas and wild jumps, both orientations.
			if rng.Intn(2) == 0 {
				edges[i] = [2]uint32{rng.Uint32() % 1000, rng.Uint32() % 1000}
			} else {
				edges[i] = [2]uint32{rng.Uint32(), rng.Uint32()}
			}
		}
		buf := AppendEdgeStream(nil, edges)
		got, consumed, err := ReadEdgeStream(buf, n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if consumed != len(buf) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, consumed, len(buf))
		}
		if len(got) != n {
			t.Fatalf("trial %d: %d edges back, want %d", trial, len(got), n)
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Fatalf("trial %d: edge %d: %v != %v", trial, i, got[i], edges[i])
			}
		}
	}
}

func TestEdgeStreamTruncationIsError(t *testing.T) {
	edges := [][2]uint32{{1, 2}, {100000, 3}, {7, 4000000000}}
	buf := AppendEdgeStream(nil, edges)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ReadEdgeStream(buf[:cut], len(edges)); err == nil {
			// A prefix may decode a smaller edge count cleanly; asking
			// for all three from a cut buffer must fail.
			t.Fatalf("cut at %d decoded cleanly", cut)
		}
	}
	// Deltas that escape uint32 range are rejected.
	bad := AppendZigzag(AppendZigzag(nil, 1<<40), 0)
	if _, _, err := ReadEdgeStream(bad, 1); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}
