// Package compress implements gap-compressed adjacency lists in the
// spirit of the WebGraph framework [18] that the paper's LWA datasets
// ship in, and quantifies the §3.2 observation that drives LOTUS's
// 16-bit HE encoding: neighbour IDs are dominated by a small hub set,
// so fixed 32-bit IDs waste cache capacity.
//
// The format stores each sorted neighbour list as a varint first-ID
// followed by varint gaps. Because LOTUS relabeling concentrates hubs
// at small IDs and preserves the original ordering elsewhere, gaps
// stay small and the encoding is tight. The package provides:
//
//   - Encode/Decode of whole graphs (CompressedGraph),
//   - allocation-free iteration (Iter) so algorithms can run directly
//     on compressed topology, and
//   - a triangle counter over compressed lists, demonstrating the
//     decode-on-the-fly trade-off the paper alludes to ("techniques
//     that do not incur runtime overhead to read graph topology").
package compress

import (
	"encoding/binary"
	"fmt"

	"lotustc/internal/graph"
)

// CompressedGraph is a CSX graph whose neighbour lists are varint
// gap-encoded.
type CompressedGraph struct {
	offsets []int64 // byte offsets into data, len |V|+1
	data    []byte
	n       int
	m       int64 // total neighbour entries across all lists
	// Oriented mirrors graph.Graph.Oriented.
	Oriented bool
}

// Encode compresses g. Lists must be sorted ascending (guaranteed by
// the graph builders).
func Encode(g *graph.Graph) *CompressedGraph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	// First pass: sizes.
	var total int64
	var scratch [binary.MaxVarintLen64]byte
	for v := 0; v < n; v++ {
		offsets[v] = total
		prev := int64(-1)
		for _, u := range g.Neighbors(uint32(v)) {
			var gap uint64
			if prev < 0 {
				gap = uint64(u)
			} else {
				gap = uint64(int64(u) - prev - 1)
			}
			total += int64(binary.PutUvarint(scratch[:], gap))
			prev = int64(u)
		}
	}
	offsets[n] = total
	data := make([]byte, total)
	for v := 0; v < n; v++ {
		w := offsets[v]
		prev := int64(-1)
		for _, u := range g.Neighbors(uint32(v)) {
			var gap uint64
			if prev < 0 {
				gap = uint64(u)
			} else {
				gap = uint64(int64(u) - prev - 1)
			}
			w += int64(binary.PutUvarint(data[w:], gap))
			prev = int64(u)
		}
	}
	return &CompressedGraph{offsets: offsets, data: data, n: n, m: g.NumDirectedEdges(), Oriented: g.Oriented}
}

// NumVertices returns |V|.
func (c *CompressedGraph) NumVertices() int { return c.n }

// NumNeighborEntries returns the total neighbour-ID count across all
// lists — the exact decoded slab size, so arena-aware decoding sizes
// its allocation without a first decode pass.
func (c *CompressedGraph) NumNeighborEntries() int64 { return c.m }

// SizeBytes returns the compressed topology footprint: the byte
// stream plus the 8-byte offset array.
func (c *CompressedGraph) SizeBytes() int64 {
	return int64(len(c.data)) + 8*int64(len(c.offsets))
}

// EdgeBytes returns just the encoded neighbour stream size.
func (c *CompressedGraph) EdgeBytes() int64 { return int64(len(c.data)) }

// Degree decodes nothing: it is not stored, so Degree walks the list.
// Prefer Iter when the IDs are needed anyway.
func (c *CompressedGraph) Degree(v uint32) int {
	it := c.Iter(v)
	d := 0
	for _, ok := it.Next(); ok; _, ok = it.Next() {
		d++
	}
	return d
}

// Iter returns an iterator over v's neighbour list.
func (c *CompressedGraph) Iter(v uint32) Iter {
	return Iter{data: c.data[c.offsets[v]:c.offsets[v+1]], prev: -1}
}

// Iter decodes one gap-encoded neighbour list.
type Iter struct {
	data []byte
	pos  int
	prev int64
}

// Next returns the next neighbour ID; ok is false at the end.
func (it *Iter) Next() (uint32, bool) {
	if it.pos >= len(it.data) {
		return 0, false
	}
	gap, k := binary.Uvarint(it.data[it.pos:])
	if k <= 0 {
		// Corrupt stream; surface as exhausted rather than panic —
		// Decode validates integrity for untrusted inputs.
		it.pos = len(it.data)
		return 0, false
	}
	it.pos += k
	if it.prev < 0 {
		it.prev = int64(gap)
	} else {
		it.prev += int64(gap) + 1
	}
	return uint32(it.prev), true
}

// Decode reconstructs the plain CSX graph and validates the stream.
func (c *CompressedGraph) Decode() (*graph.Graph, error) {
	return c.DecodeInto(new(Arena))
}

// Arena holds the reusable decode slabs DecodeInto fills: the CSX
// offset and neighbour arrays. A resident cache recycles arenas
// through a capped sync.Pool so decompress-on-demand reuses slabs
// instead of allocating fresh ones per rehydration. The decoded
// graph aliases the arena, so an arena must only be recycled once no
// live graph references it.
type Arena struct {
	Offsets []int64
	Nbrs    []uint32
}

// SizeBytes returns the slab capacity footprint of the arena.
func (a *Arena) SizeBytes() int64 {
	return 8*int64(cap(a.Offsets)) + 4*int64(cap(a.Nbrs))
}

// DecodeInto reconstructs the plain CSX graph into a's slabs, growing
// them only when capacity falls short, and validates the stream. The
// returned graph aliases the arena's storage: the caller owns the
// lifetime coupling between the two.
func (c *CompressedGraph) DecodeInto(a *Arena) (*graph.Graph, error) {
	if cap(a.Offsets) < c.n+1 {
		a.Offsets = make([]int64, c.n+1)
	}
	// a.Nbrs must come out non-nil even for an edgeless graph so a
	// decoded graph is indistinguishable from the built original.
	if a.Nbrs == nil || int64(cap(a.Nbrs)) < c.m {
		a.Nbrs = make([]uint32, 0, c.m)
	}
	offsets := a.Offsets[:c.n+1]
	nbrs := a.Nbrs[:0]
	for v := 0; v < c.n; v++ {
		offsets[v] = int64(len(nbrs))
		it := c.Iter(uint32(v))
		prev := int64(-1)
		for {
			u, ok := it.Next()
			if !ok {
				break
			}
			if int64(u) <= prev {
				return nil, fmt.Errorf("compress: vertex %d: non-increasing ID %d", v, u)
			}
			if int(u) >= c.n {
				return nil, fmt.Errorf("compress: vertex %d: ID %d out of range", v, u)
			}
			prev = int64(u)
			nbrs = append(nbrs, u)
		}
		if it.pos != len(it.data) {
			return nil, fmt.Errorf("compress: vertex %d: trailing bytes", v)
		}
	}
	offsets[c.n] = int64(len(nbrs))
	a.Offsets, a.Nbrs = offsets, nbrs
	return graph.New(offsets, nbrs, c.Oriented), nil
}

// CountTriangles runs the Forward intersection directly over the
// compressed lists of an oriented graph, decoding on the fly — no
// materialized 32-bit arrays. This is the trade-off §3.2 warns about:
// compactness bought with per-edge decode work.
func (c *CompressedGraph) CountTriangles() uint64 {
	if !c.Oriented {
		panic("compress: CountTriangles requires an oriented graph")
	}
	var total uint64
	for v := 0; v < c.n; v++ {
		outer := c.Iter(uint32(v))
		for {
			u, ok := outer.Next()
			if !ok {
				break
			}
			total += c.intersect(uint32(v), u)
		}
	}
	return total
}

// intersect merges the compressed lists of v and u.
func (c *CompressedGraph) intersect(v, u uint32) uint64 {
	a := c.Iter(v)
	b := c.Iter(u)
	av, aok := a.Next()
	bv, bok := b.Next()
	var n uint64
	for aok && bok {
		switch {
		case av < bv:
			av, aok = a.Next()
		case av > bv:
			bv, bok = b.Next()
		default:
			n++
			av, aok = a.Next()
			bv, bok = b.Next()
		}
	}
	return n
}

// Sizes reports the fixed-width CSX footprint next to the compressed
// one for a graph, the §3.2 compactness comparison.
type Sizes struct {
	CSXBytes        int64
	CompressedBytes int64
	// Ratio is compressed/CSX.
	Ratio float64
}

// CompareSizes encodes g and reports both footprints.
func CompareSizes(g *graph.Graph) Sizes {
	c := Encode(g)
	s := Sizes{CSXBytes: g.TopologyBytes(), CompressedBytes: c.SizeBytes()}
	if s.CSXBytes > 0 {
		s.Ratio = float64(s.CompressedBytes) / float64(s.CSXBytes)
	}
	return s
}
