package compress

import (
	"reflect"
	"testing"

	"lotustc/internal/gen"
)

// TestDecodeIntoReusesArena: a warmed arena must be reused across
// decodes — same slabs, no regrowth — and the decoded graph must
// match a fresh Decode exactly.
func TestDecodeIntoReusesArena(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 42))
	c := Encode(g)
	a := new(Arena)
	first, err := c.DecodeInto(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Offsets(), g.Offsets()) || !reflect.DeepEqual(first.RawNeighbors(), g.RawNeighbors()) {
		t.Fatal("decoded graph differs from original")
	}
	off, nbr := &a.Offsets[0], &a.Nbrs[0]
	second, err := c.DecodeInto(a)
	if err != nil {
		t.Fatal(err)
	}
	if &a.Offsets[0] != off || &a.Nbrs[0] != nbr {
		t.Fatal("warmed arena reallocated its slabs on re-decode")
	}
	if !reflect.DeepEqual(second.Offsets(), g.Offsets()) || !reflect.DeepEqual(second.RawNeighbors(), g.RawNeighbors()) {
		t.Fatal("re-decoded graph differs from original")
	}
	// Steady state: the only allocation a warmed decode makes is the
	// *Graph header itself.
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.DecodeInto(a); err != nil {
			panic(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("warmed DecodeInto allocates %v/op, want ≤ 1 (the graph header)", allocs)
	}
}

// TestArenaSizeBytes pins the footprint accounting the cache's pool
// cap relies on.
func TestArenaSizeBytes(t *testing.T) {
	a := &Arena{Offsets: make([]int64, 0, 10), Nbrs: make([]uint32, 0, 20)}
	if got := a.SizeBytes(); got != 8*10+4*20 {
		t.Fatalf("SizeBytes = %d, want %d", got, 8*10+4*20)
	}
}
