package compress

import (
	"testing"

	"lotustc/internal/graph"
)

// FuzzDecode feeds arbitrary byte streams through the compressed
// iterator and decoder: neither may panic, and accepted streams must
// decode into valid graphs.
func FuzzDecode(f *testing.F) {
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.BuildOptions{})
	c := Encode(g)
	f.Add(c.data, 3)
	f.Add([]byte{0xFF, 0xFF, 0xFF}, 2)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<10 {
			return
		}
		// Build a single-list compressed graph from the raw bytes.
		cg := &CompressedGraph{
			offsets: []int64{0, int64(len(data))},
			data:    data,
			n:       1,
		}
		_ = cg
		if n >= 1 {
			cg.n = n
			offsets := make([]int64, n+1)
			for i := 1; i <= n; i++ {
				offsets[i] = int64(len(data))
			}
			cg.offsets = offsets
		}
		dec, err := cg.Decode()
		if err != nil {
			return
		}
		if err := dec.Validate(); err != nil {
			// Oriented/symmetric invariants may legitimately differ;
			// only structural ordering matters for the decoder.
			_ = err
		}
		if dec.NumVertices() != cg.n {
			t.Fatal("vertex count changed")
		}
	})
}
