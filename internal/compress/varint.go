package compress

// Exported varint primitives for other packages that persist
// graph-shaped data — the serving layer's session WAL and snapshots
// encode edge batches through these, so the wire format shares one
// implementation (and one fuzz surface) with the in-memory compressed
// graphs.

import (
	"encoding/binary"
	"fmt"
)

// AppendUvarint appends x to dst in LEB128 form.
func AppendUvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// ReadUvarint decodes a uvarint from src, returning the value and the
// bytes consumed. n <= 0 reports a truncated or overlong encoding
// (binary.Uvarint semantics).
func ReadUvarint(src []byte) (x uint64, n int) {
	return binary.Uvarint(src)
}

// AppendZigzag appends x in zigzag-uvarint form: small magnitudes of
// either sign stay short, which is what per-endpoint edge deltas
// need (streams are not sorted, so deltas go both ways).
func AppendZigzag(dst []byte, x int64) []byte {
	return binary.AppendUvarint(dst, uint64(x)<<1^uint64(x>>63))
}

// ReadZigzag decodes a zigzag-uvarint; n <= 0 reports truncation.
func ReadZigzag(src []byte) (x int64, n int) {
	u, n := binary.Uvarint(src)
	return int64(u>>1) ^ -int64(u&1), n
}

// AppendEdgeStream appends edges as zigzag per-endpoint deltas from
// the previous edge: arbitrary-order streams (a WAL preserves apply
// order, which replay determinism depends on) still compress well
// because consecutive edges in real batches are correlated.
func AppendEdgeStream(dst []byte, edges [][2]uint32) []byte {
	var pu, pv int64
	for _, e := range edges {
		u, v := int64(e[0]), int64(e[1])
		dst = AppendZigzag(dst, u-pu)
		dst = AppendZigzag(dst, v-pv)
		pu, pv = u, v
	}
	return dst
}

// ReadEdgeStream decodes n edges appended by AppendEdgeStream,
// returning the edges and the bytes consumed. Truncated input or
// deltas that walk outside uint32 range are errors, never panics —
// the decoder's inputs come from disk and cannot be trusted.
func ReadEdgeStream(src []byte, n int) ([][2]uint32, int, error) {
	edges := make([][2]uint32, 0, n)
	var pu, pv int64
	pos := 0
	for i := 0; i < n; i++ {
		du, k := ReadZigzag(src[pos:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("compress: edge stream truncated at edge %d", i)
		}
		pos += k
		dv, k := ReadZigzag(src[pos:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("compress: edge stream truncated at edge %d", i)
		}
		pos += k
		pu += du
		pv += dv
		if pu < 0 || pu > 0xFFFFFFFF || pv < 0 || pv > 0xFFFFFFFF {
			return nil, 0, fmt.Errorf("compress: edge stream endpoint out of uint32 range at edge %d", i)
		}
		edges = append(edges, [2]uint32{uint32(pu), uint32(pv)})
	}
	return edges, pos, nil
}
