package compress

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lotustc/internal/baseline"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

var pool = sched.NewPool(2)

func TestRoundTripSmall(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 5}, {U: 1, V: 5}, {U: 2, V: 3},
	}, graph.BuildOptions{NumVertices: 6})
	c := Encode(g)
	g2, err := c.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g2.Offsets(), g.Offsets()) || !reflect.DeepEqual(g2.RawNeighbors(), g.RawNeighbors()) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		var edges []graph.Edge
		for i := 0; i < rng.Intn(5*n); i++ {
			edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
		if rng.Intn(2) == 0 {
			g = g.Orient()
		}
		c := Encode(g)
		g2, err := c.Decode()
		if err != nil {
			return false
		}
		return g2.Oriented == g.Oriented &&
			reflect.DeepEqual(g2.Offsets(), g.Offsets()) &&
			reflect.DeepEqual(g2.RawNeighbors(), g.RawNeighbors())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIterMatchesNeighbors(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 1))
	c := Encode(g)
	for v := 0; v < g.NumVertices(); v++ {
		it := c.Iter(uint32(v))
		for _, want := range g.Neighbors(uint32(v)) {
			got, ok := it.Next()
			if !ok || got != want {
				t.Fatalf("vertex %d: iter %d/%v, want %d", v, got, ok, want)
			}
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("vertex %d: iterator overruns", v)
		}
	}
}

func TestDegree(t *testing.T) {
	g := gen.Star(10)
	c := Encode(g)
	if c.Degree(0) != 9 {
		t.Fatalf("center degree = %d", c.Degree(0))
	}
	if c.Degree(5) != 1 {
		t.Fatalf("leaf degree = %d", c.Degree(5))
	}
}

func TestCountTrianglesCompressed(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"rmat": gen.RMAT(gen.DefaultRMAT(9, 8, 2)),
		"k16":  gen.Complete(16),
		"ring": gen.Ring(30),
	} {
		want := baseline.BruteForce(g)
		c := Encode(g.Orient())
		if got := c.CountTriangles(); got != want {
			t.Errorf("%s: compressed count = %d, want %d", name, got, want)
		}
	}
}

func TestCountTrianglesRequiresOriented(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Encode(gen.Complete(4)).CountTriangles()
}

func TestCompressionWins(t *testing.T) {
	// Gap encoding must shrink a locality-friendly graph (ring: all
	// gaps tiny) well below the 4-byte/edge CSX baseline.
	ring := gen.Ring(10000)
	s := CompareSizes(ring)
	if s.Ratio >= 0.8 {
		t.Fatalf("ring compression ratio %.2f, want < 0.8", s.Ratio)
	}
	// And stay sane (within 1.25x even on unfriendly inputs).
	er := gen.ErdosRenyi(4096, 32768, 1)
	if s2 := CompareSizes(er); s2.Ratio > 1.25 {
		t.Fatalf("ER compression ratio %.2f unexpectedly high", s2.Ratio)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	g := gen.Complete(5)
	c := Encode(g)
	// Flip bytes until Decode errors at least once (deterministic
	// sweep; some flips keep the stream valid-but-different, which
	// Decode must still either reject or produce in-range output).
	sawError := false
	for i := range c.data {
		orig := c.data[i]
		c.data[i] = 0xFF
		if _, err := c.Decode(); err != nil {
			sawError = true
		}
		c.data[i] = orig
	}
	if !sawError {
		t.Fatal("no corruption detected across full byte sweep")
	}
	if _, err := c.Decode(); err != nil {
		t.Fatalf("restored stream fails: %v", err)
	}
}

func TestEmptyGraph(t *testing.T) {
	c := Encode(graph.FromEdges(nil, graph.BuildOptions{NumVertices: 3}))
	if c.SizeBytes() != 8*4 {
		t.Fatalf("empty graph size = %d", c.SizeBytes())
	}
	g, err := c.Decode()
	if err != nil || g.NumEdges() != 0 {
		t.Fatal("empty decode failed")
	}
}

func TestCompressedVsLotusSizes(t *testing.T) {
	// Sanity: on a skewed oriented graph both compression and the
	// LOTUS 16-bit HE trick save space over plain CSX; they are
	// complementary, not contradictory.
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 3))
	og := g.Orient()
	s := CompareSizes(og)
	if s.CompressedBytes >= s.CSXBytes {
		t.Fatalf("compression did not shrink oriented RMAT: %d >= %d", s.CompressedBytes, s.CSXBytes)
	}
	_ = pool
	_ = baseline.KernelMerge
}

func BenchmarkCompressedTriangles(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 1)).Orient()
	c := Encode(g)
	b.Run("compressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += c.CountTriangles()
		}
	})
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += baseline.CountOriented(g, pool, baseline.KernelMerge)
		}
	})
}

var benchSink uint64
