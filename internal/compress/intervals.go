package compress

import (
	"encoding/binary"
	"fmt"

	"lotustc/internal/graph"
)

// Interval coding, the second pillar of the WebGraph format [18]
// (the first, gap coding, is in compress.go): consecutive runs of
// neighbour IDs — ubiquitous in web graphs thanks to lexicographic
// URL ordering, and preserved by LOTUS's order-keeping relabeling
// (§4.3.1) — are stored as (start, length) pairs, and only the
// residual IDs outside runs are gap-coded.
//
// List layout (all varints):
//
//	nIntervals
//	nIntervals x (startGap, length-minIntervalLen)
//	  startGap: first start, or gap-1 from previous interval end
//	residualCount
//	residualCount x gap coding as in compress.go
//
// Runs shorter than minIntervalLen stay residuals (interval overhead
// would exceed the savings).

const minIntervalLen = 3

// IntervalGraph is a CSX graph with interval+residual encoded lists.
type IntervalGraph struct {
	offsets []int64
	data    []byte
	n       int
	// Oriented mirrors graph.Graph.Oriented.
	Oriented bool
}

// EncodeIntervals compresses g with interval+residual coding.
func EncodeIntervals(g *graph.Graph) *IntervalGraph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	var data []byte
	var scratch [binary.MaxVarintLen64]byte
	put := func(x uint64) {
		k := binary.PutUvarint(scratch[:], x)
		data = append(data, scratch[:k]...)
	}
	for v := 0; v < n; v++ {
		offsets[v] = int64(len(data))
		nb := g.Neighbors(uint32(v))
		// Identify maximal runs of consecutive IDs.
		type iv struct{ start, length uint32 }
		var ivs []iv
		var residuals []uint32
		for i := 0; i < len(nb); {
			j := i + 1
			for j < len(nb) && nb[j] == nb[j-1]+1 {
				j++
			}
			if j-i >= minIntervalLen {
				ivs = append(ivs, iv{nb[i], uint32(j - i)})
			} else {
				residuals = append(residuals, nb[i:j]...)
			}
			i = j
		}
		put(uint64(len(ivs)))
		prevEnd := int64(-1)
		for _, r := range ivs {
			if prevEnd < 0 {
				put(uint64(r.start))
			} else {
				put(uint64(int64(r.start) - prevEnd - 1))
			}
			put(uint64(r.length - minIntervalLen))
			prevEnd = int64(r.start) + int64(r.length) - 1
		}
		put(uint64(len(residuals)))
		prev := int64(-1)
		for _, u := range residuals {
			if prev < 0 {
				put(uint64(u))
			} else {
				put(uint64(int64(u) - prev - 1))
			}
			prev = int64(u)
		}
	}
	offsets[n] = int64(len(data))
	return &IntervalGraph{offsets: offsets, data: data, n: n, Oriented: g.Oriented}
}

// NumVertices returns |V|.
func (c *IntervalGraph) NumVertices() int { return c.n }

// SizeBytes returns the encoded topology footprint including the
// offset array.
func (c *IntervalGraph) SizeBytes() int64 {
	return int64(len(c.data)) + 8*int64(len(c.offsets))
}

// Decode reconstructs the plain graph, validating the stream. The
// neighbour list is emitted by merging the (sorted, disjoint)
// intervals with the sorted residuals.
func (c *IntervalGraph) Decode() (*graph.Graph, error) {
	offsets := make([]int64, c.n+1)
	nbrs := make([]uint32, 0, len(c.data))
	for v := 0; v < c.n; v++ {
		offsets[v] = int64(len(nbrs))
		seg := c.data[c.offsets[v]:c.offsets[v+1]]
		pos := 0
		next := func() (uint64, error) {
			x, k := binary.Uvarint(seg[pos:])
			if k <= 0 {
				return 0, fmt.Errorf("compress: vertex %d: truncated varint", v)
			}
			pos += k
			return x, nil
		}
		nIvs, err := next()
		if err != nil {
			return nil, err
		}
		type iv struct{ start, length uint32 }
		ivs := make([]iv, 0, nIvs)
		prevEnd := int64(-1)
		for i := uint64(0); i < nIvs; i++ {
			sg, err := next()
			if err != nil {
				return nil, err
			}
			ln, err := next()
			if err != nil {
				return nil, err
			}
			var start int64
			if prevEnd < 0 {
				start = int64(sg)
			} else {
				start = prevEnd + 1 + int64(sg)
			}
			length := ln + minIntervalLen
			if start+int64(length) > int64(c.n) {
				return nil, fmt.Errorf("compress: vertex %d: interval out of range", v)
			}
			ivs = append(ivs, iv{uint32(start), uint32(length)})
			prevEnd = start + int64(length) - 1
		}
		nRes, err := next()
		if err != nil {
			return nil, err
		}
		res := make([]uint32, 0, nRes)
		prev := int64(-1)
		for i := uint64(0); i < nRes; i++ {
			gp, err := next()
			if err != nil {
				return nil, err
			}
			var u int64
			if prev < 0 {
				u = int64(gp)
			} else {
				u = prev + 1 + int64(gp)
			}
			if u >= int64(c.n) {
				return nil, fmt.Errorf("compress: vertex %d: residual out of range", v)
			}
			res = append(res, uint32(u))
			prev = u
		}
		if pos != len(seg) {
			return nil, fmt.Errorf("compress: vertex %d: trailing bytes", v)
		}
		// Merge intervals and residuals (both ascending, disjoint).
		ii, ri := 0, 0
		for ii < len(ivs) || ri < len(res) {
			if ri >= len(res) || (ii < len(ivs) && ivs[ii].start < res[ri]) {
				for k := uint32(0); k < ivs[ii].length; k++ {
					nbrs = append(nbrs, ivs[ii].start+k)
				}
				ii++
			} else {
				nbrs = append(nbrs, res[ri])
				ri++
			}
		}
	}
	offsets[c.n] = int64(len(nbrs))
	// graph.New validates monotone offsets; sortedness per list is
	// guaranteed by construction but verify to reject crafted input.
	for v := 0; v < c.n; v++ {
		seg := nbrs[offsets[v]:offsets[v+1]]
		for i := 1; i < len(seg); i++ {
			if seg[i-1] >= seg[i] {
				return nil, fmt.Errorf("compress: vertex %d: overlapping intervals/residuals", v)
			}
		}
	}
	return graph.New(offsets, nbrs, c.Oriented), nil
}

// CompareAllSizes reports CSX vs gap-coded vs interval+residual
// footprints for g.
type AllSizes struct {
	CSXBytes      int64
	GapBytes      int64
	IntervalBytes int64
}

// CompareAllSizes encodes g both ways.
func CompareAllSizes(g *graph.Graph) AllSizes {
	return AllSizes{
		CSXBytes:      g.TopologyBytes(),
		GapBytes:      Encode(g).SizeBytes(),
		IntervalBytes: EncodeIntervals(g).SizeBytes(),
	}
}
