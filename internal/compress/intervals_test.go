package compress

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
)

func TestIntervalRoundTripStructured(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ring":    gen.Ring(100),    // long consecutive runs
		"path":    gen.Path(50),     //
		"grid":    gen.Grid(8, 9),   //
		"k16":     gen.Complete(16), // one big run per vertex
		"star":    gen.Star(30),     // center has a full run
		"rmat":    gen.RMAT(gen.DefaultRMAT(9, 8, 1)),
		"empty":   graph.FromEdges(nil, graph.BuildOptions{NumVertices: 4}),
		"oneedge": graph.FromEdges([]graph.Edge{{U: 0, V: 3}}, graph.BuildOptions{}),
	}
	for name, g := range graphs {
		c := EncodeIntervals(g)
		g2, err := c.Decode()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(g2.Offsets(), g.Offsets()) || !reflect.DeepEqual(g2.RawNeighbors(), g.RawNeighbors()) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestIntervalRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		var edges []graph.Edge
		for i := 0; i < rng.Intn(6*n); i++ {
			edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
		if rng.Intn(2) == 0 {
			g = g.Orient()
		}
		c := EncodeIntervals(g)
		g2, err := c.Decode()
		if err != nil {
			return false
		}
		return g2.Oriented == g.Oriented &&
			reflect.DeepEqual(g2.Offsets(), g.Offsets()) &&
			reflect.DeepEqual(g2.RawNeighbors(), g.RawNeighbors())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalBeatsGapOnRunHeavyGraphs(t *testing.T) {
	// K64: every neighbour list is (nearly) one long run; intervals
	// should crush plain gap coding.
	s := CompareAllSizes(gen.Complete(64))
	if s.IntervalBytes >= s.GapBytes {
		t.Fatalf("intervals %d >= gaps %d on K64", s.IntervalBytes, s.GapBytes)
	}
	if s.IntervalBytes >= s.CSXBytes {
		t.Fatalf("intervals %d >= CSX %d on K64", s.IntervalBytes, s.CSXBytes)
	}
	// Grids too (rows of consecutive IDs are absent — grid neighbours
	// differ by ±1 and ±cols, so runs are rare: interval coding must
	// at least not explode).
	sg := CompareAllSizes(gen.Grid(30, 30))
	if sg.IntervalBytes > sg.GapBytes*2 {
		t.Fatalf("interval overhead too high on grid: %d vs %d", sg.IntervalBytes, sg.GapBytes)
	}
}

func TestIntervalRejectsCorrupt(t *testing.T) {
	c := EncodeIntervals(gen.Complete(8))
	sawError := false
	for i := range c.data {
		orig := c.data[i]
		for _, b := range []byte{0xFF, 0x00, orig ^ 0x55} {
			c.data[i] = b
			if _, err := c.Decode(); err != nil {
				sawError = true
			}
		}
		c.data[i] = orig
	}
	if !sawError {
		t.Fatal("no corruption ever detected")
	}
	if _, err := c.Decode(); err != nil {
		t.Fatalf("restored stream fails: %v", err)
	}
}

func TestIntervalMinRunRespected(t *testing.T) {
	// A 2-run (below minIntervalLen) must be residual-coded; verify
	// by round trip of a graph whose lists have exactly 2-runs.
	g := graph.FromEdges([]graph.Edge{
		{U: 0, V: 5}, {U: 0, V: 6}, {U: 0, V: 9},
	}, graph.BuildOptions{NumVertices: 10})
	c := EncodeIntervals(g)
	g2, err := c.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g2.RawNeighbors(), g.RawNeighbors()) {
		t.Fatal("short-run round trip mismatch")
	}
}
