// Package intersect implements the sorted-set intersection kernels
// used by triangle counting: merge join, (galloping) binary search,
// hashing and bitmap lookup — the four strategies §2.2 lists. All
// kernels operate on ascending uint32 slices and return the size of
// the intersection, which is the number of triangles closed by one
// (v,u) edge in the Forward algorithm.
package intersect

// Merge counts |a ∩ b| with a linear merge join. This is the kernel
// LOTUS itself uses for the HNN and NNN phases (§4.4.3): neighbour
// lists of non-hubs are short, so the branchy but allocation-free
// merge wins.
func Merge(a, b []uint32) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Merge16 is Merge specialized for the 16-bit neighbour IDs of the HE
// sub-graph (§4.2: LOTUS stores hub IDs in 16 bits).
func Merge16(a, b []uint16) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Merge16Branchless is MergeBranchless for 16-bit hub IDs: the same
// arithmetic cursor advance, with both loads widened once so the hot
// loop compares registers.
func Merge16Branchless(a, b []uint16) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		n += uint64(btoi(x == y))
		i += btoi(x <= y)
		j += btoi(y <= x)
	}
	return n
}

// MergeBranchless counts |a ∩ b| with a comparison-driven merge whose
// cursor advances are computed arithmetically instead of via
// conditional branches, trading a few extra ALU ops for the removal
// of the two unpredictable branches per step — the mitigation [32]
// pursues with radix binning, in its simplest form. Fig 5c's
// branch-misprediction comparison motivates having it available.
func MergeBranchless(a, b []uint32) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		eq := btoi(x == y)
		n += uint64(eq)
		// Advance a when x <= y, b when y <= x; both on equality.
		i += btoi(x <= y)
		j += btoi(y <= x)
	}
	return n
}

// btoi converts a bool to 0/1; the compiler lowers this to SETcc,
// keeping the merge loop free of data-dependent jumps.
func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// LowerBound returns the first index i with s[i] >= x (len(s) when no
// such element exists). It is the inlined, branch-free binary search
// the hot kernels use in place of sort.Search: the window halves with
// an arithmetic cursor advance instead of a data-dependent jump, and
// there is no closure call per probe.
func LowerBound(s []uint32, x uint32) int {
	base, n := 0, len(s)
	for n > 1 {
		half := n >> 1
		base += btoi(s[base+half-1] < x) * half
		n -= half
	}
	if n == 1 {
		base += btoi(s[base] < x)
	}
	return base
}

// LowerBound16 is LowerBound for the 16-bit hub IDs of HE rows.
func LowerBound16(s []uint16, x uint16) int {
	base, n := 0, len(s)
	for n > 1 {
		half := n >> 1
		base += btoi(s[base+half-1] < x) * half
		n -= half
	}
	if n == 1 {
		base += btoi(s[base] < x)
	}
	return base
}

// Binary counts |a ∩ b| by binary-searching each element of the
// shorter list in the longer one — the strategy of Fox et al. [31]
// that the paper contrasts with merge join in §3.3/§6.3.
func Binary(a, b []uint32) uint64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var n uint64
	lo := 0
	for _, x := range a {
		// Search only the suffix past the previous match; both
		// lists are ascending so matches advance monotonically.
		i := lo + LowerBound(b[lo:], x)
		if i < len(b) && b[i] == x {
			n++
			lo = i + 1
		} else {
			lo = i
		}
		if lo >= len(b) {
			break
		}
	}
	return n
}

// Galloping counts |a ∩ b| with exponential (galloping) search, which
// beats plain binary search when |a| << |b|.
func Galloping(a, b []uint32) uint64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var n uint64
	j := 0
	for _, x := range a {
		// Gallop to find the window containing x.
		step := 1
		k := j
		for k+step < len(b) && b[k+step] < x {
			k += step
			step <<= 1
		}
		hi := k + step
		if hi > len(b) {
			hi = len(b)
		}
		i := k + LowerBound(b[k:hi], x)
		if i < len(b) && b[i] == x {
			n++
			j = i + 1
		} else {
			j = i
		}
		if j >= len(b) {
			break
		}
	}
	return n
}

// Galloping16 is Galloping for the 16-bit hub IDs of HE rows, the
// kernel the adaptive dispatcher picks when one row dwarfs the other
// (a low-degree vertex against a hub's long row).
func Galloping16(a, b []uint16) uint64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var n uint64
	j := 0
	for _, x := range a {
		step := 1
		k := j
		for k+step < len(b) && b[k+step] < x {
			k += step
			step <<= 1
		}
		hi := k + step
		if hi > len(b) {
			hi = len(b)
		}
		i := k + LowerBound16(b[k:hi], x)
		if i < len(b) && b[i] == x {
			n++
			j = i + 1
		} else {
			j = i
		}
		if j >= len(b) {
			break
		}
	}
	return n
}

// HashSet is a reusable open-addressing set for hash-based
// intersection (the Forward-hashed variant of Schank & Wagner). The
// zero value is unusable; create with NewHashSet.
type HashSet struct {
	slots []uint32
	mask  uint32
	// stamp-based clearing: a slot is live iff stamps[i] == epoch.
	stamps []uint32
	epoch  uint32
}

// NewHashSet returns a set able to hold n elements with load factor
// <= 0.5.
func NewHashSet(n int) *HashSet {
	cap := 16
	for cap < 2*n {
		cap <<= 1
	}
	return &HashSet{
		slots:  make([]uint32, cap),
		stamps: make([]uint32, cap),
		mask:   uint32(cap - 1),
		epoch:  1,
	}
}

// Reset empties the set in O(1) by bumping the epoch.
func (h *HashSet) Reset() {
	h.epoch++
	if h.epoch == 0 { // wrapped: clear stamps for correctness
		for i := range h.stamps {
			h.stamps[i] = 0
		}
		h.epoch = 1
	}
}

func hash32(x uint32) uint32 {
	// Murmur3 finalizer: cheap and well distributed.
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// Add inserts x.
func (h *HashSet) Add(x uint32) {
	i := hash32(x) & h.mask
	for h.stamps[i] == h.epoch {
		if h.slots[i] == x {
			return
		}
		i = (i + 1) & h.mask
	}
	h.slots[i] = x
	h.stamps[i] = h.epoch
}

// Contains reports membership of x.
func (h *HashSet) Contains(x uint32) bool {
	i := hash32(x) & h.mask
	for h.stamps[i] == h.epoch {
		if h.slots[i] == x {
			return true
		}
		i = (i + 1) & h.mask
	}
	return false
}

// Hash counts |a ∩ b| by loading a into the set and probing with b.
// The set must have capacity for len(a) elements.
func Hash(h *HashSet, a, b []uint32) uint64 {
	h.Reset()
	for _, x := range a {
		h.Add(x)
	}
	var n uint64
	for _, x := range b {
		if h.Contains(x) {
			n++
		}
	}
	return n
}

// Bitmap is a reusable dense bitmap for bitmap-lookup intersection
// (Latapy's new-vertex-listing strategy [48]).
type Bitmap struct {
	words []uint64
	// dirty tracks set word indices so Reset is proportional to the
	// last population, not the universe.
	dirty []int
}

// NewBitmap returns a bitmap over the universe [0, n).
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64)}
}

// Set marks x.
func (b *Bitmap) Set(x uint32) {
	w := int(x >> 6)
	bit := uint64(1) << (x & 63)
	if b.words[w]&bit == 0 {
		if b.words[w] == 0 {
			b.dirty = append(b.dirty, w)
		}
		b.words[w] |= bit
	}
}

// Get reports whether x is marked.
func (b *Bitmap) Get(x uint32) bool {
	return b.words[x>>6]&(uint64(1)<<(x&63)) != 0
}

// Reset clears all marked bits.
func (b *Bitmap) Reset() {
	for _, w := range b.dirty {
		b.words[w] = 0
	}
	b.dirty = b.dirty[:0]
}

// BitmapCount counts |a ∩ b| by marking a and probing with b.
func BitmapCount(bm *Bitmap, a, b []uint32) uint64 {
	bm.Reset()
	for _, x := range a {
		bm.Set(x)
	}
	var n uint64
	for _, x := range b {
		if bm.Get(x) {
			n++
		}
	}
	return n
}

// MergeTraced is Merge with an access callback: onAccess(x, fromA) is
// invoked for every element the merge join reads. The §3.3 fruitless-
// search measurement (Table 1, column 8) uses it to count how many of
// the accessed edges point to hubs.
func MergeTraced(a, b []uint32, onAccess func(x uint32, fromA bool)) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		onAccess(a[i], true)
		onAccess(b[j], false)
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// MergeOps returns the intersection size together with the number of
// element comparisons performed, used as the instruction-count proxy
// of Fig 5b.
func MergeOps(a, b []uint32) (n, ops uint64) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ops++
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n, ops
}
