package intersect

// Adaptive kernel dispatch. Bader et al. (Cover-Edge TC) and Sanders
// & Uhl (Engineering Distributed-Memory TC) both report that the
// choice of set-intersection kernel — merge vs. binary/galloping
// search — dominates triangle-counting runtime, and that the right
// choice depends on the size ratio of the two lists: a linear merge
// touches every element of both lists, while galloping touches
// O(|short| · log |long|). On skewed graphs the HNN phase constantly
// intersects a vertex's short hub list with a hub-heavy neighbour's
// long one, so a single unconditional kernel leaves time on the
// table in one regime or the other.

// GallopRatio is the size ratio past which the adaptive dispatcher
// abandons merge join for galloping search: merge costs
// |a|+|b| element steps, galloping ~ |a|·(log2(|b|/|a|)+2), so the
// crossover is near |b|/|a| ≈ 8-32 depending on branch behaviour; 16
// keeps the dispatch test to one shift and one compare.
const GallopRatio = 16

// UseGalloping reports whether the adaptive dispatcher would pick the
// galloping kernel for lists of the given lengths. It is exported so
// hot loops that need per-kernel dispatch counters can branch on the
// same predicate the Adaptive kernels use without calling through
// them.
func UseGalloping(la, lb int) bool {
	if la > lb {
		la, lb = lb, la
	}
	return la > 0 && lb >= la*GallopRatio
}

// Adaptive counts |a ∩ b| with the size-ratio dispatch: galloping
// search when one list dwarfs the other, merge join otherwise.
func Adaptive(a, b []uint32) uint64 {
	if UseGalloping(len(a), len(b)) {
		return Galloping(a, b)
	}
	return Merge(a, b)
}

// Adaptive16 is Adaptive for the 16-bit hub IDs of HE rows.
func Adaptive16(a, b []uint16) uint64 {
	if UseGalloping(len(a), len(b)) {
		return Galloping16(a, b)
	}
	return Merge16(a, b)
}
