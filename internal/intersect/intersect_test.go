package intersect

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refCount is the trivially correct reference intersection.
func refCount(a, b []uint32) uint64 {
	set := map[uint32]bool{}
	for _, x := range a {
		set[x] = true
	}
	var n uint64
	seen := map[uint32]bool{}
	for _, x := range b {
		if set[x] && !seen[x] {
			n++
			seen[x] = true
		}
	}
	return n
}

func sortedUnique(xs []uint32, mod uint32) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, x := range xs {
		x %= mod
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestKernelsAgreeFixed(t *testing.T) {
	cases := [][2][]uint32{
		{{}, {}},
		{{1}, {}},
		{{}, {1}},
		{{1, 2, 3}, {2, 3, 4}},
		{{1, 5, 9}, {2, 6, 10}},
		{{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}},
		{{7}, {7}},
		{{1, 100, 1000}, {1000}},
	}
	h := NewHashSet(16)
	bm := NewBitmap(2048)
	for _, c := range cases {
		a, b := c[0], c[1]
		want := refCount(a, b)
		if got := Merge(a, b); got != want {
			t.Errorf("Merge(%v,%v) = %d, want %d", a, b, got, want)
		}
		if got := Binary(a, b); got != want {
			t.Errorf("Binary(%v,%v) = %d, want %d", a, b, got, want)
		}
		if got := Galloping(a, b); got != want {
			t.Errorf("Galloping(%v,%v) = %d, want %d", a, b, got, want)
		}
		if got := Hash(h, a, b); got != want {
			t.Errorf("Hash(%v,%v) = %d, want %d", a, b, got, want)
		}
		if got := BitmapCount(bm, a, b); got != want {
			t.Errorf("Bitmap(%v,%v) = %d, want %d", a, b, got, want)
		}
	}
}

func TestKernelsAgreeProperty(t *testing.T) {
	check := func(ra, rb []uint32) bool {
		a := sortedUnique(ra, 512)
		b := sortedUnique(rb, 512)
		want := refCount(a, b)
		h := NewHashSet(len(a) + 1)
		bm := NewBitmap(512)
		if Merge(a, b) != want || Binary(a, b) != want ||
			Galloping(a, b) != want || Hash(h, a, b) != want ||
			BitmapCount(bm, a, b) != want || MergeBranchless(a, b) != want ||
			Adaptive(a, b) != want {
			return false
		}
		n, _ := MergeOps(a, b)
		return n == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge16(t *testing.T) {
	a := []uint16{1, 3, 5, 7}
	b := []uint16{2, 3, 4, 7, 9}
	if got := Merge16(a, b); got != 2 {
		t.Fatalf("Merge16 = %d, want 2", got)
	}
	if got := Merge16(nil, b); got != 0 {
		t.Fatalf("Merge16(nil, b) = %d, want 0", got)
	}
}

// TestKernels16AgreeProperty checks the 16-bit kernel family against
// the reference count on random sorted inputs.
func TestKernels16AgreeProperty(t *testing.T) {
	narrow := func(xs []uint32) []uint16 {
		out := make([]uint16, len(xs))
		for i, x := range xs {
			out[i] = uint16(x)
		}
		return out
	}
	check := func(ra, rb []uint32) bool {
		a32 := sortedUnique(ra, 512)
		b32 := sortedUnique(rb, 512)
		want := refCount(a32, b32)
		a, b := narrow(a32), narrow(b32)
		return Merge16(a, b) == want && Merge16Branchless(a, b) == want &&
			Galloping16(a, b) == want && Adaptive16(a, b) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBound(t *testing.T) {
	cases := [][]uint32{
		{},
		{5},
		{1, 3, 5, 7, 9},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{10, 10, 20, 20, 30}, // duplicates still find the first
	}
	for _, s := range cases {
		for x := uint32(0); x < 35; x++ {
			want := sort.Search(len(s), func(i int) bool { return s[i] >= x })
			if got := LowerBound(s, x); got != want {
				t.Errorf("LowerBound(%v, %d) = %d, want %d", s, x, got, want)
			}
			s16 := make([]uint16, len(s))
			for i, v := range s {
				s16[i] = uint16(v)
			}
			if got := LowerBound16(s16, uint16(x)); got != want {
				t.Errorf("LowerBound16(%v, %d) = %d, want %d", s, x, got, want)
			}
		}
	}
}

func TestUseGalloping(t *testing.T) {
	cases := []struct {
		la, lb int
		want   bool
	}{
		{0, 100, false},  // empty short list: merge exits immediately
		{1, 15, false},   // below the ratio
		{1, 16, true},    // at the ratio
		{4, 64, true},    // 16x
		{4, 63, false},   // just under
		{64, 4, true},    // order-insensitive
		{100, 100, false},
	}
	for _, c := range cases {
		if got := UseGalloping(c.la, c.lb); got != c.want {
			t.Errorf("UseGalloping(%d, %d) = %v, want %v", c.la, c.lb, got, c.want)
		}
	}
}

func TestHashSetReuse(t *testing.T) {
	h := NewHashSet(8)
	for round := 0; round < 5; round++ {
		h.Reset()
		base := uint32(round * 100)
		for i := uint32(0); i < 8; i++ {
			h.Add(base + i)
		}
		for i := uint32(0); i < 8; i++ {
			if !h.Contains(base + i) {
				t.Fatalf("round %d: missing %d", round, base+i)
			}
		}
		if round > 0 && h.Contains(uint32((round-1)*100)) {
			t.Fatalf("round %d: stale element survived Reset", round)
		}
	}
}

func TestHashSetEpochWrap(t *testing.T) {
	h := NewHashSet(4)
	h.epoch = ^uint32(0) - 1
	h.Add(42)
	h.Reset() // epoch -> max
	h.Add(7)
	h.Reset() // wraps to 0 -> forced clear, epoch 1
	if h.Contains(42) || h.Contains(7) {
		t.Fatal("stale entries visible after epoch wrap")
	}
	h.Add(9)
	if !h.Contains(9) {
		t.Fatal("set unusable after epoch wrap")
	}
}

func TestHashSetDuplicateAdd(t *testing.T) {
	h := NewHashSet(4)
	h.Add(5)
	h.Add(5)
	h.Add(5)
	if !h.Contains(5) {
		t.Fatal("lost element after duplicate adds")
	}
	if got := Hash(h, []uint32{5, 5, 6}, []uint32{5, 6, 7}); got != 2 {
		// Hash Resets first, so duplicates in a collapse.
		t.Fatalf("Hash with duplicates = %d, want 2", got)
	}
}

func TestBitmapResetSparse(t *testing.T) {
	bm := NewBitmap(100000)
	bm.Set(1)
	bm.Set(99999)
	bm.Reset()
	if bm.Get(1) || bm.Get(99999) {
		t.Fatal("Reset left bits set")
	}
	if len(bm.dirty) != 0 {
		t.Fatal("dirty list not cleared")
	}
}

func TestMergeTracedAccessCounts(t *testing.T) {
	a := []uint32{1, 2, 3}
	b := []uint32{3, 4}
	var accesses int
	var hubAccesses int
	n := MergeTraced(a, b, func(x uint32, fromA bool) {
		accesses++
		if x < 2 { // pretend IDs < 2 are hubs
			hubAccesses++
		}
	})
	if n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
	if accesses == 0 || hubAccesses == 0 {
		t.Fatalf("tracing callback not invoked: %d/%d", hubAccesses, accesses)
	}
}

func TestMergeOpsBounds(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	b := []uint32{6, 7, 8}
	n, ops := MergeOps(a, b)
	if n != 0 {
		t.Fatalf("disjoint count = %d", n)
	}
	if ops == 0 || ops > uint64(len(a)+len(b)) {
		t.Fatalf("ops = %d out of bounds", ops)
	}
}

func BenchmarkIntersectKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func(n int) []uint32 {
		s := make([]uint32, 0, n)
		x := uint32(0)
		for i := 0; i < n; i++ {
			x += 1 + uint32(rng.Intn(8))
			s = append(s, x)
		}
		return s
	}
	a, bb := mk(128), mk(128)
	short, long := mk(8), mk(4096)
	h := NewHashSet(4096)
	bm := NewBitmap(1 << 20)
	b.Run("Merge/balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Merge(a, bb)
		}
	})
	b.Run("Binary/balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Binary(a, bb)
		}
	})
	b.Run("Galloping/skewed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Galloping(short, long)
		}
	})
	b.Run("Merge/skewed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Merge(short, long)
		}
	})
	b.Run("MergeBranchless/balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MergeBranchless(a, bb)
		}
	})
	short16 := make([]uint16, len(short))
	for i, x := range short {
		short16[i] = uint16(x)
	}
	long16 := make([]uint16, len(long))
	for i, x := range long {
		long16[i] = uint16(x)
	}
	b.Run("Merge16/skewed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Merge16(short16, long16)
		}
	})
	b.Run("Merge16Branchless/skewed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Merge16Branchless(short16, long16)
		}
	})
	b.Run("Galloping16/skewed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Galloping16(short16, long16)
		}
	})
	b.Run("Adaptive16/skewed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Adaptive16(short16, long16)
		}
	})
	b.Run("Hash/balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Hash(h, a, bb)
		}
	})
	b.Run("Bitmap/balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BitmapCount(bm, a, bb)
		}
	})
}
