package intersect

import (
	"sort"
	"testing"
)

// decodeSorted turns fuzz bytes into a strictly ascending uint32 list
// by accumulating byte deltas (+1 so the list is duplicate-free), and
// a parallel uint16 list truncated to the 16-bit ID space.
func decodeSorted(data []byte) ([]uint32, []uint16) {
	a32 := make([]uint32, 0, len(data))
	var x uint32
	for _, d := range data {
		x += uint32(d) + 1
		a32 = append(a32, x)
	}
	var a16 []uint16
	for _, v := range a32 {
		if v <= 0xffff {
			a16 = append(a16, uint16(v))
		}
	}
	return a32, a16
}

func widen(a []uint16) []uint32 {
	out := make([]uint32, len(a))
	for i, v := range a {
		out[i] = uint32(v)
	}
	return out
}

// FuzzIntersectAgreement asserts every intersection kernel — the
// 32-bit set, the 16-bit set and the adaptive dispatchers — computes
// the same count on arbitrary sorted inputs. Wired into `make fuzz`.
func FuzzIntersectAgreement(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{0, 0, 0, 0}, []byte{0})
	f.Add([]byte{255, 255, 255}, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		a, a16 := decodeSorted(da)
		b, b16 := decodeSorted(db)
		want := refCount(a, b)
		h := NewHashSet(len(a))
		// Universe = max element + 1: delta accumulation can exceed 2^16.
		maxv := uint32(0)
		if len(a) > 0 && a[len(a)-1] > maxv {
			maxv = a[len(a)-1]
		}
		if len(b) > 0 && b[len(b)-1] > maxv {
			maxv = b[len(b)-1]
		}
		bm := NewBitmap(int(maxv) + 1)
		kernels32 := map[string]uint64{
			"Merge":           Merge(a, b),
			"MergeBranchless": MergeBranchless(a, b),
			"Binary":          Binary(a, b),
			"Galloping":       Galloping(a, b),
			"Adaptive":        Adaptive(a, b),
			"Hash":            Hash(h, a, b),
			"Bitmap":          BitmapCount(bm, a, b),
		}
		for name, got := range kernels32 {
			if got != want {
				t.Errorf("%s(%v, %v) = %d, want %d", name, a, b, got, want)
			}
		}
		want16 := refCount(widen(a16), widen(b16))
		kernels16 := map[string]uint64{
			"Merge16":           Merge16(a16, b16),
			"Merge16Branchless": Merge16Branchless(a16, b16),
			"Galloping16":       Galloping16(a16, b16),
			"Adaptive16":        Adaptive16(a16, b16),
		}
		for name, got := range kernels16 {
			if got != want16 {
				t.Errorf("%s(%v, %v) = %d, want %d", name, a16, b16, got, want16)
			}
		}
		// LowerBound against the sort.Search oracle on the same lists.
		for _, x := range append(append([]uint32{0, 1 << 31}, a...), b...) {
			if got, want := LowerBound(b, x), sort.Search(len(b), func(i int) bool { return b[i] >= x }); got != want {
				t.Errorf("LowerBound(%v, %d) = %d, want %d", b, x, got, want)
			}
		}
	})
}
