package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"lotustc/internal/core"
	"lotustc/internal/engine"
	"lotustc/internal/gen"
	"lotustc/internal/shard"
)

// TestAlgorithmsCapabilities: /v1/algorithms exposes the capability
// tags clients route on (cancellable, shardable, streaming).
func TestAlgorithmsCapabilities(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v struct {
		Algorithms []AlgorithmInfo `json:"algorithms"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("bad body: %v\n%s", err, body)
	}
	byName := map[string]AlgorithmCaps{}
	for _, a := range v.Algorithms {
		byName[a.Name] = a.Capabilities
	}
	if len(byName) != len(engine.Algorithms()) {
		t.Fatalf("listed %d algorithms, registry has %d", len(byName), len(engine.Algorithms()))
	}
	sharded, ok := byName["lotus-sharded"]
	if !ok {
		t.Fatalf("lotus-sharded missing from %v", byName)
	}
	if !sharded.Shardable || !sharded.Cancellable || !sharded.Parallel {
		t.Fatalf("lotus-sharded capabilities = %+v", sharded)
	}
	lotus := byName["lotus"]
	if !lotus.Streaming || !lotus.Cancellable || lotus.Shardable {
		t.Fatalf("lotus capabilities = %+v", lotus)
	}
	if fwd := byName["forward"]; fwd.Streaming || fwd.Shardable || !fwd.Cancellable {
		t.Fatalf("forward capabilities = %+v", fwd)
	}
}

// TestShardedRoutingServesOversizedGraph is the serving acceptance
// criterion: with a cache budget far below the graph's monolithic
// LOTUS structure, a plain "lotus" count is routed through per-shard
// structures — the count is exact, the response says lotus-sharded,
// the shard entries are resident (each fits the budget where the
// monolithic one cannot), and a second request is served warm.
func TestShardedRoutingServesOversizedGraph(t *testing.T) {
	// R-MAT scale 12 / ef 8: the monolithic structure estimate is a
	// few hundred KiB, far over this budget; the per-shard pieces fit.
	srv, ts := newTestServer(t, Config{CacheBytes: 150 << 10})

	spec := GraphSpec{Type: "rmat", Scale: 12, EdgeFactor: 8, Seed: 9}
	g := gen.RMAT(gen.RMATParams{Scale: 12, EdgeFactor: 8, Seed: 9, A: 0.57, B: 0.19, C: 0.19, Noise: 0.05})
	if est := estimateLotusBytes(g, 0); est <= srv.cfg.MaxStructureBytes {
		t.Fatalf("test graph too small to trigger routing: est %d <= budget %d",
			est, srv.cfg.MaxStructureBytes)
	}
	want, err := engine.Run(context.Background(), g, engine.Spec{Algorithm: "lotus"})
	if err != nil {
		t.Fatal(err)
	}

	body := `{"graph": {"type": "rmat", "scale": 12, "edge_factor": 8, "seed": 9}, "no_cache": true}`
	status, raw := postJSON(t, ts.URL+"/v1/count", body)
	if status != http.StatusOK {
		t.Fatalf("cold: status %d: %s", status, raw)
	}
	cold := decodeCount(t, raw)
	if cold.Algorithm != "lotus-sharded" {
		t.Fatalf("oversized graph was not routed to the sharded path: algorithm %q", cold.Algorithm)
	}
	if cold.Triangles != want.Triangles {
		t.Fatalf("sharded count %d != monolithic %d", cold.Triangles, want.Triangles)
	}
	if cold.Classes == nil ||
		cold.Classes.HHH+cold.Classes.HHN+cold.Classes.HNN+cold.Classes.NNN != cold.Triangles {
		t.Fatalf("sharded response class split broken: %+v", cold.Classes)
	}

	// The monolithic structure can never be resident under this
	// budget, but the per-shard entries are individually admissible:
	// at least the hottest of them must be resident after the count.
	// (Their total still exceeds the budget — the LRU keeps the warm
	// tail, not all p of them.)
	p, _ := autoGrid(estimateLotusBytes(g, 0), srv.cfg.MaxStructureBytes)
	resident := 0
	for b := 0; b < p; b++ {
		if srv.cache.peek(shardKey(&spec, 0, 0, p, b)) {
			resident++
		}
	}
	if resident == 0 {
		t.Fatalf("no shard entry resident after the cold count (p=%d)", p)
	}
	if srv.cache.peek(lotusKey(&spec, 0, 0)) {
		t.Fatal("monolithic structure cached despite exceeding the budget")
	}

	// Warm request: still exact, still served through the shard path,
	// rebuilding only the evicted pieces.
	status, raw = postJSON(t, ts.URL+"/v1/count", body)
	if status != http.StatusOK {
		t.Fatalf("warm: status %d: %s", status, raw)
	}
	warm := decodeCount(t, raw)
	if warm.Triangles != want.Triangles {
		t.Fatalf("warm sharded count %d != monolithic %d", warm.Triangles, want.Triangles)
	}
	if warm.Algorithm != "lotus-sharded" {
		t.Fatalf("warm request algorithm %q", warm.Algorithm)
	}
	if srv.Metrics().Get("serve.sharded_routed") == 0 {
		t.Fatal("serve.sharded_routed metric not bumped")
	}
}

// TestExplicitShardedRequest: asking for lotus-sharded with a pinned
// grid works below the routing threshold too.
func TestExplicitShardedRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"graph": {"type": "rmat", "scale": 10, "edge_factor": 8, "seed": 4}, "algorithm": "lotus-sharded", "shards": 3}`
	status, raw := postJSON(t, ts.URL+"/v1/count", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	cr := decodeCount(t, raw)
	ref, raw2 := postJSON(t, ts.URL+"/v1/count",
		`{"graph": {"type": "rmat", "scale": 10, "edge_factor": 8, "seed": 4}}`)
	if ref != http.StatusOK {
		t.Fatalf("reference: status %d: %s", ref, raw2)
	}
	if wantT := decodeCount(t, raw2).Triangles; cr.Triangles != wantT {
		t.Fatalf("sharded %d != lotus %d", cr.Triangles, wantT)
	}
	// Under the default (ample) budget the whole grid stays resident,
	// so a repeat request hits every shard entry.
	status, raw = postJSON(t, ts.URL+"/v1/count",
		`{"graph": {"type": "rmat", "scale": 10, "edge_factor": 8, "seed": 4}, "algorithm": "lotus-sharded", "shards": 3, "no_cache": true}`)
	if status != http.StatusOK {
		t.Fatalf("warm: status %d: %s", status, raw)
	}
	if warm := decodeCount(t, raw); !warm.Cache.Lotus {
		t.Fatal("warm explicit-sharded request did not hit the shard structure cache")
	}
}

// TestCorruptPreparedEntriesEvictedAndRetried: a cached structure that
// contradicts the request's graph (simulated corruption) must not fail
// the request — the server matches on engine.ErrPreparedMismatch,
// evicts the poisoned entries, and recounts from scratch.
func TestCorruptPreparedEntriesEvictedAndRetried(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	spec := GraphSpec{Type: "complete", N: 64}

	// Poison the monolithic structure slot with a foreign graph's
	// structure: right key, wrong vertex count.
	foreign, err := core.TryPreprocess(gen.Complete(16), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.cache.mu.Lock()
	srv.cache.lru.add(lotusKey(&spec, 0, 0), foreign, 1)
	srv.cache.mu.Unlock()

	body := `{"graph": {"type": "complete", "n": 64}}`
	status, raw := postJSON(t, ts.URL+"/v1/count", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if got, want := decodeCount(t, raw).Triangles, uint64(64*63*62/6); got != want {
		t.Fatalf("triangles after corrupt-entry retry: %d, want %d", got, want)
	}
	if srv.Metrics().Get("cache.corrupt_evictions") == 0 {
		t.Fatal("corrupt entry was not evicted")
	}

	// Same for the sharded path: plan + shards from a foreign graph.
	wrongGrid, err := shard.Build(gen.Complete(16), shard.Options{Grid: 2})
	if err != nil {
		t.Fatal(err)
	}
	wrongPlan, err := shard.NewPlan(gen.Complete(16), shard.Options{Grid: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.cache.mu.Lock()
	srv.cache.lru.add(shardPlanKey(&spec, 0, 0, 2), wrongPlan, 1)
	for b := 0; b < 2; b++ {
		srv.cache.lru.add(shardKey(&spec, 0, 0, 2, b), wrongGrid.Shards[b], 1)
	}
	srv.cache.mu.Unlock()
	before := srv.Metrics().Get("cache.corrupt_evictions")

	body = `{"graph": {"type": "complete", "n": 64}, "algorithm": "lotus-sharded", "shards": 2, "no_cache": true}`
	status, raw = postJSON(t, ts.URL+"/v1/count", body)
	if status != http.StatusOK {
		t.Fatalf("sharded: status %d: %s", status, raw)
	}
	if got, want := decodeCount(t, raw).Triangles, uint64(64*63*62/6); got != want {
		t.Fatalf("sharded triangles after corrupt-entry retry: %d, want %d", got, want)
	}
	if srv.Metrics().Get("cache.corrupt_evictions") <= before {
		t.Fatal("corrupt shard entries were not evicted")
	}
}

// TestShardClampWarnsAndRefuses: when the auto shard grid hits its
// p=16 clamp the response carries a cache-info warning and the
// serve.shard_clamp metric ticks (the clamp used to be silent); when
// even 16 shards are hopelessly over budget the request is refused
// with 413 structure_too_large instead of thrashing the cache.
func TestShardClampWarnsAndRefuses(t *testing.T) {
	g := gen.RMAT(gen.RMATParams{Scale: 10, EdgeFactor: 8, Seed: 7, A: 0.57, B: 0.19, C: 0.19, Noise: 0.05})
	est := estimateLotusBytes(g, 0)

	// Budget in [est/32, est/16): autoGrid wants p>16, but the 2x
	// per-shard slack still admits the request -> warning branch.
	srv, ts := newTestServer(t, Config{MaxStructureBytes: est / 20})
	want, err := engine.Run(context.Background(), g, engine.Spec{Algorithm: "lotus"})
	if err != nil {
		t.Fatal(err)
	}
	body := `{"graph": {"type": "rmat", "scale": 10, "edge_factor": 8, "seed": 7}}`
	status, raw := postJSON(t, ts.URL+"/v1/count", body)
	if status != http.StatusOK {
		t.Fatalf("clamped count: status %d: %s", status, raw)
	}
	resp := decodeCount(t, raw)
	if resp.Algorithm != "lotus-sharded" || resp.Triangles != want.Triangles {
		t.Fatalf("clamped count wrong: algo %q triangles %d, want lotus-sharded %d",
			resp.Algorithm, resp.Triangles, want.Triangles)
	}
	if resp.Cache.Warning == "" {
		t.Fatal("clamped auto grid produced no cache-info warning")
	}
	if got := srv.Metrics().Get("serve.shard_clamp"); got != 1 {
		t.Fatalf("serve.shard_clamp = %d, want 1", got)
	}
	// The warning must survive a result-cache hit.
	status, raw = postJSON(t, ts.URL+"/v1/count", body)
	if status != http.StatusOK {
		t.Fatalf("warm clamped count: status %d: %s", status, raw)
	}
	if resp = decodeCount(t, raw); !resp.Cache.Result || resp.Cache.Warning == "" {
		t.Fatalf("result-cache hit dropped the clamp warning: %+v", resp.Cache)
	}

	// Budget below est/32: even 16 shards blow the budget -> 413.
	srv2, ts2 := newTestServer(t, Config{MaxStructureBytes: est / 64})
	status, raw = postJSON(t, ts2.URL+"/v1/count", body)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("hopeless clamp: status %d, want 413: %s", status, raw)
	}
	if !bytes.Contains(raw, []byte("structure_too_large")) {
		t.Fatalf("hopeless clamp error body: %s", raw)
	}
	if got := srv2.Metrics().Get("serve.shard_clamp"); got != 1 {
		t.Fatalf("serve.shard_clamp = %d, want 1", got)
	}
	// An explicit shards count side-steps the refusal: the caller has
	// taken responsibility for residency.
	status, raw = postJSON(t, ts2.URL+"/v1/count",
		`{"graph": {"type": "rmat", "scale": 10, "edge_factor": 8, "seed": 7}, "shards": 4, "no_cache": true}`)
	if status != http.StatusOK {
		t.Fatalf("explicit shards: status %d: %s", status, raw)
	}
	if resp = decodeCount(t, raw); resp.Triangles != want.Triangles {
		t.Fatalf("explicit shards count %d, want %d", resp.Triangles, want.Triangles)
	}
}
