package serve

// Tests of the productized streaming path: session modes
// (exact/approx/auto), per-session byte budgets, exact->approx
// degradation, parallel batch preparation, and the lock-free GET
// contract under concurrent ingest and deletion (run under -race by
// `make check`).

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

func decodeStream(t *testing.T, raw []byte) *StreamState {
	t.Helper()
	var st StreamState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("bad stream state %s: %v", raw, err)
	}
	return &st
}

// ingestBody marshals an ingest batch.
func ingestBody(t *testing.T, add, remove [][2]uint32) string {
	t.Helper()
	raw, err := json.Marshal(StreamIngestRequest{Add: add, Remove: remove})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestStreamApproxBudgetAndErrorBound is the acceptance test for the
// approximate streaming path: an approx session fed a scale-15 R-MAT
// edge stream must stay within its configured byte budget at every
// poll, and its final estimate must be finite and within the
// reported 95% error bound of the exact triangle count.
func TestStreamApproxBudgetAndErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-15 stream is not a -short test")
	}
	_, ts := newTestServer(t, Config{})
	g := gen.RMAT(gen.DefaultRMAT(15, 16, 11))
	pool := sched.NewPool(0)
	exact := float64(core.Preprocess(g, core.Options{Pool: pool}).Count(pool).Total)

	const budget = 1 << 20 // 1 MiB
	status, raw := postJSON(t, ts.URL+"/v1/stream",
		fmt.Sprintf(`{"mode": "approx", "budget_bytes": %d, "seed": 5}`, budget))
	if status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, raw)
	}
	st := decodeStream(t, raw)
	if !st.Approx || st.Mode != "approx" {
		t.Fatalf("approx session reports %+v", st)
	}
	if st.BudgetBytes != budget {
		t.Fatalf("budget %d, want %d", st.BudgetBytes, budget)
	}

	edges := g.Edges()
	const batch = 1 << 16
	for lo := 0; lo < len(edges); lo += batch {
		hi := min(lo+batch, len(edges))
		add := make([][2]uint32, 0, hi-lo)
		for _, e := range edges[lo:hi] {
			add = append(add, [2]uint32{e.U, e.V})
		}
		status, raw = postJSON(t, ts.URL+"/v1/stream/"+st.ID+"/edges", ingestBody(t, add, nil))
		if status != http.StatusOK {
			t.Fatalf("ingest [%d,%d): status %d: %s", lo, hi, status, raw)
		}
		st = decodeStream(t, raw)
		if st.MemoryBytes > st.BudgetBytes {
			t.Fatalf("after %d edges: resident %d bytes exceeds budget %d", hi, st.MemoryBytes, st.BudgetBytes)
		}
	}
	if st.Edges != uint64(len(edges)) {
		t.Fatalf("session saw %d edges, want %d", st.Edges, len(edges))
	}
	if math.IsNaN(st.Estimate) || math.IsInf(st.Estimate, 0) || st.Estimate < 0 {
		t.Fatalf("estimate %v not finite/non-negative", st.Estimate)
	}
	if st.ErrorBound <= 0 || math.IsInf(st.ErrorBound, 0) {
		t.Fatalf("error bound %v not positive finite", st.ErrorBound)
	}
	if diff := math.Abs(st.Estimate - exact); diff > st.ErrorBound {
		t.Fatalf("estimate %.0f misses exact %.0f by %.0f, outside the reported bound %.0f",
			st.Estimate, exact, diff, st.ErrorBound)
	}
	t.Logf("exact %.0f, estimate %.0f (±%.0f at %.0f%%), reservoir %d/%d, %d bytes of %d",
		exact, st.Estimate, st.ErrorBound, 100*st.Confidence,
		st.ReservoirEdges, st.ReservoirCap, st.MemoryBytes, st.BudgetBytes)
}

// streamEdges maps a graph's edge list into ingest batches.
func graphBatches(g *graph.Graph, batch int) [][][2]uint32 {
	edges := g.Edges()
	var out [][][2]uint32
	for lo := 0; lo < len(edges); lo += batch {
		hi := min(lo+batch, len(edges))
		b := make([][2]uint32, 0, hi-lo)
		for _, e := range edges[lo:hi] {
			b = append(b, [2]uint32{e.U, e.V})
		}
		out = append(out, b)
	}
	return out
}

// TestStreamAutoDegrades: an auto session that outgrows its budget
// flips to the estimator instead of refusing ingest — the transition
// is flagged in the state and counted in /metrics, the exact
// structures are released, and ingest keeps working.
func TestStreamAutoDegrades(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	// Budget above the empty universe's footprint but below what the
	// full adjacency needs, so degradation happens mid-stream.
	sc, err := core.NewStreaming(int(1)<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := sc.MemoryBytes() + 8<<10

	status, raw := postJSON(t, ts.URL+"/v1/stream",
		fmt.Sprintf(`{"mode": "auto", "vertices": %d, "budget_bytes": %d, "seed": 9}`, 1<<10, budget))
	if status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, raw)
	}
	st := decodeStream(t, raw)
	if st.Approx || st.Degraded {
		t.Fatalf("auto session born degraded: %+v", st)
	}
	for _, b := range graphBatches(g, 1<<12) {
		status, raw = postJSON(t, ts.URL+"/v1/stream/"+st.ID+"/edges", ingestBody(t, b, nil))
		if status != http.StatusOK {
			t.Fatalf("auto ingest: status %d: %s", status, raw)
		}
		st = decodeStream(t, raw)
		if st.MemoryBytes > st.BudgetBytes+budgetCheckEvery*32 {
			t.Fatalf("auto session resident %d bytes way over budget %d", st.MemoryBytes, st.BudgetBytes)
		}
	}
	if !st.Degraded || !st.Approx || st.Mode != "auto" {
		t.Fatalf("auto session did not degrade: %+v", st)
	}
	if st.Estimate <= 0 || st.ErrorBound < 0 || math.IsInf(st.Estimate, 0) {
		t.Fatalf("degraded session estimate %v ± %v", st.Estimate, st.ErrorBound)
	}
	if got := s.Metrics().Get("stream.degraded"); got != 1 {
		t.Fatalf("stream.degraded metric = %d, want 1", got)
	}
	ss, ok := s.streams.get(st.ID)
	if !ok {
		t.Fatal("session vanished")
	}
	if ss.sc.Load() != nil {
		t.Fatal("exact structures not released after degradation")
	}
	// Ingest after degradation keeps working and keeps the budget.
	status, raw = postJSON(t, ts.URL+"/v1/stream/"+st.ID+"/edges",
		ingestBody(t, [][2]uint32{{1, 2}, {2, 3}}, nil))
	if status != http.StatusOK {
		t.Fatalf("post-degradation ingest: status %d: %s", status, raw)
	}
	if st = decodeStream(t, raw); st.MemoryBytes > st.BudgetBytes {
		t.Fatalf("degraded session over budget: %d > %d", st.MemoryBytes, st.BudgetBytes)
	}
}

// TestStreamExactOverBudget: an exact session that crosses its
// budget finishes the crossing batch (flagged over_budget), then
// refuses further ingest with 413 instead of growing without bound.
func TestStreamExactOverBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sc, err := core.NewStreaming(1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := sc.MemoryBytes() + 2<<10

	status, raw := postJSON(t, ts.URL+"/v1/stream",
		fmt.Sprintf(`{"mode": "exact", "vertices": %d, "budget_bytes": %d}`, 1<<10, budget))
	if status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, raw)
	}
	st := decodeStream(t, raw)
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 4))
	batches := graphBatches(g, 1<<11)
	status, raw = postJSON(t, ts.URL+"/v1/stream/"+st.ID+"/edges", ingestBody(t, batches[0], nil))
	if status != http.StatusOK {
		t.Fatalf("crossing batch: status %d: %s", status, raw)
	}
	st = decodeStream(t, raw)
	if !st.OverBudget {
		t.Fatalf("crossing batch not flagged over budget: %+v", st)
	}
	status, raw = postJSON(t, ts.URL+"/v1/stream/"+st.ID+"/edges", ingestBody(t, batches[1], nil))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget ingest: status %d, want 413: %s", status, raw)
	}
	if got := s.Metrics().Get("stream.budget_rejections"); got < 1 {
		t.Fatalf("stream.budget_rejections = %d, want >= 1", got)
	}
	// An exact session whose empty universe alone busts the budget is
	// refused at create time.
	status, raw = postJSON(t, ts.URL+"/v1/stream",
		`{"mode": "exact", "vertices": 1048576, "budget_bytes": 4096}`)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: status %d, want 413: %s", status, raw)
	}
	// The same universe under auto is admitted, born degraded.
	status, raw = postJSON(t, ts.URL+"/v1/stream",
		`{"mode": "auto", "vertices": 1048576, "budget_bytes": 4096}`)
	if status != http.StatusCreated {
		t.Fatalf("auto oversized create: status %d: %s", status, raw)
	}
	if st = decodeStream(t, raw); !st.Degraded || !st.Approx {
		t.Fatalf("oversized auto session not born degraded: %+v", st)
	}
}

// TestStreamModeValidation: unknown modes 400; the server default
// mode applies when the request names none.
func TestStreamModeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultStreamMode: "approx"})
	status, raw := postJSON(t, ts.URL+"/v1/stream", `{"mode": "sorta"}`)
	if status != http.StatusBadRequest || !strings.Contains(string(raw), "sorta") {
		t.Fatalf("bad mode: status %d: %s", status, raw)
	}
	status, raw = postJSON(t, ts.URL+"/v1/stream", `{}`)
	if status != http.StatusCreated {
		t.Fatalf("default-mode create: status %d: %s", status, raw)
	}
	if st := decodeStream(t, raw); st.Mode != "approx" || !st.Approx {
		t.Fatalf("default mode not applied: %+v", st)
	}
}

// TestStreamDuplicateBatchExact: duplicate and reversed edges inside
// one batch are deduplicated before the counter sees them; counts
// match a session fed each edge once.
func TestStreamDuplicateBatchExact(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mk := func() *StreamState {
		status, raw := postJSON(t, ts.URL+"/v1/stream", `{"vertices": 64, "hubs": [0, 1], "count_non_hub": true}`)
		if status != http.StatusCreated {
			t.Fatalf("create: %d %s", status, raw)
		}
		return decodeStream(t, raw)
	}
	clean, dirty := mk(), mk()
	edges := [][2]uint32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}, {10, 11}, {11, 12}, {12, 10}}
	var noisy [][2]uint32
	for _, e := range edges {
		noisy = append(noisy, e, [2]uint32{e[1], e[0]}, e, [2]uint32{e[0], e[0]})
	}
	_, rawClean := postJSON(t, ts.URL+"/v1/stream/"+clean.ID+"/edges", ingestBody(t, edges, nil))
	_, rawDirty := postJSON(t, ts.URL+"/v1/stream/"+dirty.ID+"/edges", ingestBody(t, noisy, nil))
	a, b := decodeStream(t, rawClean), decodeStream(t, rawDirty)
	if a.Edges != b.Edges || a.HubTriangles != b.HubTriangles || a.NNN != b.NNN {
		t.Fatalf("duplicate-heavy batch diverged: clean %+v, dirty %+v", a, b)
	}
	if a.Edges != uint64(len(edges)) {
		t.Fatalf("edge count %d, want %d", a.Edges, len(edges))
	}
}

// TestStreamConcurrentIngestPollDelete hammers one exact and one
// approx session with parallel ingest batches (large enough to take
// the parallel preparation path), lock-free GET polling, and a
// DELETE racing mid-batch — the -race gate for the serving stream
// path.
func TestStreamConcurrentIngestPollDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	create := func(body string) string {
		status, raw := postJSON(t, ts.URL+"/v1/stream", body)
		if status != http.StatusCreated {
			t.Fatalf("create: %d %s", status, raw)
		}
		return decodeStream(t, raw).ID
	}
	// Auto with a tight budget so degradation races the pollers too.
	ids := []string{
		create(`{"vertices": 4096, "hubs": [1, 2, 3]}`),
		create(`{"mode": "approx", "budget_bytes": 65536}`),
		create(`{"mode": "auto", "vertices": 4096, "budget_bytes": 262144}`),
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for gi, id := range ids {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(id string, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					n := parallelBatchThreshold + 512 // force the parallel path
					add := make([][2]uint32, n)
					for j := range add {
						add[j] = [2]uint32{uint32(rng.Intn(4096)), uint32(rng.Intn(4096))}
					}
					var rem [][2]uint32
					if i%3 == 2 {
						rem = add[:64]
					}
					status, _ := postJSON(t, ts.URL+"/v1/stream/"+id+"/edges", ingestBody(t, add, rem))
					switch status {
					case http.StatusOK, http.StatusNotFound, http.StatusRequestEntityTooLarge:
					default:
						t.Errorf("ingest status %d", status)
						return
					}
				}
			}(id, int64(gi*10+w))
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/stream/" + id)
				if err != nil {
					t.Errorf("poll: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					t.Errorf("poll status %d", resp.StatusCode)
				}
				readAll(t, resp)
			}
		}(id)
	}
	// Delete the first session mid-flight; its ingesters and pollers
	// must keep getting clean 404s (or finish their in-flight batch).
	time.Sleep(60 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stream/"+ids[0], nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	time.Sleep(60 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestPrepareBatchParallelMatchesSerial: the hash-partitioned
// parallel preparation path produces exactly the serial path's edge
// set (as a set — partition order is unspecified).
func TestPrepareBatchParallelMatchesSerial(t *testing.T) {
	par := New(Config{Workers: 4})
	ser := New(Config{Workers: 1})
	rng := rand.New(rand.NewSource(8))
	edges := make([][2]uint32, parallelBatchThreshold*3)
	for i := range edges {
		edges[i] = [2]uint32{uint32(rng.Intn(512)), uint32(rng.Intn(512))}
	}
	collect := func(s *Server) map[[2]uint32]int {
		b := s.prepareBatch(edges)
		defer b.release()
		got := map[[2]uint32]int{}
		b.each(func(u, v uint32) { got[[2]uint32{u, v}]++ })
		return got
	}
	pm, sm := collect(par), collect(ser)
	if len(pm) != len(sm) {
		t.Fatalf("parallel kept %d edges, serial %d", len(pm), len(sm))
	}
	for e, n := range pm {
		if n != 1 {
			t.Fatalf("edge %v emitted %d times", e, n)
		}
		if e[0] >= e[1] {
			t.Fatalf("edge %v not canonical", e)
		}
		if sm[e] != 1 {
			t.Fatalf("edge %v missing from serial path", e)
		}
	}
}
