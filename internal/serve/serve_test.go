package serve

// End-to-end tests of the serving layer over httptest, written to run
// clean under -race: cache hit/miss/eviction accounting, single-flight
// collapse of a thundering herd, per-request timeouts that answer 504
// while the server keeps serving, graceful-shutdown draining, and the
// 4xx/5xx classification of corrupt or oriented inputs.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lotustc/internal/gen"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, raw
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

func decodeCount(t *testing.T, raw []byte) *CountResponse {
	t.Helper()
	var cr CountResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("bad count response %s: %v", raw, err)
	}
	return &cr
}

const rmatBody = `{"graph": {"type": "rmat", "scale": 8, "edge_factor": 8, "seed": 1}}`

func TestCountColdThenCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	status, raw := postJSON(t, ts.URL+"/v1/count", rmatBody)
	if status != http.StatusOK {
		t.Fatalf("cold count: status %d: %s", status, raw)
	}
	cold := decodeCount(t, raw)
	if cold.Triangles == 0 {
		t.Fatal("cold count returned zero triangles")
	}
	if cold.Cache.Graph || cold.Cache.Lotus || cold.Cache.Result {
		t.Fatalf("cold count claims cache hits: %+v", cold.Cache)
	}
	if got := s.Metrics().Get("cache.misses"); got != 3 { // graph + tune decision + lotus
		t.Fatalf("cache.misses = %d after cold count, want 3", got)
	}

	status, raw = postJSON(t, ts.URL+"/v1/count", rmatBody)
	if status != http.StatusOK {
		t.Fatalf("warm count: status %d: %s", status, raw)
	}
	warm := decodeCount(t, raw)
	if warm.Triangles != cold.Triangles {
		t.Fatalf("warm count %d != cold count %d", warm.Triangles, cold.Triangles)
	}
	if !warm.Cache.Result {
		t.Fatalf("warm count was not a result hit: %+v", warm.Cache)
	}
	if got := s.Metrics().Get("result.hits"); got != 1 {
		t.Fatalf("result.hits = %d, want 1", got)
	}

	// NoCache bypasses result memoization but still hits the
	// structure cache.
	status, raw = postJSON(t, ts.URL+"/v1/count",
		`{"graph": {"type": "rmat", "scale": 8, "edge_factor": 8, "seed": 1}, "no_cache": true}`)
	if status != http.StatusOK {
		t.Fatalf("no_cache count: status %d: %s", status, raw)
	}
	nc := decodeCount(t, raw)
	if nc.Cache.Result {
		t.Fatal("no_cache request served from the result cache")
	}
	if !nc.Cache.Graph || !nc.Cache.Lotus {
		t.Fatalf("no_cache request missed the structure caches: %+v", nc.Cache)
	}
	if nc.Triangles != cold.Triangles {
		t.Fatalf("no_cache count %d != cold count %d", nc.Triangles, cold.Triangles)
	}
}

func TestCacheEviction(t *testing.T) {
	// A budget of a few KiB holds roughly one small graph + structure
	// pair, so a sweep of distinct graphs must evict.
	s, ts := newTestServer(t, Config{CacheBytes: 8 << 10})
	for seed := 1; seed <= 4; seed++ {
		body := fmt.Sprintf(`{"graph": {"type": "rmat", "scale": 7, "edge_factor": 8, "seed": %d}}`, seed)
		if status, raw := postJSON(t, ts.URL+"/v1/count", body); status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, status, raw)
		}
	}
	if got := s.Metrics().Get("cache.evictions"); got == 0 {
		t.Fatalf("no evictions after sweeping %d graphs through an 8 KiB budget (bytes=%d entries=%d)",
			4, s.Metrics().Get("cache.bytes"), s.Metrics().Get("cache.entries"))
	}
	// The budget holds after the sweep.
	if got := s.Metrics().Get("cache.bytes"); got > 8<<10 {
		t.Fatalf("cache.bytes = %d exceeds the %d budget", got, 8<<10)
	}
}

func TestSingleFlightCollapsesHerd(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 16, MaxQueue: 64})
	const herd = 12
	var wg sync.WaitGroup
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/count", "application/json",
				strings.NewReader(`{"graph": {"type": "rmat", "scale": 9, "edge_factor": 8, "seed": 5}, "no_cache": true}`))
			if err != nil {
				errs <- err
				return
			}
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// However the herd interleaved, each structure was built at most
	// once: one graph build + one tune decision + one LOTUS build.
	if got := s.Metrics().Get("cache.builds"); got != 3 {
		t.Fatalf("cache.builds = %d for %d identical requests, want 3", got, herd)
	}
}

func TestTimeoutReturns504AndServerSurvives(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A 1 ms budget cannot build + preprocess + count a scale-12
	// graph; the request must come back 504 with a partial report.
	status, raw := postJSON(t, ts.URL+"/v1/count",
		`{"graph": {"type": "rmat", "scale": 12, "edge_factor": 16, "seed": 9}, "timeout_ms": 1}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, raw)
	}
	var partial struct {
		Error string `json:"error"`
		Code  string `json:"code"`
		Graph struct {
			Source string `json:"source"`
		} `json:"graph"`
	}
	if err := json.Unmarshal(raw, &partial); err != nil {
		t.Fatalf("504 body is not JSON: %s", raw)
	}
	if partial.Error == "" || partial.Graph.Source == "" {
		t.Fatalf("504 report lacks error/graph context: %s", raw)
	}
	// The process survived: a normal query still works.
	if status, raw := postJSON(t, ts.URL+"/v1/count", rmatBody); status != http.StatusOK {
		t.Fatalf("server unhealthy after timeout: status %d: %s", status, raw)
	}
}

func TestBadSpecAndOrientedAndCorruptFiles(t *testing.T) {
	dir := t.TempDir()

	orientedPath := filepath.Join(dir, "oriented.lotg")
	f, err := os.Create(orientedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Complete(8).Orient().WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	corruptPath := filepath.Join(dir, "corrupt.lotg")
	if err := os.WriteFile(corruptPath, []byte("LOTGgarbage-not-a-graph"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{AllowFiles: true})
	cases := []struct {
		name, body string
		wantMin    int // lowest acceptable status
		wantMax    int
	}{
		{"unknown type", `{"graph": {"type": "nope"}}`, 400, 400},
		{"oversized scale", `{"graph": {"type": "rmat", "scale": 40, "edge_factor": 8}}`, 400, 400},
		{"unknown field", `{"graph": {"type": "rmat", "scale": 8, "edge_factor": 8}, "typo_knob": 1}`, 400, 400},
		{"unknown algorithm", `{"graph": {"type": "rmat", "scale": 8, "edge_factor": 8}, "algorithm": "quantum"}`, 400, 400},
		{"oriented file", fmt.Sprintf(`{"graph": {"type": "file", "path": %q}}`, orientedPath), 400, 400},
		{"corrupt file", fmt.Sprintf(`{"graph": {"type": "file", "path": %q}}`, corruptPath), 400, 599},
		{"missing file", fmt.Sprintf(`{"graph": {"type": "file", "path": %q}}`, filepath.Join(dir, "absent.lotg")), 400, 599},
	}
	for _, tc := range cases {
		status, raw := postJSON(t, ts.URL+"/v1/count", tc.body)
		if status < tc.wantMin || status > tc.wantMax {
			t.Fatalf("%s: status %d outside [%d, %d]: %s", tc.name, status, tc.wantMin, tc.wantMax, raw)
		}
		var je map[string]any
		if err := json.Unmarshal(raw, &je); err != nil {
			t.Fatalf("%s: error body is not JSON: %s", tc.name, raw)
		}
		// Every failure leaves the server serving.
		if status, _ := postJSON(t, ts.URL+"/v1/count", rmatBody); status != http.StatusOK {
			t.Fatalf("server stopped serving after %q", tc.name)
		}
	}
}

func TestFileSpecsGatedByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // AllowFiles off
	status, raw := postJSON(t, ts.URL+"/v1/count", `{"graph": {"type": "file", "path": "/etc/hostname"}}`)
	if status != http.StatusBadRequest {
		t.Fatalf("file spec without -allow-files: status %d, want 400: %s", status, raw)
	}
}

func TestGracefulDrain(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park a slow request in flight, then drain.
	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		close(started)
		resp, err := http.Post(ts.URL+"/v1/count", "application/json",
			strings.NewReader(`{"graph": {"type": "rmat", "scale": 13, "edge_factor": 16, "seed": 3}, "no_cache": true}`))
		if err != nil {
			result <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			result <- fmt.Errorf("in-flight request got status %d during drain", resp.StatusCode)
			return
		}
		result <- nil
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the request reach the engine
	s.BeginDrain()

	// Draining: health flips to 503 and new API requests are refused.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: status %d, want 503", resp.StatusCode)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/count", rmatBody); status != http.StatusServiceUnavailable {
		t.Fatalf("new request while draining: status %d, want 503", status)
	}
	// The in-flight request still completes with 200.
	select {
	case err := <-result:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request did not finish during drain")
	}
}

func TestAdmissionQueueBound(t *testing.T) {
	// One slot, no queue: a second concurrent request must get 429.
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	release := make(chan struct{})
	firstIn := make(chan struct{}, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A big cold request occupies the only slot.
		firstIn <- struct{}{}
		resp, err := http.Post(ts.URL+"/v1/count", "application/json",
			strings.NewReader(`{"graph": {"type": "rmat", "scale": 14, "edge_factor": 16, "seed": 8}, "no_cache": true}`))
		if err == nil {
			resp.Body.Close()
		}
		close(release)
	}()
	<-firstIn
	time.Sleep(100 * time.Millisecond)
	// Overflow concurrently: with the slot held and one queue seat,
	// a burst of waiters must spill into 429s.
	const burst = 6
	statuses := make(chan int, burst)
	var burstWG sync.WaitGroup
	for i := 0; i < burst; i++ {
		burstWG.Add(1)
		go func(i int) {
			defer burstWG.Done()
			status, _ := postJSON(t, ts.URL+"/v1/count",
				fmt.Sprintf(`{"graph": {"type": "rmat", "scale": 13, "edge_factor": 16, "seed": %d}, "timeout_ms": 500}`, 20+i))
			statuses <- status
		}(i)
	}
	burstWG.Wait()
	close(statuses)
	<-release
	wg.Wait()
	got429 := false
	for status := range statuses {
		if status == http.StatusTooManyRequests {
			got429 = true
		}
	}
	if !got429 {
		t.Fatal("queue overflow never produced a 429")
	}
}

func TestStreamSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Bad hub sets are 400s, not panics (satellite 2 end-to-end).
	status, raw := postJSON(t, ts.URL+"/v1/stream", `{"vertices": 10, "hubs": [3, 10]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("out-of-range hub: status %d, want 400: %s", status, raw)
	}
	status, raw = postJSON(t, ts.URL+"/v1/stream", `{"vertices": 10, "hubs": [3, 3]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("duplicate hub: status %d, want 400: %s", status, raw)
	}

	status, raw = postJSON(t, ts.URL+"/v1/stream",
		`{"vertices": 16, "hubs": [0, 1, 2, 3], "count_non_hub": true}`)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, raw)
	}
	var st StreamState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	// Ingest K6 over vertices 0..5; poll concurrently while it lands.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/stream/" + st.ID)
				if err != nil {
					return
				}
				readAll(t, resp)
			}
		}()
	}
	edges := `[`
	sep := ""
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			edges += fmt.Sprintf("%s[%d, %d]", sep, u, v)
			sep = ", "
		}
	}
	edges += `]`
	status, raw = postJSON(t, ts.URL+"/v1/stream/"+st.ID+"/edges", `{"add": `+edges+`}`)
	close(stop)
	wg.Wait()
	if status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, raw)
	}
	var after StreamState
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if total := after.HHH + after.HHN + after.HNN + after.NNN; total != 20 { // C(6,3)
		t.Fatalf("K6 ingest: %d triangles, want 20 (%+v)", total, after)
	}

	// Removal unwinds.
	status, raw = postJSON(t, ts.URL+"/v1/stream/"+st.ID+"/edges", `{"remove": `+edges+`}`)
	if status != http.StatusOK {
		t.Fatalf("remove: status %d: %s", status, raw)
	}
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if total := after.HHH + after.HHN + after.HNN + after.NNN; total != 0 || after.Edges != 0 {
		t.Fatalf("after removing every edge: %+v, want zeros", after)
	}

	// Delete, then the session is gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stream/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/stream/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session answered %d, want 404", resp.StatusCode)
	}
}

func TestTopKAndEstimate(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Hub-and-spokes: hub 0..2 dominate triangle membership.
	body := `{"graph": {"type": "hub-spokes", "hubs": 3, "leaves": 50, "attach": 3, "seed": 2}, "k": 3}`
	status, raw := postJSON(t, ts.URL+"/v1/topk", body)
	if status != http.StatusOK {
		t.Fatalf("topk: status %d: %s", status, raw)
	}
	var tk TopKResponse
	if err := json.Unmarshal(raw, &tk); err != nil {
		t.Fatal(err)
	}
	if len(tk.Vertices) != 3 {
		t.Fatalf("topk returned %d vertices, want 3", len(tk.Vertices))
	}
	for i := 1; i < len(tk.Vertices); i++ {
		if tk.Vertices[i].Triangles > tk.Vertices[i-1].Triangles {
			t.Fatalf("topk not sorted: %+v", tk.Vertices)
		}
	}

	// Exact count for the same graph, then a hybrid estimate with
	// p=1 (exact by construction) must agree.
	status, raw = postJSON(t, ts.URL+"/v1/count",
		`{"graph": {"type": "hub-spokes", "hubs": 3, "leaves": 50, "attach": 3, "seed": 2}}`)
	if status != http.StatusOK {
		t.Fatalf("count: status %d: %s", status, raw)
	}
	exact := decodeCount(t, raw)
	status, raw = postJSON(t, ts.URL+"/v1/estimate",
		`{"graph": {"type": "hub-spokes", "hubs": 3, "leaves": 50, "attach": 3, "seed": 2}, "method": "hybrid", "p": 1}`)
	if status != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", status, raw)
	}
	var er EstimateResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if uint64(er.Estimate+0.5) != exact.Triangles {
		t.Fatalf("hybrid p=1 estimate %g != exact %d", er.Estimate, exact.Triangles)
	}
	if !er.Cache.Graph {
		t.Fatal("estimate after count did not hit the graph cache")
	}

	// Estimator parameter validation.
	status, _ = postJSON(t, ts.URL+"/v1/estimate",
		`{"graph": {"type": "complete", "n": 10}, "method": "doulion", "p": 2}`)
	if status != http.StatusBadRequest {
		t.Fatalf("doulion p=2: status %d, want 400", status)
	}
}

func TestHealthzMetricsAlgorithms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/metrics", "/v1/algorithms"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("GET %s: non-JSON body %s", path, body)
		}
	}
}

// TestCacheHitIsTenTimesFaster is the acceptance criterion measured
// directly: the second identical query must be served at least 10x
// faster than the first. Result memoization makes the margin enormous
// in practice; the 10x floor keeps the test robust on loaded CI.
func TestCacheHitIsTenTimesFaster(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"graph": {"type": "rmat", "scale": 11, "edge_factor": 16, "seed": 4}}`
	startCold := time.Now()
	status, raw := postJSON(t, ts.URL+"/v1/count", body)
	coldT := time.Since(startCold)
	if status != http.StatusOK {
		t.Fatalf("cold: status %d: %s", status, raw)
	}
	startWarm := time.Now()
	status, raw = postJSON(t, ts.URL+"/v1/count", body)
	warmT := time.Since(startWarm)
	if status != http.StatusOK {
		t.Fatalf("warm: status %d: %s", status, raw)
	}
	if !decodeCount(t, raw).Cache.Result {
		t.Fatal("warm query missed the result cache")
	}
	if warmT*10 > coldT {
		t.Fatalf("warm %v not 10x faster than cold %v", warmT, coldT)
	}
}

// TestBuildCacheWaiterTimeout: a waiter whose context expires gets
// ctx.Err() while the detached build completes and lands in the cache
// for later callers — a request deadline never poisons the cache.
func TestBuildCacheWaiterTimeout(t *testing.T) {
	c := newBuildCache("t", cacheConfig{maxBytes: 1 << 20}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the wait starts
	gate := make(chan struct{})
	_, _, _, err := c.getOrBuild(ctx, "k", func(context.Context) (any, int64, error) {
		<-gate
		return "value", 5, nil
	})
	if err != context.Canceled {
		t.Fatalf("expired waiter got %v, want context.Canceled", err)
	}
	close(gate)
	// The detached build still completes and is cached.
	deadline := time.Now().Add(5 * time.Second)
	for !c.peek("k") {
		if time.Now().After(deadline) {
			t.Fatal("detached build never landed in the cache")
		}
		time.Sleep(time.Millisecond)
	}
	v, hit, _, err := c.getOrBuild(context.Background(), "k", func(context.Context) (any, int64, error) {
		t.Fatal("rebuilt a cached value")
		return nil, 0, nil
	})
	if err != nil || !hit || v != "value" {
		t.Fatalf("got (%v, %v, %v), want cached value", v, hit, err)
	}
}

// TestGraphSpecKeyStability: distinct specs get distinct keys and
// identical inline edge lists share one.
func TestGraphSpecKeyStability(t *testing.T) {
	a := GraphSpec{Type: "edges", Edges: [][2]uint32{{0, 1}, {1, 2}, {0, 2}}}
	b := GraphSpec{Type: "edges", Edges: [][2]uint32{{0, 1}, {1, 2}, {0, 2}}}
	c := GraphSpec{Type: "edges", Edges: [][2]uint32{{0, 1}, {1, 2}, {0, 3}}}
	if a.Key() != b.Key() {
		t.Fatal("identical edge lists produced different keys")
	}
	if a.Key() == c.Key() {
		t.Fatal("different edge lists share a key")
	}
	r1 := GraphSpec{Type: "rmat", Scale: 10, EdgeFactor: 16, Seed: 1}
	r2 := GraphSpec{Type: "rmat", Scale: 10, EdgeFactor: 16, Seed: 2}
	if r1.Key() == r2.Key() {
		t.Fatal("different seeds share a key")
	}
}
