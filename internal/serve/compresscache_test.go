package serve

// Tests for the compressed residency tier and the zero-alloc warm
// path: the lru.add stale-entry regression, oversized-admission
// accounting, the estimateLotusBytes upper-bound contract,
// demote→rehydrate→count equivalence, arena pooling and isolation
// under concurrency, and the AllocsPerRun gates.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
)

// TestLRUAddStaleEntryEvicted is the regression test for the stale
// resident-entry bug: re-adding a key with a value too large to admit
// used to early-return with the OLD value still resident, serving it
// forever. The refusal must evict the predecessor first.
func TestLRUAddStaleEntryEvicted(t *testing.T) {
	c := newLRU(100)
	if _, admitted := c.add("k", "old", 10); !admitted {
		t.Fatal("small value refused")
	}
	evicted, admitted := c.add("k", "new", 1000)
	if admitted {
		t.Fatal("value larger than the budget was admitted")
	}
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1 (the stale entry)", evicted)
	}
	if v, ok := c.get("k"); ok {
		t.Fatalf("stale value %v still resident after oversized re-add", v)
	}
	if c.bytes != 0 {
		t.Fatalf("cache accounts %d bytes after the stale eviction, want 0", c.bytes)
	}
}

// TestAdmitOversizedCounter: a value the budget refuses is still
// served to its waiters but must show up in <name>.admit_oversized —
// previously the drop was silent and /metrics could not tell it from
// an admission.
func TestAdmitOversizedCounter(t *testing.T) {
	met := obs.New()
	c := newBuildCache("c", cacheConfig{maxBytes: 100}, met)
	defer c.shutdown()
	v, _, rel, err := c.getOrBuild(context.Background(), "big", func(context.Context) (any, int64, error) {
		return "payload", 1000, nil
	})
	if err != nil || v != "payload" {
		t.Fatalf("oversized build not served: (%v, %v)", v, err)
	}
	rel()
	if got := met.Get("c.admit_oversized"); got != 1 {
		t.Fatalf("c.admit_oversized = %d, want 1", got)
	}
	if c.peek("big") {
		t.Fatal("oversized value resident despite refusal")
	}
}

// TestCacheCountersSurfacedInMetrics: the admission-outcome counters
// are pre-registered, so a fresh server's /metrics already lists them
// at zero (with the compressed-tier gauges once -compress-cache is
// on) instead of them popping into existence on first increment.
func TestCacheCountersSurfacedInMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{CompressCache: true})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, name := range []string{
		"cache.admit_oversized", "cache.admit_faults",
		"cache.compressed_entries", "cache.demotions", "cache.rehydrations", "cache.pool_hits",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics is missing %q", name)
		}
	}
}

// TestEstimateLotusBytesUpperBound: the sharded-routing estimate must
// never fall below what getLotus actually charges — an under-estimate
// would admit a structure that cannot be resident, so routing would
// under-shard. Checked across the 12-graph corpus and a sweep of hub
// counts.
func TestEstimateLotusBytesUpperBound(t *testing.T) {
	corpus := map[string]*graph.Graph{
		"rmat-9":      gen.RMAT(gen.DefaultRMAT(9, 8, 42)),
		"rmat-10":     gen.RMAT(gen.DefaultRMAT(10, 16, 7)),
		"chunglu":     gen.ChungLu(gen.ChungLuParams{N: 600, M: 3000, Gamma: 2.1, Seed: 3}),
		"complete-50": gen.Complete(50),
		"hub-spokes":  gen.HubAndSpokes(16, 500, 3, 5),
		"planted":     gen.PlantedTriangles(40, 100),
		"star":        gen.Star(100),
		"path":        gen.Path(64),
		"triangle":    gen.Complete(3),
		"single-edge": graph.FromEdges([]graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{}),
		"empty-ish":   gen.Ring(5),
		"bipartite":   gen.CompleteBipartite(10, 12),
	}
	for name, g := range corpus {
		for _, hubs := range []int{0, 1, 4, 16, 64, 1000} {
			lg, err := core.TryPreprocess(g, core.Options{HubCount: hubs})
			if err != nil {
				t.Fatalf("%s hubs=%d: preprocess: %v", name, hubs, err)
			}
			actual := lg.TopologyBytes() + 4*int64(lg.NumVertices())
			est := estimateLotusBytes(g, hubs)
			if est < actual {
				t.Errorf("%s hubs=%d: estimate %d under-charges actual %d", name, hubs, est, actual)
			}
		}
	}
}

// TestAppendKeyMatchesLegacyFormats pins the zero-alloc key builders
// to the exact strings the fmt.Sprintf versions produced, so cache
// key semantics survive the refactor byte for byte.
func TestAppendKeyMatchesLegacyFormats(t *testing.T) {
	cases := []struct {
		spec GraphSpec
		want string
	}{
		{GraphSpec{Type: "rmat", Scale: 10, EdgeFactor: 16, Seed: -3}, "rmat:s=10,ef=16,seed=-3"},
		{GraphSpec{Type: "chunglu", N: 600, M: 3000, Gamma: 2.1, Seed: 3}, "chunglu:n=600,m=3000,g=2.1,seed=3"},
		{GraphSpec{Type: "chunglu", N: 1, M: 0, Gamma: 3.0000000000000004, Seed: 0}, "chunglu:n=1,m=0,g=3.0000000000000004,seed=0"},
		{GraphSpec{Type: "erdos-renyi", N: 5, M: 9, Seed: 1}, "er:n=5,m=9,seed=1"},
		{GraphSpec{Type: "barabasi-albert", N: 50, M: 3, Seed: 2}, "ba:n=50,m=3,seed=2"},
		{GraphSpec{Type: "complete", N: 50}, "complete:n=50"},
		{GraphSpec{Type: "hub-spokes", Hubs: 16, Leaves: 500, Attach: 3, Seed: 5}, "hubspokes:h=16,l=500,a=3,seed=5"},
		{GraphSpec{Type: "file", Path: "/tmp/g.bin"}, "file:/tmp/g.bin"},
	}
	for _, tc := range cases {
		if got := tc.spec.Key(); got != tc.want {
			t.Errorf("Key() = %q, want %q", got, tc.want)
		}
	}
	// The edges hash form, cross-checked against fmt's %x rendering.
	es := GraphSpec{Type: "edges", Vertices: 7, Edges: [][2]uint32{{0, 1}, {1, 2}, {0, 2}}}
	got := es.Key()
	if !strings.HasPrefix(got, "edges:v=7,sha=") || len(got) != len("edges:v=7,sha=")+32 {
		t.Errorf("edges key %q has the wrong shape", got)
	}
	if want := fmt.Sprintf("edges:v=%d,sha=%s", es.Vertices, got[len("edges:v=7,sha="):]); got != want {
		t.Errorf("edges key %q disagrees with fmt rendering %q", got, want)
	}
	// And the full count key against its Sprintf predecessor.
	spec := GraphSpec{Type: "rmat", Scale: 12, EdgeFactor: 8, Seed: 9}
	for _, ff := range []float64{0, 0.15, 0.0375, 1e-9} {
		want := fmt.Sprintf("count:%s|algo=%s|hubs=%d|ff=%g|shards=%d", spec.Key(), "lotus", 256, ff, 4)
		if gotKey := string(appendCountKey(nil, &spec, "lotus", 256, ff, 4)); gotKey != want {
			t.Errorf("count key = %q, want %q", gotKey, want)
		}
	}
}

// graphChecksum mixes every offset and neighbour ID; two graphs share
// it only if they are (almost surely) bit-identical.
func graphChecksum(g *graph.Graph) uint64 {
	var h uint64 = 14695981039346656037
	for _, o := range g.Offsets() {
		h = (h ^ uint64(o)) * 1099511628211
	}
	for _, u := range g.RawNeighbors() {
		h = (h ^ uint64(u)) * 1099511628211
	}
	return h
}

// rehydrationCache builds a two-tier cache whose decoded tier cannot
// hold g, so every getOrBuild after the first is a forced rehydration
// from the compressed tier.
func rehydrationCache(t *testing.T, g *graph.Graph, met *obs.Metrics) *buildCache {
	t.Helper()
	c := newBuildCache("c", cacheConfig{maxBytes: 4 * graphBytes(g), compress: true, watermark: 0.01}, met)
	t.Cleanup(c.shutdown)
	v, _, rel, err := c.getOrBuild(context.Background(), "graph:g", func(context.Context) (any, int64, error) {
		return g, graphBytes(g), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*residentGraph).g; got != g {
		t.Fatal("fresh build returned a different graph")
	}
	rel()
	if c.peek("graph:g") {
		t.Fatal("graph admitted to a decoded tier that cannot hold it")
	}
	if !c.peekCompressed("graph:g") {
		t.Fatal("oversized graph's twin not demoted to the compressed tier")
	}
	return c
}

var errNoBuild = fmt.Errorf("build must not run: entry should rehydrate")

func failBuild(context.Context) (any, int64, error) { return nil, 0, errNoBuild }

// TestDemoteRehydrateBitIdentical: a graph that has been demoted and
// rehydrated must be bit-identical to the original — same offsets,
// same neighbour IDs, same orientation flag.
func TestDemoteRehydrateBitIdentical(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 42))
	c := rehydrationCache(t, g, obs.New())
	v, hit, rel, err := c.getOrBuild(context.Background(), "graph:g", failBuild)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if !hit {
		t.Fatal("rehydration did not report a cache hit")
	}
	rg := v.(*residentGraph)
	if rg.g == g {
		t.Fatal("rehydration returned the original pointer; expected a decoded copy")
	}
	if !reflect.DeepEqual(rg.g.Offsets(), g.Offsets()) ||
		!reflect.DeepEqual(rg.g.RawNeighbors(), g.RawNeighbors()) ||
		rg.g.Oriented != g.Oriented {
		t.Fatal("rehydrated graph is not bit-identical to the original")
	}
}

// TestRehydrationReusesPooledArena: sequential rehydrations must
// recycle one arena through the pool instead of allocating slabs per
// decode, and the whole cycle must stay within a tight allocation
// bound (flight bookkeeping only — no slab-sized allocations).
func TestRehydrationReusesPooledArena(t *testing.T) {
	met := obs.New()
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 42))
	c := rehydrationCache(t, g, met)
	ctx := context.Background()
	want := graphChecksum(g)
	cycle := func() {
		v, _, rel, err := c.getOrBuild(ctx, "graph:g", failBuild)
		if err != nil {
			t.Fatal(err)
		}
		if got := graphChecksum(v.(*residentGraph).g); got != want {
			t.Fatalf("rehydrated checksum %x, want %x", got, want)
		}
		rel()
	}
	cycle() // first rehydration populates the pool
	base := met.Get("c.pool_hits")
	misses := met.Get("c.pool_misses")
	const runs = 20
	var allocs float64
	if !raceEnabled {
		allocs = testing.AllocsPerRun(runs, cycle)
	} else {
		for i := 0; i < runs; i++ {
			cycle()
		}
	}
	// Under the race detector sync.Pool deliberately drops items to
	// stress callers, so the strict pooling accounting only holds in
	// the normal build.
	if !raceEnabled {
		if hits := met.Get("c.pool_hits") - base; hits < runs {
			t.Fatalf("pool_hits grew by %d over %d rehydrations, want every decode pooled", hits, runs)
		}
		if got := met.Get("c.pool_misses"); got != misses {
			t.Fatalf("pool_misses grew during steady-state rehydration (%d -> %d)", misses, got)
		}
	}
	// The slabs for this graph are tens of KiB; a pooled cycle spends
	// a handful of small flight/bookkeeping objects only.
	if !raceEnabled && allocs > 64 {
		t.Fatalf("rehydration cycle allocates %v objects/op, want flight bookkeeping only", allocs)
	}
}

// TestConcurrentRehydrationArenaIsolation hammers rehydration of
// several graphs from many goroutines (run under -race by make
// check): two live requests must never observe each other's arena, so
// every checksum must match its own graph.
func TestConcurrentRehydrationArenaIsolation(t *testing.T) {
	met := obs.New()
	var biggest *graph.Graph
	graphs := make([]*graph.Graph, 4)
	sums := make([]uint64, len(graphs))
	for i := range graphs {
		graphs[i] = gen.RMAT(gen.DefaultRMAT(8, 8, int64(i+1)))
		sums[i] = graphChecksum(graphs[i])
		if biggest == nil || graphBytes(graphs[i]) > graphBytes(biggest) {
			biggest = graphs[i]
		}
	}
	// Decoded tier below the smallest graph, compressed tier ample:
	// every access is a rehydration or a shared rehydration flight.
	c := newBuildCache("c", cacheConfig{maxBytes: 8 * graphBytes(biggest), compress: true, watermark: 0.001}, met)
	defer c.shutdown()
	ctx := context.Background()
	for i, g := range graphs {
		g := g
		v, _, rel, err := c.getOrBuild(ctx, fmt.Sprintf("graph:%d", i), func(context.Context) (any, int64, error) {
			return g, graphBytes(g), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = v
		rel()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for i := 0; i < 40; i++ {
				pick := rng.Intn(len(graphs))
				v, _, rel, err := c.getOrBuild(ctx, fmt.Sprintf("graph:%d", pick), failBuild)
				if err != nil {
					t.Errorf("worker %d: %v", worker, err)
					return
				}
				if got := graphChecksum(v.(*residentGraph).g); got != sums[pick] {
					t.Errorf("worker %d: graph %d checksum %x, want %x — arenas shared between live requests",
						worker, pick, got, sums[pick])
					rel()
					return
				}
				rel()
			}
		}(w)
	}
	wg.Wait()
	if met.Get("c.rehydrations") == 0 {
		t.Fatal("no rehydrations happened; the test exercised nothing")
	}
}

// discardResponseWriter is the zero-alloc sink for the gated warm-hit
// benchmark: a pre-built header map, no-op writes.
type discardResponseWriter struct{ hdr http.Header }

func (d *discardResponseWriter) Header() http.Header         { return d.hdr }
func (d *discardResponseWriter) WriteHeader(int)             {}
func (d *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }

// TestWarmCountHitZeroAlloc is the allocs/op gate of `make check`: a
// warm /v1/count hit — result-key lookup plus pre-rendered response
// write — must run at exactly zero steady-state allocations.
func TestWarmCountHitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes the allocation profile; gated in the non-race pass")
	}
	srv := New(Config{Workers: 2})
	h := srv.Handler()
	body := `{"graph":{"type":"rmat","scale":8,"edge_factor":8,"seed":1},"algorithm":"forward"}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/count", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("seeding count failed: %d: %s", rec.Code, rec.Body)
	}
	spec := GraphSpec{Type: "rmat", Scale: 8, EdgeFactor: 8, Seed: 1}
	key := appendCountKey(nil, &spec, "forward", 0, 0, 0)
	dw := &discardResponseWriter{hdr: make(http.Header, 4)}
	if !srv.warmCountHit(dw, key) {
		t.Fatal("warm lookup missed the seeded result")
	}
	allocs := testing.AllocsPerRun(500, func() {
		if !srv.warmCountHit(dw, key) {
			panic("warm hit missed mid-benchmark")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm count hit allocates %v/op, want 0", allocs)
	}
}

// TestCompressedServeEndToEnd drives the whole tier through HTTP: a
// counted graph is demoted by later traffic, then counted again after
// rehydration with identical triangles, with the demotion and
// rehydration visible in /metrics.
func TestCompressedServeEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{
		CacheBytes:      160_000,
		CompressCache:   true,
		DemoteWatermark: 0.3,
		Workers:         2,
	})
	count := func(seed int) uint64 {
		t.Helper()
		body := fmt.Sprintf(`{"graph":{"type":"rmat","scale":8,"edge_factor":8,"seed":%d},"algorithm":"forward","no_cache":true}`, seed)
		status, raw := postJSON(t, ts.URL+"/v1/count", body)
		if status != http.StatusOK {
			t.Fatalf("count seed=%d: status %d: %s", seed, status, raw)
		}
		return decodeCount(t, raw).Triangles
	}
	first := count(1)
	for seed := 2; seed <= 8; seed++ {
		count(seed)
	}
	if got := s.Metrics().Get("cache.demotions"); got == 0 {
		t.Fatal("no demotions despite traffic far over the decoded budget")
	}
	if got := s.Metrics().Get("cache.compressed_entries"); got == 0 {
		t.Fatal("compressed tier is empty despite demotions")
	}
	again := count(1)
	if again != first {
		t.Fatalf("count after demote/rehydrate = %d, want %d", again, first)
	}
	if got := s.Metrics().Get("cache.rehydrations"); got == 0 {
		t.Fatal("second count of the demoted graph did not rehydrate")
	}
	// Total residency (decoded + compressed) must beat what the raw
	// budget alone could hold — the point of the tier.
	resident := s.Metrics().Get("cache.graph_entries") + s.Metrics().Get("cache.compressed_entries")
	if resident < 8 {
		t.Fatalf("only %d graphs resident across both tiers, want all 8", resident)
	}
}

// TestCompressCacheOffUnchanged pins the default path: with the tier
// disabled nothing is demoted, no compressed gauges exist, and cached
// values stay raw *graph.Graph (no wrapping overhead).
func TestCompressCacheOffUnchanged(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	status, raw := postJSON(t, ts.URL+"/v1/count", rmatBody)
	if status != http.StatusOK {
		t.Fatalf("count: %d: %s", status, raw)
	}
	if got := s.Metrics().Get("cache.demotions"); got != 0 {
		t.Fatalf("demotions = %d with compression off", got)
	}
	s.cache.mu.Lock()
	v, ok := s.cache.lru.get("graph:" + (&GraphSpec{Type: "rmat", Scale: 8, EdgeFactor: 8, Seed: 1}).Key())
	s.cache.mu.Unlock()
	if !ok {
		t.Fatal("graph not resident")
	}
	if _, isRaw := v.(*graph.Graph); !isRaw {
		t.Fatalf("cached value is %T with compression off, want *graph.Graph", v)
	}
}
