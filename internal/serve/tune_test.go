package serve

// Tests of the structural auto-tuner's serving face: the default
// route, cache-info attribution of the routed algorithm, the
// memoized decision, the /v1/algorithms tags for the new kernels,
// and the pre-registered /metrics schema.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"lotustc/internal/obs"
)

// trigridBody is a graph the policy routes away from lotus: flat
// degrees, short rows, weak hubs.
const trigridBody = `{"graph": {"type": "trigrid", "rows": 100, "cols": 100}}`

func TestDefaultRouteIsAuto(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Tiny graph, algorithm unset: the tuner runs and takes lotus.
	status, raw := postJSON(t, ts.URL+"/v1/count", rmatBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	cr := decodeCount(t, raw)
	if cr.Algorithm != "lotus" || cr.Cache.Algorithm != "lotus" {
		t.Fatalf("tiny rmat routed to %q (cache says %q), want lotus", cr.Algorithm, cr.Cache.Algorithm)
	}
	if cr.Decision == nil || !strings.Contains(cr.Decision.Reason, "tiny graph") {
		t.Fatalf("decision block: %+v", cr.Decision)
	}
	if cr.Classes == nil {
		t.Fatal("auto-routed lotus count lost its class split")
	}
	if got := s.Metrics().Get(obs.TuneDecisionPrefix + "lotus"); got != 1 {
		t.Fatalf("tune.decision.lotus = %d, want 1", got)
	}

	// An explicit algorithm bypasses the tuner entirely.
	status, raw = postJSON(t, ts.URL+"/v1/count",
		`{"graph": {"type": "rmat", "scale": 8, "edge_factor": 8, "seed": 1}, "algorithm": "lotus", "no_cache": true}`)
	if status != http.StatusOK {
		t.Fatalf("explicit lotus: status %d: %s", status, raw)
	}
	if cr := decodeCount(t, raw); cr.Decision != nil {
		t.Fatalf("explicit request carries a tuner decision: %+v", cr.Decision)
	}
	if got := s.Metrics().Get(obs.TuneProbes); got != 1 {
		t.Fatalf("tune.probes = %d after one auto request, want 1", got)
	}
}

func TestAutoRoutesTrigridToCoverEdge(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, raw := postJSON(t, ts.URL+"/v1/count", trigridBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	cr := decodeCount(t, raw)
	if cr.Cache.Algorithm != "cover-edge" {
		t.Fatalf("trigrid routed to %q, want cover-edge (%+v)", cr.Cache.Algorithm, cr.Decision)
	}
	if want := uint64(99 * 99 * 2); cr.Triangles != want {
		t.Fatalf("trigrid count %d, want %d", cr.Triangles, want)
	}
	if cr.Classes != nil {
		t.Fatal("cover-edge count fabricated a class split")
	}

	// The decision is memoized: a second auto request hits the tune
	// cache (and, being cacheable, the result cache — whose stamp
	// still names the routed algorithm).
	status, raw = postJSON(t, ts.URL+"/v1/count", trigridBody)
	if status != http.StatusOK {
		t.Fatalf("warm status %d: %s", status, raw)
	}
	warm := decodeCount(t, raw)
	if !warm.Cache.Result || warm.Cache.Algorithm != "cover-edge" {
		t.Fatalf("warm cache stamp: %+v", warm.Cache)
	}
	if got := s.Metrics().Get(obs.TuneProbes); got != 1 {
		t.Fatalf("tune.probes = %d, want 1 (memoized)", got)
	}

	// no_cache skips the result cache but still reuses the decision.
	status, raw = postJSON(t, ts.URL+"/v1/count",
		`{"graph": {"type": "trigrid", "rows": 100, "cols": 100}, "no_cache": true}`)
	if status != http.StatusOK {
		t.Fatalf("no_cache status %d: %s", status, raw)
	}
	if got := s.Metrics().Get(obs.TuneCacheHits); got != 1 {
		t.Fatalf("tune.cache_hits = %d, want 1", got)
	}
	if got := s.Metrics().Get(obs.TuneProbes); got != 2 {
		t.Fatalf("tune.probes = %d, want 2 (each served decision publishes)", got)
	}
}

func TestDefaultAlgorithmConfig(t *testing.T) {
	// Pinning the server default to lotus restores the pre-tuner
	// behavior: no probe, no decision block.
	s, ts := newTestServer(t, Config{DefaultAlgorithm: "lotus"})
	status, raw := postJSON(t, ts.URL+"/v1/count", rmatBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if cr := decodeCount(t, raw); cr.Decision != nil || cr.Cache.Algorithm != "lotus" {
		t.Fatalf("pinned default: decision=%+v algo=%q", cr.Decision, cr.Cache.Algorithm)
	}
	if got := s.Metrics().Get(obs.TuneProbes); got != 0 {
		t.Fatalf("tune.probes = %d with pinned default, want 0", got)
	}
}

func TestAlgorithmsListsTunerFamily(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Algorithms []AlgorithmInfo `json:"algorithms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	byName := map[string]AlgorithmCaps{}
	for _, a := range body.Algorithms {
		byName[a.Name] = a.Capabilities
	}
	for _, name := range []string{"auto", "cover-edge", "degree-partition"} {
		caps, ok := byName[name]
		if !ok {
			t.Fatalf("/v1/algorithms missing %q", name)
		}
		if !caps.Cancellable || !caps.ReportsPhases || !caps.Parallel {
			t.Errorf("%s capabilities: %+v", name, caps)
		}
	}
	if byName["cover-edge"].Shardable {
		t.Error("cover-edge must not advertise shardable")
	}
	if !byName["degree-partition"].Shardable {
		t.Error("degree-partition must advertise shardable")
	}
}

func TestMetricsPreRegistered(t *testing.T) {
	// Before any request, /metrics must already carry the tuner and
	// cover-edge schema at zero — dashboards see the keys from boot.
	s, _ := newTestServer(t, Config{})
	snap := s.Metrics().Snapshot()
	for _, name := range []string{
		obs.TuneProbes, obs.TuneProbeNS, obs.TuneOverridden, obs.TuneCacheHits,
		obs.TuneDecisionPrefix + "lotus", obs.TuneDecisionPrefix + "cover-edge",
		obs.TuneDecisionPrefix + "degree-partition", obs.TuneDecisionPrefix + "auto",
		obs.CoverBFSNS, obs.CoverLevels, obs.CoverEdges, obs.CoverCountNS,
	} {
		v, ok := snap[name]
		if !ok {
			t.Errorf("metric %q not pre-registered", name)
		} else if v != 0 {
			t.Errorf("metric %q pre-registered at %d, want 0", name, v)
		}
	}
}
