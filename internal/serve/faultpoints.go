package serve

// The serving layer's fault-point catalog and the debug endpoint that
// arms it at runtime. Points are registered at init so /debug/faults
// and the -faults flag can enumerate and validate against the full
// catalog before anything fires.

import (
	"net/http"

	"lotustc/internal/faults"
)

// Fault points threaded through the serving layer. Each name marks one
// production failure site; arming it (tests, -faults, /debug/faults)
// drives the real handling path — retry, degradation or a typed HTTP
// error — exactly as a genuine failure would.
const (
	// FaultBuild fires inside a detached cache build, before the result
	// is published to the herd.
	FaultBuild = "serve.build"
	// FaultPreprocess fires at the head of LOTUS preprocessing (both
	// the monolithic and the per-shard structure builds).
	FaultPreprocess = "serve.preprocess"
	// FaultIngestApply fires at the head of a stream-ingest request,
	// before the batch touches the session.
	FaultIngestApply = "serve.ingest.apply"
	// FaultCacheAdmit fires at cache admission: the build succeeded but
	// its result is not cached (every later request rebuilds).
	FaultCacheAdmit = "serve.cache.admit"
	// FaultWALAppend fires inside the WAL append write.
	FaultWALAppend = "wal.append"
	// FaultWALFsync fires inside WAL/snapshot fsyncs.
	FaultWALFsync = "wal.fsync"
)

func init() {
	for _, p := range []string{
		FaultBuild, FaultPreprocess, FaultIngestApply,
		FaultCacheAdmit, FaultWALAppend, FaultWALFsync,
	} {
		faults.Register(p)
	}
}

// faultsConfigRequest is the POST /debug/faults body: a flag-style
// spec to arm (additive), a point to disarm, or a full reset.
type faultsConfigRequest struct {
	Spec   string `json:"spec,omitempty"`
	Disarm string `json:"disarm,omitempty"`
	Reset  bool   `json:"reset,omitempty"`
}

// handleFaultsGet lists the catalog with armed policies and counters.
func (s *Server) handleFaultsGet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"points": faults.Points()})
}

// handleFaultsPost reconfigures the registry. Only mounted under
// Config.DebugFaults — this endpoint exists to break the server on
// purpose and must never reach production routing.
func (s *Server) handleFaultsPost(w http.ResponseWriter, r *http.Request) {
	var req faultsConfigRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if req.Reset {
		faults.Reset()
	}
	if req.Disarm != "" {
		faults.Disarm(req.Disarm)
	}
	if req.Spec != "" {
		if err := faults.Configure(req.Spec); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_fault_spec", err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"points": faults.Points()})
}
