package serve

// Session durability: periodic snapshots plus the WAL from wal.go,
// and the recovery path that rebuilds every session at startup.
//
// On-disk layout under Config.DataDir:
//
//	<data-dir>/sessions/<id>/snapshot.snap   one CRC frame (see below)
//	<data-dir>/sessions/<id>/wal-<gen>.log   frames since that snapshot
//
// A snapshot pairs with exactly one WAL generation: writing a snapshot
// rotates to a fresh wal-<gen+1>.log and removes the old log, and the
// snapshot records the generation it pairs with, so recovery never
// replays a tail against the wrong base. The snapshot itself is
// written tmp + fsync + rename + dir-fsync — a crash mid-write leaves
// the previous snapshot/WAL pair intact.
//
// Recovery determinism: an exact session's per-class counts are
// order-independent functions of its edge set, so snapshot-edges +
// WAL replay restores them bit-identically. An approx session's
// reservoir state is restored exactly as persisted; its RNG is
// reseeded (see approx.TriestState), so post-restart draws are an
// equally valid continuation — unless the snapshot is the genesis
// state, in which case replaying the full WAL with the persisted seed
// reproduces the original run draw-for-draw. An auto session's
// exact->approx flip replays deterministically from the WAL batch
// order, so no explicit degrade record is needed.

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"lotustc/internal/approx"
	"lotustc/internal/compress"
	"lotustc/internal/core"
	"lotustc/internal/faults"
	"lotustc/internal/obs"
)

// durability is the server's durability configuration; a nil/empty
// dir disables persistence entirely (the pre-durability behavior).
type durability struct {
	dir           string
	syncAlways    bool
	snapshotBytes int64
}

func (d *durability) enabled() bool { return d != nil && d.dir != "" }

func (d *durability) sessionsRoot() string { return filepath.Join(d.dir, "sessions") }

func (d *durability) sessionDir(id string) string { return filepath.Join(d.sessionsRoot(), id) }

func walFileName(gen uint64) string { return fmt.Sprintf("wal-%d.log", gen) }

// ---------------------------------------------------------------
// Snapshot payload codec.

const (
	snapshotMagic   = 'S'
	snapshotVersion = 1

	snapFlagReservoir = 1 << 0 // state is a Triest reservoir, not an edge set
	snapFlagDegraded  = 1 << 1 // auto session already flipped to approx
	snapFlagNonHub    = 1 << 2 // exact counter maintains NNN too

	// Structural sanity caps for the decoder: a snapshot claiming more
	// is corrupt, not big.
	maxSnapVertices = 1 << 31
	maxSnapHubs     = 1 << 24
	maxSnapEdges    = 1 << 28
)

// sessionSnapshot is the decoded form of a persisted session.
type sessionSnapshot struct {
	mode        string
	degraded    bool
	countNonHub bool
	vertices    int
	hubs        []uint32
	budget      int64
	seed        int64
	window      uint64
	walGen      uint64
	reservoir   *approx.TriestState // non-nil: approx state
	edges       [][2]uint32         // exact edge set otherwise
}

// snapBufPool recycles snapshot payload and frame buffers across the
// periodic snapshot cadence; a busy exact session re-serializes its
// whole edge set every SnapshotBytes of WAL, so the slabs are worth
// keeping warm.
var snapBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// encodeSessionSnapshot serializes the session's full restart state
// into dst. Caller holds ss.mu, so the counters are quiescent.
func encodeSessionSnapshot(dst []byte, ss *streamSession, walGen uint64) ([]byte, error) {
	p := dst
	p = append(p, snapshotMagic, snapshotVersion)
	var modeB byte
	switch ss.mode {
	case "exact":
		modeB = 0
	case "approx":
		modeB = 1
	case "auto":
		modeB = 2
	default:
		return nil, fmt.Errorf("serve: snapshot: unknown mode %q", ss.mode)
	}
	p = append(p, modeB)
	sc := ss.sc.Load()
	var flags byte
	if sc == nil {
		flags |= snapFlagReservoir
	}
	if ss.degraded.Load() {
		flags |= snapFlagDegraded
	}
	if ss.countNonHub {
		flags |= snapFlagNonHub
	}
	p = append(p, flags)
	p = compress.AppendUvarint(p, uint64(ss.vertices))
	p = compress.AppendUvarint(p, uint64(len(ss.hubIDs)))
	for _, h := range ss.hubIDs {
		p = compress.AppendUvarint(p, uint64(h))
	}
	p = compress.AppendUvarint(p, uint64(ss.budget))
	p = compress.AppendZigzag(p, ss.degradeSeed)
	p = compress.AppendUvarint(p, ss.degradeWindow)
	p = compress.AppendUvarint(p, walGen)
	if sc != nil {
		edges := sc.SnapshotEdges(nil)
		p = compress.AppendUvarint(p, uint64(len(edges)))
		p = compress.AppendEdgeStream(p, edges)
		return p, nil
	}
	st := ss.tr.State()
	p = compress.AppendUvarint(p, uint64(st.Cap))
	p = compress.AppendUvarint(p, st.Seen)
	p = compress.AppendUvarint(p, st.Removed)
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(st.Estimate))
	p = compress.AppendUvarint(p, uint64(len(st.Edges)))
	p = compress.AppendEdgeStream(p, st.Edges)
	for _, t := range st.Times {
		p = compress.AppendUvarint(p, t)
	}
	return p, nil
}

// decodeSessionSnapshot parses a snapshot payload. The input crossed a
// process restart, so every count is bounds-checked before it sizes an
// allocation; validation of the reservoir invariants themselves is
// RestoreTriest's job.
func decodeSessionSnapshot(p []byte) (*sessionSnapshot, error) {
	pos := 0
	readU := func(what string, cap uint64) (uint64, error) {
		x, n := compress.ReadUvarint(p[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("serve: snapshot: truncated %s", what)
		}
		if cap > 0 && x > cap {
			return 0, fmt.Errorf("serve: snapshot: %s %d exceeds cap %d", what, x, cap)
		}
		pos += n
		return x, nil
	}
	if len(p) < 4 || p[0] != snapshotMagic {
		return nil, fmt.Errorf("serve: snapshot: bad magic")
	}
	if p[1] != snapshotVersion {
		return nil, fmt.Errorf("serve: snapshot: unknown version %d", p[1])
	}
	snap := &sessionSnapshot{}
	switch p[2] {
	case 0:
		snap.mode = "exact"
	case 1:
		snap.mode = "approx"
	case 2:
		snap.mode = "auto"
	default:
		return nil, fmt.Errorf("serve: snapshot: unknown mode byte %d", p[2])
	}
	flags := p[3]
	snap.degraded = flags&snapFlagDegraded != 0
	snap.countNonHub = flags&snapFlagNonHub != 0
	pos = 4

	v, err := readU("vertex count", maxSnapVertices)
	if err != nil {
		return nil, err
	}
	snap.vertices = int(v)
	nh, err := readU("hub count", maxSnapHubs)
	if err != nil {
		return nil, err
	}
	snap.hubs = make([]uint32, nh)
	for i := range snap.hubs {
		h, err := readU("hub id", math.MaxUint32)
		if err != nil {
			return nil, err
		}
		snap.hubs[i] = uint32(h)
	}
	b, err := readU("budget", math.MaxInt64)
	if err != nil {
		return nil, err
	}
	snap.budget = int64(b)
	seed, n := compress.ReadZigzag(p[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("serve: snapshot: truncated seed")
	}
	pos += n
	snap.seed = seed
	if snap.window, err = readU("window", 0); err != nil {
		return nil, err
	}
	if snap.walGen, err = readU("wal generation", 0); err != nil {
		return nil, err
	}

	if flags&snapFlagReservoir == 0 {
		ne, err := readU("edge count", maxSnapEdges)
		if err != nil {
			return nil, err
		}
		edges, consumed, err := compress.ReadEdgeStream(p[pos:], int(ne))
		if err != nil {
			return nil, fmt.Errorf("serve: snapshot: %v", err)
		}
		pos += consumed
		snap.edges = edges
		if pos != len(p) {
			return nil, fmt.Errorf("serve: snapshot: %d trailing bytes", len(p)-pos)
		}
		return snap, nil
	}

	st := &approx.TriestState{Window: snap.window}
	cp, err := readU("reservoir cap", maxSnapEdges)
	if err != nil {
		return nil, err
	}
	st.Cap = int(cp)
	if st.Seen, err = readU("stream clock", 0); err != nil {
		return nil, err
	}
	if st.Removed, err = readU("removed count", 0); err != nil {
		return nil, err
	}
	if pos+8 > len(p) {
		return nil, fmt.Errorf("serve: snapshot: truncated estimate")
	}
	st.Estimate = math.Float64frombits(binary.LittleEndian.Uint64(p[pos:]))
	pos += 8
	nr, err := readU("reservoir size", maxSnapEdges)
	if err != nil {
		return nil, err
	}
	edges, consumed, err := compress.ReadEdgeStream(p[pos:], int(nr))
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot: %v", err)
	}
	pos += consumed
	st.Edges = edges
	st.Times = make([]uint64, nr)
	for i := range st.Times {
		if st.Times[i], err = readU("arrival time", 0); err != nil {
			return nil, err
		}
	}
	if pos != len(p) {
		return nil, fmt.Errorf("serve: snapshot: %d trailing bytes", len(p)-pos)
	}
	snap.reservoir = st
	return snap, nil
}

// ---------------------------------------------------------------
// Snapshot + rotation on the live server.

// snapshotLocked persists ss's current state atomically and rotates
// the WAL to a fresh generation: snapshot.tmp + fsync + rename +
// dir-fsync, then create wal-<gen+1>.log and drop the old log. On
// success the session's durability is (re)armed — a session whose WAL
// degraded earlier becomes durable again if a later snapshot lands
// (the shutdown flush uses this as a last chance). Caller holds ss.mu.
func (s *Server) snapshotLocked(ss *streamSession) error {
	sdir := s.dur.sessionDir(ss.id)
	if err := os.MkdirAll(sdir, 0o755); err != nil {
		return err
	}
	gen := ss.walGen + 1
	pb := snapBufPool.Get().(*[]byte)
	payload, err := encodeSessionSnapshot((*pb)[:0], ss, gen)
	if err == nil {
		err = writeSnapshotFile(sdir, payload)
	}
	*pb = payload[:0]
	snapBufPool.Put(pb)
	if err != nil {
		return err
	}
	w, err := createWAL(filepath.Join(sdir, walFileName(gen)), s.dur.syncAlways)
	if err != nil {
		return err
	}
	old := ss.wal
	ss.wal, ss.walGen = w, gen
	ss.walActive.Store(true)
	ss.durDegraded.Store(false)
	if old != nil {
		_ = old.close()
		_ = os.Remove(old.path)
	}
	s.met.Add(obs.StreamSnapshots, 1)
	return nil
}

// writeSnapshotFile writes payload as one CRC frame via the atomic
// tmp/rename dance. The fsyncs pass the wal.fsync fault point with the
// same bounded retries as the live WAL.
func writeSnapshotFile(sdir string, payload []byte) error {
	fb := snapBufPool.Get().(*[]byte)
	frame := appendWALFrame((*fb)[:0], payload)
	defer func() { *fb = frame[:0]; snapBufPool.Put(fb) }()
	tmp := filepath.Join(sdir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if err := syncFile(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(sdir, "snapshot.snap")); err != nil {
		return err
	}
	return syncDir(sdir)
}

func syncFile(f *os.File) error {
	return faults.Retry(context.Background(), walRetryPolicy, func() error {
		if err := faults.Inject(FaultWALFsync); err != nil {
			return err
		}
		return f.Sync()
	})
}

func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := df.Sync()
	cerr := df.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// walAppendLocked journals a prepared batch before it is applied
// (write-ahead). WAL failure — after the bounded retries inside
// appendBatch — never fails the ingest: the session degrades to
// memory-only and keeps serving. Caller holds ss.mu.
func (s *Server) walAppendLocked(ss *streamSession, adds, rems *preparedBatch) {
	if ss.wal == nil {
		return
	}
	ss.walAdds = adds.flat(ss.walAdds[:0])
	ss.walRems = rems.flat(ss.walRems[:0])
	if err := ss.wal.appendBatch(ss.walAdds, ss.walRems); err != nil {
		s.degradeDurabilityLocked(ss)
	}
}

// degradeDurabilityLocked flips a session to memory-only after
// persistent WAL failure. The session keeps ingesting and serving;
// StreamState reports durability "degraded". Caller holds ss.mu.
func (s *Server) degradeDurabilityLocked(ss *streamSession) {
	if ss.wal != nil {
		_ = ss.wal.close()
		ss.wal = nil
	}
	ss.walActive.Store(false)
	ss.durDegraded.Store(true)
	s.met.Add(obs.StreamWALDegraded, 1)
}

// maybeSnapshotLocked rotates snapshot+WAL once the live log crosses
// the configured byte threshold, bounding both recovery replay time
// and disk growth. Caller holds ss.mu.
func (s *Server) maybeSnapshotLocked(ss *streamSession) {
	if ss.wal == nil || ss.wal.size < s.dur.snapshotBytes {
		return
	}
	if err := s.snapshotLocked(ss); err != nil {
		s.degradeDurabilityLocked(ss)
	}
}

// flushSessions snapshots every live session so a restart replays a
// fresh snapshot and an empty WAL. Sessions whose durability degraded
// get one more snapshot attempt — shutdown is the last chance to save
// their state. Called from Close after the HTTP listener has drained.
func (s *Server) flushSessions() {
	for _, ss := range s.streams.list() {
		ss.mu.Lock()
		if err := s.snapshotLocked(ss); err != nil {
			s.degradeDurabilityLocked(ss)
		}
		if ss.wal != nil {
			_ = ss.wal.close()
			ss.wal = nil
		}
		ss.mu.Unlock()
	}
}

// Close shuts the server down for process exit: drain, cancel
// detached builds, flush session snapshots. Call it after the HTTP
// server has stopped accepting requests. A Server abandoned without
// Close simulates a crash — that is exactly what the chaos tests do.
func (s *Server) Close() {
	s.BeginDrain()
	s.cache.shutdown()
	if s.dur.enabled() {
		s.flushSessions()
	}
}

// ---------------------------------------------------------------
// Recovery.

// Recover restores every persisted session from the data directory:
// snapshot first, then the paired WAL tail, clipping torn or corrupt
// tails at the last valid frame. Call it once after New when DataDir
// is set; until it returns, /readyz answers 503 "recovering" and the
// session endpoints refuse work. A session directory that cannot be
// recovered at all is skipped (stream.recover_skipped) and left on
// disk for inspection — one corrupt tenant must not block the rest.
func (s *Server) Recover() {
	defer s.recovering.Store(false)
	if !s.dur.enabled() {
		return
	}
	entries, err := os.ReadDir(s.dur.sessionsRoot())
	if err != nil {
		return // nothing persisted yet
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		if err := s.recoverSession(ent.Name()); err != nil {
			s.met.Add(obs.StreamRecoverSkipped, 1)
		}
	}
}

func (s *Server) recoverSession(id string) error {
	sdir := s.dur.sessionDir(id)
	raw, err := os.ReadFile(filepath.Join(sdir, "snapshot.snap"))
	if err != nil {
		return err
	}
	payload, consumed, err := decodeWALFrame(raw)
	if err != nil {
		return fmt.Errorf("serve: session %s snapshot: %w", id, err)
	}
	if consumed != len(raw) {
		return fmt.Errorf("serve: session %s snapshot: trailing bytes", id)
	}
	snap, err := decodeSessionSnapshot(payload)
	if err != nil {
		return err
	}

	ss := &streamSession{
		mode:          snap.mode,
		auto:          snap.mode == "auto",
		budget:        snap.budget,
		degradeSeed:   snap.seed,
		degradeWindow: snap.window,
		vertices:      snap.vertices,
		hubIDs:        snap.hubs,
		countNonHub:   snap.countNonHub,
		walGen:        snap.walGen,
	}
	if snap.reservoir != nil {
		tr, err := approx.RestoreTriest(snap.reservoir, snap.seed)
		if err != nil {
			return err
		}
		ss.tr = tr
		ss.publishSnapLocked()
		ss.degraded.Store(snap.degraded)
	} else {
		sc, err := core.NewStreaming(snap.vertices, snap.hubs)
		if err != nil {
			return err
		}
		sc.CountNonHub = snap.countNonHub
		for _, e := range snap.edges {
			sc.AddEdge(e[0], e[1])
		}
		ss.sc.Store(sc)
	}

	// Replay the WAL tail through the same applyLocked path as live
	// ingest — including a deterministic re-run of an auto session's
	// exact->approx flip. A missing WAL file (crash between the
	// snapshot rename and the log create) is an empty tail.
	walPath := filepath.Join(sdir, walFileName(snap.walGen))
	data, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	var frames int64
	validLen, clean := scanWALFrames(data, func(p []byte) error {
		adds, rems, err := decodeBatchRecord(p)
		if err != nil {
			return err
		}
		ab := &preparedBatch{parts: [][][2]uint32{adds}}
		rb := &preparedBatch{parts: [][][2]uint32{rems}}
		ss.applyLocked(s, ab, rb)
		frames++
		return nil
	})
	if !clean {
		if err := os.Truncate(walPath, validLen); err != nil {
			return err
		}
		s.met.Add(obs.StreamWALTruncated, 1)
	}
	w, err := openWALAppend(walPath, validLen, s.dur.syncAlways)
	if err != nil {
		return err
	}
	ss.wal = w
	ss.walActive.Store(true)
	s.streams.restore(ss, id)

	// Clear leftovers of an interrupted rotation.
	if stray, err := filepath.Glob(filepath.Join(sdir, "wal-*.log")); err == nil {
		for _, p := range stray {
			if p != walPath {
				_ = os.Remove(p)
			}
		}
	}
	_ = os.Remove(filepath.Join(sdir, "snapshot.tmp"))
	s.met.Add(obs.StreamWALRecovered, 1)
	s.met.Add(obs.StreamWALFrames, frames)
	return nil
}

// restore registers a recovered session under its original ID and
// advances the ID counter past it so newly created sessions never
// collide. Recovery ignores the MaxStreams cap on purpose: dropping a
// tenant's persisted data because an operator lowered a limit would
// be worse than briefly exceeding it.
func (r *streamRegistry) restore(ss *streamSession, id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ss.id = id
	r.sessions[id] = ss
	if n, err := strconv.ParseUint(strings.TrimPrefix(id, "s"), 10, 64); err == nil {
		for {
			cur := r.nextID.Load()
			if n <= cur || r.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
}
