package serve

// Session write-ahead log: the byte format and the file writer behind
// crash-safe streaming sessions.
//
// A WAL file is a sequence of self-delimiting frames:
//
//	frame := uvarint(len(payload)) payload crc32c(payload)
//
// with the CRC in little-endian Castagnoli form. Frames are written
// with positional writes at a tracked offset, so a failed append can
// be retried idempotently and a crash can only ever produce a torn
// *tail*: recovery scans frames until the first length/CRC violation
// and clips there, never trusting anything past it.
//
// The only record today is a batch record — one ingest batch in apply
// order, varint-delta encoded through the internal/compress
// primitives:
//
//	payload := 'B' uvarint(nAdds) edgeStream uvarint(nRems) edgeStream
//
// Apply order is preserved because replay determinism depends on it:
// an auto session's exact->approx flip point and the estimator's
// sampling draws both follow the exact edge sequence.

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"lotustc/internal/compress"
	"lotustc/internal/faults"
)

// walRecordBatch tags an ingest-batch record.
const walRecordBatch = 'B'

// maxWALPayload bounds a single frame's payload; a length prefix
// beyond it is treated as corruption rather than an allocation
// request (the decoder's input is untrusted disk state).
const maxWALPayload = 1 << 26

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendWALFrame wraps payload in a length-prefixed CRC frame.
func appendWALFrame(dst, payload []byte) []byte {
	dst = compress.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
}

// decodeWALFrame decodes one frame from the front of data, returning
// the payload and the bytes consumed.
func decodeWALFrame(data []byte) (payload []byte, consumed int, err error) {
	plen, k := compress.ReadUvarint(data)
	if k <= 0 {
		return nil, 0, fmt.Errorf("serve: wal frame: truncated length prefix")
	}
	if plen > maxWALPayload {
		return nil, 0, fmt.Errorf("serve: wal frame: payload length %d exceeds cap", plen)
	}
	start := k
	end := start + int(plen) + 4
	if end > len(data) {
		return nil, 0, fmt.Errorf("serve: wal frame: truncated payload")
	}
	payload = data[start : start+int(plen)]
	want := binary.LittleEndian.Uint32(data[start+int(plen) : end])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, 0, fmt.Errorf("serve: wal frame: CRC mismatch")
	}
	return payload, end, nil
}

// scanWALFrames walks data frame by frame, calling fn on each valid
// payload. It returns the length of the clean prefix and whether the
// whole input was clean: a torn or corrupt tail (or a frame whose
// record fn rejects) stops the scan with clean=false, and everything
// before it remains trustworthy — the crash-recovery contract.
func scanWALFrames(data []byte, fn func(payload []byte) error) (validLen int64, clean bool) {
	pos := 0
	for pos < len(data) {
		payload, consumed, err := decodeWALFrame(data[pos:])
		if err != nil {
			return int64(pos), false
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return int64(pos), false
			}
		}
		pos += consumed
	}
	return int64(pos), true
}

// appendBatchRecord encodes one prepared ingest batch in apply order.
func appendBatchRecord(dst []byte, adds, rems [][2]uint32) []byte {
	dst = append(dst, walRecordBatch)
	dst = compress.AppendUvarint(dst, uint64(len(adds)))
	dst = compress.AppendEdgeStream(dst, adds)
	dst = compress.AppendUvarint(dst, uint64(len(rems)))
	return compress.AppendEdgeStream(dst, rems)
}

// decodeBatchRecord decodes a batch record payload.
func decodeBatchRecord(p []byte) (adds, rems [][2]uint32, err error) {
	if len(p) == 0 || p[0] != walRecordBatch {
		return nil, nil, fmt.Errorf("serve: wal record: unknown kind")
	}
	pos := 1
	readSide := func() ([][2]uint32, error) {
		n, k := compress.ReadUvarint(p[pos:])
		if k <= 0 || n > maxWALPayload {
			return nil, fmt.Errorf("serve: wal record: bad edge count")
		}
		pos += k
		edges, consumed, err := compress.ReadEdgeStream(p[pos:], int(n))
		if err != nil {
			return nil, fmt.Errorf("serve: wal record: %v", err)
		}
		pos += consumed
		return edges, nil
	}
	if adds, err = readSide(); err != nil {
		return nil, nil, err
	}
	if rems, err = readSide(); err != nil {
		return nil, nil, err
	}
	if pos != len(p) {
		return nil, nil, fmt.Errorf("serve: wal record: %d trailing bytes", len(p)-pos)
	}
	return adds, rems, nil
}

// ---------------------------------------------------------------
// File writer.

// sessionWAL appends frames to one session's live WAL file. Writes
// are positional at a tracked offset, so retrying a failed append
// overwrites the same region instead of duplicating the batch —
// replaying a batch twice would bias an approx session's estimator
// even though the exact counter dedups. Guarded by the session mutex
// like the counters it journals.
type sessionWAL struct {
	path       string
	f          *os.File
	size       int64
	syncAlways bool
	rec, buf   []byte // encode scratch, reused across batches
}

// walRetryPolicy bounds the append/fsync retry loops: a handful of
// quick attempts with jitter, then the caller degrades the session to
// memory-only rather than failing ingest.
var walRetryPolicy = faults.RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}

// createWAL creates (truncating) a fresh WAL file.
func createWAL(path string, syncAlways bool) (*sessionWAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &sessionWAL{path: path, f: f, syncAlways: syncAlways}, nil
}

// openWALAppend opens an existing WAL for appends after size bytes of
// validated prefix (recovery clips torn tails before calling this).
func openWALAppend(path string, size int64, syncAlways bool) (*sessionWAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &sessionWAL{path: path, f: f, size: size, syncAlways: syncAlways}, nil
}

// appendBatch journals one prepared batch: encode, positional write
// (retried — idempotent by construction), then fsync per the sync
// policy (retried separately so a sync retry never rewrites data).
// Both phases pass their fault points; injected and real errors share
// one path.
func (w *sessionWAL) appendBatch(adds, rems [][2]uint32) error {
	w.rec = appendBatchRecord(w.rec[:0], adds, rems)
	w.buf = appendWALFrame(w.buf[:0], w.rec)
	err := faults.Retry(context.Background(), walRetryPolicy, func() error {
		if err := faults.Inject(FaultWALAppend); err != nil {
			return err
		}
		n, err := w.f.WriteAt(w.buf, w.size)
		if err != nil {
			return err
		}
		if n != len(w.buf) {
			return fmt.Errorf("serve: wal short write: %d of %d bytes", n, len(w.buf))
		}
		return nil
	})
	if err != nil {
		return err
	}
	w.size += int64(len(w.buf))
	return w.sync()
}

// sync flushes the file per the policy, through the wal.fsync fault
// point with bounded retries.
func (w *sessionWAL) sync() error {
	if !w.syncAlways {
		return nil
	}
	return faults.Retry(context.Background(), walRetryPolicy, func() error {
		if err := faults.Inject(FaultWALFsync); err != nil {
			return err
		}
		return w.f.Sync()
	})
}

func (w *sessionWAL) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
