package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
)

// Generation limits. A resident service builds graphs straight from
// request bodies, so every knob that sizes an allocation is bounded
// here: an unvalidated spec is how a single request turns into an
// out-of-memory kill of a process serving everyone else.
const (
	maxRMATScale   = 27      // 2^27 vertices ≈ 1 GiB of offsets alone
	maxEdgeFactor  = 256     //
	maxGenVertices = 1 << 27 //
	maxGenEdges    = 1 << 30 //
	maxCompleteN   = 1 << 12 // K_n stores n(n-1) directed edges
	maxInlineEdges = 1 << 22 // inline JSON edge lists
)

// GraphSpec names an input graph. Exactly one Type is selected; the
// other fields parameterize it. The canonical Key of a spec is the
// graph half of every cache key, so two requests that mean the same
// graph always share one cached instance.
type GraphSpec struct {
	// Type selects the source: "rmat", "chunglu", "erdos-renyi",
	// "barabasi-albert", "trigrid", "complete", "hub-spokes", "file"
	// (a binary graph saved by lotus-gen / SaveGraph; requires
	// -allow-files) or "edges" (an inline edge list).
	Type string `json:"type"`

	// R-MAT parameters (Graph500 style).
	Scale      uint  `json:"scale,omitempty"`
	EdgeFactor int   `json:"edge_factor,omitempty"`
	Seed       int64 `json:"seed,omitempty"`

	// Chung-Lu / Erdős–Rényi / Barabási–Albert / hub-spokes sizing.
	N     int     `json:"n,omitempty"`
	M     int     `json:"m,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`

	// Hub-spokes shape.
	Hubs   int `json:"hubs,omitempty"`
	Leaves int `json:"leaves,omitempty"`
	Attach int `json:"attach,omitempty"`

	// Triangulated grid (road-network analog) dimensions.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`

	// File source.
	Path string `json:"path,omitempty"`

	// Inline edge list; Vertices pins |V| (0 infers from max ID).
	Edges    [][2]uint32 `json:"edges,omitempty"`
	Vertices int         `json:"vertices,omitempty"`
}

// Validate checks the spec against the generation limits before any
// allocation happens. allowFiles gates the "file" type: a public
// endpoint must not be a primitive for probing the server's
// filesystem.
func (s *GraphSpec) Validate(allowFiles bool) error {
	switch s.Type {
	case "rmat":
		if s.Scale < 1 || s.Scale > maxRMATScale {
			return fmt.Errorf("rmat scale %d out of range [1, %d]", s.Scale, maxRMATScale)
		}
		if s.EdgeFactor < 1 || s.EdgeFactor > maxEdgeFactor {
			return fmt.Errorf("rmat edge_factor %d out of range [1, %d]", s.EdgeFactor, maxEdgeFactor)
		}
	case "chunglu":
		if s.N < 1 || s.N > maxGenVertices {
			return fmt.Errorf("chunglu n %d out of range [1, %d]", s.N, maxGenVertices)
		}
		if s.M < 0 || s.M > maxGenEdges {
			return fmt.Errorf("chunglu m %d out of range [0, %d]", s.M, maxGenEdges)
		}
		if s.Gamma <= 1 || s.Gamma >= 4 {
			return fmt.Errorf("chunglu gamma %g out of range (1, 4)", s.Gamma)
		}
	case "erdos-renyi":
		if s.N < 1 || s.N > maxGenVertices {
			return fmt.Errorf("erdos-renyi n %d out of range [1, %d]", s.N, maxGenVertices)
		}
		if s.M < 0 || s.M > maxGenEdges {
			return fmt.Errorf("erdos-renyi m %d out of range [0, %d]", s.M, maxGenEdges)
		}
	case "barabasi-albert":
		if s.N < 1 || s.N > maxGenVertices {
			return fmt.Errorf("barabasi-albert n %d out of range [1, %d]", s.N, maxGenVertices)
		}
		if s.M < 1 || s.M > 1024 {
			return fmt.Errorf("barabasi-albert m %d out of range [1, 1024]", s.M)
		}
	case "trigrid":
		if s.Rows < 1 || s.Cols < 1 {
			return fmt.Errorf("trigrid needs rows and cols >= 1")
		}
		if s.Rows > maxGenVertices || s.Cols > maxGenVertices || s.Rows*s.Cols > maxGenVertices {
			return fmt.Errorf("trigrid %dx%d exceeds %d vertices", s.Rows, s.Cols, maxGenVertices)
		}
	case "complete":
		if s.N < 1 || s.N > maxCompleteN {
			return fmt.Errorf("complete n %d out of range [1, %d]", s.N, maxCompleteN)
		}
	case "hub-spokes":
		if s.Hubs < 1 || s.Hubs > 1<<12 {
			return fmt.Errorf("hub-spokes hubs %d out of range [1, %d]", s.Hubs, 1<<12)
		}
		if s.Leaves < 0 || s.Leaves > maxGenVertices {
			return fmt.Errorf("hub-spokes leaves %d out of range [0, %d]", s.Leaves, maxGenVertices)
		}
		if s.Attach < 1 || s.Attach > s.Hubs {
			return fmt.Errorf("hub-spokes attach %d out of range [1, hubs]", s.Attach)
		}
	case "file":
		if !allowFiles {
			return fmt.Errorf("file graph specs are disabled (start the server with -allow-files)")
		}
		if s.Path == "" {
			return fmt.Errorf("file spec needs a path")
		}
	case "edges":
		if len(s.Edges) == 0 {
			return fmt.Errorf("edges spec needs at least one edge")
		}
		if len(s.Edges) > maxInlineEdges {
			return fmt.Errorf("edges spec has %d edges, limit %d", len(s.Edges), maxInlineEdges)
		}
		if s.Vertices < 0 || s.Vertices > maxGenVertices {
			return fmt.Errorf("edges vertices %d out of range [0, %d]", s.Vertices, maxGenVertices)
		}
	case "":
		return fmt.Errorf("graph spec needs a type")
	default:
		return fmt.Errorf("unknown graph type %q", s.Type)
	}
	return nil
}

// Key returns the canonical cache key of the spec. Inline edge lists
// are keyed by content hash so identical lists share a cache entry
// without the key itself holding the list.
func (s *GraphSpec) Key() string {
	return string(s.appendKey(nil))
}

// appendKey appends the canonical cache key to dst, byte-identical to
// Key. The warm /v1/count path rebuilds its result key per request
// into a pooled buffer, so this is strconv.Append* instead of
// fmt.Sprintf: strconv's shortest-float 'g' rendering matches fmt's
// %g exactly for float64.
func (s *GraphSpec) appendKey(dst []byte) []byte {
	switch s.Type {
	case "rmat":
		dst = append(dst, "rmat:s="...)
		dst = strconv.AppendUint(dst, uint64(s.Scale), 10)
		dst = append(dst, ",ef="...)
		dst = strconv.AppendInt(dst, int64(s.EdgeFactor), 10)
		dst = append(dst, ",seed="...)
		return strconv.AppendInt(dst, s.Seed, 10)
	case "chunglu":
		dst = append(dst, "chunglu:n="...)
		dst = strconv.AppendInt(dst, int64(s.N), 10)
		dst = append(dst, ",m="...)
		dst = strconv.AppendInt(dst, int64(s.M), 10)
		dst = append(dst, ",g="...)
		dst = strconv.AppendFloat(dst, s.Gamma, 'g', -1, 64)
		dst = append(dst, ",seed="...)
		return strconv.AppendInt(dst, s.Seed, 10)
	case "erdos-renyi":
		dst = append(dst, "er:n="...)
		dst = strconv.AppendInt(dst, int64(s.N), 10)
		dst = append(dst, ",m="...)
		dst = strconv.AppendInt(dst, int64(s.M), 10)
		dst = append(dst, ",seed="...)
		return strconv.AppendInt(dst, s.Seed, 10)
	case "barabasi-albert":
		dst = append(dst, "ba:n="...)
		dst = strconv.AppendInt(dst, int64(s.N), 10)
		dst = append(dst, ",m="...)
		dst = strconv.AppendInt(dst, int64(s.M), 10)
		dst = append(dst, ",seed="...)
		return strconv.AppendInt(dst, s.Seed, 10)
	case "trigrid":
		dst = append(dst, "trigrid:r="...)
		dst = strconv.AppendInt(dst, int64(s.Rows), 10)
		dst = append(dst, ",c="...)
		return strconv.AppendInt(dst, int64(s.Cols), 10)
	case "complete":
		dst = append(dst, "complete:n="...)
		return strconv.AppendInt(dst, int64(s.N), 10)
	case "hub-spokes":
		dst = append(dst, "hubspokes:h="...)
		dst = strconv.AppendInt(dst, int64(s.Hubs), 10)
		dst = append(dst, ",l="...)
		dst = strconv.AppendInt(dst, int64(s.Leaves), 10)
		dst = append(dst, ",a="...)
		dst = strconv.AppendInt(dst, int64(s.Attach), 10)
		dst = append(dst, ",seed="...)
		return strconv.AppendInt(dst, s.Seed, 10)
	case "file":
		dst = append(dst, "file:"...)
		return append(dst, s.Path...)
	case "edges":
		h := sha256.New()
		var buf [8]byte
		for _, e := range s.Edges {
			binary.LittleEndian.PutUint32(buf[:4], e[0])
			binary.LittleEndian.PutUint32(buf[4:], e[1])
			h.Write(buf[:])
		}
		var sum [sha256.Size]byte
		dst = append(dst, "edges:v="...)
		dst = strconv.AppendInt(dst, int64(s.Vertices), 10)
		dst = append(dst, ",sha="...)
		const hexdigits = "0123456789abcdef"
		for _, b := range h.Sum(sum[:0])[:16] {
			dst = append(dst, hexdigits[b>>4], hexdigits[b&0xf])
		}
		return dst
	default:
		dst = append(dst, "invalid:"...)
		return append(dst, s.Type...)
	}
}

// Build materializes the graph. Callers must have validated the spec;
// Build still never panics on a bad one — generator and loader errors
// come back as errors.
func (s *GraphSpec) Build() (*graph.Graph, error) {
	switch s.Type {
	case "rmat":
		return gen.RMAT(gen.DefaultRMAT(s.Scale, s.EdgeFactor, s.Seed)), nil
	case "chunglu":
		return gen.ChungLu(gen.ChungLuParams{N: s.N, M: s.M, Gamma: s.Gamma, Seed: s.Seed}), nil
	case "erdos-renyi":
		return gen.ErdosRenyi(s.N, s.M, s.Seed), nil
	case "barabasi-albert":
		return gen.BarabasiAlbert(s.N, s.M, s.Seed), nil
	case "trigrid":
		return gen.TriGrid(s.Rows, s.Cols), nil
	case "complete":
		return gen.Complete(s.N), nil
	case "hub-spokes":
		return gen.HubAndSpokes(s.Hubs, s.Leaves, s.Attach, s.Seed), nil
	case "file":
		return graph.LoadFile(s.Path)
	case "edges":
		edges := make([]graph.Edge, len(s.Edges))
		for i, e := range s.Edges {
			edges[i] = graph.Edge{U: e[0], V: e[1]}
		}
		return graph.FromEdges(edges, graph.BuildOptions{NumVertices: s.Vertices}), nil
	default:
		return nil, fmt.Errorf("unknown graph type %q", s.Type)
	}
}

// graphBytes estimates the resident footprint of a CSX graph for the
// cache budget: 8-byte offsets plus 4-byte neighbour IDs.
func graphBytes(g *graph.Graph) int64 {
	return 8*(int64(g.NumVertices())+1) + 4*g.NumDirectedEdges()
}
