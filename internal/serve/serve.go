// Package serve implements lotus-serve: a resident triangle-counting
// service over the engine registry. The point of a long-lived process
// is amortization — LOTUS preprocessing averages ~20% of end-to-end
// time (Fig 6) and graph generation/loading dwarfs even that — so the
// server keeps a size-bounded LRU of built graphs and preprocessed
// LotusGraph structures keyed by (graph spec, hub count, relabeling
// options), deduplicates concurrent cold builds with single-flight,
// and memoizes exact count reports.
//
// Robustness is the other half of the design: every request is
// validated before it allocates, bounded by a per-request timeout
// through the engine's cooperative-cancellation path, admitted
// through a concurrency semaphore with a bounded wait queue, and any
// panic that escapes the layers below is converted to a JSON 500
// while the process keeps serving. /healthz and /metrics expose
// liveness and the obs counter registry (cache hits/misses/evictions,
// queue depth, per-request phase timings).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lotustc/internal/core"
	"lotustc/internal/engine"
	"lotustc/internal/faults"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
	"lotustc/internal/sched"
	"lotustc/internal/shard"
	"lotustc/internal/tune"
)

// Config tunes a Server. The zero value is usable: every field has a
// production-lean default.
type Config struct {
	// CacheBytes budgets the graph + LOTUS structure LRU (default
	// 1 GiB).
	CacheBytes int64
	// CompressCache enables the compressed residency tier: decoded
	// graphs evicted from the cache are demoted to their
	// varint-compressed payloads (charged at SizeBytes()) instead of
	// dying, and a later request decompresses on demand into a pooled
	// arena. At a fixed CacheBytes budget this keeps several times
	// more graphs resident.
	CompressCache bool
	// DemoteWatermark splits CacheBytes when CompressCache is on: the
	// decoded tier keeps this fraction of the budget and the
	// compressed tier gets the remainder (default 0.5). Lower values
	// favor many compressed residents over few decoded ones.
	DemoteWatermark float64
	// MaxStructureBytes caps the estimated size of a single resident
	// LOTUS structure (default CacheBytes; with CompressCache on, the
	// decoded tier's budget, since only that tier can hold a decoded
	// structure). A "lotus" count whose
	// monolithic structure would exceed it is routed through the
	// sharded path instead: per-shard structures are cached as
	// independent LRU entries, so graphs too big for one cacheable
	// structure are still served warm.
	MaxStructureBytes int64
	// ResultEntries budgets the memoized exact-count reports (default
	// 512).
	ResultEntries int
	// MaxConcurrent bounds counting work admitted at once (default 4).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for admission; excess gets 429
	// (default 64).
	MaxQueue int
	// DefaultTimeout applies when a request names none (default 60s);
	// MaxTimeout clamps what a request may ask for (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Workers is the per-count scheduler width (0 = GOMAXPROCS).
	Workers int
	// AllowFiles permits {"type":"file"} graph specs.
	AllowFiles bool
	// Stream session limits.
	MaxStreams        int // concurrent sessions (default 64)
	MaxStreamVertices int // vertex universe per session (default 2^22)
	MaxStreamHubs     int // hubs per session (default 2^14)
	MaxStreamBatch    int // edges per ingest request (default 2^20)
	// MaxStreamBytes caps one stream session's resident bytes
	// (default 256 MiB). Exact sessions that cross it refuse further
	// ingest; auto sessions degrade to the bounded-memory estimator.
	MaxStreamBytes int64
	// DefaultStreamMode applies when a create request names no mode:
	// "exact", "approx" or "auto" (default "exact").
	DefaultStreamMode string
	// DataDir enables crash-safe session durability: every stream
	// session gets an append-only WAL plus periodic snapshots under
	// this directory, and Recover replays them at startup. Empty
	// disables persistence (the prior behavior).
	DataDir string
	// WALSync is the WAL fsync policy: "always" (default; fsync every
	// appended batch) or "none" (leave flushing to the OS — faster,
	// but a host crash can lose recent batches; a process crash
	// cannot).
	WALSync string
	// SnapshotBytes is the live-WAL size that triggers a snapshot +
	// WAL rotation (default 1 MiB). Smaller bounds recovery replay
	// tighter; larger amortizes snapshot cost over more batches.
	SnapshotBytes int64
	// DebugFaults mounts the /debug/faults endpoint for runtime fault
	// injection. Never enable it on a production listener.
	DebugFaults bool
	// DefaultAlgorithm applies when a count request names none
	// (default "auto": the structural tuner probes the graph once and
	// routes to the algorithm its shape favors). Set "lotus" to
	// restore the fixed pre-tuner behavior.
	DefaultAlgorithm string
}

func (c Config) withDefaults() Config {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 1 << 30
	}
	if c.CompressCache && (c.DemoteWatermark <= 0 || c.DemoteWatermark >= 1) {
		c.DemoteWatermark = defaultDemoteWatermark
	}
	if c.MaxStructureBytes <= 0 {
		c.MaxStructureBytes = c.CacheBytes
		if c.CompressCache {
			c.MaxStructureBytes = cacheConfig{maxBytes: c.CacheBytes, compress: true, watermark: c.DemoteWatermark}.decodedBudget()
		}
	}
	if c.ResultEntries <= 0 {
		c.ResultEntries = 512
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 64
	}
	if c.MaxStreamVertices <= 0 {
		c.MaxStreamVertices = 1 << 22
	}
	if c.MaxStreamHubs <= 0 {
		c.MaxStreamHubs = 1 << 14
	}
	if c.MaxStreamBatch <= 0 {
		c.MaxStreamBatch = 1 << 20
	}
	if c.MaxStreamBytes <= 0 {
		c.MaxStreamBytes = 256 << 20
	}
	if c.DefaultStreamMode == "" {
		c.DefaultStreamMode = "exact"
	}
	if c.WALSync == "" {
		c.WALSync = "always"
	}
	if c.SnapshotBytes <= 0 {
		c.SnapshotBytes = 1 << 20
	}
	if c.DefaultAlgorithm == "" {
		c.DefaultAlgorithm = "auto"
	}
	return c
}

// Server is the resident counting service. Create with New, mount
// Handler on an http.Server, and call BeginDrain before shutting the
// http.Server down so /healthz flips to draining while in-flight
// requests finish.
type Server struct {
	cfg   Config
	met   *obs.Metrics
	cache *buildCache // "graph:" and "lotus:" entries share one budget

	resMu   sync.Mutex
	results *lru // result memoization: key -> *cachedResult

	// scratch recycles per-worker kernel scratch across lotus counts
	// so the warm-structure path reuses its phase-1 bitmaps instead of
	// allocating them per request.
	scratch sync.Pool // *core.CountScratch

	sem      chan struct{}
	queued   atomic.Int64
	active   atomic.Int64
	draining atomic.Bool
	started  time.Time

	// recovering gates the session endpoints and /readyz while Recover
	// replays persisted sessions; it starts true when DataDir is set
	// and flips false exactly once, when Recover returns.
	recovering atomic.Bool
	dur        *durability

	streams *streamRegistry
	mux     *http.ServeMux
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	met := obs.New()
	s := &Server{
		cfg:     cfg,
		met:     met,
		cache:   newBuildCache("cache", cacheConfig{maxBytes: cfg.CacheBytes, compress: cfg.CompressCache, watermark: cfg.DemoteWatermark}, met),
		results: newLRU(int64(cfg.ResultEntries)),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		started: time.Now(),
		scratch: sync.Pool{New: func() any { return core.NewCountScratch() }},
		streams: newStreamRegistry(cfg, met),
		mux:     http.NewServeMux(),
		dur: &durability{
			dir:           cfg.DataDir,
			syncAlways:    cfg.WALSync != "none",
			snapshotBytes: cfg.SnapshotBytes,
		},
	}
	// With a data dir the server boots not-ready until Recover runs;
	// without one there is nothing to replay.
	s.recovering.Store(s.dur.enabled())
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleHealthz)
	if cfg.DebugFaults {
		s.mux.HandleFunc("GET /debug/faults", s.handleFaultsGet)
		s.mux.HandleFunc("POST /debug/faults", s.handleFaultsPost)
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("POST /v1/count", s.handleCount)
	s.mux.HandleFunc("POST /v1/topk", s.handleTopK)
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /v1/stream", s.handleStreamCreate)
	s.mux.HandleFunc("GET /v1/stream/{id}", s.handleStreamGet)
	s.mux.HandleFunc("DELETE /v1/stream/{id}", s.handleStreamDelete)
	s.mux.HandleFunc("POST /v1/stream/{id}/edges", s.handleStreamIngest)
	// Pre-register the tuner and cover-edge counters plus one decision
	// counter per registered algorithm, so /metrics shows the full
	// schema at zero before the first auto-routed count arrives.
	for _, name := range engine.Algorithms() {
		met.Add(obs.TuneDecisionPrefix+name, 0)
	}
	for _, name := range []string{
		obs.TuneProbes, obs.TuneProbeNS, obs.TuneOverridden, obs.TuneCacheHits,
		obs.TuneStatGiniPermille, obs.TuneStatHubCoveragePermille,
		obs.TuneStatH2HDensityPermille, obs.TuneStatAssortPermille,
		obs.CoverBFSNS, obs.CoverLevels, obs.CoverEdges, obs.CoverCountNS,
	} {
		met.Add(name, 0)
	}
	obs.Publish("lotus-serve", met)
	return s
}

// Handler returns the service's HTTP handler, wrapped in last-resort
// panic recovery: a handler bug answers one request with a JSON 500
// instead of killing the process.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.Add("serve.panics", 1)
				writeErr(w, http.StatusInternalServerError, "internal",
					fmt.Sprintf("internal error: %v", rec))
			}
		}()
		s.met.Add("serve.requests", 1)
		s.mux.ServeHTTP(w, r)
	})
}

// Metrics exposes the server's counter registry (tests, embedding).
func (s *Server) Metrics() *obs.Metrics { return s.met }

// BeginDrain flips the server into draining mode: /healthz answers
// 503 (so load balancers stop routing here) and new API requests are
// refused, while requests already admitted run to completion under
// http.Server.Shutdown.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.met.Add("serve.drains", 1)
	}
}

// ---------------------------------------------------------------
// Request plumbing: JSON decoding, error mapping, admission.

// apiErr is the uniform JSON error envelope.
type apiErr struct {
	Error  string `json:"error"`
	Code   string `json:"code"`
	Status int    `json:"status"`
}

// jsonContentType is assigned into the header map directly — one
// shared immutable slice instead of a per-request Set allocation.
var jsonContentType = []string{"application/json"}

// jsonBufPool recycles response-encoding buffers; oversized ones
// (huge topk listings) are dropped rather than pinned in the pool.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBufBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Unreachable for the API response types; guard so a future
		// unencodable field fails loudly instead of answering garbage.
		buf.Reset()
		status = http.StatusInternalServerError
		_ = enc.Encode(apiErr{Error: err.Error(), Code: "encode_error", Status: status})
	}
	h := w.Header()
	h["Content-Type"] = jsonContentType
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBufBytes {
		jsonBufPool.Put(buf)
	}
}

// renderJSON pre-renders a response exactly as writeJSON would emit
// it, for memoized results that are served as raw bytes on warm hits.
func renderJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return buf.Bytes()
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, apiErr{Error: msg, Code: code, Status: status})
}

// decodeJSON parses a bounded request body strictly: unknown fields
// are rejected so a typo'd tuning knob fails loudly instead of
// silently running with defaults.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 128<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second document in the body is a malformed request too.
	if dec.More() {
		return errors.New("request body holds more than one JSON document")
	}
	return nil
}

// errStatus classifies an error from the counting stack into an HTTP
// status: caller mistakes are 4xx, deadline expiry is 504, anything
// else is the server's fault.
func errStatus(err error) (int, string) {
	var inj *faults.InjectedError
	if errors.As(err, &inj) {
		// Injected faults surface with their own codes so chaos runs can
		// tell exercised failure paths from genuine breakage; the status
		// split mirrors the taxonomy (transient: retry elsewhere/later).
		if inj.Permanent {
			return http.StatusInternalServerError, "injected_fault"
		}
		return http.StatusServiceUnavailable, "transient_fault"
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "canceled"
	case errors.Is(err, core.ErrOriented), errors.Is(err, engine.ErrNeedsSymmetric):
		return http.StatusBadRequest, "oriented_graph"
	case errors.Is(err, core.ErrNilGraph), errors.Is(err, engine.ErrNilGraph):
		return http.StatusBadRequest, "nil_graph"
	case errors.Is(err, engine.ErrPreparedMismatch):
		// Only reachable when the mismatch survives the evict-and-retry
		// pass; the cache is in a state the server cannot repair.
		return http.StatusInternalServerError, "prepared_mismatch"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// timeout resolves a request's wall-clock budget.
func (s *Server) timeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// admit passes the request through the admission gate: draining
// refuses outright, a full wait queue answers 429, and a request
// whose deadline expires while queued answers 504 without ever
// starting work. On success the returned release must be called.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) (release func(), ok bool) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return nil, false
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.met.Add("serve.rejected", 1)
		writeErr(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("admission queue is full (%d waiting)", s.cfg.MaxQueue))
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
		// The semaphore send and ctx expiry can race: a queued request
		// whose client disconnected (or deadline passed) may still win
		// the slot. Re-check and hand the slot straight back instead of
		// spending admitted capacity on a caller that is gone.
		if ctx.Err() != nil {
			<-s.sem
			s.met.Add("serve.queue_timeouts", 1)
			writeErr(w, http.StatusGatewayTimeout, "queue_timeout",
				"request deadline expired while waiting for admission")
			return nil, false
		}
		s.active.Add(1)
		return func() { s.active.Add(-1); <-s.sem }, true
	case <-ctx.Done():
		s.queued.Add(-1)
		s.met.Add("serve.queue_timeouts", 1)
		writeErr(w, http.StatusGatewayTimeout, "queue_timeout",
			"request deadline expired while waiting for admission")
		return nil, false
	}
}

// ---------------------------------------------------------------
// Cached builds.

// getGraph returns the built graph for spec through the cache. The
// returned release pins the graph's backing storage for the caller:
// a graph rehydrated from the compressed tier lives in a pooled
// arena, and release is what lets that arena recycle once no request
// uses it. Callers must invoke release exactly once, after their last
// access to the graph.
// copySpec returns a spec a detached build closure may hold: the
// handler's pooled *CountRequest — this spec included — is reset and
// repooled the moment the handler returns, while the closure can
// outlive it. The inline edge list is cloned for the same reason: its
// backing array would be appended into by the next request.
func copySpec(spec *GraphSpec) GraphSpec {
	c := *spec
	if len(c.Edges) > 0 {
		c.Edges = append([][2]uint32(nil), c.Edges...)
	}
	return c
}

func (s *Server) getGraph(ctx context.Context, spec *GraphSpec) (*graph.Graph, bool, func(), error) {
	bspec := copySpec(spec)
	v, hit, rel, err := s.cache.getOrBuild(ctx, "graph:"+spec.Key(), func(bctx context.Context) (any, int64, error) {
		g, err := bspec.Build()
		if err != nil {
			return nil, 0, err
		}
		// Generation is not cancellable mid-build, but a build that
		// outlived shutdown must not land in the cache.
		if err := bctx.Err(); err != nil {
			return nil, 0, err
		}
		return g, graphBytes(g), nil
	})
	if err != nil {
		return nil, false, nil, err
	}
	switch g := v.(type) {
	case *graph.Graph:
		return g, hit, rel, nil
	case *residentGraph:
		return g.g, hit, rel, nil
	}
	return nil, false, nil, fmt.Errorf("serve: unexpected cache value %T for %q", v, spec.Key())
}

// lotusKey is the preprocessed-structure cache key: graph spec plus
// every option that changes the built structure (hub count and the
// relabeling front fraction).
func lotusKey(spec *GraphSpec, hubCount int, frontFraction float64) string {
	return fmt.Sprintf("lotus:%s|hubs=%d|ff=%g", spec.Key(), hubCount, frontFraction)
}

// getLotus returns the preprocessed LOTUS structure for (spec, hubs,
// front fraction) through the cache, building the graph first (also
// cached) on a miss. Builds run on a scheduler detached from the
// request so a herd of deadline-bound callers still produces one
// complete structure.
func (s *Server) getLotus(ctx context.Context, spec *GraphSpec, hubCount int, frontFraction float64) (*core.LotusGraph, bool, error) {
	bspec := copySpec(spec)
	v, hit, rel, err := s.cache.getOrBuild(ctx, lotusKey(spec, hubCount, frontFraction), func(bctx context.Context) (any, int64, error) {
		if err := faults.Inject(FaultPreprocess); err != nil {
			return nil, 0, err
		}
		// Re-acquire the graph under the build's own pin: the caller's
		// pin dies with its request, and an arena-backed graph whose
		// last pin drops mid-build would have its slabs recycled under
		// the preprocessor. Resident graphs make this a plain LRU hit.
		g, _, relG, err := s.getGraph(bctx, &bspec)
		if err != nil {
			return nil, 0, err
		}
		defer relG()
		pool := sched.NewPool(s.cfg.Workers).Bind(bctx)
		lg, err := core.TryPreprocess(g, core.Options{
			HubCount:      hubCount,
			FrontFraction: frontFraction,
			Pool:          pool,
		})
		pool.Release()
		if err != nil {
			return nil, 0, err
		}
		// A cancelled pool yields a partial structure with a nil error;
		// the context check keeps it out of the cache.
		if err := bctx.Err(); err != nil {
			return nil, 0, err
		}
		// Relabeling rides along for per-vertex queries: 4 bytes per
		// vertex on top of the Table 7 topology accounting.
		return lg, lg.TopologyBytes() + 4*int64(lg.NumVertices()), nil
	})
	if err != nil {
		return nil, false, err
	}
	// LOTUS structures are not arena-backed; the pin is a no-op.
	rel()
	return v.(*core.LotusGraph), hit, nil
}

// tuneKey is the memoized routing-decision cache key: graph spec
// plus the hub count — the only count option that changes the probe.
func tuneKey(spec *GraphSpec, hubCount int) string {
	return fmt.Sprintf("tune:%s|hubs=%d", spec.Key(), hubCount)
}

// tuneDecisionBytes is the flat LRU charge for one memoized decision:
// the struct plus its 11-entry stats map, far below any structure.
const tuneDecisionBytes = 512

// getTuneDecision resolves the auto route for (spec, hubs) through
// the cache: the structural probe runs once per resident graph spec,
// and every later auto request on it reads the memoized decision.
// Request-level kernel overrides do not exist on the serve API, so
// the decision depends on nothing else.
func (s *Server) getTuneDecision(ctx context.Context, spec *GraphSpec, hubCount int) (*tune.Decision, bool, error) {
	bspec := copySpec(spec)
	v, hit, rel, err := s.cache.getOrBuild(ctx, tuneKey(spec, hubCount), func(bctx context.Context) (any, int64, error) {
		// Own graph pin for the detached build; see getLotus.
		g, _, relG, err := s.getGraph(bctx, &bspec)
		if err != nil {
			return nil, 0, err
		}
		defer relG()
		pool := sched.NewPool(s.cfg.Workers).Bind(bctx)
		dec := tune.Analyze(g, hubCount, pool, tune.Overrides{})
		pool.Release()
		// A cancelled probe carries unspecified stats; keep it out.
		if err := bctx.Err(); err != nil {
			return nil, 0, err
		}
		return &dec, tuneDecisionBytes, nil
	})
	if err != nil {
		return nil, false, err
	}
	rel()
	return v.(*tune.Decision), hit, nil
}

// estimateLotusBytes upper-bounds what getLotus would charge the
// decoded tier for the monolithic LOTUS structure, without building
// it. It must stay an upper bound — sharded routing compares it to
// MaxStructureBytes (the decoded tier's budget once the compressed
// tier exists), and an under-estimate would admit a structure that
// can never be resident, so it would under-shard. Accounting, matched
// against the actual charge in TestEstimateLotusBytesUpperBound:
// H2H holds at most h(h-1)/2 bits plus one 8-byte word of rounding;
// HE (2 B) and NHE (4 B) entries total at most 4 bytes per oriented
// edge; the two offset arrays and the relabeling ride at 20 bytes per
// vertex plus fixed slack for the array headers.
func estimateLotusBytes(g *graph.Graph, hubCount int) int64 {
	n := g.NumVertices()
	h := int64(core.Options{HubCount: hubCount}.EffectiveHubCount(n))
	return h*(h-1)/16 + 4*g.NumEdges() + 20*int64(n) + 32
}

// autoGrid picks the smallest grid dimension whose per-shard
// structures fit the single-structure budget, clamped to [2, 16].
// clamped reports that the upper clamp fired: even 16 shards are not
// estimated to fit the budget, so residency is no longer guaranteed.
func autoGrid(estBytes, maxBytes int64) (p int, clamped bool) {
	p = int((estBytes + maxBytes - 1) / maxBytes)
	if p < 2 {
		p = 2
	}
	if p > 16 {
		return 16, true
	}
	return p, false
}

// shardPlanKey / shardKey are the sharded structure cache keys: the
// plan (relabeling + ranges) and each block's structure are separate
// LRU entries, so a graph whose monolithic structure cannot be cached
// still gets fully warm serving from p smaller entries.
func shardPlanKey(spec *GraphSpec, hubCount int, frontFraction float64, p int) string {
	return fmt.Sprintf("shardplan:%s|hubs=%d|ff=%g|p=%d", spec.Key(), hubCount, frontFraction, p)
}

func shardKey(spec *GraphSpec, hubCount int, frontFraction float64, p, b int) string {
	return fmt.Sprintf("shard:%s|hubs=%d|ff=%g|p=%d|b=%d", spec.Key(), hubCount, frontFraction, p, b)
}

// getShardGrid assembles the p-way shard grid for (spec, hubs, front
// fraction) through the cache, one entry per block plus one for the
// plan. hit reports that every piece was already resident. Assembly
// cross-checks each shard against the plan; a mismatch (a corrupt or
// stale entry) purges the keys and rebuilds once before giving up.
func (s *Server) getShardGrid(ctx context.Context, spec *GraphSpec, hubCount int, frontFraction float64, p int) (*shard.Grid, bool, error) {
	for attempt := 0; ; attempt++ {
		gr, hit, err := s.tryShardGrid(ctx, spec, hubCount, frontFraction, p)
		if err == nil || attempt > 0 || ctx.Err() != nil {
			return gr, hit, err
		}
		// Purge and rebuild once: a half-evicted plan/shard mix can
		// only come from corrupt residency, never from a clean miss.
		s.evictShardGrid(spec, hubCount, frontFraction, p)
	}
}

func (s *Server) tryShardGrid(ctx context.Context, spec *GraphSpec, hubCount int, frontFraction float64, p int) (*shard.Grid, bool, error) {
	bspec := copySpec(spec)
	v, hit, rel, err := s.cache.getOrBuild(ctx, shardPlanKey(spec, hubCount, frontFraction, p), func(bctx context.Context) (any, int64, error) {
		if err := faults.Inject(FaultPreprocess); err != nil {
			return nil, 0, err
		}
		// Own graph pin for the detached build; see getLotus.
		g, _, relG, err := s.getGraph(bctx, &bspec)
		if err != nil {
			return nil, 0, err
		}
		defer relG()
		pool := sched.NewPool(s.cfg.Workers).Bind(bctx)
		pl, err := shard.NewPlan(g, shard.Options{
			Grid:          p,
			HubCount:      hubCount,
			FrontFraction: frontFraction,
			Pool:          pool,
		})
		pool.Release()
		if err != nil {
			return nil, 0, err
		}
		if err := bctx.Err(); err != nil {
			return nil, 0, err
		}
		return pl, pl.SizeBytes(), nil
	})
	if err != nil {
		return nil, false, err
	}
	rel()
	pl := v.(*shard.Plan)
	shards := make([]*core.LotusShard, p)
	allHit := hit
	for b := 0; b < p; b++ {
		v, hitB, relB, err := s.cache.getOrBuild(ctx, shardKey(spec, hubCount, frontFraction, p, b), func(bctx context.Context) (any, int64, error) {
			if err := faults.Inject(FaultPreprocess); err != nil {
				return nil, 0, err
			}
			g, _, relG, err := s.getGraph(bctx, &bspec)
			if err != nil {
				return nil, 0, err
			}
			defer relG()
			pool := sched.NewPool(s.cfg.Workers).Bind(bctx)
			sh, err := pl.BuildShard(g, b, pool)
			pool.Release()
			if err != nil {
				return nil, 0, err
			}
			if err := bctx.Err(); err != nil {
				return nil, 0, err
			}
			return sh, sh.TopologyBytes(), nil
		})
		if err != nil {
			return nil, false, err
		}
		relB()
		shards[b] = v.(*core.LotusShard)
		allHit = allHit && hitB
	}
	gr, err := shard.Assemble(pl, shards)
	if err != nil {
		return nil, false, err
	}
	return gr, allHit, nil
}

// evictShardGrid purges every cache entry of one shard grid.
func (s *Server) evictShardGrid(spec *GraphSpec, hubCount int, frontFraction float64, p int) {
	if s.cache.remove(shardPlanKey(spec, hubCount, frontFraction, p)) {
		s.met.Add("cache.corrupt_evictions", 1)
	}
	for b := 0; b < p; b++ {
		if s.cache.remove(shardKey(spec, hubCount, frontFraction, p, b)) {
			s.met.Add("cache.corrupt_evictions", 1)
		}
	}
}

// ---------------------------------------------------------------
// /v1/count

// CountRequest asks for an exact triangle count.
type CountRequest struct {
	Graph     GraphSpec `json:"graph"`
	Algorithm string    `json:"algorithm,omitempty"`
	Workers   int       `json:"workers,omitempty"`
	// LOTUS tuning; both are part of the structure cache key.
	HubCount      int     `json:"hub_count,omitempty"`
	FrontFraction float64 `json:"front_fraction,omitempty"`
	// Shards is the grid dimension for "lotus-sharded" (0 = the
	// server's choice). Setting it with the default algorithm opts the
	// request into the sharded path explicitly.
	Shards int `json:"shards,omitempty"`
	// TimeoutMS bounds the request (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Metrics asks for the per-phase counter snapshot; such runs
	// bypass the result cache (their metrics are the point).
	Metrics bool `json:"metrics,omitempty"`
	// NoCache bypasses the result cache (structure caches still
	// apply) — for measuring, not serving.
	NoCache bool `json:"no_cache,omitempty"`
}

// CacheInfo reports which cache layers served a request, plus any
// serving-quality warning (e.g. the auto shard grid was clamped, so
// per-shard structures may overrun the single-structure budget).
type CacheInfo struct {
	Graph  bool `json:"graph_hit"`
	Lotus  bool `json:"lotus_hit"`
	Result bool `json:"result_hit"`
	// Algorithm is the algorithm the request actually ran — it
	// differs from the requested one when the auto tuner routed the
	// count or oversized-structure routing moved it to the sharded
	// path.
	Algorithm string `json:"algorithm,omitempty"`
	Warning   string `json:"warning,omitempty"`
}

// CountResponse is the run report plus cache provenance.
type CountResponse struct {
	obs.RunReport
	Cache CacheInfo `json:"cache"`
}

// cachedResult memoizes one exact count: the structured response,
// plus the response bytes pre-rendered with the all-hit cache stamp
// so a warm hit writes without re-encoding anything.
type cachedResult struct {
	resp     *CountResponse
	warmJSON []byte
}

// countReqPool / keyBufPool recycle the per-request decode target and
// result-key buffer; both are returned clean, so a pooled request
// never leaks one caller's fields into the next decode.
var countReqPool = sync.Pool{New: func() any { return new(CountRequest) }}

var keyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 192); return &b }}

// putCountReq resets and repools a request. The inline edge slice is
// kept for reuse only while small: a 4-million-edge body must not
// stay pinned in the pool.
func putCountReq(req *CountRequest) {
	edges := req.Graph.Edges
	if cap(edges) > 4096 {
		edges = nil
	}
	*req = CountRequest{}
	req.Graph.Edges = edges[:0]
	countReqPool.Put(req)
}

// appendCountKey builds the memoized-count key into dst without
// allocating; the format is byte-identical to the fmt.Sprintf it
// replaced so key semantics survive the refactor.
func appendCountKey(dst []byte, spec *GraphSpec, algo string, hubCount int, frontFraction float64, shards int) []byte {
	dst = append(dst, "count:"...)
	dst = spec.appendKey(dst)
	dst = append(dst, "|algo="...)
	dst = append(dst, algo...)
	dst = append(dst, "|hubs="...)
	dst = strconv.AppendInt(dst, int64(hubCount), 10)
	dst = append(dst, "|ff="...)
	dst = strconv.AppendFloat(dst, frontFraction, 'g', -1, 64)
	dst = append(dst, "|shards="...)
	dst = strconv.AppendInt(dst, int64(shards), 10)
	return dst
}

// warmCountHit serves a memoized count straight from its pre-rendered
// bytes: a no-alloc map lookup under the result lock, one header
// assignment, one Write. This is the steady-state path a resident
// service spends its life on; TestWarmCountHitZeroAlloc gates it at
// zero allocations per request.
func (s *Server) warmCountHit(w http.ResponseWriter, key []byte) bool {
	s.resMu.Lock()
	v, ok := s.results.getBytes(key)
	s.resMu.Unlock()
	if !ok {
		return false
	}
	s.met.Add("result.hits", 1)
	h := w.Header()
	h["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(v.(*cachedResult).warmJSON)
	return true
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	req := countReqPool.Get().(*CountRequest)
	defer putCountReq(req)
	if err := decodeJSON(r, req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if err := req.Graph.Validate(s.cfg.AllowFiles); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_graph_spec", err.Error())
		return
	}
	algo := req.Algorithm
	if algo == "" {
		algo = s.cfg.DefaultAlgorithm
	}
	if _, err := engine.Lookup(algo); err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_algorithm", err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()

	kb := keyBufPool.Get().(*[]byte)
	resultKey := appendCountKey((*kb)[:0], &req.Graph, algo, req.HubCount, req.FrontFraction, req.Shards)
	defer func() { *kb = resultKey[:0]; keyBufPool.Put(kb) }()
	useResultCache := !req.NoCache && !req.Metrics
	if useResultCache {
		if s.warmCountHit(w, resultKey) {
			return
		}
		s.met.Add("result.misses", 1)
	}

	start := time.Now()
	g, graphHit, relG, err := s.getGraph(ctx, &req.Graph)
	if err != nil {
		s.countError(w, req, algo, start, err)
		return
	}
	defer relG()
	// Resolve the auto route before anything keys off the algorithm:
	// the tuner picks the real one, and the oversized routing,
	// prepared-structure attachment, scratch reuse and class reporting
	// below all see the resolved name, so an auto request amortizes
	// structures exactly like an explicit one.
	var decision *obs.TuneDecision
	var tunePhase1, tuneIntersect string
	if algo == "auto" {
		dec, tuneHit, derr := s.getTuneDecision(ctx, &req.Graph, req.HubCount)
		if derr != nil {
			s.countError(w, req, algo, start, derr)
			return
		}
		algo = dec.Algorithm
		tunePhase1, tuneIntersect = dec.Phase1Kernel, dec.IntersectKernel
		decision = dec.Report()
		dec.Publish(s.met)
		if tuneHit {
			s.met.Add(obs.TuneCacheHits, 1)
		}
	}
	var prepared *core.LotusGraph
	var preparedGrid *shard.Grid
	var lotusHit bool
	shards := req.Shards
	// Route oversized "lotus" requests through the sharded kernel: a
	// monolithic structure bigger than the single-structure budget can
	// never be cached, but p per-shard structures each 1/p the size
	// can.
	var cacheWarning string
	if algo == "lotus" && !g.Oriented {
		if est := estimateLotusBytes(g, req.HubCount); est > s.cfg.MaxStructureBytes {
			algo = "lotus-sharded"
			if shards == 0 {
				var clamped bool
				shards, clamped = autoGrid(est, s.cfg.MaxStructureBytes)
				if clamped {
					// Even the largest grid can't honor the budget. The
					// estimate is an upper bound and per-shard H2H shrinks
					// quadratically with p, so allow 2x slack per shard
					// before refusing outright; inside the slack, serve
					// but say so instead of silently overrunning.
					if est/16 > 2*s.cfg.MaxStructureBytes {
						s.met.Add("serve.shard_clamp", 1)
						writeErr(w, http.StatusRequestEntityTooLarge, "structure_too_large",
							fmt.Sprintf("estimated structure size %d exceeds -max-structure-bytes %d even at 16 shards; raise the budget or pass an explicit shards count",
								est, s.cfg.MaxStructureBytes))
						return
					}
					s.met.Add("serve.shard_clamp", 1)
					cacheWarning = fmt.Sprintf("auto shard grid clamped to 16: estimated per-shard size %d exceeds max_structure_bytes %d; shards may not stay cache-resident",
						(est+15)/16, s.cfg.MaxStructureBytes)
				}
			}
			s.met.Add("serve.sharded_routed", 1)
		}
	}
	if !g.Oriented {
		switch algo {
		case "lotus":
			prepared, lotusHit, err = s.getLotus(ctx, &req.Graph, req.HubCount, req.FrontFraction)
		case "lotus-sharded":
			if shards == 0 {
				shards = shard.DefaultGrid
			}
			preparedGrid, lotusHit, err = s.getShardGrid(ctx, &req.Graph, req.HubCount, req.FrontFraction, shards)
			s.met.Add("serve.sharded_counts", 1)
		}
		if err != nil {
			s.countError(w, req, algo, start, err)
			return
		}
	}
	// Reusable per-worker kernel scratch: the warm-structure lotus
	// path runs with bitmaps from a previous count instead of
	// allocating fresh ones per request.
	var scratch *core.CountScratch
	if algo == "lotus" {
		scratch = s.scratch.Get().(*core.CountScratch)
		defer s.scratch.Put(scratch)
	}
	runOnce := func() (*engine.Report, error) {
		return engine.Run(ctx, g, engine.Spec{
			Algorithm:      algo,
			Workers:        firstPositive(req.Workers, s.cfg.Workers),
			CollectMetrics: req.Metrics,
			Params: engine.Params{
				HubCount:        req.HubCount,
				FrontFraction:   req.FrontFraction,
				Shards:          shards,
				Phase1Kernel:    tunePhase1,
				IntersectKernel: tuneIntersect,
				Prepared:        prepared,
				PreparedGrid:    preparedGrid,
				Scratch:         scratch,
			},
		})
	}
	rep, err := runOnce()
	if err != nil && errors.Is(err, engine.ErrPreparedMismatch) {
		// The injected structure contradicts the graph: purge the
		// corrupt entries and count again from scratch.
		if prepared != nil {
			if s.cache.remove(lotusKey(&req.Graph, req.HubCount, req.FrontFraction)) {
				s.met.Add("cache.corrupt_evictions", 1)
			}
		}
		if preparedGrid != nil {
			s.evictShardGrid(&req.Graph, req.HubCount, req.FrontFraction, shards)
		}
		prepared, preparedGrid = nil, nil
		rep, err = runOnce()
	}
	if err != nil {
		s.countError(w, req, algo, start, err)
		return
	}

	rr := obs.NewRunReport("lotus-serve")
	rr.Graph = obs.GraphInfo{Source: req.Graph.Key(), Vertices: int64(g.NumVertices()), Edges: g.NumEdges()}
	rr.Algorithm = algo
	rr.Workers = firstPositive(req.Workers, s.cfg.Workers)
	rr.Triangles = rep.Triangles
	rr.ElapsedNS = rep.Elapsed.Nanoseconds()
	rr.Metrics = rep.Metrics
	for _, p := range rep.Phases {
		rr.Phases = append(rr.Phases, obs.PhaseNS{Name: p.Name, NS: p.Duration.Nanoseconds()})
	}
	if algo == "lotus" || algo == "lotus-recursive" || algo == "lotus-sharded" || algo == "degree-partition" {
		rr.Classes = &obs.Classes{HHH: rep.HHH, HHN: rep.HHN, HNN: rep.HNN, NNN: rep.NNN}
	}
	rr.Decision = decision
	resp := &CountResponse{RunReport: *rr, Cache: CacheInfo{Graph: graphHit, Lotus: lotusHit, Algorithm: algo, Warning: cacheWarning}}
	if useResultCache {
		// Pre-render the warm variant once, at insert time, so every
		// later hit is a raw byte write.
		warm := *resp
		warm.Cache = CacheInfo{Graph: true, Lotus: true, Result: true, Algorithm: algo, Warning: cacheWarning}
		cr := &cachedResult{resp: resp, warmJSON: renderJSON(&warm)}
		s.resMu.Lock()
		s.results.add(string(resultKey), cr, 1)
		s.met.Set("result.entries", int64(s.results.len()))
		s.resMu.Unlock()
	}
	s.met.AddDuration("serve.count_ns", time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// countError answers a failed count with the classified status and a
// partial run report: the graph spec, algorithm and elapsed time are
// real; everything else is absent.
func (s *Server) countError(w http.ResponseWriter, req *CountRequest, algo string, start time.Time, err error) {
	status, code := errStatus(err)
	if status == http.StatusGatewayTimeout {
		s.met.Add("serve.timeouts", 1)
	} else if status >= http.StatusInternalServerError {
		s.met.Add("serve.errors", 1)
	}
	rr := obs.NewRunReport("lotus-serve")
	rr.Graph = obs.GraphInfo{Source: req.Graph.Key()}
	rr.Algorithm = algo
	rr.ElapsedNS = time.Since(start).Nanoseconds()
	rr.Error = err.Error()
	writeJSON(w, status, struct {
		obs.RunReport
		Code string `json:"code"`
	}{RunReport: *rr, Code: code})
}

func firstPositive(vals ...int) int {
	for _, v := range vals {
		if v > 0 {
			return v
		}
	}
	return 0
}

// ---------------------------------------------------------------
// /v1/topk — per-vertex top-k triangle participation.

// TopKRequest asks for the k vertices in the most triangles.
type TopKRequest struct {
	Graph         GraphSpec `json:"graph"`
	K             int       `json:"k,omitempty"`
	HubCount      int       `json:"hub_count,omitempty"`
	FrontFraction float64   `json:"front_fraction,omitempty"`
	Workers       int       `json:"workers,omitempty"`
	TimeoutMS     int64     `json:"timeout_ms,omitempty"`
}

// VertexCount is one top-k row, in original vertex IDs.
type VertexCount struct {
	Vertex    uint32 `json:"vertex"`
	Triangles uint64 `json:"triangles"`
}

// TopKResponse lists the top-k vertices by triangle participation.
type TopKResponse struct {
	K        int           `json:"k"`
	Vertices []VertexCount `json:"vertices"`
	Cache    CacheInfo     `json:"cache"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req TopKRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if err := req.Graph.Validate(s.cfg.AllowFiles); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_graph_spec", err.Error())
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 10000 {
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("k %d exceeds the limit of 10000", req.K))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()

	_, graphHit, relG, err := s.getGraph(ctx, &req.Graph)
	if err != nil {
		status, code := errStatus(err)
		writeErr(w, status, code, err.Error())
		return
	}
	defer relG()
	lg, lotusHit, err := s.getLotus(ctx, &req.Graph, req.HubCount, req.FrontFraction)
	if err != nil {
		status, code := errStatus(err)
		writeErr(w, status, code, err.Error())
		return
	}
	pool := sched.NewPool(firstPositive(req.Workers, s.cfg.Workers)).Bind(ctx)
	per := lg.CountPerVertex(pool)
	pool.Release()
	if err := ctx.Err(); err != nil {
		status, code := errStatus(err)
		s.met.Add("serve.timeouts", 1)
		writeErr(w, status, code, "deadline expired during per-vertex counting")
		return
	}
	// per is indexed by relabeled IDs; report original ones.
	top := topKVertices(per, lg.Relabeling, req.K)
	writeJSON(w, http.StatusOK, &TopKResponse{K: len(top), Vertices: top,
		Cache: CacheInfo{Graph: graphHit, Lotus: lotusHit}})
}

// topKVertices selects the k highest counts (ties broken by original
// vertex ID) and maps them back through the relabeling array.
func topKVertices(perNew []uint64, relabel []uint32, k int) []VertexCount {
	out := make([]VertexCount, 0, len(perNew))
	for old, nw := range relabel {
		if c := perNew[nw]; c > 0 {
			out = append(out, VertexCount{Vertex: uint32(old), Triangles: c})
		}
	}
	// Full sort is fine at the vertex counts this server admits; the
	// k cap keeps the response small, not the sort cheap.
	sortVertexCounts(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func sortVertexCounts(vc []VertexCount) {
	// Stable ordering: triangles desc, then vertex ID asc.
	sort.Slice(vc, func(i, j int) bool {
		if vc[i].Triangles != vc[j].Triangles {
			return vc[i].Triangles > vc[j].Triangles
		}
		return vc[i].Vertex < vc[j].Vertex
	})
}

// ---------------------------------------------------------------
// /v1/estimate — approximate counting.

// EstimateRequest asks for an approximate triangle count.
type EstimateRequest struct {
	Graph GraphSpec `json:"graph"`
	// Method: "doulion" (edge sparsification), "wedge" (wedge
	// sampling) or "hybrid" (LOTUS-exact hub triangles + sampled NNN).
	Method    string  `json:"method"`
	P         float64 `json:"p,omitempty"`
	Samples   int     `json:"samples,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

// EstimateResponse carries the estimate.
type EstimateResponse struct {
	Method   string    `json:"method"`
	Estimate float64   `json:"estimate"`
	Cache    CacheInfo `json:"cache"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if err := req.Graph.Validate(s.cfg.AllowFiles); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_graph_spec", err.Error())
		return
	}
	switch req.Method {
	case "doulion", "hybrid":
		if req.P <= 0 || req.P > 1 {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("%s needs p in (0, 1], got %g", req.Method, req.P))
			return
		}
	case "wedge":
		if req.Samples < 1 || req.Samples > 1<<26 {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("wedge needs samples in [1, %d], got %d", 1<<26, req.Samples))
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown estimator %q (want doulion, wedge or hybrid)", req.Method))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()

	g, graphHit, relG, err := s.getGraph(ctx, &req.Graph)
	if err != nil {
		status, code := errStatus(err)
		writeErr(w, status, code, err.Error())
		return
	}
	defer relG()
	est, err := s.estimate(ctx, g, &req)
	if err != nil {
		status, code := errStatus(err)
		if status == http.StatusGatewayTimeout {
			s.met.Add("serve.timeouts", 1)
		}
		writeErr(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, &EstimateResponse{Method: req.Method, Estimate: est,
		Cache: CacheInfo{Graph: graphHit}})
}

// ---------------------------------------------------------------
// Health and metrics.

// handleHealthz is the readiness probe, also mounted at /readyz: 503
// while draining (stop routing here, requests are finishing) or while
// startup recovery replays persisted sessions. /healthz keeps the
// readiness semantics it always had, so existing load-balancer checks
// behave identically.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if s.recovering.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

// handleLivez is the liveness probe: 200 whenever the process can
// answer HTTP at all — recovering and draining are healthy states, not
// reasons to be restarted (restarting a recovering server loops it).
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "alive",
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Gauges are sampled at snapshot time; the counters are live.
	s.met.Set("serve.queue_depth", s.queued.Load())
	s.met.Set("serve.active", s.active.Load())
	s.met.Set("serve.streams_active", int64(s.streams.len()))
	writeJSON(w, http.StatusOK, s.met.Snapshot())
}

// AlgorithmCaps is the wire form of an algorithm's capability tags.
type AlgorithmCaps struct {
	Parallel       bool `json:"parallel"`
	ReportsPhases  bool `json:"reports_phases"`
	NeedsSymmetric bool `json:"needs_symmetric"`
	Cancellable    bool `json:"cancellable"`
	Shardable      bool `json:"shardable"`
	Streaming      bool `json:"streaming"`
}

// AlgorithmInfo is one /v1/algorithms entry.
type AlgorithmInfo struct {
	Name         string        `json:"name"`
	Capabilities AlgorithmCaps `json:"capabilities"`
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	regs := engine.Registrations()
	out := make([]AlgorithmInfo, len(regs))
	for i, reg := range regs {
		out[i] = AlgorithmInfo{
			Name: reg.Name,
			Capabilities: AlgorithmCaps{
				Parallel:       reg.Caps.SupportsWorkers,
				ReportsPhases:  reg.Caps.ReportsPhases,
				NeedsSymmetric: reg.Caps.NeedsSymmetric,
				Cancellable:    reg.Caps.Cancellable,
				Shardable:      reg.Caps.Shardable,
				Streaming:      reg.Caps.Streaming,
			},
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": out})
}
