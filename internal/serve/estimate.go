package serve

import (
	"context"

	"lotustc/internal/approx"
	"lotustc/internal/core"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

// estimate dispatches to the approximate counters with a pool bound
// to the request context, so the PR 1 cancellation path bounds these
// the same way it bounds exact counts.
func (s *Server) estimate(ctx context.Context, g *graph.Graph, req *EstimateRequest) (float64, error) {
	pool := sched.NewPool(s.cfg.Workers).Bind(ctx)
	defer pool.Release()
	var est float64
	switch req.Method {
	case "doulion":
		est = approx.Doulion(g, req.P, req.Seed, pool)
	case "wedge":
		est = approx.WedgeSampling(g, req.Samples, req.Seed)
	case "hybrid":
		est = approx.Hybrid(g, req.P, req.Seed, core.Options{Pool: pool}, pool).Estimate
	}
	// A cancelled pool returns whatever partial sums the workers
	// reached; report the deadline instead of a silently-low estimate.
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return est, nil
}
