package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"lotustc/internal/core"
	"lotustc/internal/obs"
)

// streamSession is one live streaming-ingest counter. Ingest mutates
// adjacency structures and is serialized under mu (single-writer
// contract of core.Streaming); the class counters are atomics, so
// GET reads them lock-free while a batch is mid-ingest.
type streamSession struct {
	id string

	mu sync.Mutex // serializes AddEdge/RemoveEdge
	sc *core.Streaming
}

// streamRegistry holds the live sessions, bounded by Config.MaxStreams
// so an abandoning client cannot grow the process without limit.
type streamRegistry struct {
	mu       sync.Mutex
	sessions map[string]*streamSession
	nextID   atomic.Uint64
	max      int
	met      *obs.Metrics
}

func newStreamRegistry(cfg Config, met *obs.Metrics) *streamRegistry {
	return &streamRegistry{sessions: map[string]*streamSession{}, max: cfg.MaxStreams, met: met}
}

func (r *streamRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

func (r *streamRegistry) create(sc *core.Streaming) (*streamSession, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.sessions) >= r.max {
		return nil, fmt.Errorf("stream session limit reached (%d live)", r.max)
	}
	ss := &streamSession{id: fmt.Sprintf("s%d", r.nextID.Add(1)), sc: sc}
	r.sessions[ss.id] = ss
	r.met.Add("stream.created", 1)
	return ss, nil
}

func (r *streamRegistry) get(id string) (*streamSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ss, ok := r.sessions[id]
	return ss, ok
}

func (r *streamRegistry) delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[id]; !ok {
		return false
	}
	delete(r.sessions, id)
	r.met.Add("stream.deleted", 1)
	return true
}

// ---------------------------------------------------------------
// Handlers.

// StreamCreateRequest opens a streaming session over a fixed vertex
// universe with a designated hub set.
type StreamCreateRequest struct {
	Vertices int      `json:"vertices"`
	Hubs     []uint32 `json:"hubs"`
	// CountNonHub additionally maintains NNN triangles (adjacency
	// for every vertex, not just hubs).
	CountNonHub bool `json:"count_non_hub,omitempty"`
}

// StreamState is the lock-free snapshot of a session's counters.
type StreamState struct {
	ID           string `json:"id"`
	Vertices     int    `json:"vertices"`
	Hubs         int    `json:"hubs"`
	Edges        uint64 `json:"edges"`
	HubTriangles uint64 `json:"hub_triangles"`
	HHH          uint64 `json:"hhh"`
	HHN          uint64 `json:"hhn"`
	HNN          uint64 `json:"hnn"`
	NNN          uint64 `json:"nnn"`
}

func streamState(ss *streamSession) *StreamState {
	hhh, hhn, hnn, nnn := ss.sc.Classes()
	return &StreamState{
		ID:           ss.id,
		Vertices:     ss.sc.NumVertices(),
		Hubs:         ss.sc.NumHubs(),
		Edges:        ss.sc.Edges(),
		HubTriangles: ss.sc.HubTriangles(),
		HHH:          hhh, HHN: hhn, HNN: hnn, NNN: nnn,
	}
}

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var req StreamCreateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if req.Vertices < 1 || req.Vertices > s.cfg.MaxStreamVertices {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("vertices %d out of range [1, %d]", req.Vertices, s.cfg.MaxStreamVertices))
		return
	}
	if len(req.Hubs) > s.cfg.MaxStreamHubs {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%d hubs exceeds the limit of %d", len(req.Hubs), s.cfg.MaxStreamHubs))
		return
	}
	// NewStreaming validates range and uniqueness of the hub set —
	// the satellite-2 fix; before it, a stray hub ID was a panic that
	// took the whole process down.
	sc, err := core.NewStreaming(req.Vertices, req.Hubs)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_hubs", err.Error())
		return
	}
	sc.CountNonHub = req.CountNonHub
	ss, err := s.streams.create(sc)
	if err != nil {
		writeErr(w, http.StatusTooManyRequests, "stream_limit", err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, streamState(ss))
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no_such_stream", "no such stream session")
		return
	}
	// Counter reads are atomic; no session lock, so polling never
	// stalls behind a large ingest batch.
	writeJSON(w, http.StatusOK, streamState(ss))
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	if !s.streams.delete(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, "no_such_stream", "no such stream session")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// StreamIngestRequest applies a batch of edge insertions then
// removals to a session.
type StreamIngestRequest struct {
	Add    [][2]uint32 `json:"add,omitempty"`
	Remove [][2]uint32 `json:"remove,omitempty"`
}

func (s *Server) handleStreamIngest(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no_such_stream", "no such stream session")
		return
	}
	var req StreamIngestRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if n := len(req.Add) + len(req.Remove); n > s.cfg.MaxStreamBatch {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d edges exceeds the limit of %d", n, s.cfg.MaxStreamBatch))
		return
	}
	// One writer at a time; out-of-range endpoints are ignored by
	// AddEdge/RemoveEdge rather than refused, matching the loose
	// semantics of an edge stream.
	ss.mu.Lock()
	for _, e := range req.Add {
		ss.sc.AddEdge(e[0], e[1])
	}
	for _, e := range req.Remove {
		ss.sc.RemoveEdge(e[0], e[1])
	}
	ss.mu.Unlock()
	s.met.Add("stream.edges_ingested", int64(len(req.Add)+len(req.Remove)))
	writeJSON(w, http.StatusOK, streamState(ss))
}
