package serve

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"lotustc/internal/approx"
	"lotustc/internal/core"
	"lotustc/internal/faults"
	"lotustc/internal/obs"
	"lotustc/internal/sched"
)

// streamConfidence is the confidence level of the error bounds
// reported by approximate sessions.
const streamConfidence = 0.95

// streamSession is one live streaming-ingest counter, in one of two
// runtime states:
//
//   - exact: `sc` holds the core.Streaming counter (full per-vertex
//     adjacency, exact per-class counts). Its atomics make GET
//     lock-free while ingest runs.
//   - approx: `tr` holds a fixed-memory Triest reservoir. Triest has
//     no atomic counters, so after every batch the writer publishes
//     an immutable snapshot into `snap`; GET reads the latest
//     snapshot lock-free, one batch stale at worst — the same
//     monotone-snapshot contract the exact atomics give.
//
// Sessions created in "auto" mode start exact and degrade to approx
// when their resident bytes cross the session budget; `sc` is an
// atomic pointer so the flip is safe against concurrent GETs (a
// straggler holding the old counter reads stale-but-consistent
// atomics until it drops the reference).
//
// Ingest mutates counter structures and is serialized under mu — the
// single-writer contract of both core.Streaming and approx.Triest.
type streamSession struct {
	id     string
	mode   string // configured: "exact" | "approx" | "auto"
	auto   bool
	budget int64 // resident-byte budget for this session

	mu sync.Mutex // serializes ingest and the exact->approx flip
	sc atomic.Pointer[core.Streaming]
	tr *approx.Triest // guarded by mu; non-nil once approx

	// degradeSeed/degradeWindow carry the estimator knobs an auto
	// session applies if it later degrades; they are kept for every
	// mode because snapshots persist them for deterministic recovery.
	degradeSeed   int64
	degradeWindow uint64

	// Creation parameters, retained verbatim for snapshots: recovery
	// rebuilds the exact counter's universe from them, and hub order
	// matters (core.Streaming assigns dense hub indices in input
	// order, and bit-identical recovery depends on the same mapping).
	vertices    int
	hubIDs      []uint32
	countNonHub bool

	// Durability plumbing (nil / zero when the server runs without a
	// data dir). wal and the scratch slices are guarded by mu;
	// walActive/durDegraded are atomics so streamState stays lock-free.
	walGen           uint64
	wal              *sessionWAL
	walAdds, walRems [][2]uint32
	walActive        atomic.Bool
	durDegraded      atomic.Bool

	snap     atomic.Pointer[approxSnapshot]
	degraded atomic.Bool
}

// approxSnapshot is the immutable post-batch state of an approx
// session, published for lock-free GET.
type approxSnapshot struct {
	estimate   float64
	errorBound float64
	edgesSeen  uint64
	removed    uint64
	reservoir  int
	resCap     int
	memBytes   int64
}

// publishSnapLocked snapshots tr for lock-free readers. Caller holds
// mu.
func (ss *streamSession) publishSnapLocked() {
	tr := ss.tr
	ss.snap.Store(&approxSnapshot{
		estimate:   tr.Estimate(),
		errorBound: tr.ErrorBound(streamConfidence),
		edgesSeen:  tr.EdgesSeen(),
		removed:    tr.EdgesRemoved(),
		reservoir:  tr.ReservoirSize(),
		resCap:     tr.ReservoirCap(),
		memBytes:   tr.MemoryBytes(),
	})
}

// streamRegistry holds the live sessions, bounded by Config.MaxStreams
// so an abandoning client cannot grow the process without limit.
type streamRegistry struct {
	mu       sync.Mutex
	sessions map[string]*streamSession
	nextID   atomic.Uint64
	max      int
	met      *obs.Metrics
}

func newStreamRegistry(cfg Config, met *obs.Metrics) *streamRegistry {
	return &streamRegistry{sessions: map[string]*streamSession{}, max: cfg.MaxStreams, met: met}
}

func (r *streamRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// add registers a prepared session under a fresh ID.
func (r *streamRegistry) add(ss *streamSession) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.sessions) >= r.max {
		return fmt.Errorf("stream session limit reached (%d live)", r.max)
	}
	ss.id = fmt.Sprintf("s%d", r.nextID.Add(1))
	r.sessions[ss.id] = ss
	r.met.Add("stream.created", 1)
	return nil
}

func (r *streamRegistry) get(id string) (*streamSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ss, ok := r.sessions[id]
	return ss, ok
}

// take removes and returns a session, so the caller can tear down its
// durability state (close the WAL, remove the directory) after it has
// left the registry.
func (r *streamRegistry) take(id string) (*streamSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ss, ok := r.sessions[id]
	if !ok {
		return nil, false
	}
	delete(r.sessions, id)
	r.met.Add("stream.deleted", 1)
	return ss, true
}

// list snapshots the live sessions (shutdown flush iterates it).
func (r *streamRegistry) list() []*streamSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*streamSession, 0, len(r.sessions))
	for _, ss := range r.sessions {
		out = append(out, ss)
	}
	return out
}

// ---------------------------------------------------------------
// Handlers.

// StreamCreateRequest opens a streaming session.
//
// Modes: "exact" keeps full adjacency and exact per-class counts and
// refuses ingest once the session's resident bytes cross its budget;
// "approx" runs a fixed-memory Triest reservoir sized to the budget
// and reports estimates with error bounds; "auto" starts exact and
// degrades to the estimator when the budget is crossed instead of
// refusing. Empty mode takes the server default.
type StreamCreateRequest struct {
	// Vertices/Hubs define the exact counter's universe; required for
	// exact and auto modes, ignored by approx (a reservoir needs no
	// universe).
	Vertices int      `json:"vertices,omitempty"`
	Hubs     []uint32 `json:"hubs,omitempty"`
	// CountNonHub additionally maintains NNN triangles (adjacency
	// for every vertex, not just hubs).
	CountNonHub bool `json:"count_non_hub,omitempty"`
	// Mode: "exact" | "approx" | "auto" ("" = server default).
	Mode string `json:"mode,omitempty"`
	// BudgetBytes caps the session's resident memory (0 = the
	// server-wide -max-stream-bytes; larger requests are clamped to
	// it).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// Window restricts approx estimates to the trailing `window`
	// stream edges (0 = whole stream). Approx/auto only.
	Window uint64 `json:"window,omitempty"`
	// Seed makes approx sampling reproducible (0 = derived from the
	// session ID).
	Seed int64 `json:"seed,omitempty"`
}

// StreamState is the lock-free snapshot of a session's counters.
// Estimate/ErrorBound are always populated: an exact session reports
// its exact total with a zero bound, so auto-mode clients read
// `estimate ± error_bound` without caring whether degradation has
// happened (the `approx` and `degraded` flags say so explicitly).
type StreamState struct {
	ID   string `json:"id"`
	Mode string `json:"mode"`
	// Approx reports that counts are estimates; Degraded that an auto
	// session crossed its budget and switched. OverBudget flags an
	// exact session that outgrew its budget (its ingest now refused).
	Approx     bool `json:"approx"`
	Degraded   bool `json:"degraded,omitempty"`
	OverBudget bool `json:"over_budget,omitempty"`
	// Durability reports the session's persistence state: "wal" when
	// every batch is journaled, "degraded" when repeated WAL failures
	// flipped the session to memory-only (it keeps serving; its state
	// will not survive a crash), empty when the server runs without a
	// data dir.
	Durability string `json:"durability,omitempty"`

	Vertices     int    `json:"vertices,omitempty"`
	Hubs         int    `json:"hubs,omitempty"`
	Edges        uint64 `json:"edges"`
	HubTriangles uint64 `json:"hub_triangles"`
	HHH          uint64 `json:"hhh"`
	HHN          uint64 `json:"hhn"`
	HNN          uint64 `json:"hnn"`
	NNN          uint64 `json:"nnn"`

	Estimate   float64 `json:"estimate"`
	ErrorBound float64 `json:"error_bound"`
	Confidence float64 `json:"confidence"`

	ReservoirEdges int    `json:"reservoir_edges,omitempty"`
	ReservoirCap   int    `json:"reservoir_cap,omitempty"`
	EdgesRemoved   uint64 `json:"edges_removed,omitempty"`
	MemoryBytes    int64  `json:"memory_bytes"`
	BudgetBytes    int64  `json:"budget_bytes"`
}

func streamState(ss *streamSession) *StreamState {
	st := &StreamState{
		ID:          ss.id,
		Mode:        ss.mode,
		Confidence:  streamConfidence,
		BudgetBytes: ss.budget,
	}
	if ss.walActive.Load() {
		st.Durability = "wal"
	} else if ss.durDegraded.Load() {
		st.Durability = "degraded"
	}
	if sc := ss.sc.Load(); sc != nil {
		hhh, hhn, hnn, nnn := sc.Classes()
		st.Vertices = sc.NumVertices()
		st.Hubs = sc.NumHubs()
		st.Edges = sc.Edges()
		st.HubTriangles = sc.HubTriangles()
		st.HHH, st.HHN, st.HNN, st.NNN = hhh, hhn, hnn, nnn
		st.Estimate = float64(st.HubTriangles + nnn)
		st.MemoryBytes = sc.MemoryBytes()
		st.OverBudget = !ss.auto && st.MemoryBytes > ss.budget
		return st
	}
	st.Approx = true
	st.Degraded = ss.degraded.Load()
	if sn := ss.snap.Load(); sn != nil {
		st.Edges = sn.edgesSeen
		st.Estimate = sn.estimate
		st.ErrorBound = sn.errorBound
		st.ReservoirEdges = sn.reservoir
		st.ReservoirCap = sn.resCap
		st.EdgesRemoved = sn.removed
		st.MemoryBytes = sn.memBytes
	}
	return st
}

// sessionBudget resolves a session's byte budget: the request's, if
// set, clamped to the server-wide per-session cap.
func (s *Server) sessionBudget(req int64) int64 {
	if req <= 0 || req > s.cfg.MaxStreamBytes {
		return s.cfg.MaxStreamBytes
	}
	return req
}

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	if s.recovering.Load() {
		writeErr(w, http.StatusServiceUnavailable, "recovering", "server is replaying persisted sessions")
		return
	}
	var req StreamCreateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = s.cfg.DefaultStreamMode
	}
	switch mode {
	case "exact", "approx", "auto":
	default:
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown stream mode %q (want exact, approx or auto)", mode))
		return
	}
	ss := &streamSession{
		mode:   mode,
		auto:   mode == "auto",
		budget: s.sessionBudget(req.BudgetBytes),
	}
	seed := req.Seed
	if seed == 0 {
		seed = int64(s.streams.nextID.Load()) + 1
	}
	// Every mode records its estimator knobs and (for exact/auto) its
	// universe: snapshots persist them so recovery can rebuild the
	// session exactly as created.
	ss.degradeSeed, ss.degradeWindow = seed, req.Window
	if mode == "approx" {
		ss.tr = approx.NewTriestWindow(approx.ReservoirForBudget(ss.budget), req.Window, seed)
		ss.publishSnapLocked()
		s.met.Add("stream.approx_sessions", 1)
	} else {
		if req.Vertices < 1 || req.Vertices > s.cfg.MaxStreamVertices {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("vertices %d out of range [1, %d]", req.Vertices, s.cfg.MaxStreamVertices))
			return
		}
		if len(req.Hubs) > s.cfg.MaxStreamHubs {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("%d hubs exceeds the limit of %d", len(req.Hubs), s.cfg.MaxStreamHubs))
			return
		}
		// NewStreaming validates range and uniqueness of the hub set —
		// before it, a stray hub ID was a panic that took the whole
		// process down.
		sc, err := core.NewStreaming(req.Vertices, req.Hubs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_hubs", err.Error())
			return
		}
		sc.CountNonHub = req.CountNonHub
		ss.vertices, ss.hubIDs, ss.countNonHub = req.Vertices, req.Hubs, req.CountNonHub
		if sc.MemoryBytes() > ss.budget {
			// The empty universe alone busts the budget: an auto session
			// starts out degraded; an exact one is refused outright.
			if !ss.auto {
				writeErr(w, http.StatusRequestEntityTooLarge, "stream_over_budget",
					fmt.Sprintf("exact universe of %d vertices needs %d bytes, budget is %d (use mode=approx or auto)",
						req.Vertices, sc.MemoryBytes(), ss.budget))
				return
			}
			ss.tr = approx.NewTriestWindow(approx.ReservoirForBudget(ss.budget), req.Window, seed)
			ss.publishSnapLocked()
			ss.degraded.Store(true)
			s.met.Add("stream.degraded", 1)
		} else {
			ss.sc.Store(sc)
		}
	}
	if err := s.streams.add(ss); err != nil {
		writeErr(w, http.StatusTooManyRequests, "stream_limit", err.Error())
		return
	}
	if s.dur.enabled() {
		// Genesis snapshot + first WAL generation. Failure here never
		// fails the create: the session runs memory-only and says so.
		ss.mu.Lock()
		if err := s.snapshotLocked(ss); err != nil {
			s.degradeDurabilityLocked(ss)
		}
		ss.mu.Unlock()
	}
	writeJSON(w, http.StatusCreated, streamState(ss))
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no_such_stream", "no such stream session")
		return
	}
	// Counter reads are atomics (exact) or a published snapshot
	// (approx); no session lock, so polling never stalls behind a
	// large ingest batch.
	writeJSON(w, http.StatusOK, streamState(ss))
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		writeErr(w, http.StatusServiceUnavailable, "recovering", "server is replaying persisted sessions")
		return
	}
	ss, ok := s.streams.take(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no_such_stream", "no such stream session")
		return
	}
	// Deleting a session deletes its persisted state too: the registry
	// entry is already gone, so no new ingest can race the teardown.
	ss.mu.Lock()
	if ss.wal != nil {
		_ = ss.wal.close()
		ss.wal = nil
	}
	ss.walActive.Store(false)
	ss.mu.Unlock()
	if s.dur.enabled() {
		_ = os.RemoveAll(s.dur.sessionDir(ss.id))
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// StreamIngestRequest applies a batch of edge insertions then
// removals to a session.
type StreamIngestRequest struct {
	Add    [][2]uint32 `json:"add,omitempty"`
	Remove [][2]uint32 `json:"remove,omitempty"`
}

func (s *Server) handleStreamIngest(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		writeErr(w, http.StatusServiceUnavailable, "recovering", "server is replaying persisted sessions")
		return
	}
	if err := faults.Inject(FaultIngestApply); err != nil {
		status, code := errStatus(err)
		writeErr(w, status, code, err.Error())
		return
	}
	ss, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no_such_stream", "no such stream session")
		return
	}
	var req StreamIngestRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if n := len(req.Add) + len(req.Remove); n > s.cfg.MaxStreamBatch {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d edges exceeds the limit of %d", n, s.cfg.MaxStreamBatch))
		return
	}
	// Batch preparation (normalize, drop self loops, dedup) runs
	// outside the session lock and, for large batches, in parallel
	// across sched workers with pooled scratch — so a 64k-edge batch
	// no longer serializes its whole cost behind one goroutine.
	adds := s.prepareBatch(req.Add)
	rems := s.prepareBatch(req.Remove)
	defer adds.release()
	defer rems.release()

	// One writer at a time; out-of-range endpoints are ignored by
	// the exact counter rather than refused, matching the loose
	// semantics of an edge stream. The WAL append happens before the
	// apply (write-ahead): every acknowledged batch is on disk, and a
	// crash between append and ack merely replays a batch the client
	// never saw confirmed — at-least-once, never lost.
	ss.mu.Lock()
	s.walAppendLocked(ss, adds, rems)
	rejected := ss.applyLocked(s, adds, rems)
	if !rejected {
		s.maybeSnapshotLocked(ss)
	}
	state := streamState(ss)
	ss.mu.Unlock()
	if rejected {
		s.met.Add("stream.budget_rejections", 1)
		writeErr(w, http.StatusRequestEntityTooLarge, "stream_over_budget",
			fmt.Sprintf("session %s holds %d bytes, over its %d-byte budget; delete it or use mode=approx/auto",
				ss.id, state.MemoryBytes, ss.budget))
		return
	}
	s.met.Add("stream.edges_ingested", int64(adds.len()+rems.len()))
	writeJSON(w, http.StatusOK, state)
}

// budgetCheckEvery is how many applied edges pass between resident-
// byte rechecks during an exact ingest: frequent enough that an auto
// session overshoots its budget by at most a few KiB, cheap enough
// (one atomic load) to vanish in the ingest cost.
const budgetCheckEvery = 1024

// applyLocked applies a prepared batch under the session lock. It
// returns true when the session is an over-budget exact session and
// the batch was refused. Auto sessions degrade mid-batch instead:
// the remaining edges continue into the estimator.
func (ss *streamSession) applyLocked(srv *Server, adds, rems *preparedBatch) bool {
	if sc := ss.sc.Load(); sc != nil {
		if !ss.auto && sc.MemoryBytes() > ss.budget {
			return true
		}
		applied := 0
		adds.each(func(u, v uint32) {
			if ss.degraded.Load() {
				ss.tr.AddEdge(u, v)
				return
			}
			sc.AddEdge(u, v)
			if applied++; ss.auto && applied%budgetCheckEvery == 0 && sc.MemoryBytes() > ss.budget {
				ss.degradeLocked(srv, sc)
			}
		})
		if ss.auto && !ss.degraded.Load() && sc.MemoryBytes() > ss.budget {
			ss.degradeLocked(srv, sc)
		}
		if ss.degraded.Load() {
			rems.each(ss.tr.RemoveEdge)
			ss.publishSnapLocked()
			return false
		}
		rems.each(func(u, v uint32) { sc.RemoveEdge(u, v) })
		return false
	}
	adds.each(ss.tr.AddEdge)
	rems.each(ss.tr.RemoveEdge)
	ss.publishSnapLocked()
	return false
}

// degradeLocked flips an auto session from exact to approx: a fresh
// reservoir sized to the budget is seeded with the counter's current
// edge set (a uniform reservoir sample of the resident graph), the
// snapshot is published, and the exact structures are released. GETs
// racing the flip read either the old counter's atomics or the new
// snapshot — both consistent. Caller holds mu.
func (ss *streamSession) degradeLocked(srv *Server, sc *core.Streaming) {
	tr := approx.NewTriestWindow(approx.ReservoirForBudget(ss.budget), ss.degradeWindow, ss.degradeSeed)
	sc.ForEachEdge(tr.AddEdge)
	ss.tr = tr
	ss.publishSnapLocked()
	ss.degraded.Store(true)
	ss.sc.Store(nil) // release the exact structures to the GC
	srv.met.Add("stream.degraded", 1)
}

// ---------------------------------------------------------------
// Batch preparation: normalization + dedup, parallel for large
// batches, with pooled per-worker scratch.

// prepScratch is one worker's batch-preparation scratch: a dedup set
// and an output buffer, reused across requests through prepPool.
type prepScratch struct {
	seen map[[2]uint32]struct{}
	out  [][2]uint32
}

var prepPool = sync.Pool{New: func() any {
	return &prepScratch{seen: make(map[[2]uint32]struct{}, 1024)}
}}

// maxPooledScratch caps what Put returns to the pool: scratch that
// ballooned on a giant batch is dropped for the GC instead of
// pinning its worst-case footprint forever (the capped Get/Put
// idiom).
const maxPooledScratch = 1 << 16

func getScratch() *prepScratch { return prepPool.Get().(*prepScratch) }

func putScratch(p *prepScratch) {
	if len(p.seen) > maxPooledScratch || cap(p.out) > maxPooledScratch {
		return
	}
	clear(p.seen)
	p.out = p.out[:0]
	prepPool.Put(p)
}

// preparedBatch is a normalized, deduplicated edge batch, held in
// pooled scratch until release.
type preparedBatch struct {
	parts   [][][2]uint32
	scratch []*prepScratch
}

func (b *preparedBatch) len() int {
	n := 0
	for _, p := range b.parts {
		n += len(p)
	}
	return n
}

func (b *preparedBatch) each(fn func(u, v uint32)) {
	for _, p := range b.parts {
		for _, e := range p {
			fn(e[0], e[1])
		}
	}
}

// flat appends the batch's edges to dst in apply order — the order
// the WAL must preserve for deterministic replay.
func (b *preparedBatch) flat(dst [][2]uint32) [][2]uint32 {
	for _, p := range b.parts {
		dst = append(dst, p...)
	}
	return dst
}

func (b *preparedBatch) release() {
	for _, sc := range b.scratch {
		putScratch(sc)
	}
	b.parts, b.scratch = nil, nil
}

// parallelBatchThreshold is the batch size below which preparation
// stays on the request goroutine; the fan-out only pays for itself
// on large batches.
const parallelBatchThreshold = 8192

// prepareBatch canonicalizes (u>v swapped), drops self loops and
// deduplicates a batch. Large batches are hash-partitioned across
// sched workers — each worker owns a disjoint slice of the edge
// space, so per-worker dedup is global dedup with no shared state.
// Edge order is not preserved across partitions; both counters are
// order-independent within a batch (duplicates are no-ops), so only
// reservoir tie-breaks observe it.
func (s *Server) prepareBatch(edges [][2]uint32) *preparedBatch {
	if len(edges) == 0 {
		return &preparedBatch{}
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(edges) < parallelBatchThreshold || workers < 2 {
		sc := getScratch()
		normalizeInto(sc, edges, 0, 1)
		return &preparedBatch{parts: [][][2]uint32{sc.out}, scratch: []*prepScratch{sc}}
	}
	if workers > 8 {
		workers = 8 // dedup is memory-bound; wider fan-out just thrashes
	}
	b := &preparedBatch{
		parts:   make([][][2]uint32, workers),
		scratch: make([]*prepScratch, workers),
	}
	for i := range b.scratch {
		b.scratch[i] = getScratch()
	}
	pool := sched.NewPool(workers)
	pool.RunTasks(workers, func(_, task int) {
		normalizeInto(b.scratch[task], edges, uint64(task), uint64(workers))
		b.parts[task] = b.scratch[task].out
	})
	return b
}

// normalizeInto scans the whole batch and keeps the edges this
// worker's hash partition owns: canonicalized, self loops dropped,
// first occurrence only.
func normalizeInto(sc *prepScratch, edges [][2]uint32, part, parts uint64) {
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if parts > 1 && edgeHash(u, v)%parts != part {
			continue
		}
		key := [2]uint32{u, v}
		if _, dup := sc.seen[key]; dup {
			continue
		}
		sc.seen[key] = struct{}{}
		sc.out = append(sc.out, key)
	}
}

// edgeHash mixes a canonical edge into a partition key
// (splitmix64-style finalizer: cheap and well-spread).
func edgeHash(u, v uint32) uint64 {
	x := uint64(u)<<32 | uint64(v)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
