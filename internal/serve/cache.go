package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"lotustc/internal/faults"
	"lotustc/internal/obs"
)

// lru is a byte-budgeted LRU over opaque values. It is not safe for
// concurrent use; buildCache serializes access under its own lock.
type lru struct {
	max   int64
	bytes int64
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key   string
	val   any
	bytes int64
}

func newLRU(maxBytes int64) *lru {
	return &lru{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lru) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts key (replacing any previous entry) and evicts from the
// cold end until the budget holds again, returning the eviction
// count. Values larger than the whole budget are not cached at all:
// admitting one would empty the cache for a value that can never be
// resident anyway.
func (c *lru) add(key string, val any, bytes int64) (evicted int) {
	if bytes > c.max {
		return 0
	}
	if el, ok := c.items[key]; ok {
		c.bytes += bytes - el.Value.(*lruEntry).bytes
		el.Value.(*lruEntry).val = val
		el.Value.(*lruEntry).bytes = bytes
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, bytes: bytes})
		c.bytes += bytes
	}
	for c.bytes > c.max && c.ll.Len() > 1 {
		el := c.ll.Back()
		ent := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.bytes -= ent.bytes
		evicted++
	}
	return evicted
}

func (c *lru) len() int { return c.ll.Len() }

// buildCache is the preprocessed-structure cache: a byte-budgeted LRU
// with single-flight build deduplication. A thundering herd of
// identical cold queries triggers exactly one build; every other
// caller waits on that flight. The build runs detached from any one
// request's context, so a caller that times out gets its error while
// the build completes for the herd and lands in the cache — a
// request deadline never poisons the cache with a half-built
// structure. Detached is not immortal: every build is bound to the
// cache's own lifetime context, and shutdown cancels it and waits, so
// process exit never strands a preprocessing goroutine mid-build.
type buildCache struct {
	name  string // metric prefix: "<name>.hits", "<name>.misses", ...
	mu    sync.Mutex
	lru   *lru
	calls map[string]*buildCall
	met   *obs.Metrics

	ctx    context.Context // cancelled by shutdown; bounds every build
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type buildCall struct {
	done chan struct{}
	val  any
	size int64
	err  error
}

func newBuildCache(name string, maxBytes int64, met *obs.Metrics) *buildCache {
	ctx, cancel := context.WithCancel(context.Background())
	return &buildCache{
		name: name, lru: newLRU(maxBytes), calls: map[string]*buildCall{}, met: met,
		ctx: ctx, cancel: cancel,
	}
}

// shutdown cancels every in-flight detached build and waits for the
// build goroutines to exit. Call it after BeginDrain (no new requests
// spawn builds) and before process exit; the drain test asserts no
// build goroutine survives it.
func (c *buildCache) shutdown() {
	c.cancel()
	c.wg.Wait()
}

// getOrBuild returns the value for key, building it at most once no
// matter how many callers arrive concurrently. hit reports that this
// caller did not pay for a build (LRU hit or shared flight). When ctx
// expires while waiting, the caller gets ctx.Err() and the in-flight
// build keeps running for the others.
func (c *buildCache) getOrBuild(ctx context.Context, key string, build func(context.Context) (any, int64, error)) (v any, hit bool, err error) {
	c.mu.Lock()
	if v, ok := c.lru.get(key); ok {
		c.met.Add(c.name+".hits", 1)
		c.mu.Unlock()
		return v, true, nil
	}
	call, inflight := c.calls[key]
	if !inflight {
		call = &buildCall{done: make(chan struct{})}
		c.calls[key] = call
		c.met.Add(c.name+".misses", 1)
		c.met.Add(c.name+".builds", 1)
		c.wg.Add(1)
		go c.run(key, call, build)
	} else {
		c.met.Add(c.name+".flight_shared", 1)
	}
	c.mu.Unlock()

	select {
	case <-call.done:
		return call.val, inflight, call.err
	case <-ctx.Done():
		c.met.Add(c.name+".wait_timeouts", 1)
		return nil, false, ctx.Err()
	}
}

// buildRetryPolicy bounds the transient-failure retries of a detached
// build: a build the whole herd waits on deserves a few quick retries
// before everyone shares the error.
var buildRetryPolicy = faults.RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}

// run executes one detached build, converting panics to errors (a
// malformed input must fail its requests, never the process), then
// publishes the result and retires the flight. Transient failures —
// injected or real — are retried with bounded backoff; permanent
// ones fail the flight immediately.
func (c *buildCache) run(key string, call *buildCall, build func(context.Context) (any, int64, error)) {
	defer c.wg.Done()
	func() {
		defer func() {
			if r := recover(); r != nil {
				call.err = fmt.Errorf("serve: building %s: panic: %v", key, r)
			}
		}()
		call.err = faults.Retry(c.ctx, buildRetryPolicy, func() error {
			if err := faults.Inject(FaultBuild); err != nil {
				return err
			}
			var err error
			call.val, call.size, err = build(c.ctx)
			return err
		})
	}()
	c.mu.Lock()
	delete(c.calls, key)
	if call.err == nil {
		// A fired admission fault skips caching but still serves the
		// herd this flight built for — degraded residency, never a
		// corrupted entry.
		if err := faults.Inject(FaultCacheAdmit); err != nil {
			c.met.Add(c.name+".admit_faults", 1)
		} else {
			evicted := c.lru.add(key, call.val, call.size)
			c.met.Add(c.name+".evictions", int64(evicted))
			c.met.Set(c.name+".bytes", c.lru.bytes)
			c.met.Set(c.name+".entries", int64(c.lru.len()))
		}
	}
	c.mu.Unlock()
	close(call.done)
}

// remove evicts key if resident (an in-flight build for it is left
// alone: it will re-add its own result). Used to purge entries that
// turned out to be corrupt — e.g. a prepared structure the engine
// rejected with ErrPreparedMismatch.
func (c *buildCache) remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.lru.items[key]
	if !ok {
		return false
	}
	ent := el.Value.(*lruEntry)
	c.lru.ll.Remove(el)
	delete(c.lru.items, ent.key)
	c.lru.bytes -= ent.bytes
	c.met.Set(c.name+".bytes", c.lru.bytes)
	c.met.Set(c.name+".entries", int64(c.lru.len()))
	return true
}

// peek reports whether key is resident without touching recency or
// metrics (used by tests and /metrics debugging).
func (c *buildCache) peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.lru.items[key]
	return ok
}
