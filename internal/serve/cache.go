package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"lotustc/internal/compress"
	"lotustc/internal/faults"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
)

// lru is a byte-budgeted LRU over opaque values. It is not safe for
// concurrent use; buildCache serializes access under its own lock.
type lru struct {
	max   int64
	bytes int64
	ll    *list.List
	items map[string]*list.Element
	// onEvict, when set, observes every budget-pressure eviction from
	// the cold end (the demotion hook of the two-tier cache). It is
	// NOT called for explicit remove() or for a stale entry displaced
	// by an oversized replacement — those are removals, not demotions.
	onEvict func(key string, val any)
}

type lruEntry struct {
	key   string
	val   any
	bytes int64
}

func newLRU(maxBytes int64) *lru {
	return &lru{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lru) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// getBytes is get with a byte-slice key: the map index converts
// without allocating, which keeps the warm result-cache hit path at
// zero allocations per request.
func (c *lru) getBytes(key []byte) (any, bool) {
	el, ok := c.items[string(key)]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts key (replacing any previous entry) and evicts from the
// cold end until the budget holds again, returning the eviction count
// and whether the new value was admitted. Values larger than the
// whole budget are not cached at all: admitting one would empty the
// cache for a value that can never be resident anyway. A resident
// entry under the same key is still evicted first — the caller
// replaced it, so leaving the predecessor to be served forever would
// pin a value the caller believes gone.
func (c *lru) add(key string, val any, bytes int64) (evicted int, admitted bool) {
	if bytes > c.max {
		if el, ok := c.items[key]; ok {
			ent := el.Value.(*lruEntry)
			c.ll.Remove(el)
			delete(c.items, ent.key)
			c.bytes -= ent.bytes
			evicted++
		}
		return evicted, false
	}
	if el, ok := c.items[key]; ok {
		c.bytes += bytes - el.Value.(*lruEntry).bytes
		el.Value.(*lruEntry).val = val
		el.Value.(*lruEntry).bytes = bytes
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val, bytes: bytes})
		c.bytes += bytes
	}
	for c.bytes > c.max && c.ll.Len() > 1 {
		el := c.ll.Back()
		ent := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.bytes -= ent.bytes
		if c.onEvict != nil {
			c.onEvict(ent.key, ent.val)
		}
		evicted++
	}
	return evicted, true
}

// remove deletes key without invoking onEvict (explicit removal is
// not a demotion) and returns the displaced value.
func (c *lru) remove(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= ent.bytes
	return ent.val, true
}

func (c *lru) len() int { return c.ll.Len() }

// residentGraph is a decoded-tier graph entry of the two-tier cache:
// the CSX graph, its pre-encoded compressed twin (so demotion never
// runs the encoder under the cache lock), the decode arena backing
// the graph when it was rehydrated from the compressed tier, and a
// pin count. refs — guarded by buildCache.mu — counts request pins
// plus one for decoded-tier residency; when it reaches zero the
// arena's slabs return to the pool, so a live request can never see
// its graph's backing arrays recycled under it.
type residentGraph struct {
	g     *graph.Graph
	comp  *compress.CompressedGraph
	arena *compress.Arena
	refs  int
}

// arenaPool recycles decode arenas through a capped sync.Pool in the
// hyperpool style: Get prefers a warm arena whose slabs were already
// sized by a previous rehydration, Put drops arenas above the cap so
// one huge graph does not pin its slabs in the pool forever.
type arenaPool struct {
	pool sync.Pool
	max  int64
	name string // metric prefix
	met  *obs.Metrics
}

func newArenaPool(name string, maxBytes int64, met *obs.Metrics) *arenaPool {
	return &arenaPool{max: maxBytes, name: name, met: met}
}

func (p *arenaPool) get() *compress.Arena {
	if a, ok := p.pool.Get().(*compress.Arena); ok {
		p.met.Add(p.name+".pool_hits", 1)
		return a
	}
	p.met.Add(p.name+".pool_misses", 1)
	return new(compress.Arena)
}

func (p *arenaPool) put(a *compress.Arena) {
	if a == nil || a.SizeBytes() > p.max {
		return
	}
	p.pool.Put(a)
}

// cacheConfig sizes a buildCache. With compression enabled the byte
// budget is split at the demotion watermark: the decoded tier keeps
// watermark × maxBytes for fully-decoded values, and the remainder
// budgets the compressed second-chance tier.
type cacheConfig struct {
	maxBytes  int64
	compress  bool
	watermark float64
}

// decodedBudget returns the decoded-tier byte budget.
func (c cacheConfig) decodedBudget() int64 {
	if !c.compress {
		return c.maxBytes
	}
	w := c.watermark
	if w <= 0 || w >= 1 {
		w = defaultDemoteWatermark
	}
	b := int64(float64(c.maxBytes) * w)
	if b < 1 {
		b = 1
	}
	return b
}

// defaultDemoteWatermark is the decoded-tier fraction of the cache
// budget when -compress-cache is on and no watermark is given.
const defaultDemoteWatermark = 0.5

// buildCache is the preprocessed-structure cache: a byte-budgeted LRU
// with single-flight build deduplication. A thundering herd of
// identical cold queries triggers exactly one build; every other
// caller waits on that flight. The build runs detached from any one
// request's context, so a caller that times out gets its error while
// the build completes for the herd and lands in the cache — a
// request deadline never poisons the cache with a half-built
// structure. Detached is not immortal: every build is bound to the
// cache's own lifetime context, and shutdown cancels it and waits, so
// process exit never strands a preprocessing goroutine mid-build.
//
// With compression enabled the cache is two-tiered for "graph:"
// entries: the decoded tier holds CSX graphs ready to serve, and
// instead of dying on eviction a graph is demoted — its pre-encoded
// compressed twin moves to the compressed tier, charged at
// SizeBytes(). A later miss on the decoded tier rehydrates from the
// compressed tier, decoding into a pooled arena rather than fresh
// arrays. Preprocessed LOTUS structures ("lotus:"/"shard*:") are not
// compressible and evict outright, exactly as before.
type buildCache struct {
	name  string // metric prefix: "<name>.hits", "<name>.misses", ...
	mu    sync.Mutex
	lru   *lru // decoded tier
	comp  *lru // compressed second-chance tier; nil = compression off
	calls map[string]*buildCall
	met   *obs.Metrics

	arenas *arenaPool
	graphs int // decoded-tier residentGraph entries, for the residency gauge

	ctx    context.Context // cancelled by shutdown; bounds every build
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type buildCall struct {
	done chan struct{}
	val  any
	size int64
	err  error
	// pins counts callers waiting on the flight; it is converted into
	// residentGraph refs at publish so a waiter can never observe its
	// graph's arena recycled between publish and wake-up. Guarded by
	// buildCache.mu.
	pins      int
	published bool
	// rehydrated marks a flight that decoded a compressed-tier entry
	// rather than building from scratch; its waiters report a cache
	// hit (they were served from residency, not a rebuild).
	rehydrated bool
}

func newBuildCache(name string, cfg cacheConfig, met *obs.Metrics) *buildCache {
	ctx, cancel := context.WithCancel(context.Background())
	decoded := cfg.decodedBudget()
	c := &buildCache{
		name: name, lru: newLRU(decoded), calls: map[string]*buildCall{}, met: met,
		ctx: ctx, cancel: cancel,
	}
	// Pre-register the admission-outcome counters so /metrics shows
	// them at zero: a silently-refused oversized value used to be
	// indistinguishable from an admitted one.
	met.Add(name+".admit_oversized", 0)
	met.Add(name+".admit_faults", 0)
	met.Set(name+".bytes", 0)
	met.Set(name+".entries", 0)
	if cfg.compress {
		c.comp = newLRU(cfg.maxBytes - decoded)
		c.comp.onEvict = func(string, any) { met.Add(name+".comp_evictions", 1) }
		c.lru.onEvict = c.demoteLocked
		// Arenas are capped at the full cache budget, not the decoded
		// tier: decompress-on-demand exists precisely for graphs too
		// big to sit decoded, and dropping their slabs on every release
		// would defeat the pool where it matters most.
		c.arenas = newArenaPool(name, cfg.maxBytes, met)
		met.Add(name+".demotions", 0)
		met.Add(name+".rehydrations", 0)
		met.Add(name+".comp_evictions", 0)
		met.Add(name+".pool_hits", 0)
		met.Add(name+".pool_misses", 0)
		met.Set(name+".compressed_entries", 0)
		met.Set(name+".compressed_bytes", 0)
		met.Set(name+".graph_entries", 0)
	}
	return c
}

// shutdown cancels every in-flight detached build and waits for the
// build goroutines to exit. Call it after BeginDrain (no new requests
// spawn builds) and before process exit; the drain test asserts no
// build goroutine survives it.
func (c *buildCache) shutdown() {
	c.cancel()
	c.wg.Wait()
}

// demoteLocked is the decoded tier's eviction hook (called with mu
// held, from inside lru.add): graph entries move their compressed
// twin to the second-chance tier instead of dying, everything else
// evicts outright. The residency ref is dropped either way; the
// arena is recycled once the last in-flight request releases it.
func (c *buildCache) demoteLocked(key string, val any) {
	rg, ok := val.(*residentGraph)
	if !ok {
		return
	}
	c.graphs--
	c.dropRefLocked(rg)
	if rg.comp == nil || c.comp == nil {
		return
	}
	if _, admitted := c.comp.add(key, rg.comp, rg.comp.SizeBytes()); admitted {
		c.met.Add(c.name+".demotions", 1)
	}
}

// dropRefLocked releases one pin; the last pin returns the arena's
// slabs to the pool and poisons the entry so a use-after-release
// fails loudly instead of silently reading recycled memory.
func (c *buildCache) dropRefLocked(rg *residentGraph) {
	rg.refs--
	if rg.refs > 0 || rg.arena == nil {
		return
	}
	c.arenas.put(rg.arena)
	rg.arena = nil
	rg.g = nil
}

// pinLocked takes a request pin on an arena-backed value and returns
// the matching release; non-graph values need no lifetime management
// and get a no-op.
func (c *buildCache) pinLocked(v any) func() {
	rg, ok := v.(*residentGraph)
	if !ok {
		return func() {}
	}
	rg.refs++
	return func() {
		c.mu.Lock()
		c.dropRefLocked(rg)
		c.mu.Unlock()
	}
}

// getOrBuild returns the value for key, building it at most once no
// matter how many callers arrive concurrently. hit reports that this
// caller did not pay for a cold build (LRU hit, shared flight, or a
// rehydration from the compressed tier). release must be called when
// the caller is done with the value — for rehydrated graphs it is
// what lets the decode arena return to the pool. When ctx expires
// while waiting, the caller gets ctx.Err() and the in-flight build
// keeps running for the others.
func (c *buildCache) getOrBuild(ctx context.Context, key string, build func(context.Context) (any, int64, error)) (v any, hit bool, release func(), err error) {
	c.mu.Lock()
	if v, ok := c.lru.get(key); ok {
		c.met.Add(c.name+".hits", 1)
		rel := c.pinLocked(v)
		c.mu.Unlock()
		return v, true, rel, nil
	}
	call, inflight := c.calls[key]
	if !inflight {
		call = &buildCall{done: make(chan struct{})}
		var comp *compress.CompressedGraph
		if c.comp != nil {
			if cv, ok := c.comp.get(key); ok {
				comp = cv.(*compress.CompressedGraph)
			}
		}
		c.calls[key] = call
		c.wg.Add(1)
		if comp != nil {
			call.rehydrated = true
			c.met.Add(c.name+".rehydrations", 1)
			go c.run(key, call, func(context.Context) (any, int64, error) {
				return c.rehydrate(key, comp)
			})
		} else {
			c.met.Add(c.name+".misses", 1)
			c.met.Add(c.name+".builds", 1)
			go c.run(key, call, build)
		}
	} else {
		c.met.Add(c.name+".flight_shared", 1)
	}
	call.pins++
	c.mu.Unlock()

	select {
	case <-call.done:
		// The pin was converted into a residentGraph ref at publish;
		// hand the caller its release.
		return call.val, inflight || call.rehydrated, c.callRelease(call), call.err
	case <-ctx.Done():
		c.met.Add(c.name+".wait_timeouts", 1)
		c.unpin(key, call)
		return nil, false, nil, ctx.Err()
	}
}

// callRelease returns the release func matching the pin a flight
// waiter owns on the published value.
func (c *buildCache) callRelease(call *buildCall) func() {
	rg, ok := call.val.(*residentGraph)
	if !ok {
		return func() {}
	}
	return func() {
		c.mu.Lock()
		c.dropRefLocked(rg)
		c.mu.Unlock()
	}
}

// unpin gives back a flight pin from a caller that stopped waiting.
// Before publish the flight's pin count simply shrinks; after, the
// pin has already become a value ref and must be released like one.
func (c *buildCache) unpin(key string, call *buildCall) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !call.published {
		call.pins--
		return
	}
	if rg, ok := call.val.(*residentGraph); ok {
		c.dropRefLocked(rg)
	}
}

// rehydrate decodes a compressed-tier entry into a pooled arena. A
// decode failure purges the entry — it is corrupt and retrying it
// forever would wedge the key — so the next request rebuilds from
// scratch.
func (c *buildCache) rehydrate(key string, comp *compress.CompressedGraph) (any, int64, error) {
	arena := c.arenas.get()
	g, err := comp.DecodeInto(arena)
	if err != nil {
		c.arenas.put(arena)
		c.mu.Lock()
		c.comp.remove(key)
		c.updateGaugesLocked()
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("serve: rehydrating %s: %w", key, err)
	}
	rg := &residentGraph{g: g, comp: comp, arena: arena}
	return rg, graphBytes(g) + comp.SizeBytes(), nil
}

// buildRetryPolicy bounds the transient-failure retries of a detached
// build: a build the whole herd waits on deserves a few quick retries
// before everyone shares the error.
var buildRetryPolicy = faults.RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}

// run executes one detached build, converting panics to errors (a
// malformed input must fail its requests, never the process), then
// publishes the result and retires the flight. Transient failures —
// injected or real — are retried with bounded backoff; permanent
// ones fail the flight immediately.
func (c *buildCache) run(key string, call *buildCall, build func(context.Context) (any, int64, error)) {
	defer c.wg.Done()
	func() {
		defer func() {
			if r := recover(); r != nil {
				call.err = fmt.Errorf("serve: building %s: panic: %v", key, r)
			}
		}()
		call.err = faults.Retry(c.ctx, buildRetryPolicy, func() error {
			if err := faults.Inject(FaultBuild); err != nil {
				return err
			}
			var err error
			call.val, call.size, err = build(c.ctx)
			return err
		})
	}()
	// With compression on, freshly-built graphs get their compressed
	// twin encoded here — outside the lock, on the detached build
	// goroutine — so demotion later is a pointer move, never an
	// encoder run under mu. The twin's bytes ride in the decoded
	// entry's charge: both copies are resident while the entry is.
	if call.err == nil && c.comp != nil {
		if g, ok := call.val.(*graph.Graph); ok {
			comp := compress.Encode(g)
			call.val = &residentGraph{g: g, comp: comp}
			call.size += comp.SizeBytes()
		}
	}
	c.mu.Lock()
	delete(c.calls, key)
	call.published = true
	rg, isGraph := call.val.(*residentGraph)
	if isGraph {
		// Convert the waiters' flight pins into value refs before the
		// value becomes reachable through the cache.
		rg.refs = call.pins
	}
	if call.err == nil {
		// A fired admission fault skips caching but still serves the
		// herd this flight built for — degraded residency, never a
		// corrupted entry.
		if err := faults.Inject(FaultCacheAdmit); err != nil {
			c.met.Add(c.name+".admit_faults", 1)
		} else {
			evicted, admitted := c.lru.add(key, call.val, call.size)
			c.met.Add(c.name+".evictions", int64(evicted))
			switch {
			case admitted && isGraph:
				rg.refs++ // residency pin
				c.graphs++
				// The twin's charge moved into the decoded entry;
				// drop the stale compressed-tier copy if one exists.
				if c.comp != nil {
					c.comp.remove(key)
				}
			case !admitted:
				c.met.Add(c.name+".admit_oversized", 1)
				// Too big to ever sit decoded, but its compressed twin
				// may still fit the second-chance tier: later requests
				// then rehydrate on demand instead of rebuilding.
				if isGraph && rg.comp != nil && c.comp != nil {
					if _, ok := c.comp.get(key); !ok {
						if _, admittedComp := c.comp.add(key, rg.comp, rg.comp.SizeBytes()); admittedComp {
							c.met.Add(c.name+".demotions", 1)
						}
					}
				}
			}
			c.updateGaugesLocked()
		}
	}
	c.mu.Unlock()
	close(call.done)
}

// updateGaugesLocked refreshes the residency gauges after any
// mutation of either tier.
func (c *buildCache) updateGaugesLocked() {
	c.met.Set(c.name+".bytes", c.lru.bytes)
	c.met.Set(c.name+".entries", int64(c.lru.len()))
	if c.comp != nil {
		c.met.Set(c.name+".compressed_entries", int64(c.comp.len()))
		c.met.Set(c.name+".compressed_bytes", c.comp.bytes)
		c.met.Set(c.name+".graph_entries", int64(c.graphs))
	}
}

// remove evicts key from both tiers if resident (an in-flight build
// for it is left alone: it will re-add its own result). Used to purge
// entries that turned out to be corrupt — e.g. a prepared structure
// the engine rejected with ErrPreparedMismatch — so demotion must NOT
// apply: a corrupt value has no business surviving in compressed
// form.
func (c *buildCache) remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := false
	if val, ok := c.lru.remove(key); ok {
		removed = true
		if rg, isGraph := val.(*residentGraph); isGraph {
			c.graphs--
			c.dropRefLocked(rg)
		}
	}
	if c.comp != nil {
		if _, ok := c.comp.remove(key); ok {
			removed = true
		}
	}
	if removed {
		c.updateGaugesLocked()
	}
	return removed
}

// peek reports whether key is resident in the decoded tier without
// touching recency or metrics (used by tests and /metrics debugging).
func (c *buildCache) peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.lru.items[key]
	return ok
}

// peekCompressed reports compressed-tier residency without touching
// recency or metrics.
func (c *buildCache) peekCompressed(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.comp == nil {
		return false
	}
	_, ok := c.comp.items[key]
	return ok
}
