package serve

// Unit tests of the WAL byte format: frame/record round trips, the
// torn-tail clipping contract (every truncation point of a valid log
// recovers exactly the frames before the tear), CRC corruption
// detection, and a fuzzer over the frame+record decoder.

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomBatch(rng *rand.Rand, n int) [][2]uint32 {
	out := make([][2]uint32, n)
	for i := range out {
		u, v := rng.Uint32()%5000, rng.Uint32()%5000
		if u == v {
			v++
		}
		if u > v {
			u, v = v, u
		}
		out[i] = [2]uint32{u, v}
	}
	return out
}

func TestWALFrameAndRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var log []byte
	type batch struct{ adds, rems [][2]uint32 }
	var want []batch
	for i := 0; i < 50; i++ {
		b := batch{adds: randomBatch(rng, rng.Intn(200)), rems: randomBatch(rng, rng.Intn(40))}
		want = append(want, b)
		log = appendWALFrame(log, appendBatchRecord(nil, b.adds, b.rems))
	}
	var got []batch
	validLen, clean := scanWALFrames(log, func(p []byte) error {
		adds, rems, err := decodeBatchRecord(p)
		if err != nil {
			return err
		}
		got = append(got, batch{adds, rems})
		return nil
	})
	if !clean || validLen != int64(len(log)) {
		t.Fatalf("clean log scanned dirty: validLen %d of %d, clean %v", validLen, len(log), clean)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d batches, want %d", len(got), len(want))
	}
	for i := range want {
		if !equalEdges(got[i].adds, want[i].adds) || !equalEdges(got[i].rems, want[i].rems) {
			t.Fatalf("batch %d mutated in round trip", i)
		}
	}
}

func equalEdges(a, b [][2]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWALTornTailClipping: truncating a valid log at EVERY byte
// offset recovers exactly the complete frames before the cut — the
// crash-safety contract recovery leans on.
func TestWALTornTailClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var log []byte
	var frameEnds []int64
	for i := 0; i < 12; i++ {
		log = appendWALFrame(log, appendBatchRecord(nil, randomBatch(rng, 1+rng.Intn(30)), nil))
		frameEnds = append(frameEnds, int64(len(log)))
	}
	framesBefore := func(cut int64) int {
		n := 0
		for _, end := range frameEnds {
			if end <= cut {
				n++
			}
		}
		return n
	}
	for cut := 0; cut <= len(log); cut++ {
		frames := 0
		validLen, clean := scanWALFrames(log[:cut], func(p []byte) error {
			if _, _, err := decodeBatchRecord(p); err != nil {
				return err
			}
			frames++
			return nil
		})
		if frames != framesBefore(int64(cut)) {
			t.Fatalf("cut at %d: replayed %d frames, want %d", cut, frames, framesBefore(int64(cut)))
		}
		wantClean := validLen == int64(cut)
		if clean != wantClean {
			t.Fatalf("cut at %d: clean %v but validLen %d", cut, clean, validLen)
		}
		if clean && frames != len(frameEnds) && cut == len(log) {
			t.Fatalf("full log lost frames: %d of %d", frames, len(frameEnds))
		}
	}
}

// TestWALCorruptionDetected: flipping any single byte of a frame is
// caught by the CRC (or the structural checks) — the scan stops at
// the corrupt frame and keeps everything before it.
func TestWALCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	first := appendWALFrame(nil, appendBatchRecord(nil, randomBatch(rng, 20), nil))
	second := appendWALFrame(nil, appendBatchRecord(nil, randomBatch(rng, 20), nil))
	log := append(append([]byte{}, first...), second...)
	for i := len(first); i < len(log); i++ {
		corrupt := append([]byte{}, log...)
		corrupt[i] ^= 0x40
		frames := 0
		validLen, clean := scanWALFrames(corrupt, func(p []byte) error {
			if _, _, err := decodeBatchRecord(p); err != nil {
				return err
			}
			frames++
			return nil
		})
		if clean && bytes.Equal(corrupt, log) {
			continue // flip landed on an identical byte (cannot happen with ^0x40)
		}
		if frames > 1 || validLen > int64(len(first)) {
			t.Fatalf("flip at %d: corrupt second frame survived (frames %d, validLen %d)", i, frames, validLen)
		}
		if frames != 1 {
			t.Fatalf("flip at %d: first (intact) frame lost", i)
		}
	}
}

func TestBatchRecordRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"unknown kind":  {'X', 0, 0},
		"bad count":     {'B', 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"truncated":     append([]byte{'B'}, 5),
		"trailing junk": append(appendBatchRecord(nil, [][2]uint32{{1, 2}}, nil), 0xAA),
	}
	for name, p := range cases {
		if _, _, err := decodeBatchRecord(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzWALDecode drives the frame scanner + record decoder over
// arbitrary bytes: it must never panic and never return more payload
// than the input holds. Wired into `make fuzz`.
func FuzzWALDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	f.Add([]byte{})
	f.Add(appendWALFrame(nil, appendBatchRecord(nil, randomBatch(rng, 10), randomBatch(rng, 3))))
	long := appendWALFrame(nil, appendBatchRecord(nil, randomBatch(rng, 100), nil))
	long = appendWALFrame(long, appendBatchRecord(nil, nil, randomBatch(rng, 9)))
	f.Add(long)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		validLen, clean := scanWALFrames(data, func(p []byte) error {
			_, _, err := decodeBatchRecord(p)
			return err
		})
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range [0, %d]", validLen, len(data))
		}
		if clean && validLen != int64(len(data)) {
			t.Fatalf("clean scan stopped early: %d of %d", validLen, len(data))
		}
		// Re-scanning the clean prefix must be clean and full — the
		// property recovery's truncate step depends on.
		if re, reclean := scanWALFrames(data[:validLen], nil); !reclean || re != validLen {
			t.Fatalf("clean prefix rescans dirty: %d/%v", re, reclean)
		}
	})
}
