//go:build race

package serve

// raceEnabled reports that the race detector is compiled in; the
// allocation-gate tests skip under it because instrumentation changes
// the allocation profile they assert on.
const raceEnabled = true
