//go:build !race

package serve

// raceEnabled reports that the race detector is compiled in.
const raceEnabled = false
