package serve

// Chaos tests: ingest -> kill -> restart -> verify loops over the
// session durability layer, plus fault injection at every registered
// point. "Kill" means abandoning a Server without Close — its WAL
// tail is whatever made it to the file, exactly like a crashed
// process — while graceful-shutdown tests call Close and expect a
// flushed snapshot. All of this runs under -race via `make chaos` /
// `make check`.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"lotustc/internal/core"
	"lotustc/internal/faults"
	"lotustc/internal/gen"
	"lotustc/internal/obs"
)

// newDurableServer boots a server over dir, runs recovery to
// completion, and mounts it on httptest.
func newDurableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	s := New(cfg)
	s.Recover()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func createStream(t *testing.T, ts *httptest.Server, body string) *StreamState {
	t.Helper()
	status, raw := postJSON(t, ts.URL+"/v1/stream", body)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d: %s", status, raw)
	}
	return decodeStream(t, raw)
}

func ingestOK(t *testing.T, ts *httptest.Server, id string, add, rem [][2]uint32) *StreamState {
	t.Helper()
	status, raw := postJSON(t, ts.URL+"/v1/stream/"+id+"/edges", ingestBody(t, add, rem))
	if status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, raw)
	}
	return decodeStream(t, raw)
}

func getStream(t *testing.T, ts *httptest.Server, id string) *StreamState {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stream/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d: %s", id, resp.StatusCode, raw)
	}
	return decodeStream(t, []byte(raw))
}

// exactStateEqual compares every count an exact session exposes.
func exactStateEqual(t *testing.T, got, want *StreamState, what string) {
	t.Helper()
	if got.Edges != want.Edges || got.HubTriangles != want.HubTriangles ||
		got.HHH != want.HHH || got.HHN != want.HHN || got.HNN != want.HNN || got.NNN != want.NNN ||
		got.MemoryBytes != want.MemoryBytes || got.Vertices != want.Vertices || got.Hubs != want.Hubs {
		t.Fatalf("%s: state diverged:\n got %+v\nwant %+v", what, got, want)
	}
}

// TestChaosKillRestartExact: an exact session fed adds and removes
// through several snapshot rotations, killed without warning, must
// recover bit-identically — exact counts are exact across crashes or
// they are not exact at all.
func TestChaosKillRestartExact(t *testing.T) {
	dir := t.TempDir()
	// A small snapshot threshold forces mid-test rotations, so the kill
	// lands on a snapshot+WAL-tail mix, not a single giant log.
	cfg := Config{SnapshotBytes: 8 << 10}
	_, ts := newDurableServer(t, dir, cfg)

	st := createStream(t, ts, `{"mode": "exact", "vertices": 2000, "hubs": [3, 1, 4, 15, 9, 2, 6], "count_non_hub": true}`)
	if st.Durability != "wal" {
		t.Fatalf("durable create reports durability %q, want wal", st.Durability)
	}
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 5))
	batches := graphBatches(g, 1500)
	var last *StreamState
	for i, b := range batches {
		var rem [][2]uint32
		if i%3 == 2 {
			rem = batches[i-1][:len(batches[i-1])/2]
		}
		last = ingestOK(t, ts, st.ID, b, rem)
	}
	if last.HubTriangles == 0 || last.NNN == 0 {
		t.Fatalf("test stream produced trivial counts: %+v", last)
	}

	ts.Close() // kill: no drain, no flush, WAL tail left as-is

	s2, ts2 := newDurableServer(t, dir, cfg)
	got := getStream(t, ts2, st.ID)
	exactStateEqual(t, got, last, "after kill+restart")
	if got.Durability != "wal" {
		t.Fatalf("recovered session durability %q, want wal", got.Durability)
	}
	if s2.Metrics().Get(obs.StreamWALRecovered) != 1 {
		t.Fatalf("stream.wal_recovered = %d, want 1", s2.Metrics().Get(obs.StreamWALRecovered))
	}

	// The recovered session is live: more ingest lands and a second
	// kill+restart still agrees.
	after := ingestOK(t, ts2, st.ID, [][2]uint32{{1, 2}, {2, 3}, {1, 3}}, nil)
	if after.Edges < got.Edges {
		t.Fatalf("post-recovery ingest lost edges: %d -> %d", got.Edges, after.Edges)
	}
	ts2.Close()
	_, ts3 := newDurableServer(t, dir, cfg)
	exactStateEqual(t, getStream(t, ts3, st.ID), after, "after second kill+restart")
}

// TestChaosKillRestartApproxBitIdentical: with the WAL still on its
// genesis snapshot, replaying the full edge sequence with the
// persisted seed must reproduce the estimator draw-for-draw — the
// recovered estimate is bit-identical, not merely close.
func TestChaosKillRestartApproxBitIdentical(t *testing.T) {
	dir := t.TempDir()
	// Huge threshold: no rotation, so recovery replays from genesis.
	cfg := Config{SnapshotBytes: 1 << 40}
	_, ts := newDurableServer(t, dir, cfg)

	st := createStream(t, ts, `{"mode": "approx", "budget_bytes": 262144, "seed": 42}`)
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 6))
	rng := rand.New(rand.NewSource(2))
	var last *StreamState
	for i, b := range graphBatches(g, 3000) {
		var rem [][2]uint32
		if i%2 == 1 {
			for j := 0; j < 50; j++ {
				rem = append(rem, b[rng.Intn(len(b))])
			}
		}
		last = ingestOK(t, ts, st.ID, b, rem)
	}
	ts.Close() // kill

	_, ts2 := newDurableServer(t, dir, cfg)
	got := getStream(t, ts2, st.ID)
	if math.Float64bits(got.Estimate) != math.Float64bits(last.Estimate) {
		t.Fatalf("estimate not bit-identical after replay: %v vs %v", got.Estimate, last.Estimate)
	}
	if got.Edges != last.Edges || got.ReservoirEdges != last.ReservoirEdges ||
		got.EdgesRemoved != last.EdgesRemoved || got.MemoryBytes != last.MemoryBytes {
		t.Fatalf("approx state diverged:\n got %+v\nwant %+v", got, last)
	}
}

// TestChaosAutoDegradeRecovery: an auto session that degraded
// mid-stream recovers degraded with the same estimate — the
// exact->approx flip replays deterministically from the WAL batch
// order, with no explicit degrade record.
func TestChaosAutoDegradeRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SnapshotBytes: 1 << 40}
	_, ts := newDurableServer(t, dir, cfg)

	// Budget above the empty exact universe's footprint but below the
	// full adjacency, so the flip happens mid-stream.
	sc, err := core.NewStreaming(1<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := createStream(t, ts, fmt.Sprintf(
		`{"mode": "auto", "vertices": %d, "budget_bytes": %d, "seed": 17}`, 1<<10, sc.MemoryBytes()+8<<10))
	if st.Degraded {
		t.Fatalf("auto session born degraded: %+v", st)
	}
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	var last *StreamState
	for _, b := range graphBatches(g, 4000) {
		last = ingestOK(t, ts, st.ID, b, nil)
	}
	if !last.Degraded {
		t.Fatalf("auto session never degraded: %+v", last)
	}
	ts.Close() // kill

	s2, ts2 := newDurableServer(t, dir, cfg)
	got := getStream(t, ts2, st.ID)
	if !got.Degraded || !got.Approx {
		t.Fatalf("recovered session lost its degraded state: %+v", got)
	}
	if math.Float64bits(got.Estimate) != math.Float64bits(last.Estimate) ||
		got.Edges != last.Edges || got.ReservoirEdges != last.ReservoirEdges {
		t.Fatalf("degraded replay diverged:\n got %+v\nwant %+v", got, last)
	}
	if s2.Metrics().Get(obs.StreamWALFrames) == 0 {
		t.Fatal("recovery claims zero WAL frames for an unflushed kill")
	}
}

// TestChaosTruncatedWALTail: a torn final frame (the classic
// crash-mid-write artifact) is clipped at the last valid frame; the
// session recovers to the state before the torn batch and keeps
// serving.
func TestChaosTruncatedWALTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SnapshotBytes: 1 << 40}
	_, ts := newDurableServer(t, dir, cfg)

	st := createStream(t, ts, `{"mode": "exact", "vertices": 500, "hubs": [0, 1, 2, 3, 4]}`)
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 8))
	batches := graphBatches(g, 1000)
	var beforeLast *StreamState
	for i, b := range batches {
		stNow := ingestOK(t, ts, st.ID, b, nil)
		if i == len(batches)-2 {
			beforeLast = stNow
		}
	}
	ts.Close() // kill

	// Tear the final frame: chop 3 bytes off the WAL tail.
	walPath := filepath.Join(dir, "sessions", st.ID, walFileName(1))
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newDurableServer(t, dir, cfg)
	got := getStream(t, ts2, st.ID)
	exactStateEqual(t, got, beforeLast, "after torn-tail recovery")
	if s2.Metrics().Get(obs.StreamWALTruncated) != 1 {
		t.Fatalf("stream.wal_truncated = %d, want 1", s2.Metrics().Get(obs.StreamWALTruncated))
	}
	// The clipped file must now scan clean and the session must accept
	// appends again; a further restart agrees.
	after := ingestOK(t, ts2, st.ID, batches[len(batches)-1], nil)
	ts2.Close()
	_, ts3 := newDurableServer(t, dir, cfg)
	exactStateEqual(t, getStream(t, ts3, st.ID), after, "after post-truncation ingest + restart")
}

// TestChaosCorruptSnapshotSkipped: a session whose snapshot rotted is
// skipped (metric, directory left for inspection) without taking down
// recovery of healthy sessions.
func TestChaosCorruptSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SnapshotBytes: 1 << 40}
	_, ts := newDurableServer(t, dir, cfg)
	healthy := createStream(t, ts, `{"mode": "exact", "vertices": 100}`)
	sick := createStream(t, ts, `{"mode": "exact", "vertices": 100}`)
	hs := ingestOK(t, ts, healthy.ID, [][2]uint32{{1, 2}, {2, 3}, {1, 3}}, nil)
	ingestOK(t, ts, sick.ID, [][2]uint32{{4, 5}}, nil)
	ts.Close()

	snapPath := filepath.Join(dir, "sessions", sick.ID, "snapshot.snap")
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newDurableServer(t, dir, cfg)
	exactStateEqual(t, getStream(t, ts2, healthy.ID), hs, "healthy session")
	if s2.Metrics().Get(obs.StreamRecoverSkipped) != 1 {
		t.Fatalf("stream.recover_skipped = %d, want 1", s2.Metrics().Get(obs.StreamRecoverSkipped))
	}
	resp, err := http.Get(ts2.URL + "/v1/stream/" + sick.ID)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt session answered %d, want 404", resp.StatusCode)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("corrupt session directory removed, want left for inspection: %v", err)
	}
}

// TestChaosGracefulFlushAndRestart: SIGTERM-style shutdown (Close)
// flushes a snapshot per session, so the restart replays zero WAL
// frames and still lands on the identical state. Approx sessions
// survive graceful restarts bit-identically even mid-stream, because
// the flushed snapshot carries the reservoir itself.
func TestChaosGracefulFlushAndRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SnapshotBytes: 1 << 40}
	s1, ts := newDurableServer(t, dir, cfg)

	ex := createStream(t, ts, `{"mode": "exact", "vertices": 800, "hubs": [7, 2, 9]}`)
	ap := createStream(t, ts, `{"mode": "approx", "budget_bytes": 65536, "seed": 4}`)
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 2))
	var exLast, apLast *StreamState
	for _, b := range graphBatches(g, 2500) {
		exLast = ingestOK(t, ts, ex.ID, b, nil)
		apLast = ingestOK(t, ts, ap.ID, b, nil)
	}
	ts.Close()
	s1.Close() // graceful: drain + cancel builds + flush snapshots

	s2, ts2 := newDurableServer(t, dir, cfg)
	exactStateEqual(t, getStream(t, ts2, ex.ID), exLast, "exact after graceful restart")
	apGot := getStream(t, ts2, ap.ID)
	if math.Float64bits(apGot.Estimate) != math.Float64bits(apLast.Estimate) ||
		apGot.Edges != apLast.Edges || apGot.ReservoirEdges != apLast.ReservoirEdges {
		t.Fatalf("approx state diverged after graceful restart:\n got %+v\nwant %+v", apGot, apLast)
	}
	if frames := s2.Metrics().Get(obs.StreamWALFrames); frames != 0 {
		t.Fatalf("graceful restart replayed %d WAL frames, want 0 (snapshot flushed)", frames)
	}
	// A mid-stream reservoir restore is reseeded, so from here the two
	// histories may diverge — but the estimate must stay within the
	// reported bound of further ingest.
	after := ingestOK(t, ts2, ap.ID, [][2]uint32{{5, 6}, {6, 7}, {5, 7}}, nil)
	if math.IsNaN(after.Estimate) || after.Estimate < 0 {
		t.Fatalf("estimate broke after restored ingest: %+v", after)
	}
}

// TestChaosDeleteRemovesPersistedState: deleting a session deletes
// its directory; restart does not resurrect it.
func TestChaosDeleteRemovesPersistedState(t *testing.T) {
	dir := t.TempDir()
	_, ts := newDurableServer(t, dir, Config{})
	st := createStream(t, ts, `{"mode": "exact", "vertices": 100}`)
	ingestOK(t, ts, st.ID, [][2]uint32{{1, 2}}, nil)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stream/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", st.ID)); !os.IsNotExist(err) {
		t.Fatalf("session directory survived delete: %v", err)
	}
	ts.Close()
	s2, _ := newDurableServer(t, dir, Config{})
	if s2.streams.len() != 0 {
		t.Fatalf("deleted session resurrected: %d live sessions", s2.streams.len())
	}
}

// TestRecoveringReadiness: while recovery replays, /readyz (and the
// legacy /healthz) answer 503 {"status":"recovering"} and session
// endpoints refuse, but /livez stays 200 — restarting a recovering
// process would only loop it.
func TestRecoveringReadiness(t *testing.T) {
	cfg := Config{DataDir: t.TempDir()}
	s := New(cfg) // Recover deliberately not called yet
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/readyz", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable || !contains(body, "recovering") {
			t.Fatalf("%s during recovery: status %d body %s", path, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("/livez during recovery: status %d body %s", resp.StatusCode, body)
	}
	if status, raw := postJSON(t, ts.URL+"/v1/stream", `{"mode": "approx"}`); status != http.StatusServiceUnavailable {
		t.Fatalf("create during recovery: status %d: %s", status, raw)
	}

	s.Recover()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after recovery: status %d body %s", resp.StatusCode, body)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestChaosWALFailureDegradesNotFails: permanent WAL failure never
// fails ingest — the session flips to durability "degraded", keeps
// counting, and /metrics says so.
func TestChaosWALFailureDegradesNotFails(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	s, ts := newDurableServer(t, dir, Config{})
	st := createStream(t, ts, `{"mode": "exact", "vertices": 100}`)
	if st.Durability != "wal" {
		t.Fatalf("durability %q, want wal", st.Durability)
	}

	if err := faults.Arm(FaultWALAppend, faults.Policy{Kind: faults.KindError, Permanent: true}); err != nil {
		t.Fatal(err)
	}
	got := ingestOK(t, ts, st.ID, [][2]uint32{{1, 2}, {2, 3}, {1, 3}}, nil)
	if got.Durability != "degraded" {
		t.Fatalf("durability %q after WAL failure, want degraded", got.Durability)
	}
	if got.Edges != 3 {
		t.Fatalf("ingest did not apply under WAL failure: %+v", got)
	}
	if s.Metrics().Get(obs.StreamWALDegraded) != 1 {
		t.Fatalf("stream.wal_degraded = %d, want 1", s.Metrics().Get(obs.StreamWALDegraded))
	}
	faults.Reset()
	// Still serving, still memory-only after the fault clears (only a
	// successful snapshot re-arms durability — the shutdown flush does).
	got = ingestOK(t, ts, st.ID, [][2]uint32{{3, 4}}, nil)
	if got.Edges != 4 || got.Durability != "degraded" {
		t.Fatalf("post-fault ingest: %+v", got)
	}
	ts.Close()
	s.Close() // flush re-arms durability and persists the final state
	s2, ts2 := newDurableServer(t, dir, Config{})
	rec := getStream(t, ts2, st.ID)
	if rec.Edges != 4 || rec.Durability != "wal" {
		t.Fatalf("flushed degraded session recovered wrong: %+v", rec)
	}
	_ = s2
}

// TestChaosTransientFsyncRetried: a fsync that fails once and then
// succeeds is absorbed by the bounded retry — no degradation, no
// error, nothing lost across a kill.
func TestChaosTransientFsyncRetried(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	_, ts := newDurableServer(t, dir, Config{})
	st := createStream(t, ts, `{"mode": "exact", "vertices": 100}`)
	if err := faults.Arm(FaultWALFsync, faults.Policy{Kind: faults.KindError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	got := ingestOK(t, ts, st.ID, [][2]uint32{{1, 2}, {2, 3}}, nil)
	if got.Durability != "wal" {
		t.Fatalf("transient fsync fault degraded the session: %+v", got)
	}
	faults.Reset()
	ts.Close() // kill
	_, ts2 := newDurableServer(t, dir, Config{})
	if rec := getStream(t, ts2, st.ID); rec.Edges != 2 {
		t.Fatalf("edges lost across retried fsync + kill: %+v", rec)
	}
}

// TestChaosFaultInjectionEveryPoint arms each serving-path fault
// point in turn and asserts the one invariant that matters: a 200
// means the operation fully happened, an error means it observably
// did not (or was absorbed by design), and no session or cache entry
// is ever corrupted. Runs under -race via `make chaos`.
func TestChaosFaultInjectionEveryPoint(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	s, ts := newDurableServer(t, dir, Config{})
	st := createStream(t, ts, `{"mode": "exact", "vertices": 100}`)
	base := ingestOK(t, ts, st.ID, [][2]uint32{{1, 2}}, nil)

	t.Run("serve.ingest.apply transient", func(t *testing.T) {
		defer faults.Reset()
		if err := faults.Arm(FaultIngestApply, faults.Policy{Kind: faults.KindError}); err != nil {
			t.Fatal(err)
		}
		status, raw := postJSON(t, ts.URL+"/v1/stream/"+st.ID+"/edges", ingestBody(t, [][2]uint32{{5, 6}}, nil))
		if status != http.StatusServiceUnavailable || !contains(string(raw), "transient_fault") {
			t.Fatalf("transient injected ingest: status %d: %s", status, raw)
		}
		faults.Reset()
		if got := getStream(t, ts, st.ID); got.Edges != base.Edges {
			t.Fatalf("refused ingest mutated the session: %+v", got)
		}
	})

	t.Run("serve.ingest.apply permanent", func(t *testing.T) {
		defer faults.Reset()
		if err := faults.Arm(FaultIngestApply, faults.Policy{Kind: faults.KindError, Permanent: true}); err != nil {
			t.Fatal(err)
		}
		status, raw := postJSON(t, ts.URL+"/v1/stream/"+st.ID+"/edges", ingestBody(t, [][2]uint32{{5, 6}}, nil))
		if status != http.StatusInternalServerError || !contains(string(raw), "injected_fault") {
			t.Fatalf("permanent injected ingest: status %d: %s", status, raw)
		}
	})

	t.Run("serve.build transient retried", func(t *testing.T) {
		defer faults.Reset()
		// Fails the first two attempts; the third (last) retry succeeds.
		if err := faults.Arm(FaultBuild, faults.Policy{Kind: faults.KindError, Count: 2}); err != nil {
			t.Fatal(err)
		}
		status, raw := postJSON(t, ts.URL+"/v1/count",
			`{"graph": {"type": "rmat", "scale": 7, "edge_factor": 8, "seed": 21}}`)
		if status != http.StatusOK {
			t.Fatalf("transient build fault not retried: status %d: %s", status, raw)
		}
		if decodeCount(t, raw).Triangles == 0 {
			t.Fatal("retried build returned zero triangles")
		}
	})

	t.Run("serve.build permanent fails fast then recovers", func(t *testing.T) {
		defer faults.Reset()
		if err := faults.Arm(FaultBuild, faults.Policy{Kind: faults.KindError, Permanent: true, Count: 1}); err != nil {
			t.Fatal(err)
		}
		body := `{"graph": {"type": "rmat", "scale": 7, "edge_factor": 8, "seed": 22}}`
		status, raw := postJSON(t, ts.URL+"/v1/count", body)
		if status != http.StatusInternalServerError || !contains(string(raw), "injected_fault") {
			t.Fatalf("permanent build fault: status %d: %s", status, raw)
		}
		// The failed flight retired; the next request builds cleanly.
		if status, raw = postJSON(t, ts.URL+"/v1/count", body); status != http.StatusOK {
			t.Fatalf("post-fault rebuild: status %d: %s", status, raw)
		}
	})

	t.Run("serve.preprocess transient retried", func(t *testing.T) {
		defer faults.Reset()
		if err := faults.Arm(FaultPreprocess, faults.Policy{Kind: faults.KindError, Count: 1}); err != nil {
			t.Fatal(err)
		}
		status, raw := postJSON(t, ts.URL+"/v1/count",
			`{"graph": {"type": "rmat", "scale": 7, "edge_factor": 8, "seed": 23}}`)
		if status != http.StatusOK {
			t.Fatalf("transient preprocess fault not retried: status %d: %s", status, raw)
		}
	})

	t.Run("serve.cache.admit skips caching, serves anyway", func(t *testing.T) {
		defer faults.Reset()
		if err := faults.Arm(FaultCacheAdmit, faults.Policy{Kind: faults.KindError, Count: 64}); err != nil {
			t.Fatal(err)
		}
		body := `{"graph": {"type": "rmat", "scale": 7, "edge_factor": 8, "seed": 24}, "no_cache": true}`
		status, raw := postJSON(t, ts.URL+"/v1/count", body)
		if status != http.StatusOK {
			t.Fatalf("admit-faulted count: status %d: %s", status, raw)
		}
		first := decodeCount(t, raw)
		if s.Metrics().Get("cache.admit_faults") == 0 {
			t.Fatal("cache.admit_faults never fired")
		}
		builds := s.Metrics().Get("cache.builds")
		status, raw = postJSON(t, ts.URL+"/v1/count", body)
		if status != http.StatusOK {
			t.Fatalf("second admit-faulted count: status %d: %s", status, raw)
		}
		if decodeCount(t, raw).Triangles != first.Triangles {
			t.Fatal("rebuild after admission fault changed the answer")
		}
		if s.Metrics().Get("cache.builds") <= builds {
			t.Fatal("admission fault did not force a rebuild (entry was cached)")
		}
	})

	t.Run("wal latency injection slows but never fails", func(t *testing.T) {
		defer faults.Reset()
		if err := faults.Arm(FaultWALAppend, faults.Policy{Kind: faults.KindLatency, Latency: 2 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		got := ingestOK(t, ts, st.ID, [][2]uint32{{7, 8}}, nil)
		if got.Durability != "wal" {
			t.Fatalf("latency fault degraded durability: %+v", got)
		}
	})

	// Whatever faults fired above, the persisted state must still
	// recover cleanly: fault injection may degrade, never corrupt.
	final := getStream(t, ts, st.ID)
	ts.Close()
	s.Close()
	_, ts2 := newDurableServer(t, dir, Config{})
	exactStateEqual(t, getStream(t, ts2, st.ID), final, "after chaos suite")
}

// TestShutdownCancelsDetachedBuilds: Close cancels an in-flight
// detached preprocess (its caller long gone on a 1ms deadline) and
// waits for the goroutine — the goroutine count returns to baseline,
// the leak check the drain path never had.
func TestShutdownCancelsDetachedBuilds(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())

	// A deadline far too short for a scale-13 build: the request 504s
	// while the detached build keeps running.
	status, raw := postJSON(t, ts.URL+"/v1/count",
		`{"graph": {"type": "rmat", "scale": 13, "edge_factor": 16, "seed": 31}, "timeout_ms": 1}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("short-deadline count: status %d: %s", status, raw)
	}

	ts.Close()
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not cancel the in-flight detached build")
	}
	// The build goroutines must actually exit, not just be abandoned.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmitReleasesSlotOnDisconnectedClient: a queued request whose
// context died may still win the semaphore race; admit must hand the
// slot straight back instead of running work for a client that is
// gone. With a cancelled context admit must always refuse, and the
// semaphore must end every iteration empty.
func TestAdmitReleasesSlotOnDisconnectedClient(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	for i := 0; i < 200; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // the client is already gone
		rec := httptest.NewRecorder()
		release, ok := s.admit(ctx, rec)
		if ok {
			release()
			t.Fatalf("iteration %d: admitted a request with a dead context", i)
		}
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("iteration %d: refused with %d, want 504", i, rec.Code)
		}
		if len(s.sem) != 0 {
			t.Fatalf("iteration %d: semaphore slot leaked (%d held)", i, len(s.sem))
		}
	}
	if s.met.Get("serve.queue_timeouts") != 200 {
		t.Fatalf("serve.queue_timeouts = %d, want 200", s.met.Get("serve.queue_timeouts"))
	}
	_ = fmt.Sprint() // keep fmt imported alongside future debugging
}
