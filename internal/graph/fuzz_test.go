package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList ensures the textual parser never panics and that
// anything it accepts builds a valid graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# comment\n5 5\n"))
	f.Add([]byte(""))
	f.Add([]byte("a b\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Vertex IDs size the graph (|V| = maxID+1 by design), so cap
		// them to keep the harness within memory: any digit run
		// longer than 6 would allocate gigabytes legitimately.
		run := 0
		for _, c := range data {
			if c >= '0' && c <= '9' {
				run++
				if run > 6 {
					return
				}
			} else {
				run = 0
			}
		}
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input built invalid graph: %v", err)
		}
	})
}

// FuzzReadBinary ensures the binary loader rejects arbitrary bytes
// gracefully and round-trips anything it accepts.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	g := FromEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOptions{})
	_ = g.WriteBinary(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("LOTG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must re-serialize byte-identically.
		var out bytes.Buffer
		if err := g.WriteBinary(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		g2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumDirectedEdges() != g.NumDirectedEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzFromEdges ensures the builder normalizes arbitrary edge lists
// into valid simple graphs.
func FuzzFromEdges(f *testing.F) {
	f.Add(uint32(0), uint32(1), uint32(1), uint32(1))
	f.Add(uint32(7), uint32(7), uint32(3), uint32(0))
	f.Fuzz(func(t *testing.T, a, b, c, d uint32) {
		// Bound IDs to keep allocation sane.
		const mod = 1 << 12
		g := FromEdges([]Edge{{U: a % mod, V: b % mod}, {U: c % mod, V: d % mod}}, BuildOptions{})
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
