package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lotustc/internal/sched"
)

var buildPool = sched.NewPool(4)

func TestFromEdgesParallelMatchesSequential(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		var edges []Edge
		for i := 0; i < rng.Intn(8*n); i++ {
			edges = append(edges, Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		keep := rng.Intn(2) == 0
		opt := BuildOptions{NumVertices: n, KeepSelfLoops: keep}
		a := FromEdges(edges, opt)
		b := FromEdgesParallel(edges, opt, buildPool)
		return reflect.DeepEqual(a.Offsets(), b.Offsets()) &&
			reflect.DeepEqual(a.RawNeighbors(), b.RawNeighbors())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesParallelEmptyAndNilPool(t *testing.T) {
	g := FromEdgesParallel(nil, BuildOptions{NumVertices: 3}, nil)
	if g.NumVertices() != 3 || g.NumEdges() != 0 {
		t.Fatalf("empty parallel build: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	g2 := FromEdgesParallel([]Edge{{U: 0, V: 1}}, BuildOptions{}, nil)
	if g2.NumEdges() != 1 {
		t.Fatal("nil pool build broken")
	}
}

func TestFromEdgesParallelSingleWorker(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 0, V: 1}}
	a := FromEdges(edges, BuildOptions{})
	b := FromEdgesParallel(edges, BuildOptions{}, sched.NewPool(1))
	if !reflect.DeepEqual(a.RawNeighbors(), b.RawNeighbors()) {
		t.Fatal("single-worker parallel build differs")
	}
}

func BenchmarkBuilders(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1 << 14
	edges := make([]Edge, 8*n)
	for i := range edges {
		edges[i] = Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FromEdges(edges, BuildOptions{NumVertices: n})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FromEdgesParallel(edges, BuildOptions{NumVertices: n}, buildPool)
		}
	})
}
