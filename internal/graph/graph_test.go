package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperExample is the 9-vertex example of Figure 2 (hubs 0 and 1).
func paperExample() *Graph {
	return FromEdges([]Edge{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 6},
		{1, 3}, {1, 4}, {1, 5}, {1, 6}, {1, 7},
		{2, 3}, {4, 6}, {6, 8},
	}, BuildOptions{})
}

func TestFromEdgesBasic(t *testing.T) {
	g := paperExample()
	if got := g.NumVertices(); got != 9 {
		t.Fatalf("NumVertices = %d, want 9", got)
	}
	if got := g.NumEdges(); got != 13 {
		t.Fatalf("NumEdges = %d, want 13", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantNb := []uint32{1, 2, 3, 4, 6}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, wantNb) {
		t.Fatalf("Neighbors(0) = %v, want %v", got, wantNb)
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}}, BuildOptions{})
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dedup + self-loop removal)", got)
	}
	if g.Degree(2) != 1 {
		t.Fatalf("Degree(2) = %d, want 1", g.Degree(2))
	}
	kept := FromEdges([]Edge{{0, 0}, {0, 1}}, BuildOptions{KeepSelfLoops: true})
	if !kept.HasEdge(0, 0) {
		t.Fatal("KeepSelfLoops dropped the self loop")
	}
}

func TestFromEdgesEmptyAndPinned(t *testing.T) {
	g := FromEdges(nil, BuildOptions{})
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	g = FromEdges(nil, BuildOptions{NumVertices: 5})
	if g.NumVertices() != 5 {
		t.Fatalf("pinned V = %d, want 5", g.NumVertices())
	}
	for v := uint32(0); v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("vertex %d has degree %d in edgeless graph", v, g.Degree(v))
		}
	}
}

func TestOrient(t *testing.T) {
	g := paperExample()
	og := g.Orient()
	if !og.Oriented {
		t.Fatal("Orient result not marked oriented")
	}
	if og.NumEdges() != g.NumEdges() {
		t.Fatalf("oriented |E| = %d, want %d", og.NumEdges(), g.NumEdges())
	}
	if err := og.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Vertex 6 has neighbours {0,1,4,8}; oriented keeps {0,1,4}.
	if got, want := og.Neighbors(6), []uint32{0, 1, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("oriented Neighbors(6) = %v, want %v", got, want)
	}
	if og.Degree(0) != 0 {
		t.Fatalf("vertex 0 should have empty forward list, got %d", og.Degree(0))
	}
}

func TestHasEdge(t *testing.T) {
	g := paperExample()
	cases := []struct {
		v, u uint32
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {2, 3, true}, {8, 6, true},
		{0, 8, false}, {5, 7, false}, {3, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.v, c.u); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.v, c.u, got, c.want)
		}
	}
}

func TestRelabelIdentityAndReverse(t *testing.T) {
	g := paperExample()
	n := g.NumVertices()
	id := make([]uint32, n)
	for i := range id {
		id[i] = uint32(i)
	}
	rg := g.Relabel(id)
	if !reflect.DeepEqual(rg.Offsets(), g.Offsets()) || !reflect.DeepEqual(rg.RawNeighbors(), g.RawNeighbors()) {
		t.Fatal("identity relabel changed the graph")
	}
	rev := make([]uint32, n)
	for i := range rev {
		rev[i] = uint32(n - 1 - i)
	}
	gr := g.Relabel(rev)
	if err := gr.Validate(); err != nil {
		t.Fatalf("Validate after reverse relabel: %v", err)
	}
	// Edge (0,1) becomes (8,7).
	if !gr.HasEdge(8, 7) {
		t.Fatal("reverse relabel lost edge (0,1)->(8,7)")
	}
	if gr.NumEdges() != g.NumEdges() {
		t.Fatalf("relabel changed |E|: %d vs %d", gr.NumEdges(), g.NumEdges())
	}
}

func TestRelabelPreservesDegreeMultiset(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		var edges []Edge
		for i := 0; i < 3*n; i++ {
			edges = append(edges, Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
		}
		g := FromEdges(edges, BuildOptions{NumVertices: n})
		perm := rng.Perm(n)
		ra := make([]uint32, n)
		for i, p := range perm {
			ra[i] = uint32(p)
		}
		rg := g.Relabel(ra)
		want := append([]int32(nil), g.Degrees()...)
		got := append([]int32(nil), rg.Degrees()...)
		sortInt32(want)
		sortInt32(got)
		return reflect.DeepEqual(want, got) && rg.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := paperExample()
	edges := g.Edges()
	if int64(len(edges)) != g.NumEdges() {
		t.Fatalf("Edges() returned %d, want %d", len(edges), g.NumEdges())
	}
	g2 := FromEdges(edges, BuildOptions{NumVertices: g.NumVertices()})
	if !reflect.DeepEqual(g2.Offsets(), g.Offsets()) || !reflect.DeepEqual(g2.RawNeighbors(), g.RawNeighbors()) {
		t.Fatal("Edges -> FromEdges did not round-trip")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, oriented := range []bool{false, true} {
		g := paperExample()
		if oriented {
			g = g.Orient()
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		if g2.Oriented != oriented {
			t.Fatalf("oriented flag lost: got %v", g2.Oriented)
		}
		if !reflect.DeepEqual(g2.Offsets(), g.Offsets()) || !reflect.DeepEqual(g2.RawNeighbors(), g.RawNeighbors()) {
			t.Fatal("binary round trip mismatch")
		}
	}
}

func TestSaveLoadFileErrors(t *testing.T) {
	g := paperExample()
	if err := g.SaveFile("/nonexistent-dir/x.lotg"); err == nil {
		t.Fatal("SaveFile to unwritable path succeeded")
	}
	if _, err := LoadFile("/nonexistent-dir/x.lotg"); err == nil {
		t.Fatal("LoadFile of missing file succeeded")
	}
}

func TestBinaryRejectsTamperedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := paperExample().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Oversized vertex count header (bytes 12..19, little endian).
	huge := append([]byte(nil), data...)
	huge[12], huge[13], huge[14], huge[15] = 0xFF, 0xFF, 0xFF, 0xFF
	huge[16] = 0x01 // nv >= 2^32
	if _, err := ReadBinary(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized vertex count accepted")
	}
	// Truncated stream.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Out-of-range neighbour: flip the last neighbour ID high byte.
	oor := append([]byte(nil), data...)
	oor[len(oor)-1] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(oor)); err == nil {
		t.Fatal("out-of-range neighbour accepted")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE0000000000000000000000000000"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty stream")
	}
}

func TestEdgeListTextRoundTrip(t *testing.T) {
	in := "# comment\n0 1\n1 2\n% another\n2 0\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumEdges() != 3 || g.NumVertices() != 3 {
		t.Fatalf("triangle parse got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("round trip |E| = %d", g2.NumEdges())
	}
}

func TestEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewBufferString("0\n")); err == nil {
		t.Fatal("expected error for short line")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("a b\n")); err == nil {
		t.Fatal("expected error for non-numeric ID")
	}
}

func TestTopologyBytes(t *testing.T) {
	g := paperExample()
	want := 8*int64(g.NumVertices()+1) + 4*2*g.NumEdges()
	if got := g.TopologyBytes(); got != want {
		t.Fatalf("TopologyBytes = %d, want %d", got, want)
	}
}

func TestMaxAndAverageDegree(t *testing.T) {
	g := paperExample()
	if got := g.MaxDegree(); got != 6 {
		t.Fatalf("MaxDegree = %d, want 6 (vertex 1)", got)
	}
	wantAvg := float64(2*13) / 9
	if got := g.AverageDegree(); got != wantAvg {
		t.Fatalf("AverageDegree = %v, want %v", got, wantAvg)
	}
}

func TestGiniOfDegrees(t *testing.T) {
	// A star is maximally skewed; a ring has Gini 0.
	var starEdges []Edge
	for i := uint32(1); i < 64; i++ {
		starEdges = append(starEdges, Edge{0, i})
	}
	star := FromEdges(starEdges, BuildOptions{})
	var ringEdges []Edge
	for i := uint32(0); i < 64; i++ {
		ringEdges = append(ringEdges, Edge{i, (i + 1) % 64})
	}
	ring := FromEdges(ringEdges, BuildOptions{})
	if gs, gr := star.GiniOfDegrees(), ring.GiniOfDegrees(); gs <= gr || gr > 1e-9 {
		t.Fatalf("Gini star=%v ring=%v; want star >> ring = 0", gs, gr)
	}
}

func TestCheckIDsFit(t *testing.T) {
	if err := CheckIDsFit(1<<16, 16); err != nil {
		t.Fatalf("64K vertices should fit 16 bits: %v", err)
	}
	if err := CheckIDsFit(1<<16+1, 16); err == nil {
		t.Fatal("expected overflow error")
	}
	if err := CheckIDsFit(1<<30, 32); err != nil {
		t.Fatalf("32-bit check should pass: %v", err)
	}
}

func TestInduced(t *testing.T) {
	g := paperExample()
	// Hubs {0,1} plus vertices 3,4: edges 0-1, 0-3, 0-4, 1-3, 1-4.
	sub := g.Induced([]uint32{0, 1, 3, 4})
	if sub.NumVertices() != 4 || sub.NumEdges() != 5 {
		t.Fatalf("induced V=%d E=%d, want 4/5", sub.NumVertices(), sub.NumEdges())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reordered vertex set must renumber accordingly: vs[0] -> 0.
	sub2 := g.Induced([]uint32{4, 0})
	if !sub2.HasEdge(0, 1) {
		t.Fatal("edge 4-0 missing after renumber")
	}
	// Empty set.
	if g.Induced(nil).NumVertices() != 0 {
		t.Fatal("empty induced sub-graph")
	}
	// Duplicates panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicates")
		}
	}()
	g.Induced([]uint32{1, 1})
}

func TestNewPanicsOnMalformed(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("nonzero start", func() { New([]int64{1, 2}, []uint32{0, 0}, false) })
	mustPanic("non-monotone", func() { New([]int64{0, 2, 1}, []uint32{0}, false) })
	mustPanic("length mismatch", func() { New([]int64{0, 1}, []uint32{0, 0}, false) })
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]uint32{{1, 2}, {2}, {}})
	if g.NumEdges() != 3 {
		t.Fatalf("triangle from adjacency: |E| = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
