package graph

import "slices"

// BuildOptions control how FromEdges normalizes a raw edge list.
type BuildOptions struct {
	// KeepSelfLoops retains self edges. LOTUS preprocessing skips
	// self-edges (Alg 2 line 11-12); the default removes them at
	// build time so every algorithm sees the same simple graph.
	KeepSelfLoops bool
	// NumVertices pins |V|. When zero, |V| is 1 + the maximum vertex
	// ID appearing in the edge list (or 0 for an empty list).
	NumVertices int
}

// FromEdges builds a symmetric, deduplicated, sorted CSX graph from an
// arbitrary undirected edge list. Both directions of every edge are
// materialized, parallel edges collapse to one, and self loops are
// dropped unless KeepSelfLoops is set.
func FromEdges(edges []Edge, opt BuildOptions) *Graph {
	n := opt.NumVertices
	for _, e := range edges {
		if int(e.U)+1 > n {
			n = int(e.U) + 1
		}
		if int(e.V)+1 > n {
			n = int(e.V) + 1
		}
	}

	// Count both directions per endpoint.
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			if !opt.KeepSelfLoops {
				continue
			}
			deg[e.U+1]++
			continue
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	offsets := deg
	fill := make([]int64, n)
	copy(fill, offsets[:n])
	nbrs := make([]uint32, offsets[n])
	push := func(v, u uint32) {
		nbrs[fill[v]] = u
		fill[v]++
	}
	for _, e := range edges {
		if e.U == e.V {
			if opt.KeepSelfLoops {
				push(e.U, e.V)
			}
			continue
		}
		push(e.U, e.V)
		push(e.V, e.U)
	}

	// Sort each adjacency list and deduplicate in place.
	outOff := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		seg := nbrs[lo:hi]
		slices.Sort(seg)
		start := w
		for i, u := range seg {
			if i > 0 && seg[i-1] == u {
				continue
			}
			nbrs[w] = u
			w++
		}
		outOff[v] = start
	}
	outOff[n] = w
	// outOff currently holds start positions; convert to CSX offsets.
	off := make([]int64, n+1)
	copy(off, outOff)
	return &Graph{offsets: off, nbrs: nbrs[:w:w]}
}

// FromAdjacency builds a graph from explicit adjacency lists, used by
// tests to author small graphs directly. The lists are interpreted as
// undirected edges: every (v,u) mentioned is symmetrized.
func FromAdjacency(adj [][]uint32) *Graph {
	var edges []Edge
	for v, nb := range adj {
		for _, u := range nb {
			edges = append(edges, Edge{U: uint32(v), V: u})
		}
	}
	return FromEdges(edges, BuildOptions{NumVertices: len(adj)})
}
