package graph

import (
	"slices"
	"sync/atomic"

	"lotustc/internal/sched"
)

// FromEdgesParallel is FromEdges with the three heavy passes —
// degree counting, slot filling and per-list sort+dedup —
// parallelized over a pool. It produces a graph byte-identical to
// FromEdges (tests enforce it); use it when ingesting edge lists on
// the hot path (the generators at harness scale spend most of their
// time here).
func FromEdgesParallel(edges []Edge, opt BuildOptions, pool *sched.Pool) *Graph {
	if pool == nil {
		pool = sched.NewPool(0)
	}
	n := opt.NumVertices
	for _, e := range edges {
		if int(e.U)+1 > n {
			n = int(e.U) + 1
		}
		if int(e.V)+1 > n {
			n = int(e.V) + 1
		}
	}

	// Pass 1: per-endpoint degree counts (atomic adds; contention is
	// spread across the whole array).
	deg := make([]int64, n+1)
	pool.For(len(edges), 0, func(_, start, end int) {
		for _, e := range edges[start:end] {
			if e.U == e.V {
				if !opt.KeepSelfLoops {
					continue
				}
				atomic.AddInt64(&deg[e.U+1], 1)
				continue
			}
			atomic.AddInt64(&deg[e.U+1], 1)
			atomic.AddInt64(&deg[e.V+1], 1)
		}
	})
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	offsets := deg

	// Pass 2: fill slots, claiming positions with atomic increments.
	fill := make([]int64, n)
	copy(fill, offsets[:n])
	nbrs := make([]uint32, offsets[n])
	push := func(v, u uint32) {
		slot := atomic.AddInt64(&fill[v], 1) - 1
		nbrs[slot] = u
	}
	pool.For(len(edges), 0, func(_, start, end int) {
		for _, e := range edges[start:end] {
			if e.U == e.V {
				if opt.KeepSelfLoops {
					push(e.U, e.V)
				}
				continue
			}
			push(e.U, e.V)
			push(e.V, e.U)
		}
	})

	// Pass 3: sort and dedup each list in parallel, writing the kept
	// prefix length per vertex.
	kept := make([]int64, n)
	pool.For(n, 0, func(_, start, end int) {
		for v := start; v < end; v++ {
			seg := nbrs[offsets[v]:offsets[v+1]]
			slices.Sort(seg)
			w := 0
			for i, u := range seg {
				if i > 0 && seg[i-1] == u {
					continue
				}
				seg[w] = u
				w++
			}
			kept[v] = int64(w)
		}
	})

	// Compact the deduplicated lists (sequential scan; cheap).
	outOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		outOff[v+1] = outOff[v] + kept[v]
	}
	out := make([]uint32, outOff[n])
	pool.For(n, 0, func(_, start, end int) {
		for v := start; v < end; v++ {
			copy(out[outOff[v]:outOff[v+1]], nbrs[offsets[v]:offsets[v]+kept[v]])
		}
	})
	return &Graph{offsets: outOff, nbrs: out}
}
