package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Binary graph file format ("LOTG"):
//
//	magic   [4]byte  "LOTG"
//	version uint32   1
//	flags   uint32   bit0 = oriented
//	V       uint64
//	E       uint64   number of stored adjacency slots (len nbrs)
//	offsets [V+1]int64
//	nbrs    [E]uint32
//
// All fields are little-endian. The format mirrors the in-memory CSX
// layout so loading is a straight sequential read.

const (
	fileMagic   = "LOTG"
	fileVersion = 1
)

// WriteBinary serializes g to w in the LOTG format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var flags uint32
	if g.Oriented {
		flags |= 1
	}
	hdr := []any{uint32(fileVersion), flags, uint64(g.NumVertices()), uint64(len(g.nbrs))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.nbrs); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses a LOTG stream produced by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, flags uint32
	var nv, ne uint64
	for _, p := range []any{&version, &flags, &nv, &ne} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if version != fileVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	if nv >= 1<<32 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds 32-bit IDs", nv)
	}
	// Read the arrays in bounded chunks so a malicious header cannot
	// force a huge up-front allocation: memory grows only as data
	// actually arrives.
	const chunk = 1 << 20
	offsets := make([]int64, 0, minU64(nv+1, chunk))
	for read := uint64(0); read < nv+1; {
		n := minU64(nv+1-read, chunk)
		buf := make([]int64, n)
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		offsets = append(offsets, buf...)
		read += n
	}
	nbrs := make([]uint32, 0, minU64(ne, chunk))
	for read := uint64(0); read < ne; {
		n := minU64(ne-read, chunk)
		buf := make([]uint32, n)
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: reading neighbours: %w", err)
		}
		nbrs = append(nbrs, buf...)
		read += n
	}
	if offsets[0] != 0 || offsets[nv] != int64(ne) {
		return nil, fmt.Errorf("graph: inconsistent offsets")
	}
	for i := uint64(1); i <= nv; i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	for _, u := range nbrs {
		if uint64(u) >= nv {
			return nil, fmt.Errorf("graph: neighbour ID %d out of range", u)
		}
	}
	return &Graph{offsets: offsets, nbrs: nbrs, Oriented: flags&1 != 0}, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// SaveFile writes g to path in the LOTG format.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a LOTG file from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// ReadEdgeList parses a whitespace-separated textual edge list ("u v"
// per line; '#' and '%' comment lines ignored) into a symmetric graph.
// This is the interchange format of SNAP/KONECT dumps.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || txt[0] == '#' || txt[0] == '%' {
			continue
		}
		fields := strings.Fields(txt)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need two vertex IDs", line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		edges = append(edges, Edge{U: uint32(u), V: uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(edges, BuildOptions{}), nil
}

// WriteEdgeList emits the undirected edge list of g as text.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}
