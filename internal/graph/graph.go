// Package graph provides the CSX (compressed sparse rows/columns) graph
// representation used throughout the LOTUS reproduction, together with
// builders that normalize raw edge lists (deduplication, self-loop
// removal, symmetrization) and utilities for degrees, orientation and
// relabeling.
//
// Following the paper (§5.1.2), a graph is stored with |V|+1 index
// values of 8 bytes each and |E| neighbour IDs of 4 bytes each. Vertex
// IDs are uint32; the implementation therefore supports graphs with up
// to 2^32-1 vertices, which covers every public dataset the paper uses.
package graph

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Graph is an adjacency structure in CSX format. The neighbour list of
// vertex v is Nbrs[Offsets[v]:Offsets[v+1]], always sorted ascending.
//
// A Graph may represent either a symmetric (undirected) graph, where
// every edge {u,v} appears in both adjacency lists, or an oriented
// "forward" graph, where the list of v holds only neighbours u < v
// (the N^< sets of the paper). Orientation is tracked by the Oriented
// flag so that statistics can interpret |E| correctly.
type Graph struct {
	offsets []int64
	nbrs    []uint32
	// Oriented reports that each undirected edge is stored exactly
	// once, in the adjacency list of its higher-ID endpoint.
	Oriented bool
}

// Edge is one undirected edge between vertices U and V.
type Edge struct {
	U, V uint32
}

// New assembles a Graph from a prebuilt offsets/neighbours pair.
// It validates the CSX invariants and panics on malformed input, since
// a bad topology would corrupt every downstream computation.
func New(offsets []int64, nbrs []uint32, oriented bool) *Graph {
	if len(offsets) == 0 {
		offsets = []int64{0}
	}
	if offsets[0] != 0 {
		panic("graph: offsets must start at 0")
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			panic(fmt.Sprintf("graph: offsets not monotone at %d", i))
		}
	}
	if offsets[len(offsets)-1] != int64(len(nbrs)) {
		panic("graph: final offset does not match neighbour count")
	}
	return &Graph{offsets: offsets, nbrs: nbrs, Oriented: oriented}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumDirectedEdges returns the number of stored adjacency slots. For a
// symmetric graph this is 2|E|; for an oriented graph it is |E|.
func (g *Graph) NumDirectedEdges() int64 { return int64(len(g.nbrs)) }

// NumEdges returns the number of undirected edges |E|.
func (g *Graph) NumEdges() int64 {
	if g.Oriented {
		return int64(len(g.nbrs))
	}
	return int64(len(g.nbrs)) / 2
}

// Degree returns the length of v's stored neighbour list.
func (g *Graph) Degree(v uint32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns v's neighbour list (sorted ascending). The returned
// slice aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.nbrs[g.offsets[v]:g.offsets[v+1]]
}

// Offsets exposes the CSX index array (length |V|+1).
func (g *Graph) Offsets() []int64 { return g.offsets }

// RawNeighbors exposes the flat neighbour array.
func (g *Graph) RawNeighbors() []uint32 { return g.nbrs }

// MaxDegree returns the largest stored degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	maxd := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(uint32(v)); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// AverageDegree returns the mean stored degree.
func (g *Graph) AverageDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(g.nbrs)) / float64(n)
}

// HasEdge reports whether u appears in v's neighbour list, via binary
// search over the sorted list.
func (g *Graph) HasEdge(v, u uint32) bool {
	nb := g.Neighbors(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= u })
	return i < len(nb) && nb[i] == u
}

// Degrees returns the per-vertex degree array.
func (g *Graph) Degrees() []int32 {
	d := make([]int32, g.NumVertices())
	for v := range d {
		d[v] = int32(g.offsets[v+1] - g.offsets[v])
	}
	return d
}

// Edges returns the undirected edge list. For symmetric graphs each
// edge {u,v} is reported once with U <= V; for oriented graphs the
// stored (higher, lower) pairs are reported as (lower, higher).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if g.Oriented || u <= uint32(v) {
				out = append(out, Edge{U: u, V: uint32(v)})
			}
		}
	}
	return out
}

// TopologyBytes returns the memory footprint of the CSX topology
// following the paper's accounting: 8 bytes per index value and 4
// bytes per neighbour ID (Table 7).
func (g *Graph) TopologyBytes() int64 {
	return 8*int64(len(g.offsets)) + 4*int64(len(g.nbrs))
}

// Validate checks structural invariants: sorted neighbour lists,
// in-range IDs, no self loops, and (for symmetric graphs) that every
// edge has its mirror. It is O(|E| log d) and intended for tests.
func (g *Graph) Validate() error {
	n := uint32(g.NumVertices())
	for v := uint32(0); v < n; v++ {
		nb := g.Neighbors(v)
		for i, u := range nb {
			if u >= n {
				return fmt.Errorf("vertex %d: neighbour %d out of range", v, u)
			}
			if u == v {
				return fmt.Errorf("vertex %d: self loop", v)
			}
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("vertex %d: neighbours unsorted or duplicated at %d", v, i)
			}
			if g.Oriented && u >= v {
				return fmt.Errorf("vertex %d: oriented graph holds neighbour %d >= v", v, u)
			}
			if !g.Oriented && !g.HasEdge(u, v) {
				return fmt.Errorf("edge (%d,%d) missing its mirror", v, u)
			}
		}
	}
	return nil
}

// Orient converts a symmetric graph into the forward orientation used
// by Algorithm 1 and by LOTUS preprocessing: the list of v retains only
// neighbours u < v. The input graph is unchanged.
func (g *Graph) Orient() *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(uint32(v))
		// Neighbour lists are sorted, so the count of u < v is a prefix.
		offsets[v+1] = offsets[v] + int64(countBelow(nb, uint32(v)))
	}
	nbrs := make([]uint32, offsets[n])
	for v := 0; v < n; v++ {
		nb := g.Neighbors(uint32(v))
		k := countBelow(nb, uint32(v))
		copy(nbrs[offsets[v]:offsets[v+1]], nb[:k])
	}
	return &Graph{offsets: offsets, nbrs: nbrs, Oriented: true}
}

// countBelow returns the number of leading entries of the sorted slice
// nb that are strictly below limit.
func countBelow(nb []uint32, limit uint32) int {
	return sort.Search(len(nb), func(i int) bool { return nb[i] >= limit })
}

// Relabel applies the relabeling array ra (indexed by old ID, holding
// the new ID; a permutation of 0..|V|-1) and returns the renamed graph
// with re-sorted neighbour lists. Orientation is not preserved: the
// result is symmetric iff the input was, but an oriented input would
// lose its ordering property, so Relabel requires a symmetric input.
func (g *Graph) Relabel(ra []uint32) *Graph {
	if g.Oriented {
		panic("graph: Relabel requires a symmetric graph")
	}
	n := g.NumVertices()
	if len(ra) != n {
		panic("graph: relabeling array length mismatch")
	}
	offsets := make([]int64, n+1)
	for old := 0; old < n; old++ {
		offsets[ra[old]+1] = int64(g.Degree(uint32(old)))
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	nbrs := make([]uint32, offsets[n])
	for old := 0; old < n; old++ {
		newV := ra[old]
		dst := nbrs[offsets[newV]:offsets[newV+1]]
		for i, u := range g.Neighbors(uint32(old)) {
			dst[i] = ra[u]
		}
		sortUint32(dst)
	}
	return &Graph{offsets: offsets, nbrs: nbrs}
}

// sortUint32 sorts a neighbour list ascending; slices.Sort (pdqsort,
// no comparison closure) keeps relabeling off the preprocessing
// critical path.
func sortUint32(s []uint32) {
	slices.Sort(s)
}

// CheckIDsFit verifies that every vertex ID fits in the given bit
// width; LOTUS stores HE neighbour IDs in 16 bits (§4.2).
func CheckIDsFit(n int, bits uint) error {
	if bits >= 32 {
		return nil
	}
	if n > (1 << bits) {
		return fmt.Errorf("graph: %d vertices exceed %d-bit IDs", n, bits)
	}
	return nil
}

// Induced returns the sub-graph induced by the given vertex set,
// with vertices renumbered 0..len(vs)-1 in the order given. Requires
// a symmetric input (the result is symmetric). Duplicate entries in
// vs panic, as they would silently alias rows.
func (g *Graph) Induced(vs []uint32) *Graph {
	if g.Oriented {
		panic("graph: Induced requires a symmetric graph")
	}
	idx := make(map[uint32]uint32, len(vs))
	for i, v := range vs {
		if _, dup := idx[v]; dup {
			panic("graph: Induced vertex set has duplicates")
		}
		idx[v] = uint32(i)
	}
	var edges []Edge
	for _, v := range vs {
		nv := idx[v]
		for _, u := range g.Neighbors(v) {
			if nu, ok := idx[u]; ok && nu > nv {
				edges = append(edges, Edge{U: nv, V: nu})
			}
		}
	}
	return FromEdges(edges, BuildOptions{NumVertices: len(vs)})
}

// GiniOfDegrees returns the Gini coefficient of the degree
// distribution, a convenient scalar skewness measure used by tests and
// the harness to separate power-law from uniform generators.
func (g *Graph) GiniOfDegrees() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	d := make([]float64, n)
	var sum float64
	for v := 0; v < n; v++ {
		d[v] = float64(g.Degree(uint32(v)))
		sum += d[v]
	}
	if sum == 0 {
		return 0
	}
	sort.Float64s(d)
	var cum float64
	for i, x := range d {
		cum += float64(i+1) * x
	}
	gini := (2*cum)/(float64(n)*sum) - (float64(n)+1)/float64(n)
	return math.Max(0, gini)
}
