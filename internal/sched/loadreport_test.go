package sched

import (
	"sync/atomic"
	"testing"
)

func TestForTimedCountsClaims(t *testing.T) {
	p := NewPool(2)
	rep := p.ForTimed(8, 1, func(w, s, e int) {})
	if rep.Claims != 8 {
		t.Fatalf("Claims = %d, want 8 (one per unit chunk)", rep.Claims)
	}
	if rep.Steals != 0 {
		t.Fatalf("shared-counter scheduler reported %d steals", rep.Steals)
	}
}

func TestRunTasksCountsClaims(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := NewPool(workers)
		var ran atomic.Int64
		rep := p.RunTasks(17, func(w, task int) { ran.Add(1) })
		if rep.Claims != 17 || ran.Load() != 17 {
			t.Fatalf("workers=%d: Claims = %d, ran = %d, want 17", workers, rep.Claims, ran.Load())
		}
	}
}

// TestStealingPoolLoadReport: every task is claimed exactly once
// (steals move a claim between workers, they never duplicate it), and
// a single worker never steals.
func TestStealingPoolLoadReport(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewStealingPool(workers)
		var ran atomic.Int64
		rep := p.RunTasks(200, func(w, task int) { ran.Add(1) })
		if ran.Load() != 200 {
			t.Fatalf("workers=%d: ran %d tasks, want 200", workers, ran.Load())
		}
		if rep.Claims != 200 {
			t.Fatalf("workers=%d: Claims = %d, want 200", workers, rep.Claims)
		}
		if rep.Steals > rep.Claims {
			t.Fatalf("workers=%d: Steals %d > Claims %d", workers, rep.Steals, rep.Claims)
		}
		if workers == 1 && rep.Steals != 0 {
			t.Fatalf("single worker stole %d tasks", rep.Steals)
		}
	}
}
