package sched

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestStealingRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			p := NewStealingPool(workers)
			seen := make([]int32, n)
			p.RunTasks(n, func(w, task int) {
				atomic.AddInt32(&seen[task], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestStealingWithUnevenWork(t *testing.T) {
	p := NewStealingPool(4)
	const n = 200
	var total atomic.Int64
	rng := rand.New(rand.NewSource(1))
	costs := make([]int, n)
	for i := range costs {
		costs[i] = rng.Intn(50)
	}
	p.RunTasks(n, func(w, task int) {
		// Busy loop proportional to cost so deques drain unevenly
		// and stealing actually happens.
		x := 0
		for i := 0; i < costs[task]*1000; i++ {
			x += i
		}
		_ = x
		total.Add(1)
	})
	if total.Load() != n {
		t.Fatalf("ran %d tasks", total.Load())
	}
}

func TestStealingStress(t *testing.T) {
	// Hammer the deques with many tiny tasks across repeats to shake
	// out lost/duplicated claims under contention.
	p := NewStealingPool(8)
	for round := 0; round < 20; round++ {
		const n = 5000
		var sum atomic.Int64
		p.RunTasks(n, func(w, task int) { sum.Add(int64(task)) })
		want := int64(n) * (n - 1) / 2
		if sum.Load() != want {
			t.Fatalf("round %d: task sum %d, want %d", round, sum.Load(), want)
		}
	}
}

func TestDequeSemantics(t *testing.T) {
	d := newDeque(4)
	d.push(1)
	d.push(2)
	d.push(3)
	if v, ok := d.steal(); !ok || v != 1 {
		t.Fatalf("steal = %d/%v, want 1", v, ok)
	}
	if v, ok := d.pop(); !ok || v != 3 {
		t.Fatalf("pop = %d/%v, want 3", v, ok)
	}
	if v, ok := d.pop(); !ok || v != 2 {
		t.Fatalf("pop = %d/%v, want 2", v, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal from empty succeeded")
	}
}

func TestStealingMatchesPoolResults(t *testing.T) {
	// Both schedulers must produce identical aggregate results for a
	// commutative reduction.
	n := 1234
	var a, b atomic.Int64
	NewPool(4).RunTasks(n, func(w, task int) { a.Add(int64(task * task)) })
	NewStealingPool(4).RunTasks(n, func(w, task int) { b.Add(int64(task * task)) })
	if a.Load() != b.Load() {
		t.Fatalf("pool %d != stealing %d", a.Load(), b.Load())
	}
}

func TestStealingTerminates(t *testing.T) {
	done := make(chan struct{})
	go func() {
		NewStealingPool(4).RunTasks(10000, func(w, task int) {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stealing pool did not terminate")
	}
}
