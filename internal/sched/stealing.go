package sched

import (
	"sync"
	"sync/atomic"
	"time"
)

// The paper's runtime (§5.1.3) uses a master/worker model with work
// stealing. Pool.For approximates stealing with a shared claim
// counter; StealingPool implements the real thing — per-worker
// Chase-Lev-style deques with lock-free owner access and stealing
// from victims — so the two strategies can be compared and either
// can back the counting phases.

// deque is a single-owner, multi-thief work-stealing deque of task
// indices (bounded, sized up front: LOTUS tile sets are known before
// the parallel region starts).
type deque struct {
	tasks  []int32
	bottom atomic.Int64 // next push/pop slot (owner end)
	top    atomic.Int64 // next steal slot (thief end)
}

func newDeque(capacity int) *deque {
	return &deque{tasks: make([]int32, capacity)}
}

// push appends a task at the owner end. Only the owner calls it, and
// only before workers start in this implementation, so it needs no
// synchronization beyond the atomic store.
func (d *deque) push(task int32) {
	b := d.bottom.Load()
	d.tasks[b] = task
	d.bottom.Store(b + 1)
}

// pop takes a task from the owner end; ok is false when empty.
func (d *deque) pop() (int32, bool) {
	b := d.bottom.Add(-1)
	t := d.top.Load()
	switch {
	case b > t:
		return d.tasks[b], true
	case b == t:
		// Last element: race with thieves via CAS on top.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if won {
			return d.tasks[b], true
		}
		return 0, false
	default:
		d.bottom.Store(t)
		return 0, false
	}
}

// steal takes a task from the thief end; ok is false when empty or
// when the steal lost a race.
func (d *deque) steal() (int32, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false
	}
	task := d.tasks[t]
	if d.top.CompareAndSwap(t, t+1) {
		return task, true
	}
	return 0, false
}

// StealingPool executes task sets with per-worker deques and work
// stealing.
type StealingPool struct {
	workers int
	// stop mirrors Pool's cancellation flag when the stealing pool is
	// derived from a bound pool (Pool.Stealing); nil otherwise.
	stop *atomic.Bool
}

// NewStealingPool returns a stealing pool with n workers (n <= 0
// selects the Pool default).
func NewStealingPool(n int) *StealingPool {
	return &StealingPool{workers: NewPool(n).Workers()}
}

// Stealing returns a work-stealing pool with the same worker count as
// p that inherits p's cancellation binding: once p's bound context is
// done, the stealing workers stop popping and stealing tasks.
func (p *Pool) Stealing() *StealingPool {
	return &StealingPool{workers: p.workers, stop: p.stop}
}

// cancelled reports whether the inherited context is done.
func (p *StealingPool) cancelled() bool {
	return p.stop != nil && p.stop.Load()
}

// Workers returns the worker count.
func (p *StealingPool) Workers() int { return p.workers }

// RunTasks executes fn(worker, task) for every task in [0, nTasks).
// Tasks are dealt round-robin to the workers' deques; each worker
// drains its own deque from the bottom and steals from others when
// empty. Every task runs exactly once. The returned LoadReport
// carries per-worker busy times, as for Pool.RunTasks.
func (p *StealingPool) RunTasks(nTasks int, fn func(worker, task int)) LoadReport {
	busy := make([]time.Duration, p.workers)
	t0 := time.Now()
	if nTasks <= 0 {
		return LoadReport{Busy: busy, Wall: time.Since(t0)}
	}
	if p.workers == 1 {
		s := time.Now()
		var claims int64
		for i := 0; i < nTasks; i++ {
			if p.cancelled() {
				break
			}
			claims++
			fn(0, i)
		}
		busy[0] = time.Since(s)
		return LoadReport{Busy: busy, Wall: time.Since(t0), Claims: claims}
	}
	deques := make([]*deque, p.workers)
	per := (nTasks + p.workers - 1) / p.workers
	for w := range deques {
		deques[w] = newDeque(per)
	}
	for i := 0; i < nTasks; i++ {
		deques[i%p.workers].push(int32(i))
	}
	claims := make([]int64, p.workers)
	steals := make([]int64, p.workers)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			own := deques[worker]
			run := func(task int32) {
				claims[worker]++
				s := time.Now()
				fn(worker, int(task))
				busy[worker] += time.Since(s)
			}
			for {
				if p.cancelled() {
					return
				}
				if task, ok := own.pop(); ok {
					run(task)
					continue
				}
				// Own deque empty: sweep victims once; exit when
				// nothing is stealable anywhere.
				stole := false
				for off := 1; off < p.workers; off++ {
					victim := deques[(worker+off)%p.workers]
					if task, ok := victim.steal(); ok {
						steals[worker]++
						run(task)
						stole = true
						break
					}
				}
				if !stole {
					// Re-check every deque for stragglers published
					// after our sweep; if all empty, we are done.
					done := true
					for _, d := range deques {
						if d.top.Load() < d.bottom.Load() {
							done = false
							break
						}
					}
					if done {
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	rep := LoadReport{Busy: busy, Wall: time.Since(t0)}
	for w := 0; w < p.workers; w++ {
		rep.Claims += claims[w]
		rep.Steals += steals[w]
	}
	return rep
}
