// Package sched provides the parallel execution substrate for the
// LOTUS reproduction: a dynamic self-scheduling parallel-for (the
// goroutine equivalent of the paper's work-stealing master/worker
// runtime, §5.1.3), padded per-worker accumulators, and per-worker
// busy-time measurement used for the Table 9 idle-time experiment.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool executes parallel loops on a fixed number of workers.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker count; n <= 0 selects
// runtime.GOMAXPROCS(0).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// For runs fn(worker, start, end) over disjoint chunks covering
// [0, n). Chunks of size grain are claimed from a shared atomic
// counter, so uneven iteration costs self-balance exactly like work
// stealing: fast workers simply claim more chunks. grain <= 0 picks a
// default that yields ~64 chunks per worker.
func (p *Pool) For(n, grain int, fn func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		fn(0, 0, n)
		return
	}
	if grain <= 0 {
		grain = n / (p.workers * 64)
		if grain < 1 {
			grain = 1
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(next.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				fn(worker, start, end)
			}
		}(w)
	}
	wg.Wait()
}

// ForTimed is For, but additionally measures each worker's busy time
// (time spent inside fn) and the loop's wall-clock time. The Table 9
// experiment derives idle percentage from these.
func (p *Pool) ForTimed(n, grain int, fn func(worker, start, end int)) LoadReport {
	busy := make([]time.Duration, p.workers)
	t0 := time.Now()
	p.For(n, grain, func(worker, start, end int) {
		s := time.Now()
		fn(worker, start, end)
		busy[worker] += time.Since(s)
	})
	return LoadReport{Busy: busy, Wall: time.Since(t0)}
}

// RunTasks executes nTasks opaque tasks (fn(worker, task)) with
// dynamic self-scheduling, one task per claim. Used for tile queues
// where tasks already embody the desired granularity.
func (p *Pool) RunTasks(nTasks int, fn func(worker, task int)) LoadReport {
	busy := make([]time.Duration, p.workers)
	t0 := time.Now()
	if nTasks <= 0 {
		return LoadReport{Busy: busy, Wall: time.Since(t0)}
	}
	if p.workers == 1 {
		s := time.Now()
		for i := 0; i < nTasks; i++ {
			fn(0, i)
		}
		busy[0] = time.Since(s)
		return LoadReport{Busy: busy, Wall: time.Since(t0)}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nTasks {
					return
				}
				s := time.Now()
				fn(worker, i)
				busy[worker] += time.Since(s)
			}
		}(w)
	}
	wg.Wait()
	return LoadReport{Busy: busy, Wall: time.Since(t0)}
}

// LoadReport captures per-worker busy time for one parallel region.
type LoadReport struct {
	Busy []time.Duration
	Wall time.Duration
}

// IdleFraction returns the mean fraction of wall time workers spent
// idle: 1 - sum(busy) / (workers * wall). With a single worker it is
// ~0 by construction; with skewed tiles and many workers it exposes
// load imbalance (Table 9).
func (r LoadReport) IdleFraction() float64 {
	if len(r.Busy) == 0 || r.Wall <= 0 {
		return 0
	}
	var sum time.Duration
	for _, b := range r.Busy {
		sum += b
	}
	if sum == 0 {
		// No work executed: idle time is meaningless, report none.
		return 0
	}
	idle := 1 - float64(sum)/(float64(r.Wall)*float64(len(r.Busy)))
	if idle < 0 {
		return 0
	}
	return idle
}

// MaxBusy returns the longest per-worker busy time — the critical
// path of the region under perfect overlap.
func (r LoadReport) MaxBusy() time.Duration {
	var m time.Duration
	for _, b := range r.Busy {
		if b > m {
			m = b
		}
	}
	return m
}

// ImbalanceRatio returns max(busy)/mean(busy), 1.0 meaning perfectly
// balanced. It is a machine-independent load-balance metric used in
// Table 9 alongside idle time (idle time degenerates on 1 core).
func (r LoadReport) ImbalanceRatio() float64 {
	if len(r.Busy) == 0 {
		return 1
	}
	var sum time.Duration
	for _, b := range r.Busy {
		sum += b
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(r.Busy))
	return float64(r.MaxBusy()) / mean
}

// cacheLinePad separates hot per-worker counters onto distinct
// cachelines to avoid false sharing.
const cacheLinePad = 64

// Accumulator is a set of per-worker uint64 counters, padded to one
// cacheline each, summed after the parallel region. It is how every
// counting phase aggregates triangles without atomics on the hot path.
type Accumulator struct {
	cells []uint64
}

// NewAccumulator returns an accumulator for n workers.
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{cells: make([]uint64, n*(cacheLinePad/8))}
}

// Add adds x to worker w's counter.
func (a *Accumulator) Add(w int, x uint64) {
	a.cells[w*(cacheLinePad/8)] += x
}

// Sum returns the total across workers.
func (a *Accumulator) Sum() uint64 {
	var s uint64
	for i := 0; i < len(a.cells); i += cacheLinePad / 8 {
		s += a.cells[i]
	}
	return s
}
