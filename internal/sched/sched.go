// Package sched provides the parallel execution substrate for the
// LOTUS reproduction: a dynamic self-scheduling parallel-for (the
// goroutine equivalent of the paper's work-stealing master/worker
// runtime, §5.1.3), padded per-worker accumulators, and per-worker
// busy-time measurement used for the Table 9 idle-time experiment.
//
// Pools support cooperative cancellation: Bind attaches a context,
// after which every parallel region stops claiming work once the
// context is done, and long-running kernels can poll Cancelled() on
// their inner loops. Cancellation never interrupts a chunk midway by
// force — the contract is purely cooperative, so partial results of a
// cancelled region are unspecified and must be discarded by the
// caller (the engine does this).
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool executes parallel loops on a fixed number of workers.
type Pool struct {
	workers int
	// Cancellation state, set by Bind. ctx is the bound context; stop
	// flips to true when it is done (a single watcher goroutine owns
	// the transition). Both are nil on an unbound pool, keeping the
	// hot-path check to one predictable nil comparison.
	ctx     context.Context
	stop    *atomic.Bool
	unwatch chan struct{}
}

// NewPool returns a pool with the given worker count; n <= 0 selects
// runtime.GOMAXPROCS(0).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Bind returns a pool with the same worker count whose parallel
// regions observe ctx: once ctx is done, workers stop claiming chunks
// and Cancelled reports true. The receiver is not modified. Callers
// must Release the bound pool when the run ends to stop the context
// watcher; contexts that can never be cancelled bind for free.
func (p *Pool) Bind(ctx context.Context) *Pool {
	q := &Pool{workers: p.workers, ctx: ctx}
	if done := ctx.Done(); done != nil {
		q.stop = &atomic.Bool{}
		q.unwatch = make(chan struct{})
		go func(stop *atomic.Bool, unwatch chan struct{}) {
			select {
			case <-done:
				stop.Store(true)
			case <-unwatch:
			}
		}(q.stop, q.unwatch)
	}
	return q
}

// Release stops the context watcher started by Bind. It is a no-op on
// unbound pools and safe to call once per Bind.
func (p *Pool) Release() {
	if p.unwatch != nil {
		close(p.unwatch)
		p.unwatch = nil
	}
}

// Cancelled reports whether the bound context is done. It is cheap
// enough for per-vertex polling on counting hot loops: a nil check on
// unbound pools, one atomic load on bound ones.
func (p *Pool) Cancelled() bool {
	return p.stop != nil && p.stop.Load()
}

// Err returns the bound context's error once cancellation has been
// observed, nil otherwise.
func (p *Pool) Err() error {
	if p.Cancelled() {
		return p.ctx.Err()
	}
	return nil
}

// ForCtx is For with cooperative cancellation: ctx is observed at
// every chunk claim, and the call returns ctx.Err() if the loop was
// cut short. Iterations already started always run to completion.
func (p *Pool) ForCtx(ctx context.Context, n, grain int, fn func(worker, start, end int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	q := p.Bind(ctx)
	defer q.Release()
	q.For(n, grain, fn)
	return ctx.Err()
}

// RunTasksCtx is RunTasks with cooperative cancellation at task-claim
// boundaries; it returns ctx.Err() if the task set was cut short.
func (p *Pool) RunTasksCtx(ctx context.Context, nTasks int, fn func(worker, task int)) (LoadReport, error) {
	if err := ctx.Err(); err != nil {
		return LoadReport{}, err
	}
	q := p.Bind(ctx)
	defer q.Release()
	rep := q.RunTasks(nTasks, fn)
	return rep, ctx.Err()
}

// For runs fn(worker, start, end) over disjoint chunks covering
// [0, n). Chunks of size grain are claimed from a shared atomic
// counter, so uneven iteration costs self-balance exactly like work
// stealing: fast workers simply claim more chunks. grain <= 0 picks a
// default that yields ~64 chunks per worker.
func (p *Pool) For(n, grain int, fn func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (p.workers * 64)
		if grain < 1 {
			grain = 1
		}
	}
	if p.workers == 1 {
		if p.stop == nil {
			fn(0, 0, n)
			return
		}
		// Bound single-worker pools chunk the range so cancellation
		// still lands at chunk boundaries.
		for start := 0; start < n; start += grain {
			if p.stop.Load() {
				return
			}
			end := start + grain
			if end > n {
				end = n
			}
			fn(0, start, end)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if p.stop != nil && p.stop.Load() {
					return
				}
				start := int(next.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				fn(worker, start, end)
			}
		}(w)
	}
	wg.Wait()
}

// ForTimed is For, but additionally measures each worker's busy time
// (time spent inside fn) and the loop's wall-clock time. The Table 9
// experiment derives idle percentage from these; Claims counts the
// chunk claims, each of which is also a cancellation poll point.
func (p *Pool) ForTimed(n, grain int, fn func(worker, start, end int)) LoadReport {
	busy := make([]time.Duration, p.workers)
	claims := make([]int64, p.workers)
	t0 := time.Now()
	p.For(n, grain, func(worker, start, end int) {
		s := time.Now()
		fn(worker, start, end)
		busy[worker] += time.Since(s)
		claims[worker]++
	})
	rep := LoadReport{Busy: busy, Wall: time.Since(t0)}
	for _, c := range claims {
		rep.Claims += c
	}
	return rep
}

// RunTasks executes nTasks opaque tasks (fn(worker, task)) with
// dynamic self-scheduling, one task per claim. Used for tile queues
// where tasks already embody the desired granularity.
func (p *Pool) RunTasks(nTasks int, fn func(worker, task int)) LoadReport {
	busy := make([]time.Duration, p.workers)
	t0 := time.Now()
	if nTasks <= 0 {
		return LoadReport{Busy: busy, Wall: time.Since(t0)}
	}
	claims := make([]int64, p.workers)
	if p.workers == 1 {
		s := time.Now()
		for i := 0; i < nTasks; i++ {
			if p.stop != nil && p.stop.Load() {
				break
			}
			claims[0]++
			fn(0, i)
		}
		busy[0] = time.Since(s)
		return LoadReport{Busy: busy, Wall: time.Since(t0), Claims: claims[0]}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if p.stop != nil && p.stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= nTasks {
					return
				}
				claims[worker]++
				s := time.Now()
				fn(worker, i)
				busy[worker] += time.Since(s)
			}
		}(w)
	}
	wg.Wait()
	rep := LoadReport{Busy: busy, Wall: time.Since(t0)}
	for _, c := range claims {
		rep.Claims += c
	}
	return rep
}

// LoadReport captures per-worker busy time for one parallel region.
type LoadReport struct {
	Busy []time.Duration
	Wall time.Duration
	// Claims counts chunk/task claims. Every claim re-checks the
	// cancellation flag, so this is also the number of scheduler-level
	// cancellation polls the region performed.
	Claims int64
	// Steals counts tasks executed by a worker other than the one
	// whose deque they were dealt to. Zero for the shared-counter
	// scheduler, which has no locality to lose.
	Steals int64
}

// IdleFraction returns the mean fraction of wall time workers spent
// idle: 1 - sum(busy) / (workers * wall). With a single worker it is
// ~0 by construction; with skewed tiles and many workers it exposes
// load imbalance (Table 9).
func (r LoadReport) IdleFraction() float64 {
	if len(r.Busy) == 0 || r.Wall <= 0 {
		return 0
	}
	var sum time.Duration
	for _, b := range r.Busy {
		sum += b
	}
	if sum == 0 {
		// No work executed: idle time is meaningless, report none.
		return 0
	}
	idle := 1 - float64(sum)/(float64(r.Wall)*float64(len(r.Busy)))
	if idle < 0 {
		return 0
	}
	return idle
}

// MaxBusy returns the longest per-worker busy time — the critical
// path of the region under perfect overlap.
func (r LoadReport) MaxBusy() time.Duration {
	var m time.Duration
	for _, b := range r.Busy {
		if b > m {
			m = b
		}
	}
	return m
}

// ImbalanceRatio returns max(busy)/mean(busy), 1.0 meaning perfectly
// balanced. It is a machine-independent load-balance metric used in
// Table 9 alongside idle time (idle time degenerates on 1 core).
func (r LoadReport) ImbalanceRatio() float64 {
	if len(r.Busy) == 0 {
		return 1
	}
	var sum time.Duration
	for _, b := range r.Busy {
		sum += b
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(r.Busy))
	return float64(r.MaxBusy()) / mean
}

// cacheLinePad separates hot per-worker counters onto distinct
// cachelines to avoid false sharing.
const cacheLinePad = 64

// Accumulator is a set of per-worker uint64 counters, padded to one
// cacheline each, summed after the parallel region. It is how every
// counting phase aggregates triangles without atomics on the hot path.
type Accumulator struct {
	cells []uint64
}

// NewAccumulator returns an accumulator for n workers.
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{cells: make([]uint64, n*(cacheLinePad/8))}
}

// Add adds x to worker w's counter.
func (a *Accumulator) Add(w int, x uint64) {
	a.cells[w*(cacheLinePad/8)] += x
}

// Sum returns the total across workers.
func (a *Accumulator) Sum() uint64 {
	var s uint64
	for i := 0; i < len(a.cells); i += cacheLinePad / 8 {
		s += a.cells[i]
	}
	return s
}
