package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestBindBackgroundIsFree(t *testing.T) {
	p := NewPool(2).Bind(context.Background())
	defer p.Release()
	if p.Cancelled() {
		t.Fatal("background-bound pool must not report cancelled")
	}
	if p.Err() != nil {
		t.Fatalf("Err = %v, want nil", p.Err())
	}
	var n atomic.Int64
	p.For(100, 1, func(_, start, end int) { n.Add(int64(end - start)) })
	if n.Load() != 100 {
		t.Fatalf("covered %d iterations, want 100", n.Load())
	}
}

func TestBindObservesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(2).Bind(ctx)
	defer p.Release()
	cancel()
	// The watcher flips the flag asynchronously; yield until it runs.
	for !p.Cancelled() {
		runtime.Gosched()
	}
	if !errors.Is(p.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", p.Err())
	}
}

func TestBindDoesNotMutateReceiver(t *testing.T) {
	base := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	bound := base.Bind(ctx)
	defer bound.Release()
	cancel()
	for !bound.Cancelled() {
		runtime.Gosched()
	}
	if base.Cancelled() {
		t.Fatal("cancelling the bound pool must not affect the base pool")
	}
}

func TestForStopsAtChunkBoundaries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(1).Bind(ctx)
	defer p.Release()
	var covered atomic.Int64
	p.For(1000, 10, func(_, start, end int) {
		if covered.Add(int64(end-start)) >= 100 {
			cancel()
			// The watcher flips the flag asynchronously; wait so the
			// next chunk claim deterministically observes it.
			for !p.Cancelled() {
				runtime.Gosched()
			}
		}
	})
	// Cancellation lands between chunk claims: well short of the full
	// range, but whole chunks only.
	if c := covered.Load(); c >= 1000 || c%10 != 0 {
		t.Fatalf("covered %d iterations; want a whole number of chunks < 1000", c)
	}
	if !errors.Is(p.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", p.Err())
	}
}

func TestForCtxReportsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var covered atomic.Int64
	err := NewPool(1).ForCtx(ctx, 1000, 10, func(_, start, end int) {
		if covered.Add(int64(end-start)) >= 100 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx = %v, want context.Canceled", err)
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := NewPool(2).ForCtx(ctx, 10, 1, func(_, _, _ int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("pre-cancelled ForCtx must not run the body")
	}
}

func TestForCtxCompletes(t *testing.T) {
	var n atomic.Int64
	err := NewPool(2).ForCtx(context.Background(), 57, 5, func(_, start, end int) {
		n.Add(int64(end - start))
	})
	if err != nil {
		t.Fatalf("ForCtx = %v, want nil", err)
	}
	if n.Load() != 57 {
		t.Fatalf("covered %d iterations, want 57", n.Load())
	}
}

func TestRunTasksStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(1).Bind(ctx)
	defer p.Release()
	var done atomic.Int64
	p.RunTasks(1000, func(_, task int) {
		if done.Add(1) == 5 {
			cancel()
			for !p.Cancelled() {
				runtime.Gosched()
			}
		}
	})
	if d := done.Load(); d >= 1000 {
		t.Fatalf("ran %d tasks, want an early stop", d)
	}
}

func TestRunTasksCtxReportsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	_, err := NewPool(1).RunTasksCtx(ctx, 1000, func(_, task int) {
		if done.Add(1) == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTasksCtx = %v, want context.Canceled", err)
	}
}

func TestStealingPoolInheritsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(1).Bind(ctx)
	defer p.Release()
	sp := p.Stealing()
	var done atomic.Int64
	sp.RunTasks(1000, func(_, task int) {
		if done.Add(1) == 5 {
			cancel()
			// Wait for the watcher so the very next claim sees it.
			for !p.Cancelled() {
				runtime.Gosched()
			}
		}
	})
	if d := done.Load(); d >= 1000 {
		t.Fatalf("ran %d tasks, want an early stop", d)
	}
}

func TestReleaseIdempotentOnUnbound(t *testing.T) {
	p := NewPool(2)
	p.Release() // no-op on unbound pools
	b := p.Bind(context.Background())
	b.Release()
	b.Release()
}
