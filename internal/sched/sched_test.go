package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 5, 100, 1337} {
			p := NewPool(workers)
			seen := make([]int32, n)
			p.For(n, 3, func(w, start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForDefaultGrain(t *testing.T) {
	p := NewPool(4)
	var total atomic.Int64
	p.For(1000, 0, func(w, s, e int) { total.Add(int64(e - s)) })
	if total.Load() != 1000 {
		t.Fatalf("covered %d, want 1000", total.Load())
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	p := NewPool(3)
	var bad atomic.Int32
	p.For(500, 7, func(w, s, e int) {
		if w < 0 || w >= 3 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker ID out of range")
	}
}

func TestRunTasksAllExecuted(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		const n = 200
		seen := make([]int32, n)
		rep := p.RunTasks(n, func(w, task int) {
			atomic.AddInt32(&seen[task], 1)
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("task %d executed %d times", i, c)
			}
		}
		if len(rep.Busy) != workers {
			t.Fatalf("busy slice len %d", len(rep.Busy))
		}
	}
}

func TestRunTasksEmpty(t *testing.T) {
	p := NewPool(2)
	rep := p.RunTasks(0, func(w, task int) { t.Fatal("called") })
	if rep.IdleFraction() != 0 {
		t.Fatal("empty run should report no idle")
	}
}

func TestLoadReportMetrics(t *testing.T) {
	r := LoadReport{
		Busy: []time.Duration{100 * time.Millisecond, 50 * time.Millisecond},
		Wall: 100 * time.Millisecond,
	}
	// idle = 1 - 150/(2*100) = 0.25
	if got := r.IdleFraction(); got < 0.24 || got > 0.26 {
		t.Fatalf("IdleFraction = %v, want 0.25", got)
	}
	if got := r.MaxBusy(); got != 100*time.Millisecond {
		t.Fatalf("MaxBusy = %v", got)
	}
	// imbalance = 100 / 75
	if got := r.ImbalanceRatio(); got < 1.32 || got > 1.34 {
		t.Fatalf("ImbalanceRatio = %v, want ~1.333", got)
	}
}

func TestLoadReportDegenerate(t *testing.T) {
	if (LoadReport{}).IdleFraction() != 0 {
		t.Fatal("zero report idle != 0")
	}
	if (LoadReport{}).ImbalanceRatio() != 1 {
		t.Fatal("zero report imbalance != 1")
	}
	r := LoadReport{Busy: []time.Duration{0, 0}, Wall: time.Second}
	if r.ImbalanceRatio() != 1 {
		t.Fatal("all-zero busy should report ratio 1")
	}
}

func TestForTimedAccounting(t *testing.T) {
	p := NewPool(2)
	rep := p.ForTimed(8, 1, func(w, s, e int) {
		time.Sleep(time.Millisecond)
	})
	var sum time.Duration
	for _, b := range rep.Busy {
		sum += b
	}
	if sum < 8*time.Millisecond {
		t.Fatalf("busy sum %v < 8ms of injected work", sum)
	}
	if rep.Wall <= 0 {
		t.Fatal("wall time not measured")
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(4)
	p := NewPool(4)
	p.For(10000, 16, func(w, s, e int) {
		for i := s; i < e; i++ {
			a.Add(w, 1)
		}
	})
	if got := a.Sum(); got != 10000 {
		t.Fatalf("Sum = %d, want 10000", got)
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if NewPool(-3).Workers() < 1 {
		t.Fatal("negative pool has no workers")
	}
	if NewPool(5).Workers() != 5 {
		t.Fatal("explicit worker count not honored")
	}
}

func TestSkewedTasksSelfBalance(t *testing.T) {
	// One task is 50x heavier; dynamic claiming must not assign the
	// heavy task plus an equal share of the rest to the same worker.
	p := NewPool(4)
	work := func(units int) {
		x := 0
		for i := 0; i < units*1000; i++ {
			x += i
		}
		_ = x
	}
	rep := p.RunTasks(64, func(w, task int) {
		if task == 0 {
			work(50)
		} else {
			work(1)
		}
	})
	// On a single-core machine this is mostly a smoke test; the
	// metric must at least be finite and >= 1.
	if r := rep.ImbalanceRatio(); r < 1 {
		t.Fatalf("ImbalanceRatio = %v < 1", r)
	}
}

func TestWorkerLocal(t *testing.T) {
	built := int32(0)
	wl := NewWorkerLocal(4, func() *[]int {
		atomic.AddInt32(&built, 1)
		s := make([]int, 8)
		return &s
	})
	if got := atomic.LoadInt32(&built); got != 0 {
		t.Fatalf("built %d slots eagerly, want lazy", got)
	}
	a := wl.Get(1)
	b := wl.Get(1)
	if a != b {
		t.Fatal("Get(1) returned distinct values across calls")
	}
	if wl.Get(2) == a {
		t.Fatal("workers share a scratch value")
	}
	if got := atomic.LoadInt32(&built); got != 2 {
		t.Fatalf("built %d slots, want 2 (workers 1 and 2 only)", got)
	}
	// Concurrent use from distinct workers must be race-free (the
	// ownership contract); exercised under -race by the pool.
	p := NewPool(4)
	wl2 := NewWorkerLocal(p.Workers(), func() *uint64 { return new(uint64) })
	p.For(1024, 1, func(worker, start, end int) {
		*wl2.Get(worker) += uint64(end - start)
	})
	var sum uint64
	for w := 0; w < p.Workers(); w++ {
		sum += *wl2.Get(w)
	}
	if sum != 1024 {
		t.Fatalf("per-worker sums total %d, want 1024", sum)
	}
}
