package sched

// WorkerLocal is a fixed set of lazily-built per-worker scratch
// values, one slot per worker index. Counting kernels use it for
// reusable buffers that are too big to allocate per vertex and too
// hot to share — e.g. phase 1's hub-neighbour bitmap (≤8 KB at the
// 2^16 hub cap). Slots are built on first Get, so a region whose
// workers never touch their scratch (small graphs, scalar kernels)
// allocates nothing.
//
// Each slot must only ever be accessed by the worker that owns the
// index — the same contract Pool.For/RunTasks give their fn(worker,
// ...) callbacks — so Get needs no synchronization. The slice of
// pointers keeps the values themselves on separate allocations,
// avoiding false sharing between adjacent workers' scratch.
type WorkerLocal[T any] struct {
	slots []*T
	build func() *T
}

// NewWorkerLocal returns scratch slots for workers [0, n), each built
// by build on its owner's first Get.
func NewWorkerLocal[T any](n int, build func() *T) *WorkerLocal[T] {
	return &WorkerLocal[T]{slots: make([]*T, n), build: build}
}

// Get returns worker w's scratch value, building it on first use.
func (l *WorkerLocal[T]) Get(w int) *T {
	s := l.slots[w]
	if s == nil {
		s = l.build()
		l.slots[w] = s
	}
	return s
}
