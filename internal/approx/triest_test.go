package approx

import (
	"math"
	"math/rand"
	"testing"

	"lotustc/internal/baseline"
	"lotustc/internal/gen"
)

func TestTriestExactWithLargeReservoir(t *testing.T) {
	// M >= |E|: nothing is ever evicted and every closing wedge is
	// present, so the estimate is the exact count.
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 1))
	want := float64(baseline.BruteForce(g))
	tr := NewTriest(int(g.NumEdges())+10, 1)
	for _, e := range g.Edges() {
		tr.AddEdge(e.U, e.V)
	}
	if tr.Estimate() != want {
		t.Fatalf("exact-mode estimate %v, want %v", tr.Estimate(), want)
	}
	if tr.EdgesSeen() != uint64(g.NumEdges()) {
		t.Fatalf("seen %d edges", tr.EdgesSeen())
	}
	if tr.ReservoirSize() != int(g.NumEdges()) {
		t.Fatalf("reservoir %d", tr.ReservoirSize())
	}
}

func TestTriestUnbiasedOnAverage(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 10, 3))
	truth := float64(baseline.Forward(g, pool, baseline.KernelMerge))
	edges := g.Edges()
	m := len(edges) / 2
	var sum float64
	const runs = 16
	for seed := int64(0); seed < runs; seed++ {
		tr := NewTriest(m, seed)
		rng := rand.New(rand.NewSource(seed + 1000))
		perm := rng.Perm(len(edges))
		for _, i := range perm {
			tr.AddEdge(edges[i].U, edges[i].V)
		}
		sum += tr.Estimate()
	}
	mean := sum / runs
	if rel := math.Abs(mean-truth) / truth; rel > 0.15 {
		t.Fatalf("Triest mean %.0f deviates %.1f%% from truth %.0f", mean, 100*rel, truth)
	}
}

func TestTriestBoundedMemory(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 5))
	const m = 500
	tr := NewTriest(m, 2)
	for _, e := range g.Edges() {
		tr.AddEdge(e.U, e.V)
	}
	if tr.ReservoirSize() > m {
		t.Fatalf("reservoir grew to %d > %d", tr.ReservoirSize(), m)
	}
	// Adjacency entries must match reservoir edges exactly.
	var adjEdges int
	for _, nb := range tr.adj {
		adjEdges += len(nb)
	}
	if adjEdges != 2*tr.ReservoirSize() {
		t.Fatalf("adjacency holds %d entries for %d edges", adjEdges, tr.ReservoirSize())
	}
}

func TestTriestDegenerate(t *testing.T) {
	tr := NewTriest(0, 1) // clamps to the minimum legal reservoir
	tr.AddEdge(1, 1)      // self loop ignored
	if tr.EdgesSeen() != 0 {
		t.Fatal("self loop counted")
	}
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 2)
	tr.AddEdge(2, 0)
	if tr.Estimate() < 0 {
		t.Fatal("negative estimate")
	}
}

// TestTriestM1Finite is the regression test for the m=1
// divide-by-zero: before the m >= 2 clamp, the wedge weight
// ((t-1)/m)*((t-2)/(m-1)) divided by zero at m=1, yielding +Inf for
// t > 2 and NaN at t=2 (0 * Inf). The estimate must stay finite and
// non-negative for every reservoir size a caller can request.
func TestTriestM1Finite(t *testing.T) {
	for _, m := range []int{-3, 0, 1, 2, 3} {
		tr := NewTriest(m, 7)
		if tr.ReservoirCap() < 2 {
			t.Fatalf("NewTriest(%d) reservoir cap %d, want >= 2", m, tr.ReservoirCap())
		}
		// A dense little graph so wedges actually close at small t.
		g := gen.Complete(12)
		for _, e := range g.Edges() {
			tr.AddEdge(e.U, e.V)
			if est := tr.Estimate(); math.IsInf(est, 0) || math.IsNaN(est) || est < 0 {
				t.Fatalf("m=%d after %d edges: estimate %v not finite/non-negative", m, tr.EdgesSeen(), est)
			}
			if v := tr.Variance(); math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
				t.Fatalf("m=%d: variance %v not finite/non-negative", m, v)
			}
			if b := tr.ErrorBound(0.95); math.IsInf(b, 0) || math.IsNaN(b) || b < 0 {
				t.Fatalf("m=%d: error bound %v not finite/non-negative", m, b)
			}
		}
	}
}

// TestTriestDuplicateEdges is the regression test for duplicate-edge
// inflation: a repeated (u,v) — in either orientation — used to enter
// the reservoir twice and add duplicate adjacency entries, double-
// counting every wedge it participated in. With a large reservoir the
// estimate over a duplicate-heavy stream must equal the exact count
// of the underlying simple graph.
func TestTriestDuplicateEdges(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 2))
	want := float64(baseline.BruteForce(g))
	tr := NewTriest(3*int(g.NumEdges()), 1)
	for _, e := range g.Edges() {
		tr.AddEdge(e.U, e.V)
		tr.AddEdge(e.U, e.V) // exact duplicate
		tr.AddEdge(e.V, e.U) // reversed duplicate
	}
	if got := tr.Estimate(); got != want {
		t.Fatalf("estimate %v over duplicate-heavy stream, want exact %v", got, want)
	}
	if tr.EdgesSeen() != uint64(g.NumEdges()) {
		t.Fatalf("duplicates counted into the stream length: t=%d, want %d", tr.EdgesSeen(), g.NumEdges())
	}
	if tr.ReservoirSize() != int(g.NumEdges()) {
		t.Fatalf("reservoir holds %d edges, want %d (duplicates entered)", tr.ReservoirSize(), g.NumEdges())
	}
}

// TestTriestErrorBoundCoverage checks the acceptance contract the
// serving layer reports to clients: over repeated runs, the exact
// count falls within Estimate ± ErrorBound(0.95) at least 95% of the
// time (Chebyshev makes the bound conservative, so empirically the
// coverage should be essentially total).
func TestTriestErrorBoundCoverage(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 10, 3))
	truth := float64(baseline.Forward(g, pool, baseline.KernelMerge))
	edges := g.Edges()
	m := len(edges) / 4
	const runs = 20
	covered := 0
	for seed := int64(0); seed < runs; seed++ {
		tr := NewTriest(m, seed)
		rng := rand.New(rand.NewSource(seed + 500))
		perm := rng.Perm(len(edges))
		for _, i := range perm {
			tr.AddEdge(edges[i].U, edges[i].V)
		}
		bound := tr.ErrorBound(0.95)
		if math.IsInf(bound, 0) || math.IsNaN(bound) {
			t.Fatalf("seed %d: non-finite error bound %v", seed, bound)
		}
		if math.Abs(tr.Estimate()-truth) <= bound {
			covered++
		}
	}
	if covered < runs*95/100 {
		t.Fatalf("error bound covered the truth in %d/%d runs, want >= 95%%", covered, runs)
	}
}

// TestTriestRemoveEdge: removing a resident edge subtracts the
// triangles it closes; with a reservoir that never overflows,
// add-then-remove returns the estimate to the exact count of the
// remaining graph.
func TestTriestRemoveEdge(t *testing.T) {
	tr := NewTriest(100, 1)
	// Two triangles sharing edge (0,1): {0,1,2} and {0,1,3}.
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 0}} {
		tr.AddEdge(e[0], e[1])
	}
	if tr.Estimate() != 2 {
		t.Fatalf("estimate %v, want 2", tr.Estimate())
	}
	tr.RemoveEdge(2, 0) // destroys {0,1,2}
	if tr.Estimate() != 1 {
		t.Fatalf("after remove: estimate %v, want 1", tr.Estimate())
	}
	tr.RemoveEdge(1, 0) // destroys {0,1,3}; reversed orientation on purpose
	if tr.Estimate() != 0 {
		t.Fatalf("after removing shared edge: estimate %v, want 0", tr.Estimate())
	}
	if tr.EdgesRemoved() != 2 {
		t.Fatalf("EdgesRemoved %d, want 2", tr.EdgesRemoved())
	}
	tr.RemoveEdge(5, 6) // never seen: no-op, no panic, no negative drift
	if tr.Estimate() != 0 {
		t.Fatalf("unknown removal changed the estimate to %v", tr.Estimate())
	}
}

// TestTriestWindowExact: with m >= window the windowed counter is an
// exact sliding-window triangle count — triangles fade out once one
// of their edges leaves the trailing window.
func TestTriestWindowExact(t *testing.T) {
	const window = 8
	tr := NewTriestWindow(64, window, 1)
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 2)
	tr.AddEdge(2, 0)
	if tr.Estimate() != 1 {
		t.Fatalf("estimate %v after closing a triangle, want 1", tr.Estimate())
	}
	// Push the triangle's edges out of the window with triangle-free
	// filler (a star closes nothing).
	for i := uint32(0); i < 2*window; i++ {
		tr.AddEdge(100, 200+i)
	}
	if tr.Estimate() != 0 {
		t.Fatalf("estimate %v after the triangle left the window, want 0", tr.Estimate())
	}
	if tr.ReservoirSize() > window {
		t.Fatalf("windowed reservoir holds %d edges, want <= %d", tr.ReservoirSize(), window)
	}
}

// TestTriestMemoryBudget: ReservoirForBudget sizes a reservoir whose
// MemoryBytes never exceeds the budget it was derived from.
func TestTriestMemoryBudget(t *testing.T) {
	const budget = 1 << 16
	tr := NewTriest(ReservoirForBudget(budget), 3)
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 4))
	for _, e := range g.Edges() {
		tr.AddEdge(e.U, e.V)
	}
	if got := tr.MemoryBytes(); got > budget {
		t.Fatalf("MemoryBytes %d exceeds budget %d", got, budget)
	}
	if tr.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not accounting anything")
	}
}
