package approx

import (
	"math"
	"math/rand"
	"testing"

	"lotustc/internal/baseline"
	"lotustc/internal/gen"
)

func TestTriestExactWithLargeReservoir(t *testing.T) {
	// M >= |E|: nothing is ever evicted and every closing wedge is
	// present, so the estimate is the exact count.
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 1))
	want := float64(baseline.BruteForce(g))
	tr := NewTriest(int(g.NumEdges())+10, 1)
	for _, e := range g.Edges() {
		tr.AddEdge(e.U, e.V)
	}
	if tr.Estimate() != want {
		t.Fatalf("exact-mode estimate %v, want %v", tr.Estimate(), want)
	}
	if tr.EdgesSeen() != uint64(g.NumEdges()) {
		t.Fatalf("seen %d edges", tr.EdgesSeen())
	}
	if tr.ReservoirSize() != int(g.NumEdges()) {
		t.Fatalf("reservoir %d", tr.ReservoirSize())
	}
}

func TestTriestUnbiasedOnAverage(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 10, 3))
	truth := float64(baseline.Forward(g, pool, baseline.KernelMerge))
	edges := g.Edges()
	m := len(edges) / 2
	var sum float64
	const runs = 16
	for seed := int64(0); seed < runs; seed++ {
		tr := NewTriest(m, seed)
		rng := rand.New(rand.NewSource(seed + 1000))
		perm := rng.Perm(len(edges))
		for _, i := range perm {
			tr.AddEdge(edges[i].U, edges[i].V)
		}
		sum += tr.Estimate()
	}
	mean := sum / runs
	if rel := math.Abs(mean-truth) / truth; rel > 0.15 {
		t.Fatalf("Triest mean %.0f deviates %.1f%% from truth %.0f", mean, 100*rel, truth)
	}
}

func TestTriestBoundedMemory(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 5))
	const m = 500
	tr := NewTriest(m, 2)
	for _, e := range g.Edges() {
		tr.AddEdge(e.U, e.V)
	}
	if tr.ReservoirSize() > m {
		t.Fatalf("reservoir grew to %d > %d", tr.ReservoirSize(), m)
	}
	// Adjacency entries must match reservoir edges exactly.
	var adjEdges int
	for _, nb := range tr.adj {
		adjEdges += len(nb)
	}
	if adjEdges != 2*tr.ReservoirSize() {
		t.Fatalf("adjacency holds %d entries for %d edges", adjEdges, tr.ReservoirSize())
	}
}

func TestTriestDegenerate(t *testing.T) {
	tr := NewTriest(0, 1) // clamps to 1
	tr.AddEdge(1, 1)      // self loop ignored
	if tr.EdgesSeen() != 0 {
		t.Fatal("self loop counted")
	}
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 2)
	tr.AddEdge(2, 0)
	if tr.Estimate() < 0 {
		t.Fatal("negative estimate")
	}
}
