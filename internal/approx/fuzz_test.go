package approx

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzTriest drives a small-reservoir Triest with an arbitrary
// add/remove sequence (duplicates, reversals, self loops and
// deletions of unseen edges included) and asserts the serving-layer
// invariants: the estimate and its error bound stay finite and
// non-negative, the reservoir never exceeds its capacity, memory
// accounting never exceeds the capacity-implied budget, and the
// adjacency index holds exactly two entries per resident edge.
func FuzzTriest(f *testing.F) {
	f.Add([]byte{1, 0, 1, 0, 2, 1, 2, 0, 0, 2}, uint8(4), uint8(0))
	f.Add([]byte{0, 1, 0, 1, 1, 0, 0, 1}, uint8(1), uint8(3))
	f.Add([]byte{9, 9, 9, 9}, uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, ops []byte, mRaw uint8, windowRaw uint8) {
		m := int(mRaw) // NewTriestWindow clamps m < 2
		tr := NewTriestWindow(m, uint64(windowRaw), 42)
		for i := 0; i+3 <= len(ops); i += 3 {
			u, v := uint32(ops[i]), uint32(ops[i+1])
			if ops[i+2]&1 == 0 {
				tr.AddEdge(u, v)
			} else {
				tr.RemoveEdge(u, v)
			}
			if est := tr.Estimate(); math.IsInf(est, 0) || math.IsNaN(est) || est < 0 {
				t.Fatalf("op %d: estimate %v not finite/non-negative", i/3, est)
			}
			if b := tr.ErrorBound(0.95); math.IsInf(b, 0) || math.IsNaN(b) || b < 0 {
				t.Fatalf("op %d: error bound %v not finite/non-negative", i/3, b)
			}
			if tr.ReservoirSize() > tr.ReservoirCap() {
				t.Fatalf("op %d: reservoir %d exceeds cap %d", i/3, tr.ReservoirSize(), tr.ReservoirCap())
			}
			if tr.MemoryBytes() > int64(tr.ReservoirCap())*TriestBytesPerEdge {
				t.Fatalf("op %d: memory %d exceeds cap-implied budget", i/3, tr.MemoryBytes())
			}
		}
		var adjEntries int
		for _, nb := range tr.adj {
			adjEntries += len(nb)
			for j := 1; j < len(nb); j++ {
				if nb[j-1] >= nb[j] {
					t.Fatalf("adjacency list not strictly sorted: %v", nb)
				}
			}
		}
		if adjEntries != 2*tr.ReservoirSize() {
			t.Fatalf("adjacency holds %d entries for %d resident edges", adjEntries, tr.ReservoirSize())
		}
		if len(tr.idx) != tr.ReservoirSize() {
			t.Fatalf("index holds %d entries for %d resident edges", len(tr.idx), tr.ReservoirSize())
		}
	})
}

// FuzzTriestWideIDs exercises the full uint32 ID space so canonical
// ordering and the index map are checked away from tiny IDs.
func FuzzTriestWideIDs(f *testing.F) {
	seed := make([]byte, 24)
	binary.LittleEndian.PutUint32(seed[0:], 1<<31)
	binary.LittleEndian.PutUint32(seed[4:], 7)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr := NewTriest(8, 9)
		for i := 0; i+8 <= len(raw); i += 8 {
			u := binary.LittleEndian.Uint32(raw[i:])
			v := binary.LittleEndian.Uint32(raw[i+4:])
			tr.AddEdge(u, v)
			if est := tr.Estimate(); math.IsInf(est, 0) || math.IsNaN(est) || est < 0 {
				t.Fatalf("estimate %v not finite/non-negative", est)
			}
		}
	})
}
