package approx

import (
	"math"
	"math/rand"
	"sort"
)

// Triest is a fixed-memory streaming triangle estimator in the style
// of TRIÈST-BASE (De Stefani et al.): a uniform reservoir of at most
// M edges is maintained over the stream, each arriving edge counts
// the triangles it closes inside the reservoir, and the increments
// are scaled by the inverse probability that the closing wedge
// survived in the reservoir.
//
// It complements the §6.2 LOTUS streaming counter: LOTUS keeps exact
// hub structures in memory; Triest bounds memory regardless of
// structure at the cost of variance. The two can be combined the same
// way Hybrid combines exact hub counting with sampling.
//
// Robustness contract (the serving layer depends on it): estimates
// are always finite and non-negative, duplicate arrivals of an edge
// already in the reservoir are no-ops in either orientation, and the
// reservoir plus its adjacency index never exceed the configured
// capacity. RemoveEdge gives best-effort deletion support, and a
// non-zero Window restricts the estimate to the trailing window of
// the stream (see NewTriestWindow).
type Triest struct {
	m      int
	t      uint64 // stream edges accepted (duplicates of resident edges excluded)
	window uint64 // 0 = whole stream
	rng    *rand.Rand
	// reservoir adjacency: sorted neighbour lists, exactly two
	// entries per resident edge (dedup is enforced on insert).
	adj map[uint32][]uint32
	// edges holds the reservoir's edge list for uniform eviction;
	// times[i] is the arrival time of edges[i] (used only in window
	// mode); idx maps a canonical (min,max) edge to its slot for O(1)
	// duplicate detection and deletion.
	edges [][2]uint32
	times []uint64
	idx   map[[2]uint32]int
	// minTime lower-bounds the resident arrival times so window
	// expiry scans only when something can actually expire.
	minTime  uint64
	estimate float64
	removed  uint64
}

// triestMinReservoir is the smallest legal reservoir. The wedge
// survival weight divides by m-1, so m=1 yields +Inf (and NaN at t=2
// through 0*Inf); two edges is also the least state that can ever
// hold a wedge, so smaller reservoirs were meaningless anyway.
const triestMinReservoir = 2

// TriestBytesPerEdge is the estimated resident cost of one reservoir
// edge: the edge and its arrival time (16), two 4-byte adjacency
// entries with growth slack (~16), and the index-map entry (~32).
// Used by ReservoirForBudget and MemoryBytes; deliberately
// conservative so byte budgets hold with real map/slice overheads.
const TriestBytesPerEdge = 64

// ReservoirForBudget returns the reservoir capacity that keeps a
// Triest within roughly budgetBytes of resident memory, never less
// than the minimum legal reservoir.
func ReservoirForBudget(budgetBytes int64) int {
	m := budgetBytes / TriestBytesPerEdge
	if m < triestMinReservoir {
		return triestMinReservoir
	}
	const maxReservoir = 1 << 28 // 16 GiB of edges: beyond any sane budget
	if m > maxReservoir {
		return maxReservoir
	}
	return int(m)
}

// NewTriest creates an estimator with a reservoir of m edges
// (clamped to at least 2 — see triestMinReservoir).
func NewTriest(m int, seed int64) *Triest {
	return NewTriestWindow(m, 0, seed)
}

// NewTriestWindow creates an estimator whose estimate tracks only
// the trailing `window` stream arrivals: resident edges older than
// the window are expired, and the triangles they close at expiry
// time are subtracted the same way RemoveEdge subtracts them. With
// m >= window the reservoir never evicts randomly and the counter is
// an exact sliding-window triangle count; with m < window it is a
// best-effort windowed estimate (the principled windowed reservoir
// of TRIÈST-WIN is future work). window == 0 means the whole stream.
func NewTriestWindow(m int, window uint64, seed int64) *Triest {
	if m < triestMinReservoir {
		m = triestMinReservoir
	}
	return &Triest{
		m:      m,
		window: window,
		rng:    rand.New(rand.NewSource(seed)),
		adj:    make(map[uint32][]uint32),
		idx:    make(map[[2]uint32]int),
	}
}

// Estimate returns the current triangle estimate. It is always
// finite and non-negative.
func (tr *Triest) Estimate() float64 { return tr.estimate }

// EdgesSeen returns the number of stream edges processed (self loops
// and duplicates of resident edges excluded).
func (tr *Triest) EdgesSeen() uint64 { return tr.t }

// EdgesRemoved returns the number of best-effort deletions applied.
func (tr *Triest) EdgesRemoved() uint64 { return tr.removed }

// ReservoirSize returns the current reservoir occupancy.
func (tr *Triest) ReservoirSize() int { return len(tr.edges) }

// ReservoirCap returns the configured reservoir capacity.
func (tr *Triest) ReservoirCap() int { return tr.m }

// MemoryBytes estimates the resident size of the reservoir and its
// adjacency index.
func (tr *Triest) MemoryBytes() int64 {
	return int64(len(tr.edges)) * TriestBytesPerEdge
}

// effLen is the effective stream length for sampling and weighting:
// the window size once the stream outgrows it, the stream length
// before that.
func (tr *Triest) effLen() uint64 {
	if tr.window > 0 && tr.t > tr.window {
		return tr.window
	}
	return tr.t
}

// wedgeWeight is the inverse probability that both edges of a wedge
// closed at effective stream length w survived in a reservoir of m
// edges: ((w-1)/m) * ((w-2)/(m-1)), floored at 1. m >= 2 keeps it
// finite; NewTriest enforces that.
func (tr *Triest) wedgeWeight() float64 {
	w := float64(tr.effLen())
	m := float64(tr.m)
	if tr.effLen() <= uint64(tr.m) {
		return 1
	}
	weight := ((w - 1) / m) * ((w - 2) / (m - 1))
	if weight < 1 || math.IsInf(weight, 0) || math.IsNaN(weight) {
		// The Inf/NaN guards are unreachable with m >= 2 but cheap:
		// the serving layer's invariant is "finite, always".
		return 1
	}
	return weight
}

func canonical(u, v uint32) [2]uint32 {
	if u > v {
		u, v = v, u
	}
	return [2]uint32{u, v}
}

// AddEdge feeds one undirected edge. Self loops are ignored. An edge
// already resident in the reservoir is ignored in either orientation
// — AddEdge(v,u) after AddEdge(u,v) is a no-op — so duplicate-heavy
// streams (serve-layer clients cannot be assumed edge-distinct) do
// not double-count closed wedges or hold duplicate adjacency entries.
// Duplicates of edges already evicted are indistinguishable from new
// edges under bounded memory and are counted again; that residual
// bias is inherent to any fixed-memory dedup.
func (tr *Triest) AddEdge(u, v uint32) {
	if u == v {
		return
	}
	key := canonical(u, v)
	if _, resident := tr.idx[key]; resident {
		return
	}
	tr.t++
	tr.expire()
	// Count triangles closed by (u,v) inside the reservoir, scaled
	// by the inverse sampling probability of a wedge at this point
	// in the (effective) stream.
	if c := countSorted(tr.adj[key[0]], tr.adj[key[1]]); c > 0 {
		tr.estimate += float64(c) * tr.wedgeWeight()
	}
	// Reservoir sampling of the edge itself.
	if len(tr.edges) < tr.m {
		tr.insert(key)
		return
	}
	if tr.rng.Float64() < float64(tr.m)/float64(tr.effLen()) {
		i := tr.rng.Intn(len(tr.edges))
		tr.evict(i)
		tr.insert(key)
	}
}

// RemoveEdge deletes an undirected edge from the stream,
// best-effort: if the edge is resident, the triangles it currently
// closes in the reservoir are subtracted at the current wedge weight
// and the edge leaves the reservoir; if it is not resident (never
// sampled, already evicted, or never seen) nothing can be known
// about it under bounded memory and the call is a no-op. The
// estimate never goes negative. Exactly compensated deletions
// (TRIÈST-FD's random pairing) are future work.
func (tr *Triest) RemoveEdge(u, v uint32) {
	if u == v {
		return
	}
	key := canonical(u, v)
	i, resident := tr.idx[key]
	if !resident {
		return
	}
	tr.removed++
	tr.subtractClosed(key)
	tr.evict(i)
}

// subtractClosed subtracts the triangles the resident edge `key`
// currently closes, clamping the estimate at zero.
func (tr *Triest) subtractClosed(key [2]uint32) {
	if c := countSorted(tr.adj[key[0]], tr.adj[key[1]]); c > 0 {
		tr.estimate -= float64(c) * tr.wedgeWeight()
		if tr.estimate < 0 {
			tr.estimate = 0
		}
	}
}

// expire drops resident edges that fell out of the trailing window,
// subtracting the triangles they still closed. The minTime gate
// makes the scan amortized: it runs only when the oldest resident
// edge has actually expired.
func (tr *Triest) expire() {
	if tr.window == 0 || tr.t <= tr.window || tr.minTime > tr.t-tr.window {
		return
	}
	cutoff := tr.t - tr.window // arrival times <= cutoff are stale
	newMin := uint64(math.MaxUint64)
	for i := 0; i < len(tr.edges); {
		if tr.times[i] <= cutoff {
			tr.subtractClosed(tr.edges[i])
			tr.evict(i)
			continue // evict swapped the tail into slot i
		}
		if tr.times[i] < newMin {
			newMin = tr.times[i]
		}
		i++
	}
	tr.minTime = newMin
}

func (tr *Triest) insert(key [2]uint32) {
	if len(tr.edges) == 0 || tr.t < tr.minTime {
		tr.minTime = tr.t
	}
	tr.idx[key] = len(tr.edges)
	tr.edges = append(tr.edges, key)
	tr.times = append(tr.times, tr.t)
	tr.addAdj(key[0], key[1])
}

// evict removes reservoir slot i via swap-delete, keeping idx
// consistent.
func (tr *Triest) evict(i int) {
	key := tr.edges[i]
	last := len(tr.edges) - 1
	tr.edges[i] = tr.edges[last]
	tr.times[i] = tr.times[last]
	tr.idx[tr.edges[i]] = i
	tr.edges = tr.edges[:last]
	tr.times = tr.times[:last]
	delete(tr.idx, key)
	tr.removeAdj(key[0], key[1])
}

// Variance returns an estimated upper bound on the estimator's
// variance: Estimate * (ξ(t) - 1) with ξ(t) the TRIÈST-BASE scale
// factor t(t-1)(t-2) / (m(m-1)(m-2)), floored at 1 (for m <= 2 the
// m-2 term is replaced by 1 to stay finite). This is the first term
// of De Stefani et al.'s variance bound; the dropped term counts
// triangle pairs sharing an edge, which a bounded-memory counter
// cannot track — ErrorBound's Chebyshev slack absorbs it in
// practice.
func (tr *Triest) Variance() float64 {
	w := float64(tr.effLen())
	m := float64(tr.m)
	m2 := m - 2
	if m2 < 1 {
		m2 = 1
	}
	xi := (w / m) * ((w - 1) / (m - 1)) * ((w - 2) / m2)
	if xi < 1 || math.IsNaN(xi) {
		xi = 1
	}
	return tr.estimate * (xi - 1)
}

// ErrorBound returns the half-width of a Chebyshev confidence
// interval around Estimate at the given confidence level in (0, 1):
// P(|Estimate - T| > bound) <= 1 - confidence. It is zero exactly
// when the estimator is running exact (reservoir never overflowed),
// and always finite.
func (tr *Triest) ErrorBound(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	v := tr.Variance()
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v / (1 - confidence))
}

func (tr *Triest) addAdj(u, v uint32) {
	tr.adj[u] = insertSorted(tr.adj[u], v)
	tr.adj[v] = insertSorted(tr.adj[v], u)
}

func (tr *Triest) removeAdj(u, v uint32) {
	tr.adj[u] = removeSorted(tr.adj[u], v)
	if len(tr.adj[u]) == 0 {
		delete(tr.adj, u)
	}
	tr.adj[v] = removeSorted(tr.adj[v], u)
	if len(tr.adj[v]) == 0 {
		delete(tr.adj, v)
	}
}

func insertSorted(s []uint32, x uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func removeSorted(s []uint32, x uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		s = append(s[:i], s[i+1:]...)
	}
	return s
}

func countSorted(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
