package approx

import (
	"math/rand"
	"sort"
)

// Triest is a fixed-memory streaming triangle estimator in the style
// of TRIÈST-BASE (De Stefani et al.): a uniform reservoir of at most
// M edges is maintained over the stream, each arriving edge counts
// the triangles it closes inside the reservoir, and the increments
// are scaled by the inverse probability that the closing wedge
// survived in the reservoir.
//
// It complements the §6.2 LOTUS streaming counter: LOTUS keeps exact
// hub structures in memory; Triest bounds memory regardless of
// structure at the cost of variance. The two can be combined the same
// way Hybrid combines exact hub counting with sampling.
type Triest struct {
	m   int
	t   uint64
	rng *rand.Rand
	// reservoir adjacency: sorted neighbour lists.
	adj map[uint32][]uint32
	// edges holds the reservoir's edge list for uniform eviction.
	edges    [][2]uint32
	estimate float64
}

// NewTriest creates an estimator with a reservoir of m edges.
func NewTriest(m int, seed int64) *Triest {
	if m < 1 {
		m = 1
	}
	return &Triest{m: m, rng: rand.New(rand.NewSource(seed)), adj: make(map[uint32][]uint32)}
}

// Estimate returns the current triangle estimate.
func (tr *Triest) Estimate() float64 { return tr.estimate }

// EdgesSeen returns the number of stream edges processed.
func (tr *Triest) EdgesSeen() uint64 { return tr.t }

// ReservoirSize returns the current reservoir occupancy.
func (tr *Triest) ReservoirSize() int { return len(tr.edges) }

// AddEdge feeds one undirected edge. Self loops are ignored; the
// stream is assumed edge-distinct (feed each undirected edge once).
func (tr *Triest) AddEdge(u, v uint32) {
	if u == v {
		return
	}
	tr.t++
	// Count triangles closed by (u,v) inside the reservoir, scaled
	// by the inverse sampling probability of a wedge at time t.
	c := countSorted(tr.adj[u], tr.adj[v])
	if c > 0 {
		weight := 1.0
		t := float64(tr.t)
		m := float64(tr.m)
		if tr.t > uint64(tr.m) {
			weight = ((t - 1) / m) * ((t - 2) / (m - 1))
			if weight < 1 {
				weight = 1
			}
		}
		tr.estimate += float64(c) * weight
	}
	// Reservoir sampling of the edge itself.
	if len(tr.edges) < tr.m {
		tr.insert(u, v)
		return
	}
	if tr.rng.Float64() < float64(tr.m)/float64(tr.t) {
		i := tr.rng.Intn(len(tr.edges))
		old := tr.edges[i]
		tr.removeAdj(old[0], old[1])
		tr.edges[i] = [2]uint32{u, v}
		tr.addAdj(u, v)
	}
}

func (tr *Triest) insert(u, v uint32) {
	tr.edges = append(tr.edges, [2]uint32{u, v})
	tr.addAdj(u, v)
}

func (tr *Triest) addAdj(u, v uint32) {
	tr.adj[u] = insertSorted(tr.adj[u], v)
	tr.adj[v] = insertSorted(tr.adj[v], u)
}

func (tr *Triest) removeAdj(u, v uint32) {
	tr.adj[u] = removeSorted(tr.adj[u], v)
	tr.adj[v] = removeSorted(tr.adj[v], u)
}

func insertSorted(s []uint32, x uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func removeSorted(s []uint32, x uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		s = append(s[:i], s[i+1:]...)
	}
	return s
}

func countSorted(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
