package approx

import (
	"math"
	"testing"

	"lotustc/internal/baseline"
	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/sched"
)

var pool = sched.NewPool(2)

func TestDoulionExactAtP1(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 1))
	want := float64(baseline.BruteForce(g))
	if got := Doulion(g, 1.0, 7, pool); got != want {
		t.Fatalf("Doulion(p=1) = %v, want %v", got, want)
	}
	if got := Doulion(g, 0, 7, pool); got != 0 {
		t.Fatalf("Doulion(p=0) = %v, want 0", got)
	}
}

func TestDoulionUnbiasedOnAverage(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(11, 10, 2))
	truth := float64(baseline.Forward(g, pool, baseline.KernelMerge))
	var sum float64
	const runs = 12
	for seed := int64(0); seed < runs; seed++ {
		sum += Doulion(g, 0.5, seed, pool)
	}
	mean := sum / runs
	if rel := math.Abs(mean-truth) / truth; rel > 0.10 {
		t.Fatalf("Doulion mean %.0f deviates %.1f%% from truth %.0f", mean, 100*rel, truth)
	}
}

func TestWedgeSamplingExactOnClique(t *testing.T) {
	// All wedges of K_n close, so the estimate is exactly C(n,3)
	// regardless of sampling noise.
	g := gen.Complete(12)
	got := WedgeSampling(g, 500, 3)
	if got != 220 {
		t.Fatalf("K12 wedge estimate = %v, want 220", got)
	}
	// Triangle-free graphs estimate exactly 0.
	if got := WedgeSampling(gen.CompleteBipartite(6, 6), 500, 3); got != 0 {
		t.Fatalf("bipartite estimate = %v, want 0", got)
	}
}

func TestWedgeSamplingAccuracy(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(11, 10, 4))
	truth := float64(baseline.Forward(g, pool, baseline.KernelMerge))
	got := WedgeSampling(g, 200000, 5)
	if rel := math.Abs(got-truth) / truth; rel > 0.10 {
		t.Fatalf("wedge estimate %.0f deviates %.1f%% from truth %.0f", got, 100*rel, truth)
	}
}

func TestWedgeSamplingDegenerate(t *testing.T) {
	if WedgeSampling(gen.Path(2), 100, 1) != 0 {
		t.Fatal("single edge has no wedges")
	}
	empty := gen.Path(0)
	if WedgeSampling(empty, 100, 1) != 0 {
		t.Fatal("empty graph")
	}
}

func TestHybridExactAtP1(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 6))
	truth := float64(baseline.BruteForce(g))
	h := Hybrid(g, 1.0, 1, core.Options{Pool: pool}, pool)
	if h.Estimate != truth {
		t.Fatalf("Hybrid(p=1) = %v, want %v", h.Estimate, truth)
	}
	if h.ExactHub == 0 {
		t.Fatal("no exact hub triangles on a skewed graph")
	}
}

func TestHybridBeatsDoulionOnSkewedGraph(t *testing.T) {
	// §6.2: exact hub counting bounds the sampling error by the NNN
	// share. Compare mean absolute relative error across seeds at the
	// same p on a skewed graph.
	g := gen.RMAT(gen.DefaultRMAT(11, 10, 8))
	truth := float64(baseline.Forward(g, pool, baseline.KernelMerge))
	const runs = 8
	const p = 0.3
	var errD, errH float64
	for seed := int64(0); seed < runs; seed++ {
		d := Doulion(g, p, seed, pool)
		h := Hybrid(g, p, seed, core.Options{Pool: pool}, pool)
		errD += math.Abs(d-truth) / truth
		errH += math.Abs(h.Estimate-truth) / truth
	}
	errD /= runs
	errH /= runs
	if errH >= errD {
		t.Fatalf("hybrid error %.4f not below doulion error %.4f", errH, errD)
	}
	// And on a skewed graph the hybrid's sampled share must be small.
	h := Hybrid(g, p, 0, core.Options{Pool: pool}, pool)
	if h.NNNShare > 0.5 {
		t.Fatalf("NNN share %.2f unexpectedly high on skewed graph", h.NNNShare)
	}
}

func TestHybridPartsConsistent(t *testing.T) {
	g := gen.HubAndSpokes(16, 400, 4, 3)
	h := Hybrid(g, 0.5, 2, core.Options{HubCount: 16, Pool: pool}, pool)
	if h.Estimate != float64(h.ExactHub)+h.EstimatedNNN {
		t.Fatal("estimate != exact + estimated")
	}
	// Hub-and-spokes has zero NNN triangles: hybrid is exact.
	want := float64(baseline.BruteForce(g))
	if h.Estimate != want {
		t.Fatalf("hybrid on NNN-free graph = %v, want %v", h.Estimate, want)
	}
	if h.NNNShare != 0 {
		t.Fatalf("NNN share = %v, want 0", h.NNNShare)
	}
}
