package approx

import (
	"fmt"
	"math"
	"math/rand"
)

// TriestState is the serializable state of a Triest estimator: what a
// durability layer must persist so a crashed process can resume the
// estimator with its reservoir, stream clock and estimate intact.
// The RNG position is deliberately not part of the state — it only
// affects which future edges get sampled, not the validity of the
// estimate — so a restored estimator is reseeded and continues as an
// equally valid (but not draw-for-draw identical) run unless it is
// restored from its genesis state, in which case the same seed
// reproduces the original run exactly.
type TriestState struct {
	Cap      int
	Window   uint64
	Seen     uint64 // stream edges accepted (t)
	Estimate float64
	Removed  uint64
	Edges    [][2]uint32 // resident reservoir, canonical (u<v) keys
	Times    []uint64    // arrival time per resident edge
}

// State snapshots the estimator. The returned slices are copies; the
// caller may serialize them while the estimator keeps ingesting
// (under its single-writer contract).
func (tr *Triest) State() *TriestState {
	st := &TriestState{
		Cap:      tr.m,
		Window:   tr.window,
		Seen:     tr.t,
		Estimate: tr.estimate,
		Removed:  tr.removed,
		Edges:    make([][2]uint32, len(tr.edges)),
		Times:    make([]uint64, len(tr.times)),
	}
	copy(st.Edges, tr.edges)
	copy(st.Times, tr.times)
	return st
}

// RestoreTriest rebuilds an estimator from a persisted state,
// validating every invariant the serving layer depends on: the state
// arrives from disk and a corrupt snapshot must fail recovery, not
// corrupt a live session. seed reseeds the sampler (see TriestState).
func RestoreTriest(st *TriestState, seed int64) (*Triest, error) {
	if st == nil {
		return nil, fmt.Errorf("approx: nil state")
	}
	m := st.Cap
	if m < triestMinReservoir {
		return nil, fmt.Errorf("approx: reservoir cap %d below minimum %d", m, triestMinReservoir)
	}
	if len(st.Edges) != len(st.Times) {
		return nil, fmt.Errorf("approx: %d edges but %d times", len(st.Edges), len(st.Times))
	}
	if len(st.Edges) > m {
		return nil, fmt.Errorf("approx: %d resident edges overflow cap %d", len(st.Edges), m)
	}
	if math.IsNaN(st.Estimate) || math.IsInf(st.Estimate, 0) || st.Estimate < 0 {
		return nil, fmt.Errorf("approx: estimate %v not finite and non-negative", st.Estimate)
	}
	tr := &Triest{
		m:        m,
		window:   st.Window,
		t:        st.Seen,
		estimate: st.Estimate,
		removed:  st.Removed,
		rng:      rand.New(rand.NewSource(seed)),
		adj:      make(map[uint32][]uint32),
		idx:      make(map[[2]uint32]int, len(st.Edges)),
	}
	tr.minTime = math.MaxUint64
	for i, e := range st.Edges {
		if e[0] >= e[1] {
			return nil, fmt.Errorf("approx: edge %d (%d,%d) not canonical", i, e[0], e[1])
		}
		if _, dup := tr.idx[e]; dup {
			return nil, fmt.Errorf("approx: duplicate reservoir edge (%d,%d)", e[0], e[1])
		}
		if st.Times[i] > st.Seen {
			return nil, fmt.Errorf("approx: edge %d arrival time %d after stream clock %d", i, st.Times[i], st.Seen)
		}
		tr.idx[e] = i
		tr.edges = append(tr.edges, e)
		tr.times = append(tr.times, st.Times[i])
		tr.addAdj(e[0], e[1])
		if st.Times[i] < tr.minTime {
			tr.minTime = st.Times[i]
		}
	}
	if len(tr.edges) == 0 {
		tr.minTime = 0
	}
	return tr, nil
}
