package approx

import (
	"math"
	"math/rand"
	"testing"
)

// TestRestoreFromGenesisIsBitIdentical is the property session
// recovery leans on: restoring the empty (genesis) state with the
// original seed and replaying the same edge sequence reproduces the
// original estimator draw-for-draw.
func TestRestoreFromGenesisIsBitIdentical(t *testing.T) {
	const seed = 99
	orig := NewTriestWindow(64, 0, seed)
	genesis := orig.State()
	rest, err := RestoreTriest(genesis, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		u, v := rng.Uint32()%300, rng.Uint32()%300
		orig.AddEdge(u, v)
		rest.AddEdge(u, v)
		if rng.Intn(10) == 0 {
			orig.RemoveEdge(u, v)
			rest.RemoveEdge(u, v)
		}
	}
	if orig.Estimate() != rest.Estimate() {
		t.Fatalf("estimates diverged: %v vs %v", orig.Estimate(), rest.Estimate())
	}
	if orig.EdgesSeen() != rest.EdgesSeen() || orig.ReservoirSize() != rest.ReservoirSize() {
		t.Fatalf("state diverged: t %d/%d reservoir %d/%d",
			orig.EdgesSeen(), rest.EdgesSeen(), orig.ReservoirSize(), rest.ReservoirSize())
	}
}

func TestStateMidStreamRoundTrip(t *testing.T) {
	tr := NewTriestWindow(32, 0, 5)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		tr.AddEdge(rng.Uint32()%200, rng.Uint32()%200)
	}
	st := tr.State()
	rest, err := RestoreTriest(st, 77)
	if err != nil {
		t.Fatal(err)
	}
	if rest.Estimate() != tr.Estimate() || rest.EdgesSeen() != tr.EdgesSeen() ||
		rest.ReservoirSize() != tr.ReservoirSize() || rest.EdgesRemoved() != tr.EdgesRemoved() {
		t.Fatalf("restore changed observable state: %+v vs live", st)
	}
	if rest.MemoryBytes() != tr.MemoryBytes() {
		t.Fatalf("memory accounting diverged: %d vs %d", rest.MemoryBytes(), tr.MemoryBytes())
	}
	// The restored estimator keeps working and keeps its invariants.
	for i := 0; i < 2000; i++ {
		rest.AddEdge(rng.Uint32()%200, rng.Uint32()%200)
		if e := rest.Estimate(); math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			t.Fatalf("estimate broke after restore: %v", e)
		}
	}
	if rest.ReservoirSize() > rest.ReservoirCap() {
		t.Fatalf("reservoir overflowed after restore: %d > %d", rest.ReservoirSize(), rest.ReservoirCap())
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	good := func() *TriestState {
		tr := NewTriest(8, 1)
		for i := uint32(0); i < 20; i++ {
			tr.AddEdge(i, i+1)
		}
		return tr.State()
	}
	cases := map[string]func(*TriestState){
		"cap too small":     func(s *TriestState) { s.Cap = 1 },
		"len mismatch":      func(s *TriestState) { s.Times = s.Times[:len(s.Times)-1] },
		"overflow":          func(s *TriestState) { s.Cap = len(s.Edges) - 1 },
		"nan estimate":      func(s *TriestState) { s.Estimate = math.NaN() },
		"negative estimate": func(s *TriestState) { s.Estimate = -1 },
		"non-canonical":     func(s *TriestState) { s.Edges[0] = [2]uint32{5, 5} },
		"duplicate":         func(s *TriestState) { s.Edges[1] = s.Edges[0] },
		"future time":       func(s *TriestState) { s.Times[0] = s.Seen + 1 },
	}
	for name, corrupt := range cases {
		st := good()
		corrupt(st)
		if _, err := RestoreTriest(st, 1); err == nil {
			t.Errorf("%s: corrupt state accepted", name)
		}
	}
	if _, err := RestoreTriest(nil, 1); err == nil {
		t.Error("nil state accepted")
	}
	if _, err := RestoreTriest(good(), 1); err != nil {
		t.Errorf("pristine state rejected: %v", err)
	}
}
