// Package approx implements approximate triangle counting and the
// paper's §6.2 observation that LOTUS improves the precision of
// approximate counting: because hub triangles (~93% of all triangles,
// §3.4) can be counted exactly from compact hub structures, only the
// small NNN remainder needs sampling.
//
// Three estimators are provided:
//
//   - Doulion: Tsourakakis et al.'s edge sparsification — keep each
//     edge with probability p, count exactly on the sparsified graph,
//     scale by 1/p^3.
//   - WedgeSampling: sample random wedges, measure the closure
//     probability, scale by wedges/3.
//   - Hybrid: LOTUS-exact HHH+HHN+HNN plus Doulion-sampled NNN — the
//     §6.2 hybrid. Its error is bounded by the NNN share, so on
//     skewed graphs it is dramatically more precise than Doulion at
//     equal sampling cost.
package approx

import (
	"math/rand"

	"lotustc/internal/core"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

// Doulion estimates the triangle count by keeping each undirected
// edge with probability p (seeded) and scaling the exact count of the
// sparsified graph by p^-3. p in (0, 1]; p == 1 is exact.
func Doulion(g *graph.Graph, p float64, seed int64, pool *sched.Pool) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		lg := core.Preprocess(g, core.Options{Pool: pool})
		return float64(lg.Count(pool).Total)
	}
	rng := rand.New(rand.NewSource(seed))
	var kept []graph.Edge
	for _, e := range g.Edges() {
		if rng.Float64() < p {
			kept = append(kept, e)
		}
	}
	sg := graph.FromEdges(kept, graph.BuildOptions{NumVertices: g.NumVertices()})
	lg := core.Preprocess(sg, core.Options{Pool: pool})
	t := lg.Count(pool).Total
	return float64(t) / (p * p * p)
}

// WedgeSampling estimates the triangle count by sampling `samples`
// uniform random wedges (paths u-v-w centred at v) and measuring the
// fraction that close into triangles: T ≈ closed/samples * W / 3,
// where W is the total wedge count.
func WedgeSampling(g *graph.Graph, samples int, seed int64) float64 {
	n := g.NumVertices()
	if n == 0 || samples <= 0 {
		return 0
	}
	// Wedge counts and their prefix sums for weighted vertex picks.
	prefix := make([]float64, n+1)
	for v := 0; v < n; v++ {
		d := float64(g.Degree(uint32(v)))
		prefix[v+1] = prefix[v] + d*(d-1)/2
	}
	totalWedges := prefix[n]
	if totalWedges == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	pickCenter := func() uint32 {
		x := rng.Float64() * totalWedges
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if prefix[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint32(lo)
	}
	closed := 0
	for i := 0; i < samples; i++ {
		v := pickCenter()
		nb := g.Neighbors(v)
		a := rng.Intn(len(nb))
		b := rng.Intn(len(nb) - 1)
		if b >= a {
			b++
		}
		if g.HasEdge(nb[a], nb[b]) {
			closed++
		}
	}
	return float64(closed) / float64(samples) * totalWedges / 3
}

// HybridResult carries the §6.2 hybrid estimate's parts.
type HybridResult struct {
	// ExactHub is the exactly counted HHH+HHN+HNN total.
	ExactHub uint64
	// EstimatedNNN is the sampled non-hub triangle estimate.
	EstimatedNNN float64
	// Estimate is the combined total.
	Estimate float64
	// NNNShare is the estimated fraction of triangles that had to be
	// sampled — the error exposure of the hybrid.
	NNNShare float64
}

// Hybrid counts hub triangles exactly with LOTUS phases 1-2 and
// estimates the NNN remainder with Doulion sparsification at
// probability p on the non-hub sub-graph.
func Hybrid(g *graph.Graph, p float64, seed int64, opt core.Options, pool *sched.Pool) HybridResult {
	lg := core.Preprocess(g, opt)
	// Exact hub phases only; NNN is replaced by sampling.
	res := lg.CountWithOptions(pool, core.CountOptions{SkipNNN: p < 1})
	exact := res.HHH + res.HHN + res.HNN
	var nnn float64
	if p >= 1 {
		nnn = float64(res.NNN)
	} else {
		sub := lg.NonHubSubgraph()
		rng := rand.New(rand.NewSource(seed))
		var kept []graph.Edge
		for _, e := range sub.Edges() {
			if rng.Float64() < p {
				kept = append(kept, e)
			}
		}
		sg := graph.FromEdges(kept, graph.BuildOptions{NumVertices: sub.NumVertices()})
		slg := core.Preprocess(sg, core.Options{Pool: pool})
		nnn = float64(slg.Count(pool).Total) / (p * p * p)
	}
	est := float64(exact) + nnn
	share := 0.0
	if est > 0 {
		share = nnn / est
	}
	return HybridResult{ExactHub: exact, EstimatedNNN: nnn, Estimate: est, NNNShare: share}
}
