package harness

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one runnable reproduction target.
type Experiment struct {
	ID          string
	Description string
	Run         func(w io.Writer, s Suite, workers int)
}

// Experiments returns the full experiment registry, keyed as in
// DESIGN.md's per-experiment index.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: topological characteristics of hubs (1% hub set)",
			func(w io.Writer, s Suite, _ int) { RunTable1(w, s) }},
		{"table5", "Tables 5/6 + Fig 1: end-to-end runtimes and TC rates vs baselines",
			func(w io.Writer, s Suite, workers int) { RunTable5(w, s, workers) }},
		{"table7", "Table 7: topology data size, CSX vs LOTUS",
			func(w io.Writer, s Suite, _ int) { RunTable7(w, s) }},
		{"table8", "Table 8: H2H bit array density and zero cachelines",
			func(w io.Writer, s Suite, _ int) { RunTable8(w, s) }},
		{"table9", "Table 9: phase-1 load balance, edge-balanced vs squared edge tiling",
			func(w io.Writer, s Suite, workers int) { RunTable9(w, s, workers) }},
		{"fig4", "Fig 4+5: modeled LLC/DTLB misses, accesses, instructions, branch misses",
			func(w io.Writer, s Suite, _ int) { RunFig4And5(w, s) }},
		{"fig5", "alias of fig4 (both figures come from the same replay)",
			func(w io.Writer, s Suite, _ int) { RunFig4And5(w, s) }},
		{"fig6", "Fig 6: LOTUS execution breakdown",
			func(w io.Writer, s Suite, workers int) { RunFig6(w, s, workers) }},
		{"fig7", "Fig 7: hub vs non-hub triangles",
			func(w io.Writer, s Suite, _ int) { RunFig7(w, s) }},
		{"fig8", "Fig 8: edges in HE vs NHE",
			func(w io.Writer, s Suite, _ int) { RunFig8(w, s) }},
		{"fig9", "Fig 9: H2H cacheline access concentration",
			func(w io.Writer, s Suite, _ int) { RunFig9(w, s) }},
		{"ablation-h2h", "Ablation: H2H bit array vs hash set",
			func(w io.Writer, s Suite, _ int) { RunAblationH2H(w, s) }},
		{"ablation-intersect", "Ablation: intersection kernels in Forward",
			func(w io.Writer, s Suite, workers int) { RunAblationIntersect(w, s, workers) }},
		{"ablation-relabel", "Ablation: LOTUS relabeling vs full degree ordering",
			func(w io.Writer, s Suite, workers int) { RunAblationRelabel(w, s, workers) }},
		{"ablation-fused", "Ablation: split vs fused HNN/NNN loops",
			func(w io.Writer, s Suite, workers int) { RunAblationFused(w, s, workers) }},
		{"ablation-phase1", "Ablation: phase-1 kernel, scalar probes vs word-parallel bitmap",
			func(w io.Writer, s Suite, workers int) { RunAblationPhase1(w, s, workers) }},
		{"ablation-preprocess", "Ablation: materialize+split vs literal Alg 2 preprocessing",
			func(w io.Writer, s Suite, workers int) { RunAblationPreprocess(w, s, workers) }},
		{"baselines-classic", "Classic §6.1 algorithms (Latapy, node-iterator-core, AYZ)",
			func(w io.Writer, s Suite, workers int) { RunBaselinesClassic(w, s, workers) }},
		{"ext-recursive", "Extension: recursive NHE splitting",
			func(w io.Writer, s Suite, workers int) { RunAblationRecursive(w, s, workers) }},
		{"ext-kclique", "Extension: k-clique counting, generic vs Lotus-structured",
			func(w io.Writer, s Suite, workers int) { RunExtensionKClique(w, s, workers) }},
		{"ext-approx", "Extension: approximate TC, Doulion vs Lotus hybrid",
			func(w io.Writer, s Suite, workers int) { RunExtensionApprox(w, s, workers) }},
		{"ext-hnnblock", "Extension: HNN blocking (§7 second bullet)",
			func(w io.Writer, s Suite, workers int) { RunExtensionHNNBlocking(w, s, workers) }},
		{"arch", "Architecture sweep (§5.2): LOTUS advantage vs LLC size",
			func(w io.Writer, s Suite, _ int) { RunArchSweep(w, s) }},
		{"mrc", "Miss-ratio curves: exact LRU stack analysis of both kernels",
			func(w io.Writer, s Suite, _ int) { RunMRC(w, s) }},
	}
}

// Find returns the experiment with the given ID, or nil.
func Find(id string) *Experiment {
	for _, e := range Experiments() {
		if e.ID == id {
			return &e
		}
	}
	return nil
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment (skipping the fig5 alias) into w.
// When the suite carries a context it stops as soon as the context is
// done — in-flight experiments finish cooperatively via their bound
// pools — and returns the context's error.
func RunAll(w io.Writer, s Suite, workers int) error {
	ctx := s.Context()
	for _, e := range Experiments() {
		if e.ID == "fig5" {
			continue
		}
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(w, "(run aborted: %v)\n", err)
			return err
		}
		e.Run(w, s, workers)
		fmt.Fprintln(w)
	}
	return ctx.Err()
}
