// Package harness regenerates every table and figure of the paper's
// evaluation section on synthetic datasets (DESIGN.md per-experiment
// index). Each experiment has a Run function that prints the same
// rows/series the paper reports; cmd/lotus-bench dispatches to them
// and EXPERIMENTS.md records measured-vs-paper.
package harness

import (
	"context"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

// Dataset is one synthetic stand-in for a paper dataset.
type Dataset struct {
	// Name labels the dataset in reports.
	Name string
	// Kind mirrors the paper's dataset types: SN (social network),
	// WG (web graph), or FLAT (the §5.5 less-power-law regime).
	Kind string
	// Analog names the paper dataset family this stands in for.
	Analog string
	// Build generates the graph (deterministic).
	Build func() *graph.Graph
}

// Suite scales the dataset sizes. Scale is the R-MAT log2 vertex
// count; the other generators are sized to match.
type Suite struct {
	Scale      uint
	EdgeFactor int
	// Ctx, when non-nil, bounds every experiment run from this suite:
	// pools built with NewPool are bound to it, and RunAll stops
	// between experiments once it is done.
	Ctx context.Context
	// Phase1Kernel / IntersectKernel override the LOTUS kernel
	// selection for the suite's lotus runs ("" keeps the engine
	// defaults: auto and adaptive). lotus-bench wires -phase1 and
	// -intersect here.
	Phase1Kernel    string
	IntersectKernel string
	// Shards > 0 adds a lotus-sharded run with that grid dimension to
	// every dataset's comparator sweep (the fixed p=1/2/4 variants run
	// regardless). lotus-bench wires -shards here.
	Shards int
}

// Context returns the suite's context, defaulting to Background.
func (s Suite) Context() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// NewPool builds a worker pool bound to the suite's context, so the
// counting kernels it runs abort cooperatively when the suite's
// deadline expires. Callers need not Release it: the watcher
// goroutine exits with the context.
func (s Suite) NewPool(workers int) *sched.Pool {
	return sched.NewPool(workers).Bind(s.Context())
}

// DefaultSuite sizes experiments for a laptop-class run (scale-16
// R-MAT ~= 65K vertices, 1M sampled edges).
func DefaultSuite() Suite { return Suite{Scale: 16, EdgeFactor: 16} }

// SmallSuite sizes experiments for quick runs and benchmarks.
func SmallSuite() Suite { return Suite{Scale: 13, EdgeFactor: 12} }

// Datasets returns the evaluation datasets: two social-network
// analogs (R-MAT at different skew), two web-graph analogs
// (Chung-Lu, gamma 2.0 and 2.4), and one flat graph reproducing the
// Friendster regime.
func (s Suite) Datasets() []Dataset {
	n := 1 << s.Scale
	m := s.EdgeFactor * n
	return []Dataset{
		{
			Name: "rmat-sn", Kind: "SN", Analog: "Twitter-family (R-MAT a=0.57)",
			Build: func() *graph.Graph { return gen.RMAT(gen.DefaultRMAT(s.Scale, s.EdgeFactor, 1)) },
		},
		{
			Name: "rmat-dense", Kind: "SN", Analog: "Twitter 2010 (denser R-MAT)",
			Build: func() *graph.Graph {
				p := gen.DefaultRMAT(s.Scale-1, 2*s.EdgeFactor, 2)
				p.A, p.B, p.C = 0.60, 0.18, 0.18
				return gen.RMAT(p)
			},
		},
		{
			Name: "cl-web20", Kind: "WG", Analog: "UK web crawls (Chung-Lu gamma=2.0)",
			Build: func() *graph.Graph {
				return gen.ChungLu(gen.ChungLuParams{N: n, M: 2 * m, Gamma: 2.0, Seed: 3})
			},
		},
		{
			Name: "cl-web24", Kind: "WG", Analog: "SK-Domain (Chung-Lu gamma=2.4)",
			Build: func() *graph.Graph {
				return gen.ChungLu(gen.ChungLuParams{N: n, M: 2 * m, Gamma: 2.4, Seed: 4})
			},
		},
		{
			Name: "cl-flat", Kind: "FLAT", Analog: "Friendster (capped-degree Chung-Lu)",
			Build: func() *graph.Graph {
				return gen.ChungLu(gen.ChungLuParams{N: n, M: m, Gamma: 2.6, MaxDegreeCap: 0.002, Seed: 5})
			},
		},
		{
			// Sized so |E| ~ 3m: a trigrid has ~3 edges per vertex, so a
			// side of sqrt(m) puts its edge count in the same league as
			// the power-law datasets' m while the degrees stay flat (<= 6)
			// — the regime where the auto tuner must route away from
			// LOTUS.
			Name: "trigrid", Kind: "FLAT", Analog: "road networks (triangulated grid)",
			Build: func() *graph.Graph {
				side := intSqrt(m)
				return gen.TriGrid(side, side)
			},
		},
	}
}

// intSqrt returns floor(sqrt(x)) for non-negative x.
func intSqrt(x int) int {
	if x < 2 {
		return x
	}
	r := x
	for next := (r + x/r) / 2; next < r; next = (r + x/r) / 2 {
		r = next
	}
	return r
}
