package harness

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"lotustc/internal/obs"
	"lotustc/internal/serve"
)

// serveCacheSweep measures the PR 9 success metric: how many graphs
// stay resident (servable without a rebuild) at a fixed cache byte
// budget, with and without the compressed residency tier, and what a
// warm /v1/count hit costs in each mode. The two rows —
// "serve-cache/raw" and "serve-cache/compressed" — carry
// serve.resident_graphs and serve.warm_hit_p50_ns so BENCH artifacts
// diff both across PRs.
const (
	// serveCacheBudget is sized so the raw mode holds a handful of the
	// sweep graphs (~100 KiB CSX each) and the compressed mode has to
	// earn its residency through demotion.
	serveCacheBudget = 768 << 10
	// serveCacheGraphs is the number of distinct graphs pushed through
	// each server — more than either mode can hold decoded.
	serveCacheGraphs = 28
	// serveCacheWarmReps samples the warm-hit latency distribution.
	serveCacheWarmReps = 51
)

// serveCacheBody is the request for graph i: a dense R-MAT whose
// varint-compressed twin is a small fraction of its CSX form, counted
// with the preprocessing-free forward kernel so the cache holds only
// "graph:" entries.
func serveCacheBody(seed int) string {
	return fmt.Sprintf(`{"graph":{"type":"rmat","scale":9,"edge_factor":64,"seed":%d},"algorithm":"forward"}`, seed)
}

func serveCacheRuns(br *obs.BenchReport, workers int) {
	modes := []struct {
		label string
		cfg   serve.Config
	}{
		{"serve-cache/raw", serve.Config{CacheBytes: serveCacheBudget, Workers: workers}},
		// Watermark 0.1 leaves the decoded tier smaller than one sweep
		// graph, so every graph serves decompress-on-demand — the
		// residency-maximizing end of the knob.
		{"serve-cache/compressed", serve.Config{CacheBytes: serveCacheBudget, Workers: workers,
			CompressCache: true, DemoteWatermark: 0.1}},
	}
	for _, mode := range modes {
		s := serve.New(mode.cfg)
		defer s.Close()
		h := s.Handler()
		var triangles uint64
		post := func(body string) (int, time.Duration) {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/count", strings.NewReader(body))
			start := time.Now()
			h.ServeHTTP(rec, req)
			if rec.Code == http.StatusOK {
				var cr serve.CountResponse
				if json.Unmarshal(rec.Body.Bytes(), &cr) == nil {
					triangles = cr.Triangles
				}
			}
			return rec.Code, time.Since(start)
		}
		ok := true
		start := time.Now()
		for i := 0; i < serveCacheGraphs; i++ {
			if code, _ := post(serveCacheBody(i)); code != http.StatusOK {
				ok = false
			}
		}
		fillElapsed := time.Since(start)
		// Cold re-query of a mid-sweep graph, bypassing the result
		// cache: old enough that raw mode evicted it and must rebuild
		// from the generator, recent enough that compressed mode still
		// holds its twin (the compressed tier is itself an LRU and the
		// earliest demotions fall off its cold end) and rehydrates — the
		// latency gap is the point of the tier.
		requeryBody := strings.Replace(serveCacheBody(serveCacheGraphs-10), `"algorithm"`, `"no_cache":true,"algorithm"`, 1)
		requeryCode, requery := post(requeryBody)
		if requeryCode != http.StatusOK {
			ok = false
		}
		// Warm-hit latency of the first graph's memoized count: the
		// steady-state request a resident service spends its life on.
		lat := make([]time.Duration, 0, serveCacheWarmReps)
		for i := 0; i < serveCacheWarmReps; i++ {
			code, d := post(serveCacheBody(0))
			if code != http.StatusOK {
				ok = false
			}
			lat = append(lat, d)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p50 := lat[len(lat)/2]

		met := s.Metrics()
		resident := met.Get("cache.entries")
		if mode.cfg.CompressCache {
			// Decoded graphs and compressed-tier graphs are disjoint
			// (re-admission removes the compressed twin), so residency
			// is the sum.
			resident = met.Get("cache.graph_entries") + met.Get("cache.compressed_entries")
		}
		rr := obs.RunReport{
			Schema:    obs.SchemaRun,
			Tool:      br.Tool,
			Timestamp: br.Timestamp,
			Env:       br.Env,
			Graph:     obs.GraphInfo{Source: fmt.Sprintf("rmat-s9-ef64 x%d", serveCacheGraphs)},
			Algorithm: mode.label,
			Workers:   workers,
			Triangles: triangles,
			ElapsedNS: fillElapsed.Nanoseconds(),
			Metrics: map[string]int64{
				"serve.cache_budget_bytes": serveCacheBudget,
				"serve.resident_graphs":    resident,
				"serve.warm_hit_p50_ns":    p50.Nanoseconds(),
				"serve.cold_requery_ns":    requery.Nanoseconds(),
				"serve.cache_bytes":        met.Get("cache.bytes"),
				"serve.compressed_bytes":   met.Get("cache.compressed_bytes"),
				"serve.demotions":          met.Get("cache.demotions"),
				"serve.rehydrations":       met.Get("cache.rehydrations"),
				"serve.admit_oversized":    met.Get("cache.admit_oversized"),
			},
		}
		if !ok {
			rr.Error = "serve-cache sweep: non-200 response"
		}
		br.Runs = append(br.Runs, rr)
	}
}
