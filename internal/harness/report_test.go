package harness

import (
	"bytes"
	"strings"
	"testing"

	"lotustc/internal/gen"
	"lotustc/internal/obs"
)

func TestSafeDiv(t *testing.T) {
	if got := safeDiv(6, 3); got != 2 {
		t.Fatalf("safeDiv(6,3) = %v", got)
	}
	if got := safeDiv(1, 0); got != 0 {
		t.Fatalf("safeDiv(1,0) = %v, want 0 (finite aggregation)", got)
	}
	if got := safeDiv(0, 0); got != 0 {
		t.Fatalf("safeDiv(0,0) = %v, want 0", got)
	}
}

func TestSimulateScheduleDegenerate(t *testing.T) {
	// All-zero work: makespan 0 must yield idle 0, not NaN.
	if span, idle := simulateSchedule([]uint64{0, 0, 0}, 4); span != 0 || idle != 0 {
		t.Fatalf("zero work: span=%d idle=%v, want 0, 0", span, idle)
	}
	// Exactly balanced: idle must clamp at 0, never go negative.
	if _, idle := simulateSchedule([]uint64{5, 5, 5, 5}, 4); idle != 0 {
		t.Fatalf("balanced schedule idle = %v, want 0", idle)
	}
	if span, idle := simulateSchedule(nil, 4); span != 0 || idle != 0 {
		t.Fatalf("empty work: span=%d idle=%v", span, idle)
	}
}

// TestTable5OutputFinite: sub-resolution timings on tiny graphs must
// never surface as NaN/Inf rows in the Table 5 / Fig 1 aggregates.
func TestTable5OutputFinite(t *testing.T) {
	var buf bytes.Buffer
	RunTable5(&buf, Suite{Scale: 8, EdgeFactor: 6}, 2)
	out := buf.String()
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("table5 output contains %s:\n%s", bad, out)
		}
	}
}

// TestTunerRunSkippedRow: a capability mismatch (symmetric-only
// kernel, oriented graph) must surface as an explicit Skipped row —
// not an Error, not a silently missing series.
func TestTunerRunSkippedRow(t *testing.T) {
	s := tinySuite()
	br := obs.NewBenchReport("test", "skip")
	g := gen.RMAT(gen.DefaultRMAT(8, 8, 1)).Orient()
	d := Dataset{Name: "oriented"}
	tunerRun(br, s, d, g, 1, "lotus")
	if len(br.Runs) != 1 {
		t.Fatalf("got %d rows, want 1", len(br.Runs))
	}
	r := br.Runs[0]
	if r.Skipped == "" || r.Error != "" || r.Triangles != 0 || r.ElapsedNS != 0 {
		t.Fatalf("skip row: %+v", r)
	}
}

func TestBuildBenchReport(t *testing.T) {
	s := tinySuite()
	br := BuildBenchReport(s, 2)
	if br.Schema != obs.SchemaBench || br.Suite != "scale-9/ef-8" {
		t.Fatalf("bad envelope: %+v", br)
	}
	// +2: the streaming-ingest throughput rows (exact and approx) on
	// the first dataset. +2 again: the serve-cache residency rows (raw
	// and compressed).
	wantRuns := len(s.Datasets())*(len(BenchAlgorithms)+len(benchKernelVariants)+
		len(benchShardVariants)+len(benchTunerAlgorithms)) + 4
	if len(br.Runs) != wantRuns {
		t.Fatalf("got %d runs, want %d", len(br.Runs), wantRuns)
	}
	// The kernel-ablation variants ride along per dataset, and their
	// triangle counts join the same agreement check below.
	variants := 0
	for _, r := range br.Runs {
		if strings.HasPrefix(r.Algorithm, "lotus/") {
			variants++
			if r.Classes == nil {
				t.Fatalf("%s/%s: variant run missing class split", r.Graph.Source, r.Algorithm)
			}
		}
	}
	if want := len(s.Datasets()) * len(benchKernelVariants); variants != want {
		t.Fatalf("got %d kernel-variant runs, want %d", variants, want)
	}
	// The auto-vs-fixed tuner sweep: one row per tuner algorithm per
	// dataset, and every "tune/auto" row must carry its Decision.
	tunerRows := 0
	for _, r := range br.Runs {
		if !strings.HasPrefix(r.Algorithm, "tune/") {
			continue
		}
		tunerRows++
		if r.Skipped != "" {
			t.Fatalf("%s/%s unexpectedly skipped: %s", r.Graph.Source, r.Algorithm, r.Skipped)
		}
		if r.Algorithm == "tune/auto" {
			if r.Decision == nil || r.Decision.Algorithm == "" || r.Decision.Reason == "" {
				t.Fatalf("%s: tune/auto row missing decision: %+v", r.Graph.Source, r.Decision)
			}
		} else if r.Decision != nil {
			t.Fatalf("%s/%s: fixed row carries a decision", r.Graph.Source, r.Algorithm)
		}
	}
	if want := len(s.Datasets()) * len(benchTunerAlgorithms); tunerRows != want {
		t.Fatalf("got %d tuner rows, want %d", tunerRows, want)
	}
	// Same for the sharded p-sweep rows.
	shardRuns := 0
	for _, r := range br.Runs {
		if strings.HasPrefix(r.Algorithm, "lotus-sharded/") {
			shardRuns++
			if r.Classes == nil {
				t.Fatalf("%s/%s: sharded run missing class split", r.Graph.Source, r.Algorithm)
			}
		}
	}
	if want := len(s.Datasets()) * len(benchShardVariants); shardRuns != want {
		t.Fatalf("got %d sharded runs, want %d", shardRuns, want)
	}
	// Per dataset, every comparator must agree on the triangle count.
	// The streaming-ingest rows have their own contract: the exact row
	// matches the comparators, the approx row is an estimate.
	counts := map[string]uint64{}
	streamRows := 0
	serveRows := 0
	for _, r := range br.Runs {
		if strings.HasPrefix(r.Algorithm, "serve-cache/") {
			serveRows++
			if r.Error != "" {
				t.Fatalf("%s failed: %s", r.Algorithm, r.Error)
			}
			if r.Metrics["serve.resident_graphs"] <= 0 || r.Metrics["serve.warm_hit_p50_ns"] <= 0 {
				t.Fatalf("%s: residency instrumentation missing: %v", r.Algorithm, r.Metrics)
			}
			if r.Algorithm == "serve-cache/compressed" && r.Metrics["serve.demotions"] <= 0 {
				t.Fatalf("serve-cache/compressed saw no demotions: %v", r.Metrics)
			}
			continue
		}
		if strings.HasPrefix(r.Algorithm, "stream-ingest/") {
			streamRows++
			if r.Metrics["stream.edges_per_sec"] <= 0 || r.Metrics["stream.memory_bytes"] <= 0 {
				t.Fatalf("%s/%s: ingest instrumentation missing: %v", r.Graph.Source, r.Algorithm, r.Metrics)
			}
			continue
		}
		if r.Error != "" {
			t.Fatalf("%s/%s failed: %s", r.Graph.Source, r.Algorithm, r.Error)
		}
		if prev, ok := counts[r.Graph.Source]; ok && prev != r.Triangles {
			t.Fatalf("%s: %s counted %d, others %d", r.Graph.Source, r.Algorithm, r.Triangles, prev)
		}
		counts[r.Graph.Source] = r.Triangles
		if r.Metrics == nil || r.Metrics["run.workers"] != int64(r.Workers) || r.Workers <= 0 {
			t.Fatalf("%s/%s: instrumentation missing: workers=%d metrics=%v",
				r.Graph.Source, r.Algorithm, r.Workers, r.Metrics)
		}
		if r.Algorithm == "lotus" {
			if r.Classes == nil {
				t.Fatalf("%s: lotus run missing class split", r.Graph.Source)
			}
			if len(r.Phases) != 4 {
				t.Fatalf("%s: lotus run has %d phases, want 4", r.Graph.Source, len(r.Phases))
			}
			if _, ok := r.Metrics["phase1.h2h_probes"]; !ok {
				t.Fatalf("%s: lotus metrics missing phase1.h2h_probes", r.Graph.Source)
			}
		}
	}
	if streamRows != 2 {
		t.Fatalf("got %d stream-ingest rows, want 2", streamRows)
	}
	if serveRows != 2 {
		t.Fatalf("got %d serve-cache rows, want 2", serveRows)
	}
	// The exact ingest row replays the whole edge stream through the
	// streaming counter with NNN counting on: it must reproduce the
	// comparators' triangle count for its dataset bit-for-bit.
	first := s.Datasets()[0].Name
	for _, r := range br.Runs {
		if r.Algorithm == "stream-ingest/exact" {
			if r.Graph.Source != first {
				t.Fatalf("stream-ingest rows on %s, want first dataset %s", r.Graph.Source, first)
			}
			if r.Triangles != counts[first] {
				t.Fatalf("stream-ingest/exact counted %d, comparators %d", r.Triangles, counts[first])
			}
		}
	}
}
