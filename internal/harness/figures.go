package harness

import (
	"fmt"
	"io"

	"lotustc/internal/core"
	"lotustc/internal/hwsim"
	"lotustc/internal/perf"
	"lotustc/internal/stats"
)

// perfMachine returns the hwsim machine used for the Fig 4/5 replay.
// The model machine scales with the suite the way the paper's L3s
// relate to its multi-gigabyte graphs: the CSX topology should exceed
// the modeled LLC by roughly an order of magnitude.
func perfMachine(s Suite) hwsim.MachineConfig {
	if s.Scale >= 18 {
		return hwsim.SkyLakeX()
	}
	return hwsim.MachineConfig{
		Name: "scaled-skx", L1Bytes: 4 << 10, L2Bytes: 32 << 10, L3Bytes: 256 << 10,
		L1Ways: 8, L2Ways: 8, L3Ways: 11, TLBEntries: 64,
	}
}

// RunFig4And5 reproduces Fig 4 (LLC misses, DTLB misses) and Fig 5
// (memory accesses, instruction proxy, branch mispredictions) by
// replaying the Forward and LOTUS reference streams on the machine
// model.
func RunFig4And5(w io.Writer, s Suite) {
	cfg := perfMachine(s)
	fmt.Fprintf(w, "=== Fig 4 & 5: modeled hardware events, Forward vs Lotus [%s] ===\n", cfg.Name)
	fmt.Fprintf(w, "%-12s %-8s %12s %12s %14s %14s %12s %14s\n",
		"dataset", "algo", "LLC miss", "DTLB miss", "mem access", "instructions", "branch miss", "est. cycles")
	type ratios struct{ llc, tlb, mem, ins, br, cyc float64 }
	var sum ratios
	ds := s.Datasets()
	for _, d := range ds {
		g := d.Build()
		fwd, lot := perf.Compare(g, core.Options{}, cfg)
		for _, e := range []perf.Events{fwd, lot} {
			fmt.Fprintf(w, "%-12s %-8s %12d %12d %14d %14d %12d %14d\n",
				d.Name, label(e.Name), e.LLCMisses, e.TLBMisses, e.MemAccesses, e.Instructions, e.BranchMisses, e.EstimatedCycles)
		}
		sum.llc += ratio(fwd.LLCMisses, lot.LLCMisses)
		sum.tlb += ratio(fwd.TLBMisses, lot.TLBMisses)
		sum.mem += ratio(fwd.MemAccesses, lot.MemAccesses)
		sum.ins += ratio(fwd.Instructions, lot.Instructions)
		sum.br += ratio(fwd.BranchMisses, lot.BranchMisses)
		sum.cyc += ratio(fwd.EstimatedCycles, lot.EstimatedCycles)
	}
	k := float64(len(ds))
	fmt.Fprintf(w, "Average reduction (forward/lotus): LLC %.1fx, DTLB %.1fx, mem %.1fx, instr %.1fx, branch-miss %.1fx, cycles %.1fx\n",
		sum.llc/k, sum.tlb/k, sum.mem/k, sum.ins/k, sum.br/k, sum.cyc/k)
	fmt.Fprintln(w, "(paper averages: LLC 2.1x, DTLB 34.6x, mem 1.5x, instr 1.7x, branch-miss 2.4x)")

	// With the tagged next-line prefetcher on, streamed phases stop
	// missing and the LLC gap widens further (§4.5's argument that
	// LOTUS turns random traffic into prefetchable streams).
	pf := cfg
	pf.Prefetch = true
	pf.Name += "+pf"
	var pfSum float64
	for _, d := range ds {
		g := d.Build()
		fwd, lot := perf.Compare(g, core.Options{}, pf)
		pfSum += ratio(fwd.LLCMisses, lot.LLCMisses)
	}
	fmt.Fprintf(w, "With next-line prefetcher: average LLC-miss reduction %.1fx\n", pfSum/k)
}

func label(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// RunArchSweep reproduces the §5.2 architecture observation: "the
// Epyc system has ... 512MB total L3 ... As a result, speedup
// obtained by Lotus is less, due to the larger cache size." Three
// scaled machine models with growing LLCs are driven by the same
// reference streams; the LLC-miss reduction (the source of the LOTUS
// speedup) must shrink as the LLC grows.
func RunArchSweep(w io.Writer, s Suite) {
	fmt.Fprintln(w, "=== Architecture sweep (§5.2): LOTUS advantage vs LLC size ===")
	small := hwsim.MachineConfig{Name: "small-llc", L1Bytes: 2 << 10, L2Bytes: 16 << 10, L3Bytes: 64 << 10,
		L1Ways: 4, L2Ways: 8, L3Ways: 8, TLBEntries: 32}
	mid := hwsim.MachineConfig{Name: "mid-llc", L1Bytes: 4 << 10, L2Bytes: 32 << 10, L3Bytes: 256 << 10,
		L1Ways: 8, L2Ways: 8, L3Ways: 11, TLBEntries: 64}
	big := hwsim.MachineConfig{Name: "big-llc", L1Bytes: 8 << 10, L2Bytes: 64 << 10, L3Bytes: 4 << 20,
		L1Ways: 8, L2Ways: 8, L3Ways: 16, TLBEntries: 256}
	machines := []hwsim.MachineConfig{small, mid, big}
	fmt.Fprintf(w, "%-12s %12s %16s %16s %14s\n", "dataset", "machine", "fwd LLC miss", "lotus LLC miss", "reduction")
	for _, d := range s.Datasets() {
		g := d.Build()
		for _, m := range machines {
			fwd, lot := perf.Compare(g, core.Options{}, m)
			fmt.Fprintf(w, "%-12s %12s %16d %16d %13.2fx\n",
				d.Name, m.Name, fwd.LLCMisses, lot.LLCMisses, ratio(fwd.LLCMisses, lot.LLCMisses))
		}
	}
	fmt.Fprintln(w, "(paper: the Epyc's 512 MB L3 captures most accesses, so the LOTUS speedup shrinks there)")
}

// RunMRC prints machine-independent LRU miss-ratio curves for the
// Forward and LOTUS reference streams (exact Mattson stack analysis).
// The LOTUS curve sits below Forward's in the contended capacity
// range and the curves converge once the cache swallows the whole
// topology — the §5.2 explanation for the Epyc's smaller speedup,
// with no cache simulator in the loop.
func RunMRC(w io.Writer, s Suite) {
	fmt.Fprintln(w, "=== Miss-ratio curves (exact LRU stack analysis of the reference streams) ===")
	caps := []int{1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 17, 1 << 20}
	fmt.Fprintf(w, "%-12s %-8s", "dataset", "algo")
	for _, c := range caps {
		fmt.Fprintf(w, " %9s", fmtBytes(int64(c)*64))
	}
	fmt.Fprintln(w)
	pool := s.NewPool(0)
	// The exact stack analysis is O(accesses * log(lines)): run it on
	// a reduced copy of each dataset to keep the experiment fast.
	rs := s
	if rs.Scale > 12 {
		rs.Scale = 12
	}
	for _, d := range rs.Datasets() {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		fwd := perf.ForwardMRC(g, caps)
		lot := perf.LotusMRC(lg, caps)
		fmt.Fprintf(w, "%-12s %-8s", d.Name, "forward")
		for _, m := range fwd {
			fmt.Fprintf(w, " %8.3f%%", 100*m)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-12s %-8s", d.Name, "lotus")
		for _, m := range lot {
			fmt.Fprintf(w, " %8.3f%%", 100*m)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(columns are LRU capacities; curves converge at the right — the §5.2 large-L3 effect)")
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}

// RunFig6 reproduces Fig 6: the LOTUS execution breakdown across
// preprocessing and the three counting phases.
func RunFig6(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Fig 6: Lotus execution breakdown (seconds) ===")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %8s %8s\n",
		"dataset", "preproc", "HHH+HHN", "HNN", "NNN", "pre%", "NNN%ofTC")
	var preSum, nnnSum float64
	ds := s.Datasets()
	for _, d := range ds {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		res := lg.Count(pool)
		pre := lg.PreprocessTime.Seconds()
		p1, p2, p3 := res.Phase1Time.Seconds(), res.HNNTime.Seconds(), res.NNNTime.Seconds()
		total := pre + p1 + p2 + p3
		tc := p1 + p2 + p3
		prePct, nnnPct := 100*pre/total, 100*p3/tc
		fmt.Fprintf(w, "%-12s %10.3f %10.3f %10.3f %10.3f %7.1f%% %7.1f%%\n",
			d.Name, pre, p1, p2, p3, prePct, nnnPct)
		preSum += prePct
		nnnSum += nnnPct
	}
	k := float64(len(ds))
	fmt.Fprintf(w, "Average: preprocessing %.1f%% of total; NNN %.1f%% of counting time\n", preSum/k, nnnSum/k)
	fmt.Fprintln(w, "(paper averages: preprocessing 19.4% of total; NNN 40.4% of counting)")
}

// RunFig7 reproduces Fig 7: hub vs non-hub triangles counted by LOTUS.
func RunFig7(w io.Writer, s Suite) {
	pool := s.NewPool(0)
	fmt.Fprintln(w, "=== Fig 7: hub vs non-hub triangles (Lotus hub set) ===")
	fmt.Fprintf(w, "%-12s %14s %14s %9s %9s\n", "dataset", "hub tri", "non-hub tri", "hub%", "nonhub%")
	var hubPct float64
	ds := s.Datasets()
	for _, d := range ds {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		res := lg.Count(pool)
		ts := stats.ComputeTriangleSplit(res)
		fmt.Fprintf(w, "%-12s %14d %14d %8.1f%% %8.1f%%\n",
			d.Name, res.HubTriangles(), res.NNN, ts.HubPct, ts.NonHubPct)
		hubPct += ts.HubPct
	}
	fmt.Fprintf(w, "Average hub triangle share: %.1f%%\n", hubPct/float64(len(ds)))
	fmt.Fprintln(w, "(paper average: 68.9% hub / 31.1% non-hub with the 64K hub set)")
}

// RunFig8 reproduces Fig 8: percentage of edges in the HE and NHE
// sub-graphs.
func RunFig8(w io.Writer, s Suite) {
	pool := s.NewPool(0)
	fmt.Fprintln(w, "=== Fig 8: edges in HE vs NHE sub-graphs ===")
	fmt.Fprintf(w, "%-12s %14s %14s %9s %9s\n", "dataset", "HE edges", "NHE edges", "HE%", "NHE%")
	var hePct float64
	ds := s.Datasets()
	for _, d := range ds {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		split := stats.ComputeEdgeSplit(lg)
		fmt.Fprintf(w, "%-12s %14d %14d %8.1f%% %8.1f%%\n",
			d.Name, split.HEEdges, split.NHEEdges, split.HEPct, split.NHEPct)
		hePct += split.HEPct
	}
	fmt.Fprintf(w, "Average HE share: %.1f%%\n", hePct/float64(len(ds)))
	fmt.Fprintln(w, "(paper average: 50.1% of edges processed as hub edges)")
}

// RunFig9 reproduces Fig 9: the cumulative fraction of H2H accesses
// satisfied by the most frequently accessed cachelines, plus the
// §5.7 headline (lines needed for 90% coverage).
func RunFig9(w io.Writer, s Suite) {
	pool := s.NewPool(0)
	fmt.Fprintln(w, "=== Fig 9: cumulative H2H accesses vs top cachelines ===")
	ks := []float64{0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0}
	fmt.Fprintf(w, "%-12s", "dataset")
	for _, f := range ks {
		fmt.Fprintf(w, " %7.1f%%", 100*f)
	}
	fmt.Fprintf(w, " %12s %10s\n", "lines(90%)", "of lines")
	for _, d := range s.Datasets() {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool, HubCount: paperHubCount(g.NumVertices())})
		p := perf.H2HProfile(lg)
		if p.Total() == 0 {
			fmt.Fprintf(w, "%-12s (no hub pairs)\n", d.Name)
			continue
		}
		kcounts := make([]int, len(ks))
		for i, f := range ks {
			kcounts[i] = int(f * float64(p.Lines()))
		}
		cdf := p.CDF(kcounts)
		fmt.Fprintf(w, "%-12s", d.Name)
		for _, c := range cdf {
			fmt.Fprintf(w, " %7.1f%%", 100*c)
		}
		l90 := p.LinesForCoverage(0.90)
		fmt.Fprintf(w, " %12d %9.1f%%\n", l90, 100*float64(l90)/float64(p.Lines()))
	}
	fmt.Fprintln(w, "(paper: 1M cachelines = 64 MB satisfy >90% of H2H accesses; 90% of probes touch 25% of lines)")
}
