package harness

import (
	"fmt"

	"lotustc/internal/engine"
	"lotustc/internal/obs"
)

// BenchAlgorithms is the Table 5 comparator set BuildBenchReport
// sweeps, in display order.
var BenchAlgorithms = []string{"bbtc", "edge-iterator", "forward", "gbbs", "lotus"}

// benchKernelVariants are the labeled LOTUS kernel-ablation runs
// appended to every dataset's sweep: phase-1 scalar vs word and
// HNN/NNN merge vs adaptive, each pinned so the pairs differ in
// exactly one knob. Their RunReport Algorithm field carries the
// variant label (e.g. "lotus/phase1=word").
var benchKernelVariants = []struct {
	label  string
	params engine.Params
}{
	{"lotus/phase1=scalar", engine.Params{Phase1Kernel: "scalar", IntersectKernel: "merge"}},
	{"lotus/phase1=word", engine.Params{Phase1Kernel: "word", IntersectKernel: "merge"}},
	{"lotus/intersect=merge", engine.Params{Phase1Kernel: "scalar", IntersectKernel: "merge"}},
	{"lotus/intersect=adaptive", engine.Params{Phase1Kernel: "scalar", IntersectKernel: "adaptive"}},
}

// benchShardVariants sweep the sharded kernel's grid dimension so the
// BENCH artifact records the p=1/2/4 scaling of the 2D path against
// flat LOTUS on the same datasets.
var benchShardVariants = []struct {
	label  string
	params engine.Params
}{
	{"lotus-sharded/p=1", engine.Params{Shards: 1}},
	{"lotus-sharded/p=2", engine.Params{Shards: 2}},
	{"lotus-sharded/p=4", engine.Params{Shards: 4}},
}

// BuildBenchReport runs the Table 5 comparators over the suite's
// datasets with metrics collection on and folds every run into one
// machine-readable BenchReport (the BENCH_*.json artifact). A failed
// or cancelled run becomes a RunReport with Error set rather than
// aborting the sweep, so partial artifacts remain diffable.
func BuildBenchReport(s Suite, workers int) *obs.BenchReport {
	br := obs.NewBenchReport("lotus-bench", fmt.Sprintf("scale-%d/ef-%d", s.Scale, s.EdgeFactor))
	for _, d := range s.Datasets() {
		if s.Context().Err() != nil {
			break
		}
		g := d.Build()
		oneRun := func(algo, label string, params engine.Params) {
			rr := obs.RunReport{
				Schema:    obs.SchemaRun,
				Tool:      br.Tool,
				Timestamp: br.Timestamp,
				Env:       br.Env,
				Graph:     obs.GraphInfo{Source: d.Name, Vertices: int64(g.NumVertices()), Edges: g.NumEdges()},
				Algorithm: label,
			}
			rep, err := engine.Run(s.Context(), g, engine.Spec{
				Algorithm:      algo,
				Workers:        workers,
				CollectMetrics: true,
				Params:         params,
			})
			if err != nil {
				rr.Error = err.Error()
				br.Runs = append(br.Runs, rr)
				return
			}
			rr.Workers = int(rep.Metrics["run.workers"])
			rr.Triangles = rep.Triangles
			rr.ElapsedNS = rep.Elapsed.Nanoseconds()
			for _, p := range rep.Phases {
				rr.Phases = append(rr.Phases, obs.PhaseNS{Name: p.Name, NS: p.Duration.Nanoseconds()})
			}
			if algo == "lotus" || algo == "lotus-sharded" {
				rr.Classes = &obs.Classes{HHH: rep.HHH, HHN: rep.HHN, HNN: rep.HNN, NNN: rep.NNN}
			}
			rr.Metrics = rep.Metrics
			br.Runs = append(br.Runs, rr)
		}
		for _, algo := range BenchAlgorithms {
			params := engine.Params{}
			if algo == "lotus" {
				params.Phase1Kernel = s.Phase1Kernel
				params.IntersectKernel = s.IntersectKernel
			}
			oneRun(algo, algo, params)
		}
		if s.Shards > 0 {
			oneRun("lotus-sharded", fmt.Sprintf("lotus-sharded/p=%d", s.Shards),
				engine.Params{Shards: s.Shards})
		}
		for _, v := range benchKernelVariants {
			if s.Context().Err() != nil {
				break
			}
			oneRun("lotus", v.label, v.params)
		}
		for _, v := range benchShardVariants {
			if s.Context().Err() != nil {
				break
			}
			oneRun("lotus-sharded", v.label, v.params)
		}
	}
	return br
}
