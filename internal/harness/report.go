package harness

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lotustc/internal/approx"
	"lotustc/internal/core"
	"lotustc/internal/engine"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
)

// BenchAlgorithms is the Table 5 comparator set BuildBenchReport
// sweeps, in display order.
var BenchAlgorithms = []string{"bbtc", "edge-iterator", "forward", "gbbs", "lotus"}

// benchKernelVariants are the labeled LOTUS kernel-ablation runs
// appended to every dataset's sweep: phase-1 scalar vs word and
// HNN/NNN merge vs adaptive, each pinned so the pairs differ in
// exactly one knob. Their RunReport Algorithm field carries the
// variant label (e.g. "lotus/phase1=word").
var benchKernelVariants = []struct {
	label  string
	params engine.Params
}{
	{"lotus/phase1=scalar", engine.Params{Phase1Kernel: "scalar", IntersectKernel: "merge"}},
	{"lotus/phase1=word", engine.Params{Phase1Kernel: "word", IntersectKernel: "merge"}},
	{"lotus/intersect=merge", engine.Params{Phase1Kernel: "scalar", IntersectKernel: "merge"}},
	{"lotus/intersect=adaptive", engine.Params{Phase1Kernel: "scalar", IntersectKernel: "adaptive"}},
}

// benchShardVariants sweep the sharded kernel's grid dimension so the
// BENCH artifact records the p=1/2/4 scaling of the 2D path against
// flat LOTUS on the same datasets.
var benchShardVariants = []struct {
	label  string
	params engine.Params
}{
	{"lotus-sharded/p=1", engine.Params{Shards: 1}},
	{"lotus-sharded/p=2", engine.Params{Shards: 2}},
	{"lotus-sharded/p=4", engine.Params{Shards: 4}},
}

// benchTunerAlgorithms is the auto-vs-fixed sweep appended per
// dataset: every fixed algorithm the structural tuner can route to,
// plus "auto" itself. Rows are labeled "tune/<algo>" and timed
// best-of-tunerBestOf so the auto-vs-fixed margins in the BENCH
// artifact reflect the routing choice, not timer noise; the auto row
// carries the tuner's Decision block (routed algorithm, policy
// reason, probe stats).
var benchTunerAlgorithms = []string{"lotus", "cover-edge", "degree-partition", "auto"}

const tunerBestOf = 3

// BuildBenchReport runs the Table 5 comparators over the suite's
// datasets with metrics collection on and folds every run into one
// machine-readable BenchReport (the BENCH_*.json artifact). A failed
// or cancelled run becomes a RunReport with Error set rather than
// aborting the sweep, so partial artifacts remain diffable.
func BuildBenchReport(s Suite, workers int) *obs.BenchReport {
	br := obs.NewBenchReport("lotus-bench", fmt.Sprintf("scale-%d/ef-%d", s.Scale, s.EdgeFactor))
	for _, d := range s.Datasets() {
		if s.Context().Err() != nil {
			break
		}
		g := d.Build()
		oneRun := func(algo, label string, params engine.Params) {
			rr := obs.RunReport{
				Schema:    obs.SchemaRun,
				Tool:      br.Tool,
				Timestamp: br.Timestamp,
				Env:       br.Env,
				Graph:     obs.GraphInfo{Source: d.Name, Vertices: int64(g.NumVertices()), Edges: g.NumEdges()},
				Algorithm: label,
			}
			rep, err := engine.Run(s.Context(), g, engine.Spec{
				Algorithm:      algo,
				Workers:        workers,
				CollectMetrics: true,
				Params:         params,
			})
			if err != nil {
				rr.Error = err.Error()
				br.Runs = append(br.Runs, rr)
				return
			}
			rr.Workers = int(rep.Metrics["run.workers"])
			rr.Triangles = rep.Triangles
			rr.ElapsedNS = rep.Elapsed.Nanoseconds()
			for _, p := range rep.Phases {
				rr.Phases = append(rr.Phases, obs.PhaseNS{Name: p.Name, NS: p.Duration.Nanoseconds()})
			}
			if algo == "lotus" || algo == "lotus-sharded" {
				rr.Classes = &obs.Classes{HHH: rep.HHH, HHN: rep.HHN, HNN: rep.HNN, NNN: rep.NNN}
			}
			rr.Metrics = rep.Metrics
			br.Runs = append(br.Runs, rr)
		}
		for _, algo := range BenchAlgorithms {
			params := engine.Params{}
			if algo == "lotus" {
				params.Phase1Kernel = s.Phase1Kernel
				params.IntersectKernel = s.IntersectKernel
			}
			oneRun(algo, algo, params)
		}
		if s.Shards > 0 {
			oneRun("lotus-sharded", fmt.Sprintf("lotus-sharded/p=%d", s.Shards),
				engine.Params{Shards: s.Shards})
		}
		for _, v := range benchKernelVariants {
			if s.Context().Err() != nil {
				break
			}
			oneRun("lotus", v.label, v.params)
		}
		for _, v := range benchShardVariants {
			if s.Context().Err() != nil {
				break
			}
			oneRun("lotus-sharded", v.label, v.params)
		}
		for _, algo := range benchTunerAlgorithms {
			if s.Context().Err() != nil {
				break
			}
			tunerRun(br, s, d, g, workers, algo)
		}
	}
	// Streaming-ingest throughput rows (edges/sec, exact vs approx) on
	// the first dataset only: the point is tracking the serving stream
	// path's ingest rate across PRs, not another full sweep.
	if ds := s.Datasets(); len(ds) > 0 && s.Context().Err() == nil {
		streamIngestRuns(br, ds[0], ds[0].Build())
	}
	// Serving-layer residency rows: resident graphs per byte budget and
	// warm-hit latency, raw vs compressed cache (the PR 9 metric).
	if s.Context().Err() == nil {
		serveCacheRuns(br, workers)
	}
	return br
}

// tunerRun appends one auto-vs-fixed sweep row: algo run
// tunerBestOf times on g, keeping the fastest. A capability mismatch
// (the kernel declares it cannot run this graph) becomes an explicit
// Skipped row, so the artifact distinguishes "legitimately did not
// run" from a failure; any other error is a real Error row.
func tunerRun(br *obs.BenchReport, s Suite, d Dataset, g *graph.Graph, workers int, algo string) {
	rr := obs.RunReport{
		Schema:    obs.SchemaRun,
		Tool:      br.Tool,
		Timestamp: br.Timestamp,
		Env:       br.Env,
		Graph:     obs.GraphInfo{Source: d.Name, Vertices: int64(g.NumVertices()), Edges: g.NumEdges()},
		Algorithm: "tune/" + algo,
	}
	var best *engine.Report
	for i := 0; i < tunerBestOf; i++ {
		if s.Context().Err() != nil {
			break
		}
		rep, err := engine.Run(s.Context(), g, engine.Spec{
			Algorithm:      algo,
			Workers:        workers,
			CollectMetrics: true,
		})
		if err != nil {
			if errors.Is(err, engine.ErrNeedsSymmetric) {
				rr.Skipped = err.Error()
			} else {
				rr.Error = err.Error()
			}
			br.Runs = append(br.Runs, rr)
			return
		}
		if best == nil || rep.Elapsed < best.Elapsed {
			best = rep
		}
	}
	if best == nil {
		return // context expired before any attempt; the sweep is ending
	}
	rr.Workers = int(best.Metrics["run.workers"])
	rr.Triangles = best.Triangles
	rr.ElapsedNS = best.Elapsed.Nanoseconds()
	for _, p := range best.Phases {
		rr.Phases = append(rr.Phases, obs.PhaseNS{Name: p.Name, NS: p.Duration.Nanoseconds()})
	}
	rr.Metrics = best.Metrics
	rr.Decision = best.Decision
	br.Runs = append(br.Runs, rr)
}

// streamIngestRuns appends two streaming-ingest rows for one dataset:
// the exact core.Streaming counter (top-degree hubs, NNN counting on)
// and the Triest estimator at a 1 MiB budget, each timed over a full
// single-threaded edge replay. Metrics carry stream.edges_per_sec and
// the resident footprint so BENCH artifacts diff both across PRs.
func streamIngestRuns(br *obs.BenchReport, d Dataset, g *graph.Graph) {
	edges := g.Edges()
	row := func(label string, triangles uint64, elapsed time.Duration, metrics map[string]int64) {
		if elapsed > 0 {
			metrics["stream.edges_per_sec"] = int64(float64(len(edges)) / elapsed.Seconds())
		}
		br.Runs = append(br.Runs, obs.RunReport{
			Schema:    obs.SchemaRun,
			Tool:      br.Tool,
			Timestamp: br.Timestamp,
			Env:       br.Env,
			Graph:     obs.GraphInfo{Source: d.Name, Vertices: int64(g.NumVertices()), Edges: g.NumEdges()},
			Algorithm: label,
			Workers:   1,
			Triangles: triangles,
			ElapsedNS: elapsed.Nanoseconds(),
			Metrics:   metrics,
		})
	}

	hubs := topDegreeHubs(g, core.Options{}.EffectiveHubCount(g.NumVertices()))
	if sc, err := core.NewStreaming(g.NumVertices(), hubs); err == nil {
		sc.CountNonHub = true
		start := time.Now()
		for _, e := range edges {
			sc.AddEdge(e.U, e.V)
		}
		elapsed := time.Since(start)
		hhh, hhn, hnn, nnn := sc.Classes()
		row("stream-ingest/exact", hhh+hhn+hnn+nnn, elapsed,
			map[string]int64{"stream.memory_bytes": sc.MemoryBytes()})
	} else {
		// The counter refused this dataset's shape: record the skip
		// explicitly instead of silently dropping the row, so a BENCH
		// diff shows "skipped" rather than a vanished series.
		br.Runs = append(br.Runs, obs.RunReport{
			Schema:    obs.SchemaRun,
			Tool:      br.Tool,
			Timestamp: br.Timestamp,
			Env:       br.Env,
			Graph:     obs.GraphInfo{Source: d.Name, Vertices: int64(g.NumVertices()), Edges: g.NumEdges()},
			Algorithm: "stream-ingest/exact",
			Skipped:   err.Error(),
		})
	}

	const budget = 1 << 20
	tr := approx.NewTriest(approx.ReservoirForBudget(budget), 42)
	start := time.Now()
	for _, e := range edges {
		tr.AddEdge(e.U, e.V)
	}
	elapsed := time.Since(start)
	row("stream-ingest/approx", uint64(tr.Estimate()), elapsed, map[string]int64{
		"stream.memory_bytes": tr.MemoryBytes(),
		"stream.error_bound":  int64(tr.ErrorBound(0.95)),
	})
}

// topDegreeHubs picks the k highest-degree vertex IDs — the hub
// choice the streaming counter's H2H bit matrix is designed around.
func topDegreeHubs(g *graph.Graph, k int) []uint32 {
	deg := g.Degrees()
	ids := make([]uint32, len(deg))
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if deg[ids[a]] != deg[ids[b]] {
			return deg[ids[a]] > deg[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
