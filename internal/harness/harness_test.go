package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinySuite keeps harness smoke tests fast.
func tinySuite() Suite { return Suite{Scale: 9, EdgeFactor: 8} }

func TestDatasetsBuildAndValidate(t *testing.T) {
	s := tinySuite()
	names := map[string]bool{}
	for _, d := range s.Datasets() {
		if names[d.Name] {
			t.Fatalf("duplicate dataset name %s", d.Name)
		}
		names[d.Name] = true
		g := d.Build()
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", d.Name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if d.Kind != "SN" && d.Kind != "WG" && d.Kind != "FLAT" {
			t.Fatalf("%s: unknown kind %q", d.Name, d.Kind)
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	s := tinySuite()
	a := s.Datasets()[0].Build()
	b := s.Datasets()[0].Build()
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("dataset not deterministic")
	}
}

func TestFlatDatasetIsFlatter(t *testing.T) {
	s := Suite{Scale: 11, EdgeFactor: 8}
	var skewGini, flatGini float64
	for _, d := range s.Datasets() {
		g := d.Build()
		switch d.Name {
		case "rmat-sn":
			skewGini = g.GiniOfDegrees()
		case "cl-flat":
			flatGini = g.GiniOfDegrees()
		}
	}
	if flatGini >= skewGini {
		t.Fatalf("cl-flat Gini %.3f >= rmat-sn %.3f; flat regime not reproduced", flatGini, skewGini)
	}
}

// runExperiment executes one registry entry and returns its output.
func runExperiment(t *testing.T, id string) string {
	t.Helper()
	e := Find(id)
	if e == nil {
		t.Fatalf("experiment %s not registered", id)
	}
	var buf bytes.Buffer
	e.Run(&buf, tinySuite(), 2)
	out := buf.String()
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("%s reported a count mismatch:\n%s", id, out)
	}
	if len(out) < 40 {
		t.Fatalf("%s produced no meaningful output:\n%s", id, out)
	}
	return out
}

func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) { runExperiment(t, id) })
	}
}

func TestTable5ReportsAllAlgorithms(t *testing.T) {
	out := runExperiment(t, "table5")
	for _, name := range []string{"BBTC", "GGrnd", "GAP", "GBBS", "Lotus"} {
		if !strings.Contains(out, name) {
			t.Errorf("table5 output missing %s", name)
		}
	}
	if !strings.Contains(out, "Fig 1") {
		t.Error("table5 output missing Fig 1 rates")
	}
}

func TestFig4ReportsBothKernels(t *testing.T) {
	out := runExperiment(t, "fig4")
	if !strings.Contains(out, "forward") || !strings.Contains(out, "lotus") {
		t.Fatalf("fig4 output missing kernels:\n%s", out)
	}
	if !strings.Contains(out, "Average reduction") {
		t.Fatal("fig4 output missing summary")
	}
}

func TestFindAndIDs(t *testing.T) {
	if Find("nope") != nil {
		t.Fatal("Find returned ghost experiment")
	}
	ids := IDs()
	if len(ids) < 12 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, want := range []string{"table1", "table5", "table7", "table8", "table9",
		"fig4", "fig6", "fig7", "fig8", "fig9"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
}

func TestExperimentsCitePaperBaselines(t *testing.T) {
	// Every table/figure reproduction must print the paper's reported
	// numbers next to the measured ones, so the output is
	// self-contained for comparison (EXPERIMENTS.md is built from it).
	for _, id := range []string{"table1", "table5", "table7", "table8", "table9",
		"fig4", "fig6", "fig7", "fig8", "fig9"} {
		out := runExperiment(t, id)
		if !strings.Contains(out, "paper") {
			t.Errorf("%s output does not cite the paper's numbers", id)
		}
	}
}

func TestExperimentDescriptionsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if e.Description == "" {
			t.Errorf("%s has no description", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run in -short mode")
	}
	var buf bytes.Buffer
	RunAll(&buf, Suite{Scale: 8, EdgeFactor: 6}, 2)
	out := buf.String()
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("RunAll reported mismatch:\n%s", out)
	}
	for _, hdr := range []string{"Table 1", "Table 5", "Table 7", "Table 8", "Table 9",
		"Fig 4", "Fig 6", "Fig 7", "Fig 8", "Fig 9", "Ablation"} {
		if !strings.Contains(out, hdr) {
			t.Errorf("RunAll output missing section %q", hdr)
		}
	}
}
