package harness

import (
	"fmt"
	"io"
	"time"

	"lotustc/internal/baseline"
	"lotustc/internal/core"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
	"lotustc/internal/stats"
)

// RunTable1 reproduces Table 1: topological characteristics with the
// top 1% of vertices selected as hubs.
func RunTable1(w io.Writer, s Suite) {
	fmt.Fprintln(w, "=== Table 1: topological characteristics of hubs (1% of vertices) ===")
	fmt.Fprintf(w, "%-12s %8s %8s %8s %8s %9s %10s %10s\n",
		"dataset", "H2H%", "H2N%", "HubE%", "NonHubE%", "HubTri%", "RelDens", "Fruitless%")
	var avg stats.Table1
	ds := s.Datasets()
	for _, d := range ds {
		g := d.Build()
		t1 := stats.ComputeTable1(g, 0.01)
		fmt.Fprintf(w, "%-12s %8.1f %8.1f %8.1f %8.1f %9.1f %10.0f %10.1f\n",
			d.Name, t1.HubToHubPct, t1.HubToNonHubPct, t1.TotalHubPct,
			t1.NonHubPct, t1.HubTrianglePct, t1.RelativeDensity, t1.FruitlessSearchPct)
		avg.HubToHubPct += t1.HubToHubPct
		avg.HubToNonHubPct += t1.HubToNonHubPct
		avg.TotalHubPct += t1.TotalHubPct
		avg.NonHubPct += t1.NonHubPct
		avg.HubTrianglePct += t1.HubTrianglePct
		avg.RelativeDensity += t1.RelativeDensity
		avg.FruitlessSearchPct += t1.FruitlessSearchPct
	}
	k := float64(len(ds))
	fmt.Fprintf(w, "%-12s %8.1f %8.1f %8.1f %8.1f %9.1f %10.0f %10.1f\n",
		"Average", avg.HubToHubPct/k, avg.HubToNonHubPct/k, avg.TotalHubPct/k,
		avg.NonHubPct/k, avg.HubTrianglePct/k, avg.RelativeDensity/k, avg.FruitlessSearchPct/k)
	fmt.Fprintln(w, "(paper averages: H2H 18.1, H2N 54.8, HubE 72.9, NonHubE 27.1, HubTri 93.4, RelDens 1809, Fruitless 53.3)")
}

// algoRun is one end-to-end timed run.
type algoRun struct {
	Name      string
	Seconds   float64
	Triangles uint64
}

// runAllAlgorithms executes every Table 5 comparator end-to-end
// (preprocessing included) and LOTUS, returning the timings.
func runAllAlgorithms(g *graph.Graph, pool *sched.Pool) []algoRun {
	var runs []algoRun
	timeIt := func(name string, f func() uint64) {
		t0 := time.Now()
		tri := f()
		runs = append(runs, algoRun{Name: name, Seconds: time.Since(t0).Seconds(), Triangles: tri})
	}
	timeIt("BBTC", func() uint64 { return baseline.BBTC(g, pool, 0) })
	timeIt("GGrnd", func() uint64 { return baseline.EdgeIterator(g, pool) })
	timeIt("GAP", func() uint64 { return baseline.Forward(g, pool, baseline.KernelMerge) })
	timeIt("GBBS", func() uint64 { return baseline.GBBS(g, pool) })
	timeIt("Lotus", func() uint64 {
		lg := core.Preprocess(g, core.Options{Pool: pool})
		return lg.Count(pool).Total
	})
	return runs
}

// RunTable5 reproduces Tables 5/6 and Fig 1: end-to-end execution
// times for LOTUS vs the baselines, with per-dataset speedups, plus
// the Fig 1 average TC rate (edges/second, end-to-end).
func RunTable5(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintf(w, "=== Table 5: end-to-end TC execution times (seconds, %d workers) ===\n", pool.Workers())
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %12s\n",
		"dataset", "BBTC", "GGrnd", "GAP", "GBBS", "Lotus", "triangles")
	type agg struct {
		speedup float64
		rate    float64
		n       int
	}
	sums := map[string]*agg{}
	avgOf := func(a *agg, f func(*agg) float64) float64 {
		if a == nil || a.n == 0 {
			return 0 // empty suite: print a finite zero row
		}
		return f(a) / float64(a.n)
	}
	for _, d := range s.Datasets() {
		g := d.Build()
		runs := runAllAlgorithms(g, pool)
		lotus := runs[len(runs)-1]
		fmt.Fprintf(w, "%-12s", d.Name)
		for _, r := range runs {
			fmt.Fprintf(w, " %10.3f", r.Seconds)
			if r.Triangles != lotus.Triangles {
				fmt.Fprintf(w, "(COUNT MISMATCH %s=%d lotus=%d)", r.Name, r.Triangles, lotus.Triangles)
			}
			a := sums[r.Name]
			if a == nil {
				a = &agg{}
				sums[r.Name] = a
			}
			// A sub-resolution run times as 0 s; safeDiv keeps one such
			// dataset from poisoning the whole average with NaN/Inf.
			a.speedup += safeDiv(r.Seconds, lotus.Seconds)
			a.rate += safeDiv(float64(g.NumEdges()), r.Seconds)
			a.n++
		}
		fmt.Fprintf(w, " %12d\n", lotus.Triangles)
	}
	fmt.Fprintf(w, "%-12s", "Avg speedup")
	for _, name := range []string{"BBTC", "GGrnd", "GAP", "GBBS", "Lotus"} {
		fmt.Fprintf(w, " %9.2fx", avgOf(sums[name], func(a *agg) float64 { return a.speedup }))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "(paper averages: Lotus 19.3x vs BBTC, 5.5x vs GraphGrind, 3.8x vs GAP, 2.2x vs GBBS)")
	fmt.Fprintln(w, "\n=== Fig 1: average end-to-end TC rate (edges/second) ===")
	for _, name := range []string{"BBTC", "GGrnd", "GAP", "GBBS", "Lotus"} {
		fmt.Fprintf(w, "%-8s %14.0f\n", name, avgOf(sums[name], func(a *agg) float64 { return a.rate }))
	}
}

// RunTable7 reproduces Table 7: topology data sizes, CSX vs LOTUS.
func RunTable7(w io.Writer, s Suite) {
	fmt.Fprintln(w, "=== Table 7: size of topology data ===")
	fmt.Fprintf(w, "%-12s %14s %14s %14s %9s\n",
		"dataset", "CSX edges (B)", "CSX (B)", "Lotus (B)", "growth%")
	pool := s.NewPool(0)
	var growth float64
	ds := s.Datasets()
	for _, d := range ds {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		t7 := stats.ComputeTable7(g, lg)
		fmt.Fprintf(w, "%-12s %14d %14d %14d %9.1f\n",
			d.Name, t7.CSXEdgesBytes, t7.CSXBytes, t7.LotusBytes, t7.GrowthPct)
		growth += t7.GrowthPct
	}
	fmt.Fprintf(w, "%-12s %14s %14s %14s %9.1f\n", "Average", "", "", "", growth/float64(len(ds)))
	fmt.Fprintln(w, "(paper average: -4.1% — LOTUS shrinks topology when hubs carry many edges)")
}

// paperHubCount mirrors the paper's fixed 64K hubs, which on its
// smallest datasets is a generous ~1-12% of |V|: min(2^16, |V|/8).
// Table 8 and Fig 9 study the H2H array itself, whose density and
// sparsity pattern depend on this hubs-to-graph ratio.
func paperHubCount(n int) int {
	h := n / 8
	if h > core.DefaultHubCount {
		h = core.DefaultHubCount
	}
	return h
}

// RunTable8 reproduces Table 8: H2H bit array density and zero
// 64-byte cachelines.
func RunTable8(w io.Writer, s Suite) {
	fmt.Fprintln(w, "=== Table 8: Lotus H2H bit array characteristics ===")
	fmt.Fprintf(w, "%-12s %12s %18s\n", "dataset", "density%", "zero cachelines%")
	pool := s.NewPool(0)
	for _, d := range s.Datasets() {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool, HubCount: paperHubCount(g.NumVertices())})
		t8 := stats.ComputeTable8(lg)
		fmt.Fprintf(w, "%-12s %12.2f %18.2f\n", d.Name, t8.DensityPct, t8.ZeroCachelinePct)
	}
	fmt.Fprintln(w, "(paper: density 0.15-15.3%; zero lines 75-95% web graphs, 5-62% social networks)")
}

// simulateSchedule list-schedules the tile work sequence onto the
// given number of workers (dynamic self-scheduling: each idle worker
// takes the next tile) and returns the makespan and the mean idle
// fraction. This reproduces the Table 9 measurement independent of
// the host's physical core count.
func simulateSchedule(work []uint64, workers int) (makespan uint64, idle float64) {
	if len(work) == 0 || workers <= 0 {
		return 0, 0
	}
	busy := make([]uint64, workers)
	var total uint64
	for _, wk := range work {
		// Next tile goes to the earliest-finishing worker.
		minI := 0
		for i := 1; i < workers; i++ {
			if busy[i] < busy[minI] {
				minI = i
			}
		}
		busy[minI] += wk
		total += wk
	}
	for _, b := range busy {
		if b > makespan {
			makespan = b
		}
	}
	if makespan == 0 {
		// All-zero work items: every worker is nominally always idle,
		// but emitting 0 (not NaN from 0/0) keeps downstream averages
		// finite.
		return 0, 0
	}
	idle = 1 - float64(total)/(float64(makespan)*float64(workers))
	if idle < 0 {
		idle = 0 // float round-off on exactly balanced schedules
	}
	return makespan, idle
}

// safeDiv returns a/b, or 0 when b is 0 — table aggregation must stay
// finite even when a run is faster than the clock resolution.
func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// edgeBalancedChunkWork reproduces the [67]/[79] policy Table 9
// compares against: the HE edge array is split into `parts`
// contiguous chunks of equal edge count, and each chunk's pair work
// (H2H probes) is summed. A chunk that lands on the tail of a
// high-degree vertex's neighbour list carries quadratically more
// work — the imbalance the paper measures.
func edgeBalancedChunkWork(lg *core.LotusGraph, parts int) []uint64 {
	total := lg.HE.NumEdges()
	if total == 0 || parts <= 0 {
		return nil
	}
	per := (total + int64(parts) - 1) / int64(parts)
	work := make([]uint64, parts)
	off := lg.HE.Offsets()
	n := lg.NumVertices()
	for v := 0; v < n; v++ {
		d := int(off[v+1] - off[v])
		for i := 0; i < d; i++ {
			chunk := (off[v] + int64(i)) / per
			// Pair work of the h1 at index i is i comparisons.
			work[chunk] += uint64(i)
		}
	}
	return work
}

// RunTable9 reproduces Table 9 and the §5.8 claim: phase-1 load
// balance under edge-balanced partitioning (256 x threads equal-edge
// chunks, as the paper describes) vs squared edge tiling. Idle time
// is computed by list-scheduling the actual per-tile work onto the
// paper's 32 threads (wall-clock idle is meaningless when the host
// has fewer cores); the projected phase-1 speedup is the ratio of
// simulated makespans.
func RunTable9(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	const simThreads = 32 // the paper's SkyLakeX thread count
	fmt.Fprintf(w, "=== Table 9: phase-1 idle time, simulated at %d threads ===\n", simThreads)
	// The imbalance of equal-edge-count chunks appears when one chunk
	// covers a large slice of a hub's neighbour list, i.e. when
	// edges-per-chunk is not tiny relative to the max degree. The
	// paper's graphs have billions of edges, so even its 256x-threads
	// decomposition leaves such chunks; at laptop scale we report the
	// matched decomposition (2 x threads tiles per unit, like squared
	// tiling) alongside the paper's 256 x threads.
	fmt.Fprintf(w, "%-12s %14s %14s %14s %10s %14s\n",
		"dataset", "eb@2T idle%", "eb@256T idle%", "sq-til idle%", "sq tiles", "proj. speedup")
	thr := DefaultTileThresholdForSuite(s)
	for _, d := range s.Datasets() {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		// Verify the squared-tiling path still counts correctly.
		ref := lg.CountWithOptions(pool, core.CountOptions{TileThreshold: 1 << 30})
		sqRes := lg.CountWithOptions(pool, core.CountOptions{Partitioner: core.SquaredEdgeTiling, TileThreshold: thr, TilesPerVertex: 2 * simThreads})
		if ref.Total != sqRes.Total {
			fmt.Fprintf(w, "%-12s COUNT MISMATCH\n", d.Name)
			continue
		}
		ebCoarse := edgeBalancedChunkWork(lg, 2*simThreads)
		ebFine := edgeBalancedChunkWork(lg, 256*simThreads)
		sqWork := lg.Phase1TileWork(core.CountOptions{Partitioner: core.SquaredEdgeTiling, TileThreshold: thr, TilesPerVertex: 2 * simThreads}, simThreads)
		ebCSpan, ebCIdle := simulateSchedule(ebCoarse, simThreads)
		_, ebFIdle := simulateSchedule(ebFine, simThreads)
		sqSpan, sqIdle := simulateSchedule(sqWork, simThreads)
		speedup := 0.0
		if sqSpan > 0 {
			speedup = float64(ebCSpan) / float64(sqSpan)
		}
		fmt.Fprintf(w, "%-12s %14.1f %14.1f %14.1f %10d %13.2fx\n",
			d.Name, 100*ebCIdle, 100*ebFIdle, 100*sqIdle, len(sqWork), speedup)
	}
	fmt.Fprintln(w, "(paper [32 cores]: edge-balanced 13.6-83.3% idle vs squared tiling 0.7-3.3%; 2.7x phase-1 speedup)")
}

// DefaultTileThresholdForSuite scales the paper's 512 tiling cutoff
// down with the suite so that small graphs still exercise tiling.
func DefaultTileThresholdForSuite(s Suite) int {
	if s.Scale >= 20 {
		return core.DefaultTileThreshold
	}
	return 64
}
