package harness

import (
	"fmt"
	"io"
	"time"

	"lotustc/internal/approx"
	"lotustc/internal/baseline"
	"lotustc/internal/core"
	"lotustc/internal/kclique"
	"lotustc/internal/obs"
	"lotustc/internal/reorder"
)

// hashH2H is the §5.7 strawman: hub-to-hub adjacency in a hash set
// keyed by the packed (h1,h2) pair instead of the dense triangular
// bit array.
type hashH2H map[uint64]struct{}

func packPair(h1, h2 uint32) uint64 {
	if h1 < h2 {
		h1, h2 = h2, h1
	}
	return uint64(h1)<<32 | uint64(h2)
}

func buildHashH2H(lg *core.LotusGraph) hashH2H {
	h := make(hashH2H)
	for v := uint32(0); v < lg.HubCount && int(v) < lg.NumVertices(); v++ {
		for _, u := range lg.HE.Neighbors(v) {
			h[packPair(v, uint32(u))] = struct{}{}
		}
	}
	return h
}

// phase1WithHash counts HHH+HHN probing the hash set.
func phase1WithHash(lg *core.LotusGraph, h hashH2H) uint64 {
	var triangles uint64
	n := lg.NumVertices()
	for v := 0; v < n; v++ {
		nv := lg.HE.Neighbors(uint32(v))
		for i := 1; i < len(nv); i++ {
			for j := 0; j < i; j++ {
				if _, ok := h[packPair(uint32(nv[i]), uint32(nv[j]))]; ok {
					triangles++
				}
			}
		}
	}
	return triangles
}

// phase1WithBits is the serial bit-array phase 1 for a like-for-like
// single-thread comparison.
func phase1WithBits(lg *core.LotusGraph) uint64 {
	var triangles uint64
	n := lg.NumVertices()
	for v := 0; v < n; v++ {
		nv := lg.HE.Neighbors(uint32(v))
		for i := 1; i < len(nv); i++ {
			row := lg.H2H.Row(uint32(nv[i]))
			for j := 0; j < i; j++ {
				if row.IsSet(uint32(nv[j])) {
					triangles++
				}
			}
		}
	}
	return triangles
}

// RunAblationH2H compares the H2H bit array against a hash-set
// representation for phase 1 (§5.7's argument for the bit array).
func RunAblationH2H(w io.Writer, s Suite) {
	fmt.Fprintln(w, "=== Ablation: H2H bit array vs hash set (phase 1, single thread) ===")
	fmt.Fprintf(w, "%-12s %12s %12s %10s %14s %14s\n",
		"dataset", "bitarray(s)", "hash(s)", "speedup", "bits bytes", "hash entries")
	pool := s.NewPool(0)
	for _, d := range s.Datasets() {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		h := buildHashH2H(lg)

		t0 := time.Now()
		a := phase1WithBits(lg)
		bitS := time.Since(t0).Seconds()
		t1 := time.Now()
		b := phase1WithHash(lg, h)
		hashS := time.Since(t1).Seconds()
		if a != b {
			fmt.Fprintf(w, "%-12s COUNT MISMATCH %d vs %d\n", d.Name, a, b)
			continue
		}
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %9.2fx %14d %14d\n",
			d.Name, bitS, hashS, hashS/bitS, lg.H2H.SizeBytes(), len(h))
	}
	fmt.Fprintln(w, "(paper §5.7: hashing imposes more instructions per access and more memory; bit array wins)")
}

// RunAblationIntersect compares the intersection kernels inside the
// Forward algorithm (§6.3 design space; LOTUS picks merge join for
// the short non-hub lists).
func RunAblationIntersect(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Ablation: intersection kernels in the Forward algorithm ===")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "dataset", "merge", "binary", "hash", "galloping")
	kernels := []baseline.Kernel{baseline.KernelMerge, baseline.KernelBinary, baseline.KernelHash, baseline.KernelGalloping}
	for _, d := range s.Datasets() {
		g := d.Build()
		fmt.Fprintf(w, "%-12s", d.Name)
		var counts []uint64
		for _, k := range kernels {
			t0 := time.Now()
			c := baseline.Forward(g, pool, k)
			fmt.Fprintf(w, " %10.3f", time.Since(t0).Seconds())
			counts = append(counts, c)
		}
		for _, c := range counts[1:] {
			if c != counts[0] {
				fmt.Fprintf(w, " COUNT MISMATCH")
				break
			}
		}
		fmt.Fprintln(w)
	}
}

// RunAblationRelabel compares LOTUS's relabeling (§4.3.1: hubs +
// top-10% first, original order preserved elsewhere) against full
// degree ordering, which destroys the graph's initial locality.
func RunAblationRelabel(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Ablation: Lotus relabeling vs full degree ordering ===")
	fmt.Fprintf(w, "%-12s %14s %14s %14s %14s\n",
		"dataset", "lotus pre(s)", "lotus count(s)", "degord pre(s)", "degord count(s)")
	for _, d := range s.Datasets() {
		g := d.Build()
		// LOTUS relabeling.
		lg := core.Preprocess(g, core.Options{Pool: pool})
		r1 := lg.Count(pool)
		// Full degree ordering first, then LOTUS on the ordered
		// graph: the front block is already ordered, so the combined
		// permutation equals full degree ordering.
		t0 := time.Now()
		gd := g.Relabel(reorder.DegreeOrder(g))
		lgd := core.Preprocess(gd, core.Options{Pool: pool})
		pre2 := time.Since(t0)
		r2 := lgd.Count(pool)
		if r1.Total != r2.Total {
			fmt.Fprintf(w, "%-12s COUNT MISMATCH\n", d.Name)
			continue
		}
		c1 := r1.Phase1Time + r1.HNNTime + r1.NNNTime
		c2 := r2.Phase1Time + r2.HNNTime + r2.NNNTime
		fmt.Fprintf(w, "%-12s %14.3f %14.3f %14.3f %14.3f\n",
			d.Name, lg.PreprocessTime.Seconds(), c1.Seconds(), pre2.Seconds(), c2.Seconds())
	}
	fmt.Fprintln(w, "(§4.3.1: preserving original order for non-hubs keeps the graph's initial locality)")
}

// RunAblationFused compares the split HNN/NNN loops (LOTUS, §4.5)
// against the fused single-traversal alternative.
func RunAblationFused(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Ablation: split vs fused HNN/NNN loops ===")
	fmt.Fprintf(w, "%-12s %12s %12s %10s\n", "dataset", "split(s)", "fused(s)", "fused/split")
	for _, d := range s.Datasets() {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		split := lg.CountWithOptions(pool, core.CountOptions{})
		fused := lg.CountWithOptions(pool, core.CountOptions{FuseHNNAndNNN: true})
		if split.Total != fused.Total {
			fmt.Fprintf(w, "%-12s COUNT MISMATCH\n", d.Name)
			continue
		}
		ts := (split.HNNTime + split.NNNTime).Seconds()
		tf := (fused.HNNTime + fused.NNNTime).Seconds()
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %10.2f\n", d.Name, ts, tf, tf/ts)
	}
	fmt.Fprintln(w, "(§4.5: fusing enlarges the randomly-accessed working set; LOTUS keeps the loops split)")
}

// RunBaselinesClassic times the §6.1 classic algorithms LOTUS
// descends from, next to Forward and LOTUS, on each dataset.
func RunBaselinesClassic(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Classic algorithms (§6.1 lineage) vs Forward and Lotus ===")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s\n",
		"dataset", "nvl", "ni-core", "ayz", "forward", "lotus")
	for _, d := range s.Datasets() {
		g := d.Build()
		type runT struct {
			name string
			f    func() uint64
		}
		runs := []runT{
			{"nvl", func() uint64 { return baseline.NewVertexListing(g, pool) }},
			{"ni-core", func() uint64 { return baseline.NodeIteratorCore(g, pool) }},
			{"ayz", func() uint64 { return baseline.AYZ(g, pool, 0) }},
			{"forward", func() uint64 { return baseline.Forward(g, pool, baseline.KernelMerge) }},
			{"lotus", func() uint64 { return core.Preprocess(g, core.Options{Pool: pool}).Count(pool).Total }},
		}
		fmt.Fprintf(w, "%-12s", d.Name)
		var first uint64
		bad := false
		for i, r := range runs {
			t0 := time.Now()
			c := r.f()
			fmt.Fprintf(w, " %10.3f", time.Since(t0).Seconds())
			if i == 0 {
				first = c
			} else if c != first {
				bad = true
			}
		}
		if bad {
			fmt.Fprintf(w, " COUNT MISMATCH")
		}
		fmt.Fprintln(w)
	}
}

// RunAblationPreprocess compares the two Algorithm 2 implementations:
// Preprocess (relabel the whole graph once, then split rows with
// binary searches) vs PreprocessDirect (per-edge on-the-fly
// relabeling, literal Alg 2). Fig 6's preprocessing-share claim
// depends on this constant factor.
func RunAblationPreprocess(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Ablation: Preprocess (materialize+split) vs PreprocessDirect (literal Alg 2) ===")
	fmt.Fprintf(w, "%-12s %16s %16s %10s\n", "dataset", "materialize(s)", "direct(s)", "ratio")
	for _, d := range s.Datasets() {
		g := d.Build()
		lg1 := core.PreprocessMaterialize(g, core.Options{Pool: pool})
		lg2 := core.PreprocessDirect(g, core.Options{Pool: pool})
		c1 := lg1.Count(pool)
		c2 := lg2.Count(pool)
		if c1.Total != c2.Total {
			fmt.Fprintf(w, "%-12s COUNT MISMATCH\n", d.Name)
			continue
		}
		t1 := lg1.PreprocessTime.Seconds()
		t2 := lg2.PreprocessTime.Seconds()
		fmt.Fprintf(w, "%-12s %16.3f %16.3f %10.2f\n", d.Name, t1, t2, t2/t1)
	}
}

// RunExtensionKClique compares the generic ordered k-clique counter
// against the LOTUS-structured variant (§7 future work) for k=3..5.
func RunExtensionKClique(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Extension: k-clique counting, generic vs Lotus-structured ===")
	fmt.Fprintf(w, "%-12s %3s %14s %12s %12s %10s\n", "dataset", "k", "cliques", "generic(s)", "lotus(s)", "hub-share")
	for _, d := range s.Datasets() {
		g := d.Build()
		og := g.Orient()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		nonHub := lg.NonHubSubgraph().Orient()
		for k := 3; k <= 5; k++ {
			t0 := time.Now()
			generic := kclique.Count(og, k, pool)
			tg := time.Since(t0).Seconds()
			t1 := time.Now()
			lotus := kclique.CountLotus(lg, k, pool)
			tl := time.Since(t1).Seconds()
			if generic != lotus {
				fmt.Fprintf(w, "%-12s %3d COUNT MISMATCH generic=%d lotus=%d\n", d.Name, k, generic, lotus)
				continue
			}
			hubShare := 0.0
			if generic > 0 {
				noHub := kclique.Count(nonHub, k, pool)
				hubShare = 100 * float64(generic-noHub) / float64(generic)
			}
			fmt.Fprintf(w, "%-12s %3d %14d %12.3f %12.3f %9.1f%%\n",
				d.Name, k, generic, tg, tl, hubShare)
			// Clique counts grow combinatorially with k on dense hub
			// sub-graphs; cap the sweep once a level gets expensive
			// so one dataset cannot stall the whole harness.
			if tg+tl > 20 || generic > 2_000_000_000 {
				fmt.Fprintf(w, "%-12s %3d (skipped: k=%d already took %.0fs / %d cliques)\n",
					d.Name, k+1, k, tg+tl, generic)
				break
			}
		}
	}
	fmt.Fprintln(w, "(§7: the hub share of k-cliques grows with k on skewed graphs)")
}

// RunExtensionApprox compares approximate estimators at equal
// sampling probability: Doulion vs the §6.2 LOTUS hybrid (exact hub
// triangles + sampled NNN).
func RunExtensionApprox(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Extension: approximate TC, Doulion vs Lotus hybrid (p=0.3) ===")
	fmt.Fprintf(w, "%-12s %14s %14s %14s %12s %12s\n",
		"dataset", "truth", "doulion", "hybrid", "doulion err%", "hybrid err%")
	const p = 0.3
	for _, d := range s.Datasets() {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		truth := float64(lg.Count(pool).Total)
		if truth == 0 {
			continue
		}
		var errD, errH, lastD, lastH float64
		const runs = 3
		for seed := int64(0); seed < runs; seed++ {
			lastD = approx.Doulion(g, p, seed, pool)
			lastH = approx.Hybrid(g, p, seed, core.Options{Pool: pool}, pool).Estimate
			errD += abs(lastD-truth) / truth
			errH += abs(lastH-truth) / truth
		}
		fmt.Fprintf(w, "%-12s %14.0f %14.0f %14.0f %11.2f%% %11.2f%%\n",
			d.Name, truth, lastD, lastH, 100*errD/runs, 100*errH/runs)
	}
	fmt.Fprintln(w, "(§6.2: exact hub counting bounds sampling error by the NNN share)")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RunExtensionHNNBlocking evaluates the paper's second §7 bullet:
// blocking the HNN phase to confine its random HE-row accesses.
func RunExtensionHNNBlocking(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Extension: HNN blocking (§7) — HNN phase time by block count ===")
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n", "dataset", "unblocked", "4 blocks", "16 blocks", "64 blocks")
	for _, d := range s.Datasets() {
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		base := lg.CountWithOptions(pool, core.CountOptions{})
		fmt.Fprintf(w, "%-12s %12.3f", d.Name, base.HNNTime.Seconds())
		for _, blocks := range []int{4, 16, 64} {
			r := lg.CountWithOptions(pool, core.CountOptions{HNNBlocks: blocks})
			if r.Total != base.Total {
				fmt.Fprintf(w, " COUNT MISMATCH")
				break
			}
			fmt.Fprintf(w, " %12.3f", r.HNNTime.Seconds())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(blocking shrinks the random working set per pass but re-streams NHE; wins once HE exceeds cache)")
}

// RunAblationRecursive compares flat LOTUS against the recursive
// NHE-splitting extension (§5.5/§7).
func RunAblationRecursive(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Extension: flat Lotus vs recursive NHE splitting ===")
	fmt.Fprintf(w, "%-12s %12s %12s %8s %12s\n", "dataset", "flat(s)", "recursive(s)", "depth", "triangles")
	for _, d := range s.Datasets() {
		g := d.Build()
		t0 := time.Now()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		flat := lg.Count(pool)
		flatS := time.Since(t0).Seconds()
		t1 := time.Now()
		rec, err := core.CountRecursive(g, pool, core.RecursiveOptions{MaxDepth: 3})
		if err != nil {
			fmt.Fprintf(w, "%-12s RECURSIVE ERROR %v\n", d.Name, err)
			continue
		}
		recS := time.Since(t1).Seconds()
		if flat.Total != rec.Total {
			fmt.Fprintf(w, "%-12s COUNT MISMATCH flat=%d rec=%d\n", d.Name, flat.Total, rec.Total)
			continue
		}
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %8d %12d\n", d.Name, flatS, recS, rec.Depth, rec.Total)
	}
}

// RunAblationPhase1 compares the phase-1 kernels (scalar bit probes
// vs the word-parallel bitmap kernel, plus the per-row auto dispatch)
// on the suite's datasets. Counts must be bit-identical across
// kernels; the table reports phase-1 wall time and what the auto
// heuristic routed.
func RunAblationPhase1(w io.Writer, s Suite, workers int) {
	pool := s.NewPool(workers)
	fmt.Fprintln(w, "=== Ablation: phase-1 kernel, scalar probes vs word-parallel bitmap ===")
	fmt.Fprintf(w, "%-12s %12s %12s %12s %9s %11s %11s\n",
		"dataset", "scalar(s)", "word(s)", "auto(s)", "speedup", "auto-word", "auto-scalar")
	for _, d := range s.Datasets() {
		if s.Context().Err() != nil {
			return
		}
		g := d.Build()
		lg := core.Preprocess(g, core.Options{Pool: pool})
		var times [3]float64
		var results [3]*core.Result
		var autoMetrics *obs.Metrics
		for i, k := range []core.Phase1Kernel{core.Phase1Scalar, core.Phase1Word, core.Phase1Auto} {
			m := obs.New()
			r := lg.CountWithOptions(pool, core.CountOptions{Phase1Kernel: k, Metrics: m})
			times[i] = r.Phase1Time.Seconds()
			results[i] = r
			if k == core.Phase1Auto {
				autoMetrics = m
			}
		}
		for _, r := range results[1:] {
			if r.HHH != results[0].HHH || r.HHN != results[0].HHN {
				fmt.Fprintf(w, "%-12s COUNT MISMATCH %d/%d vs %d/%d\n",
					d.Name, r.HHH, r.HHN, results[0].HHH, results[0].HHN)
				return
			}
		}
		speedup := 0.0
		if times[1] > 0 {
			speedup = times[0] / times[1]
		}
		fmt.Fprintf(w, "%-12s %12.4f %12.4f %12.4f %8.2fx %11d %11d\n",
			d.Name, times[0], times[1], times[2], speedup,
			autoMetrics.Get(obs.Phase1RowsWord), autoMetrics.Get(obs.Phase1RowsScalar))
	}
	fmt.Fprintln(w, "(word kernel: per-worker hub bitmap, AND+popcount over row words — 64 scalar probes per op)")
}
