package cc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

var pool = sched.NewPool(4)

// sameComponents checks that two labelings induce the same partition.
func sameComponents(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	ab := map[uint32]uint32{}
	ba := map[uint32]uint32{}
	for i := range a {
		if x, ok := ab[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := ba[b[i]]; ok && x != a[i] {
			return false
		}
		ab[a[i]] = b[i]
		ba[b[i]] = a[i]
	}
	return true
}

func TestKnownStructures(t *testing.T) {
	cases := []struct {
		name       string
		g          *graph.Graph
		components int
	}{
		{"ring", gen.Ring(50), 1},
		{"path", gen.Path(50), 1},
		{"planted", gen.PlantedTriangles(7, 5), 12}, // 7 triangles + 5 isolated
		{"star", gen.Star(20), 1},
		{"empty", graph.FromEdges(nil, graph.BuildOptions{NumVertices: 4}), 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lp := LabelPropagation(c.g, pool)
			uf := UnionFind(c.g)
			if !sameComponents(lp, uf) {
				t.Fatal("LP and UF disagree")
			}
			if got := Summarize(lp).Components; got != c.components {
				t.Fatalf("components = %d, want %d", got, c.components)
			}
		})
	}
}

func TestLPMatchesUFProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		var edges []graph.Edge
		for i := 0; i < rng.Intn(2*n); i++ {
			edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
		return sameComponents(LabelPropagation(g, pool), UnionFind(g))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGiantComponentRMAT(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	s := Summarize(LabelPropagation(g, pool))
	if s.LargestShare < 0.5 {
		t.Fatalf("RMAT giant component share %.2f, want > 0.5", s.LargestShare)
	}
	if s.Components < 1 {
		t.Fatal("no components")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]uint32{0, 0, 0, 3, 4})
	if s.Components != 3 || s.LargestSize != 3 || s.Isolated != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.LargestShare != 0.6 {
		t.Fatalf("share = %v", s.LargestShare)
	}
	empty := Summarize(nil)
	if empty.Components != 0 || empty.LargestShare != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestLabelsAreMinVertexID(t *testing.T) {
	// Min-label propagation fixpoint: every vertex's label equals the
	// smallest vertex ID in its component.
	g := gen.PlantedTriangles(4, 2)
	labels := LabelPropagation(g, pool)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if labels[3*i+j] != uint32(3*i) {
				t.Fatalf("triangle %d vertex %d label %d", i, j, labels[3*i+j])
			}
		}
	}
}
