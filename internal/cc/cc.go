// Package cc computes connected components. The paper's group built
// Thrifty Label Propagation (§6.5) on the same hub observations LOTUS
// uses; this package provides a hub-seeded parallel label propagation
// in that spirit — the highest-degree vertex's component is planted
// with the smallest label so the giant component converges in very
// few rounds on power-law graphs — plus a sequential union-find
// oracle. The harness uses it to characterize generated datasets.
package cc

import (
	"sync/atomic"

	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

// LabelPropagation returns a component label per vertex (labels are
// the minimum vertex ID of the component after hub seeding) using
// synchronous parallel min-label propagation.
func LabelPropagation(g *graph.Graph, pool *sched.Pool) []uint32 {
	n := g.NumVertices()
	labels := make([]uint32, n)
	for v := range labels {
		labels[v] = uint32(v)
	}
	if n == 0 {
		return labels
	}
	// Zero-planting in the Thrifty spirit: propagate from the
	// highest-degree vertex first by one BFS-ish sweep, so the giant
	// component agrees on one label almost immediately.
	hub := uint32(0)
	for v := 1; v < n; v++ {
		if g.Degree(uint32(v)) > g.Degree(hub) {
			hub = uint32(v)
		}
	}
	seed := labels[hub]
	for _, u := range g.Neighbors(hub) {
		if seed < labels[u] {
			labels[u] = seed
		}
	}
	changed := int32(1)
	for changed != 0 {
		changed = 0
		pool.For(n, 0, func(_, start, end int) {
			local := int32(0)
			for v := start; v < end; v++ {
				min := labels[v]
				for _, u := range g.Neighbors(uint32(v)) {
					if lu := atomic.LoadUint32(&labels[u]); lu < min {
						min = lu
					}
				}
				if min < labels[v] {
					atomic.StoreUint32(&labels[v], min)
					local = 1
				}
			}
			if local != 0 {
				atomic.StoreInt32(&changed, 1)
			}
		})
	}
	// Normalize: label = min vertex ID in component. Min-label
	// propagation already guarantees this at fixpoint.
	return labels
}

// UnionFind returns component labels via sequential union-find — the
// oracle the label propagation is tested against.
func UnionFind(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	parent := make([]uint32, n)
	for v := range parent {
		parent[v] = uint32(v)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			ru, rv := find(u), find(uint32(v))
			if ru == rv {
				continue
			}
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
	}
	labels := make([]uint32, n)
	for v := range labels {
		labels[v] = find(uint32(v))
	}
	return labels
}

// Summary describes the component structure of a graph.
type Summary struct {
	Components   int
	LargestSize  int
	LargestShare float64
	Isolated     int
}

// Summarize reduces a label array to a Summary.
func Summarize(labels []uint32) Summary {
	sizes := map[uint32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	s := Summary{Components: len(sizes)}
	for _, sz := range sizes {
		if sz > s.LargestSize {
			s.LargestSize = sz
		}
		if sz == 1 {
			s.Isolated++
		}
	}
	if len(labels) > 0 {
		s.LargestShare = float64(s.LargestSize) / float64(len(labels))
	}
	return s
}
