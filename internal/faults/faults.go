// Package faults provides deliberate fault injection and the fault
// handling primitives the serving layer builds its robustness story
// on. Distributed triangle-counting systems treat fault tolerance as
// a first-class engineering concern next to raw speed; this package
// gives the repo a way to exercise failure paths on purpose instead
// of waiting for production to find them.
//
// The model is a registry of named fault points. Production code
// marks each interesting failure site with
//
//	if err := faults.Inject("wal.fsync"); err != nil { ... }
//
// which is a single atomic load when nothing is armed. Tests, the
// -faults flag and the /debug/faults endpoint arm points with a
// Policy — fail with probability p, fail the first n eligible calls,
// add latency, return transient or permanent errors — and the
// production error-handling paths (retries, degradation, typed HTTP
// errors) get driven for real.
//
// The package also owns the transient-vs-permanent error taxonomy
// (IsTransient) and the bounded exponential-backoff Retry helper in
// retry.go, so injection and handling agree on one classification.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is what an armed fault point does when it fires.
type Kind string

const (
	// KindError makes Inject return an *InjectedError.
	KindError Kind = "error"
	// KindLatency makes Inject sleep for Policy.Latency, then succeed.
	KindLatency Kind = "latency"
)

// Policy describes when and how an armed fault point fires.
type Policy struct {
	// Kind selects error injection or added latency (default error).
	Kind Kind `json:"kind"`
	// Prob is the firing probability per eligible evaluation; 0 means
	// always fire (the common test configuration).
	Prob float64 `json:"prob,omitempty"`
	// Count caps the total number of fires; 0 = unlimited.
	Count int64 `json:"count,omitempty"`
	// After skips the first N evaluations before the point becomes
	// eligible (fail the third fsync, not the first).
	After int64 `json:"after,omitempty"`
	// Latency is the injected delay for KindLatency.
	Latency time.Duration `json:"latency,omitempty"`
	// Permanent marks injected errors non-retryable; the default is
	// transient, which exercises the retry paths.
	Permanent bool `json:"permanent,omitempty"`
	// Seed makes probabilistic firing reproducible (0 = fixed default).
	Seed int64 `json:"seed,omitempty"`
}

// InjectedError is the typed error returned by a fired fault point.
// It classifies itself as transient or permanent so the production
// retry/degradation paths treat injected faults exactly like real
// ones.
type InjectedError struct {
	Point     string
	Permanent bool
}

func (e *InjectedError) Error() string {
	class := "transient"
	if e.Permanent {
		class = "permanent"
	}
	return fmt.Sprintf("faults: injected %s fault at %q", class, e.Point)
}

// Transient reports whether retrying could help; see IsTransient.
func (e *InjectedError) Transient() bool { return !e.Permanent }

// IsTransient classifies an error for the retry paths: anything
// implementing `Transient() bool` answers for itself (InjectedError
// does); everything else — real I/O errors, validation errors,
// context expiry — is permanent by default, because blind retries of
// unknown failures are how outages get longer.
func IsTransient(err error) bool {
	for e := err; e != nil; e = unwrap(e) {
		if t, ok := e.(interface{ Transient() bool }); ok {
			return t.Transient()
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// point is one named fault site with its armed policy and counters.
type point struct {
	name  string
	mu    sync.Mutex
	armed *Policy
	rng   *rand.Rand
	evals atomic.Int64 // Inject evaluations while armed
	fires atomic.Int64 // faults actually fired
}

// Registry holds fault points. The package-level functions operate on
// Default; independent registries exist for tests that must not share
// global state.
type Registry struct {
	mu       sync.Mutex
	points   map[string]*point
	numArmed atomic.Int64 // fast-path gate: 0 => Inject is a no-op
}

// Default is the process-wide registry used by the package-level
// functions and, through them, every production fault point.
var Default = NewRegistry()

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{points: map[string]*point{}}
}

// Register ensures a named point exists (idempotent). Production
// packages register their points at init so Points() can enumerate
// the full catalog before anything is armed.
func (r *Registry) Register(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.points[name]; !ok {
		r.points[name] = &point{name: name}
	}
}

func (r *Registry) get(name string) *point {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.points[name]
	if !ok {
		p = &point{name: name}
		r.points[name] = p
	}
	return p
}

// Arm attaches a policy to a point (registering it if needed). A
// second Arm replaces the first and resets the point's counters.
func (r *Registry) Arm(name string, pol Policy) error {
	if pol.Kind == "" {
		pol.Kind = KindError
	}
	switch pol.Kind {
	case KindError, KindLatency:
	default:
		return fmt.Errorf("faults: unknown kind %q (want error or latency)", pol.Kind)
	}
	if pol.Prob < 0 || pol.Prob > 1 {
		return fmt.Errorf("faults: probability %g out of [0, 1]", pol.Prob)
	}
	if pol.Kind == KindLatency && pol.Latency <= 0 {
		return fmt.Errorf("faults: latency policy needs a positive duration")
	}
	seed := pol.Seed
	if seed == 0 {
		seed = 1
	}
	p := r.get(name)
	p.mu.Lock()
	if p.armed == nil {
		r.numArmed.Add(1)
	}
	p.armed = &pol
	p.rng = rand.New(rand.NewSource(seed))
	p.evals.Store(0)
	p.fires.Store(0)
	p.mu.Unlock()
	return nil
}

// Disarm removes a point's policy; the point stays registered.
func (r *Registry) Disarm(name string) {
	r.mu.Lock()
	p, ok := r.points[name]
	r.mu.Unlock()
	if !ok {
		return
	}
	p.mu.Lock()
	if p.armed != nil {
		p.armed = nil
		r.numArmed.Add(-1)
	}
	p.mu.Unlock()
}

// Reset disarms every point and clears counters; registrations stay.
func (r *Registry) Reset() {
	r.mu.Lock()
	pts := make([]*point, 0, len(r.points))
	for _, p := range r.points {
		pts = append(pts, p)
	}
	r.mu.Unlock()
	for _, p := range pts {
		p.mu.Lock()
		if p.armed != nil {
			p.armed = nil
			r.numArmed.Add(-1)
		}
		p.evals.Store(0)
		p.fires.Store(0)
		p.mu.Unlock()
	}
}

// Inject evaluates the named point. It returns nil when the point is
// unarmed (the fast path: one atomic load for the whole registry),
// sleeps for latency policies, and returns an *InjectedError for
// error policies that fire.
func (r *Registry) Inject(name string) error {
	if r.numArmed.Load() == 0 {
		return nil
	}
	r.mu.Lock()
	p, ok := r.points[name]
	r.mu.Unlock()
	if !ok {
		return nil
	}
	p.mu.Lock()
	pol := p.armed
	if pol == nil {
		p.mu.Unlock()
		return nil
	}
	eval := p.evals.Add(1)
	if eval <= pol.After {
		p.mu.Unlock()
		return nil
	}
	if pol.Count > 0 && p.fires.Load() >= pol.Count {
		p.mu.Unlock()
		return nil
	}
	if pol.Prob > 0 && pol.Prob < 1 && p.rng.Float64() >= pol.Prob {
		p.mu.Unlock()
		return nil
	}
	p.fires.Add(1)
	lat := time.Duration(0)
	if pol.Kind == KindLatency {
		lat = pol.Latency
	}
	perm := pol.Permanent
	p.mu.Unlock()

	if lat > 0 {
		time.Sleep(lat)
		return nil
	}
	return &InjectedError{Point: name, Permanent: perm}
}

// PointStatus is the observable state of one fault point.
type PointStatus struct {
	Name   string  `json:"name"`
	Armed  *Policy `json:"armed,omitempty"`
	Evals  int64   `json:"evals"`
	Fires  int64   `json:"fires"`
}

// Points lists every registered point, sorted by name.
func (r *Registry) Points() []PointStatus {
	r.mu.Lock()
	pts := make([]*point, 0, len(r.points))
	for _, p := range r.points {
		pts = append(pts, p)
	}
	r.mu.Unlock()
	out := make([]PointStatus, 0, len(pts))
	for _, p := range pts {
		p.mu.Lock()
		st := PointStatus{Name: p.name, Evals: p.evals.Load(), Fires: p.fires.Load()}
		if p.armed != nil {
			cp := *p.armed
			st.Armed = &cp
		}
		p.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Configure arms points from a flag-style spec:
//
//	point:kind[:key=val,...][;point:kind...]
//
// e.g. "wal.fsync:error:p=0.5,count=3;serve.build:latency:d=50ms".
// Keys: p (probability), count, after, d (latency duration), seed,
// and the bare flag perm (permanent error).
func (r *Registry) Configure(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, ":", 3)
		if len(parts) < 2 {
			return fmt.Errorf("faults: entry %q: want point:kind[:params]", entry)
		}
		pol := Policy{Kind: Kind(parts[1])}
		if len(parts) == 3 {
			for _, kv := range strings.Split(parts[2], ",") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				key, val, hasVal := strings.Cut(kv, "=")
				var err error
				switch key {
				case "perm":
					pol.Permanent = true
				case "p":
					pol.Prob, err = strconv.ParseFloat(val, 64)
				case "count":
					pol.Count, err = strconv.ParseInt(val, 10, 64)
				case "after":
					pol.After, err = strconv.ParseInt(val, 10, 64)
				case "seed":
					pol.Seed, err = strconv.ParseInt(val, 10, 64)
				case "d":
					pol.Latency, err = time.ParseDuration(val)
				default:
					return fmt.Errorf("faults: entry %q: unknown param %q", entry, key)
				}
				if err != nil {
					return fmt.Errorf("faults: entry %q: param %q: %v", entry, kv, err)
				}
				if !hasVal && key != "perm" {
					return fmt.Errorf("faults: entry %q: param %q needs a value", entry, key)
				}
			}
		}
		if err := r.Arm(parts[0], pol); err != nil {
			return fmt.Errorf("faults: entry %q: %v", entry, err)
		}
	}
	return nil
}

// Package-level wrappers over Default.

// Register ensures a point exists in the default registry.
func Register(name string) { Default.Register(name) }

// Inject evaluates a point in the default registry.
func Inject(name string) error { return Default.Inject(name) }

// Arm attaches a policy in the default registry.
func Arm(name string, pol Policy) error { return Default.Arm(name, pol) }

// Disarm removes a policy in the default registry.
func Disarm(name string) { Default.Disarm(name) }

// Reset disarms everything in the default registry.
func Reset() { Default.Reset() }

// Points lists the default registry's points.
func Points() []PointStatus { return Default.Points() }

// Configure arms default-registry points from a flag spec.
func Configure(spec string) error { return Default.Configure(spec) }
