package faults

// Unit tests for the fault-point registry and the retry helper,
// written to run clean under -race: Inject is called concurrently
// with Arm/Disarm the way the serving layer and /debug/faults race
// in production.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestInjectUnarmedIsNil(t *testing.T) {
	r := NewRegistry()
	r.Register("a.b")
	if err := r.Inject("a.b"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if err := r.Inject("never.registered"); err != nil {
		t.Fatalf("unregistered point fired: %v", err)
	}
}

func TestErrorPolicyCountAndAfter(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("x", Policy{Kind: KindError, After: 2, Count: 3}); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 10; i++ {
		if err := r.Inject("x"); err != nil {
			fired++
			var inj *InjectedError
			if !errors.As(err, &inj) || inj.Point != "x" {
				t.Fatalf("wrong error type: %v", err)
			}
			if !IsTransient(err) {
				t.Fatalf("default injected error should be transient: %v", err)
			}
			if i < 2 {
				t.Fatalf("fired during the After window at eval %d", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (Count)", fired)
	}
}

func TestPermanentClassification(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("x", Policy{Kind: KindError, Permanent: true}); err != nil {
		t.Fatal(err)
	}
	err := r.Inject("x")
	if err == nil || IsTransient(err) {
		t.Fatalf("permanent injected error classified transient: %v", err)
	}
	// Wrapping must not hide the classification.
	wrapped := fmt.Errorf("outer: %w", &InjectedError{Point: "y"})
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient error classified permanent")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil error classified transient")
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("x", Policy{Kind: KindError, Prob: 0.5, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	fired := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if r.Inject("x") != nil {
			fired++
		}
	}
	if fired < n/3 || fired > 2*n/3 {
		t.Fatalf("p=0.5 fired %d/%d times", fired, n)
	}
}

func TestLatencyPolicySleepsAndSucceeds(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("x", Policy{Kind: KindLatency, Latency: 30 * time.Millisecond, Count: 1}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Inject("x"); err != nil {
		t.Fatalf("latency policy returned an error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency injection slept only %v", d)
	}
	// Count exhausted: no more sleeping.
	start = time.Now()
	_ = r.Inject("x")
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("exhausted latency policy still slept %v", d)
	}
}

func TestDisarmAndReset(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("x", Policy{}); err != nil {
		t.Fatal(err)
	}
	if r.Inject("x") == nil {
		t.Fatal("armed point did not fire")
	}
	r.Disarm("x")
	if err := r.Inject("x"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if err := r.Arm("x", Policy{}); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	if err := r.Inject("x"); err != nil {
		t.Fatalf("reset point fired: %v", err)
	}
	for _, st := range r.Points() {
		if st.Armed != nil {
			t.Fatalf("point %s still armed after Reset", st.Name)
		}
	}
}

func TestPointsCatalog(t *testing.T) {
	r := NewRegistry()
	r.Register("b")
	r.Register("a")
	if err := r.Arm("c", Policy{Kind: KindError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	_ = r.Inject("c")
	pts := r.Points()
	if len(pts) != 3 || pts[0].Name != "a" || pts[1].Name != "b" || pts[2].Name != "c" {
		t.Fatalf("catalog wrong: %+v", pts)
	}
	if pts[2].Fires != 1 || pts[2].Evals != 1 || pts[2].Armed == nil {
		t.Fatalf("counters wrong: %+v", pts[2])
	}
}

func TestConfigureSpec(t *testing.T) {
	r := NewRegistry()
	spec := "wal.fsync:error:p=0.5,count=3,seed=9; serve.build:latency:d=5ms ; x:error:perm,after=1"
	if err := r.Configure(spec); err != nil {
		t.Fatal(err)
	}
	byName := map[string]PointStatus{}
	for _, st := range r.Points() {
		byName[st.Name] = st
	}
	f := byName["wal.fsync"].Armed
	if f == nil || f.Prob != 0.5 || f.Count != 3 || f.Kind != KindError {
		t.Fatalf("wal.fsync policy wrong: %+v", f)
	}
	b := byName["serve.build"].Armed
	if b == nil || b.Kind != KindLatency || b.Latency != 5*time.Millisecond {
		t.Fatalf("serve.build policy wrong: %+v", b)
	}
	x := byName["x"].Armed
	if x == nil || !x.Permanent || x.After != 1 {
		t.Fatalf("x policy wrong: %+v", x)
	}

	for _, bad := range []string{
		"justapoint",
		"p:badkind",
		"p:error:p=nope",
		"p:error:unknown=1",
		"p:latency", // latency without duration
		"p:error:p=2",
		"p:error:count",
	} {
		if err := NewRegistry().Configure(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	// Empty and whitespace specs are fine.
	if err := NewRegistry().Configure(" ; "); err != nil {
		t.Fatal(err)
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	calls := 0
	retries := 0
	err := Retry(context.Background(), RetryPolicy{
		Attempts: 5, BaseDelay: time.Microsecond, JitterFrac: -1,
		OnRetry: func(int, error) { retries++ },
	}, func() error {
		calls++
		if calls < 3 {
			return &InjectedError{Point: "t"}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 and 2", calls, retries)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	calls := 0
	perm := errors.New("permanent failure")
	err := Retry(context.Background(), RetryPolicy{Attempts: 5, BaseDelay: time.Microsecond}, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) {
		t.Fatalf("lost the cause: %v", err)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls-1)
	}
}

func TestRetryExhaustionKeepsCause(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond}, func() error {
		calls++
		return &InjectedError{Point: "t"}
	})
	if calls != 3 {
		t.Fatalf("made %d attempts, want 3", calls)
	}
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("exhaustion lost the typed cause: %v", err)
	}
}

func TestRetryContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, RetryPolicy{Attempts: 10, BaseDelay: time.Hour}, func() error {
		return &InjectedError{Point: "t"}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled retry returned %v", err)
	}
}

func TestConcurrentInjectArmDisarm(t *testing.T) {
	r := NewRegistry()
	r.Register("hot")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Inject("hot")
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := r.Arm("hot", Policy{Kind: KindError, Prob: 0.5, Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		r.Disarm("hot")
		_ = r.Points()
	}
	close(stop)
	wg.Wait()
}
