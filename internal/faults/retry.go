package faults

import (
	"context"
	"fmt"
	mrand "math/rand/v2"
	"time"
)

// RetryPolicy bounds an exponential-backoff retry loop. The zero
// value is usable: 3 attempts, 1ms base delay doubling to a 100ms
// cap, with 50% jitter.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first.
	Attempts int
	// BaseDelay is the wait after the first failure; it doubles per
	// attempt up to MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterFrac randomizes each delay within ±(frac/2) of itself so
	// synchronized retry storms decorrelate. 0 means the default 0.5;
	// negative disables jitter (deterministic tests).
	JitterFrac float64
	// OnRetry, if set, observes each failed attempt that will be
	// retried (metrics hooks).
	OnRetry func(attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	}
	return p
}

// Retry runs op, retrying transient failures (see IsTransient) with
// bounded exponential backoff and jitter. Permanent errors, context
// expiry and attempt exhaustion stop the loop; the last error is
// returned wrapped with the attempt count (errors.Is/As still see
// the cause).
func Retry(ctx context.Context, p RetryPolicy, op func() error) error {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= p.Attempts {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		delay := p.BaseDelay << (attempt - 1)
		if delay > p.MaxDelay || delay <= 0 {
			delay = p.MaxDelay
		}
		if p.JitterFrac > 0 {
			span := float64(delay) * p.JitterFrac
			delay = time.Duration(float64(delay) - span/2 + span*mrand.Float64())
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("faults: retry interrupted after %d attempts: %w", attempt, ctx.Err())
		case <-timer.C:
		}
		if ctx.Err() != nil {
			return fmt.Errorf("faults: retry interrupted after %d attempts: %w", attempt, ctx.Err())
		}
	}
	if err != nil && !IsTransient(err) {
		return err // permanent: no retries happened for it, report verbatim
	}
	return fmt.Errorf("faults: gave up after %d attempts: %w", p.Attempts, err)
}
