// Package bitarray implements the H2H triangular bit array at the
// heart of LOTUS (§4.2): a dense, cache-resident adjacency structure
// for hub-to-hub edges. For hubs h1 > h2 >= 0, the bit with index
// h1*(h1-1)/2 + h2 records whether the edge (h1,h2) exists. The array
// is "h1-major", so the bits of consecutive h2 values for a fixed h1
// are contiguous — the property §4.4.1 exploits by reusing the
// h1*(h1-1)/2 base while scanning h2.
package bitarray

import (
	"math/bits"
	"sync/atomic"
)

// Tri is a triangular bit array over n hub IDs. It supports lock-free
// concurrent Set during parallel preprocessing and wait-free IsSet
// during counting.
type Tri struct {
	n     uint32
	words []uint64
}

// NewTri allocates a zeroed triangular array for n hubs, occupying
// n*(n-1)/2 bits as in Alg 2 line 3.
func NewTri(n uint32) *Tri {
	bits := uint64(n) * uint64(n-1) / 2
	if n == 0 {
		bits = 0
	}
	return &Tri{n: n, words: make([]uint64, (bits+63)/64)}
}

// N returns the number of hub IDs covered.
func (t *Tri) N() uint32 { return t.n }

// Bits returns the bit capacity n*(n-1)/2.
func (t *Tri) Bits() uint64 {
	if t.n == 0 {
		return 0
	}
	return uint64(t.n) * uint64(t.n-1) / 2
}

// SizeBytes returns the allocated backing size in bytes. For the
// paper's 64K hubs this is 256 MB (§4.2); scaled-down hub counts
// shrink it quadratically.
func (t *Tri) SizeBytes() int64 { return int64(len(t.words)) * 8 }

// Words exposes the backing word array for serialization. The slice
// aliases the array's storage.
func (t *Tri) Words() []uint64 { return t.words }

// index returns the bit index of the pair (h1, h2), h1 > h2.
func index(h1, h2 uint32) uint64 {
	return uint64(h1)*uint64(h1-1)/2 + uint64(h2)
}

// BitIndex exposes the h1-major bit index, used by the access
// profiler (Fig 9) to map probes onto cachelines.
func BitIndex(h1, h2 uint32) uint64 {
	if h1 < h2 {
		h1, h2 = h2, h1
	}
	return index(h1, h2)
}

// Set records the edge (h1, h2). Arguments may come in either order;
// h1 == h2 (a self pair) is ignored. Safe for concurrent use.
func (t *Tri) Set(h1, h2 uint32) {
	if h1 == h2 {
		return
	}
	if h1 < h2 {
		h1, h2 = h2, h1
	}
	i := index(h1, h2)
	w := &t.words[i>>6]
	mask := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// IsSet reports whether the edge (h1, h2) is present; the two-hub
// connectivity test of Alg 3 line 5. It is a plain load: counting
// never runs concurrently with preprocessing.
func (t *Tri) IsSet(h1, h2 uint32) bool {
	if h1 == h2 {
		return false
	}
	if h1 < h2 {
		h1, h2 = h2, h1
	}
	i := index(h1, h2)
	return t.words[i>>6]&(uint64(1)<<(i&63)) != 0
}

// Row returns, for a fixed h1, a RowProbe positioned at the start of
// h1's bit row, letting the inner loop of Alg 3 probe consecutive h2
// bits without recomputing the triangular base.
func (t *Tri) Row(h1 uint32) RowProbe {
	return RowProbe{words: t.words, base: uint64(h1) * uint64(h1-1) / 2, h1: h1}
}

// RowProbe is a cursor over one h1 row of a triangular array. It holds
// the backing words directly (not the array), so both the full Tri and
// the TriRows row-slice hand out the same probe type and the counting
// kernels stay agnostic about which storage a row came from.
type RowProbe struct {
	words []uint64
	base  uint64
	h1    uint32
}

// IsSet probes bit h2 of the row (h2 must be < h1).
func (r RowProbe) IsSet(h2 uint32) bool {
	i := r.base + uint64(h2)
	return r.words[i>>6]&(uint64(1)<<(i&63)) != 0
}

// NumWords returns the number of 64-bit words returned by Word: the
// row's h1 bits (h2 in [0, h1)) rounded up to whole words.
func (r RowProbe) NumWords() uint32 { return (r.h1 + 63) / 64 }

// Word returns the 64 row bits covering h2 in [64*w, 64*w+64),
// aligned to the h2 index space. The triangular array packs rows
// back-to-back with no word alignment, so the result is assembled
// from up to two backing words; bits at h2 >= h1 — which belong to
// neighbouring rows in the packed array — read as zero, giving the
// caller the "h2 < h1" mask of Alg 3 line 5 for free. This is the
// word-parallel counterpart of IsSet: one Word carries 64 probes.
func (r RowProbe) Word(w uint32) uint64 {
	rem := int64(r.h1) - int64(w)*64
	if rem <= 0 {
		return 0
	}
	start := r.base + uint64(w)*64
	i := int(start >> 6)
	sh := start & 63
	words := r.words
	x := words[i] >> sh
	// The guard covers the final partial word of the last row, whose
	// valid bits never spill into a (nonexistent) next backing word.
	if sh != 0 && i+1 < len(words) {
		x |= words[i+1] << (64 - sh)
	}
	if rem < 64 {
		x &= uint64(1)<<uint64(rem) - 1
	}
	return x
}

// AndCount returns the popcount of the row ANDed word-wise against
// bm, i.e. |{h2 < h1 : row bit h2 set and bm bit h2 set}| — the whole
// phase-1 inner loop for one h1 in NumWords() word operations. It is
// Word(w)&bm[w] summed, but streams the unaligned row through a
// single rolling shift register instead of re-assembling each word
// from scratch, which is what makes the word kernel's inner loop a
// handful of ALU ops per 64 probes. bm must have at least NumWords()
// words.
func (r RowProbe) AndCount(bm []uint64) uint64 {
	nw := int(r.h1+63) / 64
	if nw == 0 {
		return 0
	}
	bm = bm[:nw]
	words := r.words
	i := int(r.base >> 6)
	sh := r.base & 63
	var total int
	if sh == 0 {
		for w, m := range bm {
			x := words[i+w]
			if rem := r.h1 - uint32(w)*64; rem < 64 {
				x &= uint64(1)<<rem - 1
			}
			total += bits.OnesCount64(x & m)
		}
		return uint64(total)
	}
	cur := words[i]
	for w, m := range bm {
		x := cur >> sh
		i++
		// The final partial word of the packed array has no successor
		// to borrow high bits from; its valid bits are all in cur.
		if i < len(words) {
			cur = words[i]
			x |= cur << (64 - sh)
		}
		if rem := r.h1 - uint32(w)*64; rem < 64 {
			x &= uint64(1)<<rem - 1
		}
		total += bits.OnesCount64(x & m)
	}
	return uint64(total)
}

// PopCount returns the number of set bits (hub-to-hub edges).
func (t *Tri) PopCount() uint64 {
	var n uint64
	for _, w := range t.words {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// Density returns the fraction of set bits, Table 8 column 1.
func (t *Tri) Density() float64 {
	b := t.Bits()
	if b == 0 {
		return 0
	}
	return float64(t.PopCount()) / float64(b)
}

// ZeroCachelineFraction returns the fraction of 64-byte-aligned blocks
// of the array containing 512 zero bits, Table 8 column 2. Web graphs
// in the paper show 75-95% zero blocks (hubs cluster); social networks
// 5-62%.
func (t *Tri) ZeroCachelineFraction() float64 {
	const wordsPerLine = 8 // 64 bytes
	if len(t.words) == 0 {
		return 0
	}
	lines := (len(t.words) + wordsPerLine - 1) / wordsPerLine
	zero := 0
	for l := 0; l < lines; l++ {
		allZero := true
		for w := l * wordsPerLine; w < len(t.words) && w < (l+1)*wordsPerLine; w++ {
			if t.words[w] != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			zero++
		}
	}
	return float64(zero) / float64(lines)
}

// Cacheline returns the 64-byte cacheline index holding bit (h1,h2),
// used by the Fig 9 H2H access profiler.
func Cacheline(h1, h2 uint32) uint64 {
	return BitIndex(h1, h2) / 512 // 512 bits per 64-byte line
}

// NumCachelines returns the number of 64-byte lines backing the array.
func (t *Tri) NumCachelines() int {
	return (len(t.words) + 7) / 8
}
