package bitarray

import (
	"math/bits"
	"sync/atomic"
)

// TriRows is a horizontal slice of a triangular bit array: the rows
// h1 in [lo, hi), stored contiguously with the same h1-major packing
// as Tri but rebased so the slice allocates only its own rows'
// hi*(hi-1)/2 - lo*(lo-1)/2 bits. It backs the per-shard H2H
// structures of the sharded execution path: shard b holds exactly the
// H2H rows of its vertex range, and the full grid's slices together
// cover the same bits as the monolithic Tri.
//
// Like Tri it supports lock-free concurrent Set during preprocessing
// and wait-free probes during counting, and it hands out the same
// RowProbe cursor, so the phase-1 kernels (scalar and word-parallel)
// run unchanged against sliced storage.
type TriRows struct {
	lo, hi uint32
	words  []uint64
}

// rowBase returns the triangular bit index where row r starts. r == 0
// multiplies by zero, so the wrapped r-1 is harmless.
func rowBase(r uint32) uint64 {
	return uint64(r) * uint64(r-1) / 2
}

// NewTriRows allocates a zeroed slice holding rows [lo, hi) of a
// triangular array. lo > hi is treated as an empty slice.
func NewTriRows(lo, hi uint32) *TriRows {
	if hi < lo {
		hi = lo
	}
	nbits := rowBase(hi) - rowBase(lo)
	return &TriRows{lo: lo, hi: hi, words: make([]uint64, (nbits+63)/64)}
}

// Lo returns the first row held.
func (t *TriRows) Lo() uint32 { return t.lo }

// Hi returns one past the last row held.
func (t *TriRows) Hi() uint32 { return t.hi }

// Bits returns the bit capacity of the slice.
func (t *TriRows) Bits() uint64 { return rowBase(t.hi) - rowBase(t.lo) }

// SizeBytes returns the allocated backing size in bytes.
func (t *TriRows) SizeBytes() int64 { return int64(len(t.words)) * 8 }

// index returns the slice-local bit index of the pair (h1, h2),
// h1 > h2, lo <= h1 < hi.
func (t *TriRows) index(h1, h2 uint32) uint64 {
	return rowBase(h1) - rowBase(t.lo) + uint64(h2)
}

// Set records the edge (h1, h2) with h1 the row (lo <= h1 < hi) and
// h2 < h1 the column. Unlike Tri.Set the arguments are not
// order-normalized: the row must be the one this slice holds. Safe
// for concurrent use.
func (t *TriRows) Set(h1, h2 uint32) {
	i := t.index(h1, h2)
	w := &t.words[i>>6]
	mask := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// IsSet probes the edge (h1, h2), h1 the row, h2 < h1.
func (t *TriRows) IsSet(h1, h2 uint32) bool {
	i := t.index(h1, h2)
	return t.words[i>>6]&(uint64(1)<<(i&63)) != 0
}

// Row returns a RowProbe over row h1 (lo <= h1 < hi). The probe is
// indistinguishable from one handed out by a full Tri: Word and
// AndCount mask bits at h2 >= h1 to zero exactly as the monolithic
// packing does, because the slice keeps rows back-to-back with the
// same triangular row lengths.
func (t *TriRows) Row(h1 uint32) RowProbe {
	return RowProbe{words: t.words, base: rowBase(h1) - rowBase(t.lo), h1: h1}
}

// PopCount returns the number of set bits (this slice's hub-to-hub
// edges). The final backing word may carry no row bits, but unset
// padding is always zero.
func (t *TriRows) PopCount() uint64 {
	var n uint64
	for _, w := range t.words {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}
