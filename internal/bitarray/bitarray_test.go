package bitarray

import (
	"math/bits"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestTriBasic(t *testing.T) {
	tr := NewTri(8)
	if tr.Bits() != 28 {
		t.Fatalf("Bits = %d, want 28", tr.Bits())
	}
	tr.Set(5, 2)
	if !tr.IsSet(5, 2) || !tr.IsSet(2, 5) {
		t.Fatal("Set(5,2) not visible in both argument orders")
	}
	if tr.IsSet(5, 3) || tr.IsSet(2, 2) {
		t.Fatal("spurious bits set")
	}
	tr.Set(1, 0)
	if BitIndex(1, 0) != 0 {
		t.Fatalf("BitIndex(1,0) = %d, want 0", BitIndex(1, 0))
	}
	if !tr.IsSet(0, 1) {
		t.Fatal("bit 0 not set")
	}
}

func TestTriIndexFormula(t *testing.T) {
	// Paper: for h1 > h2 >= 0, index = h1(h1-1)/2 + h2.
	cases := []struct {
		h1, h2 uint32
		want   uint64
	}{
		{1, 0, 0}, {2, 0, 1}, {2, 1, 2}, {3, 0, 3}, {3, 2, 5}, {100, 7, 4957},
	}
	for _, c := range cases {
		if got := BitIndex(c.h1, c.h2); got != c.want {
			t.Errorf("BitIndex(%d,%d) = %d, want %d", c.h1, c.h2, got, c.want)
		}
	}
}

func TestTriAllPairsDistinct(t *testing.T) {
	// Every pair must map to a distinct bit and round-trip exactly.
	const n = 40
	tr := NewTri(n)
	for h1 := uint32(1); h1 < n; h1++ {
		for h2 := uint32(0); h2 < h1; h2++ {
			if tr.IsSet(h1, h2) {
				t.Fatalf("(%d,%d) set before Set — index collision", h1, h2)
			}
			tr.Set(h1, h2)
			if !tr.IsSet(h1, h2) {
				t.Fatalf("(%d,%d) lost", h1, h2)
			}
		}
	}
	if tr.PopCount() != uint64(n*(n-1)/2) {
		t.Fatalf("PopCount = %d, want %d", tr.PopCount(), n*(n-1)/2)
	}
	if tr.Density() != 1 {
		t.Fatalf("full array density = %v", tr.Density())
	}
}

func TestTriSelfPairIgnored(t *testing.T) {
	tr := NewTri(4)
	tr.Set(2, 2)
	if tr.PopCount() != 0 {
		t.Fatal("self pair set a bit")
	}
	if tr.IsSet(2, 2) {
		t.Fatal("IsSet(2,2) = true")
	}
}

func TestTriZeroAndOneHub(t *testing.T) {
	tr := NewTri(0)
	if tr.Bits() != 0 || tr.SizeBytes() != 0 {
		t.Fatal("empty array not empty")
	}
	tr1 := NewTri(1)
	if tr1.Bits() != 0 {
		t.Fatalf("one hub should have 0 bits, got %d", tr1.Bits())
	}
	if tr1.ZeroCachelineFraction() != 0 {
		t.Fatal("no cachelines -> fraction 0")
	}
}

func TestTriConcurrentSet(t *testing.T) {
	const n = 256
	tr := NewTri(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				h1 := uint32(rng.Intn(n))
				h2 := uint32(rng.Intn(n))
				tr.Set(h1, h2)
			}
		}(w)
	}
	wg.Wait()
	// Replay sequentially and compare.
	ref := NewTri(n)
	for w := 0; w < 8; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < 2000; i++ {
			h1 := uint32(rng.Intn(n))
			h2 := uint32(rng.Intn(n))
			ref.Set(h1, h2)
		}
	}
	if tr.PopCount() != ref.PopCount() {
		t.Fatalf("concurrent PopCount %d != sequential %d", tr.PopCount(), ref.PopCount())
	}
	for i := range tr.words {
		if tr.words[i] != ref.words[i] {
			t.Fatalf("word %d differs", i)
		}
	}
}

func TestRowProbeMatchesIsSet(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint32(2 + rng.Intn(100))
		tr := NewTri(n)
		for i := 0; i < 50; i++ {
			tr.Set(uint32(rng.Intn(int(n))), uint32(rng.Intn(int(n))))
		}
		for h1 := uint32(1); h1 < n; h1++ {
			row := tr.Row(h1)
			for h2 := uint32(0); h2 < h1; h2++ {
				if row.IsSet(h2) != tr.IsSet(h1, h2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCachelineFraction(t *testing.T) {
	// 64 hubs -> 2016 bits -> 32 words -> 4 cachelines.
	tr := NewTri(64)
	if tr.NumCachelines() != 4 {
		t.Fatalf("NumCachelines = %d, want 4", tr.NumCachelines())
	}
	if f := tr.ZeroCachelineFraction(); f != 1 {
		t.Fatalf("empty array zero fraction = %v, want 1", f)
	}
	tr.Set(1, 0) // touches line 0 only
	if f := tr.ZeroCachelineFraction(); f != 0.75 {
		t.Fatalf("zero fraction = %v, want 0.75", f)
	}
}

func TestCachelineMapping(t *testing.T) {
	if Cacheline(1, 0) != 0 {
		t.Fatal("bit 0 must be on line 0")
	}
	// Bit index 512 is the first bit of line 1. h1=32: base = 32*31/2 = 496;
	// 496+16 = 512 -> (32,16) on line 1.
	if Cacheline(32, 16) != 1 {
		t.Fatalf("Cacheline(32,16) = %d, want 1", Cacheline(32, 16))
	}
}

func TestSizeBytesPaperScale(t *testing.T) {
	// The paper's 64K hubs: 2^16 * (2^16 -1)/2 bits ≈ 2^31 bits = 256 MB.
	tr := NewTri(1 << 16)
	gb := tr.SizeBytes()
	if gb < 255<<20 || gb > 257<<20 {
		t.Fatalf("64K-hub H2H = %d bytes, want ~256 MB", gb)
	}
}

func BenchmarkTriSet(b *testing.B) {
	tr := NewTri(1 << 12)
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]uint32, 4096)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(rng.Intn(1 << 12)), uint32(rng.Intn(1 << 12))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&4095]
		tr.Set(p[0], p[1])
	}
}

func BenchmarkTriIsSet(b *testing.B) {
	tr := NewTri(1 << 12)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		tr.Set(uint32(rng.Intn(1<<12)), uint32(rng.Intn(1<<12)))
	}
	pairs := make([][2]uint32, 4096)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(rng.Intn(1 << 12)), uint32(rng.Intn(1 << 12))}
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		p := pairs[i&4095]
		sink = tr.IsSet(p[0], p[1])
	}
	_ = sink
}

// TestRowWordMatchesIsSet cross-checks the word-parallel row view
// against single-bit probes on randomly populated arrays of sizes
// straddling every word-alignment edge case (rows shorter than a
// word, rows crossing backing-word boundaries, the final partial
// word of the last row).
func TestRowWordMatchesIsSet(t *testing.T) {
	for _, n := range []uint32{0, 1, 2, 3, 5, 63, 64, 65, 127, 128, 129, 200, 513} {
		tr := NewTri(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for e := 0; e < int(n)*4; e++ {
			tr.Set(uint32(rng.Intn(int(n))), uint32(rng.Intn(int(n))))
		}
		for h1 := uint32(0); h1 < n; h1++ {
			row := tr.Row(h1)
			if got, want := row.NumWords(), (h1+63)/64; got != want {
				t.Fatalf("n=%d h1=%d: NumWords = %d, want %d", n, h1, got, want)
			}
			for w := uint32(0); w < row.NumWords(); w++ {
				word := row.Word(w)
				for b := uint32(0); b < 64; b++ {
					h2 := w*64 + b
					want := h2 < h1 && row.IsSet(h2)
					if got := word&(1<<b) != 0; got != want {
						t.Fatalf("n=%d h1=%d h2=%d: Word bit = %v, IsSet = %v", n, h1, h2, got, want)
					}
				}
			}
			// Words past the row must read zero.
			if got := row.Word(row.NumWords()); got != 0 {
				t.Fatalf("n=%d h1=%d: Word past end = %#x, want 0", n, h1, got)
			}
		}
	}
}

func BenchmarkTriRowWord(b *testing.B) {
	tr := NewTri(1 << 12)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		tr.Set(uint32(rng.Intn(1<<12)), uint32(rng.Intn(1<<12)))
	}
	row := tr.Row(1<<12 - 1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += row.Word(uint32(i) & 63)
	}
	_ = sink
}

// TestAndCountMatchesWordLoop checks the streaming AndCount against
// the per-word Word()&bm reference on random contents and bitmaps,
// across sizes that exercise every alignment of the packed rows.
func TestAndCountMatchesWordLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []uint32{1, 2, 3, 5, 63, 64, 65, 127, 128, 129, 200, 513} {
		tri := NewTri(n)
		for k := 0; k < int(n)*2; k++ {
			h1 := uint32(rng.Intn(int(n)))
			if h1 == 0 {
				continue
			}
			tri.Set(h1, uint32(rng.Intn(int(h1))))
		}
		bm := make([]uint64, (n+63)/64)
		for i := range bm {
			bm[i] = rng.Uint64()
		}
		for h1 := uint32(0); h1 < n; h1++ {
			row := tri.Row(h1)
			var want uint64
			for w := uint32(0); w < row.NumWords(); w++ {
				want += uint64(bits.OnesCount64(row.Word(w) & bm[w]))
			}
			if got := row.AndCount(bm); got != want {
				t.Fatalf("n=%d h1=%d: AndCount=%d, Word-loop=%d", n, h1, got, want)
			}
		}
	}
}

func BenchmarkTriAndCount(b *testing.B) {
	const n = 512
	tri := NewTri(n)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 4096; k++ {
		h1 := uint32(1 + rng.Intn(n-1))
		tri.Set(h1, uint32(rng.Intn(int(h1))))
	}
	bm := make([]uint64, n/64)
	for i := range bm {
		bm[i] = rng.Uint64()
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += tri.Row(uint32(1 + i%(n-1))).AndCount(bm)
	}
	_ = sink
}
