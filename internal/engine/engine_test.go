package engine

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
)

// builtins snapshots the registry before any test registers extra
// kernels, so table tests iterate exactly the built-in set. It is
// captured in TestMain because package-level vars initialize before
// the init() that performs the built-in registrations.
var builtins []string

func TestMain(m *testing.M) {
	builtins = Algorithms()
	os.Exit(m.Run())
}

// k12Triangles is C(12,3): every vertex triple of the complete graph.
const k12Triangles = 220

func TestRegistryResolvesEveryBuiltin(t *testing.T) {
	if len(builtins) != 17 {
		t.Fatalf("expected 17 built-in algorithms, got %d: %v", len(builtins), builtins)
	}
	g := gen.Complete(12)
	for _, name := range builtins {
		reg, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if reg.Name != name {
			t.Fatalf("Lookup(%q) returned registration named %q", name, reg.Name)
		}
		rep, err := Run(context.Background(), g, Spec{Algorithm: name})
		if err != nil {
			t.Fatalf("Run(%q): %v", name, err)
		}
		if rep.Triangles != k12Triangles {
			t.Errorf("Run(%q) counted %d triangles on K12, want %d", name, rep.Triangles, k12Triangles)
		}
		if rep.Algorithm != name {
			t.Errorf("Run(%q) labeled report %q", name, rep.Algorithm)
		}
		if rep.Elapsed <= 0 {
			t.Errorf("Run(%q) reported non-positive Elapsed", name)
		}
		if reg.Caps.ReportsPhases && rep.Phase(PhasePreprocess) <= 0 {
			t.Errorf("Run(%q) declares ReportsPhases but recorded no preprocess time", name)
		}
	}
}

func TestRegisterErrors(t *testing.T) {
	nop := func(*Task) (uint64, error) { return 0, nil }
	if err := Register("", Capabilities{}, nop); err == nil {
		t.Error("empty name should fail")
	}
	if err := Register("test-nil-kernel", Capabilities{}, nil); err == nil {
		t.Error("nil kernel should fail")
	}
	if err := Register("lotus", Capabilities{}, nop); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration should fail, got %v", err)
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("no-such-algorithm")
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("want unknown-algorithm error, got %v", err)
	}
	// The error lists what is available, so a typoed CLI flag is
	// self-explanatory.
	if !strings.Contains(err.Error(), "lotus") {
		t.Errorf("error should list available algorithms: %v", err)
	}
	if _, err := Run(context.Background(), gen.Complete(4), Spec{Algorithm: "no-such-algorithm"}); err == nil {
		t.Error("Run with unknown algorithm should fail")
	}
}

func TestRunNilGraph(t *testing.T) {
	_, err := Run(context.Background(), nil, Spec{})
	if !errors.Is(err, ErrNilGraph) {
		t.Fatalf("want ErrNilGraph, got %v", err)
	}
}

func TestRunRejectsOrientedGraph(t *testing.T) {
	og := gen.Complete(6).Orient()
	_, err := Run(context.Background(), og, Spec{})
	if err == nil || !strings.Contains(err.Error(), "symmetric") {
		t.Fatalf("want symmetric-graph error, got %v", err)
	}
}

func TestRunDefaultsToLotus(t *testing.T) {
	rep, err := Run(context.Background(), gen.Complete(12), Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != DefaultAlgorithm {
		t.Fatalf("default algorithm %q, want %q", rep.Algorithm, DefaultAlgorithm)
	}
	if rep.Triangles != k12Triangles {
		t.Fatalf("triangles = %d, want %d", rep.Triangles, k12Triangles)
	}
	// K12 with an adaptive hub count: every triangle involves a hub,
	// and the class split must sum to the total.
	if got := rep.HHH + rep.HHN + rep.HNN + rep.NNN; got != rep.Triangles {
		t.Fatalf("class split %d does not sum to total %d", got, rep.Triangles)
	}
}

func TestRunPanicBecomesError(t *testing.T) {
	MustRegister("test-panic", Capabilities{}, func(*Task) (uint64, error) {
		panic("kaboom")
	})
	_, err := Run(context.Background(), gen.Complete(4), Spec{Algorithm: "test-panic"})
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic-to-error with message, got %v", err)
	}
}

func TestRunKernelErrorPropagates(t *testing.T) {
	sentinel := errors.New("kernel says no")
	MustRegister("test-error", Capabilities{}, func(*Task) (uint64, error) {
		return 0, sentinel
	})
	_, err := Run(context.Background(), gen.Complete(4), Spec{Algorithm: "test-error"})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want kernel error, got %v", err)
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, gen.Complete(12), Spec{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunTimeout(t *testing.T) {
	g := testGraph(t)
	_, err := Run(context.Background(), g, Spec{Timeout: time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// testGraph builds an R-MAT graph large enough that a full count
// takes well over the cancellation latencies the tests assert on:
// scale 18 normally (the acceptance target), scale 15 under -short.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	scale := uint(18)
	if testing.Short() {
		scale = 15
	}
	return gen.RMAT(gen.DefaultRMAT(scale, 16, 42))
}

// TestRunCancellationPromptAndLeakFree is the acceptance check for
// the cancellable pipeline: cancelling mid-count on a large R-MAT
// graph must return context.Canceled within 500ms of the cancel call,
// and no goroutine may outlive the run.
func TestRunCancellationPromptAndLeakFree(t *testing.T) {
	for _, algo := range []string{"lotus", "lotus-recursive", "lotus-sharded", "forward"} {
		t.Run(algo, func(t *testing.T) {
			g := testGraph(t)
			before := runtime.NumGoroutine()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			type outcome struct {
				rep *Report
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				rep, err := Run(ctx, g, Spec{Algorithm: algo})
				done <- outcome{rep, err}
			}()

			// Let the count get into its stride, then pull the plug.
			time.Sleep(30 * time.Millisecond)
			cancelled := time.Now()
			cancel()
			select {
			case out := <-done:
				latency := time.Since(cancelled)
				if !errors.Is(out.err, context.Canceled) {
					t.Fatalf("want context.Canceled, got rep=%v err=%v", out.rep, out.err)
				}
				if out.rep != nil {
					t.Fatal("cancelled run must not return a partial report")
				}
				if latency > 500*time.Millisecond {
					t.Fatalf("cancellation took %v, want < 500ms", latency)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled run did not return within 10s")
			}

			// The pool watcher and all workers must be gone. Goroutine
			// teardown is asynchronous, so poll briefly.
			deadline := time.Now().Add(2 * time.Second)
			for {
				if runtime.NumGoroutine() <= before {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("goroutine leak: %d before, %d after cancellation",
						before, runtime.NumGoroutine())
				}
				runtime.Gosched()
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestRunCompletesWithGenerousDeadline guards the other side of the
// timeout contract: a deadline that never fires must not perturb the
// result.
func TestRunCompletesWithGenerousDeadline(t *testing.T) {
	g := gen.Complete(12)
	rep, err := Run(context.Background(), g, Spec{Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triangles != k12Triangles {
		t.Fatalf("triangles = %d, want %d", rep.Triangles, k12Triangles)
	}
}
