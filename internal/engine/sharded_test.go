package engine

import (
	"context"
	"errors"
	"testing"

	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/shard"
)

// TestShardedMatchesLotus: the sharded kernel must report the exact
// totals and class split of the flat kernel for every grid size.
func TestShardedMatchesLotus(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 16, 5))
	want, err := Run(context.Background(), g, Spec{Algorithm: "lotus"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 4} {
		got, err := Run(context.Background(), g, Spec{
			Algorithm: "lotus-sharded",
			Params:    Params{Shards: p},
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if got.Triangles != want.Triangles ||
			got.HHH != want.HHH || got.HHN != want.HHN ||
			got.HNN != want.HNN || got.NNN != want.NNN {
			t.Fatalf("p=%d: sharded report %+v disagrees with lotus %+v", p, got, want)
		}
		if got.Phase(PhasePreprocess) <= 0 || got.Phase(PhaseCount) <= 0 {
			t.Fatalf("p=%d: sharded run missing phase times: %v", p, got.Phases)
		}
	}
}

// TestShardedPreparedGrid: a prepared grid skips the build (zero
// preprocess phase) and still produces the right count; mismatched
// grids are rejected with ErrPreparedMismatch.
func TestShardedPreparedGrid(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 3))
	gr, err := shard.Build(g, shard.Options{Grid: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(context.Background(), g, Spec{Algorithm: "lotus"})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := Run(context.Background(), g, Spec{
		Algorithm:      "lotus-sharded",
		CollectMetrics: true,
		Params:         Params{PreparedGrid: gr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triangles != want.Triangles {
		t.Fatalf("prepared-grid run counted %d, want %d", rep.Triangles, want.Triangles)
	}
	if rep.Phase(PhasePreprocess) != 0 {
		t.Fatalf("prepared-grid run recorded preprocess time %v, want 0", rep.Phase(PhasePreprocess))
	}
	if rep.Metrics["preprocess.cached"] != 1 {
		t.Fatalf("prepared-grid run did not record the cache-hit metric: %v", rep.Metrics)
	}

	// Wrong graph: vertex-count cross-check fires.
	other := gen.Complete(12)
	_, err = Run(context.Background(), other, Spec{
		Algorithm: "lotus-sharded",
		Params:    Params{PreparedGrid: gr},
	})
	if !errors.Is(err, ErrPreparedMismatch) {
		t.Fatalf("foreign grid: got %v, want ErrPreparedMismatch", err)
	}

	// Right graph, contradictory grid dimension.
	_, err = Run(context.Background(), g, Spec{
		Algorithm: "lotus-sharded",
		Params:    Params{PreparedGrid: gr, Shards: 2},
	})
	if !errors.Is(err, ErrPreparedMismatch) {
		t.Fatalf("wrong dimension: got %v, want ErrPreparedMismatch", err)
	}
}

// TestPreparedStructureMismatchTyped: the flat kernel's long-standing
// vertex-count cross-check is now a typed error serve can match on.
func TestPreparedStructureMismatchTyped(t *testing.T) {
	lg, err := core.TryPreprocess(gen.Complete(10), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), gen.Complete(12), Spec{
		Algorithm: "lotus",
		Params:    Params{Prepared: lg},
	})
	if !errors.Is(err, ErrPreparedMismatch) {
		t.Fatalf("got %v, want ErrPreparedMismatch", err)
	}
}

// TestShardedOutOfRangeGrid rejects absurd grid dimensions up front.
func TestShardedOutOfRangeGrid(t *testing.T) {
	g := gen.Complete(8)
	for _, p := range []int{-1, shard.MaxGrid + 1} {
		if _, err := Run(context.Background(), g, Spec{
			Algorithm: "lotus-sharded",
			Params:    Params{Shards: p},
		}); err == nil {
			t.Fatalf("Shards=%d accepted", p)
		}
	}
}

// TestShardedCapabilities: the registry entry carries the new tags.
func TestShardedCapabilities(t *testing.T) {
	reg, err := Lookup("lotus-sharded")
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Caps.Shardable || !reg.Caps.Cancellable {
		t.Fatalf("lotus-sharded capabilities = %+v, want Shardable and Cancellable", reg.Caps)
	}
	if reg.Caps.Streaming {
		t.Fatalf("lotus-sharded must not claim Streaming: %+v", reg.Caps)
	}
	lotusReg, err := Lookup("lotus")
	if err != nil {
		t.Fatal(err)
	}
	if !lotusReg.Caps.Streaming || !lotusReg.Caps.Cancellable {
		t.Fatalf("lotus capabilities = %+v, want Streaming and Cancellable", lotusReg.Caps)
	}
	// Registrations preserves registry order and exposes every entry.
	regs := Registrations()
	if len(regs) < len(builtins) {
		t.Fatalf("Registrations returned %d entries, want at least %d", len(regs), len(builtins))
	}
	for i, name := range builtins {
		if regs[i].Name != name {
			t.Fatalf("Registrations()[%d] = %q, want %q (registration order)", i, regs[i].Name, name)
		}
	}
}
