package engine

import (
	"context"
	"testing"

	"lotustc/internal/gen"
)

// TestRunCollectMetricsLotus: an instrumented lotus run must surface
// the engine-level gauges, all four phase wall times, the scheduler
// claim/steal counters, and the structure touch counts.
func TestRunCollectMetricsLotus(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	rep, err := Run(context.Background(), g, Spec{
		Algorithm:      "lotus",
		CollectMetrics: true,
		Params:         Params{WorkStealing: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil {
		t.Fatal("CollectMetrics set but Report.Metrics nil")
	}
	required := []string{
		"graph.vertices", "graph.edges", "run.workers",
		"preprocess.ns", "phase1.ns", "hnn.ns", "nnn.ns",
		"lotus.hubs", "lotus.he_edges", "lotus.nhe_edges", "lotus.h2h_bits",
		"phase1.tiles", "phase1.h2h_probes", "phase1.polls",
		"phase1.claims", "phase1.steals",
		"hnn.he_intersections", "hnn.polls", "hnn.claims",
		"nnn.nhe_intersections", "nnn.polls", "nnn.claims",
	}
	for _, name := range required {
		if _, ok := rep.Metrics[name]; !ok {
			t.Errorf("metric %q missing from snapshot", name)
		}
	}
	if v := rep.Metrics["graph.vertices"]; v != int64(g.NumVertices()) {
		t.Errorf("graph.vertices = %d, want %d", v, g.NumVertices())
	}
	if rep.Metrics["phase1.ns"] != rep.Phase(PhaseHub).Nanoseconds() {
		t.Errorf("phase1.ns %d != report phase %d",
			rep.Metrics["phase1.ns"], rep.Phase(PhaseHub).Nanoseconds())
	}
	if rep.Metrics["phase1.tiles"] <= 0 || rep.Metrics["phase1.claims"] <= 0 {
		t.Errorf("tile/claim counters not recorded: %v", rep.Metrics)
	}
}

// TestRunCollectMetricsOff: the default path must not allocate a
// registry, so uninstrumented runs stay exactly as before.
func TestRunCollectMetricsOff(t *testing.T) {
	rep, err := Run(context.Background(), gen.Complete(12), Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Fatalf("metrics collected without CollectMetrics: %v", rep.Metrics)
	}
}

// TestRunCollectMetricsForward: baseline kernels report through the
// baseline.* namespace.
func TestRunCollectMetricsForward(t *testing.T) {
	rep, err := Run(context.Background(), gen.Complete(12), Spec{
		Algorithm:      "forward",
		CollectMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"baseline.preprocess.ns", "baseline.count.ns",
		"baseline.oriented_edges", "baseline.intersections",
	} {
		if _, ok := rep.Metrics[name]; !ok {
			t.Errorf("metric %q missing from forward snapshot", name)
		}
	}
	// K12 oriented: C(12,2) = 66 directed forward edges, one
	// intersection per oriented edge.
	if v := rep.Metrics["baseline.intersections"]; v != 66 {
		t.Errorf("baseline.intersections = %d, want 66", v)
	}
}
