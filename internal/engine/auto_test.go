package engine

import (
	"context"
	"strings"
	"testing"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
)

// autoCorpus covers every policy regime plus the degenerate shapes.
func autoCorpus() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat-9":      gen.RMAT(gen.DefaultRMAT(9, 8, 42)),
		"rmat-10":     gen.RMAT(gen.DefaultRMAT(10, 16, 7)),
		"rmat-13":     gen.RMAT(gen.DefaultRMAT(13, 8, 42)),
		"chunglu":     gen.ChungLu(gen.ChungLuParams{N: 600, M: 3000, Gamma: 2.1, Seed: 3}),
		"complete-50": gen.Complete(50),
		"hub-spokes":  gen.HubAndSpokes(16, 500, 3, 5),
		"planted":     gen.PlantedTriangles(40, 100),
		"star":        gen.Star(100),
		"path":        gen.Path(64),
		"single-edge": graph.FromEdges([]graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{}),
		"bipartite":   gen.CompleteBipartite(10, 12),
		"trigrid-100": gen.TriGrid(100, 100),
		"ba-8k":       gen.BarabasiAlbert(8192, 4, 9),
		"er-8k":       gen.ErdosRenyi(8192, 65536, 11),
	}
}

// TestCrossAlgorithmEquivalence: the two new kernels and the auto
// router must reproduce the lotus total bit for bit on every corpus
// graph and hub count; degree-partition shares the hub set, so its
// class split must match too.
func TestCrossAlgorithmEquivalence(t *testing.T) {
	ctx := context.Background()
	for name, g := range autoCorpus() {
		for _, hubs := range []int{0, 7} {
			want, err := Run(ctx, g, Spec{Algorithm: "lotus", Params: Params{HubCount: hubs}})
			if err != nil {
				t.Fatalf("%s hubs=%d lotus: %v", name, hubs, err)
			}
			for _, algo := range []string{"cover-edge", "degree-partition", "auto"} {
				rep, err := Run(ctx, g, Spec{Algorithm: algo, Params: Params{HubCount: hubs}})
				if err != nil {
					t.Fatalf("%s hubs=%d %s: %v", name, hubs, algo, err)
				}
				if rep.Triangles != want.Triangles {
					t.Errorf("%s hubs=%d: %s counted %d, lotus %d", name, hubs, algo, rep.Triangles, want.Triangles)
				}
				if algo == "degree-partition" &&
					(rep.HHH != want.HHH || rep.HHN != want.HHN || rep.HNN != want.HNN || rep.NNN != want.NNN) {
					t.Errorf("%s hubs=%d: degree-partition classes %d/%d/%d/%d, lotus %d/%d/%d/%d",
						name, hubs, rep.HHH, rep.HHN, rep.HNN, rep.NNN,
						want.HHH, want.HHN, want.HNN, want.NNN)
				}
			}
		}
	}
}

// TestAutoDecisionRecorded: an auto run must carry the full routing
// provenance — algorithm, reason, probe stats, and a probe phase.
func TestAutoDecisionRecorded(t *testing.T) {
	g := gen.TriGrid(100, 100)
	rep, err := Run(context.Background(), g, Spec{Algorithm: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Decision
	if d == nil {
		t.Fatal("auto run has no Decision block")
	}
	if d.Algorithm != "cover-edge" {
		t.Fatalf("trigrid routed to %s, want cover-edge (reason: %s)", d.Algorithm, d.Reason)
	}
	if d.Reason == "" || d.Overridden {
		t.Fatalf("decision provenance: %+v", d)
	}
	if len(d.Stats) != 11 {
		t.Fatalf("decision carries %d stats, want 11", len(d.Stats))
	}
	if d.ProbeNS <= 0 {
		t.Fatalf("decision probe cost %d, want > 0", d.ProbeNS)
	}
	if rep.Phase(PhaseProbe) <= 0 {
		t.Fatal("no probe phase recorded")
	}
	// A fixed-algorithm run must NOT carry a Decision.
	plain, err := Run(context.Background(), g, Spec{Algorithm: "lotus"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Decision != nil {
		t.Fatal("lotus run carries a Decision block")
	}
}

// TestAutoTuneAlgorithmOverride: pinning the routed algorithm runs it
// and marks the decision overridden; pinning "auto" itself errors
// instead of recursing.
func TestAutoTuneAlgorithmOverride(t *testing.T) {
	g := gen.TriGrid(60, 60) // policy would choose lotus (tiny)
	rep, err := Run(context.Background(), g, Spec{Algorithm: "auto",
		Params: Params{TuneAlgorithm: "cover-edge"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision == nil || rep.Decision.Algorithm != "cover-edge" || !rep.Decision.Overridden {
		t.Fatalf("override decision: %+v", rep.Decision)
	}
	if !strings.Contains(rep.Decision.Reason, "override") {
		t.Fatalf("override reason: %q", rep.Decision.Reason)
	}
	if want := uint64(59 * 59 * 2); rep.Triangles != want {
		t.Fatalf("counted %d, want %d", rep.Triangles, want)
	}
	if _, err := Run(context.Background(), g, Spec{Algorithm: "auto",
		Params: Params{TuneAlgorithm: "auto"}}); err == nil ||
		!strings.Contains(err.Error(), "recurse") {
		t.Fatalf("pinning auto to itself: %v", err)
	}
	if _, err := Run(context.Background(), g, Spec{Algorithm: "auto",
		Params: Params{TuneAlgorithm: "no-such"}}); err == nil ||
		!strings.Contains(err.Error(), "tuner routed to") {
		t.Fatalf("pinning auto to unknown: %v", err)
	}
}

// TestAutoDecisionCache: the second auto run over the same graph must
// reuse the memoized decision (cache-hit counter) and still record
// the original probe cost in its Decision block.
func TestAutoDecisionCache(t *testing.T) {
	g := gen.TriGrid(80, 90) // fresh graph pointer, guaranteed cold
	first, err := Run(context.Background(), g, Spec{Algorithm: "auto", CollectMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.Metrics[obs.TuneCacheHits] != 0 {
		t.Fatalf("first run hit the cache: %d", first.Metrics[obs.TuneCacheHits])
	}
	second, err := Run(context.Background(), g, Spec{Algorithm: "auto", CollectMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.Metrics[obs.TuneCacheHits] != 1 {
		t.Fatalf("second run missed the cache: %d", second.Metrics[obs.TuneCacheHits])
	}
	if second.Decision == nil || second.Decision.ProbeNS != first.Decision.ProbeNS {
		t.Fatalf("cached decision lost the original probe cost: %+v vs %+v",
			second.Decision, first.Decision)
	}
	if second.Metrics[obs.TuneProbes] != 1 {
		t.Fatalf("cached run still publishes one decision: probes=%d", second.Metrics[obs.TuneProbes])
	}
}
