package engine

import (
	"fmt"
	"sync"
	"time"

	"lotustc/internal/core"
	"lotustc/internal/coveredge"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
	"lotustc/internal/shard"
	"lotustc/internal/tune"
)

// coverEdgeKernel counts by the cover-edge method (Bader et al.,
// arXiv:2403.02997): BFS levels partition the edges, and only the
// horizontal ("cover") edges are intersected. No LOTUS structures are
// built, so Prepared/PreparedGrid and the phase-1 kernel knob are
// ignored; the intersection strategy is fixed by the kernel itself
// (adaptive merge/galloping dispatch).
func coverEdgeKernel(t *Task) (uint64, error) {
	res := coveredge.Count(t.Graph, t.Pool, t.Metrics())
	if err := t.Err(); err != nil {
		return 0, err
	}
	// The BFS level assignment is this kernel's whole preprocessing —
	// it is what replaces the LOTUS structure build.
	t.Report.AddPhase(PhasePreprocess, res.BFSTime)
	t.Report.AddPhase(PhaseCount, res.CountTime)
	return res.Total, nil
}

// degreePartitionKernel runs the degree-partitioned LOTUS path
// (Kolountzakis et al., arXiv:1011.0468, adapted to the shard grid):
// a full degree-descending relabeling, one contiguous block per log2
// degree class, one LOTUS structure per block, counted by block
// triple. The hub set is the same top-degree set the lotus kernel
// picks, so totals and the class split are bit-identical to "lotus".
// Params.Shards is ignored (P is the class count) and the grid is
// always built fresh: a PreparedGrid carries weight-balanced ranges,
// not degree classes.
func degreePartitionKernel(t *Task) (uint64, error) {
	gr, err := shard.Build(t.Graph, shard.Options{
		Strategy:      shard.PartitionDegree,
		HubCount:      t.Params.HubCount,
		FrontFraction: t.Params.FrontFraction,
		Pool:          t.Pool,
		Metrics:       t.Metrics(),
	})
	if err != nil {
		return 0, err
	}
	t.Report.AddPhase(PhasePreprocess, gr.PreprocessTime)
	if err := t.Err(); err != nil {
		return 0, err
	}
	copt := shard.CountOptions{Metrics: t.Metrics()}
	if copt.Phase1Kernel, err = core.ParsePhase1Kernel(t.Params.Phase1Kernel); err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	if copt.Intersect, err = core.ParseIntersectKernel(t.Params.IntersectKernel); err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	res := gr.Count(t.Pool, copt)
	t.Report.AddPhase(PhaseCount, res.CountTime)
	t.Report.HHH, t.Report.HHN, t.Report.HNN, t.Report.NNN = res.HHH, res.HHN, res.HNN, res.NNN
	return res.Total, nil
}

// tuneCache memoizes decisions per (graph, hub count, overrides).
// Graphs are immutable once built, so the pointer identifies the
// structure; a resident service re-counting a cached graph pays the
// probe once, exactly as it pays LOTUS preprocessing once via
// Params.Prepared. Bounded small — entries are a few hundred bytes
// and a stale key (a freed graph) just wastes its slot until evicted.
var tuneCache = struct {
	sync.Mutex
	m map[tuneCacheKey]tune.Decision
}{m: make(map[tuneCacheKey]tune.Decision)}

type tuneCacheKey struct {
	g        *graph.Graph
	hubCount int
	ov       tune.Overrides
}

const tuneCacheCap = 128

// decideCached returns the tune decision for the task, probing only
// on the first sight of a graph. probed reports a cold probe.
func decideCached(t *Task) (dec tune.Decision, probed bool) {
	key := tuneCacheKey{g: t.Graph, hubCount: t.Params.HubCount, ov: tune.Overrides{
		Algorithm:       t.Params.TuneAlgorithm,
		Phase1Kernel:    t.Params.Phase1Kernel,
		IntersectKernel: t.Params.IntersectKernel,
	}}
	tuneCache.Lock()
	dec, ok := tuneCache.m[key]
	tuneCache.Unlock()
	if ok {
		return dec, false
	}
	dec = tune.Analyze(t.Graph, key.hubCount, t.Pool, key.ov)
	if t.Err() != nil {
		// A cancelled probe yields unspecified stats; never cache it.
		return dec, true
	}
	tuneCache.Lock()
	if len(tuneCache.m) >= tuneCacheCap {
		for k := range tuneCache.m {
			delete(tuneCache.m, k)
			break
		}
	}
	tuneCache.m[key] = dec
	tuneCache.Unlock()
	return dec, true
}

// autoKernel is the structural auto-tuner's engine face: probe the
// graph (memoized per graph), let the tune policy pick the algorithm
// and kernel knobs, delegate to the chosen registration on the same
// task, and record the full decision (reason, probe stats, probe
// cost) in the report. Params.TuneAlgorithm pins the routed algorithm
// for ablation, and a non-empty Params.Phase1Kernel /
// IntersectKernel wins over the tuner's kernel choices.
func autoKernel(t *Task) (uint64, error) {
	probeStart := time.Now()
	dec, probed := decideCached(t)
	if err := t.Err(); err != nil {
		return 0, err
	}
	if dec.Algorithm == "auto" {
		return 0, fmt.Errorf("engine: tune algorithm override %q would recurse", dec.Algorithm)
	}
	reg, err := Lookup(dec.Algorithm)
	if err != nil {
		return 0, fmt.Errorf("engine: tuner routed to %w", err)
	}
	// The probe phase records what THIS run spent (near zero on a
	// cache hit); the decision block keeps the original probe cost.
	t.Report.AddPhase(PhaseProbe, time.Since(probeStart))
	t.Report.Decision = dec.Report()
	dec.Publish(t.Metrics())
	if !probed {
		t.Metrics().Add(obs.TuneCacheHits, 1)
	}
	// Delegate on a shallow task copy: same graph, pool, context and
	// report (the delegate's phases and classes land in this run's
	// report), with the tuner's kernel knobs substituted in.
	sub := *t
	sub.Params.Phase1Kernel = dec.Phase1Kernel
	sub.Params.IntersectKernel = dec.IntersectKernel
	return reg.Kernel(&sub)
}
