package engine

import (
	"context"
	"strings"
	"testing"

	"lotustc/internal/core"
	"lotustc/internal/gen"
)

// TestRunWithPreparedStructure covers the serving-cache injection
// path: a preprocessed LotusGraph handed through Params.Prepared must
// produce the same count as a cold run, report a zero-length
// preprocess phase, and flag the skip in the metrics snapshot.
func TestRunWithPreparedStructure(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	cold, err := Run(context.Background(), g, Spec{Algorithm: "lotus"})
	if err != nil {
		t.Fatal(err)
	}
	lg, err := core.TryPreprocess(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(context.Background(), g, Spec{
		Algorithm:      "lotus",
		CollectMetrics: true,
		Params:         Params{Prepared: lg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Triangles != cold.Triangles {
		t.Fatalf("prepared run counted %d, cold run %d", warm.Triangles, cold.Triangles)
	}
	if d := warm.Phase(PhasePreprocess); d != 0 {
		t.Fatalf("prepared run reported a %v preprocess phase, want 0", d)
	}
	if warm.Metrics["preprocess.cached"] != 1 {
		t.Fatalf("preprocess.cached = %d, want 1", warm.Metrics["preprocess.cached"])
	}
}

// TestRunPreparedVertexMismatch: injecting a structure built from a
// different graph must be an error, not a silent wrong answer.
func TestRunPreparedVertexMismatch(t *testing.T) {
	small := gen.Complete(8)
	lg, err := core.TryPreprocess(small, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big := gen.Complete(16)
	_, err = Run(context.Background(), big, Spec{
		Algorithm: "lotus",
		Params:    Params{Prepared: lg},
	})
	if err == nil {
		t.Fatal("vertex-count mismatch accepted")
	}
	if !strings.Contains(err.Error(), "vertices") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
}
