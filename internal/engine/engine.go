package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"lotustc/internal/core"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
	"lotustc/internal/sched"
	"lotustc/internal/shard"
)

// DefaultAlgorithm is used when Spec.Algorithm is empty.
const DefaultAlgorithm = "lotus"

// ErrNilGraph is returned by Run when the input graph is nil.
var ErrNilGraph = errors.New("engine: nil graph")

// ErrNeedsSymmetric is wrapped into the error Run returns when an
// oriented graph is handed to an algorithm whose capabilities demand
// a symmetric one; servers match it with errors.Is to classify the
// failure as the caller's (a 4xx), not the process's.
var ErrNeedsSymmetric = errors.New("requires a symmetric graph")

// ErrPreparedMismatch is wrapped into the error a kernel returns when
// a Params.Prepared structure or Params.PreparedGrid does not match
// the run's graph. A serving layer matches it with errors.Is to tell
// cache corruption (evict the entry and rebuild) apart from a caller
// mistake.
var ErrPreparedMismatch = errors.New("prepared structure does not match the graph")

// Canonical phase names recorded by the LOTUS kernels. Baselines
// record no phases (their preprocessing is fused into the kernel).
const (
	PhasePreprocess = "preprocess"
	PhaseHub        = "phase1" // HHH + HHN against the H2H bit array
	PhaseHNN        = "hnn"
	PhaseNNN        = "nnn"
	// PhaseCount is the single counting phase of kernels that do not
	// split their sweep into the three monolithic phases (the sharded
	// kernel interleaves all classes per block triple).
	PhaseCount = "count"
	// PhaseProbe is the auto kernel's structural probe.
	PhaseProbe = "probe"
)

// Spec selects an algorithm and its tuning for one Run.
type Spec struct {
	// Algorithm is a registry name; empty selects DefaultAlgorithm.
	Algorithm string
	// Workers bounds parallelism; 0 uses GOMAXPROCS.
	Workers int
	// Timeout > 0 bounds the run's wall time on top of whatever
	// deadline the caller's context already carries; exceeding it
	// returns context.DeadlineExceeded.
	Timeout time.Duration
	// CollectMetrics threads an obs.Metrics registry through the run;
	// the kernels publish per-phase counters into it and Run snapshots
	// the result into Report.Metrics. Off by default: kernels see a
	// nil registry, whose methods are no-ops, so the hot paths pay
	// nothing.
	CollectMetrics bool
	// Params carries the algorithm tuning knobs.
	Params Params
}

// Params are the tuning knobs kernels may honor; unknown knobs are
// ignored by kernels that have no use for them.
type Params struct {
	// HubCount overrides the LOTUS hub count (0 = adaptive).
	HubCount int
	// FrontFraction overrides the §4.3.1 relabeling front block.
	FrontFraction float64
	// TileThreshold overrides the squared-edge-tiling degree cutoff.
	TileThreshold int
	// EdgeBalancedTiling switches phase 1 to the edge-balanced
	// partitioner (Table 9's comparison policy).
	EdgeBalancedTiling bool
	// MaxDepth bounds the recursive LOTUS variant (0 = 2 levels).
	MaxDepth int
	// HNNBlocks > 1 enables the §7 blocked HNN phase.
	HNNBlocks int
	// WorkStealing schedules phase-1 tiles on work-stealing deques.
	WorkStealing bool
	// Phase1Kernel selects the H2H probe kernel for phase 1: "" or
	// "auto" (per-row dispatch), "scalar", or "word". Unknown values
	// fail the run up front rather than silently falling back.
	Phase1Kernel string
	// IntersectKernel selects the HNN/NNN intersection strategy: ""
	// or "adaptive" (size-ratio dispatch), or "merge".
	IntersectKernel string
	// Prepared supplies an already-built LOTUS structure for the same
	// graph, letting a resident service amortize preprocessing across
	// queries: the "lotus" kernel skips Algorithm 2 and records a
	// zero-length preprocess phase. The structure must have been built
	// from the run's graph — the kernel cross-checks the vertex count
	// and returns an error wrapping ErrPreparedMismatch otherwise;
	// kernels that rebuild per level (lotus-recursive) and the
	// baselines ignore it.
	Prepared *core.LotusGraph
	// Shards is the grid dimension p for the "lotus-sharded" kernel
	// (0 = shard.DefaultGrid; 1 = a single block). Other kernels
	// ignore it.
	Shards int
	// PreparedGrid supplies an already-built shard grid for the same
	// graph, the sharded counterpart of Prepared: "lotus-sharded"
	// skips the grid build and records a zero-length preprocess
	// phase. Mismatches (vertex count, or a grid dimension that
	// contradicts a nonzero Shards) wrap ErrPreparedMismatch.
	PreparedGrid *shard.Grid
	// TuneAlgorithm pins the "auto" kernel's routed algorithm for
	// ablation runs (the decision is recorded as overridden); empty
	// lets the tune policy choose. Other kernels ignore it.
	TuneAlgorithm string
	// Scratch supplies reusable per-worker kernel scratch to the
	// "lotus" kernel (see core.CountOptions.Scratch); a resident
	// service pools these across requests so warm counts reuse their
	// phase-1 bitmaps. Never share one instance between concurrent
	// runs. Other kernels ignore it.
	Scratch *core.CountScratch
}

// Phase is one timed stage of a run.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Report is the structured outcome of one engine run. Phases appear
// in execution order; the class counters and RecursionDepth are
// populated only by kernels whose capabilities declare ReportsPhases.
type Report struct {
	Algorithm string
	Triangles uint64
	// Elapsed is the end-to-end wall time including any in-kernel
	// preprocessing (the Table 5 accounting).
	Elapsed time.Duration
	Phases  []Phase
	// Triangle classes (Fig 7), LOTUS kernels only.
	HHH, HHN, HNN, NNN uint64
	// RecursionDepth reports levels used by the recursive variant.
	RecursionDepth int
	// Metrics is the flat counter snapshot collected when
	// Spec.CollectMetrics was set (nil otherwise). Names are dotted
	// (e.g. "phase1.steals"); DESIGN.md documents the full set.
	Metrics map[string]int64
	// Decision is the auto-tuner's routing record (the "auto" kernel
	// only): the chosen algorithm, the policy reason, and every probe
	// stat the decision read.
	Decision *obs.TuneDecision
}

// AddPhase appends a timed stage to the report.
func (r *Report) AddPhase(name string, d time.Duration) {
	r.Phases = append(r.Phases, Phase{Name: name, Duration: d})
}

// Phase returns the total duration recorded under name (zero when the
// kernel reported no such stage).
func (r *Report) Phase(name string) time.Duration {
	var d time.Duration
	for _, p := range r.Phases {
		if p.Name == name {
			d += p.Duration
		}
	}
	return d
}

// HubTriangles returns triangles containing at least one hub.
func (r *Report) HubTriangles() uint64 { return r.HHH + r.HHN + r.HNN }

// Task carries the per-run state a kernel operates on.
type Task struct {
	// Graph is the validated input graph.
	Graph *graph.Graph
	// Pool is the run's scheduler, bound to the run context: parallel
	// regions stop at chunk claims once the context is done, and
	// kernels poll Pool.Cancelled() on long sequential stretches.
	Pool *sched.Pool
	// Params are the tuning knobs from the Spec.
	Params Params
	// Report accumulates phase timings and class counters.
	Report *Report

	ctx     context.Context
	metrics *obs.Metrics
}

// Ctx returns the run context.
func (t *Task) Ctx() context.Context { return t.ctx }

// Metrics returns the run's counter registry, nil unless the Spec set
// CollectMetrics. Kernels pass it straight into the layers below;
// every obs method is a no-op on a nil receiver, so no kernel needs a
// nil check.
func (t *Task) Metrics() *obs.Metrics { return t.metrics }

// Err returns the run context's error, nil while the run is live.
// Kernels check it between stages so a cancelled run stops before
// starting the next phase.
func (t *Task) Err() error { return t.ctx.Err() }

// Run executes spec against g: it resolves the algorithm in the
// registry, validates inputs at the engine boundary, binds the
// scheduler to ctx (plus Spec.Timeout, if any), runs the kernel with
// panic-to-error recovery, and returns the structured Report.
//
// Cancellation contract: if ctx is cancelled or the deadline passes
// while the kernel runs, workers stop at the next chunk claim or
// kernel poll point, and Run returns ctx.Err() (context.Canceled or
// context.DeadlineExceeded). Partial results are never returned, and
// no goroutines outlive the call.
func Run(ctx context.Context, g *graph.Graph, spec Spec) (*Report, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	name := spec.Algorithm
	if name == "" {
		name = DefaultAlgorithm
	}
	reg, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if reg.Caps.NeedsSymmetric && g.Oriented {
		return nil, fmt.Errorf("engine: algorithm %q %w, got an oriented one", name, ErrNeedsSymmetric)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool := sched.NewPool(spec.Workers).Bind(ctx)
	defer pool.Release()

	rep := &Report{Algorithm: name}
	task := &Task{Graph: g, Pool: pool, Params: spec.Params, Report: rep, ctx: ctx}
	if spec.CollectMetrics {
		task.metrics = obs.New()
		task.metrics.Set("graph.vertices", int64(g.NumVertices()))
		task.metrics.Set("graph.edges", g.NumEdges())
		task.metrics.Set("run.workers", int64(pool.Workers()))
	}
	start := time.Now()
	tri, err := invoke(reg, task)
	rep.Elapsed = time.Since(start)
	// A done context wins over whatever the kernel returned: the
	// structures it raced to fill are unspecified.
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	rep.Triangles = tri
	if task.metrics != nil {
		// The layers below already published their own wall times
		// ("preprocess.ns", "phase1.ns", ...); the engine adds nothing
		// here so no phase is counted twice.
		rep.Metrics = task.metrics.Snapshot()
	}
	return rep, nil
}

// invoke runs the kernel, converting panics into errors so one bad
// input or algorithm bug cannot take down a serving process.
func invoke(reg Registration, task *Task) (tri uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: algorithm %q panicked: %v\n%s", reg.Name, r, debug.Stack())
		}
	}()
	return reg.Kernel(task)
}
