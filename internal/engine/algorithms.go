package engine

import (
	"fmt"
	"time"

	"lotustc/internal/baseline"
	"lotustc/internal/core"
)

// The built-in registrations: the two LOTUS variants, the §5.1.4
// comparators, and the §6.1 classics. Registration order is the
// display order of every algorithm listing.
func init() {
	// Every built-in routes parallel work through the bound pool, so
	// all observe cooperative cancellation.
	lotus := Capabilities{SupportsWorkers: true, ReportsPhases: true, NeedsSymmetric: true, Cancellable: true}
	parallel := Capabilities{SupportsWorkers: true, NeedsSymmetric: true, Cancellable: true}
	sequential := Capabilities{NeedsSymmetric: true, Cancellable: true}
	streaming := lotus
	streaming.Streaming = true
	sharded := lotus
	sharded.Shardable = true

	MustRegister("lotus", streaming, lotusKernel)
	MustRegister("lotus-recursive", lotus, lotusRecursiveKernel)
	MustRegister("lotus-sharded", sharded, lotusShardedKernel)
	MustRegister("cover-edge", lotus, coverEdgeKernel)
	MustRegister("degree-partition", sharded, degreePartitionKernel)
	MustRegister("auto", lotus, autoKernel)
	MustRegister("forward", parallel, forwardKernel(baseline.KernelMerge))
	MustRegister("forward-binary", parallel, forwardKernel(baseline.KernelBinary))
	MustRegister("forward-hash", parallel, forwardKernel(baseline.KernelHash))
	MustRegister("edge-iterator", parallel, func(t *Task) (uint64, error) {
		return baseline.EdgeIterator(t.Graph, t.Pool), nil
	})
	MustRegister("node-iterator", parallel, func(t *Task) (uint64, error) {
		return baseline.NodeIterator(t.Graph, t.Pool), nil
	})
	MustRegister("gbbs", parallel, func(t *Task) (uint64, error) {
		return baseline.GBBS(t.Graph, t.Pool), nil
	})
	MustRegister("bbtc", parallel, func(t *Task) (uint64, error) {
		return baseline.BBTC(t.Graph, t.Pool, 0), nil
	})
	MustRegister("new-vertex-listing", parallel, func(t *Task) (uint64, error) {
		return baseline.NewVertexListing(t.Graph, t.Pool), nil
	})
	MustRegister("node-iterator-core", sequential, func(t *Task) (uint64, error) {
		return baseline.NodeIteratorCore(t.Graph, t.Pool), nil
	})
	MustRegister("ayz", parallel, func(t *Task) (uint64, error) {
		return baseline.AYZ(t.Graph, t.Pool, 0), nil
	})
	MustRegister("forward-degeneracy", parallel, func(t *Task) (uint64, error) {
		return baseline.ForwardDegeneracy(t.Graph, t.Pool, baseline.KernelMerge), nil
	})
}

// lotusKernel runs flat LOTUS: Algorithm 2 preprocessing followed by
// the three counting phases, all on the task's bound pool. A
// Params.Prepared structure (a serving cache hit) skips preprocessing
// entirely; the preprocess phase is then reported as zero.
func lotusKernel(t *Task) (uint64, error) {
	lg := t.Params.Prepared
	if lg != nil && lg.NumVertices() != t.Graph.NumVertices() {
		return 0, fmt.Errorf("engine: prepared LOTUS structure has %d vertices, graph has %d: %w",
			lg.NumVertices(), t.Graph.NumVertices(), ErrPreparedMismatch)
	}
	if lg == nil {
		var err error
		lg, err = core.TryPreprocess(t.Graph, core.Options{
			HubCount:      t.Params.HubCount,
			FrontFraction: t.Params.FrontFraction,
			Pool:          t.Pool,
			Metrics:       t.Metrics(),
		})
		if err != nil {
			return 0, err
		}
		t.Report.AddPhase(PhasePreprocess, lg.PreprocessTime)
	} else {
		t.Report.AddPhase(PhasePreprocess, 0)
		t.Metrics().Set("preprocess.cached", 1)
	}
	if err := t.Err(); err != nil {
		return 0, err
	}
	copt := core.CountOptions{
		TileThreshold: t.Params.TileThreshold,
		HNNBlocks:     t.Params.HNNBlocks,
		WorkStealing:  t.Params.WorkStealing,
		Metrics:       t.Metrics(),
		Scratch:       t.Params.Scratch,
	}
	if t.Params.EdgeBalancedTiling {
		copt.Partitioner = core.EdgeBalanced
	}
	var err error
	if copt.Phase1Kernel, err = core.ParsePhase1Kernel(t.Params.Phase1Kernel); err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	if copt.Intersect, err = core.ParseIntersectKernel(t.Params.IntersectKernel); err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	cr := lg.CountWithOptions(t.Pool, copt)
	t.Report.AddPhase(PhaseHub, cr.Phase1Time)
	t.Report.AddPhase(PhaseHNN, cr.HNNTime)
	t.Report.AddPhase(PhaseNNN, cr.NNNTime)
	t.Report.HHH, t.Report.HHN, t.Report.HNN, t.Report.NNN = cr.HHH, cr.HHN, cr.HNN, cr.NNN
	return cr.Total, nil
}

// lotusRecursiveKernel applies LOTUS recursively (§5.5/§7), folding
// the per-level results into the report. The deepest level is the
// only one whose NNN phase ran, so only its NNN count is real — and
// on degenerate inputs (e.g. cancellation before the first level
// completed) Levels can be empty, which must not panic.
func lotusRecursiveKernel(t *Task) (uint64, error) {
	rr, err := core.CountRecursive(t.Graph, t.Pool, core.RecursiveOptions{
		Options: core.Options{
			HubCount:      t.Params.HubCount,
			FrontFraction: t.Params.FrontFraction,
			Pool:          t.Pool,
			Metrics:       t.Metrics(),
		},
		MaxDepth: t.Params.MaxDepth,
	})
	if err != nil {
		return 0, err
	}
	if err := t.Err(); err != nil {
		return 0, err
	}
	t.Report.RecursionDepth = rr.Depth
	t.Report.AddPhase(PhasePreprocess, rr.Preprocess)
	var phase1, hnn, nnn time.Duration
	for _, lvl := range rr.Levels {
		t.Report.HHH += lvl.HHH
		t.Report.HHN += lvl.HHN
		t.Report.HNN += lvl.HNN
		phase1 += lvl.Phase1Time
		hnn += lvl.HNNTime
		nnn += lvl.NNNTime
	}
	t.Report.AddPhase(PhaseHub, phase1)
	t.Report.AddPhase(PhaseHNN, hnn)
	t.Report.AddPhase(PhaseNNN, nnn)
	if len(rr.Levels) > 0 {
		t.Report.NNN = rr.Levels[len(rr.Levels)-1].NNN
	}
	return rr.Total, nil
}

// forwardKernel builds a kernel for one Forward-family intersection
// strategy.
func forwardKernel(k baseline.Kernel) Kernel {
	return func(t *Task) (uint64, error) {
		return baseline.ForwardWithMetrics(t.Graph, t.Pool, k, t.Metrics()), nil
	}
}
