// Package engine is the execution layer between the public lotustc
// facade and the algorithm kernels. It owns the pieces every counting
// path shares so kernels stay pure:
//
//   - an algorithm registry: every LOTUS variant and baseline
//     self-registers a named kernel with capability metadata, and the
//     CLIs, the facade and the tests resolve algorithms through it
//     instead of hard-coded switches;
//   - a pipeline runner (Run) that validates inputs, binds the run to
//     a context (deadline/timeout + cooperative cancellation through
//     the scheduler), times the run, converts kernel panics to
//     errors, and returns a structured per-phase Report.
//
// Adding an algorithm is one self-registering entry in algorithms.go
// (or a Register call from any package): no switch to extend, and the
// CLIs pick the new name up automatically.
package engine

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
)

// Capabilities describe what a registered algorithm supports; the
// engine and the CLIs use them for validation and display.
type Capabilities struct {
	// SupportsWorkers marks parallel kernels that honor Spec.Workers;
	// false means the kernel is inherently sequential (it still
	// observes cancellation through the pool).
	SupportsWorkers bool
	// ReportsPhases marks kernels that populate per-phase Report
	// entries (preprocess/phase1/hnn/nnn) and the triangle-class
	// breakdown.
	ReportsPhases bool
	// NeedsSymmetric marks kernels that require a symmetric input
	// graph (all current kernels do; oriented inputs are rejected by
	// Run before the kernel sees them).
	NeedsSymmetric bool
	// Cancellable marks kernels that observe cooperative cancellation
	// (context deadline/cancel stops them at the next poll point; all
	// built-ins do).
	Cancellable bool
	// Shardable marks kernels that count over a block-partitioned
	// grid of per-shard structures and honor Params.Shards /
	// Params.PreparedGrid.
	Shardable bool
	// Streaming marks kernels whose structure family backs the
	// incremental /v1/stream sessions (streaming hub TC builds on the
	// flat LOTUS structures).
	Streaming bool
}

// Kernel executes one triangle counting algorithm against the task's
// graph and returns the total. Kernels must route parallel work
// through task.Pool (which carries the run's cancellation binding)
// and may record phase timings and class counts on task.Report.
type Kernel func(task *Task) (uint64, error)

// Registration is one registry entry.
type Registration struct {
	Name   string
	Caps   Capabilities
	Kernel Kernel
}

var registry = struct {
	sync.RWMutex
	byName map[string]Registration
	order  []string
}{byName: map[string]Registration{}}

// Register adds an algorithm under name. It fails on an empty name, a
// nil kernel, or a duplicate registration — algorithm names are a
// flat global namespace shared by every CLI flag and config surface.
func Register(name string, caps Capabilities, k Kernel) error {
	if name == "" {
		return errors.New("engine: empty algorithm name")
	}
	if k == nil {
		return fmt.Errorf("engine: nil kernel for algorithm %q", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		return fmt.Errorf("engine: algorithm %q already registered", name)
	}
	registry.byName[name] = Registration{Name: name, Caps: caps, Kernel: k}
	registry.order = append(registry.order, name)
	return nil
}

// MustRegister is Register that panics on error, for init-time
// self-registration.
func MustRegister(name string, caps Capabilities, k Kernel) {
	if err := Register(name, caps, k); err != nil {
		panic(err)
	}
}

// Lookup resolves an algorithm by name.
func Lookup(name string) (Registration, error) {
	registry.RLock()
	defer registry.RUnlock()
	r, ok := registry.byName[name]
	if !ok {
		return Registration{}, fmt.Errorf("engine: unknown algorithm %q (available: %s)",
			name, strings.Join(registry.order, ", "))
	}
	return r, nil
}

// Algorithms returns every registered algorithm name in registration
// order (the built-in order matches the paper's presentation: LOTUS
// variants first, then the §5.1.4 comparators, then the §6.1
// classics).
func Algorithms() []string {
	registry.RLock()
	defer registry.RUnlock()
	return slices.Clone(registry.order)
}

// Registrations returns every registry entry (name, capabilities,
// kernel) in registration order, for surfaces that list algorithms
// together with their capability tags.
func Registrations() []Registration {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Registration, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}
