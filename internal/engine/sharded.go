package engine

import (
	"fmt"

	"lotustc/internal/core"
	"lotustc/internal/shard"
)

// lotusShardedKernel runs the sharded 2D LOTUS path: the relabeled ID
// space is partitioned into a Params.Shards-way grid, one LOTUS
// structure is built per block, and triangles are counted by block
// triple. A Params.PreparedGrid (a serving cache hit) skips the build
// entirely. Totals and the per-class split are bit-identical to the
// "lotus" kernel's by construction — the grid shares the monolithic
// relabeling and hub set, so every triangle keeps its apex and class.
func lotusShardedKernel(t *Task) (uint64, error) {
	p := t.Params.Shards
	if p == 0 {
		p = shard.DefaultGrid
	}
	if p < 1 || p > shard.MaxGrid {
		return 0, fmt.Errorf("engine: shard grid %d out of range [1, %d]", p, shard.MaxGrid)
	}
	gr := t.Params.PreparedGrid
	if gr != nil {
		if gr.NumVertices() != t.Graph.NumVertices() {
			return 0, fmt.Errorf("engine: prepared shard grid has %d vertices, graph has %d: %w",
				gr.NumVertices(), t.Graph.NumVertices(), ErrPreparedMismatch)
		}
		if t.Params.Shards > 0 && gr.P != t.Params.Shards {
			return 0, fmt.Errorf("engine: prepared shard grid is %d-way, run asked for %d: %w",
				gr.P, t.Params.Shards, ErrPreparedMismatch)
		}
		t.Report.AddPhase(PhasePreprocess, 0)
		t.Metrics().Set("preprocess.cached", 1)
	} else {
		var err error
		gr, err = shard.Build(t.Graph, shard.Options{
			Grid:          p,
			HubCount:      t.Params.HubCount,
			FrontFraction: t.Params.FrontFraction,
			Pool:          t.Pool,
			Metrics:       t.Metrics(),
		})
		if err != nil {
			return 0, err
		}
		t.Report.AddPhase(PhasePreprocess, gr.PreprocessTime)
	}
	if err := t.Err(); err != nil {
		return 0, err
	}
	copt := shard.CountOptions{Metrics: t.Metrics()}
	var err error
	if copt.Phase1Kernel, err = core.ParsePhase1Kernel(t.Params.Phase1Kernel); err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	if copt.Intersect, err = core.ParseIntersectKernel(t.Params.IntersectKernel); err != nil {
		return 0, fmt.Errorf("engine: %w", err)
	}
	res := gr.Count(t.Pool, copt)
	t.Report.AddPhase(PhaseCount, res.CountTime)
	t.Report.HHH, t.Report.HHN, t.Report.HNN, t.Report.NNN = res.HHH, res.HHN, res.HNN, res.NNN
	return res.Total, nil
}
