package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"lotustc/internal/baseline"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
)

func TestNonHubSubgraph(t *testing.T) {
	// K6 with 2 hubs: the non-hub sub-graph is K4.
	g := gen.Complete(6)
	lg := Preprocess(g, Options{HubCount: 2, Pool: pool})
	sub := lg.NonHubSubgraph()
	if sub.NumVertices() != 4 || sub.NumEdges() != 6 {
		t.Fatalf("sub = V%d E%d, want K4", sub.NumVertices(), sub.NumEdges())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// All hubs: empty sub-graph.
	lgAll := Preprocess(g, Options{HubCount: 6, Pool: pool})
	if s := lgAll.NonHubSubgraph(); s.NumVertices() != 0 {
		t.Fatalf("all-hubs sub-graph has %d vertices", s.NumVertices())
	}
}

// mustStreaming wraps NewStreaming for tests whose hub sets are valid
// by construction.
func mustStreaming(tb testing.TB, n int, hubIDs []uint32) *Streaming {
	tb.Helper()
	s, err := NewStreaming(n, hubIDs)
	if err != nil {
		tb.Fatalf("NewStreaming(%d, %v): %v", n, hubIDs, err)
	}
	return s
}

// mustRecursive wraps CountRecursive for tests on valid graphs.
func mustRecursive(tb testing.TB, g *graph.Graph, opt RecursiveOptions) *RecursiveResult {
	tb.Helper()
	rr, err := CountRecursive(g, pool, opt)
	if err != nil {
		tb.Fatalf("CountRecursive: %v", err)
	}
	return rr
}

func TestCountRecursiveMatchesFlat(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":      gen.RMAT(gen.DefaultRMAT(10, 8, 3)),
		"chunglu":   gen.ChungLu(gen.ChungLuParams{N: 1024, M: 8192, Gamma: 2.2, Seed: 5}),
		"er":        gen.ErdosRenyi(512, 4096, 6),
		"k32":       gen.Complete(32),
		"planted":   gen.PlantedTriangles(50, 10),
		"hubspokes": gen.HubAndSpokes(16, 500, 4, 7),
	}
	for name, g := range graphs {
		want := baseline.BruteForce(g)
		for _, depth := range []int{1, 2, 3} {
			rr := mustRecursive(t, g, RecursiveOptions{
				Options:  Options{HubCount: 32},
				MaxDepth: depth, MinVertices: 16,
			})
			if rr.Total != want {
				t.Errorf("%s depth=%d: %d, want %d", name, depth, rr.Total, want)
			}
			if rr.Depth < 1 || rr.Depth > depth {
				t.Errorf("%s: reported depth %d outside [1,%d]", name, rr.Depth, depth)
			}
			if len(rr.Levels) != rr.Depth {
				t.Errorf("%s: %d levels for depth %d", name, len(rr.Levels), rr.Depth)
			}
		}
	}
}

func TestCountRecursiveActuallyRecurses(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 4))
	rr := mustRecursive(t, g, RecursiveOptions{
		Options:  Options{HubCount: 64},
		MaxDepth: 3, MinVertices: 8,
	})
	if rr.Depth < 2 {
		t.Fatalf("expected >= 2 levels on a scale-11 RMAT, got %d", rr.Depth)
	}
}

// refHubTriangles classifies every triangle of g by its hub content,
// independent of LOTUS.
func refHubTriangles(g *graph.Graph, hubSet map[uint32]bool) (hhh, hhn, hnn, nnn uint64) {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nv := g.Neighbors(uint32(v))
		for i := 0; i < len(nv); i++ {
			if nv[i] >= uint32(v) {
				break
			}
			for j := i + 1; j < len(nv); j++ {
				if nv[j] >= uint32(v) {
					break
				}
				if !g.HasEdge(nv[i], nv[j]) {
					continue
				}
				hubs := 0
				for _, x := range []uint32{uint32(v), nv[i], nv[j]} {
					if hubSet[x] {
						hubs++
					}
				}
				switch hubs {
				case 3:
					hhh++
				case 2:
					hhn++
				case 1:
					hnn++
				default:
					nnn++
				}
			}
		}
	}
	return
}

// topKHubs returns the k highest-degree vertex IDs (ties by ID).
func topKHubs(g *graph.Graph, k int) []uint32 {
	n := g.NumVertices()
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	if k > n {
		k = n
	}
	return ids[:k]
}

func TestStreamingMatchesReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":      gen.RMAT(gen.DefaultRMAT(9, 8, 8)),
		"hubspokes": gen.HubAndSpokes(8, 200, 3, 9),
		"k16":       gen.Complete(16),
		"er":        gen.ErdosRenyi(256, 1024, 10),
	}
	for name, g := range graphs {
		hubIDs := topKHubs(g, 16)
		hubSet := map[uint32]bool{}
		for _, h := range hubIDs {
			hubSet[h] = true
		}
		wantHHH, wantHHN, wantHNN, wantNNN := refHubTriangles(g, hubSet)

		s := mustStreaming(t, g.NumVertices(), hubIDs)
		s.CountNonHub = true
		edges := g.Edges()
		rng := rand.New(rand.NewSource(42))
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		var closedSum uint64
		for _, e := range edges {
			closedSum += s.AddEdge(e.U, e.V)
		}
		hhh, hhn, hnn, nnn := s.Classes()
		if hhh != wantHHH || hhn != wantHHN || hnn != wantHNN || nnn != wantNNN {
			t.Errorf("%s: streaming classes (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				name, hhh, hhn, hnn, nnn, wantHHH, wantHHN, wantHNN, wantNNN)
		}
		if closedSum != s.HubTriangles() {
			t.Errorf("%s: AddEdge returns summed to %d, HubTriangles = %d",
				name, closedSum, s.HubTriangles())
		}
		if s.Edges() != uint64(g.NumEdges()) {
			t.Errorf("%s: accepted %d edges, want %d", name, s.Edges(), g.NumEdges())
		}
	}
}

func TestStreamingIgnoresDuplicatesAndLoops(t *testing.T) {
	s := mustStreaming(t, 10, []uint32{0, 1})
	s.CountNonHub = true
	s.AddEdge(3, 3) // self loop
	if s.Edges() != 0 {
		t.Fatal("self loop accepted")
	}
	s.AddEdge(0, 1)
	s.AddEdge(1, 0) // duplicate hub-hub
	s.AddEdge(0, 5)
	s.AddEdge(5, 0) // duplicate hub-nonhub
	s.AddEdge(5, 6)
	s.AddEdge(6, 5) // duplicate nonhub-nonhub
	if s.Edges() != 3 {
		t.Fatalf("accepted %d edges, want 3", s.Edges())
	}
	// Triangle 0-1-5? edges 0-1, 0-5 present; 1-5 missing -> 0 so far.
	if s.HubTriangles() != 0 {
		t.Fatalf("premature triangles: %d", s.HubTriangles())
	}
	if closed := s.AddEdge(1, 5); closed != 1 {
		t.Fatalf("closing edge returned %d, want 1", closed)
	}
	hhh, hhn, _, _ := s.Classes()
	if hhh != 0 || hhn != 1 {
		t.Fatalf("classes (%d,%d), want (0,1)", hhh, hhn)
	}
}

func TestStreamingOrderInvariance(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		var edges []graph.Edge
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
		hubIDs := topKHubs(g, 4)
		el := g.Edges()

		run := func(shuffleSeed int64) (uint64, uint64) {
			s := mustStreaming(t, n, hubIDs)
			s.CountNonHub = true
			perm := rand.New(rand.NewSource(shuffleSeed)).Perm(len(el))
			for _, i := range perm {
				s.AddEdge(el[i].U, el[i].V)
			}
			_, _, _, nnn := s.Classes()
			return s.HubTriangles(), nnn
		}
		h1, n1 := run(1)
		h2, n2 := run(99)
		return h1 == h2 && n1 == n2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingRemoveAllReturnsToZero(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 8, 12))
	hubIDs := topKHubs(g, 8)
	s := mustStreaming(t, g.NumVertices(), hubIDs)
	s.CountNonHub = true
	edges := g.Edges()
	for _, e := range edges {
		s.AddEdge(e.U, e.V)
	}
	before := s.HubTriangles()
	if before == 0 {
		t.Skip("no hub triangles on this seed")
	}
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	var destroyed uint64
	for _, e := range edges {
		destroyed += s.RemoveEdge(e.U, e.V)
	}
	hhh, hhn, hnn, nnn := s.Classes()
	if hhh != 0 || hhn != 0 || hnn != 0 || nnn != 0 {
		t.Fatalf("residual counts after removing all edges: (%d,%d,%d,%d)", hhh, hhn, hnn, nnn)
	}
	if destroyed != before {
		t.Fatalf("destroyed %d != built %d", destroyed, before)
	}
	if s.Edges() != 0 {
		t.Fatalf("edge count %d after removing all", s.Edges())
	}
}

func TestStreamingDynamicMatchesBatch(t *testing.T) {
	// Random interleaving of inserts and deletes must leave counts
	// equal to a fresh stream of the surviving edge set.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		hubIDs := []uint32{0, 1, 2}
		s := mustStreaming(t, n, hubIDs)
		s.CountNonHub = true
		type edge struct{ u, v uint32 }
		present := map[edge]bool{}
		norm := func(u, v uint32) edge {
			if u > v {
				u, v = v, u
			}
			return edge{u, v}
		}
		for op := 0; op < 300; op++ {
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			if u == v {
				continue
			}
			e := norm(u, v)
			if rng.Intn(3) == 0 {
				s.RemoveEdge(u, v)
				delete(present, e)
			} else {
				s.AddEdge(u, v)
				present[e] = true
			}
		}
		// Replay the surviving set into a fresh counter.
		ref := mustStreaming(t, n, hubIDs)
		ref.CountNonHub = true
		for e := range present {
			ref.AddEdge(e.u, e.v)
		}
		a1, a2, a3, a4 := s.Classes()
		b1, b2, b3, b4 := ref.Classes()
		return a1 == b1 && a2 == b2 && a3 == b3 && a4 == b4 && s.Edges() == ref.Edges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingRemoveUnknownIgnored(t *testing.T) {
	s := mustStreaming(t, 6, []uint32{0})
	if s.RemoveEdge(1, 2) != 0 || s.RemoveEdge(3, 3) != 0 {
		t.Fatal("removing absent/self edge did something")
	}
	s.AddEdge(0, 1)
	s.RemoveEdge(0, 1)
	s.RemoveEdge(0, 1) // double remove
	if s.Edges() != 0 {
		t.Fatalf("edges = %d", s.Edges())
	}
}

func TestStreamingNoHubs(t *testing.T) {
	// Zero hubs: everything is NNN.
	g := gen.Complete(5)
	s := mustStreaming(t, 5, nil)
	s.CountNonHub = true
	for _, e := range g.Edges() {
		s.AddEdge(e.U, e.V)
	}
	_, _, _, nnn := s.Classes()
	if s.HubTriangles() != 0 || nnn != 10 {
		t.Fatalf("no-hub stream: hub=%d nnn=%d, want 0/10", s.HubTriangles(), nnn)
	}
}

// TestStreamingHubVertexEager: the dense-index -> vertex reverse
// table is built in NewStreaming, not lazily on the first hub-edge
// arrival (the lazy build hid an O(n) scan in the hot path and wrote
// shared state on a read-looking call).
func TestStreamingHubVertexEager(t *testing.T) {
	s := mustStreaming(t, 10, []uint32{7, 3, 9})
	if len(s.hubVertex) != 3 {
		t.Fatalf("hubVertex len %d, want 3 (built in NewStreaming)", len(s.hubVertex))
	}
	for i, want := range []uint32{7, 3, 9} {
		if got := s.hubVertexSlotInv(int32(i)); got != want {
			t.Fatalf("hubVertexSlotInv(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestStreamingSnapshotEdgesRoundTrip: replaying SnapshotEdges into a
// fresh counter with the same universe and hub order reproduces every
// class count and the memory accounting — the serialization contract
// session durability rests on.
func TestStreamingSnapshotEdgesRoundTrip(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat": gen.RMAT(gen.DefaultRMAT(9, 8, 8)),
		"er":   gen.ErdosRenyi(256, 1024, 10),
	}
	for name, g := range graphs {
		hubIDs := topKHubs(g, 16)
		s := mustStreaming(t, g.NumVertices(), hubIDs)
		s.CountNonHub = true
		edges := g.Edges()
		rng := rand.New(rand.NewSource(8))
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for i, e := range edges {
			s.AddEdge(e.U, e.V)
			if i%5 == 0 {
				s.RemoveEdge(e.U, e.V)
			}
		}

		if got := s.HubIDs(); len(got) != len(hubIDs) {
			t.Fatalf("%s: HubIDs len %d, want %d", name, len(got), len(hubIDs))
		} else {
			for i := range got {
				if got[i] != hubIDs[i] {
					t.Fatalf("%s: HubIDs[%d] = %d, want %d (dense order)", name, i, got[i], hubIDs[i])
				}
			}
		}

		snap := s.SnapshotEdges(nil)
		if uint64(len(snap)) != s.Edges() {
			t.Fatalf("%s: snapshot holds %d edges, counter reports %d", name, len(snap), s.Edges())
		}
		r := mustStreaming(t, g.NumVertices(), s.HubIDs())
		r.CountNonHub = true
		for _, e := range snap {
			r.AddEdge(e[0], e[1])
		}
		h1, n1, m1, k1 := s.Classes()
		h2, n2, m2, k2 := r.Classes()
		if h1 != h2 || n1 != n2 || m1 != m2 || k1 != k2 {
			t.Fatalf("%s: replay classes (%d,%d,%d,%d) != live (%d,%d,%d,%d)",
				name, h2, n2, m2, k2, h1, n1, m1, k1)
		}
		if r.Edges() != s.Edges() || r.MemoryBytes() != s.MemoryBytes() {
			t.Fatalf("%s: replay edges/mem %d/%d != live %d/%d",
				name, r.Edges(), r.MemoryBytes(), s.Edges(), s.MemoryBytes())
		}
		// A second snapshot of the replayed counter enumerates the same
		// edges in the same order (determinism).
		again := r.SnapshotEdges(nil)
		if len(again) != len(snap) {
			t.Fatalf("%s: second snapshot %d edges, want %d", name, len(again), len(snap))
		}
		for i := range snap {
			if snap[i] != again[i] {
				t.Fatalf("%s: snapshot order not deterministic at %d: %v vs %v", name, i, snap[i], again[i])
			}
		}
	}
}
