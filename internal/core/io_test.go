package core

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"lotustc/internal/gen"
)

func TestLotusGraphRoundTrip(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 5))
	lg := Preprocess(g, Options{HubCount: 64, Pool: pool})
	var buf bytes.Buffer
	if err := lg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lg2, err := ReadLotusGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lg2.HubCount != lg.HubCount || lg2.NumVertices() != lg.NumVertices() {
		t.Fatal("shape mismatch")
	}
	if !reflect.DeepEqual(lg2.HE.Raw(), lg.HE.Raw()) ||
		!reflect.DeepEqual(lg2.NHE.Raw(), lg.NHE.Raw()) ||
		!reflect.DeepEqual(lg2.Relabeling, lg.Relabeling) {
		t.Fatal("payload mismatch")
	}
	if lg2.H2H.PopCount() != lg.H2H.PopCount() {
		t.Fatal("H2H mismatch")
	}
	a := lg.Count(pool)
	b := lg2.Count(pool)
	if a.Total != b.Total || a.HHH != b.HHH || a.NNN != b.NNN {
		t.Fatalf("counts differ after round trip: %+v vs %+v", a, b)
	}
}

func TestLotusGraphFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.lots")
	g := gen.HubAndSpokes(8, 100, 3, 1)
	lg := Preprocess(g, Options{HubCount: 8, Pool: pool})
	if err := lg.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	lg2, err := LoadLotusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lg2.Count(pool).Total != lg.Count(pool).Total {
		t.Fatal("file round trip count mismatch")
	}
	if _, err := LoadLotusFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadLotusGraphRejectsGarbage(t *testing.T) {
	if _, err := ReadLotusGraph(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadLotusGraph(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Corrupt a valid stream byte-by-byte over the header region:
	// every mutation must produce an error, not a panic or a silently
	// invalid structure (ReadLotusGraph validates).
	g := gen.Complete(12)
	lg := Preprocess(g, Options{HubCount: 4, Pool: pool})
	var buf bytes.Buffer
	if err := lg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 0; i < 24 && i < len(data); i++ {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0xFF
		lg2, err := ReadLotusGraph(bytes.NewReader(mutated))
		if err == nil {
			// A mutation may coincidentally keep the structure valid
			// (e.g. flipping a don't-care bit); it must then count
			// consistently.
			if v := lg2.Validate(); v != nil {
				t.Fatalf("byte %d: accepted invalid structure: %v", i, v)
			}
		}
	}
}

func TestCountPerVertexSumsAndMatches(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 3))
	lg := Preprocess(g, Options{HubCount: 32, Pool: pool})
	per := lg.CountPerVertex(pool)
	var sum uint64
	for _, c := range per {
		sum += c
	}
	res := lg.Count(pool)
	if sum != 3*res.Total {
		t.Fatalf("per-vertex sum %d != 3x%d", sum, res.Total)
	}
}

func TestCountPerVertexKnown(t *testing.T) {
	// K5 with 2 hubs: every vertex sits in C(4,2) = 6 triangles.
	lg := Preprocess(gen.Complete(5), Options{HubCount: 2, Pool: pool})
	for v, c := range lg.CountPerVertex(pool) {
		if c != 6 {
			t.Fatalf("K5 vertex %d count %d, want 6", v, c)
		}
	}
	// Star: all zeros.
	lgS := Preprocess(gen.Star(20), Options{HubCount: 2, Pool: pool})
	for v, c := range lgS.CountPerVertex(pool) {
		if c != 0 {
			t.Fatalf("star vertex %d count %d", v, c)
		}
	}
}

func TestCountPerVertexMatchesOracle(t *testing.T) {
	// Compare against a brute-force per-vertex count in original IDs.
	g := gen.HubAndSpokes(6, 50, 3, 2)
	lg := Preprocess(g, Options{HubCount: 6, Pool: pool})
	per := lg.CountPerVertex(pool)
	// Map back to original IDs via the relabeling array.
	orig := make([]uint64, g.NumVertices())
	for old := 0; old < g.NumVertices(); old++ {
		orig[old] = per[lg.Relabeling[old]]
	}
	// Oracle: enumerate triangles and bump corners.
	want := make([]uint64, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		nv := g.Neighbors(uint32(v))
		for i := 0; i < len(nv); i++ {
			if nv[i] >= uint32(v) {
				break
			}
			for j := i + 1; j < len(nv); j++ {
				if nv[j] >= uint32(v) {
					break
				}
				if g.HasEdge(nv[i], nv[j]) {
					want[v]++
					want[nv[i]]++
					want[nv[j]]++
				}
			}
		}
	}
	if !reflect.DeepEqual(orig, want) {
		t.Fatal("per-vertex counts do not match oracle")
	}
}
