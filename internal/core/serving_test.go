package core

// Regression tests for the serving-path hardening: the Try* entry
// points return errors a resident service can classify, and the
// streaming counters stay consistent under concurrent polling.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"lotustc/internal/gen"
)

func TestTryPreprocessReturnsErrOriented(t *testing.T) {
	og := gen.Complete(6).Orient()
	for name, try := range map[string]func() error{
		"TryPreprocess":            func() error { _, err := TryPreprocess(og, Options{HubCount: 2}); return err },
		"TryPreprocessDirect":      func() error { _, err := TryPreprocessDirect(og, Options{HubCount: 2}); return err },
		"TryPreprocessMaterialize": func() error { _, err := TryPreprocessMaterialize(og, Options{HubCount: 2}); return err },
	} {
		err := try()
		if err == nil {
			t.Fatalf("%s accepted an oriented graph", name)
		}
		if !errors.Is(err, ErrOriented) {
			t.Fatalf("%s: error %v is not ErrOriented", name, err)
		}
	}
}

func TestTryPreprocessReturnsErrNilGraph(t *testing.T) {
	if _, err := TryPreprocess(nil, Options{}); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("TryPreprocess(nil): got %v, want ErrNilGraph", err)
	}
	if _, err := TryPreprocessDirect(nil, Options{}); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("TryPreprocessDirect(nil): got %v, want ErrNilGraph", err)
	}
}

// TestStreamingHubValidation is the satellite-2 regression: before
// validation, a hub ID >= n corrupted hubIdx indexing (panic on first
// AddEdge) and a duplicate hub silently double-counted. Both must be
// errors at construction.
func TestStreamingHubValidation(t *testing.T) {
	if _, err := NewStreaming(10, []uint32{3, 10}); err == nil {
		t.Fatal("hub ID == n accepted")
	}
	if _, err := NewStreaming(10, []uint32{3, 999}); err == nil {
		t.Fatal("hub ID far out of range accepted")
	}
	if _, err := NewStreaming(10, []uint32{3, 7, 3}); err == nil {
		t.Fatal("duplicate hub ID accepted")
	}
	if _, err := NewStreaming(-1, nil); err == nil {
		t.Fatal("negative vertex count accepted")
	}
	sc, err := NewStreaming(10, []uint32{0, 9, 5})
	if err != nil {
		t.Fatalf("valid hub set rejected: %v", err)
	}
	if sc.NumHubs() != 3 || sc.NumVertices() != 10 {
		t.Fatalf("got %d hubs over %d vertices, want 3 over 10", sc.NumHubs(), sc.NumVertices())
	}
}

// TestStreamingConcurrentPolling exercises the satellite-3 fix under
// the race detector: one writer ingests a clique edge-by-edge while
// pollers continuously read Classes, HubTriangles and Edges. Before
// the counters became atomics this was a data race (torn reads and a
// -race failure); now pollers must always observe a consistent,
// monotonically growing total.
func TestStreamingConcurrentPolling(t *testing.T) {
	const n = 24
	g := gen.Complete(n)
	hubs := make([]uint32, n/2)
	for i := range hubs {
		hubs[i] = uint32(i)
	}
	sc, err := NewStreaming(n, hubs)
	if err != nil {
		t.Fatal(err)
	}
	sc.CountNonHub = true

	var done atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastTotal uint64
			for !done.Load() {
				hhh, hhn, hnn, nnn := sc.Classes()
				total := hhh + hhn + hnn + nnn
				if total < lastTotal {
					t.Errorf("total went backwards: %d after %d", total, lastTotal)
					return
				}
				lastTotal = total
				_ = sc.HubTriangles()
				_ = sc.Edges()
			}
		}()
	}
	for _, e := range g.Edges() {
		sc.AddEdge(e.U, e.V)
	}
	done.Store(true)
	wg.Wait()

	hhh, hhn, hnn, nnn := sc.Classes()
	want := uint64(n * (n - 1) * (n - 2) / 6)
	if got := hhh + hhn + hnn + nnn; got != want {
		t.Fatalf("K%d: got %d triangles, want %d", n, got, want)
	}
	if sc.Edges() != uint64(n*(n-1)/2) {
		t.Fatalf("edge counter: got %d, want %d", sc.Edges(), n*(n-1)/2)
	}
}

// TestStreamingOutOfRangeEndpointsIgnored: endpoints beyond the
// vertex universe are dropped by ingest instead of panicking — the
// second half of the satellite-2 hardening.
func TestStreamingOutOfRangeEndpointsIgnored(t *testing.T) {
	sc, err := NewStreaming(4, []uint32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sc.CountNonHub = true
	if got := sc.AddEdge(0, 99); got != 0 {
		t.Fatalf("out-of-range AddEdge created %d triangles", got)
	}
	if got := sc.RemoveEdge(99, 0); got != 0 {
		t.Fatalf("out-of-range RemoveEdge destroyed %d triangles", got)
	}
	if sc.Edges() != 0 {
		t.Fatalf("edge counter moved to %d on ignored edges", sc.Edges())
	}
	// The universe still works normally afterwards.
	sc.AddEdge(0, 1)
	sc.AddEdge(1, 2)
	sc.AddEdge(0, 2)
	if got := sc.HubTriangles(); got != 1 {
		t.Fatalf("got %d hub triangles after forming one, want 1", got)
	}
}
