package core

import (
	"fmt"
	"slices"
	"time"

	"lotustc/internal/bitarray"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

// VertexRange is a contiguous range [Lo, Hi) of relabeled vertex IDs.
// The sharded execution path partitions the relabeled ID space into
// such ranges; because LOTUS relabeling puts all hubs at the lowest
// IDs, a range's hub part (IDs < HubCount) and non-hub part are each
// contiguous too.
type VertexRange struct {
	Lo, Hi uint32
}

// Len returns the number of vertices in the range.
func (r VertexRange) Len() int { return int(r.Hi) - int(r.Lo) }

// Contains reports whether relabeled ID v falls in the range.
func (r VertexRange) Contains(v uint32) bool { return v >= r.Lo && v < r.Hi }

// LotusShard is the LOTUS structure restricted to one vertex range of
// the relabeled ID space: the HE and NHE rows of every v in Range
// (indexed locally by v - Range.Lo) and the H2H rows of the range's
// hubs. Neighbour IDs inside rows stay global relabeled IDs — the
// same IDs the monolithic structure uses — which is what makes the
// sharded count bit-identical per class: hubness is still "ID <
// HubCount" and every triangle is attributed to the same apex row.
type LotusShard struct {
	// Range is the relabeled-ID range this shard holds rows for.
	Range VertexRange
	// HubCount is the global hub count (shared by every shard of a
	// grid; it is a property of the relabeling, not of the shard).
	HubCount uint32
	// H2H holds the hub-to-hub rows [Range.Lo, min(Range.Hi,
	// HubCount)) — the shard's slice of the monolithic bit array. The
	// per-shard hub budget: each shard pays only for its own hubs'
	// rows, so a p-way grid splits the quadratic H2H footprint across
	// p cache-sized slices.
	H2H *bitarray.TriRows
	// HE and NHE hold the hub-/non-hub-neighbour rows of the range's
	// vertices, locally indexed (row v lives at v - Range.Lo).
	HE  *HE16
	NHE *NHE32
	// PreprocessTime is the wall time of this shard's build.
	PreprocessTime time.Duration

	numVertices int // global |V|, for cross-checks
}

// NumVertices returns the global vertex count of the graph the shard
// was built from.
func (s *LotusShard) NumVertices() int { return s.numVertices }

// HENeighbors returns v's hub-neighbour list (ascending, global IDs).
// v must be in Range.
func (s *LotusShard) HENeighbors(v uint32) []uint16 { return s.HE.Neighbors(v - s.Range.Lo) }

// NHENeighbors returns v's non-hub-neighbour list (ascending, global
// IDs). v must be in Range.
func (s *LotusShard) NHENeighbors(v uint32) []uint32 { return s.NHE.Neighbors(v - s.Range.Lo) }

// H2HRow returns the probe cursor for hub row h1, which must satisfy
// Range.Lo <= h1 < min(Range.Hi, HubCount).
func (s *LotusShard) H2HRow(h1 uint32) bitarray.RowProbe { return s.H2H.Row(h1) }

// TopologyBytes returns the shard's structure footprint under the
// Table 7 accounting: two 8-byte index arrays over the local rows,
// the H2H slice, 2 bytes per HE edge and 4 per NHE edge.
func (s *LotusShard) TopologyBytes() int64 {
	idx := 2 * 8 * int64(s.Range.Len()+1)
	return idx + s.H2H.SizeBytes() + 2*s.HE.NumEdges() + 4*s.NHE.NumEdges()
}

// TryPreprocessRange builds the LOTUS structure restricted to the
// vertex range r, given the global relabeling ra (as produced by
// reorder.Lotus with the same Options — the caller owns computing it
// once and sharing it across a grid's shards). It is Algorithm 2 with
// the row writes filtered to vNew in [r.Lo, r.Hi): the same two-pass
// walk over the original vertices, the same hub/non-hub split, the
// same per-row sort, so each shard row is byte-identical to the
// corresponding monolithic row.
func TryPreprocessRange(g *graph.Graph, opt Options, ra []uint32, r VertexRange) (*LotusShard, error) {
	if err := checkPreprocessInput(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if len(ra) != n {
		return nil, fmt.Errorf("core: relabeling has %d entries for %d vertices", len(ra), n)
	}
	if r.Lo > r.Hi || int(r.Hi) > n {
		return nil, fmt.Errorf("core: vertex range [%d, %d) out of bounds for %d vertices", r.Lo, r.Hi, n)
	}
	t0 := time.Now()
	pool := opt.Pool
	if pool == nil {
		pool = sched.NewPool(0)
	}
	hubCount := uint32(opt.EffectiveHubCount(n))
	m := r.Len()

	// Pass 1: per-local-row HE and NHE degrees. The walk still visits
	// every original vertex — the relabeling scatters a range's rows
	// across the whole original ID space — but only in-range rows
	// count.
	heCnt := make([]int64, m+1)
	nheCnt := make([]int64, m+1)
	pool.For(n, 0, func(_, start, end int) {
		for vOld := start; vOld < end; vOld++ {
			if pool.Cancelled() {
				return
			}
			vNew := ra[vOld]
			if !r.Contains(vNew) {
				continue
			}
			var he, nhe int64
			for _, uOld := range g.Neighbors(uint32(vOld)) {
				uNew := ra[uOld]
				if uNew >= vNew {
					continue
				}
				if uNew < hubCount {
					he++
				} else {
					nhe++
				}
			}
			heCnt[vNew-r.Lo+1] = he
			nheCnt[vNew-r.Lo+1] = nhe
		}
	})
	for v := 0; v < m; v++ {
		heCnt[v+1] += heCnt[v]
		nheCnt[v+1] += nheCnt[v]
	}
	he := &HE16{offsets: heCnt, nbrs: make([]uint16, heCnt[m])}
	nhe := &NHE32{offsets: nheCnt, nbrs: make([]uint32, nheCnt[m])}
	hubHi := min(r.Hi, hubCount)
	h2h := bitarray.NewTriRows(min(r.Lo, hubHi), hubHi)

	// Pass 2: fill, set the shard's H2H rows, sort each row.
	pool.For(n, 0, func(_, start, end int) {
		for vOld := start; vOld < end; vOld++ {
			if pool.Cancelled() {
				return
			}
			vNew := ra[vOld]
			if !r.Contains(vNew) {
				continue
			}
			local := vNew - r.Lo
			hw := he.offsets[local]
			nw := nhe.offsets[local]
			for _, uOld := range g.Neighbors(uint32(vOld)) {
				uNew := ra[uOld]
				if uNew >= vNew {
					continue
				}
				if uNew < hubCount {
					he.nbrs[hw] = uint16(uNew)
					hw++
					if vNew < hubCount {
						h2h.Set(vNew, uNew)
					}
				} else {
					nhe.nbrs[nw] = uNew
					nw++
				}
			}
			slices.Sort(he.nbrs[he.offsets[local]:hw])
			slices.Sort(nhe.nbrs[nhe.offsets[local]:nw])
		}
	})

	return &LotusShard{
		Range:          r,
		HubCount:       hubCount,
		H2H:            h2h,
		HE:             he,
		NHE:            nhe,
		PreprocessTime: time.Since(t0),
		numVertices:    n,
	}, nil
}

// Validate checks the shard's structural invariants: sorted rows, ID
// ranges consistent with the shard's range and the global hub count,
// hub rows with empty NHE, and the H2H slice agreeing with the HE
// rows of the range's hubs. Intended for tests.
func (s *LotusShard) Validate() error {
	if s.Range.Lo > s.Range.Hi {
		return fmt.Errorf("shard range [%d, %d) inverted", s.Range.Lo, s.Range.Hi)
	}
	for v := s.Range.Lo; v < s.Range.Hi; v++ {
		henb := s.HENeighbors(v)
		for i, h := range henb {
			if uint32(h) >= s.HubCount || uint32(h) >= v {
				return fmt.Errorf("vertex %d: HE neighbour %d out of range", v, h)
			}
			if i > 0 && henb[i-1] >= h {
				return fmt.Errorf("vertex %d: HE unsorted", v)
			}
			if v < s.HubCount && !s.H2H.IsSet(v, uint32(h)) {
				return fmt.Errorf("H2H missing hub edge (%d,%d)", v, h)
			}
		}
		nhenb := s.NHENeighbors(v)
		if v < s.HubCount && len(nhenb) != 0 {
			return fmt.Errorf("hub %d has non-empty NHE row", v)
		}
		for i, u := range nhenb {
			if u < s.HubCount || u >= v {
				return fmt.Errorf("vertex %d: NHE neighbour %d out of range", v, u)
			}
			if i > 0 && nhenb[i-1] >= u {
				return fmt.Errorf("vertex %d: NHE unsorted", v)
			}
		}
	}
	var hubEdges uint64
	for v := s.H2H.Lo(); v < s.H2H.Hi(); v++ {
		hubEdges += uint64(s.HE.Degree(v - s.Range.Lo))
	}
	if got := s.H2H.PopCount(); got != hubEdges {
		return fmt.Errorf("H2H popcount %d != hub-to-hub edge count %d", got, hubEdges)
	}
	return nil
}
