package core

import (
	"math"
	"time"

	"lotustc/internal/intersect"
	"lotustc/internal/obs"
	"lotustc/internal/sched"
)

// Partitioner selects the load-balancing policy for the quadratic
// HHH/HHN phase (§4.6, Table 9).
type Partitioner int

const (
	// SquaredEdgeTiling splits a high-degree vertex's pair work at
	// boundaries i_k ≈ d·sqrt(k/p), equalizing work complexity.
	SquaredEdgeTiling Partitioner = iota
	// EdgeBalanced splits a high-degree vertex's neighbours into
	// equal-count ranges, the [67]/[79] policy the paper compares
	// against; tiles near the end of the list carry quadratically
	// more work.
	EdgeBalanced
)

// String names the partitioner.
func (p Partitioner) String() string {
	if p == SquaredEdgeTiling {
		return "squared-edge-tiling"
	}
	return "edge-balanced"
}

// CountOptions tune the counting phases.
type CountOptions struct {
	// Partitioner for phase 1 (default SquaredEdgeTiling).
	Partitioner Partitioner
	// TileThreshold: vertices with more than this many hub
	// neighbours are tiled (paper: 512).
	TileThreshold int
	// TilesPerVertex: number of partitions per tiled vertex
	// (paper: 2 × #threads). Zero picks 2 × pool workers. For the
	// EdgeBalanced policy the paper uses 256 × #threads partitions
	// across all edges; we apply the same per-vertex tile count for
	// a like-for-like comparison and report idle time.
	TilesPerVertex int
	// FuseHNNAndNNN runs the HNN and NNN loops fused in a single
	// traversal of NHE — the alternative §4.5 argues against;
	// exposed for the ablation benchmark.
	FuseHNNAndNNN bool
	// WorkStealing schedules the phase-1 tiles on per-worker
	// Chase-Lev deques with stealing (the paper's runtime model,
	// §5.1.3) instead of the shared-counter self-scheduler. Results
	// are identical; only the scheduling differs.
	WorkStealing bool
	// HNNBlocks > 0 enables the §7 future-work blocking for the HNN
	// phase: the non-hub ID range is split into that many blocks and
	// the NHE sub-graph is traversed once per block, intersecting
	// only with neighbours u inside the block. The random HE-row
	// accesses of each pass are then confined to one block's rows,
	// shrinking the randomly-accessed working set at the cost of
	// re-streaming NHE per block.
	HNNBlocks int
	// SkipNNN suppresses phase 3. CountRecursive replaces it with a
	// recursive LOTUS split of the non-hub sub-graph; the approx
	// package replaces it with sampling (§6.2).
	SkipNNN bool
	// Phase1Kernel selects the H2H probe strategy for phase 1:
	// per-row auto dispatch (default), always-scalar bit probes, or
	// always the word-parallel bitmap kernel. All three produce
	// bit-identical HHH/HHN counts.
	Phase1Kernel Phase1Kernel
	// Intersect selects the HNN/NNN intersection strategy: adaptive
	// merge-vs-galloping dispatch (default) or unconditional merge
	// join (the ablation baseline).
	Intersect IntersectKernel
	// Metrics, when non-nil, receives the per-phase observability
	// counters (phase timings, tile/probe/intersection counts,
	// scheduler claims and steals, cancellation polls — names in
	// DESIGN.md). Counts are accumulated worker-locally and published
	// in bulk at phase boundaries, so a nil Metrics costs nothing on
	// the hot path.
	Metrics *obs.Metrics
	// Scratch, when non-nil, supplies reusable per-worker kernel
	// scratch so a resident service's warm counts stop allocating
	// phase-1 hub bitmaps per request. One CountScratch must never be
	// used by two concurrent counts; sequential reuse across graphs
	// and hub counts is fine (the slabs regrow on demand).
	Scratch *CountScratch
}

// CountScratch holds reusable per-worker kernel scratch across
// sequential counts. The zero value is ready to use.
type CountScratch struct {
	phase1  *sched.WorkerLocal[phase1Scratch]
	workers int
	bmWords int
}

// NewCountScratch returns an empty scratch set; slabs materialize on
// first use and are reused while the worker count and hub-bitmap
// width keep fitting.
func NewCountScratch() *CountScratch { return &CountScratch{} }

// phase1Local returns per-worker phase-1 scratch for (workers,
// bmWords), recycling the previous count's bitmaps when the worker
// count matches and the slabs are wide enough. The kernel's bitmap
// invariant (cleared after every tile) makes stale contents harmless.
func (s *CountScratch) phase1Local(workers, bmWords int) *sched.WorkerLocal[phase1Scratch] {
	if s.phase1 == nil || workers != s.workers || bmWords > s.bmWords {
		width := bmWords
		s.phase1 = sched.NewWorkerLocal(workers, func() *phase1Scratch {
			return &phase1Scratch{bm: make([]uint64, width)}
		})
		s.workers, s.bmWords = workers, bmWords
	}
	return s.phase1
}

// DefaultTileThreshold is the paper's tiling cutoff (§5.8).
const DefaultTileThreshold = 512

// Result carries the totals, the per-class breakdown (Fig 7) and the
// per-phase timing (Fig 6) and load reports (Table 9) of one count.
type Result struct {
	Total uint64
	// Triangle classes (§4.1).
	HHH, HHN, HNN, NNN uint64
	// Phase wall times (preprocessing time lives on the LotusGraph).
	Phase1Time, HNNTime, NNNTime time.Duration
	// Load reports for the three phases.
	Phase1Load, HNNLoad, NNNLoad sched.LoadReport
}

// HubTriangles returns the triangles containing at least one hub.
func (r *Result) HubTriangles() uint64 { return r.HHH + r.HHN + r.HNN }

// Count runs Algorithm 3 with default options.
func (lg *LotusGraph) Count(pool *sched.Pool) *Result {
	return lg.CountWithOptions(pool, CountOptions{})
}

// CountWithOptions runs Algorithm 3: phase 1 counts HHH and HHN
// triangles against the H2H bit array, phase 2 counts HNN triangles
// by intersecting 16-bit HE rows, and phase 3 counts NNN triangles by
// intersecting NHE rows with merge join.
func (lg *LotusGraph) CountWithOptions(pool *sched.Pool, opt CountOptions) *Result {
	if pool == nil {
		pool = sched.NewPool(0)
	}
	if opt.TileThreshold <= 0 {
		opt.TileThreshold = DefaultTileThreshold
	}
	if opt.TilesPerVertex <= 0 {
		opt.TilesPerVertex = 2 * pool.Workers()
	}
	res := &Result{}
	m := opt.Metrics

	t0 := time.Now()
	res.Phase1Load = lg.countPhase1(pool, opt, res)
	res.Phase1Time = time.Since(t0)
	m.AddDuration("phase1.ns", res.Phase1Time)
	m.Add("phase1.claims", res.Phase1Load.Claims)
	m.Add("phase1.steals", res.Phase1Load.Steals)
	if pool.Cancelled() {
		// The run is being torn down: skip the remaining phases; the
		// engine discards the partial result.
		return res
	}

	switch {
	case opt.SkipNNN:
		t1 := time.Now()
		res.HNNLoad = lg.countHNN(pool, res, opt)
		res.HNNTime = time.Since(t1)
		m.Add("hnn.claims", res.HNNLoad.Claims)
	case opt.FuseHNNAndNNN:
		t1 := time.Now()
		res.HNNLoad = lg.countFused(pool, res, opt)
		d := time.Since(t1)
		res.HNNTime, res.NNNTime = d/2, d/2
		res.NNNLoad = res.HNNLoad
		// One fused region: its claims are attributed to HNN only.
		m.Add("hnn.claims", res.HNNLoad.Claims)
	default:
		t1 := time.Now()
		if opt.HNNBlocks > 1 {
			res.HNNLoad = lg.countHNNBlocked(pool, res, opt)
		} else {
			res.HNNLoad = lg.countHNN(pool, res, opt)
		}
		res.HNNTime = time.Since(t1)
		m.Add("hnn.claims", res.HNNLoad.Claims)
		if pool.Cancelled() {
			return res
		}

		t2 := time.Now()
		res.NNNLoad = lg.countNNN(pool, res, opt)
		res.NNNTime = time.Since(t2)
		m.Add("nnn.claims", res.NNNLoad.Claims)
	}
	m.AddDuration("hnn.ns", res.HNNTime)
	m.AddDuration("nnn.ns", res.NNNTime)

	res.Total = res.HHH + res.HHN + res.HNN + res.NNN
	return res
}

// tile is one unit of phase-1 work: either a contiguous vertex range
// [vStart, vEnd) processed whole, or (when vEnd == 0 and hi > 0) the
// pair sub-range [lo, hi) of vertex vStart's hub-neighbour indices.
type tile struct {
	vStart, vEnd uint32
	lo, hi       uint32
}

// phase1Tiles builds the phase-1 task list. High-degree vertices
// (HE degree > threshold) become TilesPerVertex pair tiles under the
// selected policy; the remaining vertices are grouped into ranges of
// roughly equal pair work.
func (lg *LotusGraph) phase1Tiles(opt CountOptions, workers int) []tile {
	n := lg.numVertices
	var tiles []tile
	// Sqrt(k/p) boundaries are shared across vertices (§4.6: values
	// of sqrt(f) are pre-calculated and reused).
	p := opt.TilesPerVertex
	sqrtF := make([]float64, p+1)
	for k := 0; k <= p; k++ {
		sqrtF[k] = math.Sqrt(float64(k) / float64(p))
	}

	var totalSmallWork uint64
	for v := 0; v < n; v++ {
		d := lg.HE.Degree(uint32(v))
		if d <= opt.TileThreshold {
			totalSmallWork += uint64(d) * uint64(d-1) / 2
		}
	}
	budget := totalSmallWork/uint64(workers*16) + 1

	var rangeStart int
	var rangeWork uint64
	flush := func(endExclusive int) {
		if rangeStart < endExclusive {
			tiles = append(tiles, tile{vStart: uint32(rangeStart), vEnd: uint32(endExclusive)})
		}
		rangeStart = endExclusive
		rangeWork = 0
	}
	for v := 0; v < n; v++ {
		d := lg.HE.Degree(uint32(v))
		if d > opt.TileThreshold {
			flush(v)
			rangeStart = v + 1
			for k := 0; k < p; k++ {
				var lo, hi uint32
				switch opt.Partitioner {
				case SquaredEdgeTiling:
					lo = uint32(float64(d) * sqrtF[k])
					hi = uint32(float64(d) * sqrtF[k+1])
				case EdgeBalanced:
					lo = uint32(d * k / p)
					hi = uint32(d * (k + 1) / p)
				}
				if k == p-1 {
					hi = uint32(d)
				}
				if hi > lo {
					tiles = append(tiles, tile{vStart: uint32(v), lo: lo, hi: hi})
				}
			}
			continue
		}
		rangeWork += uint64(d) * uint64(d-1) / 2
		if rangeWork >= budget {
			flush(v + 1)
		}
	}
	flush(n)
	return tiles
}

// Phase1TileWork returns the pair-work (number of H2H probes) of
// every phase-1 tile the given options would produce. The Table 9
// experiment feeds this into a list-scheduling simulation to compute
// idle time at arbitrary thread counts, independent of the physical
// core count of the host.
func (lg *LotusGraph) Phase1TileWork(opt CountOptions, workers int) []uint64 {
	if opt.TileThreshold <= 0 {
		opt.TileThreshold = DefaultTileThreshold
	}
	if opt.TilesPerVertex <= 0 {
		opt.TilesPerVertex = 2 * workers
	}
	tiles := lg.phase1Tiles(opt, workers)
	work := make([]uint64, len(tiles))
	for i, t := range tiles {
		if t.vEnd > 0 {
			var sum uint64
			for v := t.vStart; v < t.vEnd; v++ {
				d := uint64(lg.HE.Degree(v))
				sum += d * (d - 1) / 2
			}
			work[i] = sum
		} else {
			lo, hi := uint64(t.lo), uint64(t.hi)
			// Pair work of h1 index i is i; sum over [lo, hi).
			work[i] = (hi*(hi-1) - lo*(lo-1)) / 2
		}
	}
	return work
}

// phase1Stats carries one tile's worker-local observability counts.
type phase1Stats struct {
	pairs, rows, wordOps, wordRows, scalarRows uint64
}

// countPhase1 counts HHH and HHN triangles (Alg 3 lines 2-6): for
// every vertex, every pair (h1, h2) of its hub neighbours is probed
// in the H2H bit array. Random accesses touch only H2H (§4.5).
//
// Two kernels implement the probe. The scalar kernel tests each
// (h1, h2) pair as one IsSet bit probe — O(d²) dependent loads per
// vertex. The word kernel populates a per-worker bitmap with the
// vertex's hub neighbours once, then intersects each h1 row (read
// word-wise, masked to h2 < h1) against it with AND+popcount —
// O(d·h1/64) word ops. Both are bit-identical: HE rows are strictly
// ascending, so {nv[j] : j < i} is exactly {h ∈ nv : h < nv[i]}, the
// set the row mask keeps. Phase1Auto chooses per row.
func (lg *LotusGraph) countPhase1(pool *sched.Pool, opt CountOptions, res *Result) sched.LoadReport {
	tiles := lg.phase1Tiles(opt, pool.Workers())
	hhh := sched.NewAccumulator(pool.Workers())
	hhn := sched.NewAccumulator(pool.Workers())
	// Observability counters, accumulated worker-locally like the
	// triangle counts: H2H probes (pair tests), cancellation polls,
	// and the word-kernel op/row-routing counts.
	probes := sched.NewAccumulator(pool.Workers())
	polls := sched.NewAccumulator(pool.Workers())
	wordOps := sched.NewAccumulator(pool.Workers())
	wordRows := sched.NewAccumulator(pool.Workers())
	scalarRows := sched.NewAccumulator(pool.Workers())

	bmWords := (int(lg.HubCount) + 63) / 64
	var scratch *sched.WorkerLocal[phase1Scratch]
	if opt.Scratch != nil {
		scratch = opt.Scratch.phase1Local(pool.Workers(), bmWords)
	} else {
		scratch = sched.NewWorkerLocal(pool.Workers(), func() *phase1Scratch {
			return &phase1Scratch{bm: make([]uint64, bmWords)}
		})
	}
	kernel := opt.Phase1Kernel

	processPairs := func(s *phase1Scratch, v uint32, lo, hi uint32) (found uint64, st phase1Stats) {
		nv := lg.HE.Neighbors(v)
		// The bitmap is populated lazily, on the first row routed to
		// the word kernel, and holds ALL of nv: rows masked to
		// h2 < h1 then see exactly the prefix nv[:i].
		populated := false
		bm := s.bm
		for i := int(lo); i < int(hi); i++ {
			// Pair tiles of extreme-degree vertices are the largest
			// indivisible units of phase 1, so cancellation is polled
			// per h1 row to keep the response bounded by one row scan.
			st.rows++
			if pool.Cancelled() {
				break
			}
			h1 := uint32(nv[i])
			// The h1(h1-1)/2 base is computed once per h1 and the
			// row is scanned for consecutive h2 (§4.4.1).
			row := lg.H2H.Row(h1)
			if kernel == Phase1Word || (kernel == Phase1Auto && wordRowThreshold(i, h1)) {
				if !populated {
					for _, h := range nv {
						bm[h>>6] |= 1 << (h & 63)
					}
					populated = true
				}
				found += row.AndCount(bm)
				st.wordOps += uint64(row.NumWords())
				st.wordRows++
			} else {
				for j := 0; j < i; j++ {
					if row.IsSet(uint32(nv[j])) {
						found++
					}
				}
				st.scalarRows++
			}
			st.pairs += uint64(i)
		}
		// Clear on every exit, including the cancellation break: the
		// worker's next vertex reuses the bitmap. Only words holding
		// nv bits were touched, so re-walking nv clears everything.
		if populated {
			for _, h := range nv {
				bm[h>>6] = 0
			}
		}
		return found, st
	}

	runTasks := pool.RunTasks
	if opt.WorkStealing {
		runTasks = pool.Stealing().RunTasks
	}
	report := runTasks(len(tiles), func(worker, ti int) {
		t := tiles[ti]
		s := scratch.Get(worker)
		var localHHH, localHHN, localPolls uint64
		var localStats phase1Stats
		if t.vEnd > 0 { // vertex-range tile
			for v := t.vStart; v < t.vEnd; v++ {
				localPolls++
				if pool.Cancelled() {
					break
				}
				d := lg.HE.Degree(v)
				if d < 2 {
					continue
				}
				found, st := processPairs(s, v, 1, uint32(d))
				localStats.pairs += st.pairs
				localStats.wordOps += st.wordOps
				localStats.wordRows += st.wordRows
				localStats.scalarRows += st.scalarRows
				localPolls += st.rows
				if v < lg.HubCount {
					localHHH += found
				} else {
					localHHN += found
				}
			}
		} else { // pair tile of a single high-degree vertex
			lo := t.lo
			if lo < 1 {
				lo = 1
			}
			found, st := processPairs(s, t.vStart, lo, t.hi)
			localStats = st
			localPolls += st.rows
			if t.vStart < lg.HubCount {
				localHHH += found
			} else {
				localHHN += found
			}
		}
		hhh.Add(worker, localHHH)
		hhn.Add(worker, localHHN)
		probes.Add(worker, localStats.pairs)
		polls.Add(worker, localPolls)
		wordOps.Add(worker, localStats.wordOps)
		wordRows.Add(worker, localStats.wordRows)
		scalarRows.Add(worker, localStats.scalarRows)
	})
	res.HHH = hhh.Sum()
	res.HHN = hhn.Sum()
	opt.Metrics.Add("phase1.tiles", int64(len(tiles)))
	opt.Metrics.Add("phase1.h2h_probes", int64(probes.Sum()))
	opt.Metrics.Add("phase1.polls", int64(polls.Sum()))
	opt.Metrics.Add(obs.Phase1WordOps, int64(wordOps.Sum()))
	opt.Metrics.Add(obs.Phase1RowsWord, int64(wordRows.Sum()))
	opt.Metrics.Add(obs.Phase1RowsScalar, int64(scalarRows.Sum()))
	return report
}

// countHNN counts HNN triangles (Alg 3 lines 7-9): for every non-hub
// v and non-hub neighbour u, the common hub neighbours |HE.N_v ∩
// HE.N_u| each close a triangle. Random accesses touch only HE rows,
// 2 bytes per edge (§4.5, Table 2). With IntersectAdaptive (the
// default) each row pair is dispatched to merge join or galloping
// search by size ratio; the dispatch split is counted per branch so
// the obs report shows what the heuristic chose.
func (lg *LotusGraph) countHNN(pool *sched.Pool, res *Result, opt CountOptions) sched.LoadReport {
	m := opt.Metrics
	adaptive := opt.Intersect == IntersectAdaptive
	n := lg.numVertices
	acc := sched.NewAccumulator(pool.Workers())
	inter := sched.NewAccumulator(pool.Workers())
	polls := sched.NewAccumulator(pool.Workers())
	gallops := sched.NewAccumulator(pool.Workers())
	rep := pool.ForTimed(n, 0, func(worker, start, end int) {
		var local, localInter, localPolls, localGallops uint64
		for v := start; v < end; v++ {
			localPolls++
			if pool.Cancelled() {
				break
			}
			hv := lg.HE.Neighbors(uint32(v))
			if len(hv) == 0 {
				continue
			}
			nhe := lg.NHE.Neighbors(uint32(v))
			localInter += uint64(len(nhe))
			for _, u := range nhe {
				hu := lg.HE.Neighbors(u)
				if adaptive && intersect.UseGalloping(len(hv), len(hu)) {
					local += intersect.Galloping16(hv, hu)
					localGallops++
				} else {
					local += intersect.Merge16(hv, hu)
				}
			}
		}
		acc.Add(worker, local)
		inter.Add(worker, localInter)
		polls.Add(worker, localPolls)
		gallops.Add(worker, localGallops)
	})
	res.HNN = acc.Sum()
	m.Add("hnn.he_intersections", int64(inter.Sum()))
	m.Add("hnn.polls", int64(polls.Sum()))
	m.Add(obs.HNNDispatchGallop, int64(gallops.Sum()))
	m.Add(obs.HNNDispatchMerge, int64(inter.Sum()-gallops.Sum()))
	return rep
}

// countHNNBlocked is countHNN with the §7 blocking strategy: the
// non-hub ID space is cut into `blocks` contiguous ranges, and each
// range gets its own NHE traversal that intersects only with
// neighbours u inside the range, confining the random HE.N_u loads
// of a pass to that range's rows. NHE neighbour lists are sorted, so
// each pass visits a contiguous sub-list located by binary search.
func (lg *LotusGraph) countHNNBlocked(pool *sched.Pool, res *Result, opt CountOptions) sched.LoadReport {
	m := opt.Metrics
	blocks := opt.HNNBlocks
	adaptive := opt.Intersect == IntersectAdaptive
	n := lg.numVertices
	hub := int(lg.HubCount)
	nonHubs := n - hub
	if nonHubs <= 0 {
		res.HNN = 0
		return sched.LoadReport{}
	}
	acc := sched.NewAccumulator(pool.Workers())
	inter := sched.NewAccumulator(pool.Workers())
	polls := sched.NewAccumulator(pool.Workers())
	gallops := sched.NewAccumulator(pool.Workers())
	var total sched.LoadReport
	for b := 0; b < blocks && !pool.Cancelled(); b++ {
		lo := uint32(hub + b*nonHubs/blocks)
		hi := uint32(hub + (b+1)*nonHubs/blocks)
		rep := pool.ForTimed(n, 0, func(worker, start, end int) {
			var local, localInter, localPolls, localGallops uint64
			for v := start; v < end; v++ {
				localPolls++
				if pool.Cancelled() {
					break
				}
				hv := lg.HE.Neighbors(uint32(v))
				if len(hv) == 0 {
					continue
				}
				nhe := lg.NHE.Neighbors(uint32(v))
				// Sub-list of neighbours inside [lo, hi), located with
				// the branch-free search (a closure-based sort.Search
				// here costs two indirect calls per vertex per block).
				a := intersect.LowerBound(nhe, lo)
				bnd := a + intersect.LowerBound(nhe[a:], hi)
				localInter += uint64(bnd - a)
				for _, u := range nhe[a:bnd] {
					hu := lg.HE.Neighbors(u)
					if adaptive && intersect.UseGalloping(len(hv), len(hu)) {
						local += intersect.Galloping16(hv, hu)
						localGallops++
					} else {
						local += intersect.Merge16(hv, hu)
					}
				}
			}
			acc.Add(worker, local)
			inter.Add(worker, localInter)
			polls.Add(worker, localPolls)
			gallops.Add(worker, localGallops)
		})
		total.Wall += rep.Wall
		total.Claims += rep.Claims
		total.Steals += rep.Steals
		if total.Busy == nil {
			total.Busy = append([]time.Duration(nil), rep.Busy...)
		} else {
			for i := range rep.Busy {
				total.Busy[i] += rep.Busy[i]
			}
		}
	}
	res.HNN = acc.Sum()
	m.Add("hnn.he_intersections", int64(inter.Sum()))
	m.Add("hnn.polls", int64(polls.Sum()))
	m.Add("hnn.blocks", int64(blocks))
	m.Add(obs.HNNDispatchGallop, int64(gallops.Sum()))
	m.Add(obs.HNNDispatchMerge, int64(inter.Sum()-gallops.Sum()))
	return total
}

// countNNN counts NNN triangles (Alg 3 lines 10-12): the Forward
// algorithm restricted to the NHE sub-graph, with merge join
// (§4.4.3). Hub edges are never touched — the §3.3 pruning.
func (lg *LotusGraph) countNNN(pool *sched.Pool, res *Result, opt CountOptions) sched.LoadReport {
	m := opt.Metrics
	adaptive := opt.Intersect == IntersectAdaptive
	n := lg.numVertices
	acc := sched.NewAccumulator(pool.Workers())
	inter := sched.NewAccumulator(pool.Workers())
	polls := sched.NewAccumulator(pool.Workers())
	gallops := sched.NewAccumulator(pool.Workers())
	rep := pool.ForTimed(n, 0, func(worker, start, end int) {
		var local, localInter, localPolls, localGallops uint64
		for v := start; v < end; v++ {
			localPolls++
			if pool.Cancelled() {
				break
			}
			nv := lg.NHE.Neighbors(uint32(v))
			if len(nv) < 1 {
				continue
			}
			localInter += uint64(len(nv))
			for _, u := range nv {
				nu := lg.NHE.Neighbors(u)
				if adaptive && intersect.UseGalloping(len(nv), len(nu)) {
					local += intersect.Galloping(nv, nu)
					localGallops++
				} else {
					local += intersect.Merge(nv, nu)
				}
			}
		}
		acc.Add(worker, local)
		inter.Add(worker, localInter)
		polls.Add(worker, localPolls)
		gallops.Add(worker, localGallops)
	})
	res.NNN = acc.Sum()
	m.Add("nnn.nhe_intersections", int64(inter.Sum()))
	m.Add("nnn.polls", int64(polls.Sum()))
	m.Add(obs.NNNDispatchGallop, int64(gallops.Sum()))
	m.Add(obs.NNNDispatchMerge, int64(inter.Sum()-gallops.Sum()))
	return rep
}

// countFused runs the HNN and NNN intersections inside one traversal
// of NHE — the loop fusion §4.5 rejects because it enlarges the
// working set of randomly accessed data. Kept for the ablation bench.
func (lg *LotusGraph) countFused(pool *sched.Pool, res *Result, opt CountOptions) sched.LoadReport {
	m := opt.Metrics
	adaptive := opt.Intersect == IntersectAdaptive
	n := lg.numVertices
	hnn := sched.NewAccumulator(pool.Workers())
	nnn := sched.NewAccumulator(pool.Workers())
	inter := sched.NewAccumulator(pool.Workers())
	polls := sched.NewAccumulator(pool.Workers())
	hnnGallops := sched.NewAccumulator(pool.Workers())
	nnnGallops := sched.NewAccumulator(pool.Workers())
	hnnInter := sched.NewAccumulator(pool.Workers())
	rep := pool.ForTimed(n, 0, func(worker, start, end int) {
		var localHNN, localNNN, localInter, localPolls uint64
		var localHNNGallops, localNNNGallops, localHNNInter uint64
		for v := start; v < end; v++ {
			localPolls++
			if pool.Cancelled() {
				break
			}
			nv := lg.NHE.Neighbors(uint32(v))
			hv := lg.HE.Neighbors(uint32(v))
			localInter += uint64(len(nv))
			for _, u := range nv {
				if len(hv) > 0 {
					hu := lg.HE.Neighbors(u)
					localHNNInter++
					if adaptive && intersect.UseGalloping(len(hv), len(hu)) {
						localHNN += intersect.Galloping16(hv, hu)
						localHNNGallops++
					} else {
						localHNN += intersect.Merge16(hv, hu)
					}
				}
				nu := lg.NHE.Neighbors(u)
				if adaptive && intersect.UseGalloping(len(nv), len(nu)) {
					localNNN += intersect.Galloping(nv, nu)
					localNNNGallops++
				} else {
					localNNN += intersect.Merge(nv, nu)
				}
			}
		}
		hnn.Add(worker, localHNN)
		nnn.Add(worker, localNNN)
		inter.Add(worker, localInter)
		polls.Add(worker, localPolls)
		hnnGallops.Add(worker, localHNNGallops)
		nnnGallops.Add(worker, localNNNGallops)
		hnnInter.Add(worker, localHNNInter)
	})
	res.HNN = hnn.Sum()
	res.NNN = nnn.Sum()
	m.Add("hnn.he_intersections", int64(inter.Sum()))
	m.Add("nnn.nhe_intersections", int64(inter.Sum()))
	m.Add("hnn.polls", int64(polls.Sum()))
	m.Add(obs.HNNDispatchGallop, int64(hnnGallops.Sum()))
	m.Add(obs.HNNDispatchMerge, int64(hnnInter.Sum()-hnnGallops.Sum()))
	m.Add(obs.NNNDispatchGallop, int64(nnnGallops.Sum()))
	m.Add(obs.NNNDispatchMerge, int64(inter.Sum()-nnnGallops.Sum()))
	return rep
}
