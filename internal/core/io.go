package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"lotustc/internal/bitarray"
)

// LotusGraph binary format ("LOTS"): preprocessing averages ~20% of
// end-to-end time (Fig 6), so production deployments persist the
// preprocessed structure and amortize it across runs.
//
//	magic     [4]byte "LOTS"
//	version   uint32  1
//	hubCount  uint32
//	numVerts  uint64
//	heEdges   uint64
//	nheEdges  uint64
//	heOffsets  [V+1]int64
//	heNbrs     [heEdges]uint16
//	nheOffsets [V+1]int64
//	nheNbrs    [nheEdges]uint32
//	h2hWords   uint64
//	h2h        [h2hWords]uint64
//	relabeling [V]uint32
//
// All little-endian.

const (
	lotusMagic   = "LOTS"
	lotusVersion = 1
)

// Write serializes the LotusGraph.
func (lg *LotusGraph) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(lotusMagic); err != nil {
		return err
	}
	hdr := []any{
		uint32(lotusVersion), lg.HubCount,
		uint64(lg.numVertices), uint64(lg.HE.NumEdges()), uint64(lg.NHE.NumEdges()),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	words := lg.H2H.Words()
	payload := []any{
		lg.HE.offsets, lg.HE.nbrs,
		lg.NHE.offsets, lg.NHE.nbrs,
		uint64(len(words)), words,
		lg.Relabeling,
	}
	for _, p := range payload {
		if err := binary.Write(bw, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLotusGraph parses a stream written by Write and validates the
// structural invariants before returning.
func ReadLotusGraph(r io.Reader) (*LotusGraph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != lotusMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	var version, hubCount uint32
	var nv, heE, nheE uint64
	for _, p := range []any{&version, &hubCount, &nv, &heE, &nheE} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("core: reading header: %w", err)
		}
	}
	if version != lotusVersion {
		return nil, fmt.Errorf("core: unsupported version %d", version)
	}
	// Every size in the header is untrusted: validate it arithmetically
	// (overflow-safe — nv < 2^32 keeps nv*(nv-1) inside uint64) before
	// any size-derived allocation, so a corrupt header produces an
	// error rather than an OOM or a panic.
	if nv >= 1<<32 {
		return nil, fmt.Errorf("core: implausible vertex count %d", nv)
	}
	maxEdges := nv * (nv - 1) / 2
	if nv == 0 {
		maxEdges = 0
	}
	if heE > maxEdges || nheE > maxEdges {
		return nil, fmt.Errorf("core: implausible header (V=%d, HE=%d, NHE=%d, max=%d)", nv, heE, nheE, maxEdges)
	}
	if uint64(hubCount) > nv {
		return nil, fmt.Errorf("core: hub count %d exceeds vertex count %d", hubCount, nv)
	}
	// HE stores hub IDs in 16 bits, so no valid writer ever emits more
	// than 2^16 hubs; rejecting larger counts here also bounds the H2H
	// allocation below (a corrupt 2^31 hub count would otherwise
	// request a ~256 PB bit array).
	if hubCount > DefaultHubCount {
		return nil, fmt.Errorf("core: hub count %d exceeds the 16-bit hub ID space (%d)", hubCount, DefaultHubCount)
	}
	lg := &LotusGraph{HubCount: hubCount, numVertices: int(nv)}
	// Arrays are read in bounded chunks so a corrupt header cannot
	// force a huge up-front allocation (memory grows only as data
	// actually arrives), and each offsets array is validated against
	// its edge count before the neighbour payload it indexes is read.
	heOffsets, err := readChunkedI64(br, nv+1)
	if err != nil {
		return nil, fmt.Errorf("core: reading HE offsets: %w", err)
	}
	if err := validateOffsets(heOffsets, heE); err != nil {
		return nil, fmt.Errorf("core: HE offsets: %w", err)
	}
	heNbrs, err := readChunkedU16(br, heE)
	if err != nil {
		return nil, fmt.Errorf("core: reading HE neighbours: %w", err)
	}
	nheOffsets, err := readChunkedI64(br, nv+1)
	if err != nil {
		return nil, fmt.Errorf("core: reading NHE offsets: %w", err)
	}
	if err := validateOffsets(nheOffsets, nheE); err != nil {
		return nil, fmt.Errorf("core: NHE offsets: %w", err)
	}
	nheNbrs, err := readChunkedU32(br, nheE)
	if err != nil {
		return nil, fmt.Errorf("core: reading NHE neighbours: %w", err)
	}
	lg.HE = &HE16{offsets: heOffsets, nbrs: heNbrs}
	lg.NHE = &NHE32{offsets: nheOffsets, nbrs: nheNbrs}
	var nWords uint64
	if err := binary.Read(br, binary.LittleEndian, &nWords); err != nil {
		return nil, fmt.Errorf("core: reading H2H size: %w", err)
	}
	// Validate the word count arithmetically before allocating the bit
	// array (bounded to ~256 MB by the hubCount check above).
	expectBits := uint64(0)
	if hubCount > 0 {
		expectBits = uint64(hubCount) * uint64(hubCount-1) / 2
	}
	if nWords != (expectBits+63)/64 {
		return nil, fmt.Errorf("core: H2H word count %d != expected %d", nWords, (expectBits+63)/64)
	}
	h2h := bitarray.NewTri(hubCount)
	words := h2h.Words()
	if err := binary.Read(br, binary.LittleEndian, words); err != nil {
		return nil, fmt.Errorf("core: reading H2H: %w", err)
	}
	lg.H2H = h2h
	lg.Relabeling, err = readChunkedU32(br, nv)
	if err != nil {
		return nil, fmt.Errorf("core: reading relabeling: %w", err)
	}
	if err := lg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid structure: %w", err)
	}
	return lg, nil
}

// validateOffsets checks a CSX index array read from an untrusted
// stream: first offset zero, last offset equal to the edge count, and
// monotone throughout. It runs before the (edgeCount-sized) neighbour
// payload is read, so inconsistent headers fail fast.
func validateOffsets(off []int64, edgeCount uint64) error {
	n := len(off) - 1
	if off[0] != 0 {
		return fmt.Errorf("first offset %d != 0", off[0])
	}
	if off[n] != int64(edgeCount) {
		return fmt.Errorf("last offset %d != edge count %d", off[n], edgeCount)
	}
	for i := 1; i <= n; i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("not monotone at %d (%d < %d)", i, off[i], off[i-1])
		}
	}
	return nil
}

const ioChunk = 1 << 20

func readChunkedI64(r io.Reader, n uint64) ([]int64, error) {
	out := make([]int64, 0, minChunk(n))
	for read := uint64(0); read < n; {
		c := minChunk(n - read)
		buf := make([]int64, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		read += c
	}
	return out, nil
}

func readChunkedU32(r io.Reader, n uint64) ([]uint32, error) {
	out := make([]uint32, 0, minChunk(n))
	for read := uint64(0); read < n; {
		c := minChunk(n - read)
		buf := make([]uint32, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		read += c
	}
	return out, nil
}

func readChunkedU16(r io.Reader, n uint64) ([]uint16, error) {
	out := make([]uint16, 0, minChunk(n))
	for read := uint64(0); read < n; {
		c := minChunk(n - read)
		buf := make([]uint16, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		read += c
	}
	return out, nil
}

func minChunk(n uint64) uint64 {
	if n > ioChunk {
		return ioChunk
	}
	return n
}

// SaveFile persists the LotusGraph at path.
func (lg *LotusGraph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lg.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadLotusFile reads a LotusGraph persisted by SaveFile.
func LoadLotusFile(path string) (*LotusGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLotusGraph(f)
}
