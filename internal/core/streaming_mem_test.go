package core

import (
	"sort"
	"testing"
)

// TestStreamingMemoryBytes: the accounting grows with adjacency
// inserts, shrinks back on removes, and never dips below the fixed
// construction footprint.
func TestStreamingMemoryBytes(t *testing.T) {
	s, err := NewStreaming(64, []uint32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	base := s.MemoryBytes()
	if base <= 0 {
		t.Fatalf("base footprint %d, want > 0", base)
	}
	s.AddEdge(0, 1) // hub-hub: bitmap only, no adjacency growth
	if got := s.MemoryBytes(); got != base {
		t.Fatalf("hub-hub edge changed adjacency accounting: %d -> %d", base, got)
	}
	s.AddEdge(0, 10) // hub–non-hub: two adjacency entries
	s.AddEdge(10, 11)
	grown := s.MemoryBytes()
	if grown != base+4*streamAdjEntryBytes {
		t.Fatalf("after two adjacency edges: %d, want %d", grown, base+4*streamAdjEntryBytes)
	}
	s.AddEdge(0, 10) // duplicate: no growth
	if got := s.MemoryBytes(); got != grown {
		t.Fatalf("duplicate edge grew accounting: %d -> %d", grown, got)
	}
	s.RemoveEdge(0, 10)
	s.RemoveEdge(10, 11)
	s.RemoveEdge(0, 1)
	if got := s.MemoryBytes(); got != base {
		t.Fatalf("after removing everything: %d, want base %d", got, base)
	}
}

// TestStreamingForEachEdge: the iterator emits exactly the current
// edge set, each edge once, across all three storage classes.
func TestStreamingForEachEdge(t *testing.T) {
	s, err := NewStreaming(32, []uint32{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]uint32{
		{3, 7},   // hub-hub
		{3, 10},  // hub–non-hub
		{7, 10},  // hub–non-hub, shared non-hub endpoint
		{10, 11}, // non-hub–non-hub
		{11, 12},
	}
	for _, e := range want {
		s.AddEdge(e[0], e[1])
	}
	s.AddEdge(12, 13)
	s.RemoveEdge(12, 13) // removed edges must not be emitted
	var got [][2]uint32
	s.ForEachEdge(func(u, v uint32) {
		if u > v {
			u, v = v, u
		}
		got = append(got, [2]uint32{u, v})
	})
	sortEdges(got)
	sortEdges(want)
	if len(got) != len(want) {
		t.Fatalf("iterator emitted %d edges %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if s.Edges() != uint64(len(want)) {
		t.Fatalf("edge counter %d, want %d", s.Edges(), len(want))
	}
}

func sortEdges(es [][2]uint32) {
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
}
