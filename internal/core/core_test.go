package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lotustc/internal/baseline"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

var pool = sched.NewPool(4)

func lotusCount(g *graph.Graph, hubCount int) *Result {
	lg := Preprocess(g, Options{HubCount: hubCount, Pool: pool})
	return lg.Count(pool)
}

func TestPaperExampleGraph(t *testing.T) {
	// Figure 2's example graph: hubs 0 and 1.
	g := graph.FromEdges([]graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 6},
		{U: 1, V: 3}, {U: 1, V: 4}, {U: 1, V: 5}, {U: 1, V: 6}, {U: 1, V: 7},
		{U: 2, V: 3}, {U: 4, V: 6}, {U: 6, V: 8},
	}, graph.BuildOptions{})
	want := baseline.BruteForce(g)
	res := lotusCount(g, 2)
	if res.Total != want {
		t.Fatalf("Lotus = %d, want %d", res.Total, want)
	}
	// Triangles: (0,1,3),(0,1,4),(0,1,6),(0,4,6),(1,4,6)? 1-4,4-6,1-6: yes.
	// (0,2,3): 0-2,0-3,2-3: yes. So 6 total; all contain hub 0 or 1.
	if want != 6 {
		t.Fatalf("oracle says %d triangles, expected 6 — test graph wrong", want)
	}
	if res.NNN != 0 {
		t.Fatalf("NNN = %d, want 0 (every triangle has a hub)", res.NNN)
	}
	if res.HubTriangles() != 6 {
		t.Fatalf("hub triangles = %d, want 6", res.HubTriangles())
	}
}

func TestKnownCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		hubs int
		want uint64
	}{
		{"empty", graph.FromEdges(nil, graph.BuildOptions{}), 0, 0},
		{"one-vertex", graph.FromEdges(nil, graph.BuildOptions{NumVertices: 1}), 0, 0},
		{"one-edge", graph.FromEdges([]graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{}), 1, 0},
		{"triangle", gen.Complete(3), 1, 1},
		{"K4-hubs1", gen.Complete(4), 1, 4},
		{"K8-hubs4", gen.Complete(8), 4, 56},
		{"K8-allhubs", gen.Complete(8), 8, 56},
		{"star", gen.Star(64), 4, 0},
		{"ring", gen.Ring(64), 4, 0},
		{"bipartite", gen.CompleteBipartite(8, 8), 4, 0},
		{"planted", gen.PlantedTriangles(9, 3), 4, 9},
		{"hubspokes", gen.HubAndSpokes(6, 40, 3, 2), 6, 20 + 40*3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := lotusCount(c.g, c.hubs)
			if res.Total != c.want {
				t.Errorf("Total = %d, want %d", res.Total, c.want)
			}
			if s := res.HHH + res.HHN + res.HNN + res.NNN; s != res.Total {
				t.Errorf("class sum %d != total %d", s, res.Total)
			}
		})
	}
}

func TestClassBreakdownHubSpokes(t *testing.T) {
	// 6-hub clique + 40 leaves each on 3 hubs, hubs = the 6 clique
	// vertices: C(6,3)=20 HHH, 40*C(3,2)=120 HHN, 0 HNN, 0 NNN.
	g := gen.HubAndSpokes(6, 40, 3, 2)
	res := lotusCount(g, 6)
	if res.HHH != 20 || res.HHN != 120 || res.HNN != 0 || res.NNN != 0 {
		t.Fatalf("classes = (%d,%d,%d,%d), want (20,120,0,0)",
			res.HHH, res.HHN, res.HNN, res.NNN)
	}
}

func TestClassBreakdownK4(t *testing.T) {
	// K4 with 2 hubs: label hubs a,b, non-hubs x,y.
	// Triangles: abx, aby (HHN), axy, bxy (HNN) and ab? abx/aby...
	// K4 has 4 triangles: {a,b,x},{a,b,y},{a,x,y},{b,x,y}.
	res := lotusCount(gen.Complete(4), 2)
	if res.HHH != 0 || res.HHN != 2 || res.HNN != 2 || res.NNN != 0 {
		t.Fatalf("classes = (%d,%d,%d,%d), want (0,2,2,0)",
			res.HHH, res.HHN, res.HNN, res.NNN)
	}
}

func TestAgainstForwardProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(80)
		m := rng.Intn(5 * n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
		want := baseline.BruteForce(g)
		hubs := 1 + rng.Intn(n)
		res := lotusCount(g, hubs)
		if res.Total != want {
			t.Logf("seed %d hubs %d: lotus %d want %d", seed, hubs, res.Total, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHubCountSweep(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	want := baseline.Forward(g, pool, baseline.KernelMerge)
	for _, hubs := range []int{1, 2, 16, 100, 512, 1024} {
		res := lotusCount(g, hubs)
		if res.Total != want {
			t.Errorf("hubs=%d: %d, want %d", hubs, res.Total, want)
		}
	}
	// Hub count exceeding |V| must clamp.
	res := lotusCount(g, 1<<20)
	if res.Total != want {
		t.Errorf("clamped hubs: %d, want %d", res.Total, want)
	}
}

func TestEffectiveHubCount(t *testing.T) {
	cases := []struct {
		opt  Options
		n    int
		want int
	}{
		{Options{}, 1 << 23, DefaultHubCount}, // capped at 64K
		{Options{}, 6400, 100},                // |V|/64
		{Options{HubCount: 7}, 400, 7},
		{Options{HubCount: 1000}, 400, 400}, // clamped to |V|
		{Options{}, 2, 1},                   // at least one hub
	}
	for i, c := range cases {
		if got := c.opt.EffectiveHubCount(c.n); got != c.want {
			t.Errorf("case %d: EffectiveHubCount = %d, want %d", i, got, c.want)
		}
	}
}

func TestValidateAfterPreprocess(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":    gen.RMAT(gen.DefaultRMAT(10, 8, 1)),
		"er":      gen.ErdosRenyi(1000, 4000, 2),
		"chunglu": gen.ChungLu(gen.ChungLuParams{N: 1000, M: 6000, Gamma: 2.2, Seed: 3}),
		"k16":     gen.Complete(16),
	}
	for name, g := range graphs {
		lg := Preprocess(g, Options{HubCount: 64, Pool: pool})
		if err := lg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// HE+NHE must partition the oriented edges.
		if got := lg.HE.NumEdges() + lg.NHE.NumEdges(); got != g.NumEdges() {
			t.Errorf("%s: HE+NHE = %d, want %d", name, got, g.NumEdges())
		}
	}
}

func TestPartitionersAgree(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 7))
	lg := Preprocess(g, Options{HubCount: 128, Pool: pool})
	want := lg.CountWithOptions(pool, CountOptions{Partitioner: SquaredEdgeTiling, TileThreshold: 8}).Total
	got := lg.CountWithOptions(pool, CountOptions{Partitioner: EdgeBalanced, TileThreshold: 8}).Total
	if got != want {
		t.Fatalf("edge-balanced %d != squared %d", got, want)
	}
	// Also with tiling disabled (huge threshold).
	got2 := lg.CountWithOptions(pool, CountOptions{TileThreshold: 1 << 30}).Total
	if got2 != want {
		t.Fatalf("untiled %d != tiled %d", got2, want)
	}
}

func TestTilesCoverAllPairs(t *testing.T) {
	// Exhaustive check on a hub-heavy graph with a tiny threshold and
	// several tile counts: totals must match the untiled count.
	g := gen.HubAndSpokes(64, 200, 8, 5)
	lg := Preprocess(g, Options{HubCount: 64, Pool: pool})
	want := lg.CountWithOptions(pool, CountOptions{TileThreshold: 1 << 30}).Total
	for _, tiles := range []int{1, 2, 3, 5, 16, 64} {
		for _, part := range []Partitioner{SquaredEdgeTiling, EdgeBalanced} {
			res := lg.CountWithOptions(pool, CountOptions{
				Partitioner: part, TileThreshold: 2, TilesPerVertex: tiles,
			})
			if res.Total != want {
				t.Errorf("%v tiles=%d: %d, want %d", part, tiles, res.Total, want)
			}
		}
	}
}

// tilePairWork computes the per-tile pair work (sum of h1 indices)
// for a degree-d vertex split into p tiles under the given policy,
// mirroring the boundaries phase1Tiles generates.
func tilePairWork(d, p int, part Partitioner) []uint64 {
	work := make([]uint64, 0, p)
	var prev uint32
	for k := 1; k <= p; k++ {
		var hi uint32
		if part == SquaredEdgeTiling {
			hi = uint32(float64(d) * math.Sqrt(float64(k)/float64(p)))
		} else {
			hi = uint32(d * k / p)
		}
		if k == p {
			hi = uint32(d)
		}
		var w uint64
		for i := prev; i < hi; i++ {
			w += uint64(i)
		}
		work = append(work, w)
		prev = hi
	}
	return work
}

func TestSquaredTilingBalancesWork(t *testing.T) {
	// For a degree-1000 vertex split into 4 tiles, squared boundaries
	// sit at 1000*sqrt(k/4) = 0,500,707,866,1000; each tile's pair
	// work must be near-equal, while equal-neighbour-count tiles are
	// skewed ~7x (last tile has 750^2-ish more pairs than the first).
	sq := tilePairWork(1000, 4, SquaredEdgeTiling)
	eb := tilePairWork(1000, 4, EdgeBalanced)
	maxMin := func(w []uint64) (uint64, uint64) {
		mx, mn := w[0], w[0]
		for _, x := range w {
			if x > mx {
				mx = x
			}
			if x < mn {
				mn = x
			}
		}
		return mx, mn
	}
	sqMax, sqMin := maxMin(sq)
	ebMax, ebMin := maxMin(eb)
	if float64(sqMax)/float64(sqMin) > 1.2 {
		t.Errorf("squared tiling imbalance %v too high: %v", float64(sqMax)/float64(sqMin), sq)
	}
	if float64(ebMax)/float64(ebMin) < 3 {
		t.Errorf("edge-balanced should be badly imbalanced, got %v: %v", float64(ebMax)/float64(ebMin), eb)
	}
}

func TestPaperTilingExample(t *testing.T) {
	// §4.6 worked example: 100 neighbours, 5 partitions -> borders
	// 0, 45, 63, 77, 89, 100 (100*sqrt(k/5) truncated).
	borders := []uint32{0}
	prev := uint32(0)
	for k := 1; k <= 5; k++ {
		hi := uint32(100 * math.Sqrt(float64(k)/5))
		if k == 5 {
			hi = 100
		}
		borders = append(borders, hi)
		if hi < prev {
			t.Fatal("borders not monotone")
		}
		prev = hi
	}
	want := []uint32{0, 44, 63, 77, 89, 100}
	for i := range want {
		// float truncation may differ by 1 from the paper's rounding
		d := int64(borders[i]) - int64(want[i])
		if d < -1 || d > 1 {
			t.Fatalf("border %d = %d, want %d±1", i, borders[i], want[i])
		}
	}
}

func TestWorkStealingSchedulerMatches(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 6))
	lg := Preprocess(g, Options{HubCount: 64, Pool: pool})
	want := lg.CountWithOptions(pool, CountOptions{})
	got := lg.CountWithOptions(pool, CountOptions{WorkStealing: true, TileThreshold: 8})
	if got.Total != want.Total || got.HHH != want.HHH || got.HHN != want.HHN {
		t.Fatalf("stealing scheduler: (%d,%d,%d), want (%d,%d,%d)",
			got.Total, got.HHH, got.HHN, want.Total, want.HHH, want.HHN)
	}
	if len(got.Phase1Load.Busy) == 0 {
		t.Fatal("stealing load report missing")
	}
}

func TestHNNBlockedMatches(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":      gen.RMAT(gen.DefaultRMAT(10, 8, 9)),
		"hubspokes": gen.HubAndSpokes(8, 300, 3, 1),
		"k24":       gen.Complete(24),
		"er":        gen.ErdosRenyi(500, 3000, 2),
	}
	for name, g := range graphs {
		lg := Preprocess(g, Options{HubCount: 8, Pool: pool})
		want := lg.CountWithOptions(pool, CountOptions{})
		for _, blocks := range []int{2, 3, 7, 16} {
			got := lg.CountWithOptions(pool, CountOptions{HNNBlocks: blocks})
			if got.Total != want.Total || got.HNN != want.HNN {
				t.Errorf("%s blocks=%d: (%d,%d), want (%d,%d)",
					name, blocks, got.Total, got.HNN, want.Total, want.HNN)
			}
		}
	}
	// All-hub graph: no non-hubs, blocked path must not divide by zero.
	lgAll := Preprocess(gen.Complete(6), Options{HubCount: 6, Pool: pool})
	if r := lgAll.CountWithOptions(pool, CountOptions{HNNBlocks: 4}); r.Total != 20 {
		t.Fatalf("all-hub blocked count = %d", r.Total)
	}
}

func TestFusedMatchesSplit(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 9))
	lg := Preprocess(g, Options{HubCount: 64, Pool: pool})
	split := lg.CountWithOptions(pool, CountOptions{})
	fused := lg.CountWithOptions(pool, CountOptions{FuseHNNAndNNN: true})
	if split.Total != fused.Total || split.HNN != fused.HNN || split.NNN != fused.NNN {
		t.Fatalf("fused (%d,%d,%d) != split (%d,%d,%d)",
			fused.Total, fused.HNN, fused.NNN, split.Total, split.HNN, split.NNN)
	}
}

func TestTopologyBytesAccounting(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 2))
	lg := Preprocess(g, Options{HubCount: 256, Pool: pool})
	want := 2*8*int64(g.NumVertices()+1) + lg.H2H.SizeBytes() +
		2*lg.HE.NumEdges() + 4*lg.NHE.NumEdges()
	if got := lg.TopologyBytes(); got != want {
		t.Fatalf("TopologyBytes = %d, want %d", got, want)
	}
}

func TestPreprocessDirectBitIdentical(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":      gen.RMAT(gen.DefaultRMAT(10, 8, 1)),
		"er":        gen.ErdosRenyi(800, 3000, 2),
		"chunglu":   gen.ChungLu(gen.ChungLuParams{N: 700, M: 5000, Gamma: 2.2, Seed: 3}),
		"k20":       gen.Complete(20),
		"star":      gen.Star(50),
		"hubspokes": gen.HubAndSpokes(8, 200, 3, 4),
		"empty":     graph.FromEdges(nil, graph.BuildOptions{NumVertices: 10}),
	}
	for name, g := range graphs {
		for _, hubs := range []int{1, 4, 37} {
			a := PreprocessMaterialize(g, Options{HubCount: hubs, Pool: pool})
			b := PreprocessDirect(g, Options{HubCount: hubs, Pool: pool})
			if a.HubCount != b.HubCount {
				t.Fatalf("%s hubs=%d: hub counts differ", name, hubs)
			}
			if !reflect.DeepEqual(a.HE.Offsets(), b.HE.Offsets()) ||
				!reflect.DeepEqual(a.HE.Raw(), b.HE.Raw()) {
				t.Fatalf("%s hubs=%d: HE differs", name, hubs)
			}
			if !reflect.DeepEqual(a.NHE.Offsets(), b.NHE.Offsets()) ||
				!reflect.DeepEqual(a.NHE.Raw(), b.NHE.Raw()) {
				t.Fatalf("%s hubs=%d: NHE differs", name, hubs)
			}
			if a.H2H.PopCount() != b.H2H.PopCount() {
				t.Fatalf("%s hubs=%d: H2H differs", name, hubs)
			}
			if err := b.Validate(); err != nil {
				t.Fatalf("%s hubs=%d: direct validate: %v", name, hubs, err)
			}
			ra := a.Count(pool)
			rb := b.Count(pool)
			if ra.Total != rb.Total {
				t.Fatalf("%s hubs=%d: counts differ %d vs %d", name, hubs, ra.Total, rb.Total)
			}
		}
	}
}

func TestPreprocessDirectRejectsOriented(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on oriented input")
		}
	}()
	PreprocessDirect(gen.Complete(4).Orient(), Options{HubCount: 2})
}

func TestPreprocessRejectsOriented(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on oriented input")
		}
	}()
	Preprocess(gen.Complete(4).Orient(), Options{HubCount: 2})
}

func TestResultTimesPopulated(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 4))
	lg := Preprocess(g, Options{HubCount: 64, Pool: pool})
	if lg.PreprocessTime <= 0 {
		t.Fatal("PreprocessTime not measured")
	}
	res := lg.Count(pool)
	if res.Phase1Time <= 0 || res.HNNTime <= 0 || res.NNNTime <= 0 {
		t.Fatalf("phase times not measured: %v %v %v", res.Phase1Time, res.HNNTime, res.NNNTime)
	}
}
