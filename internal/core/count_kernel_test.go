package core

import (
	"context"
	"testing"
	"time"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
)

// kernelCorpus returns the graphs the phase-1 equivalence tests sweep:
// structured shapes that stress specific kernel paths (dense rows,
// stars with one giant row, triangle-free rings, bipartite graphs with
// zero HHH) plus skewed random graphs. Sizes shrink under -short so
// `make check` stays fast with -race on.
func kernelCorpus(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	scale, edges := uint(12), 1<<15
	if testing.Short() {
		scale, edges = 9, 1<<12
	}
	return map[string]*graph.Graph{
		"complete":  gen.Complete(80),
		"star":      gen.Star(300),
		"ring":      gen.Ring(200),
		"bipartite": gen.CompleteBipartite(20, 40),
		"planted":   gen.PlantedTriangles(25, 4),
		"hubspokes": gen.HubAndSpokes(8, 400, 3, 7),
		"rmat":      gen.RMAT(gen.DefaultRMAT(scale, 8, 42)),
		"chunglu":   gen.ChungLu(gen.ChungLuParams{N: 1 << scale, M: edges, Gamma: 2.3, Seed: 99}),
	}
}

// TestPhase1KernelEquivalence asserts the word-parallel phase-1 kernel
// is bit-identical to the scalar one — not just in Total but in the
// per-class HHH/HHN split — across the corpus and several hub counts,
// and that the auto heuristic (whatever mix it picks) agrees too.
func TestPhase1KernelEquivalence(t *testing.T) {
	for name, g := range kernelCorpus(t) {
		for _, hubs := range []int{0, 1, 16, 128, 1024} {
			lg := Preprocess(g, Options{HubCount: hubs, Pool: pool})
			var results [3]*Result
			var metrics [3]*obs.Metrics
			for i, k := range []Phase1Kernel{Phase1Scalar, Phase1Word, Phase1Auto} {
				m := obs.New()
				results[i] = lg.CountWithOptions(pool, CountOptions{Phase1Kernel: k, Metrics: m})
				metrics[i] = m
			}
			scalar, word, auto := results[0], results[1], results[2]
			for _, c := range []struct {
				kernel string
				got    *Result
			}{{"word", word}, {"auto", auto}} {
				if c.got.HHH != scalar.HHH || c.got.HHN != scalar.HHN || c.got.Total != scalar.Total {
					t.Errorf("%s hubs=%d kernel=%s: HHH/HHN/Total = %d/%d/%d, scalar = %d/%d/%d",
						name, hubs, c.kernel, c.got.HHH, c.got.HHN, c.got.Total,
						scalar.HHH, scalar.HHN, scalar.Total)
				}
			}
			// Routing counters must partition the rows: the forced
			// kernels route everything one way, and auto's split sums
			// to the same row count.
			if n := metrics[0].Get(obs.Phase1RowsWord); n != 0 {
				t.Errorf("%s hubs=%d: scalar run routed %d rows to the word kernel", name, hubs, n)
			}
			if n := metrics[1].Get(obs.Phase1RowsScalar); n != 0 {
				t.Errorf("%s hubs=%d: word run routed %d rows to the scalar kernel", name, hubs, n)
			}
			rows := metrics[0].Get(obs.Phase1RowsScalar)
			if split := metrics[2].Get(obs.Phase1RowsWord) + metrics[2].Get(obs.Phase1RowsScalar); split != rows {
				t.Errorf("%s hubs=%d: auto routed %d rows, scalar saw %d", name, hubs, split, rows)
			}
			if rows > 0 && metrics[1].Get(obs.Phase1WordOps) == 0 {
				t.Errorf("%s hubs=%d: word run reported zero word ops over %d rows", name, hubs, rows)
			}
		}
	}
}

// TestPhase1KernelEquivalenceTiled forces the pair-tiling path (tiny
// TileThreshold splits every hub's row range across tiles) where the
// word kernel's bitmap covers the whole neighbour list but each tile
// only walks a sub-range of h1 indices.
func TestPhase1KernelEquivalenceTiled(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 16, 3))
	lg := Preprocess(g, Options{HubCount: 64, Pool: pool})
	base := lg.CountWithOptions(pool, CountOptions{Phase1Kernel: Phase1Scalar})
	for _, k := range []Phase1Kernel{Phase1Word, Phase1Auto} {
		for _, ws := range []bool{false, true} {
			got := lg.CountWithOptions(pool, CountOptions{
				Phase1Kernel: k, TileThreshold: 8, TilesPerVertex: 7, WorkStealing: ws,
			})
			if got.HHH != base.HHH || got.HHN != base.HHN || got.Total != base.Total {
				t.Errorf("kernel=%s stealing=%v: HHH/HHN/Total = %d/%d/%d, want %d/%d/%d",
					k, ws, got.HHH, got.HHN, got.Total, base.HHH, base.HHN, base.Total)
			}
		}
	}
}

// TestIntersectKernelEquivalence asserts the adaptive HNN/NNN dispatch
// returns the same per-class counts as unconditional merge join, over
// the plain, blocked and fused phase variants.
func TestIntersectKernelEquivalence(t *testing.T) {
	for name, g := range kernelCorpus(t) {
		lg := Preprocess(g, Options{HubCount: 32, Pool: pool})
		variants := []CountOptions{
			{},
			{HNNBlocks: 4},
			{FuseHNNAndNNN: true},
		}
		for _, v := range variants {
			merge, adaptive := v, v
			merge.Intersect = IntersectMerge
			adaptive.Intersect = IntersectAdaptive
			adaptive.Metrics = obs.New()
			wantRes := lg.CountWithOptions(pool, merge)
			gotRes := lg.CountWithOptions(pool, adaptive)
			if gotRes.HNN != wantRes.HNN || gotRes.NNN != wantRes.NNN || gotRes.Total != wantRes.Total {
				t.Errorf("%s %+v: adaptive HNN/NNN/Total = %d/%d/%d, merge = %d/%d/%d",
					name, v, gotRes.HNN, gotRes.NNN, gotRes.Total, wantRes.HNN, wantRes.NNN, wantRes.Total)
			}
			m := adaptive.Metrics
			if split := m.Get(obs.HNNDispatchMerge) + m.Get(obs.HNNDispatchGallop); split != m.Get("hnn.he_intersections") && !v.FuseHNNAndNNN {
				t.Errorf("%s %+v: dispatch split %d != %d intersections",
					name, v, split, m.Get("hnn.he_intersections"))
			}
		}
	}
}

// TestPhase1WordKernelCancellation drives the word kernel under
// cancellation: a pre-cancelled context must return immediately with
// nothing counted, and a mid-phase cancel must neither panic nor race
// (the per-worker bitmap is cleared on the cancellation exit path, so
// a fresh count on the same pool stays correct).
func TestPhase1WordKernelCancellation(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(12, 16, 5))
	lg := Preprocess(g, Options{HubCount: 512, Pool: pool})
	want := lg.CountWithOptions(pool, CountOptions{Phase1Kernel: Phase1Word})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := pool.Bind(ctx)
	defer dead.Release()
	if res := lg.CountWithOptions(dead, CountOptions{Phase1Kernel: Phase1Word}); res.Total != 0 {
		t.Fatalf("pre-cancelled count = %d, want 0", res.Total)
	}

	for _, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond} {
		ctx, cancel := context.WithCancel(context.Background())
		bound := pool.Bind(ctx)
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(delay)
		res := lg.CountWithOptions(bound, CountOptions{Phase1Kernel: Phase1Word, TileThreshold: 8})
		bound.Release()
		if !bound.Cancelled() && (res.HHH != want.HHH || res.HHN != want.HHN) {
			t.Fatalf("uncancelled run diverged: %d/%d want %d/%d", res.HHH, res.HHN, want.HHH, want.HHN)
		}
		if res.HHH > want.HHH || res.HHN > want.HHN {
			t.Fatalf("cancelled run overcounted: %d/%d vs full %d/%d — stale bitmap bits?",
				res.HHH, res.HHN, want.HHH, want.HHN)
		}
		// The same pool must still count correctly afterwards.
		again := lg.CountWithOptions(pool, CountOptions{Phase1Kernel: Phase1Word})
		if again.Total != want.Total {
			t.Fatalf("post-cancel count = %d, want %d", again.Total, want.Total)
		}
	}
}

func TestKernelParsers(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Phase1Kernel
		ok   bool
	}{{"", Phase1Auto, true}, {"auto", Phase1Auto, true}, {"scalar", Phase1Scalar, true},
		{"word", Phase1Word, true}, {"simd", Phase1Auto, false}} {
		got, err := ParsePhase1Kernel(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePhase1Kernel(%q) = %v, %v", c.in, got, err)
		}
		if c.ok && got.String() != c.in && c.in != "" {
			t.Errorf("Phase1Kernel round-trip: %q -> %q", c.in, got.String())
		}
	}
	for _, c := range []struct {
		in   string
		want IntersectKernel
		ok   bool
	}{{"", IntersectAdaptive, true}, {"adaptive", IntersectAdaptive, true},
		{"merge", IntersectMerge, true}, {"hash", IntersectAdaptive, false}} {
		got, err := ParseIntersectKernel(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseIntersectKernel(%q) = %v, %v", c.in, got, err)
		}
	}
}
