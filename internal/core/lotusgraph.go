// Package core implements the LOTUS algorithm (§4): the LotusGraph
// structure — H2H triangular bit array, HE (hub edges, 16-bit IDs)
// and NHE (non-hub edges, 32-bit IDs) sub-graphs — its preprocessing
// (Algorithm 2), the three-phase triangle count (Algorithm 3), and
// Squared Edge Tiling (§4.6). The paper's two future-work extensions,
// recursive NHE splitting (§5.5/§7) and streaming hub TC (§6.2), live
// in recursive.go and streaming.go.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lotustc/internal/bitarray"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
	"lotustc/internal/reorder"
	"lotustc/internal/sched"
)

// DefaultHubCount is the paper's hub count: the 64K (2^16) vertices
// with the highest degrees are hubs (§4.2). With 16-bit IDs every HE
// edge takes 2 bytes.
const DefaultHubCount = 1 << 16

// Options configure preprocessing.
type Options struct {
	// HubCount is the number of hubs. Zero selects the adaptive
	// default min(2^16, |V|/64): the paper fixes 64K hubs, which is
	// 0.1-1% of |V| on its datasets, and |V|/64 (~1.6%) keeps the
	// same hub-to-vertex regime at laptop scale. Pin it to
	// DefaultHubCount to reproduce the paper's fixed-64K behaviour
	// (§5.5).
	HubCount int
	// FrontFraction is the §4.3.1 front block: the fraction of
	// highest-degree vertices relabeled to the lowest IDs (paper:
	// 10%). Zero selects the default.
	FrontFraction float64
	// Pool supplies workers for parallel preprocessing; nil uses a
	// GOMAXPROCS pool.
	Pool *sched.Pool
	// Metrics, when non-nil, receives the preprocessing counters
	// (preprocess.ns, lotus.hubs, lotus.he_edges, lotus.nhe_edges,
	// lotus.h2h_bits — names in DESIGN.md).
	Metrics *obs.Metrics
}

// EffectiveHubCount resolves the hub count for a graph of n vertices.
// The result never exceeds DefaultHubCount (2^16): HE stores hub IDs
// in 16 bits, so a larger hub set would silently truncate neighbour
// IDs and corrupt every count.
func (o Options) EffectiveHubCount(n int) int {
	h := o.HubCount
	if h == 0 {
		h = n / 64
	}
	if h > DefaultHubCount {
		h = DefaultHubCount
	}
	if h > n {
		h = n
	}
	if h < 1 && n > 0 {
		h = 1
	}
	return h
}

// HE16 is the hub-edges sub-graph: for every vertex v it lists the
// hub neighbours h < v using 16-bit IDs (§4.2). Hubs occupy the first
// HubCount IDs after LOTUS relabeling, so hub IDs always fit.
type HE16 struct {
	offsets []int64
	nbrs    []uint16
}

// Neighbors returns v's hub-neighbour list (ascending).
func (s *HE16) Neighbors(v uint32) []uint16 { return s.nbrs[s.offsets[v]:s.offsets[v+1]] }

// Degree returns the number of hub neighbours of v.
func (s *HE16) Degree(v uint32) int { return int(s.offsets[v+1] - s.offsets[v]) }

// NumEdges returns |HE.E|.
func (s *HE16) NumEdges() int64 { return int64(len(s.nbrs)) }

// Offsets exposes the index array.
func (s *HE16) Offsets() []int64 { return s.offsets }

// Raw exposes the flat 16-bit neighbour array.
func (s *HE16) Raw() []uint16 { return s.nbrs }

// NHE32 is the non-hub-edges sub-graph: for every vertex v it lists
// the non-hub neighbours u < v using 32-bit IDs (§4.2). Rows of hub
// vertices are empty by construction.
type NHE32 struct {
	offsets []int64
	nbrs    []uint32
}

// Neighbors returns v's non-hub-neighbour list (ascending).
func (s *NHE32) Neighbors(v uint32) []uint32 { return s.nbrs[s.offsets[v]:s.offsets[v+1]] }

// Degree returns the number of non-hub neighbours of v.
func (s *NHE32) Degree(v uint32) int { return int(s.offsets[v+1] - s.offsets[v]) }

// NumEdges returns |NHE.E|.
func (s *NHE32) NumEdges() int64 { return int64(len(s.nbrs)) }

// Offsets exposes the index array.
func (s *NHE32) Offsets() []int64 { return s.offsets }

// Raw exposes the flat neighbour array.
func (s *NHE32) Raw() []uint32 { return s.nbrs }

// LotusGraph is the LOTUS graph structure of §4.2. Vertex IDs are the
// relabeled IDs; Relabeling maps original -> new.
type LotusGraph struct {
	HubCount uint32
	H2H      *bitarray.Tri
	HE       *HE16
	NHE      *NHE32
	// Relabeling is the §4.3.1 relabeling array (old ID -> new ID).
	Relabeling []uint32
	// PreprocessTime is the wall time of Preprocess, part of the
	// end-to-end accounting of Table 5 / Fig 6.
	PreprocessTime time.Duration

	numVertices int
}

// NumVertices returns |V|.
func (lg *LotusGraph) NumVertices() int { return lg.numVertices }

// IsHub reports whether (new) vertex ID v is a hub.
func (lg *LotusGraph) IsHub(v uint32) bool { return v < lg.HubCount }

// TopologyBytes returns the LOTUS topology footprint per the Table 7
// accounting: two 8-byte index arrays, the H2H backing store, 2 bytes
// per HE edge and 4 bytes per NHE edge.
func (lg *LotusGraph) TopologyBytes() int64 {
	idx := 2 * 8 * int64(lg.numVertices+1)
	return idx + lg.H2H.SizeBytes() + 2*lg.HE.NumEdges() + 4*lg.NHE.NumEdges()
}

// ErrOriented is returned by the Try preprocessors when handed an
// oriented graph: Algorithm 2 walks symmetric neighbour lists, so an
// oriented input would silently drop every forward edge.
var ErrOriented = errors.New("core: preprocessing requires a symmetric graph, got an oriented one")

// ErrNilGraph is returned by the Try preprocessors on a nil graph.
var ErrNilGraph = errors.New("core: nil graph")

// checkPreprocessInput validates the preprocessing input contract
// shared by both implementations.
func checkPreprocessInput(g *graph.Graph) error {
	if g == nil {
		return ErrNilGraph
	}
	if g.Oriented {
		return ErrOriented
	}
	return nil
}

// mustLotusGraph backs the thin panicking wrappers kept for
// known-good inputs.
func mustLotusGraph(lg *LotusGraph, err error) *LotusGraph {
	if err != nil {
		panic(err)
	}
	return lg
}

// TryPreprocess builds the LotusGraph from a symmetric simple graph,
// implementing Algorithm 2: relabel, split each vertex's N^< into hub
// and non-hub neighbours, and populate the H2H bit array. It uses the
// literal per-edge implementation (TryPreprocessDirect), which
// measures ~2x faster than materializing the relabeled graph first;
// the alternative remains available as TryPreprocessMaterialize and
// the ablation-preprocess experiment compares them.
//
// Invalid inputs (nil or oriented graphs) are rejected with an error;
// the serving path depends on this never panicking.
func TryPreprocess(g *graph.Graph, opt Options) (*LotusGraph, error) {
	return TryPreprocessDirect(g, opt)
}

// Preprocess is the thin panicking wrapper over TryPreprocess, kept
// for call sites whose inputs are built in-process (generators,
// benchmarks, the analytics helpers).
func Preprocess(g *graph.Graph, opt Options) *LotusGraph {
	return mustLotusGraph(TryPreprocess(g, opt))
}

// TryPreprocessMaterialize builds the LotusGraph by first
// materializing the fully relabeled graph (sorted rows), then
// splitting each row into its HE/NHE parts with two binary searches.
// Kept as the comparison point for the preprocessing ablation;
// produces bit-identical structures to TryPreprocessDirect.
func TryPreprocessMaterialize(g *graph.Graph, opt Options) (*LotusGraph, error) {
	if err := checkPreprocessInput(g); err != nil {
		return nil, err
	}
	t0 := time.Now()
	pool := opt.Pool
	if pool == nil {
		pool = sched.NewPool(0)
	}
	n := g.NumVertices()
	hubCount := opt.EffectiveHubCount(n)

	ra := reorder.Lotus(g, reorder.LotusOptions{HubCount: hubCount, FrontFraction: opt.FrontFraction})
	rg := g.Relabel(ra)

	heOff := make([]int64, n+1)
	nheOff := make([]int64, n+1)
	// Neighbour lists are sorted, so within N^<_v the hub neighbours
	// (IDs < hubCount) form a prefix: two binary searches per vertex
	// give the split points.
	pool.For(n, 0, func(_, start, end int) {
		for v := start; v < end; v++ {
			nb := rg.Neighbors(uint32(v))
			below := sort.Search(len(nb), func(i int) bool { return nb[i] >= uint32(v) })
			limit := uint32(hubCount)
			if uint32(v) < limit {
				limit = uint32(v)
			}
			hubs := sort.Search(below, func(i int) bool { return nb[i] >= limit })
			heOff[v+1] = int64(hubs)
			nheOff[v+1] = int64(below - hubs)
		}
	})
	for v := 0; v < n; v++ {
		heOff[v+1] += heOff[v]
		nheOff[v+1] += nheOff[v]
	}
	he := &HE16{offsets: heOff, nbrs: make([]uint16, heOff[n])}
	nhe := &NHE32{offsets: nheOff, nbrs: make([]uint32, nheOff[n])}
	h2h := bitarray.NewTri(uint32(hubCount))
	pool.For(n, 0, func(_, start, end int) {
		for v := start; v < end; v++ {
			nb := rg.Neighbors(uint32(v))
			hd := he.offsets[v+1] - he.offsets[v]
			for i := int64(0); i < hd; i++ {
				u := nb[i]
				he.nbrs[he.offsets[v]+i] = uint16(u)
				if uint32(v) < uint32(hubCount) {
					// hub-to-hub edge: also record in H2H (Alg 2 l.19)
					h2h.Set(uint32(v), u)
				}
			}
			nd := nhe.offsets[v+1] - nhe.offsets[v]
			for i := int64(0); i < nd; i++ {
				nhe.nbrs[nhe.offsets[v]+i] = nb[hd+i]
			}
		}
	})

	lg := &LotusGraph{
		HubCount:       uint32(hubCount),
		H2H:            h2h,
		HE:             he,
		NHE:            nhe,
		Relabeling:     ra,
		PreprocessTime: time.Since(t0),
		numVertices:    n,
	}
	lg.recordPreprocessMetrics(opt.Metrics)
	return lg, nil
}

// PreprocessMaterialize is the thin panicking wrapper over
// TryPreprocessMaterialize.
func PreprocessMaterialize(g *graph.Graph, opt Options) *LotusGraph {
	return mustLotusGraph(TryPreprocessMaterialize(g, opt))
}

// recordPreprocessMetrics publishes the structure-size counters after
// preprocessing; nil-safe, called by both preprocessing variants.
func (lg *LotusGraph) recordPreprocessMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	m.AddDuration("preprocess.ns", lg.PreprocessTime)
	m.Set("lotus.hubs", int64(lg.HubCount))
	m.Set("lotus.he_edges", lg.HE.NumEdges())
	m.Set("lotus.nhe_edges", lg.NHE.NumEdges())
	m.Set("lotus.h2h_bits", int64(lg.H2H.PopCount()))
}

// Validate checks the structural invariants of the LotusGraph:
// sorted lists, ID ranges, hub rows having empty NHE, and H2H
// agreeing with the HE rows of hubs. Intended for tests.
func (lg *LotusGraph) Validate() error {
	n := uint32(lg.numVertices)
	for v := uint32(0); v < n; v++ {
		henb := lg.HE.Neighbors(v)
		for i, h := range henb {
			if uint32(h) >= lg.HubCount || uint32(h) >= v {
				return fmt.Errorf("vertex %d: HE neighbour %d out of range", v, h)
			}
			if i > 0 && henb[i-1] >= h {
				return fmt.Errorf("vertex %d: HE unsorted", v)
			}
			if v < lg.HubCount && !lg.H2H.IsSet(v, uint32(h)) {
				return fmt.Errorf("H2H missing hub edge (%d,%d)", v, h)
			}
		}
		nhenb := lg.NHE.Neighbors(v)
		if v < lg.HubCount && len(nhenb) != 0 {
			return fmt.Errorf("hub %d has non-empty NHE row", v)
		}
		for i, u := range nhenb {
			if u < lg.HubCount || u >= v {
				return fmt.Errorf("vertex %d: NHE neighbour %d out of range", v, u)
			}
			if i > 0 && nhenb[i-1] >= u {
				return fmt.Errorf("vertex %d: NHE unsorted", v)
			}
		}
	}
	if got, want := lg.H2H.PopCount(), hubEdgeCount(lg); got != want {
		return fmt.Errorf("H2H popcount %d != hub-to-hub edge count %d", got, want)
	}
	// Relabeling must be a permutation of [0, n): anything else makes
	// code that maps original IDs through it index out of range or
	// silently alias two vertices (corrupt files are the realistic
	// source — ReadLotusGraph relies on this check).
	if len(lg.Relabeling) != lg.numVertices {
		return fmt.Errorf("relabeling has %d entries for %d vertices", len(lg.Relabeling), lg.numVertices)
	}
	seen := make([]uint64, (lg.numVertices+63)/64)
	for old, nw := range lg.Relabeling {
		if nw >= n {
			return fmt.Errorf("relabeling[%d] = %d out of range", old, nw)
		}
		if seen[nw>>6]&(1<<(nw&63)) != 0 {
			return fmt.Errorf("relabeling maps two vertices to %d", nw)
		}
		seen[nw>>6] |= 1 << (nw & 63)
	}
	return nil
}

func hubEdgeCount(lg *LotusGraph) uint64 {
	var n uint64
	for v := uint32(0); v < lg.HubCount && int(v) < lg.numVertices; v++ {
		n += uint64(lg.HE.Degree(v))
	}
	return n
}
