package core

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Streaming counts hub triangles over an edge stream, the §6.2
// extension: "in a streaming context, Lotus stores the H2H bit array
// in the memory and accelerates processing of hub edges that are
// streamed in."
//
// The caller designates the hub set up front (e.g. the top-degree
// vertices of a warm-up prefix). As edges arrive, each new edge
// closes the triangles whose other two edges were already seen, so
// after streaming a whole graph every hub triangle has been counted
// exactly once. Non-hub (NNN) triangles are counted only when
// CountNonHub is set; the point of the extension is that hub
// triangles — 93.4% of all triangles on average (§3.4) — are counted
// from compact, cache-resident state.
type Streaming struct {
	// hubIdx maps vertex ID -> dense hub index, or -1.
	hubIdx []int32
	hubs   int
	// h2h is a square bit matrix over dense hub indices, enabling
	// word-parallel row intersection on hub-hub edge arrival.
	h2h   [][]uint64
	words int
	// hubNbrs[x] lists the dense hub indices adjacent to vertex x
	// (sorted); nonHubNbrs[x] lists the non-hub neighbours of
	// non-hub x (sorted).
	hubNbrs    [][]int32
	nonHubNbrs [][]uint32
	// hubVertex maps dense hub index -> vertex ID. Built eagerly in
	// NewStreaming: a lazy build would hide an O(n) scan inside the
	// first hub-edge arrival on the counting hot path and write shared
	// state, a data race the moment a counter is shared.
	hubVertex []uint32
	// CountNonHub additionally counts NNN triangles.
	CountNonHub bool

	// Running counters. Ingest is single-writer — AddEdge/RemoveEdge
	// mutate the adjacency structures and must not be called
	// concurrently — but a resident service polls these counters from
	// other goroutines while ingest runs, so they are atomics. A
	// concurrent read sees a monotone, per-counter-consistent
	// snapshot; once ingest quiesces the counts are exact.
	hhh, hhn, hnn, nnn atomic.Uint64
	edges              atomic.Uint64

	// Memory accounting. baseBytes is the fixed construction cost;
	// adjBytes tracks the growing adjacency entries (atomic for the
	// same reason as the counters: a resident service polls
	// MemoryBytes to enforce per-session budgets while ingest runs).
	baseBytes int64
	adjBytes  atomic.Int64
}

// streamAdjEntryBytes is the estimated resident cost of one
// adjacency entry: 4 bytes of payload plus append growth slack.
const streamAdjEntryBytes = 8

// NewStreaming creates a streaming counter over a universe of n
// vertices with the given hub IDs. Every hub ID must be a distinct
// vertex in [0, n); anything else is rejected with an error rather
// than corrupting (or panicking) the counter, since hub sets arrive
// from callers — on the serving path, straight from request bodies.
func NewStreaming(n int, hubIDs []uint32) (*Streaming, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: streaming counter needs a non-negative vertex count, got %d", n)
	}
	s := &Streaming{
		hubIdx:     make([]int32, n),
		hubs:       len(hubIDs),
		hubNbrs:    make([][]int32, n),
		nonHubNbrs: make([][]uint32, n),
	}
	for i := range s.hubIdx {
		s.hubIdx[i] = -1
	}
	s.hubVertex = make([]uint32, len(hubIDs))
	for i, h := range hubIDs {
		if int64(h) >= int64(n) {
			return nil, fmt.Errorf("core: hub ID %d out of range for %d vertices", h, n)
		}
		if s.hubIdx[h] >= 0 {
			return nil, fmt.Errorf("core: duplicate hub ID %d", h)
		}
		s.hubIdx[h] = int32(i)
		s.hubVertex[i] = h
	}
	s.words = (len(hubIDs) + 63) / 64
	s.h2h = make([][]uint64, len(hubIDs))
	for i := range s.h2h {
		s.h2h[i] = make([]uint64, s.words)
	}
	// Fixed footprint: hubIdx (4/vertex), the two per-vertex slice
	// headers (24 each), the H2H bit matrix and the hub reverse table.
	s.baseBytes = 4*int64(n) + 48*int64(n) +
		int64(len(hubIDs))*(8*int64(s.words)+24) + 4*int64(len(hubIDs))
	return s, nil
}

// MemoryBytes estimates the counter's resident size: the fixed
// construction footprint (vertex tables + H2H bit matrix) plus the
// adjacency entries accumulated by ingest. Safe to call concurrently
// with ingest; the serving layer polls it to enforce per-session
// memory budgets.
func (s *Streaming) MemoryBytes() int64 {
	return s.baseBytes + s.adjBytes.Load()
}

// ForEachEdge calls fn once per edge currently in the counter, in
// unspecified order. It reads the adjacency structures directly, so
// it must not run concurrently with AddEdge/RemoveEdge (same
// single-writer contract as ingest). The serving layer uses it to
// migrate a session's exact state into a bounded-memory estimator
// when the session outgrows its budget.
func (s *Streaming) ForEachEdge(fn func(u, v uint32)) {
	// Hub–hub edges: the upper triangle of the H2H bit matrix.
	for a := 0; a < s.hubs; a++ {
		row := s.h2h[a]
		for b := a + 1; b < s.hubs; b++ {
			if row[b>>6]&(1<<(uint(b)&63)) != 0 {
				fn(s.hubVertex[a], s.hubVertex[b])
			}
		}
	}
	// Hub–non-hub edges: stored once, under the hub's vertex slot.
	for a := 0; a < s.hubs; a++ {
		hv := s.hubVertex[a]
		for _, x := range s.nonHubNbrs[hv] {
			fn(hv, x)
		}
	}
	// Non-hub–non-hub edges: stored in both endpoints' lists; emit
	// each once via x < y, skipping hub slots (their nonHubNbrs hold
	// hub–non-hub edges, already emitted above).
	for x := range s.nonHubNbrs {
		if s.hubIdx[x] >= 0 {
			continue
		}
		for _, y := range s.nonHubNbrs[x] {
			if uint32(x) < y {
				fn(uint32(x), y)
			}
		}
	}
}

// HubIDs returns the designated hub vertex IDs in dense-index order.
// The order matters to anyone persisting a counter: NewStreaming
// assigns dense hub indices by input position, and the H2H layout and
// ForEachEdge enumeration order follow them — a durability layer that
// wants bit-identical recovery must recreate the counter with the
// hubs in this exact order.
func (s *Streaming) HubIDs() []uint32 {
	out := make([]uint32, len(s.hubVertex))
	copy(out, s.hubVertex)
	return out
}

// SnapshotEdges appends the counter's current edge set to dst in the
// deterministic ForEachEdge order and returns it. Replaying the
// returned edges into a fresh counter built with the same universe
// and hub order reproduces every class count exactly — that is the
// serialization contract the serving layer's session snapshots rest
// on. Same single-writer rules as ForEachEdge.
func (s *Streaming) SnapshotEdges(dst [][2]uint32) [][2]uint32 {
	if c := int(s.edges.Load()); cap(dst)-len(dst) < c {
		grown := make([][2]uint32, len(dst), len(dst)+c)
		copy(grown, dst)
		dst = grown
	}
	s.ForEachEdge(func(u, v uint32) {
		dst = append(dst, [2]uint32{u, v})
	})
	return dst
}

// NumVertices returns the size of the vertex universe.
func (s *Streaming) NumVertices() int { return len(s.hubIdx) }

// NumHubs returns the number of designated hubs.
func (s *Streaming) NumHubs() int { return s.hubs }

// Edges returns the number of distinct edges accepted so far. Safe to
// call concurrently with ingest.
func (s *Streaming) Edges() uint64 { return s.edges.Load() }

// HubTriangles returns the running count of triangles containing at
// least one hub. Safe to call concurrently with ingest.
func (s *Streaming) HubTriangles() uint64 {
	return s.hhh.Load() + s.hhn.Load() + s.hnn.Load()
}

// Classes returns the per-class running counts (NNN is zero unless
// CountNonHub is set). Safe to call concurrently with ingest.
func (s *Streaming) Classes() (hhh, hhn, hnn, nnn uint64) {
	return s.hhh.Load(), s.hhn.Load(), s.hnn.Load(), s.nnn.Load()
}

// negU64 is the two's-complement negation used to subtract from the
// atomic running counters.
func negU64(x uint64) uint64 { return ^x + 1 }

// AddEdge feeds one undirected edge into the stream and returns the
// number of hub triangles it closed. Self loops, duplicate edges and
// out-of-range endpoints are ignored.
func (s *Streaming) AddEdge(u, v uint32) uint64 {
	if u == v || int64(u) >= int64(len(s.hubIdx)) || int64(v) >= int64(len(s.hubIdx)) {
		return 0
	}
	hu, hv := s.hubIdx[u], s.hubIdx[v]
	switch {
	case hu >= 0 && hv >= 0:
		return s.addHubHub(hu, hv)
	case hu >= 0:
		return s.addHubNonHub(hu, v)
	case hv >= 0:
		return s.addHubNonHub(hv, u)
	default:
		return s.addNonHubNonHub(u, v)
	}
}

func (s *Streaming) h2hHas(a, b int32) bool {
	return s.h2h[a][b>>6]&(1<<(uint(b)&63)) != 0
}

func (s *Streaming) h2hSet(a, b int32) {
	s.h2h[a][b>>6] |= 1 << (uint(b) & 63)
	s.h2h[b][a>>6] |= 1 << (uint(a) & 63)
}

func (s *Streaming) addHubHub(a, b int32) uint64 {
	if s.h2hHas(a, b) {
		return 0
	}
	var closed uint64
	// HHH: hubs adjacent to both, via word-parallel row AND.
	ra, rb := s.h2h[a], s.h2h[b]
	for w := 0; w < s.words; w++ {
		closed += uint64(bits.OnesCount64(ra[w] & rb[w]))
	}
	s.hhh.Add(closed)
	// HHN: non-hubs adjacent to both hubs. Hub adjacency of
	// non-hubs is in hubNbrs; intersect the hubs' non-hub neighbour
	// lists, kept in nonHubNbrs under the hub's own vertex slot.
	hhn := intersectSortedU32(s.nonHubNbrs[s.hubVertexSlotInv(a)], s.nonHubNbrs[s.hubVertexSlotInv(b)])
	s.hhn.Add(hhn)
	closed += hhn
	s.h2hSet(a, b)
	s.edges.Add(1)
	return closed
}

// hubVertexSlotInv maps a dense hub index back to its vertex ID via
// the reverse table built in NewStreaming.
func (s *Streaming) hubVertexSlotInv(idx int32) uint32 {
	return s.hubVertex[idx]
}

func (s *Streaming) addHubNonHub(h int32, x uint32) uint64 {
	hv := s.hubVertexSlotInv(h)
	if containsU32(s.nonHubNbrs[hv], x) {
		return 0
	}
	var closed uint64
	// HHN: hubs h2 adjacent to both h and x.
	for _, h2 := range s.hubNbrs[x] {
		if s.h2hHas(h, h2) {
			closed++
		}
	}
	s.hhn.Add(closed)
	// HNN: non-hubs y adjacent to both h and x.
	hnn := intersectSortedU32(s.nonHubNbrs[hv], s.nonHubNbrs[x])
	s.hnn.Add(hnn)
	closed += hnn
	insertI32(&s.hubNbrs[x], h)
	insertU32(&s.nonHubNbrs[hv], x)
	s.adjBytes.Add(2 * streamAdjEntryBytes)
	s.edges.Add(1)
	return closed
}

func (s *Streaming) addNonHubNonHub(x, y uint32) uint64 {
	if containsU32(s.nonHubNbrs[x], y) {
		return 0
	}
	// HNN: hubs adjacent to both endpoints.
	closed := intersectSortedI32(s.hubNbrs[x], s.hubNbrs[y])
	s.hnn.Add(closed)
	if s.CountNonHub {
		s.nnn.Add(intersectSortedU32(s.nonHubNbrs[x], s.nonHubNbrs[y]))
	}
	insertU32(&s.nonHubNbrs[x], y)
	insertU32(&s.nonHubNbrs[y], x)
	s.adjBytes.Add(2 * streamAdjEntryBytes)
	s.edges.Add(1)
	return closed
}

// RemoveEdge deletes an undirected edge from the stream and returns
// the number of hub triangles it destroyed. Unknown edges, self
// loops and out-of-range endpoints are ignored. Together with AddEdge
// this makes the counter fully dynamic: any interleaving of
// insertions and deletions leaves the counts equal to those of the
// resulting graph.
func (s *Streaming) RemoveEdge(u, v uint32) uint64 {
	if u == v || int64(u) >= int64(len(s.hubIdx)) || int64(v) >= int64(len(s.hubIdx)) {
		return 0
	}
	hu, hv := s.hubIdx[u], s.hubIdx[v]
	switch {
	case hu >= 0 && hv >= 0:
		return s.removeHubHub(hu, hv)
	case hu >= 0:
		return s.removeHubNonHub(hu, v)
	case hv >= 0:
		return s.removeHubNonHub(hv, u)
	default:
		return s.removeNonHubNonHub(u, v)
	}
}

func (s *Streaming) h2hClear(a, b int32) {
	s.h2h[a][b>>6] &^= 1 << (uint(b) & 63)
	s.h2h[b][a>>6] &^= 1 << (uint(a) & 63)
}

func (s *Streaming) removeHubHub(a, b int32) uint64 {
	if !s.h2hHas(a, b) {
		return 0
	}
	// Destroy the edge first so the triangle scans below do not see
	// it (they count via third vertices only, so order is actually
	// immaterial — but keep the mirror of addHubHub explicit).
	s.h2hClear(a, b)
	var destroyed uint64
	ra, rb := s.h2h[a], s.h2h[b]
	for w := 0; w < s.words; w++ {
		destroyed += uint64(bits.OnesCount64(ra[w] & rb[w]))
	}
	s.hhh.Add(negU64(destroyed))
	hhn := intersectSortedU32(s.nonHubNbrs[s.hubVertexSlotInv(a)], s.nonHubNbrs[s.hubVertexSlotInv(b)])
	s.hhn.Add(negU64(hhn))
	destroyed += hhn
	s.edges.Add(negU64(1))
	return destroyed
}

func (s *Streaming) removeHubNonHub(h int32, x uint32) uint64 {
	hv := s.hubVertexSlotInv(h)
	if !containsU32(s.nonHubNbrs[hv], x) {
		return 0
	}
	removeI32(&s.hubNbrs[x], h)
	removeU32(&s.nonHubNbrs[hv], x)
	s.adjBytes.Add(-2 * streamAdjEntryBytes)
	var destroyed uint64
	for _, h2 := range s.hubNbrs[x] {
		if s.h2hHas(h, h2) {
			destroyed++
		}
	}
	s.hhn.Add(negU64(destroyed))
	hnn := intersectSortedU32(s.nonHubNbrs[hv], s.nonHubNbrs[x])
	s.hnn.Add(negU64(hnn))
	destroyed += hnn
	s.edges.Add(negU64(1))
	return destroyed
}

func (s *Streaming) removeNonHubNonHub(x, y uint32) uint64 {
	if !containsU32(s.nonHubNbrs[x], y) {
		return 0
	}
	removeU32(&s.nonHubNbrs[x], y)
	removeU32(&s.nonHubNbrs[y], x)
	s.adjBytes.Add(-2 * streamAdjEntryBytes)
	destroyed := intersectSortedI32(s.hubNbrs[x], s.hubNbrs[y])
	s.hnn.Add(negU64(destroyed))
	if s.CountNonHub {
		s.nnn.Add(negU64(intersectSortedU32(s.nonHubNbrs[x], s.nonHubNbrs[y])))
	}
	s.edges.Add(negU64(1))
	return destroyed
}

func removeU32(s *[]uint32, x uint32) {
	i := sort.Search(len(*s), func(i int) bool { return (*s)[i] >= x })
	if i < len(*s) && (*s)[i] == x {
		*s = append((*s)[:i], (*s)[i+1:]...)
	}
}

func removeI32(s *[]int32, x int32) {
	i := sort.Search(len(*s), func(i int) bool { return (*s)[i] >= x })
	if i < len(*s) && (*s)[i] == x {
		*s = append((*s)[:i], (*s)[i+1:]...)
	}
}

func containsU32(s []uint32, x uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

func insertU32(s *[]uint32, x uint32) {
	i := sort.Search(len(*s), func(i int) bool { return (*s)[i] >= x })
	*s = append(*s, 0)
	copy((*s)[i+1:], (*s)[i:])
	(*s)[i] = x
}

func insertI32(s *[]int32, x int32) {
	i := sort.Search(len(*s), func(i int) bool { return (*s)[i] >= x })
	*s = append(*s, 0)
	copy((*s)[i+1:], (*s)[i:])
	(*s)[i] = x
}

func intersectSortedU32(a, b []uint32) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func intersectSortedI32(a, b []int32) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
