package core

import (
	"sync/atomic"

	"lotustc/internal/sched"
)

// CountPerVertex counts, for every (relabeled) vertex, the number of
// triangles it participates in, using the three LOTUS phases. The
// per-vertex totals sum to 3x the triangle count. Use Relabeling /
// reorder.Inverse to map the counts back to original vertex IDs.
//
// Unlike the scalar Count, triangle corners here are scattered across
// vertices owned by other workers, so increments use atomics; the
// phase structure (and its locality) is unchanged.
func (lg *LotusGraph) CountPerVertex(pool *sched.Pool) []uint64 {
	if pool == nil {
		pool = sched.NewPool(0)
	}
	n := lg.numVertices
	counts := make([]uint64, n)
	bump := func(v uint32) { atomic.AddUint64(&counts[v], 1) }

	// Phase 1: HHH + HHN.
	pool.For(n, 0, func(_, start, end int) {
		for v := start; v < end; v++ {
			nv := lg.HE.Neighbors(uint32(v))
			for i := 1; i < len(nv); i++ {
				h1 := uint32(nv[i])
				row := lg.H2H.Row(h1)
				for j := 0; j < i; j++ {
					h2 := uint32(nv[j])
					if row.IsSet(h2) {
						bump(uint32(v))
						bump(h1)
						bump(h2)
					}
				}
			}
		}
	})

	// Phase 2: HNN — walk the 16-bit merge manually to learn which
	// hub closed each triangle.
	pool.For(n, 0, func(_, start, end int) {
		for v := start; v < end; v++ {
			hv := lg.HE.Neighbors(uint32(v))
			if len(hv) == 0 {
				continue
			}
			for _, u := range lg.NHE.Neighbors(uint32(v)) {
				hu := lg.HE.Neighbors(u)
				i, j := 0, 0
				for i < len(hv) && j < len(hu) {
					switch {
					case hv[i] < hu[j]:
						i++
					case hv[i] > hu[j]:
						j++
					default:
						bump(uint32(v))
						bump(u)
						bump(uint32(hv[i]))
						i++
						j++
					}
				}
			}
		}
	})

	// Phase 3: NNN.
	pool.For(n, 0, func(_, start, end int) {
		for v := start; v < end; v++ {
			nv := lg.NHE.Neighbors(uint32(v))
			for _, u := range nv {
				nu := lg.NHE.Neighbors(u)
				i, j := 0, 0
				for i < len(nv) && j < len(nu) {
					switch {
					case nv[i] < nu[j]:
						i++
					case nv[i] > nu[j]:
						j++
					default:
						bump(uint32(v))
						bump(u)
						bump(nv[i])
						i++
						j++
					}
				}
			}
		}
	})
	return counts
}
