package core

import (
	"time"

	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

// NonHubSubgraph extracts the symmetric sub-graph induced by the
// non-hub vertices (the NNN domain), with non-hub v mapped to
// v - HubCount. It is the input to one recursive LOTUS split
// (§5.5 category 1 / §7 future work: "recursively applying Lotus and
// splitting the NHE sub-graph further").
func (lg *LotusGraph) NonHubSubgraph() *graph.Graph {
	n := lg.numVertices
	hub := int(lg.HubCount)
	sub := n - hub
	if sub <= 0 {
		return graph.FromEdges(nil, graph.BuildOptions{})
	}
	edges := make([]graph.Edge, 0, lg.NHE.NumEdges())
	for v := hub; v < n; v++ {
		for _, u := range lg.NHE.Neighbors(uint32(v)) {
			edges = append(edges, graph.Edge{U: u - uint32(hub), V: uint32(v) - uint32(hub)})
		}
	}
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: sub})
}

// RecursiveResult aggregates a multi-level recursive LOTUS count.
type RecursiveResult struct {
	// Levels holds the per-level results; level i's NNN count is
	// superseded by level i+1's total (the deepest level's NNN is
	// counted directly).
	Levels []*Result
	// Total is the overall triangle count.
	Total uint64
	// Depth is the number of LOTUS splits performed (>= 1).
	Depth int
	// Preprocess accumulates the LOTUS graph construction time across
	// all levels (each split preprocesses its sub-graph afresh).
	Preprocess time.Duration
}

// RecursiveOptions tune CountRecursive.
type RecursiveOptions struct {
	Options
	Count CountOptions
	// MaxDepth bounds the number of LOTUS splits (>= 1; default 2).
	MaxDepth int
	// MinVertices stops recursion when the non-hub sub-graph is
	// smaller than this (default 4 × hub count of that level).
	MinVertices int
}

// CountRecursive applies LOTUS recursively: each level counts its
// HHH/HHN/HNN triangles, then the non-hub sub-graph is re-split with
// a fresh hub set instead of running the flat NNN phase. The paper
// proposes this for "social networks with a great number of
// low-degree hubs" (§5.5). Invalid inputs (nil or oriented graphs)
// return an error rather than panicking.
func CountRecursive(g *graph.Graph, pool *sched.Pool, opt RecursiveOptions) (*RecursiveResult, error) {
	if pool == nil {
		pool = sched.NewPool(0)
	}
	if opt.MaxDepth < 1 {
		opt.MaxDepth = 2
	}
	rr := &RecursiveResult{}
	cur := g
	for {
		lg, err := TryPreprocess(cur, opt.Options)
		if err != nil {
			return nil, err
		}
		rr.Preprocess += lg.PreprocessTime
		if pool.Cancelled() {
			// Torn down mid-level: return what completed; callers that
			// care (the engine) check the context and discard.
			return rr, nil
		}
		last := rr.Depth+1 >= opt.MaxDepth || tooSmall(lg, opt.MinVertices)
		copt := opt.Count
		copt.SkipNNN = !last
		res := lg.CountWithOptions(pool, copt)
		rr.Levels = append(rr.Levels, res)
		rr.Depth++
		rr.Total += res.HHH + res.HHN + res.HNN
		if last {
			rr.Total += res.NNN
			return rr, nil
		}
		if pool.Cancelled() {
			return rr, nil
		}
		cur = lg.NonHubSubgraph()
	}
}

func tooSmall(lg *LotusGraph, minVertices int) bool {
	if minVertices <= 0 {
		minVertices = 4 * int(lg.HubCount)
	}
	return lg.numVertices-int(lg.HubCount) < minVertices
}
