package core

import (
	"slices"
	"time"

	"lotustc/internal/bitarray"
	"lotustc/internal/graph"
	"lotustc/internal/reorder"
	"lotustc/internal/sched"
)

// TryPreprocessDirect builds the LotusGraph by transcribing
// Algorithm 2 literally: it walks each original vertex's neighbour
// list, maps IDs through the relabeling array on the fly, pushes hub
// neighbours into he and non-hub neighbours into nhe, sets H2H bits
// for hub-hub edges, and sorts the per-vertex lists in setEdges
// fashion — without materializing an intermediate relabeled graph the
// way TryPreprocessMaterialize does.
//
// Both implementations must produce bit-identical structures (tests
// enforce it); they differ only in constant factors, which the
// preprocessing ablation measures. TryPreprocessDirect avoids the
// full graph copy but pays per-edge relabeling loads;
// TryPreprocessMaterialize materializes the relabeled graph once and
// then splits rows with two binary searches per vertex.
//
// Invalid inputs (nil or oriented graphs) return an error instead of
// panicking: a resident service preprocesses caller-supplied graphs,
// and a bad request must fail the request, not the process.
func TryPreprocessDirect(g *graph.Graph, opt Options) (*LotusGraph, error) {
	if err := checkPreprocessInput(g); err != nil {
		return nil, err
	}
	t0 := time.Now()
	pool := opt.Pool
	if pool == nil {
		pool = sched.NewPool(0)
	}
	n := g.NumVertices()
	hubCount := opt.EffectiveHubCount(n)
	ra := reorder.Lotus(g, reorder.LotusOptions{HubCount: hubCount, FrontFraction: opt.FrontFraction})

	// Pass 1 (Alg 2 lines 10-21, counting only): per new-vertex HE
	// and NHE degrees.
	heCnt := make([]int64, n+1)
	nheCnt := make([]int64, n+1)
	pool.For(n, 0, func(_, start, end int) {
		for vOld := start; vOld < end; vOld++ {
			if pool.Cancelled() {
				return
			}
			vNew := ra[vOld]
			var he, nhe int64
			for _, uOld := range g.Neighbors(uint32(vOld)) {
				uNew := ra[uOld]
				if uNew >= vNew { // self edges were removed at build;
					continue // symmetric edge (Alg 2 line 14)
				}
				if uNew < uint32(hubCount) {
					he++
				} else {
					nhe++
				}
			}
			heCnt[vNew+1] = he
			nheCnt[vNew+1] = nhe
		}
	})
	for v := 0; v < n; v++ {
		heCnt[v+1] += heCnt[v]
		nheCnt[v+1] += nheCnt[v]
	}
	he := &HE16{offsets: heCnt, nbrs: make([]uint16, heCnt[n])}
	nhe := &NHE32{offsets: nheCnt, nbrs: make([]uint32, nheCnt[n])}
	h2h := bitarray.NewTri(uint32(hubCount))

	// Pass 2 (Alg 2 lines 10-23): fill, set H2H, sort (setEdges).
	pool.For(n, 0, func(_, start, end int) {
		for vOld := start; vOld < end; vOld++ {
			if pool.Cancelled() {
				return
			}
			vNew := ra[vOld]
			hw := he.offsets[vNew]
			nw := nhe.offsets[vNew]
			for _, uOld := range g.Neighbors(uint32(vOld)) {
				uNew := ra[uOld]
				if uNew >= vNew {
					continue
				}
				if uNew < uint32(hubCount) {
					he.nbrs[hw] = uint16(uNew)
					hw++
					if vNew < uint32(hubCount) {
						h2h.Set(vNew, uNew) // Alg 2 line 19
					}
				} else {
					nhe.nbrs[nw] = uNew
					nw++
				}
			}
			slices.Sort(he.nbrs[he.offsets[vNew]:hw])
			slices.Sort(nhe.nbrs[nhe.offsets[vNew]:nw])
		}
	})

	lg := &LotusGraph{
		HubCount:       uint32(hubCount),
		H2H:            h2h,
		HE:             he,
		NHE:            nhe,
		Relabeling:     ra,
		PreprocessTime: time.Since(t0),
		numVertices:    n,
	}
	lg.recordPreprocessMetrics(opt.Metrics)
	return lg, nil
}

// PreprocessDirect is the thin panicking wrapper over
// TryPreprocessDirect, kept for call sites that construct their own
// known-good graphs (generators, benchmarks).
func PreprocessDirect(g *graph.Graph, opt Options) *LotusGraph {
	return mustLotusGraph(TryPreprocessDirect(g, opt))
}
