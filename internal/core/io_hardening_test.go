package core

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"lotustc/internal/gen"
)

// The serialized header layout (io.go): magic 0..4, version 4..8,
// hubCount 8..12, numVerts 12..20, heEdges 20..28, nheEdges 28..36,
// then heOffsets. These offsets let the corpus below target specific
// fields of a valid stream.
const (
	hdrHubCount = 4 + 4
	hdrNumVerts = hdrHubCount + 4
	hdrHeEdges  = hdrNumVerts + 8
	hdrNheEdges = hdrHeEdges + 8
	hdrEnd      = hdrNheEdges + 8
)

func validStream(t *testing.T) []byte {
	t.Helper()
	lg := Preprocess(gen.Complete(12), Options{HubCount: 4, Pool: pool})
	var buf bytes.Buffer
	if err := lg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func putU32(data []byte, off int, v uint32) { binary.LittleEndian.PutUint32(data[off:], v) }
func putU64(data []byte, off int, v uint64) { binary.LittleEndian.PutUint64(data[off:], v) }

// TestReadLotusGraphCorruptCorpus runs the loader over a corpus of
// deliberately corrupted streams. Every entry must come back as an
// error — never a panic, and never an allocation proportional to the
// corrupt size field (huge sizes are rejected arithmetically before
// any size-derived make).
func TestReadLotusGraphCorruptCorpus(t *testing.T) {
	base := validStream(t)
	nv := binary.LittleEndian.Uint64(base[hdrNumVerts:])

	corpus := []struct {
		name   string
		mutate func(d []byte) []byte
	}{
		{"huge vertex count", func(d []byte) []byte {
			putU64(d, hdrNumVerts, 1<<40)
			return d
		}},
		{"huge HE edge count", func(d []byte) []byte {
			putU64(d, hdrHeEdges, ^uint64(0))
			return d
		}},
		{"huge NHE edge count", func(d []byte) []byte {
			putU64(d, hdrNheEdges, 1<<62)
			return d
		}},
		{"hub count beyond vertex count", func(d []byte) []byte {
			putU32(d, hdrHubCount, uint32(nv)+1)
			return d
		}},
		// A 2^31 hub count implies a ~256 PB H2H array; the 16-bit hub
		// ID bound must reject it before NewTri is reached. The vertex
		// count is raised too, so the hubCount <= nv check alone cannot
		// save us.
		{"hub count beyond 16-bit ID space", func(d []byte) []byte {
			putU64(d, hdrNumVerts, 1<<31+10)
			putU32(d, hdrHubCount, 1<<31)
			return d
		}},
		{"non-monotone HE offsets", func(d []byte) []byte {
			// heOffsets[1] = -1 < heOffsets[0] = 0.
			putU64(d, hdrEnd+8, ^uint64(0))
			return d
		}},
		{"HE offsets ending short of edge count", func(d []byte) []byte {
			putU64(d, hdrEnd+int(nv)*8, 0)
			return d
		}},
		{"relabeling value out of range", func(d []byte) []byte {
			putU32(d, len(d)-4, ^uint32(0))
			return d
		}},
		{"relabeling with duplicate", func(d []byte) []byte {
			copy(d[len(d)-4:], d[len(d)-8:len(d)-4])
			return d
		}},
	}
	for _, c := range corpus {
		t.Run(c.name, func(t *testing.T) {
			data := c.mutate(append([]byte(nil), base...))
			if _, err := ReadLotusGraph(bytes.NewReader(data)); err == nil {
				t.Fatal("corrupt stream accepted")
			}
		})
	}
}

// TestReadLotusGraphTruncations feeds every prefix of a valid stream
// to the loader: all must error (io.ErrUnexpectedEOF family), none may
// panic or succeed.
func TestReadLotusGraphTruncations(t *testing.T) {
	base := validStream(t)
	for i := 0; i < len(base); i++ {
		if _, err := ReadLotusGraph(bytes.NewReader(base[:i])); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

// TestLotusGraphRoundTripRMAT12 round-trips a scale-12 R-MAT graph
// through the binary format and requires bit-identical structures and
// identical counts.
func TestLotusGraphRoundTripRMAT12(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(12, 16, 7))
	lg := Preprocess(g, Options{Pool: pool})
	var buf bytes.Buffer
	if err := lg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lg2, err := ReadLotusGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lg2.HE.Raw(), lg.HE.Raw()) ||
		!reflect.DeepEqual(lg2.NHE.Raw(), lg.NHE.Raw()) ||
		!reflect.DeepEqual(lg2.Relabeling, lg.Relabeling) {
		t.Fatal("scale-12 payload mismatch after round trip")
	}
	a, b := lg.Count(pool), lg2.Count(pool)
	if a.Total != b.Total || a.HHH != b.HHH || a.HHN != b.HHN || a.HNN != b.HNN || a.NNN != b.NNN {
		t.Fatalf("counts differ after round trip: %+v vs %+v", a, b)
	}
}
