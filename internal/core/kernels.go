package core

import "fmt"

// Phase1Kernel selects how phase 1 probes the H2H bit array for each
// h1 row (the DESIGN.md "Kernel selection" section discusses the
// trade-off).
type Phase1Kernel int

const (
	// Phase1Auto picks per row: the word kernel when the row's pair
	// count makes word-parallel AND+popcount cheaper than single-bit
	// probes, the scalar kernel otherwise. This is the default.
	Phase1Auto Phase1Kernel = iota
	// Phase1Scalar probes each (h1, h2) pair as a single IsSet bit
	// test — the pre-PR5 behaviour, kept as the ablation baseline.
	Phase1Scalar
	// Phase1Word intersects each h1 row against a per-worker bitmap
	// of the vertex's hub neighbours, 64 pairs per AND+popcount.
	Phase1Word
)

// String names the kernel for flags and reports.
func (k Phase1Kernel) String() string {
	switch k {
	case Phase1Scalar:
		return "scalar"
	case Phase1Word:
		return "word"
	default:
		return "auto"
	}
}

// ParsePhase1Kernel maps a flag value to a kernel. The empty string
// selects the default (auto).
func ParsePhase1Kernel(s string) (Phase1Kernel, error) {
	switch s {
	case "", "auto":
		return Phase1Auto, nil
	case "scalar":
		return Phase1Scalar, nil
	case "word":
		return Phase1Word, nil
	}
	return Phase1Auto, fmt.Errorf("unknown phase-1 kernel %q (want auto, scalar or word)", s)
}

// IntersectKernel selects the intersection strategy for the HNN and
// NNN phases.
type IntersectKernel int

const (
	// IntersectAdaptive dispatches per pair of rows: galloping search
	// when one row is ≥ intersect.GallopRatio× the other, merge join
	// otherwise. This is the default.
	IntersectAdaptive IntersectKernel = iota
	// IntersectMerge always uses the linear merge join — the paper's
	// §4.4.3 choice and the pre-PR5 behaviour, kept as the ablation
	// baseline.
	IntersectMerge
)

// String names the kernel for flags and reports.
func (k IntersectKernel) String() string {
	if k == IntersectMerge {
		return "merge"
	}
	return "adaptive"
}

// ParseIntersectKernel maps a flag value to a kernel. The empty
// string selects the default (adaptive).
func ParseIntersectKernel(s string) (IntersectKernel, error) {
	switch s {
	case "", "adaptive":
		return IntersectAdaptive, nil
	case "merge":
		return IntersectMerge, nil
	}
	return IntersectAdaptive, fmt.Errorf("unknown intersect kernel %q (want adaptive or merge)", s)
}

// phase1Scratch is a worker's reusable phase-1 state: a bitmap over
// the hub ID space holding the current vertex's hub neighbours. At
// the 2^16 hub cap it is 8 KB — it stays resident in L1 across rows,
// which is what makes the word kernel profitable.
type phase1Scratch struct {
	bm []uint64
}

// wordRowThreshold reports whether the word kernel is the cheaper way
// to probe row h1 when the scalar path would test `pairs` individual
// bits: the word path reads (h1+63)/64 row words (bitmap words are
// L1-resident), the scalar path does `pairs` dependent bit probes. The
// factor 2 absorbs the word path's per-row overhead (shifted two-word
// assembly) and the amortized bitmap population.
func wordRowThreshold(pairs int, h1 uint32) bool {
	return pairs >= 2*((int(h1)>>6)+1)
}
