package core

import (
	"bytes"
	"testing"

	"lotustc/internal/gen"
)

// FuzzReadLotusGraph ensures the LotusGraph loader neither panics nor
// over-allocates on arbitrary bytes, and that anything it accepts
// passes structural validation (ReadLotusGraph validates internally,
// so acceptance implies a usable structure).
func FuzzReadLotusGraph(f *testing.F) {
	var buf bytes.Buffer
	lg := Preprocess(gen.Complete(8), Options{HubCount: 3})
	if err := lg.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("LOTS"))
	f.Add([]byte{})
	truncated := buf.Bytes()[:buf.Len()/2]
	f.Add(truncated)
	f.Fuzz(func(t *testing.T, data []byte) {
		lg, err := ReadLotusGraph(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted structures must count without panicking and obey
		// the class-sum invariant.
		res := lg.Count(nil)
		if res.HHH+res.HHN+res.HNN+res.NNN != res.Total {
			t.Fatal("class sum violated on accepted structure")
		}
	})
}
