package stats

import (
	"math"

	"lotustc/internal/core"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

// Probe holds the cheap structural statistics the auto-tuner's
// routing policy reads. The budget rule: the probe must stay well
// under the cheapest counting kernel on every graph, so nothing here
// scans all edges — the degree statistics come from an O(|V| +
// max-degree) histogram, the hub coverage from the histogram plus one
// pass over the hub rows only, and assortativity from a deterministic
// stride sample of rows.
type Probe struct {
	Vertices int64
	Edges    int64 // undirected edge count
	// AvgDegree / MaxDegree summarize the degree sequence.
	AvgDegree float64
	MaxDegree int64
	// DegreeGini is the Gini coefficient of the degree sequence: ~0
	// for flat (lattice/Erdős–Rényi) graphs, >0.5 for power-law ones.
	DegreeGini float64
	// Assortativity is Newman's degree correlation r, estimated over a
	// deterministic stride sample of rows on large graphs (exact when
	// the graph is small).
	Assortativity float64
	// HubCount is the effective LOTUS hub count for this graph and
	// HubDegreeMin the smallest degree in that hub set — the same
	// top-degree set (degree desc, ID asc ties) the LOTUS relabeling
	// moves to the front, so the coverage stats describe exactly the
	// structure the lotus kernels would build.
	HubCount     int64
	HubDegreeMin int64
	// HubEdgeCoveragePct is the percentage of edges with at least one
	// hub endpoint: the share of the graph the HE/H2H structures
	// capture. Low coverage means the hub machinery is paid for but
	// most counting happens in NHE anyway.
	HubEdgeCoveragePct float64
	// H2HEdgePct is the percentage of edges with both endpoints hubs;
	// H2HDensityPct that count over C(HubCount, 2) — the occupancy of
	// the H2H bit array, which decides whether the word-parallel
	// phase-1 kernel has anything to popcount.
	H2HEdgePct    float64
	H2HDensityPct float64
}

// StatsMap flattens the probe for the run report's Decision block.
func (p Probe) StatsMap() map[string]float64 {
	round := func(x float64) float64 { return math.Round(x*1e4) / 1e4 }
	return map[string]float64{
		"vertices":              float64(p.Vertices),
		"edges":                 float64(p.Edges),
		"avg_degree":            round(p.AvgDegree),
		"max_degree":            float64(p.MaxDegree),
		"degree_gini":           round(p.DegreeGini),
		"assortativity":         round(p.Assortativity),
		"hub_count":             float64(p.HubCount),
		"hub_degree_min":        float64(p.HubDegreeMin),
		"hub_edge_coverage_pct": round(p.HubEdgeCoveragePct),
		"h2h_edge_pct":          round(p.H2HEdgePct),
		"h2h_density_pct":       round(p.H2HDensityPct),
	}
}

// assortSampleTarget bounds the ordered endpoint pairs the
// assortativity estimate reads; below 2x the target the scan is
// exact.
const assortSampleTarget = 1 << 18

// probeChunks cuts [0, n) into near-equal ranges aligned to 64-vertex
// boundaries (so per-chunk bitset writers never share a word), one
// per pool worker. Per-chunk partial results indexed by chunk and
// merged in chunk order make every float reduction deterministic no
// matter which worker ran which chunk.
func probeChunks(n, workers int) [][2]int {
	if workers < 1 {
		workers = 1
	}
	per := (n/workers + 63) &^ 63
	if per == 0 {
		per = 64
	}
	var out [][2]int
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	if len(out) == 0 {
		out = append(out, [2]int{0, 0})
	}
	return out
}

// ComputeProbe measures g's routing statistics. hubCount has
// core.Options semantics (0 = adaptive default); pool supplies the
// workers and its cancellation stops the probe early (the caller's
// context check discards the result). The output is deterministic for
// a given graph: the hub set breaks degree ties by ascending vertex
// ID, exactly as reorder.byDegreeDesc does, and all parallel
// reductions merge per-chunk partials in chunk order.
func ComputeProbe(g *graph.Graph, hubCount int, pool *sched.Pool) Probe {
	if pool == nil {
		pool = sched.NewPool(0)
	}
	n := g.NumVertices()
	m := g.NumEdges()
	p := Probe{Vertices: int64(n), Edges: m}
	if n == 0 {
		return p
	}
	p.AvgDegree = 2 * float64(m) / float64(n)
	chunks := probeChunks(n, pool.Workers())
	nc := len(chunks)

	// Degree histogram, built per chunk (growing each chunk's bins to
	// its local max) and merged: the O(|V| + max-degree) spine of the
	// skew and hub threshold computations, one pass over the degrees.
	histPer := make([][]int64, nc)
	pool.For(nc, 1, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			if pool.Cancelled() {
				return
			}
			h := make([]int64, 256)
			for v := chunks[c][0]; v < chunks[c][1]; v++ {
				d := g.Degree(uint32(v))
				for d >= len(h) {
					h = append(h[:cap(h)], make([]int64, cap(h))...)
				}
				h[d]++
			}
			histPer[c] = h
		}
	})
	maxDeg := 0
	for _, h := range histPer {
		for d := len(h) - 1; d > maxDeg; d-- {
			if h[d] != 0 {
				maxDeg = d
				break
			}
		}
	}
	p.MaxDegree = int64(maxDeg)
	hist := make([]int64, maxDeg+1)
	for _, h := range histPer {
		if len(h) > maxDeg+1 {
			h = h[:maxDeg+1]
		}
		for d, c := range h {
			hist[d] += c
		}
	}

	// Gini over the ascending degree sequence, blockwise from the
	// histogram: a block of c vertices with degree d and r vertices
	// before it contributes d*(c*r + c*(c+1)/2) to sum(rank_i * x_i).
	if m > 0 {
		var weighted float64
		var rank int64
		for d := 0; d <= maxDeg; d++ {
			c := hist[d]
			if c == 0 {
				continue
			}
			weighted += float64(d) * (float64(c)*float64(rank) + float64(c)*float64(c+1)/2)
			rank += c
		}
		s := 2 * float64(m) // sum of degrees
		p.DegreeGini = 2*weighted/(float64(n)*s) - float64(n+1)/float64(n)
		if p.DegreeGini < 0 {
			p.DegreeGini = 0
		}
	}

	// Hub set: the top-h degrees, ties broken by ascending ID — the
	// same set reorder puts at the front. The degree threshold, the
	// tie quota and the hub degree sum all come from the histogram;
	// the bitset marks the members for the h2h row pass.
	h := core.Options{HubCount: hubCount}.EffectiveHubCount(n)
	p.HubCount = int64(h)
	cut := maxDeg
	var above, hubDegSum int64 // vertices with degree > cut, their degree total
	for cut > 0 && above+hist[cut] < int64(h) {
		above += hist[cut]
		hubDegSum += hist[cut] * int64(cut)
		cut--
	}
	p.HubDegreeMin = int64(cut)
	quota := int64(h) - above // degree == cut vertices admitted, by ascending ID
	hubDegSum += quota * int64(cut)
	// Parallel quota-exact marking: chunk c may admit degree == cut
	// vertices only after every earlier chunk took its share, and the
	// per-chunk tie counts are already sitting in the per-chunk
	// histograms, so only the prefix sum is new work. Chunk boundaries
	// are 64-aligned, so bitset writers never share a word. Each chunk
	// also collects its hub IDs, so the h2h pass below walks only the
	// hub rows instead of scanning all of [0, n).
	isHub := make([]uint64, (n+63)/64)
	tiesBefore := make([]int64, nc)
	for c := 1; c < nc; c++ {
		tiesBefore[c] = tiesBefore[c-1]
		if h := histPer[c-1]; cut < len(h) {
			tiesBefore[c] += h[cut]
		}
	}
	hubsPer := make([][]uint32, nc)
	pool.For(nc, 1, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			if pool.Cancelled() {
				return
			}
			q := quota - tiesBefore[c]
			var ids []uint32
			for v := chunks[c][0]; v < chunks[c][1]; v++ {
				d := g.Degree(uint32(v))
				if d > cut || (d == cut && q > 0) {
					isHub[v>>6] |= 1 << (v & 63)
					ids = append(ids, uint32(v))
				}
				if d == cut {
					q--
				}
			}
			hubsPer[c] = ids
		}
	})
	hub := func(v uint32) bool { return isHub[v>>6]&(1<<(v&63)) != 0 }

	// Hub-to-hub edges, each counted once (u < v): only the collected
	// hub rows are walked, so the pass is proportional to the hub
	// edges, not |V| or |E|.
	h2hPer := make([]uint64, nc)
	pool.For(nc, 1, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			var local uint64
			for _, v := range hubsPer[c] {
				if pool.Cancelled() {
					return
				}
				for _, u := range g.Neighbors(v) {
					if u >= v {
						break
					}
					if hub(u) {
						local++
					}
				}
			}
			h2hPer[c] = local
		}
	})
	var h2h int64
	for _, x := range h2hPer {
		h2h += int64(x)
	}
	if m > 0 {
		p.HubEdgeCoveragePct = 100 * float64(hubDegSum-h2h) / float64(m)
		p.H2HEdgePct = 100 * float64(h2h) / float64(m)
	}
	if h > 1 {
		p.H2HDensityPct = 100 * 2 * float64(h2h) / (float64(h) * float64(h-1))
	}

	// Assortativity: Newman's r over the ordered endpoint pairs of
	// rows v with v % stride == 0. Exact (stride 1) while the full
	// scan stays under 2x the sample target; beyond that the stride
	// caps the scanned pairs so the probe never pays a full edge scan
	// on a big graph. Partials merge in chunk order.
	stride := int64(1)
	if 2*m > 2*assortSampleTarget {
		stride = (2*m + assortSampleTarget - 1) / assortSampleTarget
	}
	type partial struct {
		sx, sy, sxy, sxx, syy, cnt float64
		_                          [2]float64 // avoid false sharing between chunks
	}
	parts := make([]partial, nc)
	pool.For(nc, 1, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			pt := &parts[c]
			// First sampled vertex at or after the chunk start: chunk
			// bounds are not stride-aligned, the sample positions are.
			first := (int64(chunks[c][0]) + stride - 1) / stride * stride
			for v64 := first; v64 < int64(chunks[c][1]); v64 += stride {
				v := int(v64)
				if pool.Cancelled() {
					return
				}
				dv := float64(g.Degree(uint32(v)))
				for _, u := range g.Neighbors(uint32(v)) {
					du := float64(g.Degree(u))
					pt.sx += dv
					pt.sy += du
					pt.sxy += dv * du
					pt.sxx += dv * dv
					pt.syy += du * du
					pt.cnt++
				}
			}
		}
	})
	var sx, sy, sxy, sxx, syy, cnt float64
	for i := range parts {
		sx += parts[i].sx
		sy += parts[i].sy
		sxy += parts[i].sxy
		sxx += parts[i].sxx
		syy += parts[i].syy
		cnt += parts[i].cnt
	}
	if cnt > 0 {
		cov := sxy/cnt - (sx/cnt)*(sy/cnt)
		vx := sxx/cnt - (sx/cnt)*(sx/cnt)
		vy := syy/cnt - (sy/cnt)*(sy/cnt)
		if vx > 0 && vy > 0 {
			p.Assortativity = cov / math.Sqrt(vx*vy)
		}
	}
	return p
}
