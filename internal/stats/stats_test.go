package stats

import (
	"math"
	"testing"

	"lotustc/internal/baseline"
	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

var pool = sched.NewPool(2)

func TestTable1EdgeSplitSumsTo100(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 1))
	t1 := ComputeTable1(g, 0.01)
	if s := t1.TotalHubPct + t1.NonHubPct; math.Abs(s-100) > 1e-6 {
		t.Fatalf("edge split sums to %v", s)
	}
	if math.Abs(t1.TotalHubPct-(t1.HubToHubPct+t1.HubToNonHubPct)) > 1e-9 {
		t.Fatal("TotalHubPct inconsistent")
	}
}

func TestTable1TriangleCountMatchesOracle(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 2))
	t1 := ComputeTable1(g, 0.01)
	if want := baseline.BruteForce(g); t1.TotalTriangles != want {
		t.Fatalf("Table1 triangles = %d, want %d", t1.TotalTriangles, want)
	}
	if t1.HubTriangles > t1.TotalTriangles {
		t.Fatal("hub triangles exceed total")
	}
}

func TestTable1HubAndSpokes(t *testing.T) {
	// 4 hub clique + 396 leaves, each on 2 hubs: with 1% hubs (4
	// vertices = the clique), every triangle contains a hub and every
	// edge touches a hub.
	g := gen.HubAndSpokes(4, 396, 2, 3)
	t1 := ComputeTable1(g, 0.01)
	if t1.HubTrianglePct != 100 {
		t.Fatalf("hub triangle pct = %v, want 100", t1.HubTrianglePct)
	}
	if t1.NonHubPct != 0 {
		t.Fatalf("non-hub edge pct = %v, want 0", t1.NonHubPct)
	}
	if t1.RelativeDensity <= 1 {
		t.Fatalf("hub clique relative density = %v, want >> 1", t1.RelativeDensity)
	}
}

func TestTable1SkewedVsUniformDensity(t *testing.T) {
	// The hub sub-graph of a skewed graph must be far denser relative
	// to the whole graph than that of a uniform graph (§3.4).
	rmat := ComputeTable1(gen.RMAT(gen.DefaultRMAT(11, 8, 5)), 0.01)
	er := ComputeTable1(gen.ErdosRenyi(1<<11, 8<<11, 5), 0.01)
	if rmat.RelativeDensity <= er.RelativeDensity {
		t.Fatalf("RMAT RD %v <= ER RD %v", rmat.RelativeDensity, er.RelativeDensity)
	}
	if rmat.TotalHubPct <= er.TotalHubPct {
		t.Fatalf("RMAT hub edge pct %v <= ER %v", rmat.TotalHubPct, er.TotalHubPct)
	}
}

func TestTable1FruitlessRange(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 8))
	t1 := ComputeTable1(g, 0.01)
	if t1.FruitlessSearchPct < 0 || t1.FruitlessSearchPct > 100 {
		t.Fatalf("fruitless pct out of range: %v", t1.FruitlessSearchPct)
	}
}

func TestTable1Degenerate(t *testing.T) {
	empty := graph.FromEdges(nil, graph.BuildOptions{})
	if got := ComputeTable1(empty, 0.01); got.TotalTriangles != 0 {
		t.Fatal("empty graph produced triangles")
	}
	single := graph.FromEdges([]graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{})
	t1 := ComputeTable1(single, 0.01)
	if t1.TotalHubPct != 100 {
		t.Fatalf("one edge with 1 hub: hub pct = %v, want 100", t1.TotalHubPct)
	}
}

func TestTable7Accounting(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	lg := core.Preprocess(g, core.Options{HubCount: 128, Pool: pool})
	t7 := ComputeTable7(g, lg)
	if t7.CSXEdgesBytes != 4*g.NumEdges() {
		t.Fatalf("CSXEdgesBytes = %d", t7.CSXEdgesBytes)
	}
	if t7.CSXBytes != t7.CSXEdgesBytes+8*int64(g.NumVertices()+1) {
		t.Fatalf("CSXBytes = %d", t7.CSXBytes)
	}
	if t7.LotusBytes != lg.TopologyBytes() {
		t.Fatal("LotusBytes mismatch")
	}
	wantGrowth := 100 * float64(t7.LotusBytes-t7.CSXBytes) / float64(t7.CSXBytes)
	if math.Abs(t7.GrowthPct-wantGrowth) > 1e-9 {
		t.Fatalf("GrowthPct = %v, want %v", t7.GrowthPct, wantGrowth)
	}
}

func TestTable7HESavesBytes(t *testing.T) {
	// On a hub-dominated graph, HE holds most edges at 2 bytes each,
	// so LOTUS's edge storage must undercut CSX's 4 bytes/edge even
	// after adding the second index array.
	g := gen.HubAndSpokes(64, 4000, 8, 1)
	lg := core.Preprocess(g, core.Options{HubCount: 64, Pool: pool})
	split := ComputeEdgeSplit(lg)
	if split.HEPct < 99 {
		t.Fatalf("expected ~all edges in HE, got %v%%", split.HEPct)
	}
	t7 := ComputeTable7(g, lg)
	edgeBytesLotus := 2*lg.HE.NumEdges() + 4*lg.NHE.NumEdges()
	if edgeBytesLotus >= t7.CSXEdgesBytes {
		t.Fatalf("LOTUS edge bytes %d not below CSX %d", edgeBytesLotus, t7.CSXEdgesBytes)
	}
}

func TestTable8AndEdgeSplit(t *testing.T) {
	g := gen.Complete(64)
	lg := core.Preprocess(g, core.Options{HubCount: 64, Pool: pool})
	t8 := ComputeTable8(lg)
	if t8.DensityPct != 100 {
		t.Fatalf("K64 all-hubs density = %v, want 100", t8.DensityPct)
	}
	split := ComputeEdgeSplit(lg)
	if split.HEPct != 100 || split.NHEEdges != 0 {
		t.Fatalf("K64 all-hubs split = %+v", split)
	}
}

func TestTriangleSplit(t *testing.T) {
	g := gen.HubAndSpokes(6, 40, 3, 2)
	lg := core.Preprocess(g, core.Options{HubCount: 6, Pool: pool})
	res := lg.Count(pool)
	ts := ComputeTriangleSplit(res)
	if ts.HubPct != 100 || ts.NonHubPct != 0 {
		t.Fatalf("split = %+v, want all hub", ts)
	}
	// Degenerate: zero triangles.
	lgZero := core.Preprocess(gen.Ring(32), core.Options{HubCount: 4, Pool: pool})
	if s := ComputeTriangleSplit(lgZero.Count(pool)); s.HubPct != 0 || s.NonHubPct != 0 {
		t.Fatalf("zero-triangle split = %+v", s)
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// A star is maximally disassortative: r = -1.
	if r := DegreeAssortativity(gen.Star(20)); math.Abs(r+1) > 1e-9 {
		t.Fatalf("star assortativity = %v, want -1", r)
	}
	// Degree-regular graphs have undefined correlation -> 0.
	if r := DegreeAssortativity(gen.Ring(20)); r != 0 {
		t.Fatalf("ring assortativity = %v, want 0", r)
	}
	if r := DegreeAssortativity(gen.Complete(8)); r != 0 {
		t.Fatalf("clique assortativity = %v, want 0", r)
	}
	// Empty graph.
	if r := DegreeAssortativity(graph.FromEdges(nil, graph.BuildOptions{NumVertices: 3})); r != 0 {
		t.Fatalf("empty assortativity = %v", r)
	}
	// BA preferential attachment is known to be near-neutral to
	// slightly disassortative; just require a sane range.
	if r := DegreeAssortativity(gen.BarabasiAlbert(2000, 3, 4)); r < -1 || r > 1 {
		t.Fatalf("BA assortativity out of range: %v", r)
	}
	// Hub-and-spokes (hubs to leaves) must be strongly negative.
	if r := DegreeAssortativity(gen.HubAndSpokes(4, 400, 2, 1)); r > -0.5 {
		t.Fatalf("hub-and-spokes assortativity = %v, want << 0", r)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := gen.Star(9) // center degree 8, leaves degree 1
	h := DegreeHistogram(g)
	// bucket(1) = 1 (leaves: 8), bucket for 8 = 4 (since 8>>1.. 8 needs 4 shifts)
	var total int64
	for _, c := range h {
		total += c
	}
	if total != 9 {
		t.Fatalf("histogram covers %d vertices, want 9", total)
	}
	if h[1] != 8 {
		t.Fatalf("leaf bucket = %d, want 8", h[1])
	}
	if h[4] != 1 {
		t.Fatalf("center bucket = %d, want 1", h[4])
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	// Qualitative Table 1 shape on a strongly skewed generator: hubs
	// (1% of vertices) should be incident to well over a third of all
	// edges, and most triangles should contain a hub.
	g := gen.ChungLu(gen.ChungLuParams{N: 1 << 12, M: 64 << 12, Gamma: 2.0, Seed: 4})
	t1 := ComputeTable1(g, 0.01)
	if t1.TotalHubPct < 35 {
		t.Fatalf("hub edge pct = %.1f, want > 35 on a skewed graph", t1.TotalHubPct)
	}
	if t1.HubTrianglePct < 60 {
		t.Fatalf("hub triangle pct = %.1f, want > 60 on a skewed graph", t1.HubTrianglePct)
	}
	if t1.RelativeDensity < 50 {
		t.Fatalf("relative density = %.1f, want >> 1", t1.RelativeDensity)
	}
}
