// Package stats computes the topological characteristics the paper
// reports: Table 1 (hub edge split, hub triangles, relative density,
// fruitless searches, at 1% hubs), Table 7 (topology sizes CSX vs
// LOTUS), Table 8 (H2H density / zero cachelines) and Fig 7/8 (LOTUS
// triangle and edge splits).
package stats

import (
	"math"

	"lotustc/internal/core"
	"lotustc/internal/graph"
	"lotustc/internal/intersect"
	"lotustc/internal/reorder"
)

// Table1 holds one dataset row of the paper's Table 1.
type Table1 struct {
	// Edge split, percent of |E|.
	HubToHubPct    float64
	HubToNonHubPct float64
	TotalHubPct    float64 // HubToHubPct + HubToNonHubPct
	NonHubPct      float64
	// Triangle split.
	TotalTriangles uint64
	HubTriangles   uint64
	HubTrianglePct float64
	// Relative density of the hub sub-graph (§3.4).
	RelativeDensity float64
	// Fruitless searches (§3.3): of the edges accessed by merge-join
	// intersections while processing non-hub vertices with no hub
	// edges, the percentage pointing at hubs.
	FruitlessSearchPct float64
}

// ComputeTable1 computes the Table 1 row for g with the top
// hubFraction (paper: 0.01) of vertices by degree selected as hubs.
func ComputeTable1(g *graph.Graph, hubFraction float64) Table1 {
	n := g.NumVertices()
	var t Table1
	if n == 0 || g.NumEdges() == 0 {
		return t
	}
	hubCount := int(hubFraction * float64(n))
	if hubCount < 1 {
		hubCount = 1
	}
	// Degree ordering puts hubs at IDs < hubCount, matching the §3.1
	// setting in which the measurements are defined.
	ra := reorder.DegreeOrder(g)
	rg := g.Relabel(ra)
	og := rg.Orient()
	isHub := func(v uint32) bool { return v < uint32(hubCount) }

	// Edge split.
	var h2h, h2n, n2n int64
	for v := 0; v < n; v++ {
		for _, u := range og.Neighbors(uint32(v)) {
			switch {
			case isHub(uint32(v)) && isHub(u):
				h2h++
			case isHub(uint32(v)) || isHub(u):
				h2n++
			default:
				n2n++
			}
		}
	}
	e := float64(og.NumEdges())
	t.HubToHubPct = 100 * float64(h2h) / e
	t.HubToNonHubPct = 100 * float64(h2n) / e
	t.TotalHubPct = t.HubToHubPct + t.HubToNonHubPct
	t.NonHubPct = 100 * float64(n2n) / e

	// Triangle split: enumerate each triangle once on the oriented
	// graph and classify by hub membership of its corners.
	var total, hub uint64
	for v := 0; v < n; v++ {
		nv := og.Neighbors(uint32(v))
		for _, u := range nv {
			nu := og.Neighbors(u)
			i, j := 0, 0
			for i < len(nv) && j < len(nu) {
				switch {
				case nv[i] < nu[j]:
					i++
				case nv[i] > nu[j]:
					j++
				default:
					total++
					if isHub(uint32(v)) || isHub(u) || isHub(nv[i]) {
						hub++
					}
					i++
					j++
				}
			}
		}
	}
	t.TotalTriangles = total
	t.HubTriangles = hub
	if total > 0 {
		t.HubTrianglePct = 100 * float64(hub) / float64(total)
	}

	// Relative density RD = (|E'|/|V'|^2) / (|E|/|V|^2) for the hub
	// sub-graph (§3.4).
	if h2h > 0 {
		t.RelativeDensity = (float64(h2h) / (float64(hubCount) * float64(hubCount))) /
			(e / (float64(n) * float64(n)))
	}

	// Fruitless searches (§3.3): consider non-hub vertices v whose
	// neighbour list contains no hub (N_v ∩ Hubs = {}); during their
	// merge-join intersections, measure the fraction of accessed
	// edges that point at hubs.
	var accessed, hubAccessed uint64
	for v := hubCount; v < n; v++ {
		nv := og.Neighbors(uint32(v))
		// Oriented lists are sorted: a hub neighbour would be first.
		if len(nv) > 0 && isHub(nv[0]) {
			continue
		}
		// The full (symmetric) neighbour list must also be hub-free.
		full := rg.Neighbors(uint32(v))
		if len(full) > 0 && isHub(full[0]) {
			continue
		}
		for _, u := range nv {
			intersect.MergeTraced(nv, og.Neighbors(u), func(x uint32, _ bool) {
				accessed++
				if isHub(x) {
					hubAccessed++
				}
			})
		}
	}
	if accessed > 0 {
		t.FruitlessSearchPct = 100 * float64(hubAccessed) / float64(accessed)
	}
	return t
}

// Table7 holds one dataset row of the paper's Table 7: topology data
// sizes under the Forward algorithm's CSX layout and under LOTUS.
type Table7 struct {
	// CSXEdgesBytes is the neighbour array alone, symmetric edges
	// removed: 4 bytes x |E|.
	CSXEdgesBytes int64
	// CSXBytes adds the 8-byte index array: 8(|V|+1) + 4|E|.
	CSXBytes int64
	// LotusBytes is the LOTUS structure: two index arrays, the H2H
	// bit array, 2-byte HE edges and 4-byte NHE edges.
	LotusBytes int64
	// GrowthPct is 100*(Lotus-CSX)/CSX; negative when LOTUS shrinks
	// the topology (Table 7 averages -4.1%).
	GrowthPct float64
}

// ComputeTable7 sizes the topology of g under both layouts.
func ComputeTable7(g *graph.Graph, lg *core.LotusGraph) Table7 {
	var t Table7
	t.CSXEdgesBytes = 4 * g.NumEdges()
	t.CSXBytes = 8*int64(g.NumVertices()+1) + t.CSXEdgesBytes
	t.LotusBytes = lg.TopologyBytes()
	if t.CSXBytes > 0 {
		t.GrowthPct = 100 * float64(t.LotusBytes-t.CSXBytes) / float64(t.CSXBytes)
	}
	return t
}

// Table8 holds one row of the paper's Table 8.
type Table8 struct {
	DensityPct       float64
	ZeroCachelinePct float64
}

// ComputeTable8 reports the H2H bit array characteristics.
func ComputeTable8(lg *core.LotusGraph) Table8 {
	return Table8{
		DensityPct:       100 * lg.H2H.Density(),
		ZeroCachelinePct: 100 * lg.H2H.ZeroCachelineFraction(),
	}
}

// EdgeSplit reports Fig 8: the percentage of edges LOTUS stores in HE
// vs NHE.
type EdgeSplit struct {
	HEPct, NHEPct float64
	HEEdges       int64
	NHEEdges      int64
}

// ComputeEdgeSplit computes the Fig 8 split for a preprocessed graph.
func ComputeEdgeSplit(lg *core.LotusGraph) EdgeSplit {
	he := lg.HE.NumEdges()
	nhe := lg.NHE.NumEdges()
	s := EdgeSplit{HEEdges: he, NHEEdges: nhe}
	if tot := he + nhe; tot > 0 {
		s.HEPct = 100 * float64(he) / float64(tot)
		s.NHEPct = 100 * float64(nhe) / float64(tot)
	}
	return s
}

// TriangleSplit reports Fig 7: hub vs non-hub triangle percentages of
// a LOTUS count result.
type TriangleSplit struct {
	HubPct, NonHubPct float64
}

// ComputeTriangleSplit derives Fig 7 from a count result.
func ComputeTriangleSplit(res *core.Result) TriangleSplit {
	var s TriangleSplit
	if res.Total > 0 {
		s.HubPct = 100 * float64(res.HubTriangles()) / float64(res.Total)
		s.NonHubPct = 100 * float64(res.NNN) / float64(res.Total)
	}
	return s
}

// DegreeAssortativity returns the Pearson correlation between the
// degrees of edge endpoints (Newman's r): positive when hubs attach
// to hubs, negative when hubs attach to leaves. Real social networks
// are assortative, web graphs disassortative — one of the structural
// differences behind the Table 8 contrast between the two families.
// Returns 0 for degree-regular graphs (undefined correlation).
func DegreeAssortativity(g *graph.Graph) float64 {
	var sx, sy, sxy, sxx, syy, m float64
	for v := 0; v < g.NumVertices(); v++ {
		dv := float64(g.Degree(uint32(v)))
		for _, u := range g.Neighbors(uint32(v)) {
			if u >= uint32(v) {
				break // each undirected edge once, both orders summed below
			}
			du := float64(g.Degree(u))
			// Count the edge in both orientations to symmetrize.
			sx += dv + du
			sy += du + dv
			sxy += 2 * dv * du
			sxx += dv*dv + du*du
			syy += du*du + dv*dv
			m += 2
		}
	}
	if m == 0 {
		return 0
	}
	cov := sxy/m - (sx/m)*(sy/m)
	varx := sxx/m - (sx/m)*(sx/m)
	vary := syy/m - (sy/m)*(sy/m)
	if varx <= 0 || vary <= 0 {
		return 0
	}
	return cov / math.Sqrt(varx*vary)
}

// DegreeHistogram returns the log2-bucketed degree distribution,
// used by the harness to show the skew of each generated dataset.
func DegreeHistogram(g *graph.Graph) []int64 {
	var hist []int64
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(uint32(v))
		b := 0
		for d > 0 {
			d >>= 1
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}
