package stats

import (
	"math"
	"testing"

	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

func probe(t *testing.T, g *graph.Graph, hubs int) Probe {
	t.Helper()
	return ComputeProbe(g, hubs, sched.NewPool(0))
}

// TestProbeBasics: counts and averages on a known small graph.
func TestProbeBasics(t *testing.T) {
	g := gen.Complete(10) // n=10, m=45, every degree 9
	p := probe(t, g, 4)
	if p.Vertices != 10 || p.Edges != 45 {
		t.Fatalf("n=%d m=%d", p.Vertices, p.Edges)
	}
	if p.AvgDegree != 9 || p.MaxDegree != 9 {
		t.Fatalf("avg=%v max=%d", p.AvgDegree, p.MaxDegree)
	}
	if p.DegreeGini != 0 {
		t.Fatalf("uniform degrees must have gini 0, got %v", p.DegreeGini)
	}
	if p.HubCount != 4 || p.HubDegreeMin != 9 {
		t.Fatalf("hubs=%d min=%d", p.HubCount, p.HubDegreeMin)
	}
	// 4 hubs in K10: hub degree sum 36, h2h = C(4,2) = 6 edges.
	// Coverage = (36-6)/45, h2h pct = 6/45, density = 100%.
	if want := 100 * float64(30) / 45; math.Abs(p.HubEdgeCoveragePct-want) > 1e-9 {
		t.Fatalf("coverage %v, want %v", p.HubEdgeCoveragePct, want)
	}
	if want := 100 * float64(6) / 45; math.Abs(p.H2HEdgePct-want) > 1e-9 {
		t.Fatalf("h2h pct %v, want %v", p.H2HEdgePct, want)
	}
	if math.Abs(p.H2HDensityPct-100) > 1e-9 {
		t.Fatalf("h2h density %v, want 100", p.H2HDensityPct)
	}
}

// TestGiniOrdering: skewed degree sequences must score far above flat
// ones — the star/grid gap is what the policy's skew reading rests on.
func TestGiniOrdering(t *testing.T) {
	// A star's leaves still hold half the degree mass, so its Gini
	// tops out near 0.5 — the analytic value for {n-1, 1, ..., 1}.
	star := probe(t, gen.Star(1000), 0)
	grid := probe(t, gen.Grid(32, 32), 0)
	if star.DegreeGini < 0.45 {
		t.Errorf("star gini %v, want near 0.5", star.DegreeGini)
	}
	if grid.DegreeGini > 0.1 {
		t.Errorf("grid gini %v, want near 0", grid.DegreeGini)
	}
}

// TestHubSetMatchesLOTUS: the hub threshold, tie quota and coverage
// must describe the same top-degree set (degree desc, ID asc ties)
// the LOTUS relabeling uses — verified against a brute-force
// selection on a graph dense in degree ties.
func TestHubSetMatchesLOTUS(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 3))
	n := g.NumVertices()
	for _, hubs := range []int{1, 7, 64, n / 2} {
		p := probe(t, g, hubs)
		h := core.Options{HubCount: hubs}.EffectiveHubCount(n)
		if p.HubCount != int64(h) {
			t.Fatalf("hubs=%d: HubCount %d, want %d", hubs, p.HubCount, h)
		}
		// Brute-force the same selection.
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		// Selection sort of the top h by (degree desc, ID asc) is fine
		// at this scale.
		for i := 0; i < h; i++ {
			best := i
			for j := i + 1; j < n; j++ {
				di, dj := g.Degree(uint32(ids[best])), g.Degree(uint32(ids[j]))
				if dj > di || (dj == di && ids[j] < ids[best]) {
					best = j
				}
			}
			ids[i], ids[best] = ids[best], ids[i]
		}
		isHub := make(map[uint32]bool, h)
		minDeg := int64(math.MaxInt64)
		var degSum, h2h int64
		for _, v := range ids[:h] {
			isHub[uint32(v)] = true
			d := int64(g.Degree(uint32(v)))
			degSum += d
			if d < minDeg {
				minDeg = d
			}
		}
		for _, v := range ids[:h] {
			for _, u := range g.Neighbors(uint32(v)) {
				if u < uint32(v) && isHub[u] {
					h2h++
				}
			}
		}
		m := g.NumEdges()
		if p.HubDegreeMin != minDeg {
			t.Fatalf("hubs=%d: HubDegreeMin %d, want %d", hubs, p.HubDegreeMin, minDeg)
		}
		if want := 100 * float64(degSum-h2h) / float64(m); math.Abs(p.HubEdgeCoveragePct-want) > 1e-9 {
			t.Fatalf("hubs=%d: coverage %v, want %v", hubs, p.HubEdgeCoveragePct, want)
		}
		if want := 100 * float64(h2h) / float64(m); math.Abs(p.H2HEdgePct-want) > 1e-9 {
			t.Fatalf("hubs=%d: h2h pct %v, want %v", hubs, p.H2HEdgePct, want)
		}
	}
}

// TestAssortativityExactSmall: below the sample threshold the scan is
// exact; a star is maximally disassortative (r = -1).
func TestAssortativityExactSmall(t *testing.T) {
	p := probe(t, gen.Star(500), 0)
	if math.Abs(p.Assortativity-(-1)) > 1e-9 {
		t.Fatalf("star assortativity %v, want -1", p.Assortativity)
	}
	// A regular graph has zero degree variance: r must stay 0, not NaN.
	q := probe(t, gen.Ring(100), 0)
	if q.Assortativity != 0 || math.IsNaN(q.Assortativity) {
		t.Fatalf("ring assortativity %v, want 0", q.Assortativity)
	}
}

// TestDeterminismAcrossWorkers: the probe must produce identical
// floats regardless of pool width — per-chunk partials merge in chunk
// order, not completion order.
func TestDeterminismAcrossWorkers(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 11))
	base := ComputeProbe(g, 0, sched.NewPool(1))
	for _, w := range []int{2, 3, 8} {
		p := ComputeProbe(g, 0, sched.NewPool(w))
		if p != base {
			t.Fatalf("workers=%d: probe differs:\n%+v\n%+v", w, p, base)
		}
	}
}

// TestEmptyAndDegenerate: zero vertices, zero edges, single vertex.
func TestEmptyAndDegenerate(t *testing.T) {
	if p := probe(t, graph.FromEdges(nil, graph.BuildOptions{}), 0); p.Vertices != 0 || p.Edges != 0 {
		t.Fatalf("empty: %+v", p)
	}
	p := probe(t, graph.FromEdges(nil, graph.BuildOptions{NumVertices: 1}), 0)
	if p.Vertices != 1 || p.AvgDegree != 0 || p.MaxDegree != 0 {
		t.Fatalf("single vertex: %+v", p)
	}
}

// TestStatsMapKeys: the wire flattening carries every probe field.
func TestStatsMapKeys(t *testing.T) {
	m := probe(t, gen.Complete(20), 0).StatsMap()
	for _, k := range []string{"vertices", "edges", "avg_degree", "max_degree",
		"degree_gini", "assortativity", "hub_count", "hub_degree_min",
		"hub_edge_coverage_pct", "h2h_edge_pct", "h2h_density_pct"} {
		if _, ok := m[k]; !ok {
			t.Errorf("StatsMap missing %q", k)
		}
	}
	if len(m) != 11 {
		t.Errorf("StatsMap has %d keys, want 11", len(m))
	}
}
