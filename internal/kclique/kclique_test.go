package kclique

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lotustc/internal/baseline"
	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

var pool = sched.NewPool(4)

// binom computes C(n, k).
func binom(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	r := uint64(1)
	for i := 1; i <= k; i++ {
		r = r * uint64(n-k+i) / uint64(i)
	}
	return r
}

// bruteKCliques counts k-cliques by recursive enumeration over the
// symmetric graph with an adjacency oracle — the independent test
// oracle (exponential; tiny graphs only).
func bruteKCliques(g *graph.Graph, k int) uint64 {
	n := g.NumVertices()
	var rec func(chosen []uint32, next int) uint64
	rec = func(chosen []uint32, next int) uint64 {
		if len(chosen) == k {
			return 1
		}
		var total uint64
		for v := next; v < n; v++ {
			ok := true
			for _, u := range chosen {
				if !g.HasEdge(uint32(v), u) {
					ok = false
					break
				}
			}
			if ok {
				total += rec(append(chosen, uint32(v)), v+1)
			}
		}
		return total
	}
	return rec(nil, 0)
}

func countBoth(g *graph.Graph, k, hubs int) (uint64, uint64) {
	og := g.Orient()
	generic := Count(og, k, pool)
	lg := core.Preprocess(g, core.Options{HubCount: hubs, Pool: pool})
	lotus := CountLotus(lg, k, pool)
	return generic, lotus
}

func TestCompleteGraphCliques(t *testing.T) {
	for _, n := range []int{4, 6, 9} {
		g := gen.Complete(n)
		for k := 1; k <= n; k++ {
			want := binom(n, k)
			generic, lotus := countBoth(g, k, 3)
			if generic != want {
				t.Errorf("K%d k=%d: generic = %d, want %d", n, k, generic, want)
			}
			if lotus != want {
				t.Errorf("K%d k=%d: lotus = %d, want %d", n, k, lotus, want)
			}
		}
	}
}

func TestTriangleEqualsTC(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(9, 8, 1))
	want := baseline.BruteForce(g)
	generic, lotus := countBoth(g, 3, 16)
	if generic != want || lotus != want {
		t.Fatalf("k=3: generic %d, lotus %d, want %d", generic, lotus, want)
	}
}

func TestTriangleFreeGraphs(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"ring":      gen.Ring(32),
		"star":      gen.Star(32),
		"bipartite": gen.CompleteBipartite(6, 6),
		"grid":      gen.Grid(5, 5),
	} {
		for k := 3; k <= 5; k++ {
			generic, lotus := countBoth(g, k, 4)
			if generic != 0 || lotus != 0 {
				t.Errorf("%s k=%d: generic %d lotus %d, want 0", name, k, generic, lotus)
			}
		}
	}
}

func TestSmallKEdgeCases(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 6, 2))
	generic, lotus := countBoth(g, 1, 8)
	if generic != uint64(g.NumVertices()) || lotus != generic {
		t.Fatalf("k=1: %d / %d, want |V|=%d", generic, lotus, g.NumVertices())
	}
	generic, lotus = countBoth(g, 2, 8)
	if generic != uint64(g.NumEdges()) || lotus != generic {
		t.Fatalf("k=2: %d / %d, want |E|=%d", generic, lotus, g.NumEdges())
	}
	if Count(g.Orient(), 0, pool) != 0 {
		t.Fatal("k=0 should be 0")
	}
}

func TestAgainstBruteOracle(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(14)
		var edges []graph.Edge
		m := rng.Intn(n * n / 2)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
		for k := 3; k <= 5; k++ {
			want := bruteKCliques(g, k)
			hubs := 1 + rng.Intn(n)
			generic, lotus := countBoth(g, k, hubs)
			if generic != want || lotus != want {
				t.Logf("seed %d k=%d hubs=%d: generic %d lotus %d want %d",
					seed, k, hubs, generic, lotus, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLotusVsGenericOnGenerators(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":      gen.RMAT(gen.DefaultRMAT(9, 8, 3)),
		"hubspokes": gen.HubAndSpokes(12, 200, 5, 4),
		"chunglu":   gen.ChungLu(gen.ChungLuParams{N: 512, M: 4096, Gamma: 2.1, Seed: 5}),
	}
	for name, g := range graphs {
		for k := 3; k <= 5; k++ {
			generic, lotus := countBoth(g, k, 12)
			if generic != lotus {
				t.Errorf("%s k=%d: generic %d != lotus %d", name, k, generic, lotus)
			}
		}
	}
}

func TestSkewAmplifiesWithK(t *testing.T) {
	// §7's hypothesis: the hub share of k-cliques grows with k.
	// Verify on a skewed graph that the all-hub fraction of 4-cliques
	// exceeds that of triangles.
	g := gen.RMAT(gen.DefaultRMAT(11, 12, 6))
	lg := core.Preprocess(g, core.Options{Pool: pool})
	// Cliques containing >= 1 hub = all cliques minus the cliques of
	// the non-hub induced subgraph.
	nonHub := lg.NonHubSubgraph().Orient()
	og := g.Orient()
	hubShare := func(k int) float64 {
		total := Count(og, k, pool)
		if total == 0 {
			return 0
		}
		noHub := Count(nonHub, k, pool)
		return float64(total-noHub) / float64(total)
	}
	f3, f4 := hubShare(3), hubShare(4)
	if f4 <= f3 {
		t.Fatalf("hub-clique share should grow with k: k=3 %.4f, k=4 %.4f", f3, f4)
	}
}

func BenchmarkKClique(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 1))
	og := g.Orient()
	lg := core.Preprocess(g, core.Options{Pool: pool})
	for _, k := range []int{3, 4, 5} {
		b.Run("generic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += Count(og, k, pool)
			}
		})
		b.Run("lotus", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += CountLotus(lg, k, pool)
			}
		})
	}
}

var benchSink uint64
